open Elk_arch
module B = Elk_baselines.Baselines

type env = { pod : Arch.pod; ctx : Elk_partition.Partition.ctx }

let env ?(chips = 4) ?(cores = 64) ?(topology = `All_to_all) ?hbm_bw_per_chip ?link_bw
    ?(flops_scale = 1.) ?sram_per_core ?(cost_seed = 42) () =
  let base =
    match topology with
    | `Gpu ->
        let c = Arch.Presets.gpu_like_chip ~cores () in
        (match sram_per_core with
        | Some s -> { c with Arch.sram_per_core = s }
        | None -> c)
    | (`All_to_all | `Mesh) as topology_kind ->
        Arch.Presets.scaled_chip ~cores ~topology_kind ?sram_per_core ()
  in
  let chip =
    {
      base with
      Arch.hbm_bandwidth = Option.value hbm_bw_per_chip ~default:base.Arch.hbm_bandwidth;
      intercore_link =
        {
          base.Arch.intercore_link with
          Arch.bandwidth =
            Option.value link_bw ~default:base.Arch.intercore_link.Arch.bandwidth;
        };
      matmul_flops_per_core = base.Arch.matmul_flops_per_core *. flops_scale;
      vector_flops_per_core = base.Arch.vector_flops_per_core *. flops_scale;
    }
  in
  let interchip_ratio = Elk_util.Units.gbps 640. /. Arch.aggregate_intercore_bw Arch.Presets.ipu_mk2_full in
  let pod = { Arch.chips; chip; interchip_bandwidth = interchip_ratio *. Arch.aggregate_intercore_bw chip } in
  let cost = Elk_cost.Costmodel.train ~seed:cost_seed chip in
  { pod; ctx = Elk_partition.Partition.make_ctx cost }

type eval = {
  design : B.design;
  latency : float;
  hbm_util : float;
  noc_util : float;
  tflops : float;
  bd : Elk.Timeline.breakdown;
  sim : Elk_sim.Sim.result option;
}

(* For Elk-Full, candidate preload orders are compared on the event-driven
   simulator rather than only on the analytic timeline — the simulator
   resolves the interconnect rush hours that reordering targets (§4.4),
   which the fluid analytic model smooths over. *)
let plan_elk_full_sim env graph (options : Elk.Compile.options) =
  let chips = env.pod.Arch.chips in
  let cg = Elk.Opsplit.split_graph env.ctx (Elk.Sharding.shard_graph ~chips graph) in
  let orders =
    if options.Elk.Compile.reorder then
      Elk.Reorder.candidate_orders ~max_orders:options.Elk.Compile.max_orders
        ~max_edit_distance:options.Elk.Compile.max_edit_distance env.ctx cg
    else [ Array.init (Elk_model.Graph.length cg) (fun i -> i) ]
  in
  (* Same shape as the search in [Compile.compile]: the head order runs
     sequentially (deterministic baseline, warm memo caches), the rest
     fan out on the shared domain pool under the static branch-and-bound
     scheduler cutoff derived from the baseline.  Candidates here are
     compared on {e simulated} totals, which the analytic lower bound
     does not provably bound — so, unlike [Compile.compile], there is no
     incumbent-based evaluation skip: it could prune a simulated winner
     and make the result depend on worker timing.  The ordered fold keeps
     ties on the lowest candidate index. *)
  let schedule_order ?cutoff order =
    try
      Some
        (Elk.Scheduler.run ~order ~max_preload:options.Elk.Compile.max_preload ?cutoff
           env.ctx cg)
    with
    | Elk.Scheduler.Infeasible _ -> None
    | Elk.Scheduler.Pruned ->
        Elk_obs.Metrics.incr "elk_dse_orders_pruned_total"
          ~help:"Candidate preload orders pruned in the simulator-backed order search";
        None
  in
  match orders with
  | [] -> None
  | first :: rest ->
      let base =
        match schedule_order first with
        | None -> None
        | Some s -> Some (s, Elk_sim.Sim.run env.ctx s)
      in
      let cutoff =
        match base with
        | Some (s, _) when options.Elk.Compile.prune_margin >= 0. ->
            Elk.Timeline.lower_bound env.ctx s
            *. (1. +. options.Elk.Compile.prune_margin)
        | _ -> infinity
      in
      let candidates =
        Elk_util.Pool.map (Elk_util.Pool.get ())
          (fun order ->
            match schedule_order ~cutoff order with
            | None -> None
            | Some s ->
                (* Deterministic skip of the (expensive) simulation when
                   the completed schedule's stall-free bound already blows
                   the static cutoff. *)
                if Elk.Timeline.lower_bound env.ctx s > cutoff then begin
                  Elk_obs.Metrics.incr "elk_dse_orders_pruned_total"
                    ~help:
                      "Candidate preload orders pruned in the simulator-backed order search";
                  None
                end
                else Some (s, Elk_sim.Sim.run env.ctx s))
          rest
      in
      List.fold_left
        (fun best c ->
          match c with
          | None -> best
          | Some (s, r) -> (
              match best with
              | Some (_, br) when br.Elk_sim.Sim.total <= r.Elk_sim.Sim.total -> best
              | _ -> Some (s, r)))
        base candidates

let evaluate ?elk_options env graph design =
  Elk_obs.Span.with_span "dse-eval"
    ~attrs:[ ("design", B.name design); ("model", Elk_model.Graph.name graph) ]
  @@ fun () ->
  Elk_obs.Metrics.incr "elk_dse_evals_total" ~help:"Design-point evaluations";
  let chips = env.pod.Arch.chips in
  let elk_full_sim =
    if design = B.Elk_full then
      plan_elk_full_sim env graph
        (Option.value elk_options ~default:Elk.Compile.default_options)
    else None
  in
  match
    match elk_full_sim with
    | Some (s, _) -> Some s
    | None -> B.plan ?elk_options env.ctx ~pod:env.pod graph design
  with
  | Some s ->
      let r =
        match elk_full_sim with Some (_, r) -> r | None -> Elk_sim.Sim.run env.ctx s
      in
      let allreduce =
        Elk.Sharding.allreduce_time env.pod (Elk.Sharding.shard_graph ~chips graph)
      in
      {
        design;
        latency = r.Elk_sim.Sim.total +. allreduce;
        hbm_util = r.Elk_sim.Sim.hbm_util;
        noc_util = r.Elk_sim.Sim.noc_util;
        tflops = r.Elk_sim.Sim.achieved_flops *. float_of_int chips /. 1e12;
        bd = r.Elk_sim.Sim.bd;
        sim = Some r;
      }
  | None ->
      let o = B.run env.ctx ~pod:env.pod graph design in
      {
        design;
        latency = o.B.latency;
        hbm_util = o.B.hbm_util;
        noc_util = o.B.noc_util;
        tflops = o.B.achieved_flops /. 1e12;
        bd =
          {
            Elk.Timeline.preload_only = 0.;
            execute_only = 0.;
            overlapped = o.B.latency;
            interconnect = 0.;
          };
        sim = None;
      }

let evaluate_all ?elk_options env graph =
  (* Design points are independent; fan them out on the shared pool.
     [Pool.map] preserves order, and a nested order search inside an
     Elk-Full evaluation simply runs inline on its worker. *)
  Elk_util.Pool.map (Elk_util.Pool.get ()) (evaluate ?elk_options env graph) B.all
