(* Serving front-end: admission queue + FCFS batch forming over the
   Serve decode loop, on a simulated clock.

   Requests (from Workload) arrive over time; the engine serves one
   batch at a time.  Whenever the engine is free, the front-end admits
   the oldest queued requests (up to [max_batch]) as one batch, pads
   them to a common shape, and replays a Serve.serve generation for
   that shape: prefill, then one decode step per token, each step's
   simulated latency advancing the clock.  A request completes when its
   own output length is reached; the batch holds the engine until its
   longest member finishes (static batching — the padding waste is
   exactly what the goodput metric reports, and what a future
   continuous-batching scheduler would reclaim).

   Plan sharing: batches are padded to bucketed shapes (batch size to
   the next power of two, prompt length to the plan quantum, token
   count to a multiple of 16), and Serve runs are memoized per bucket —
   the (model, ctx-bucket, batch-bucket) plan cache a deployment would
   keep, so compile work amortizes across the whole workload.

   Everything here is simulated time; no wall-clock value enters any
   trace or lifecycle field, so runs are byte-deterministic for a given
   seed at any jobs count. *)

module B = Elk_baselines.Baselines

type req_trace = {
  req : Workload.request;
  batch_id : int;
  admitted : float;  (* when its batch formed (= queue exit) *)
  prefill_end : float;
  first_token : float;  (* completion of its first decode token *)
  finish : float;  (* completion of its last decode token *)
  itls : float list;  (* inter-token latencies, length output_len - 1 *)
}

type batch_trace = {
  b_id : int;
  b_size : int;  (* admitted requests *)
  b_bucket : int;  (* padded batch size the plan was built for *)
  b_prompt_ctx : int;  (* padded prompt length *)
  b_tokens : int;  (* decode steps actually timed (longest member) *)
  b_formed : float;
  b_prefill : float;  (* simulated prefill latency *)
  b_end : float;
  b_step_ends : float array;  (* completion time of decode step k *)
  b_live : int array;  (* requests still generating at step k *)
  b_fresh_plans : int;  (* decode plans compiled for this batch (0 on cache hit) *)
  b_highwater : float;  (* peak static per-core SRAM bytes of its plans *)
  b_busiest_link : string;  (* hottest interconnect link of its plans ("" without noc) *)
  b_link_busy : float;  (* that link's reservation seconds (0 without noc) *)
}

type result = {
  requests : req_trace list;  (* in arrival order *)
  batches : batch_trace list;  (* in formation order *)
  makespan : float;  (* completion of the last batch *)
  distinct_shapes : int;  (* plan-cache misses: Serve runs actually computed *)
  recompilations : int;  (* decode plans compiled across all misses *)
  plan_cache_size : int;  (* shapes resident in the plan cache at the end *)
  plan_cache_evictions : int;  (* shapes evicted by the LRU cap *)
}

let round_up v quantum = (v + quantum - 1) / quantum * quantum

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let token_quantum = 16

let run ?(design = B.Elk_full) ?(recompile_every = 64) ?elk_options ?jobs
    ?(max_batch = 8) ?(plan_cache_cap = 512) ?(noc = false) env cfg requests =
  if requests = [] then invalid_arg "Frontend.run: no requests";
  if max_batch <= 0 then invalid_arg "Frontend.run: max_batch must be positive";
  if plan_cache_cap <= 0 then
    invalid_arg "Frontend.run: plan_cache_cap must be positive";
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        a.Workload.arrival_s <= b.Workload.arrival_s && sorted rest
    | _ -> true
  in
  if not (sorted requests) then
    invalid_arg "Frontend.run: requests must be in arrival order";
  Option.iter Elk_util.Pool.set_jobs jobs;
  (* Serve runs memoized per padded shape: the deployment's plan cache.
     Bounded — a long-tailed workload must not hold every shape it ever
     saw — with least-recently-used eviction on insert; an evicted shape
     that recurs is recompiled and counted as a fresh miss. *)
  let cache : (int * int * int, Serve.run * int ref) Hashtbl.t = Hashtbl.create 8 in
  let tick = ref 0 and evictions = ref 0 in
  let misses = ref 0 and recompiles = ref 0 in
  let serve_for ~bucket ~prompt_ctx ~tokens =
    let key = (bucket, prompt_ctx, tokens) in
    incr tick;
    match Hashtbl.find_opt cache key with
    | Some (r, stamp) ->
        stamp := !tick;
        (r, 0)
    | None ->
        let r =
          Serve.serve ~design ~recompile_every ~prefill:true ?elk_options ~noc
            env cfg ~batch:bucket ~prompt_ctx ~tokens
        in
        if Hashtbl.length cache >= plan_cache_cap then begin
          let victim =
            Hashtbl.fold
              (fun k (_, stamp) acc ->
                match acc with
                | Some (_, s) when s <= !stamp -> acc
                | _ -> Some (k, !stamp))
              cache None
          in
          match victim with
          | Some (k, _) ->
              Hashtbl.remove cache k;
              incr evictions;
              Elk_obs.Metrics.incr "elk_serve_plan_evictions_total"
                ~help:"Padded shapes evicted from the serving plan cache"
          | None -> ()
        end;
        Hashtbl.add cache key (r, ref !tick);
        incr misses;
        recompiles := !recompiles + r.Serve.recompilations;
        (r, r.Serve.recompilations)
  in
  let rec take_batch acc k t = function
    | r :: rest when k < max_batch && r.Workload.arrival_s <= t ->
        take_batch (r :: acc) (k + 1) t rest
    | rest -> (List.rev acc, rest)
  in
  let rec loop free b_id pending reqs_acc batches_acc =
    match pending with
    | [] -> (List.rev reqs_acc, List.rev batches_acc, free)
    | head :: _ ->
        let t_form = Float.max free head.Workload.arrival_s in
        let admitted, rest = take_batch [] 0 t_form pending in
        let size = List.length admitted in
        let bucket = min (next_pow2 size) (next_pow2 max_batch) in
        let prompt_max =
          List.fold_left (fun a r -> max a r.Workload.prompt_len) 1 admitted
        in
        let prompt_ctx = round_up prompt_max recompile_every in
        let needed =
          List.fold_left (fun a r -> max a r.Workload.output_len) 1 admitted
        in
        let tokens = round_up needed token_quantum in
        let sr, fresh = serve_for ~bucket ~prompt_ctx ~tokens in
        let prefill_end = t_form +. sr.Serve.prefill_latency in
        let lats = Array.of_list (List.map (fun s -> s.Serve.latency) sr.Serve.steps) in
        let step_ends = Array.make needed prefill_end in
        let t = ref prefill_end in
        for k = 0 to needed - 1 do
          t := !t +. lats.(k);
          step_ends.(k) <- !t
        done;
        let live =
          Array.init needed (fun k ->
              List.length (List.filter (fun r -> r.Workload.output_len > k) admitted))
        in
        let b_end = step_ends.(needed - 1) in
        let traces =
          List.map
            (fun (r : Workload.request) ->
              let last = r.Workload.output_len - 1 in
              {
                req = r;
                batch_id = b_id;
                admitted = t_form;
                prefill_end;
                first_token = step_ends.(0);
                finish = step_ends.(last);
                itls = List.init last (fun k -> lats.(k + 1));
              })
            admitted
        in
        let batch =
          {
            b_id;
            b_size = size;
            b_bucket = bucket;
            b_prompt_ctx = prompt_ctx;
            b_tokens = needed;
            b_formed = t_form;
            b_prefill = sr.Serve.prefill_latency;
            b_end;
            b_step_ends = step_ends;
            b_live = live;
            b_fresh_plans = fresh;
            b_highwater = sr.Serve.highwater;
            b_busiest_link = sr.Serve.busiest_link;
            b_link_busy = sr.Serve.link_busy;
          }
        in
        Elk_obs.Logger.debug ~src:"frontend"
          ~kvs:
            [
              ("batch", string_of_int b_id);
              ("size", string_of_int size);
              ("bucket", string_of_int bucket);
              ("prompt_ctx", string_of_int prompt_ctx);
              ("tokens", string_of_int needed);
            ]
          "batch formed";
        loop b_end (b_id + 1) rest (List.rev_append traces reqs_acc)
          (batch :: batches_acc)
  in
  let requests', batches, makespan = loop 0. 0 requests [] [] in
  let requests' =
    List.sort (fun a b -> compare a.req.Workload.req_id b.req.Workload.req_id) requests'
  in
  Elk_obs.Metrics.incr "elk_frontend_batches_total"
    ~by:(float_of_int (List.length batches))
    ~help:"Batches formed by the serving front-end";
  Elk_obs.Metrics.set "elk_frontend_plan_cache_misses" (float_of_int !misses)
    ~help:"Distinct padded shapes the serving front-end compiled plans for";
  Elk_obs.Metrics.set "elk_frontend_plan_cache_size" (float_of_int (Hashtbl.length cache))
    ~help:"Padded shapes resident in the serving plan cache";
  {
    requests = requests';
    batches;
    makespan;
    distinct_shapes = !misses;
    recompilations = !recompiles;
    plan_cache_size = Hashtbl.length cache;
    plan_cache_evictions = !evictions;
  }

(* ---- per-request derived metrics ------------------------------------- *)

let queue_wait t = t.admitted -. t.req.Workload.arrival_s
let ttft t = t.first_token -. t.req.Workload.arrival_s

(* ---- time-series recording ------------------------------------------- *)

(* Replay the lifecycle into a Timeseries: queue depth and in-flight
   gauges driven by arrival/admission/finish edges, goodput/padded token
   counters per decode step, and rolling TTFT/ITL histograms.  Events
   are generated in chronological order per series, so gauge integration
   is exact. *)
let timeseries ?window ?(mem = false) ?(noc = false) r =
  let window =
    match window with
    | Some w -> w
    | None -> Float.max 1e-9 (r.makespan /. 48.)
  in
  let ts = Elk_obs.Timeseries.create ~window () in
  (* queue depth: +1 on arrival, -size when a batch forms *)
  let edges =
    List.map (fun t -> (t.req.Workload.arrival_s, 0, 1)) r.requests
    @ List.map (fun b -> (b.b_formed, 1, -b.b_size)) r.batches
  in
  let edges =
    List.stable_sort (fun (ta, pa, _) (tb, pb, _) -> compare (ta, pa) (tb, pb)) edges
  in
  let depth = ref 0 in
  Elk_obs.Timeseries.set ts "queue_depth" ~time:0. 0.
    ~help:"Requests admitted yet";
  List.iter
    (fun (t, _, d) ->
      depth := !depth + d;
      Elk_obs.Timeseries.set ts "queue_depth" ~time:t (float_of_int !depth))
    edges;
  (* in-flight requests: +size at admission, -1 as each member finishes *)
  let flight =
    List.map (fun b -> (b.b_formed, 0, b.b_size)) r.batches
    @ List.map (fun t -> (t.finish, 1, -1)) r.requests
  in
  let flight =
    List.stable_sort (fun (ta, pa, _) (tb, pb, _) -> compare (ta, pa) (tb, pb)) flight
  in
  let inflight = ref 0 in
  Elk_obs.Timeseries.set ts "inflight_requests" ~time:0. 0.
    ~help:"Admitted requests still generating";
  List.iter
    (fun (t, _, d) ->
      inflight := !inflight + d;
      Elk_obs.Timeseries.set ts "inflight_requests" ~time:t (float_of_int !inflight))
    flight;
  (* tokens: per decode step, [live] slots produce useful tokens and the
     rest of the padded batch burns compute *)
  List.iter
    (fun b ->
      Array.iteri
        (fun k t_end ->
          let live = b.b_live.(k) in
          Elk_obs.Timeseries.add ts "tokens_completed" ~time:t_end
            (float_of_int live)
            ~help:"Useful (non-padding) tokens completed";
          if b.b_bucket > live then
            Elk_obs.Timeseries.add ts "tokens_padded" ~time:t_end
              (float_of_int (b.b_bucket - live))
              ~help:"Padded batch slots computed but discarded")
        b.b_step_ends)
    r.batches;
  (* SRAM occupancy gauge (opt-in): the per-core high water of whichever
     plan set is serving the engine, stepping at each batch formation *)
  if mem then begin
    Elk_obs.Timeseries.set ts "sram_highwater_per_core" ~time:0. 0.
      ~help:"Peak static per-core SRAM bytes of the plans serving each batch";
    List.iter
      (fun b ->
        Elk_obs.Timeseries.set ts "sram_highwater_per_core" ~time:b.b_formed
          b.b_highwater)
      r.batches
  end;
  (* busiest interconnect link gauge (opt-in): reservation seconds on
     the hottest link of whichever plan set is serving the engine,
     stepping at each batch formation *)
  if noc then begin
    Elk_obs.Timeseries.set ts "noc_busiest_link_busy" ~time:0. 0.
      ~help:
        "Reservation seconds on the hottest interconnect link of the plans \
         serving each batch";
    List.iter
      (fun b ->
        Elk_obs.Timeseries.set ts "noc_busiest_link_busy" ~time:b.b_formed
          b.b_link_busy)
      r.batches
  end;
  (* rolling latency distributions *)
  List.iter
    (fun t ->
      Elk_obs.Timeseries.observe ts "ttft" ~time:t.first_token (ttft t)
        ~help:"Time to first token (arrival to first decode completion)";
      Elk_obs.Timeseries.observe ts "queue_wait" ~time:t.admitted (queue_wait t)
        ~help:"Time from arrival to batch admission";
      List.iter
        (fun itl ->
          Elk_obs.Timeseries.observe ts "itl" ~time:t.finish itl
            ~help:"Inter-token latency samples")
        t.itls)
    r.requests;
  ts

(* ---- Chrome/Perfetto lifecycle export -------------------------------- *)

let serving_pid = 7

(* Track layout under one "serving" process: tid 1 is the batch lane,
   every request gets its own lane above it.  Queued/prefill/decode
   phases are complete events; a flow arrow links each request's queued
   slice to its batch's slice. *)
let chrome_events r =
  let meta =
    Elk_obs.Chrome.thread_name ~pid:serving_pid ~tid:1 "serving: batches"
    :: List.map
         (fun t ->
           Elk_obs.Chrome.thread_name ~pid:serving_pid
             ~tid:(t.req.Workload.req_id + 2)
             (Printf.sprintf "req %d" t.req.Workload.req_id))
         r.requests
  in
  let batch_slices =
    List.map
      (fun b ->
        Elk_obs.Chrome.complete_event ~pid:serving_pid ~tid:1
          ~name:(Printf.sprintf "batch %d (%d reqs)" b.b_id b.b_size)
          ~cat:"serve" ~start:b.b_formed
          ~dur:(b.b_end -. b.b_formed)
          ~args:
            [
              ("size", string_of_int b.b_size);
              ("bucket", string_of_int b.b_bucket);
              ("prompt_ctx", string_of_int b.b_prompt_ctx);
              ("tokens", string_of_int b.b_tokens);
              ("fresh_plans", string_of_int b.b_fresh_plans);
            ]
          ())
      r.batches
  in
  let req_slices =
    List.concat_map
      (fun t ->
        let tid = t.req.Workload.req_id + 2 in
        let arrive = t.req.Workload.arrival_s in
        let args =
          [
            ("batch", string_of_int t.batch_id);
            ("prompt", string_of_int t.req.Workload.prompt_len);
            ("output", string_of_int t.req.Workload.output_len);
          ]
        in
        let slice name start stop =
          Elk_obs.Chrome.complete_event ~pid:serving_pid ~tid ~name ~cat:"serve"
            ~start ~dur:(stop -. start) ~args ()
        in
        let flow_id = 100000 + t.req.Workload.req_id in
        [
          slice "queued" arrive t.admitted;
          slice "prefill" t.admitted t.prefill_end;
          slice "decode" t.prefill_end t.finish;
          Elk_obs.Chrome.flow_start ~pid:serving_pid ~tid ~name:"admit"
            ~cat:"serve" ~id:flow_id ~ts:t.admitted ();
          Elk_obs.Chrome.flow_end ~pid:serving_pid ~tid:1 ~name:"admit"
            ~cat:"serve" ~id:flow_id ~ts:t.admitted ();
        ])
      r.requests
  in
  meta @ batch_slices @ req_slices
