(** SLO report over a served workload.

    Distills a {!Frontend.result} into operator-facing numbers — TTFT /
    inter-token-latency / queue-wait percentiles, useful tokens/second,
    goodput, SLO attainment — plus the windowed time series behind them.
    All values derive from simulated time: the JSON snapshot is
    byte-identical run to run for a given seed, and doubles as an
    [elk trace diff] baseline (percentiles are encoded as segments in
    the shape {!Elk_analyze.Tracediff} aggregates). *)

type pct = { p50 : float; p90 : float; p99 : float; mean : float; max : float }

val pct_of : float list -> pct
(** Exact percentiles ({!Elk_util.Stats.percentile}); zeros on []. *)

type report = {
  workload : string;
  seed : int;
  n_requests : int;
  n_batches : int;
  makespan : float;
  ttft : pct;
  itl : pct;
  queue_wait : pct;
  tokens_per_second : float;  (** useful output tokens / makespan *)
  useful_tokens : int;
  padded_tokens : int;  (** padded batch slots computed and discarded *)
  goodput : float;  (** useful / (useful + padded) *)
  slo_ttft : float option;
  slo_itl : float option;
  attainment : float option;
      (** fraction of requests meeting every set SLO; [None] when no SLO
          target was given *)
  distinct_shapes : int;
  recompilations : int;
  plan_cache_size : int;  (** shapes resident in the front-end plan cache *)
  plan_cache_evictions : int;  (** shapes evicted by the LRU cap *)
  series : Elk_obs.Timeseries.t;
}

val attains :
  ?slo_ttft:float -> ?slo_itl:float -> Frontend.req_trace -> bool
(** A request attains its SLOs when its TTFT and its mean inter-token
    latency are both within target (unset targets always pass). *)

val of_result :
  ?slo_ttft:float ->
  ?slo_itl:float ->
  ?window:float ->
  ?mem:bool ->
  ?noc:bool ->
  workload:string ->
  seed:int ->
  Frontend.result ->
  report
(** Build the report.  [mem] and [noc] are passed through to
    {!Frontend.timeseries} (SRAM high-water and busiest-link gauges,
    both default off).
    Validates that every time series tiles [[0, makespan]] edge to edge
    ({!Elk_obs.Timeseries.check_tiling}) and raises [Invalid_argument]
    if any window is missing. *)

val to_json : report -> string
(** Snapshot with a Tracediff-comparable core ([total] = makespan,
    latency percentiles as [segments]) plus the full SLO payload and the
    exported time series.  Deterministic for a given seed. *)

val print : report -> unit
(** Human-readable report: headline rates, latency table, SLO
    attainment, and a queue-depth-over-time sparkline.  Simulated values
    only — safe to snapshot in cram tests. *)
