(** Deterministic request-arrival workloads for the serving front-end.

    A workload pairs an arrival process with prompt- and output-length
    distributions.  Generation is fully seeded ({!Elk_util.Xrng}): the
    same seed yields the byte-identical request list on any machine, at
    any [--jobs] count — the SLO numbers computed downstream inherit
    that determinism.  Arrivals, prompt lengths, and output lengths
    draw from three independently split streams, so changing one
    distribution never shifts the samples of another. *)

type dist =
  | Fixed of int
  | Uniform of { lo : int; hi : int }  (** inclusive bounds *)
  | Lognormal of { mu : float; sigma : float; lo : int; hi : int }
      (** [exp(N(mu, sigma))], rounded and clamped into [[lo, hi]] *)

type arrival =
  | Poisson of { rate : float }  (** requests per second *)
  | Bursty of {
      rate_on : float;
      rate_off : float;  (** may be 0: fully silent gaps *)
      mean_on : float;  (** mean sojourn in the on state, seconds *)
      mean_off : float;
    }  (** Markov-modulated (on/off) Poisson process *)
  | Diurnal of { base_rate : float; peak_rate : float; period : float }
      (** raised-cosine rate curve, one peak per [period], sampled by
          Lewis–Shedler thinning *)

type spec = { arrival : arrival; prompt : dist; output : dist }

type request = {
  req_id : int;  (** 0-based, in arrival order *)
  arrival_s : float;  (** seconds since the start of the run *)
  prompt_len : int;  (** KV entries the prompt occupies *)
  output_len : int;  (** tokens to generate *)
}

val arrival_name : arrival -> string

val validate : spec -> unit
(** Raises [Invalid_argument] on nonsensical parameters (nonpositive
    rates/lengths, inverted bounds, …). *)

val generate : seed:int -> n:int -> spec -> request list
(** [n] requests in arrival order, with strictly increasing ids and
    nondecreasing arrival times.  Deterministic in [seed]. *)

val diurnal_rate :
  base_rate:float -> peak_rate:float -> period:float -> float -> float
(** The instantaneous diurnal rate at a given time (exposed for tests). *)

val preset :
  string -> rate:float -> prompt_mean:int -> output_mean:int -> spec option
(** Named mixes for the CLI: ["poisson"], ["bursty"] (2x/0.5x rate
    contrast), ["diurnal"] (0.5x–1.5x raised cosine).  Lengths become
    uniform bands [[mean/2, 3*mean/2]].  [None] for unknown names. *)

val preset_names : string list

val to_json : request list -> string
val pp_request : Format.formatter -> request -> unit
val total_output_tokens : request list -> int
