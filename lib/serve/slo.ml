(* SLO report over a served workload.

   Distills a Frontend.result into the numbers an operator watches:
   TTFT / inter-token-latency / queue-wait percentiles, useful
   tokens/second, goodput (useful vs padded compute), and — when SLO
   targets are given — the fraction of requests that met them.  The
   report also carries the windowed time series (queue depth,
   throughput, rolling percentiles) and validates that its windows tile
   the simulated horizon with no gaps before anything is exported.

   Every number is derived from simulated time, so the JSON snapshot is
   byte-identical run to run for a given seed.  The snapshot doubles as
   an `elk trace diff` baseline: the latency percentiles are encoded as
   segments in the shape Tracediff aggregates, so CI can gate SLO
   regressions with the machinery that already gates critical paths. *)

module S = Elk_util.Stats
module J = Elk_obs.Jsonx

type pct = { p50 : float; p90 : float; p99 : float; mean : float; max : float }

let pct_of = function
  | [] -> { p50 = 0.; p90 = 0.; p99 = 0.; mean = 0.; max = 0. }
  | xs ->
      {
        p50 = S.percentile 50. xs;
        p90 = S.percentile 90. xs;
        p99 = S.percentile 99. xs;
        mean = S.mean xs;
        max = List.fold_left Float.max neg_infinity xs;
      }

type report = {
  workload : string;
  seed : int;
  n_requests : int;
  n_batches : int;
  makespan : float;
  ttft : pct;
  itl : pct;
  queue_wait : pct;
  tokens_per_second : float;  (* useful output tokens / makespan *)
  useful_tokens : int;
  padded_tokens : int;  (* padded batch slots computed and discarded *)
  goodput : float;  (* useful / (useful + padded) *)
  slo_ttft : float option;
  slo_itl : float option;
  attainment : float option;  (* fraction of requests meeting every set SLO *)
  distinct_shapes : int;
  recompilations : int;
  plan_cache_size : int;  (* shapes resident in the front-end plan cache *)
  plan_cache_evictions : int;  (* shapes evicted by the LRU cap *)
  series : Elk_obs.Timeseries.t;
}

(* A request attains its SLOs when its TTFT and its mean inter-token
   latency are both within target (unset targets always pass). *)
let attains ?slo_ttft ?slo_itl (t : Frontend.req_trace) =
  let ok target v = match target with None -> true | Some x -> v <= x in
  ok slo_ttft (Frontend.ttft t) && ok slo_itl (S.mean t.itls)

let of_result ?slo_ttft ?slo_itl ?window ?mem ?noc ~workload ~seed
    (r : Frontend.result) =
  let series = Frontend.timeseries ?window ?mem ?noc r in
  (* The time series must tile [0, makespan] edge to edge — a gap means
     a window went missing and every rate in the report is suspect. *)
  List.iter
    (fun name ->
      match Elk_obs.Timeseries.check_tiling series ~horizon:r.makespan name with
      | Ok () -> ()
      | Error m -> invalid_arg (Printf.sprintf "Slo.of_result: %s" m))
    (Elk_obs.Timeseries.names series);
  let useful, padded =
    List.fold_left
      (fun (u, p) (b : Frontend.batch_trace) ->
        Array.fold_left
          (fun (u, p) live -> (u + live, p + (b.b_bucket - live)))
          (u, p) b.b_live)
      (0, 0) r.batches
  in
  let n = List.length r.requests in
  let met =
    List.length (List.filter (attains ?slo_ttft ?slo_itl) r.requests)
  in
  {
    workload;
    seed;
    n_requests = n;
    n_batches = List.length r.batches;
    makespan = r.makespan;
    ttft = pct_of (List.map Frontend.ttft r.requests);
    itl = pct_of (List.concat_map (fun t -> t.Frontend.itls) r.requests);
    queue_wait = pct_of (List.map Frontend.queue_wait r.requests);
    tokens_per_second =
      (if r.makespan > 0. then float_of_int useful /. r.makespan else 0.);
    useful_tokens = useful;
    padded_tokens = padded;
    goodput =
      (if useful + padded > 0 then
         float_of_int useful /. float_of_int (useful + padded)
       else 0.);
    slo_ttft;
    slo_itl;
    attainment =
      (if slo_ttft = None && slo_itl = None then None
       else Some (float_of_int met /. float_of_int n));
    distinct_shapes = r.distinct_shapes;
    recompilations = r.recompilations;
    plan_cache_size = r.plan_cache_size;
    plan_cache_evictions = r.plan_cache_evictions;
    series;
  }

(* ---- JSON snapshot ---------------------------------------------------- *)

(* Round to keep snapshots stable under float noise, like the committed
   bench tables. *)
let g v = J.number (float_of_string (Printf.sprintf "%.6g" v))

let pct_segments name p =
  List.map
    (fun (kind, v) ->
      Printf.sprintf
        "{\"name\":%s,\"kind\":%s,\"resource\":\"latency\",\"dur\":%s}"
        (J.quote name) (J.quote kind) (g v))
    [ ("p50", p.p50); ("p90", p.p90); ("p99", p.p99); ("mean", p.mean);
      ("max", p.max) ]

let pct_json p =
  Printf.sprintf "{\"p50\":%s,\"p90\":%s,\"p99\":%s,\"mean\":%s,\"max\":%s}"
    (g p.p50) (g p.p90) (g p.p99) (g p.mean) (g p.max)

let to_json rp =
  let segments =
    pct_segments "ttft" rp.ttft
    @ pct_segments "itl" rp.itl
    @ pct_segments "queue_wait" rp.queue_wait
  in
  let opt = function None -> "null" | Some v -> g v in
  String.concat ""
    [
      "{";
      Printf.sprintf "\"workload\":%s,\"seed\":%d," (J.quote rp.workload) rp.seed;
      Printf.sprintf "\"requests\":%d,\"batches\":%d," rp.n_requests rp.n_batches;
      (* Tracediff-comparable core: total + segments *)
      Printf.sprintf "\"total\":%s,\"dominant\":\"ttft_p99\"," (g rp.makespan);
      Printf.sprintf "\"resource_seconds\":{\"latency\":%s},"
        (g (rp.ttft.p99 +. rp.itl.p99 +. rp.queue_wait.p99));
      Printf.sprintf "\"segments\":[%s]," (String.concat "," segments);
      (* Full SLO payload *)
      Printf.sprintf "\"ttft\":%s,\"itl\":%s,\"queue_wait\":%s," (pct_json rp.ttft)
        (pct_json rp.itl)
        (pct_json rp.queue_wait);
      Printf.sprintf "\"tokens_per_second\":%s,\"goodput\":%s,"
        (g rp.tokens_per_second) (g rp.goodput);
      Printf.sprintf "\"useful_tokens\":%d,\"padded_tokens\":%d,"
        rp.useful_tokens rp.padded_tokens;
      Printf.sprintf "\"slo\":{\"ttft\":%s,\"itl\":%s,\"attainment\":%s},"
        (opt rp.slo_ttft) (opt rp.slo_itl) (opt rp.attainment);
      Printf.sprintf "\"distinct_shapes\":%d,\"recompilations\":%d,"
        rp.distinct_shapes rp.recompilations;
      Printf.sprintf "\"plan_cache\":{\"size\":%d,\"evictions\":%d},"
        rp.plan_cache_size rp.plan_cache_evictions;
      Printf.sprintf "\"series\":%s"
        (Elk_obs.Timeseries.to_json rp.series ~horizon:rp.makespan ());
      "}";
    ]

(* ---- human-readable report ------------------------------------------- *)

let ms v = Printf.sprintf "%.2f ms" (1e3 *. v)

let sparkline values =
  let glyphs = [| " "; "_"; "."; ":"; "-"; "="; "+"; "*"; "#" |] in
  let hi = List.fold_left Float.max 0. values in
  if hi <= 0. then String.concat "" (List.map (fun _ -> glyphs.(0)) values)
  else
    String.concat ""
      (List.map
         (fun v ->
           let i = int_of_float (Float.round (v /. hi *. 8.)) in
           glyphs.(max 0 (min 8 i)))
         values)

let print rp =
  Printf.printf "serving SLO report: %s workload, seed %d\n" rp.workload rp.seed;
  Printf.printf
    "  %d requests in %d batches over %.3f s simulated (%d shapes compiled, %d plan compiles)\n"
    rp.n_requests rp.n_batches rp.makespan rp.distinct_shapes rp.recompilations;
  Printf.printf "  plan cache: %d shapes resident, %d evicted\n" rp.plan_cache_size
    rp.plan_cache_evictions;
  Printf.printf "  throughput %.1f tok/s, goodput %.1f%% (%d useful / %d padded)\n\n"
    rp.tokens_per_second (100. *. rp.goodput) rp.useful_tokens rp.padded_tokens;
  let tbl =
    Elk_util.Table.create ~title:"latency"
      ~columns:[ "metric"; "p50"; "p90"; "p99"; "mean"; "max" ]
  in
  List.iter
    (fun (name, p) ->
      Elk_util.Table.add_row tbl
        [ name; ms p.p50; ms p.p90; ms p.p99; ms p.mean; ms p.max ])
    [ ("ttft", rp.ttft); ("itl", rp.itl); ("queue_wait", rp.queue_wait) ];
  Elk_util.Table.print tbl;
  (match (rp.slo_ttft, rp.slo_itl, rp.attainment) with
  | _, _, Some a ->
      let tgt = function None -> "-" | Some v -> ms v in
      Printf.printf "SLO: ttft <= %s, itl <= %s -> attainment %.1f%%\n\n"
        (tgt rp.slo_ttft) (tgt rp.slo_itl) (100. *. a)
  | _ -> ());
  (* queue depth over time, as a sparkline over the exported windows *)
  let points = Elk_obs.Timeseries.points rp.series ~horizon:rp.makespan "queue_depth" in
  if points <> [] then begin
    let vals = List.map (fun p -> p.Elk_obs.Timeseries.mean) points in
    Printf.printf "queue depth over time (%d windows of %g s):\n  %s\n"
      (List.length points)
      (float_of_string
         (Printf.sprintf "%.3g" (Elk_obs.Timeseries.window rp.series)))
      (sparkline vals)
  end
