(* Deterministic request-arrival workloads for the serving front-end.

   A workload is an arrival process (Poisson, Markov-modulated on/off
   bursts, or a diurnal rate curve) paired with prompt- and
   output-length distributions.  Everything is driven by the repo's
   splittable PRNG (Elk_util.Xrng): the same seed always yields the
   byte-identical request list, whatever machine, jobs count, or
   evaluation order — the serving SLO numbers downstream inherit that
   determinism.  Three independent streams (arrivals, prompt lengths,
   output lengths) are split off the seed up front, so changing one
   distribution never perturbs the samples of another. *)

module R = Elk_util.Xrng

type dist =
  | Fixed of int
  | Uniform of { lo : int; hi : int }
  | Lognormal of { mu : float; sigma : float; lo : int; hi : int }

type arrival =
  | Poisson of { rate : float }
  | Bursty of {
      rate_on : float;
      rate_off : float;
      mean_on : float;  (* mean sojourn in the on state, seconds *)
      mean_off : float;
    }
  | Diurnal of { base_rate : float; peak_rate : float; period : float }

type spec = { arrival : arrival; prompt : dist; output : dist }

type request = {
  req_id : int;
  arrival_s : float;  (* seconds since the start of the run *)
  prompt_len : int;  (* KV entries the prompt occupies *)
  output_len : int;  (* tokens to generate *)
}

let arrival_name = function
  | Poisson _ -> "poisson"
  | Bursty _ -> "bursty"
  | Diurnal _ -> "diurnal"

let validate_dist what = function
  | Fixed n when n > 0 -> ()
  | Uniform { lo; hi } when 0 < lo && lo <= hi -> ()
  | Lognormal { sigma; lo; hi; _ } when sigma >= 0. && 0 < lo && lo <= hi -> ()
  | _ -> invalid_arg (Printf.sprintf "Workload: invalid %s distribution" what)

let validate spec =
  (match spec.arrival with
  | Poisson { rate } ->
      if rate <= 0. then invalid_arg "Workload: Poisson rate must be positive"
  | Bursty { rate_on; rate_off; mean_on; mean_off } ->
      if rate_on <= 0. || rate_off < 0. then
        invalid_arg "Workload: bursty rates must be positive (off may be 0)";
      if mean_on <= 0. || mean_off <= 0. then
        invalid_arg "Workload: bursty sojourn means must be positive"
  | Diurnal { base_rate; peak_rate; period } ->
      if base_rate < 0. || peak_rate <= 0. || peak_rate < base_rate then
        invalid_arg "Workload: diurnal rates must satisfy 0 <= base <= peak, peak > 0";
      if period <= 0. then invalid_arg "Workload: diurnal period must be positive");
  validate_dist "prompt" spec.prompt;
  validate_dist "output" spec.output

(* Exponential variate; [1 - u] keeps the log argument in (0, 1]. *)
let exponential rng rate = -.log (Float.max 1e-12 (1. -. R.float rng 1.)) /. rate

let sample_dist rng = function
  | Fixed n -> n
  | Uniform { lo; hi } -> lo + R.int rng (hi - lo + 1)
  | Lognormal { mu; sigma; lo; hi } ->
      let v = exp (mu +. (sigma *. R.gaussian rng)) in
      max lo (min hi (int_of_float (Float.round v)))

(* The diurnal instantaneous rate: a raised cosine that starts (t = 0)
   at [base] and peaks once per [period]. *)
let diurnal_rate ~base_rate ~peak_rate ~period t =
  base_rate
  +. ((peak_rate -. base_rate)
     *. 0.5
     *. (1. -. cos (2. *. Float.pi *. t /. period)))

let arrivals rng spec ~n =
  match spec.arrival with
  | Poisson { rate } ->
      let t = ref 0. in
      List.init n (fun _ ->
          t := !t +. exponential rng rate;
          !t)
  | Bursty { rate_on; rate_off; mean_on; mean_off } ->
      (* Markov-modulated Poisson process: exponential sojourns in an
         on/off state, arrivals at the state's rate.  Sojourns are
         memoryless, so on every step we race the next arrival against
         the next state switch and redraw. *)
      let t = ref 0. and on = ref true in
      let next () =
        let rec go () =
          let rate = if !on then rate_on else rate_off in
          let switch = exponential rng (1. /. if !on then mean_on else mean_off) in
          let arrival = if rate > 0. then exponential rng rate else Float.infinity in
          if arrival <= switch then t := !t +. arrival
          else begin
            t := !t +. switch;
            on := not !on;
            go ()
          end
        in
        go ();
        !t
      in
      List.init n (fun _ -> next ())
  | Diurnal { base_rate; peak_rate; period } ->
      (* Lewis–Shedler thinning against the constant majorant [peak]. *)
      let t = ref 0. in
      let next () =
        let rec go () =
          t := !t +. exponential rng peak_rate;
          let lambda = diurnal_rate ~base_rate ~peak_rate ~period !t in
          if R.float rng 1. < lambda /. peak_rate then !t else go ()
        in
        go ()
      in
      List.init n (fun _ -> next ())

let generate ~seed ~n spec =
  if n <= 0 then invalid_arg "Workload.generate: n must be positive";
  validate spec;
  let root = R.create seed in
  (* Independent streams: resampling one never shifts the others. *)
  let arr_rng = R.split root in
  let prompt_rng = R.split root in
  let output_rng = R.split root in
  let times = arrivals arr_rng spec ~n in
  List.mapi
    (fun i arrival_s ->
      {
        req_id = i;
        arrival_s;
        prompt_len = sample_dist prompt_rng spec.prompt;
        output_len = sample_dist output_rng spec.output;
      })
    times

(* ---- named mixes for the CLI ---------------------------------------- *)

(* A mean length becomes a uniform band around it: [mean/2, mean*3/2]
   (at least 1 wide), enough spread to exercise padding/goodput without
   extra flags. *)
let band mean =
  if mean <= 1 then Fixed 1
  else Uniform { lo = max 1 (mean / 2); hi = max (mean / 2 + 1) (mean * 3 / 2) }

let preset name ~rate ~prompt_mean ~output_mean =
  if rate <= 0. then invalid_arg "Workload.preset: rate must be positive";
  let prompt = band prompt_mean and output = band output_mean in
  match name with
  | "poisson" -> Some { arrival = Poisson { rate }; prompt; output }
  | "bursty" ->
      (* On/off with a 4x rate contrast and sojourns long enough that a
         run sees a handful of bursts. *)
      Some
        {
          arrival =
            Bursty
              {
                rate_on = 2. *. rate;
                rate_off = 0.5 *. rate;
                mean_on = 4. /. rate;
                mean_off = 4. /. rate;
              };
          prompt;
          output;
        }
  | "diurnal" ->
      (* One "day" every 32 mean inter-arrivals; trough at 25% of peak. *)
      Some
        {
          arrival =
            Diurnal
              {
                base_rate = 0.5 *. rate;
                peak_rate = 1.5 *. rate;
                period = 32. /. rate;
              };
          prompt;
          output;
        }
  | _ -> None

let preset_names = [ "poisson"; "bursty"; "diurnal" ]

(* ---- export ---------------------------------------------------------- *)

let request_json r =
  Printf.sprintf "{\"id\":%d,\"arrival\":%s,\"prompt\":%d,\"output\":%d}" r.req_id
    (Elk_obs.Jsonx.number r.arrival_s)
    r.prompt_len r.output_len

let to_json reqs = "[" ^ String.concat "," (List.map request_json reqs) ^ "]"

let pp_request fmt r =
  Format.fprintf fmt "req %d @ %a (prompt %d, output %d)" r.req_id
    Elk_util.Units.pp_time r.arrival_s r.prompt_len r.output_len

let total_output_tokens reqs =
  List.fold_left (fun a r -> a + r.output_len) 0 reqs
