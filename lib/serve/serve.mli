(** Multi-token serving: autoregressive decoding as a system-level loop.

    The paper evaluates single decode steps; a serving system generates
    many tokens, and the KV cache — hence every attention operator's shape
    and HBM volume — grows each step.  This module drives that loop: it
    compiles a plan for the current context length, simulates decode steps
    with it, and recompiles when the context has grown enough that the
    plan's shapes are stale (amortizing Elk's compile time across steps,
    exactly how a deployment would run it).

    The result quantifies end-to-end serving: tokens/second over a whole
    generation, the latency growth as the KV cache fills, and how many
    recompilations the run needed. *)

type step = {
  token : int;  (** 0-based generated-token index. *)
  ctx : int;  (** KV length the step ran with. *)
  latency : float;  (** simulated step latency incl. all-reduce. *)
  recompiled : bool;  (** a fresh plan was compiled for this step. *)
}

type run = {
  steps : step list;
  prefill_latency : float;
      (** simulated prefill-phase latency (0 when [prefill] was false). *)
  total_time : float;  (** sum of decode-step latencies. *)
  compile_time : float;  (** total wall-clock spent compiling. *)
  tokens_per_second : float;  (** steps / total_time (excl. compile). *)
  recompilations : int;
  highwater : float;
      (** peak static per-core SRAM demand (bytes) across every plan the
          run compiled, prefill included — the {!Elk.Residency} ledger's
          high water, read off each schedule at compile time. *)
  busiest_link : string;
      (** name of the busiest interconnect link (by reservation time)
          across every plan the run simulated, when the run was made
          with [noc]; [""] otherwise. *)
  link_busy : float;
      (** that link's reservation seconds; [0.] without [noc]. *)
}

val serve :
  ?design:Elk_baselines.Baselines.design ->
  ?recompile_every:int ->
  ?prefill:bool ->
  ?elk_options:Elk.Compile.options ->
  ?jobs:int ->
  ?noc:bool ->
  Elk_dse.Dse.env ->
  Elk_model.Zoo.config ->
  batch:int ->
  prompt_ctx:int ->
  tokens:int ->
  run
(** Generate [tokens] tokens for a [batch] of requests whose prompt
    occupies [prompt_ctx] KV entries.  A plan is compiled for context
    lengths rounded up to the next [recompile_every] boundary (default
    64), so shapes are always sufficient and plans are reused across
    steps.  With [prefill] (default false) the prompt is first processed
    through a prefill-phase plan, giving a time-to-first-token.  [design]
    defaults to [Elk_full].  [jobs] resizes the shared compilation pool
    ({!Elk_util.Pool.set_jobs}) before the loop, so every recompile in
    the generation runs its order search on that many domains; plans are
    identical whatever the value.  [noc] (default false) turns on
    per-link interconnect recording in each plan's simulation and fills
    the [busiest_link]/[link_busy] fields; recording is pure
    bookkeeping, so latencies are identical either way.  Raises
    [Invalid_argument] for nonpositive [tokens]/[batch]/[prompt_ctx]. *)

val time_to_first_token : run -> float
(** [prefill_latency] plus the first decode step's latency. *)

val mean_latency : run -> float
val last_latency : run -> float

val tokens_per_second : run -> float
(** Throughput recomputed from the recorded steps: steps / total decode
    time, and 0 for degenerate runs (no steps, or zero total time) —
    never a division by zero, unlike reading the raw field off a
    hand-built [run]. *)

val pp_run : Format.formatter -> run -> unit
