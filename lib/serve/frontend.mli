(** Serving front-end: admission queue + FCFS batch forming over the
    {!Serve} decode loop, on a simulated clock.

    Requests from {!Workload} arrive over time; whenever the engine is
    free, the oldest queued requests (up to [max_batch]) are admitted as
    one batch, padded to a common shape, and generated with a memoized
    {!Serve.serve} run — static batching with a plan cache keyed on the
    padded shape, so compile work amortizes across the workload.  Every
    lifecycle timestamp is simulated; results are byte-deterministic for
    a given request list at any jobs count. *)

type req_trace = {
  req : Workload.request;
  batch_id : int;
  admitted : float;  (** when its batch formed (= queue exit) *)
  prefill_end : float;
  first_token : float;  (** completion of its first decode token *)
  finish : float;  (** completion of its last decode token *)
  itls : float list;  (** inter-token latencies, length [output_len - 1] *)
}

type batch_trace = {
  b_id : int;
  b_size : int;  (** admitted requests *)
  b_bucket : int;  (** padded batch size the plan was built for *)
  b_prompt_ctx : int;  (** padded prompt length *)
  b_tokens : int;  (** decode steps actually timed (longest member) *)
  b_formed : float;
  b_prefill : float;  (** simulated prefill latency *)
  b_end : float;
  b_step_ends : float array;  (** completion time of decode step [k] *)
  b_live : int array;  (** requests still generating at step [k] *)
  b_fresh_plans : int;  (** decode plans compiled for this batch (0 = cache hit) *)
  b_highwater : float;
      (** peak static per-core SRAM bytes across the plans serving this
          batch ({!Serve.run.highwater} of its memoized run) *)
  b_busiest_link : string;
      (** hottest interconnect link across the plans serving this batch
          ({!Serve.run.busiest_link}; [""] when [run] was called without
          [noc]) *)
  b_link_busy : float;  (** that link's reservation seconds (0 without [noc]) *)
}

type result = {
  requests : req_trace list;  (** in request-id (= arrival) order *)
  batches : batch_trace list;  (** in formation order *)
  makespan : float;  (** completion time of the last batch *)
  distinct_shapes : int;  (** plan-cache misses: Serve runs actually computed *)
  recompilations : int;  (** decode plans compiled across all misses *)
  plan_cache_size : int;  (** shapes resident in the plan cache at the end *)
  plan_cache_evictions : int;  (** shapes evicted by the LRU cap *)
}

val run :
  ?design:Elk_baselines.Baselines.design ->
  ?recompile_every:int ->
  ?elk_options:Elk.Compile.options ->
  ?jobs:int ->
  ?max_batch:int ->
  ?plan_cache_cap:int ->
  ?noc:bool ->
  Elk_dse.Dse.env ->
  Elk_model.Zoo.config ->
  Workload.request list ->
  result
(** Serve the whole request list.  [max_batch] (default 8) bounds batch
    size; batches pad to the next power of two, prompts to the plan
    quantum ([recompile_every], default 64), token counts to a multiple
    of 16, and identical padded shapes reuse one {!Serve.serve} run.
    The shape memo is bounded by [plan_cache_cap] (default 512) with
    least-recently-used eviction ([elk_serve_plan_evictions_total]
    counts evictions); an evicted shape that recurs is recompiled.
    [noc] (default false) records per-link interconnect traffic in each
    plan's simulation and fills the [b_busiest_link] / [b_link_busy]
    batch fields; latencies are identical either way.  Raises
    [Invalid_argument] on an empty or out-of-order request list or
    nonpositive [max_batch] / [plan_cache_cap]. *)

val queue_wait : req_trace -> float
(** Arrival to batch admission. *)

val ttft : req_trace -> float
(** Arrival to first decode-token completion. *)

val timeseries :
  ?window:float -> ?mem:bool -> ?noc:bool -> result -> Elk_obs.Timeseries.t
(** Replay the lifecycle into a {!Elk_obs.Timeseries}: [queue_depth] and
    [inflight_requests] gauges, [tokens_completed] / [tokens_padded]
    counters per decode step, and rolling [ttft] / [itl] / [queue_wait]
    histograms.  With [mem] (default false) also a
    [sram_highwater_per_core] gauge stepping at each batch formation;
    with [noc] (default false) a [noc_busiest_link_busy] gauge of the
    hottest link's reservation seconds, stepping the same way (the
    result must come from {!run} with [noc] for it to be non-zero).
    [window] defaults to [makespan / 48]. *)

val serving_pid : int
(** Perfetto process id the serving tracks live under. *)

val chrome_events : result -> string list
(** Per-request queued/prefill/decode slices on one lane per request, a
    batch lane, and flow arrows from each request's admission to its
    batch — ready for {!Elk_obs.Chrome.write}. *)
