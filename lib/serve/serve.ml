module B = Elk_baselines.Baselines
module D = Elk_dse.Dse

type step = { token : int; ctx : int; latency : float; recompiled : bool }

type run = {
  steps : step list;
  prefill_latency : float;
  total_time : float;
  compile_time : float;
  tokens_per_second : float;
  recompilations : int;
  highwater : float;
  busiest_link : string;
  link_busy : float;
}

let round_up v quantum = (v + quantum - 1) / quantum * quantum

let serve ?(design = B.Elk_full) ?(recompile_every = 64) ?(prefill = false) ?elk_options
    ?jobs ?(noc = false) env cfg ~batch ~prompt_ctx ~tokens =
  if tokens <= 0 || batch <= 0 || prompt_ctx <= 0 then
    invalid_arg "Serve.serve: nonpositive workload parameter";
  (* Every recompile in the loop goes through the shared pool; size it
     once up front so mid-generation recompiles reuse warm domains. *)
  Option.iter Elk_util.Pool.set_jobs jobs;
  if design = B.Ideal then invalid_arg "Serve.serve: Ideal has no executable plan";
  (* Percentile queries after the run must describe this run alone. *)
  Elk_obs.Metrics.reset_histogram "elk_serve_step_latency_seconds";
  let chips = env.D.pod.Elk_arch.Arch.chips in
  (* Cache of (plan context length -> (latency, compile seconds)). *)
  let plans = Hashtbl.create 8 in
  (* Peak static per-core SRAM demand across every plan this run
     compiles (prefill included): the Residency ledger's high water,
     read off the schedule at compile time — no extra simulation. *)
  let chip = Elk_partition.Partition.ctx_chip env.D.ctx in
  let highwater = ref 0. in
  let note_plan s =
    let ledger =
      Elk.Residency.of_schedule
        ~capacity:(Elk_arch.Arch.usable_sram_per_core chip)
        ~cores:chip.Elk_arch.Arch.cores s
    in
    highwater := Float.max !highwater ledger.Elk.Residency.high_water
  in
  (* Peak busy-time interconnect link across every plan this run
     simulates, from the per-link record ([~noc] only).  link_stats is
     canonically ordered, so a strict [>] keeps ties deterministic. *)
  let busiest_link = ref "" and link_busy = ref 0. in
  let note_noc (r : Elk_sim.Sim.result) =
    match r.Elk_sim.Sim.noc with
    | None -> ()
    | Some nt ->
        List.iter
          (fun s ->
            if s.Elk_sim.Noctrace.ls_busy > !link_busy then begin
              link_busy := s.Elk_sim.Noctrace.ls_busy;
              busiest_link := Elk_noc.Noc.link_name s.Elk_sim.Noctrace.ls_link
            end)
          (Elk_sim.Noctrace.link_stats nt)
  in
  let plan_for ctx_len =
    match Hashtbl.find_opt plans ctx_len with
    | Some entry -> (entry, false)
    | None ->
        Elk_obs.Metrics.incr "elk_serve_recompiles_total"
          ~help:"Decode plans compiled as the KV context grew";
        Elk_obs.Logger.debug ~src:"serve"
          ~kvs:[ ("plan_ctx", string_of_int ctx_len) ]
          "recompiling decode plan";
        let entry =
          Elk_obs.Span.with_span "serve-plan"
            ~attrs:[ ("plan_ctx", string_of_int ctx_len) ]
            (fun () ->
              let t0 = Unix.gettimeofday () in
              let graph =
                Elk_model.Zoo.build cfg (Elk_model.Zoo.Decode { batch; ctx = ctx_len })
              in
              let latency =
                match B.plan ?elk_options env.D.ctx ~pod:env.D.pod graph design with
                | Some s ->
                    note_plan s;
                    let r = Elk_sim.Sim.run ~noc env.D.ctx s in
                    note_noc r;
                    r.Elk_sim.Sim.total
                    +. Elk.Sharding.allreduce_time env.D.pod
                         (Elk.Sharding.shard_graph ~chips graph)
                | None -> invalid_arg "Serve.serve: design produced no plan"
              in
              (latency, Unix.gettimeofday () -. t0))
        in
        Hashtbl.add plans ctx_len entry;
        (entry, true)
  in
  let extra_compile = ref 0. in
  let prefill_latency =
    if not prefill then 0.
    else begin
      Elk_obs.Span.with_span "serve-prefill-plan"
        ~attrs:[ ("seq", string_of_int prompt_ctx) ]
      @@ fun () ->
      let t0 = Unix.gettimeofday () in
      let graph = Elk_model.Zoo.build cfg (Elk_model.Zoo.Prefill { batch; seq = prompt_ctx }) in
      let latency =
        match B.plan ?elk_options env.D.ctx ~pod:env.D.pod graph design with
        | Some s ->
            note_plan s;
            let r = Elk_sim.Sim.run ~noc env.D.ctx s in
            note_noc r;
            r.Elk_sim.Sim.total
            +. Elk.Sharding.allreduce_time env.D.pod
                 (Elk.Sharding.shard_graph ~chips graph)
        | None -> invalid_arg "Serve.serve: design produced no prefill plan"
      in
      extra_compile := Unix.gettimeofday () -. t0;
      latency
    end
  in
  let steps = ref [] in
  for token = 0 to tokens - 1 do
    let ctx = prompt_ctx + token in
    let plan_ctx = round_up (max 1 ctx) recompile_every in
    let (latency, _), recompiled = plan_for plan_ctx in
    Elk_obs.Metrics.observe "elk_serve_step_latency_seconds" latency
      ~help:"Simulated per-token decode latency";
    steps := { token; ctx; latency; recompiled } :: !steps
  done;
  let steps = List.rev !steps in
  let total_time = List.fold_left (fun a s -> a +. s.latency) 0. steps in
  let compile_time = !extra_compile +. Hashtbl.fold (fun _ (_, c) a -> a +. c) plans 0. in
  let tokens_per_second =
    if total_time > 0. then float_of_int tokens /. total_time else 0.
  in
  Elk_obs.Metrics.set "elk_serve_tokens_per_second" tokens_per_second
    ~help:"Simulated decode throughput of the last serving run";
  Elk_obs.Logger.info ~src:"serve"
    ~kvs:
      [
        ("tokens", string_of_int tokens);
        ("tok_per_s", Printf.sprintf "%.1f" tokens_per_second);
        ("recompilations", string_of_int (Hashtbl.length plans));
        ("compile_s", Printf.sprintf "%.2f" compile_time);
      ]
    "serving run complete";
  {
    steps;
    prefill_latency;
    total_time;
    compile_time;
    tokens_per_second;
    recompilations = Hashtbl.length plans;
    highwater = !highwater;
    busiest_link = !busiest_link;
    link_busy = !link_busy;
  }

let time_to_first_token r =
  r.prefill_latency +. (match r.steps with s :: _ -> s.latency | [] -> 0.)

let mean_latency r =
  match r.steps with
  | [] -> 0.
  | steps -> r.total_time /. float_of_int (List.length steps)

let last_latency r =
  match List.rev r.steps with [] -> 0. | s :: _ -> s.latency

(* Recompute throughput from the steps actually recorded rather than
   trusting the stored field: safe on synthetic/truncated runs where
   [steps] is empty or [total_time] is 0. *)
let tokens_per_second r =
  match r.steps with
  | [] -> 0.
  | steps ->
      if r.total_time > 0. then float_of_int (List.length steps) /. r.total_time
      else 0.

let pp_run fmt r =
  Format.fprintf fmt
    "%d tokens in %a (%.0f tok/s), %d plan(s) compiled in %.2fs, latency %a -> %a"
    (List.length r.steps) Elk_util.Units.pp_time r.total_time r.tokens_per_second
    r.recompilations r.compile_time Elk_util.Units.pp_time
    (match r.steps with [] -> 0. | s :: _ -> s.latency)
    Elk_util.Units.pp_time (last_latency r)
