(** JSON string escaping shared by every exporter that emits JSON by hand
    (the Chrome-trace writers, the metrics JSON exporter).

    [Elk_sim.Trace] historically carried its own partial escaper that
    missed control characters; this module is the single, complete
    implementation. *)

val escape : string -> string
(** Escape a string for inclusion inside a JSON string literal: quotes,
    backslashes, and every control character below [0x20] (named escapes
    for [\n \r \t \b \f], [\u00XX] for the rest).  Does not add the
    surrounding quotes. *)

val quote : string -> string
(** [quote s] is [escape s] wrapped in double quotes — a complete JSON
    string literal. *)

val number : float -> string
(** Render a float as a JSON number: integral values without a fraction,
    others with round-trip precision.  Non-finite values (which JSON
    cannot represent) render as [null]. *)

(** {1 Parsing}

    A minimal JSON document model and recursive-descent parser, enough
    for the snapshot formats this repo emits itself ([elk critpath
    --json-out], metrics JSON, [BENCH_*.json]) to be read back —
    [elk trace diff] is the main consumer.  Numbers are floats;
    duplicate object keys keep the first occurrence on lookup. *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

val parse : string -> (value, string) result
(** Parse one complete JSON document; the error carries a byte offset.
    [null] in a numeric position reads back as [nan] via {!to_float},
    matching how {!number} renders non-finite floats. *)

val member : string -> value -> value option
(** Object field lookup; [None] on non-objects and missing keys. *)

val to_float : value -> float option
(** [Num f] as [Some f]; [Null] as [Some nan] (see {!number}). *)

val to_str : value -> string option
val to_list : value -> value list
(** Array elements; [[]] on non-arrays. *)
