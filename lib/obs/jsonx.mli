(** JSON string escaping shared by every exporter that emits JSON by hand
    (the Chrome-trace writers, the metrics JSON exporter).

    [Elk_sim.Trace] historically carried its own partial escaper that
    missed control characters; this module is the single, complete
    implementation. *)

val escape : string -> string
(** Escape a string for inclusion inside a JSON string literal: quotes,
    backslashes, and every control character below [0x20] (named escapes
    for [\n \r \t \b \f], [\u00XX] for the rest).  Does not add the
    surrounding quotes. *)

val quote : string -> string
(** [quote s] is [escape s] wrapped in double quotes — a complete JSON
    string literal. *)

val number : float -> string
(** Render a float as a JSON number: integral values without a fraction,
    others with round-trip precision.  Non-finite values (which JSON
    cannot represent) render as [null]. *)
