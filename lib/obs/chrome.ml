let us t = t *. 1e6

let complete_event ?(pid = 1) ~tid ~name ?(cat = "elk") ~start ~dur ~args () =
  let args_s =
    match args with
    | [] -> "{}"
    | kvs ->
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> Jsonx.quote k ^ ":" ^ v) kvs)
        ^ "}"
  in
  Printf.sprintf
    "{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":%s}"
    (Jsonx.quote name) (Jsonx.quote cat) pid tid (us start) (us dur) args_s

let counter_event ?(pid = 1) ~name ~ts ~value () =
  Printf.sprintf
    "{\"name\":%s,\"cat\":\"elk\",\"ph\":\"C\",\"pid\":%d,\"ts\":%.3f,\"args\":{\"value\":%s}}"
    (Jsonx.quote name) pid (us ts) (Jsonx.number value)

let flow_start ?(pid = 1) ~tid ~name ?(cat = "elk") ~id ~ts () =
  Printf.sprintf
    "{\"name\":%s,\"cat\":%s,\"ph\":\"s\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"id\":%d}"
    (Jsonx.quote name) (Jsonx.quote cat) pid tid (us ts) id

let flow_end ?(pid = 1) ~tid ~name ?(cat = "elk") ~id ~ts () =
  (* bp:"e" binds the arrow head to the enclosing slice even when [ts]
     falls on the slice boundary — required for back-to-back events. *)
  Printf.sprintf
    "{\"name\":%s,\"cat\":%s,\"ph\":\"f\",\"bp\":\"e\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"id\":%d}"
    (Jsonx.quote name) (Jsonx.quote cat) pid tid (us ts) id

let thread_name ~pid ~tid name =
  Printf.sprintf
    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":%s}}"
    pid tid (Jsonx.quote name)

let wrap events = "{\"traceEvents\":[\n" ^ String.concat ",\n" events ^ "\n]}\n"

let write ~path events =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (wrap events))
