type histogram = {
  bounds : float array;  (* ascending bucket upper bounds; +inf implicit *)
  buckets : int array;  (* length = Array.length bounds + 1 *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type value = Counter of float ref | Gauge of float ref | Histogram of histogram
type metric = { help : string; v : value }

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let order : string list ref = ref []
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* Log-scale bucket bounds: powers of two from 1us to ~550s — 40 buckets
   plus overflow cover nine decades, enough for any timing this repo
   records, while byte/count-valued histograms still get a usable
   log-scale resolution. *)
let default_bounds =
  Array.init 40 (fun i -> 1e-6 *. Float.pow 2. (float_of_int i))

let new_histogram () =
  {
    bounds = default_bounds;
    buckets = Array.make (Array.length default_bounds + 1) 0;
    h_count = 0;
    h_sum = 0.;
    h_min = Float.infinity;
    h_max = Float.neg_infinity;
  }

let find_or_add name help make =
  match Hashtbl.find_opt registry name with
  | Some m -> m
  | None ->
      let m = { help; v = make () } in
      Hashtbl.add registry name m;
      order := name :: !order;
      m

let incr ?(by = 1.) ?(help = "") name =
  if Control.is_enabled () then
    with_lock (fun () ->
        match (find_or_add name help (fun () -> Counter (ref 0.))).v with
        | Counter r -> r := !r +. by
        | _ -> ())

let set ?(help = "") name x =
  if Control.is_enabled () then
    with_lock (fun () ->
        match (find_or_add name help (fun () -> Gauge (ref 0.))).v with
        | Gauge r -> r := x
        | _ -> ())

let bucket_index bounds x =
  (* First bucket whose upper bound covers x; the last bucket is the
     overflow.  Linear scan: 41 entries, recording is not the hot path. *)
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if x <= bounds.(i) then i else go (i + 1) in
  go 0

let observe ?(help = "") name x =
  if Control.is_enabled () then
    with_lock (fun () ->
        match (find_or_add name help (fun () -> Histogram (new_histogram ()))).v with
        | Histogram h ->
            let i = bucket_index h.bounds x in
            h.buckets.(i) <- h.buckets.(i) + 1;
            h.h_count <- h.h_count + 1;
            h.h_sum <- h.h_sum +. x;
            if x < h.h_min then h.h_min <- x;
            if x > h.h_max then h.h_max <- x
        | _ -> ())

let time ?help name f =
  if not (Control.is_enabled ()) then f ()
  else begin
    let t0 = Control.now () in
    Fun.protect ~finally:(fun () -> observe ?help name (Control.now () -. t0)) f
  end

let find name = with_lock (fun () -> Hashtbl.find_opt registry name)

let counter_value name =
  match find name with Some { v = Counter r; _ } -> Some !r | _ -> None

let gauge_value name =
  match find name with Some { v = Gauge r; _ } -> Some !r | _ -> None

(* An empty histogram is reachable once reset_histogram exists (reuse
   across Serve runs): summary queries must degrade to zeros, never to
   the infinite sentinels or an exception. *)
let histogram_stats name =
  match find name with
  | Some { v = Histogram h; _ } ->
      if h.h_count = 0 then Some (0, 0., 0., 0.)
      else Some (h.h_count, h.h_sum, h.h_min, h.h_max)
  | _ -> None

let percentile name p =
  match find name with
  | Some { v = Histogram h; _ } when h.h_count = 0 -> Some 0.
  | Some { v = Histogram h; _ } ->
      let p = Float.max 0. (Float.min 100. p) in
      let target = p /. 100. *. float_of_int h.h_count in
      let n = Array.length h.bounds in
      let rec go i cum =
        if i > n then h.h_max
        else
          let c = h.buckets.(i) in
          if float_of_int (cum + c) >= target && c > 0 then begin
            (* Geometric interpolation between the bucket's bounds. *)
            let lo = if i = 0 then Float.max 1e-12 h.h_min else h.bounds.(i - 1) in
            let hi = if i = n then h.h_max else h.bounds.(i) in
            let lo = Float.max 1e-12 lo in
            let hi = Float.max lo hi in
            let frac =
              Float.max 0.
                (Float.min 1. ((target -. float_of_int cum) /. float_of_int c))
            in
            lo *. Float.pow (hi /. lo) frac
          end
          else go (i + 1) (cum + c)
      in
      let v = go 0 0 in
      Some (Float.max h.h_min (Float.min h.h_max v))
  | _ -> None

let registered () = List.rev !order

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]* *)
let sanitize name =
  String.mapi
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> c
      | '0' .. '9' when i > 0 -> c
      | _ -> '_')
    name

let prom_num f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let to_prometheus () =
  let names = registered () in
  let b = Buffer.create 1024 in
  List.iter
    (fun name ->
      match with_lock (fun () -> Hashtbl.find_opt registry name) with
      | None -> ()
      | Some m ->
          let pname = sanitize name in
          if m.help <> "" then
            Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" pname m.help);
          (match m.v with
          | Counter r ->
              Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" pname);
              Buffer.add_string b (Printf.sprintf "%s %s\n" pname (prom_num !r))
          | Gauge r ->
              Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" pname);
              Buffer.add_string b (Printf.sprintf "%s %s\n" pname (prom_num !r))
          | Histogram h ->
              Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" pname);
              let cum = ref 0 in
              Array.iteri
                (fun i bound ->
                  cum := !cum + h.buckets.(i);
                  (* Only emit buckets up to the first empty tail to keep
                     the exposition compact. *)
                  if !cum > 0 || bound >= h.h_min then
                    Buffer.add_string b
                      (Printf.sprintf "%s_bucket{le=\"%g\"} %d\n" pname bound !cum))
                h.bounds;
              Buffer.add_string b
                (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" pname h.h_count);
              Buffer.add_string b
                (Printf.sprintf "%s_sum %s\n" pname (prom_num h.h_sum));
              Buffer.add_string b (Printf.sprintf "%s_count %d\n" pname h.h_count)))
    names;
  Buffer.contents b

let counters () =
  List.filter_map
    (fun name ->
      match counter_value name with Some v -> Some (name, v) | None -> None)
    (registered ())

let to_json () =
  let names = registered () in
  let kind p = List.filter (fun n -> p n) names in
  let is_counter n = counter_value n <> None in
  let is_gauge n = gauge_value n <> None in
  let is_histogram n = histogram_stats n <> None in
  let obj fields = "{" ^ String.concat "," fields ^ "}" in
  let counters_json =
    List.map
      (fun n -> Jsonx.quote n ^ ":" ^ Jsonx.number (Option.get (counter_value n)))
      (kind is_counter)
  in
  let gauges_json =
    List.map
      (fun n -> Jsonx.quote n ^ ":" ^ Jsonx.number (Option.get (gauge_value n)))
      (kind is_gauge)
  in
  let hist_json =
    List.map
      (fun n ->
        let count, sum, mn, mx = Option.get (histogram_stats n) in
        let pct p =
          match percentile n p with Some v -> Jsonx.number v | None -> "null"
        in
        Jsonx.quote n ^ ":"
        ^ obj
            [
              "\"count\":" ^ string_of_int count;
              "\"sum\":" ^ Jsonx.number sum;
              "\"min\":" ^ Jsonx.number mn;
              "\"max\":" ^ Jsonx.number mx;
              "\"p50\":" ^ pct 50.;
              "\"p90\":" ^ pct 90.;
              "\"p99\":" ^ pct 99.;
            ])
      (kind is_histogram)
  in
  obj
    [
      "\"counters\":" ^ obj counters_json;
      "\"gauges\":" ^ obj gauges_json;
      "\"histograms\":" ^ obj hist_json;
    ]
  ^ "\n"

let reset_histogram name =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some { v = Histogram h; _ } ->
          Array.fill h.buckets 0 (Array.length h.buckets) 0;
          h.h_count <- 0;
          h.h_sum <- 0.;
          h.h_min <- Float.infinity;
          h.h_max <- Float.neg_infinity
      | _ -> ())

let reset () =
  with_lock (fun () ->
      Hashtbl.reset registry;
      order := [])
