let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let quote s = "\"" ^ escape s ^ "\""

let number f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

(* ---- Parsing -------------------------------------------------------- *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let n = String.length cur.src in
  while
    cur.pos < n
    && match cur.src.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance cur
  done

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected '%c'" c)

let lit cur word v =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.src
    && String.sub cur.src cur.pos n = word
  then (
    cur.pos <- cur.pos + n;
    v)
  else fail cur (Printf.sprintf "expected '%s'" word)

let parse_string cur =
  expect cur '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | None -> fail cur "unterminated escape"
        | Some c ->
            advance cur;
            (match c with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if cur.pos + 4 > String.length cur.src then
                  fail cur "truncated \\u escape";
                let hex = String.sub cur.src cur.pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail cur "bad \\u escape"
                in
                cur.pos <- cur.pos + 4;
                (* Preserve the byte content: emit UTF-8 for the BMP code
                   point (surrogate pairs land as two replacement runs —
                   fine for the identifiers these documents carry). *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then (
                  Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f))))
                else (
                  Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
                  Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f))))
            | _ -> fail cur "unknown escape");
            go ())
    | Some c ->
        advance cur;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number cur =
  let start = cur.pos in
  let n = String.length cur.src in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while cur.pos < n && is_num_char cur.src.[cur.pos] do
    advance cur
  done;
  if cur.pos = start then fail cur "expected number";
  let s = String.sub cur.src start (cur.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail cur (Printf.sprintf "bad number %S" s)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some '"' -> Str (parse_string cur)
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then (
        advance cur;
        Obj [])
      else
        let rec members acc =
          skip_ws cur;
          let k = parse_string cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              members ((k, v) :: acc)
          | Some '}' ->
              advance cur;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail cur "expected ',' or '}'"
        in
        members []
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then (
        advance cur;
        Arr [])
      else
        let rec elements acc =
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              elements (v :: acc)
          | Some ']' ->
              advance cur;
              Arr (List.rev (v :: acc))
          | _ -> fail cur "expected ',' or ']'"
        in
        elements []
  | Some 't' -> lit cur "true" (Bool true)
  | Some 'f' -> lit cur "false" (Bool false)
  | Some 'n' -> lit cur "null" Null
  | Some _ -> Num (parse_number cur)

let parse s =
  let cur = { src = s; pos = 0 } in
  try
    let v = parse_value cur in
    skip_ws cur;
    if cur.pos <> String.length s then
      (* A second top-level value ("{} {}") must not silently parse as
         the first: the whole input is one document or it is invalid. *)
      Error (Printf.sprintf "trailing garbage after document at offset %d" cur.pos)
    else Ok v
  with Parse_error m -> Error m

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_float = function
  | Num f -> Some f
  | Null -> Some Float.nan
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_list = function Arr vs -> vs | _ -> []
