(** Global on/off switch and clock source for the observability runtime.

    Instrumentation is compiled into the hot paths unconditionally but
    guarded by {!is_enabled}; when disabled (the default) every
    instrumentation call is a branch on a ref — the no-op fast path the
    benchmark harness relies on.  Setting [ELK_OBS=1] in the environment
    enables collection at program start; the CLI enables it explicitly
    when an export flag is passed. *)

val enable : unit -> unit
val disable : unit -> unit

val is_enabled : unit -> bool
(** Whether metrics, spans, and hot-path counters are being recorded. *)

val now : unit -> float
(** Monotonized wall-clock time in seconds: [Unix.gettimeofday] clamped
    to be non-decreasing across calls, so span durations are never
    negative even if the system clock steps backwards. *)
