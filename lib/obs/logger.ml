type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn" | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let threshold : level option ref =
  ref
    (match Sys.getenv_opt "ELK_LOG" with
    | Some s -> level_of_string s
    | None -> None)

let set_level l = threshold := l
let level () = !threshold

let enabled l =
  match !threshold with None -> false | Some t -> severity l >= severity t

let needs_quote v =
  v = ""
  || String.exists (fun c -> c = ' ' || c = '"' || c = '=' || Char.code c < 0x20) v

let kv_value v = if needs_quote v then Jsonx.quote v else v

let log l ~src ?(kvs = []) msg =
  if enabled l then begin
    let b = Buffer.create 96 in
    Buffer.add_string b
      (Printf.sprintf "level=%s src=%s msg=%s" (level_name l) src (kv_value msg));
    List.iter
      (fun (k, v) ->
        Buffer.add_char b ' ';
        Buffer.add_string b k;
        Buffer.add_char b '=';
        Buffer.add_string b (kv_value v))
      kvs;
    prerr_endline (Buffer.contents b)
  end

let debug ~src ?kvs msg = log Debug ~src ?kvs msg
let info ~src ?kvs msg = log Info ~src ?kvs msg
let warn ~src ?kvs msg = log Warn ~src ?kvs msg
let error ~src ?kvs msg = log Error ~src ?kvs msg
