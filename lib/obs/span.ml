type t = {
  name : string;
  start : float;
  dur : float;
  depth : int;
  seq : int;
  domain : int;
  attrs : (string * string) list;
}

let lock = Mutex.create ()
let completed : t list ref = ref [] (* reverse completion order *)
let n_completed = ref 0

(* Nesting depth is a per-domain notion: spans opened by pool workers
   during the parallel order search nest within their own domain's stack,
   not within whatever the main domain happens to be timing. *)
let depth_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let clear () =
  Mutex.lock lock;
  completed := [];
  n_completed := 0;
  (* Only the calling domain's depth can be reset; other domains are
     either idle (depth already 0 — [with_span] restores it on exit) or
     mid-span, in which case resetting would corrupt their nesting. *)
  Domain.DLS.get depth_key := 0;
  Mutex.unlock lock

let with_span ?(attrs = []) name f =
  if not (Control.is_enabled ()) then f ()
  else begin
    let depth = Domain.DLS.get depth_key in
    let d = !depth in
    incr depth;
    let domain = (Domain.self () :> int) in
    let t0 = Control.now () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Control.now () in
        decr depth;
        Mutex.lock lock;
        incr n_completed;
        completed :=
          { name; start = t0; dur = t1 -. t0; depth = d; seq = !n_completed; domain; attrs }
          :: !completed;
        Mutex.unlock lock)
      f
  end

let spans () =
  Mutex.lock lock;
  let s = List.rev !completed in
  Mutex.unlock lock;
  s

let count () = !n_completed

let totals () =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      (* Tie-break equal start timestamps (clock granularity) by depth:
         at the same tick the enclosing span is the one that started
         first, so "ordered by first start" stays deterministic. *)
      match Hashtbl.find_opt tbl s.name with
      | None -> Hashtbl.add tbl s.name ((s.start, s.depth), 1, s.dur)
      | Some (k, c, tot) ->
          Hashtbl.replace tbl s.name (min k (s.start, s.depth), c + 1, tot +. s.dur))
    (spans ());
  Hashtbl.fold (fun name (k, c, tot) acc -> (k, name, c, tot) :: acc) tbl []
  |> List.sort compare
  |> List.map (fun (_, name, c, tot) -> (name, c, tot))

let chrome_events ?(pid = 1) ?(tid = 3) () =
  match spans () with
  | [] -> []
  | ss ->
      let base = List.fold_left (fun a s -> Float.min a s.start) Float.infinity ss in
      (* One trace thread per domain that recorded spans.  Tracks are
         numbered from [tid] by each domain's earliest recorded span
         (start, then global seq) — a content-derived key — rather than
         by raw [Domain.self] id, which depends on how many pool domains
         were spawned before the trace (jobs count, earlier searches).
         The main domain opens the root span first, so it keeps the
         historical "compiler" track. *)
      let earliest = Hashtbl.create 8 in
      List.iter
        (fun s ->
          let k = (s.start, s.seq) in
          match Hashtbl.find_opt earliest s.domain with
          | Some k' when k' <= k -> ()
          | _ -> Hashtbl.replace earliest s.domain k)
        ss;
      let doms =
        Hashtbl.fold (fun d k acc -> (k, d) :: acc) earliest []
        |> List.sort compare
        |> List.map snd
      in
      let tid_of d =
        let rec index i = function
          | [] -> 0
          | x :: rest -> if x = d then i else index (i + 1) rest
        in
        tid + index 0 doms
      in
      List.mapi
        (fun i _ ->
          Chrome.thread_name ~pid ~tid:(tid + i)
            (if i = 0 then "compiler" else Printf.sprintf "compiler-w%d" i))
        doms
      @ List.map
          (fun s ->
            Chrome.complete_event ~pid ~tid:(tid_of s.domain) ~name:s.name ~cat:"elk-obs"
              ~start:(s.start -. base) ~dur:s.dur
              ~args:(List.map (fun (k, v) -> (k, Jsonx.quote v)) s.attrs)
              ())
          ss
