type t = {
  name : string;
  start : float;
  dur : float;
  depth : int;
  seq : int;
  attrs : (string * string) list;
}

let lock = Mutex.create ()
let completed : t list ref = ref [] (* reverse completion order *)
let n_completed = ref 0
let depth = ref 0

let clear () =
  Mutex.lock lock;
  completed := [];
  n_completed := 0;
  depth := 0;
  Mutex.unlock lock

let with_span ?(attrs = []) name f =
  if not (Control.is_enabled ()) then f ()
  else begin
    Mutex.lock lock;
    let d = !depth in
    incr depth;
    Mutex.unlock lock;
    let t0 = Control.now () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Control.now () in
        Mutex.lock lock;
        decr depth;
        incr n_completed;
        completed :=
          { name; start = t0; dur = t1 -. t0; depth = d; seq = !n_completed; attrs }
          :: !completed;
        Mutex.unlock lock)
      f
  end

let spans () =
  Mutex.lock lock;
  let s = List.rev !completed in
  Mutex.unlock lock;
  s

let count () = !n_completed

let totals () =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      (* Tie-break equal start timestamps (clock granularity) by depth:
         at the same tick the enclosing span is the one that started
         first, so "ordered by first start" stays deterministic. *)
      match Hashtbl.find_opt tbl s.name with
      | None -> Hashtbl.add tbl s.name ((s.start, s.depth), 1, s.dur)
      | Some (k, c, tot) ->
          Hashtbl.replace tbl s.name (min k (s.start, s.depth), c + 1, tot +. s.dur))
    (spans ());
  Hashtbl.fold (fun name (k, c, tot) acc -> (k, name, c, tot) :: acc) tbl []
  |> List.sort compare
  |> List.map (fun (_, name, c, tot) -> (name, c, tot))

let chrome_events ?(pid = 1) ?(tid = 3) () =
  match spans () with
  | [] -> []
  | ss ->
      let base = List.fold_left (fun a s -> Float.min a s.start) Float.infinity ss in
      Chrome.thread_name ~pid ~tid "compiler"
      :: List.map
           (fun s ->
             Chrome.complete_event ~pid ~tid ~name:s.name ~cat:"elk-obs"
               ~start:(s.start -. base) ~dur:s.dur
               ~args:(List.map (fun (k, v) -> (k, Jsonx.quote v)) s.attrs)
               ())
           ss
