(** Chrome/Perfetto trace-event JSON building blocks.

    Events are rendered as raw JSON object strings so that producers in
    different libraries ({!Elk_sim.Trace} for simulator events, {!Span}
    for compiler spans) can be concatenated into one timeline file
    without an intermediate JSON document type. *)

val complete_event :
  ?pid:int ->
  tid:int ->
  name:string ->
  ?cat:string ->
  start:float ->
  dur:float ->
  args:(string * string) list ->
  unit ->
  string
(** One complete ("ph":"X") event.  [start] and [dur] are in seconds and
    are converted to the microsecond timestamps the format requires.
    [args] values are raw JSON fragments (already quoted/rendered); keys
    are escaped here. *)

val counter_event : ?pid:int -> name:string -> ts:float -> value:float -> unit -> string
(** One counter ("ph":"C") sample: Perfetto renders successive samples
    under the same [name] as a stepped counter track.  [ts] is in
    seconds; non-finite values render as [null]. *)

val flow_start :
  ?pid:int -> tid:int -> name:string -> ?cat:string -> id:int -> ts:float -> unit -> string
(** A flow ("ph":"s") origin.  Perfetto draws an arrow from the slice
    enclosing [(pid, tid, ts)] to the matching {!flow_end} with the same
    [id] — [Elk_sim.Trace.flow_events] uses one arrow per causal edge of
    the critical path.  [ts] is in seconds. *)

val flow_end :
  ?pid:int -> tid:int -> name:string -> ?cat:string -> id:int -> ts:float -> unit -> string
(** The matching flow terminator ("ph":"f" with "bp":"e": bind to the
    enclosing slice, accepting boundary timestamps). *)

val thread_name : pid:int -> tid:int -> string -> string
(** A thread_name metadata event labelling a track. *)

val wrap : string list -> string
(** Wrap rendered events into a [{"traceEvents":[...]}] document. *)

val write : path:string -> string list -> unit
(** [wrap] to a file. *)
