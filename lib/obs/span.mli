(** Nested timed spans with a process-global, mutex-guarded collector.

    A span measures one contiguous region of work ({!with_span}); spans
    opened while another is running nest under it.  Nesting is tracked
    {e per domain} (via [Domain.DLS]), so spans recorded concurrently by
    the {!Elk_util.Pool} workers of the parallel order search nest
    correctly within their own domain instead of racing on a shared
    stack.  Completed spans accumulate in one global collector until
    {!clear}; they can be aggregated into a per-phase table ({!totals})
    or exported as Chrome-trace events ({!chrome_events}) onto the same
    timeline format {!Elk_sim.Trace} emits, so compiler phases and
    simulated device activity can be viewed together in Perfetto.

    When {!Control.is_enabled} is false, {!with_span} runs its thunk
    directly — the disabled cost is one branch and one closure. *)

type t = {
  name : string;
  start : float;  (** {!Control.now} at entry, seconds. *)
  dur : float;
  depth : int;  (** nesting depth at entry (0 = top level), per domain. *)
  seq : int;  (** 1-based completion sequence number (global). *)
  domain : int;  (** id of the domain that recorded the span. *)
  attrs : (string * string) list;
}

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run a thunk inside a span.  The span is recorded even if the thunk
    raises (the exception propagates). *)

val spans : unit -> t list
(** Completed spans in completion order (inner spans before the span
    that contains them). *)

val count : unit -> int

val totals : unit -> (string * int * float) list
(** Aggregate completed spans by name: [(name, calls, total_seconds)],
    ordered by each name's first start time — i.e. phase order for a
    deterministic program. *)

val chrome_events : ?pid:int -> ?tid:int -> unit -> string list
(** Rendered Chrome-trace events for every completed span, preceded by
    one thread_name metadata event per recording domain; timestamps are
    rebased so the earliest span starts at 0.  Domains map to
    consecutive tracks from [tid] ordered by each domain's earliest
    span (a content-derived key, independent of domain spawn order and
    jobs count) — the main domain keeps the historical "compiler"
    track, pool workers appear as "compiler-wN".  Empty if nothing was
    collected.  Default [tid] is 3 — tracks 1 and 2 belong to
    {!Elk_sim.Trace}. *)

val clear : unit -> unit
(** Drop all completed spans and reset the {e calling} domain's nesting
    depth (other domains restore theirs as their open spans exit). *)
