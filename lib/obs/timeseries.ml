(* Windowed time series over *simulated* time.

   The metrics registry (Metrics) aggregates over a whole run; serving
   studies need "over time": queue depth, throughput, rolling latency
   percentiles.  A [t] is a set of named series, each a ring of
   fixed-width windows laid edge to edge from t = 0.  Recording is
   cheap (append an event); all aggregation happens at export, so the
   same recorded events can be replayed into any report.  Everything is
   deterministic: simulated timestamps in, pure folds out. *)

type kind = Counter | Gauge | Histogram

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

type series = {
  s_kind : kind;
  s_help : string;
  mutable s_events : (float * float) list;  (* (time, value), newest first *)
  mutable s_count : int;
}

type t = {
  width : float;
  capacity : int;  (* ring size: windows older than the newest [capacity] drop *)
  tbl : (string, series) Hashtbl.t;
  mutable order : string list;  (* newest first *)
}

let create ?(window = 1e-3) ?(capacity = max_int) () =
  if not (Float.is_finite window) || window <= 0. then
    invalid_arg "Timeseries.create: window must be positive";
  if capacity <= 0 then invalid_arg "Timeseries.create: capacity must be positive";
  { width = window; capacity; tbl = Hashtbl.create 16; order = [] }

let window t = t.width

let find_or_add t name kind help =
  match Hashtbl.find_opt t.tbl name with
  | Some s ->
      if s.s_kind <> kind then
        invalid_arg
          (Printf.sprintf "Timeseries: %S is a %s, not a %s" name
             (kind_name s.s_kind) (kind_name kind));
      s
  | None ->
      let s = { s_kind = kind; s_help = help; s_events = []; s_count = 0 } in
      Hashtbl.add t.tbl name s;
      t.order <- name :: t.order;
      s

let record t name kind help ~time v =
  if not (Float.is_finite time) || time < 0. then
    invalid_arg (Printf.sprintf "Timeseries: bad timestamp %g for %S" time name);
  if not (Float.is_finite v) then
    invalid_arg (Printf.sprintf "Timeseries: non-finite value for %S" name);
  let s = find_or_add t name kind help in
  s.s_events <- (time, v) :: s.s_events;
  s.s_count <- s.s_count + 1

let add t ?(help = "") name ~time by = record t name Counter help ~time by
let set t ?(help = "") name ~time v = record t name Gauge help ~time v
let observe t ?(help = "") name ~time v = record t name Histogram help ~time v

let names t = List.rev t.order
let kind_of t name = Option.map (fun s -> s.s_kind) (Hashtbl.find_opt t.tbl name)
let help_of t name = Option.map (fun s -> s.s_help) (Hashtbl.find_opt t.tbl name)
let events_recorded t name =
  match Hashtbl.find_opt t.tbl name with Some s -> s.s_count | None -> 0

(* ---- window aggregation ---------------------------------------------- *)

type point = {
  t0 : float;  (* window start (inclusive) *)
  t1 : float;  (* window end (exclusive) *)
  count : int;  (* events recorded inside the window *)
  sum : float;  (* counter: summed increments; histogram: summed samples;
                   gauge: time integral of the value over the window *)
  mean : float;  (* counter: rate (sum/width); histogram: sample mean;
                    gauge: time-weighted mean *)
  vmin : float;  (* smallest value seen (gauges include the carried-in value) *)
  vmax : float;
  last : float;  (* value at window end: gauges carry forward, counters
                    report the cumulative total, histograms the last sample *)
  p50 : float;  (* histogram windows only; 0 elsewhere *)
  p99 : float;
}

(* Half-open windows [i*w, (i+1)*w): a sample landing exactly on an edge
   belongs to the window the edge *opens*. *)
let index t time = int_of_float (Float.floor (time /. t.width))

(* Exact percentile over one window's samples (sorted-array
   interpolation, the same rule as Stats.percentile; duplicated here so
   the base observability library stays dependency-free). *)
let percentile p arr =
  let n = Array.length arr in
  if n = 0 then 0.
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. Float.floor rank in
    (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac)
  end

(* Total windows needed to cover every recorded sample and the horizon.
   A sample exactly on edge k*w opens window k, so coverage must extend
   one past its index; an exactly-covered horizon must not. *)
let total_windows t ?horizon s =
  let latest = List.fold_left (fun a (time, _) -> Float.max a time) 0. s.s_events in
  let covering = if s.s_events = [] then 0 else index t latest + 1 in
  let for_horizon =
    match horizon with
    | None -> 0
    | Some h -> int_of_float (Float.ceil (h /. t.width *. (1. -. 1e-12)))
  in
  max 1 (max for_horizon covering)

let n_windows t ?horizon name =
  match Hashtbl.find_opt t.tbl name with
  | None -> 0
  | Some s -> min t.capacity (total_windows t ?horizon s)

let points t ?horizon name =
  match Hashtbl.find_opt t.tbl name with
  | None -> []
  | Some s ->
      let total = total_windows t ?horizon s in
      let n = min t.capacity total in
      let first = total - n in
      let events =
        (* newest-first storage, stable sort on time keeps same-time
           events in recording order *)
        List.stable_sort
          (fun (a, _) (b, _) -> Float.compare a b)
          (List.rev s.s_events)
      in
      let buckets = Array.make n [] in
      let counts = Array.make n 0 in
      (* carried state across windows; events older than the ring still
         seed it so a truncated gauge enters with its true value *)
      let gauge_v = ref 0. (* gauge value entering the window *)
      and cum = ref 0. (* counter cumulative total *)
      and last_sample = ref 0. in
      List.iter
        (fun (time, v) ->
          let i = index t time - first in
          if i >= 0 && i < n then begin
            buckets.(i) <- (time, v) :: buckets.(i);
            counts.(i) <- counts.(i) + 1
          end
          else if i < 0 then begin
            gauge_v := v;
            cum := !cum +. v;
            last_sample := v
          end)
        events;
      List.init n (fun i ->
          let t0 = float_of_int (first + i) *. t.width in
          let t1 = float_of_int (first + i + 1) *. t.width in
          let evs = List.rev buckets.(i) in
          let vals = List.map snd evs in
          match s.s_kind with
          | Counter ->
              let sum = List.fold_left ( +. ) 0. vals in
              cum := !cum +. sum;
              {
                t0; t1; count = counts.(i); sum;
                mean = sum /. t.width;
                vmin = List.fold_left Float.min 0. vals;
                vmax = List.fold_left Float.max 0. vals;
                last = !cum; p50 = 0.; p99 = 0.;
              }
          | Gauge ->
              (* integrate the piecewise-constant value over [t0, t1) *)
              let enter = !gauge_v in
              let integral, _, tprev =
                List.fold_left
                  (fun (acc, v, tp) (time, v') ->
                    (acc +. (v *. (time -. tp)), v', time))
                  (0., enter, t0) evs
              in
              let v_end = match List.rev vals with v :: _ -> v | [] -> enter in
              let integral = integral +. (v_end *. (t1 -. tprev)) in
              gauge_v := v_end;
              {
                t0; t1; count = counts.(i);
                sum = integral;
                mean = integral /. t.width;
                vmin = List.fold_left Float.min enter vals;
                vmax = List.fold_left Float.max enter vals;
                last = v_end; p50 = 0.; p99 = 0.;
              }
          | Histogram ->
              let sum = List.fold_left ( +. ) 0. vals in
              let arr = Array.of_list vals in
              Array.sort Float.compare arr;
              (match List.rev vals with v :: _ -> last_sample := v | [] -> ());
              {
                t0; t1; count = counts.(i); sum;
                mean = (if counts.(i) = 0 then 0. else sum /. float_of_int counts.(i));
                vmin = (if arr = [||] then 0. else arr.(0));
                vmax = (if arr = [||] then 0. else arr.(Array.length arr - 1));
                last = !last_sample;
                p50 = percentile 50. arr;
                p99 = percentile 99. arr;
              })

(* ---- invariants ------------------------------------------------------ *)

(* The exported windows must tile [0, horizon]: start at 0, sit edge to
   edge, and the last edge must reach the horizon.  Tolerance 1e-6
   relative to the horizon (absolute when the horizon is sub-second). *)
let check_tiling t ~horizon name =
  let tol = 1e-6 *. Float.max 1. horizon in
  match points t ~horizon name with
  | [] -> Error (Printf.sprintf "series %S has no windows" name)
  | first :: _ as pts ->
      let rec walk = function
        | a :: (b :: _ as rest) ->
            if Float.abs (b.t0 -. a.t1) > tol then
              Error
                (Printf.sprintf "series %S: gap between windows at %g..%g" name
                   a.t1 b.t0)
            else if a.t1 -. a.t0 -. t.width > tol then
              Error (Printf.sprintf "series %S: window width drift at %g" name a.t0)
            else walk rest
        | [ last ] ->
            if last.t1 +. tol < horizon then
              Error
                (Printf.sprintf
                   "series %S: windows end at %g, short of horizon %g" name
                   last.t1 horizon)
            else Ok ()
        | [] -> Ok ()
      in
      if Float.abs first.t0 > tol then
        Error (Printf.sprintf "series %S: first window starts at %g, not 0" name first.t0)
      else walk pts

(* ---- export ---------------------------------------------------------- *)

let point_json kind p =
  let f = Jsonx.number in
  let shared = [ ("t0", f p.t0); ("t1", f p.t1) ] in
  let fields =
    match kind with
    | Counter ->
        shared
        @ [ ("count", string_of_int p.count); ("sum", f p.sum);
            ("rate", f p.mean); ("total", f p.last) ]
    | Gauge ->
        shared
        @ [ ("mean", f p.mean); ("min", f p.vmin); ("max", f p.vmax);
            ("last", f p.last) ]
    | Histogram ->
        shared
        @ [ ("count", string_of_int p.count); ("sum", f p.sum);
            ("mean", f p.mean); ("p50", f p.p50); ("p99", f p.p99);
            ("max", f p.vmax) ]
  in
  "{" ^ String.concat "," (List.map (fun (k, v) -> Jsonx.quote k ^ ":" ^ v) fields) ^ "}"

let series_json t ?horizon name =
  match Hashtbl.find_opt t.tbl name with
  | None -> "null"
  | Some s ->
      let pts = points t ?horizon name in
      Printf.sprintf "{\"kind\":%s,\"help\":%s,\"points\":[%s]}"
        (Jsonx.quote (kind_name s.s_kind))
        (Jsonx.quote s.s_help)
        (String.concat "," (List.map (point_json s.s_kind) pts))

let to_json t ?horizon () =
  let entries =
    List.map
      (fun name -> Jsonx.quote name ^ ":" ^ series_json t ?horizon name)
      (names t)
  in
  Printf.sprintf "{\"window\":%s,\"series\":{%s}}"
    (Jsonx.number t.width)
    (String.concat "," entries)

(* One Perfetto counter track per series.  Gauges emit their raw change
   points (crisp steps in the UI); counters emit the per-window rate and
   histograms the per-window p99, both at window starts. *)
let chrome_counter_events t ?horizon ?(pid = 9) name =
  match Hashtbl.find_opt t.tbl name with
  | None -> []
  | Some s -> (
      match s.s_kind with
      | Gauge ->
          let events =
            List.stable_sort
              (fun (a, _) (b, _) -> Float.compare a b)
              (List.rev s.s_events)
          in
          List.map
            (fun (time, v) -> Chrome.counter_event ~pid ~name ~ts:time ~value:v ())
            events
      | Counter | Histogram ->
          List.map
            (fun p ->
              let v = match s.s_kind with Counter -> p.mean | _ -> p.p99 in
              Chrome.counter_event ~pid ~name ~ts:p.t0 ~value:v ())
            (points t ?horizon name))
