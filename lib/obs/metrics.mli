(** Process-global metrics registry: named counters, gauges, and
    log-scale histograms, with Prometheus-text and JSON exporters.

    Recording calls ({!incr}, {!set}, {!observe}, {!time}) are no-ops
    while {!Control.is_enabled} is false — the hot paths of the compiler
    and simulator call them unconditionally and rely on that fast path.
    Queries and exporters always work on whatever has been recorded.
    Metrics are created implicitly on first use; a name keeps the kind of
    its first use (recording under the same name with a different kind is
    ignored).  All registry operations are serialized by a mutex. *)

val incr : ?by:float -> ?help:string -> string -> unit
(** Add [by] (default 1) to a counter. *)

val set : ?help:string -> string -> float -> unit
(** Set a gauge. *)

val observe : ?help:string -> string -> float -> unit
(** Record a sample into a histogram with logarithmic buckets
    (powers of two from 1 microsecond up — suited to seconds-valued
    timings, but any positive scale works; samples below the first bound
    land in the first bucket). *)

val time : ?help:string -> string -> (unit -> 'a) -> 'a
(** [time name f] runs [f] and, when enabled, observes its wall-clock
    duration in seconds into histogram [name].  When disabled it is
    [f ()]. *)

(** {1 Queries} *)

val counter_value : string -> float option
val gauge_value : string -> float option

val percentile : string -> float -> float option
(** [percentile name p] estimates the [p]-th percentile (0..100) of a
    histogram by geometric interpolation within the covering bucket,
    clamped to the observed min/max.  [None] if the histogram does not
    exist; [Some 0.] if it exists but holds no samples (e.g. right after
    {!reset_histogram}). *)

val histogram_stats : string -> (int * float * float * float) option
(** [(count, sum, min, max)] of a histogram.  An existing but empty
    histogram reports [(0, 0., 0., 0.)] — never the infinite sentinels. *)

val counters : unit -> (string * float) list
(** All counters in registration order — deterministic for a
    deterministic program, which the CLI's profile table relies on. *)

(** {1 Exporters} *)

val to_prometheus : unit -> string
(** Prometheus text exposition format (# HELP/# TYPE, cumulative
    [_bucket{le=...}] series for histograms).  Metric names are sanitized
    to the Prometheus charset. *)

val to_json : unit -> string
(** One JSON object with ["counters"], ["gauges"], and ["histograms"]
    (count/sum/min/max/p50/p90/p99 per histogram). *)

val reset_histogram : string -> unit
(** Zero a histogram's buckets and summary fields in place, keeping the
    metric registered — reuse across runs (e.g. one serving run's
    step-latency percentiles must not include the previous run's
    samples).  A no-op on unknown names and non-histogram metrics. *)

val reset : unit -> unit
(** Drop every registered metric. *)
