(** Structured, level-filtered logging.

    Lines are written to [stderr] in a flat [key=value] format:

    {v level=info src=compile msg="compiled plan" model=llama2-13b orders=24 v}

    Logging is off by default; it is enabled either programmatically with
    {!set_level} or by the [ELK_LOG] environment variable
    ([debug]/[info]/[warn]/[error]), read once at program start.
    Independent of {!Control.is_enabled}: logs can be turned on without
    paying for metric and span collection, and vice versa. *)

type level = Debug | Info | Warn | Error

val level_of_string : string -> level option
(** Case-insensitive parse; [warning] is accepted for [Warn]. *)

val level_name : level -> string

val set_level : level option -> unit
(** [set_level None] disables logging entirely. *)

val level : unit -> level option

val enabled : level -> bool
(** Whether a message at this level would currently be emitted. *)

val log : level -> src:string -> ?kvs:(string * string) list -> string -> unit
(** Emit one line if [enabled level].  [src] names the subsystem
    (e.g. ["compile"], ["serve"]); [kvs] are appended as [k=v] pairs with
    values quoted when they contain spaces or special characters. *)

val debug : src:string -> ?kvs:(string * string) list -> string -> unit
val info : src:string -> ?kvs:(string * string) list -> string -> unit
val warn : src:string -> ?kvs:(string * string) list -> string -> unit
val error : src:string -> ?kvs:(string * string) list -> string -> unit
