(** Windowed time series over simulated time.

    Where {!Metrics} aggregates one number per run, this module answers
    "over time": queue depth, throughput, rolling latency percentiles.
    A [t] holds named series; each series is a ring of fixed-width
    windows laid edge to edge from [t = 0].  Recording appends a
    timestamped event; all aggregation happens at export time, entirely
    deterministically (simulated timestamps in, pure folds out).

    Window semantics are half-open: window [i] covers
    [[i*window, (i+1)*window)], so a sample landing exactly on an edge
    belongs to the window that edge opens. *)

type t

type kind = Counter | Gauge | Histogram

val kind_name : kind -> string

val create : ?window:float -> ?capacity:int -> unit -> t
(** [window] is the window width in (simulated) seconds, default 1 ms.
    [capacity] bounds the ring: only the newest [capacity] windows are
    retained at export (older events still seed gauge carry-in and
    counter totals).  Raises [Invalid_argument] on nonpositive values. *)

val window : t -> float

val add : t -> ?help:string -> string -> time:float -> float -> unit
(** Increment counter series [name] by the given amount at [time].
    Raises [Invalid_argument] on negative/non-finite timestamps, a
    non-finite value, or if [name] is already a different kind. *)

val set : t -> ?help:string -> string -> time:float -> float -> unit
(** Record a gauge change: the series holds the new value from [time]
    until the next change (piecewise constant). *)

val observe : t -> ?help:string -> string -> time:float -> float -> unit
(** Record one sample into histogram series [name]'s window at [time]. *)

val names : t -> string list
(** Registration order. *)

val kind_of : t -> string -> kind option
val help_of : t -> string -> string option
val events_recorded : t -> string -> int

type point = {
  t0 : float;  (** window start, inclusive *)
  t1 : float;  (** window end, exclusive *)
  count : int;  (** events recorded inside the window *)
  sum : float;
      (** counter: summed increments; histogram: summed samples; gauge:
          time integral of the value over the window *)
  mean : float;
      (** counter: rate ([sum]/width); histogram: sample mean; gauge:
          time-weighted mean *)
  vmin : float;  (** smallest value seen (gauges include the carried-in value) *)
  vmax : float;
  last : float;
      (** value at window end: gauges carry forward, counters report the
          cumulative total, histograms the last sample *)
  p50 : float;  (** exact in-window percentile; histograms only, else 0 *)
  p99 : float;
}

val points : t -> ?horizon:float -> string -> point list
(** The series' windows in time order.  Windows tile [[0, H]] where [H]
    is the later of [horizon] and the last sample; empty windows are
    materialized (zero counters, carried gauges) so the tiling has no
    gaps.  Empty list for unknown names. *)

val n_windows : t -> ?horizon:float -> string -> int

val check_tiling : t -> horizon:float -> string -> (unit, string) result
(** Verify the exported windows tile [[0, horizon]]: start at 0, sit
    edge to edge with uniform width, and reach the horizon — to a
    [1e-6] tolerance (relative to the horizon above one second). *)

val to_json : t -> ?horizon:float -> unit -> string
(** [{"window":w,"series":{name:{"kind":…,"help":…,"points":[…]}}}] with
    per-kind point fields (counter: rate/total, gauge: mean/min/max/last,
    histogram: count/mean/p50/p99/max). *)

val series_json : t -> ?horizon:float -> string -> string

val chrome_counter_events : t -> ?horizon:float -> ?pid:int -> string -> string list
(** One Perfetto counter track per series: gauges emit their raw change
    points (crisp steps), counters the per-window rate, histograms the
    per-window p99. *)
