let enabled = ref false
let enable () = enabled := true
let disable () = enabled := false
let is_enabled () = !enabled

let () =
  match Sys.getenv_opt "ELK_OBS" with
  | Some ("1" | "true" | "on" | "yes") -> enabled := true
  | _ -> ()

(* A benign race under parallel domains: a stale [last] only makes the
   clamp looser, never produces a negative interval within one domain. *)
let last = ref 0.

let now () =
  let t = Unix.gettimeofday () in
  if t > !last then begin
    last := t;
    t
  end
  else !last
