module P = Elk_partition.Partition

let ints_csv a = String.concat "," (Array.to_list a |> List.map string_of_int)

let export ?layout (s : Schedule.t) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "elk-plan v1\n";
  Buffer.add_string b (Elk_model.Gtext.export s.Schedule.graph);
  Buffer.add_string b "schedule\n";
  Buffer.add_string b (Printf.sprintf "order %s\n" (ints_csv s.Schedule.order));
  Buffer.add_string b (Printf.sprintf "windows %s\n" (ints_csv s.Schedule.windows));
  Array.iter
    (fun (e : Schedule.op_entry) ->
      Buffer.add_string b
        (Printf.sprintf "entry %d factors=%s frac=%g\n" e.Schedule.node_id
           (ints_csv e.Schedule.plan.P.factors)
           e.Schedule.popt.P.frac))
    s.Schedule.entries;
  (* Optional recorded SRAM address layout: one line per placed buffer.
     Bytes serialize as hex floats (%h) so the intervals round-trip
     bit-exactly — the race analysis compares them for overlap. *)
  (match layout with
  | None -> ()
  | Some allocs ->
      List.iter
        (fun (a : Alloc.allocation) ->
          Buffer.add_string b
            (Printf.sprintf "layout %d %s base=%h size=%h\n" a.Alloc.a_op
               (Residency.kind_name a.Alloc.a_kind)
               a.Alloc.a_base a.Alloc.a_size))
        allocs);
  Buffer.contents b

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let parse_int_csv s =
  try Ok (String.split_on_char ',' s |> List.map int_of_string |> Array.of_list)
  with _ -> Error (Printf.sprintf "bad integer list %S" s)

let import_ext ctx text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | header :: rest when String.trim header = "elk-plan v1" ->
      (* Split the document at the "schedule" marker. *)
      let rec split acc = function
        | [] -> Error "missing schedule section"
        | l :: tl when String.trim l = "schedule" -> Ok (List.rev acc, tl)
        | l :: tl -> split (l :: acc) tl
      in
      let* graph_lines, sched_lines = split [] rest in
      let* graph =
        Elk_model.Gtext.import (String.concat "\n" graph_lines)
      in
      let n = Elk_model.Graph.length graph in
      let order = ref None and windows = ref None in
      let factors = Array.make n None and fracs = Array.make n 1. in
      let layout = ref [] in
      let err = ref None in
      List.iter
        (fun raw ->
          if !err = None then
            let line = String.trim raw in
            if line = "" || line.[0] = '#' then ()
            else
              match String.split_on_char ' ' line |> List.filter (( <> ) "") with
              | [ "order"; csv ] -> (
                  match parse_int_csv csv with
                  | Ok a -> order := Some a
                  | Error m -> err := Some m)
              | [ "windows"; csv ] -> (
                  match parse_int_csv csv with
                  | Ok a -> windows := Some a
                  | Error m -> err := Some m)
              | [ "entry"; id_s; f_attr; frac_attr ] -> (
                  try
                    let id = int_of_string id_s in
                    if id < 0 || id >= n then failwith "entry id out of range";
                    (match String.split_on_char '=' f_attr with
                    | [ "factors"; csv ] -> (
                        match parse_int_csv csv with
                        | Ok a -> factors.(id) <- Some a
                        | Error m -> failwith m)
                    | _ -> failwith "expected factors=");
                    match String.split_on_char '=' frac_attr with
                    | [ "frac"; v ] -> fracs.(id) <- float_of_string v
                    | _ -> failwith "expected frac="
                  with e -> err := Some (Printexc.to_string e))
              | [ "layout"; id_s; kind_s; base_attr; size_attr ] -> (
                  try
                    let a_op = int_of_string id_s in
                    if a_op < 0 || a_op >= n then failwith "layout op out of range";
                    let a_kind =
                      match kind_s with
                      | "preload" -> Residency.Preload
                      | "exec" -> Residency.Exec
                      | k -> failwith (Printf.sprintf "unknown buffer kind %S" k)
                    in
                    let attr name s =
                      match String.split_on_char '=' s with
                      | [ key; v ] when key = name -> float_of_string v
                      | _ -> failwith (Printf.sprintf "expected %s=" name)
                    in
                    let a_base = attr "base" base_attr in
                    let a_size = attr "size" size_attr in
                    if
                      (not (Float.is_finite a_base))
                      || (not (Float.is_finite a_size))
                      || a_base < 0. || a_size < 0.
                    then failwith "layout base/size must be finite and >= 0";
                    layout :=
                      { Alloc.a_op; a_kind; a_base; a_size } :: !layout
                  with e -> err := Some (Printexc.to_string e))
              | _ -> err := Some (Printf.sprintf "unrecognized plan line %S" line))
        sched_lines;
      (match !err with Some m -> Error m | None -> Ok ())
      |> fun r ->
      let* () = r in
      let* order =
        match !order with Some o -> Ok o | None -> Error "missing order line"
      in
      let* windows =
        match !windows with Some w -> Ok w | None -> Error "missing windows line"
      in
      let rec build id acc =
        if id < 0 then Ok (Array.of_list acc)
        else
          match factors.(id) with
          | None -> Error (Printf.sprintf "missing entry for op %d" id)
          | Some f ->
              let node = Elk_model.Graph.get graph id in
              let* plan = P.plan_with_factors ctx node.Elk_model.Graph.op f in
              let popt =
                P.preload_option_near ctx node.Elk_model.Graph.op plan ~frac:fracs.(id)
              in
              let entry =
                {
                  Schedule.node_id = id;
                  plan;
                  popt;
                  preload_len = popt.P.preload_len;
                  dist_time = popt.P.dist_time;
                }
              in
              build (id - 1) (entry :: acc)
      in
      let* entries = build (n - 1) [] in
      let sched = { Schedule.graph; order; windows; entries; est_total = 0. } in
      let* () = Schedule.validate sched in
      let layout = match !layout with [] -> None | l -> Some (List.rev l) in
      Ok (sched, layout)
  | _ -> Error "not an elk-plan v1 document"

let import ctx text = Result.map fst (import_ext ctx text)

let save ?layout ~path s =
  let oc = open_out path in
  output_string oc (export ?layout s);
  close_out oc

let load_ext ctx ~path =
  try
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    import_ext ctx s
  with Sys_error m -> Error m

let load ctx ~path = Result.map fst (load_ext ctx ~path)
