type instr = Preload_async of int | Execute of int
type t = { instrs : instr array }

let of_schedule (s : Schedule.t) =
  let n = Schedule.num_ops s in
  let instrs = ref [] in
  let k = ref 0 in
  let emit_window w =
    for _ = 1 to s.Schedule.windows.(w) do
      instrs := Preload_async s.Schedule.order.(!k) :: !instrs;
      incr k
    done
  in
  (* Window 0 is the initial batch; window i+1 overlaps the execution of
     op i, so its preload_asyncs are issued just before execute(i). *)
  emit_window 0;
  for i = 0 to n - 1 do
    emit_window (i + 1);
    instrs := Execute i :: !instrs
  done;
  { instrs = Array.of_list (List.rev !instrs) }

let validate t ~n =
  let preloaded = Array.make n (-1) and executed = Array.make n (-1) in
  let err = ref None in
  (* Every in-stream failure names the 0-based offending instruction index
     so a diagnostic can point at the exact program location. *)
  let fail k m = if !err = None then err := Some (Printf.sprintf "instr %d: %s" k m) in
  let last_exec = ref (-1) in
  Array.iteri
    (fun k instr ->
      match instr with
      | Preload_async op ->
          if op < 0 || op >= n then fail k (Printf.sprintf "preload of unknown op %d" op)
          else if preloaded.(op) >= 0 then fail k (Printf.sprintf "op %d preloaded twice" op)
          else preloaded.(op) <- k
      | Execute op ->
          if op < 0 || op >= n then fail k (Printf.sprintf "execute of unknown op %d" op)
          else if executed.(op) >= 0 then fail k (Printf.sprintf "op %d executed twice" op)
          else begin
            executed.(op) <- k;
            if op <> !last_exec + 1 then
              fail k (Printf.sprintf "execute of op %d out of order" op);
            last_exec := op;
            if preloaded.(op) < 0 then
              fail k (Printf.sprintf "op %d executed before its preload was issued" op)
          end)
    t.instrs;
  (match !err with
  | None ->
      let tail m = if !err = None then err := Some m in
      for op = 0 to n - 1 do
        if preloaded.(op) < 0 then tail (Printf.sprintf "op %d never preloaded" op);
        if executed.(op) < 0 then tail (Printf.sprintf "op %d never executed" op)
      done
  | Some _ -> ());
  match !err with None -> Ok () | Some m -> Error m

let preload_order t =
  Array.to_list t.instrs
  |> List.filter_map (function Preload_async op -> Some op | Execute _ -> None)

let pp fmt t =
  Array.iter
    (fun instr ->
      match instr with
      | Preload_async op -> Format.fprintf fmt "preload_async(op=%d)@." op
      | Execute op -> Format.fprintf fmt "execute(op=%d)@." op)
    t.instrs
