open Elk_model
module P = Elk_partition.Partition

exception Infeasible of string

exception Pruned
(* Raised by [run ~cutoff] as soon as the schedule under construction
   provably cannot finish within [cutoff] (see the bound note below). *)

(* Default preload option for an operator the allocator has not assigned
   yet: the one minimizing total preload overhead (distribution time plus
   interconnect-imposed preload lengthening). *)
let min_overhead_opt ctx op plan =
  match P.preload_options ctx op plan with
  | [] -> invalid_arg "Scheduler: operator without preload options"
  | first :: rest ->
      List.fold_left
        (fun acc o -> if P.preload_overhead o < P.preload_overhead acc then o else acc)
        first rest

(* Best (least-overhead) option whose preload space fits a budget; falls
   back to the smallest option. *)
let best_opt_within ctx op plan ~space =
  let opts = P.preload_options ctx op plan in
  let fitting = List.filter (fun o -> o.P.preload_space <= space) opts in
  match fitting with
  | [] -> List.hd opts
  | first :: rest ->
      List.fold_left
        (fun acc o -> if P.preload_overhead o < P.preload_overhead acc then o else acc)
        first rest

(* The scheduler implements the backward induction of §4.2 with the
   preload sequence generalized to an arbitrary order (§4.4).  For each
   operator i (scheduled from the last to the first) it picks a preload
   HORIZON h: the number of preload positions allowed to start before
   exec(i) ends.  The paper's preload number for op i is [h_i - h_{i-1}].
   The horizon must cover the preload positions of every operator
   executing up to i+1 (they must have started loading by then); it may
   exceed a later operator's horizon — forward execution monotonizes
   (a preload allowed during an earlier execution stays started), so
   effective horizons are the running maximum.  Theorem 4.2's bound
   applies:

     T_e_exe(i) = min (T_s_exe(i+1), T_s_pre(position h))

   and the horizon maximizing T_s_exe(i) = T_e_exe(i) - span(i) wins,
   where span(i) comes from the cost-aware allocator run over the
   operators resident on chip at that horizon. *)

(* Suffix-resume memo (incremental recompilation).  The loop state after
   completing steps n-1 .. i+1 is a pure function of the context, the
   full preload order, [max_preload], and the nodes with id > i: every
   read in those steps targets ids > i (residency windows filter on
   [w > i], the preload-channel pass touches ids >= i+1), and every popt
   write at step j targets window members with id > j.  So when a graph
   recompiles with only a prefix of operators changed (e.g. a serving
   context bucket grows and only attention shapes move), the induction
   can restore the memoized suffix state and re-enter at the last dirty
   operator.  A record holds per-id node digests (the dirtiness test)
   plus the arrays needed to splice back in; records are written only by
   completed runs, and their contents are cutoff-independent, so a
   resumed run reproduces the cold run's schedule — and its [Pruned]
   outcome — exactly (s_exe is nondecreasing in id, so one check at the
   splice point covers every skipped step's cutoff test). *)
type suffix_memo = {
  m_digests : string array;  (* node digest by id, the dirtiness test. *)
  m_s_exe : float array;
  m_horizon : int array;
  m_plans : P.plan array;
  m_popt_writes : (int * P.preload_opt) list array;  (* per induction step. *)
}

let suffix_store : (string, suffix_memo) Compilecache.Lru.t =
  Compilecache.Lru.create ~cap:128 ()

let () = Compilecache.on_reset (fun () -> Compilecache.Lru.clear suffix_store)

let run ?order ?(max_preload = 32) ?(cutoff = infinity) ctx graph =
  Elk_obs.Metrics.incr "elk_scheduler_runs_total"
    ~help:"Scheduler invocations (one per candidate preload order)";
  let n = Graph.length graph in
  if n = 0 then raise (Infeasible "empty graph");
  let order =
    match order with Some o -> Array.copy o | None -> Array.init n (fun i -> i)
  in
  if Array.length order <> n then raise (Infeasible "preload order length mismatch");
  let pos = Array.make n (-1) in
  Array.iteri (fun k id -> if id >= 0 && id < n then pos.(id) <- k) order;
  if Array.exists (fun p -> p < 0) pos then
    raise (Infeasible "preload order is not a permutation");
  let chip = P.ctx_chip ctx in
  let capacity = Elk_arch.Arch.usable_sram_per_core chip in
  let s_exe = Array.make n 0. in
  (* Preload start times, indexed by preload POSITION.  The channel is
     sequential in position order, so [spos.(k)] obeys the backward chain
     [spos.(k) = min (s_exe (op_k), spos.(k+1)) - len (op_k)].  With an
     arbitrary preload order the op at position [k+1] may execute earlier
     than the op at [k], so the chain can only be evaluated over the
     suffix of positions whose operators have all been scheduled; the
     suffix is recomputed as the induction advances (positions >=
     [h_floor.(i-1)] hold only operators executing >= i).  Unscheduled
     positions keep [infinity] (no constraint) and are never read —
     horizon bounds only access positions >= [h_floor.(i+1)]. *)
  let spos = Array.make (n + 1) infinity in
  let horizon = Array.make n n in
  let plans : P.plan option array = Array.make n None in
  let popts : P.preload_opt option array = Array.make n None in
  (* Running maximum of preload positions over execution prefixes:
     [h_floor.(i)] = 1 + max position among ops 0..i. *)
  let h_floor = Array.make n 0 in
  Array.iteri
    (fun id _ -> h_floor.(id) <- (if id = 0 then pos.(0) + 1 else max h_floor.(id - 1) (pos.(id) + 1)))
    pos;
  let s_pre_pos h = if h >= n then infinity else spos.(h) in
  let node_of i = Graph.get graph i in
  (* As-late-as-possible preload length of a scheduled operator; used by
     the preload-channel passes below.  Operators not yet given a preload
     option by an allocation window fall back to their min-overhead one,
     exactly as the final materialization will. *)
  let len_of id =
    let plan = match plans.(id) with Some pl -> pl | None -> assert false in
    let o =
      match popts.(id) with
      | Some o -> o
      | None -> min_overhead_opt ctx (node_of id).Graph.op plan
    in
    Schedule.preload_time ctx (node_of id).Graph.op o
  in
  let popt_writes : (int * P.preload_opt) list array = Array.make n [] in
  let caching = Compilecache.enabled () in
  let digests =
    if caching then Array.init n (fun id -> Compilecache.node_digest (node_of id))
    else [||]
  in
  let memo_key =
    if caching then
      Some
        (Compilecache.digest_strings
           [
             P.fingerprint ctx;
             string_of_int max_preload;
             Graph.name graph;
             String.concat "," (Array.to_list (Array.map string_of_int order));
           ])
    else None
  in
  (* Resume point: the last step whose suffix state could not be
     restored.  [n - 1] means a full (cold) induction. *)
  let start_step = ref (n - 1) in
  (match memo_key with
  | Some key when n > 1 -> (
      match Compilecache.Lru.find suffix_store key with
      | Some m when Array.length m.m_digests = n ->
          let d = ref 0 in
          for id = 0 to n - 1 do
            if not (String.equal m.m_digests.(id) digests.(id)) then d := id
          done;
          let d = !d in
          if d < n - 1 then begin
            for id = d + 1 to n - 1 do
              s_exe.(id) <- m.m_s_exe.(id);
              horizon.(id) <- m.m_horizon.(id);
              plans.(id) <- Some m.m_plans.(id)
            done;
            for i = n - 1 downto d + 1 do
              popt_writes.(i) <- m.m_popt_writes.(i);
              List.iter (fun (w, o) -> popts.(w) <- Some o) m.m_popt_writes.(i)
            done;
            (* One splice-point cutoff test stands in for every skipped
               step's (see the memo note above). *)
            if 0. -. s_exe.(d + 1) > cutoff then begin
              Elk_obs.Metrics.incr "elk_scheduler_early_exits_total"
                ~help:"Scheduler runs abandoned mid-induction by the search cutoff";
              raise Pruned
            end;
            (* Replay step d+1's preload-channel pass: it wrote a superset
               of every earlier pass's positions ([h_floor] only shrinks as
               the induction advances), so this alone reproduces the spos
               state step d observed in the cold run. *)
            for k = n - 1 downto h_floor.(d) do
              let w = order.(k) in
              if w >= d + 1 then
                spos.(k) <- Float.min s_exe.(w) (s_pre_pos (k + 1)) -. len_of w
            done;
            start_step := d;
            Compilecache.note_sched_resume ()
          end
      | _ -> ())
  | _ -> ());
  for i = !start_step downto 0 do
    let node = node_of i in
    let h_low = if i = n - 1 then n else h_floor.(min (n - 1) (i + 1)) in
    let h_high = if i = n - 1 then n else min n (h_low + max_preload) in
    (* Residents at horizon h: operators at preload positions < h that
       execute after i.  The base set (positions < h_low) is shared by all
       candidate horizons. *)
    let resident_upto h =
      let acc = ref [] in
      for k = h - 1 downto 0 do
        let w = order.(k) in
        if w > i then
          acc :=
            ( node_of w,
              match plans.(w) with
              | Some pl -> pl
              | None -> raise (Infeasible "window op scheduled out of order") )
            :: !acc
      done;
      !acc
    in
    let next_s_exe = if i = n - 1 then 0. else s_exe.(i + 1) in
    let candidates = ref [] in
    let h = ref h_low in
    let stop = ref false in
    Elk_obs.Span.with_span "allocate" (fun () ->
    while (not !stop) && !h <= h_high do
      let window = resident_upto !h in
      (match Alloc.allocate ctx ~capacity ~exec_op:node ~window with
      | None ->
          (* The residency window overflowed SRAM: the horizon search
             backtracks to the candidates collected so far. *)
          Elk_obs.Metrics.incr "elk_scheduler_backtracks_total"
            ~help:"Horizon searches stopped by an SRAM-overflowing window";
          stop := true
      | Some alloc ->
          (* Estimate op i's own distribution time from the option that
             would fit in the spare capacity left by this combination. *)
          let spare = Float.max 0. (capacity -. alloc.Alloc.total_space) in
          let dist_est =
            (best_opt_within ctx node.Graph.op alloc.Alloc.exec_plan ~space:spare)
              .P.dist_time
          in
          let span = alloc.Alloc.exec_time +. dist_est in
          let bound = Float.min next_s_exe (s_pre_pos !h) in
          candidates := (bound -. span, span, !h, alloc, bound) :: !candidates);
      incr h
    done);
    (* Keep the best start time; among near-ties take the largest horizon —
       a larger horizon only relaxes the gates of earlier operators. *)
    let best =
      match !candidates with
      | [] -> ref None
      | cs ->
          let best_start =
            List.fold_left (fun a (s, _, _, _, _) -> Float.max a s) neg_infinity cs
          in
          let tol (span : float) = 0.02 *. Float.max 1e-9 span in
          ref
            (List.fold_left
               (fun acc (s, span, h, alloc, bound) ->
                 if s >= best_start -. tol span then
                   match acc with
                   | Some (_, bh, _, _) when bh >= h -> acc
                   | _ -> Some (s, h, alloc, bound)
                 else acc)
               None cs)
    in
    (match !best with
    | None ->
        (* Even the minimal residency overflows the SRAM: fall back to the
           smallest plans, tolerating the capacity violation (the timeline
           and simulator will charge the contention). *)
        Elk_obs.Metrics.incr "elk_scheduler_retries_total"
          ~help:"Operators retried with smallest-plan fallback after overflow";
        Elk_obs.Logger.debug ~src:"scheduler"
          ~kvs:[ ("op", node.Graph.op.Elk_tensor.Opspec.name) ]
          "smallest-plan fallback";
        let frontier = P.exec_frontier ctx node.Graph.op in
        (match frontier with
        | [] ->
            raise
              (Infeasible
                 (Printf.sprintf "operator %s does not fit on the chip"
                    node.Graph.op.Elk_tensor.Opspec.name))
        | smallest :: _ ->
            let plan = smallest.Elk_util.Pareto.payload in
            let dist_est = P.preload_overhead (min_overhead_opt ctx node.Graph.op plan) in
            let span = plan.P.exec_time +. dist_est in
            let bound = Float.min next_s_exe (s_pre_pos h_low) in
            plans.(i) <- Some plan;
            horizon.(i) <- h_low;
            s_exe.(i) <- bound -. span)
    | Some (start, h_star, alloc, _) ->
        plans.(i) <- Some alloc.Alloc.exec_plan;
        horizon.(i) <- h_star;
        s_exe.(i) <- start;
        popt_writes.(i) <- alloc.Alloc.window;
        List.iter (fun (w, o) -> popts.(w) <- Some o) alloc.Alloc.window);
    (* Branch-and-bound early exit (§4.4 search): the backward induction
       pins op [n-1]'s window bound at 0, and every earlier start can only
       move left — [s_exe] is nondecreasing in [i] — while the final
       estimate is [-(min s_exe.(0) spos.(0)) >= -s_exe.(i)].  So once
       [-s_exe.(i)] exceeds the caller's cutoff the completed schedule's
       stall-free makespan provably would too, and the remaining O(n)
       induction steps (each an allocator sweep) are wasted work. *)
    if 0. -. s_exe.(i) > cutoff then begin
      Elk_obs.Metrics.incr "elk_scheduler_early_exits_total"
        ~help:"Scheduler runs abandoned mid-induction by the search cutoff";
      raise Pruned
    end;
    (* Re-evaluate the preload channel over the well-defined suffix of
       positions (all their operators now scheduled), placing each preload
       as late as possible: just before its operator's execution or before
       the next preload in order, whichever is earlier. *)
    let h_from = if i = 0 then 0 else h_floor.(i - 1) in
    for k = n - 1 downto h_from do
      let w = order.(k) in
      if w >= i then spos.(k) <- Float.min s_exe.(w) (s_pre_pos (k + 1)) -. len_of w
    done
  done;
  (* Only completed inductions record a memo: a pruned or infeasible run
     holds partial state.  The record merges the restored suffix with the
     freshly computed prefix. *)
  (match memo_key with
  | Some key ->
      Compilecache.Lru.put suffix_store key
        {
          m_digests = digests;
          m_s_exe = Array.copy s_exe;
          m_horizon = Array.copy horizon;
          m_plans =
            Array.map (function Some pl -> pl | None -> assert false) plans;
          m_popt_writes = Array.copy popt_writes;
        }
  | None -> ());
  (* Op 0 is never inside any window; give it the biggest option that fits
     beside its own execution space. *)
  (match popts.(0) with
  | Some _ -> ()
  | None ->
      let plan0 = match plans.(0) with Some pl -> pl | None -> assert false in
      popts.(0) <-
        Some
          (best_opt_within ctx (node_of 0).Graph.op plan0
             ~space:(Float.max 0. (capacity -. plan0.P.exec_space))));
  (* Materialize every operator's preload option now so the repair pass
     below and the final entries agree on what is resident. *)
  for id = 0 to n - 1 do
    match popts.(id) with
    | Some _ -> ()
    | None ->
        let plan = match plans.(id) with Some pl -> pl | None -> assert false in
        popts.(id) <- Some (min_overhead_opt ctx (node_of id).Graph.op plan)
  done;
  (* Horizons need not be monotone across steps (a later operator may have
     chosen a smaller one); forward execution monotonizes them — a preload
     that was allowed to start during an earlier execution stays started. *)
  let eff = Array.make n 0 in
  Array.iteri
    (fun i h -> eff.(i) <- (if i = 0 then h else max eff.(i - 1) h))
    horizon;
  eff.(n - 1) <- n;
  let windows = Array.make (n + 1) 0 in
  windows.(0) <- pos.(0) + 1;
  if n > 1 then windows.(1) <- eff.(0) - windows.(0);
  for i = 1 to n - 1 do
    windows.(i + 1) <- eff.(i) - eff.(i - 1)
  done;
  (* Capacity repair.  Each step's allocation sized its residency with the
     horizon that step chose, but the forward monotonization above can
     leave MORE preloads live during a step than its allocation accounted
     for: a window opened by an earlier-executing operator keeps later
     positions resident.  Replay the effective residency and, wherever
     the combined per-core footprint overflows the SRAM, demote resident
     operators one Pareto step down their preload-option frontiers —
     cheapest overhead per freed byte first — until the step fits or
     every resident is already minimal (any remaining overflow is the
     documented smallest-plan fallback, charged as contention by the
     timeline and simulator). *)
  let issued = Array.make n 0 in
  let running = ref windows.(0) in
  for i = 0 to n - 1 do
    running := !running + windows.(i + 1);
    issued.(i) <- !running
  done;
  let popt_of id = match popts.(id) with Some o -> o | None -> assert false in
  let plan_of id = match plans.(id) with Some pl -> pl | None -> assert false in
  for i = 0 to n - 1 do
    let usage () =
      let u = ref (plan_of i).P.exec_space in
      for k = 0 to issued.(i) - 1 do
        let w = order.(k) in
        if w > i then u := !u +. (popt_of w).P.preload_space
      done;
      !u
    in
    let exhausted = ref false in
    while (not !exhausted) && usage () > capacity +. 1e-6 do
      (* Best single demotion among residents: the next-smaller option of
         the operator whose step costs the least added overhead per byte
         freed. *)
      let best = ref None in
      for k = 0 to issued.(i) - 1 do
        let w = order.(k) in
        if w > i then begin
          let cur = popt_of w in
          let next_smaller =
            List.fold_left
              (fun acc o ->
                if o.P.preload_space < cur.P.preload_space -. 1e-9 then
                  match acc with
                  | Some a when a.P.preload_space >= o.P.preload_space -> acc
                  | _ -> Some o
                else acc)
              None
              (P.preload_options ctx (node_of w).Graph.op (plan_of w))
          in
          match next_smaller with
          | None -> ()
          | Some o ->
              let freed = cur.P.preload_space -. o.P.preload_space in
              let cost =
                Float.max 0. (P.preload_overhead o -. P.preload_overhead cur)
                /. Float.max 1e-12 freed
              in
              (match !best with
              | Some (bcost, _, _) when bcost <= cost -> ()
              | _ -> best := Some (cost, w, o))
        end
      done;
      match !best with
      | None -> exhausted := true
      | Some (_, w, o) ->
          Elk_obs.Metrics.incr "elk_scheduler_popt_demotions_total"
            ~help:"Preload options demoted by the capacity-repair pass";
          popts.(w) <- Some o
    done
  done;
  let entries =
    Array.init n (fun id ->
        let plan = plan_of id in
        let popt = popt_of id in
        {
          Schedule.node_id = id;
          plan;
          popt;
          preload_len = Schedule.preload_time ctx (node_of id).Graph.op popt;
          dist_time = popt.P.dist_time;
        })
  in
  let t_start = Float.min s_exe.(0) spos.(0) in
  let sched = { Schedule.graph; order; windows; entries; est_total = 0. -. t_start } in
  (match Schedule.validate sched with
  | Ok () -> ()
  | Error msg -> raise (Infeasible ("internal: invalid schedule: " ^ msg)));
  sched

let preload_numbers (s : Schedule.t) =
  Array.sub s.Schedule.windows 1 (Array.length s.Schedule.windows - 1)
