open Elk_arch
module P = Elk_partition.Partition

type op_times = {
  pre_start : float;
  pre_end : float;
  exe_start : float;
  exe_end : float;
}

type breakdown = {
  preload_only : float;
  execute_only : float;
  overlapped : float;
  interconnect : float;
}

type result = {
  total : float;
  bd : breakdown;
  hbm_util : float;
  noc_util : float;
  intercore_volume : float;
  inject_volume : float;
  hbm_device_volume : float;
  achieved_flops : float;
  per_op : op_times array;
}

(* Measure of the union of a set of closed intervals. *)
let union_measure intervals =
  let sorted = List.sort compare (List.filter (fun (a, b) -> b > a) intervals) in
  let rec go acc cur = function
    | [] -> ( match cur with None -> acc | Some (a, b) -> acc +. (b -. a))
    | (a, b) :: rest -> (
        match cur with
        | None -> go acc (Some (a, b)) rest
        | Some (ca, cb) ->
            if a <= cb then go acc (Some (ca, Float.max cb b)) rest
            else go (acc +. (cb -. ca)) (Some (a, b)) rest)
  in
  go 0. None sorted

(* Measure of the intersection of two interval unions (both lists may
   overlap internally; we clip each pair). *)
let intersection_measure xs ys =
  let pieces =
    List.concat_map
      (fun (a, b) ->
        List.filter_map
          (fun (c, d) ->
            let lo = Float.max a c and hi = Float.min b d in
            if hi > lo then Some (lo, hi) else None)
          ys)
      xs
  in
  union_measure pieces

let evaluate ctx (s : Schedule.t) =
  (match Schedule.validate s with
  | Ok () -> ()
  | Error m -> invalid_arg ("Timeline.evaluate: " ^ m));
  let n = Schedule.num_ops s in
  let chip = P.ctx_chip ctx in
  let agg_bw = Arch.aggregate_intercore_bw chip in
  let link_bw = chip.Arch.intercore_link.Arch.bandwidth in
  let cores = float_of_int chip.Arch.cores in
  let step = Schedule.preload_step s in
  let pre_start = Array.make n 0. and pre_end = Array.make n 0. in
  let exe_start = Array.make n 0. and exe_end = Array.make n 0. in
  let stall_total = ref 0. in
  (* Preload positions are processed lazily as execution advances: a
     position in window [w] is gated by the end of execution step [w-1]
     (no gate for the initial batch and window 1). *)
  let cursor = ref 0 in
  let pre_channel_free = ref 0. in
  let issue_up_to max_step exec_end_of =
    while
      !cursor < n
      && step.(!cursor) <= max_step
    do
      let op = s.Schedule.order.(!cursor) in
      let w = step.(!cursor) in
      let gate = if w <= 1 then 0. else exec_end_of (w - 2) in
      let st = Float.max !pre_channel_free gate in
      pre_start.(op) <- st;
      pre_end.(op) <- st +. s.Schedule.entries.(op).Schedule.preload_len;
      pre_channel_free := pre_end.(op);
      incr cursor
    done
  in
  for i = 0 to n - 1 do
    (* Issue every preload belonging to windows up to the current exec
       step (window index i+1). *)
    issue_up_to (i + 1) (fun j -> exe_end.(j));
    let entry = s.Schedule.entries.(i) in
    let prev_end = if i = 0 then 0. else exe_end.(i - 1) in
    let start = Float.max prev_end pre_end.(i) in
    let base_span = entry.Schedule.dist_time +. entry.Schedule.plan.P.exec_time in
    (* Interconnect contention is a per-core port phenomenon: during this
       span each core's ports must serve its own exchange and distribution
       (already serialized inside [base_span]) plus its share of preload
       injection from overlapping preloads; the excess over the span
       stalls execution. *)
    let port_busy_pc =
      (entry.Schedule.plan.P.exchange_bytes_per_core
      +. entry.Schedule.popt.P.dist_bytes_per_core)
      /. link_bw
    in
    let inject_overlap = ref 0. in
    for k = 0 to n - 1 do
      let op = s.Schedule.order.(k) in
      if k < !cursor && pre_end.(op) > start && pre_start.(op) < start +. base_span then begin
        let len = Float.max 1e-12 (pre_end.(op) -. pre_start.(op)) in
        let overlap =
          Float.min (start +. base_span) pre_end.(op) -. Float.max start pre_start.(op)
        in
        let frac = Float.max 0. overlap /. len in
        inject_overlap :=
          !inject_overlap +. (s.Schedule.entries.(op).Schedule.popt.P.noc_inject_bytes *. frac)
      end
    done;
    let inject_pc = !inject_overlap /. cores in
    let service = port_busy_pc +. (inject_pc /. link_bw) in
    let stall = Float.max 0. (service -. base_span) in
    stall_total := !stall_total +. stall;
    exe_start.(i) <- start;
    exe_end.(i) <- start +. base_span +. stall
  done;
  (* Preloads that were never issued would be a validate failure; assert. *)
  assert (!cursor = n);
  let total = exe_end.(n - 1) in
  let pre_intervals = Array.to_list (Array.init n (fun o -> (pre_start.(o), pre_end.(o)))) in
  let exe_intervals = Array.to_list (Array.init n (fun o -> (exe_start.(o), exe_end.(o)))) in
  let pre_m = union_measure pre_intervals in
  let exe_m = union_measure exe_intervals in
  let both = intersection_measure pre_intervals exe_intervals in
  let bd =
    {
      preload_only = Float.max 0. (pre_m -. both);
      execute_only = Float.max 0. (exe_m -. both -. !stall_total);
      overlapped = both;
      interconnect = !stall_total;
    }
  in
  let sum f = Array.fold_left (fun a e -> a +. f e) 0. s.Schedule.entries in
  let hbm_device_volume = sum (fun e -> e.Schedule.popt.P.hbm_device_bytes) in
  let inject_volume = sum (fun e -> e.Schedule.popt.P.noc_inject_bytes) in
  let intercore_volume =
    sum (fun e ->
        (e.Schedule.plan.P.exchange_bytes_per_core
        +. e.Schedule.popt.P.dist_bytes_per_core)
        *. float_of_int e.Schedule.plan.P.cores_used)
  in
  let flops = Elk_model.Graph.total_flops s.Schedule.graph in
  {
    total;
    bd;
    hbm_util = (if total > 0. then hbm_device_volume /. (chip.Arch.hbm_bandwidth *. total) else 0.);
    noc_util =
      (if total > 0. then (intercore_volume +. inject_volume) /. (agg_bw *. total) else 0.);
    intercore_volume;
    inject_volume;
    hbm_device_volume;
    achieved_flops = (if total > 0. then flops /. total else 0.);
    per_op =
      Array.init n (fun o ->
          {
            pre_start = pre_start.(o);
            pre_end = pre_end.(o);
            exe_start = exe_start.(o);
            exe_end = exe_end.(o);
          });
  }

(* Stall-free replay of [evaluate]'s forward pass: identical preload
   gating and channel serialization, but the O(n^2) interconnect-stall
   term is dropped.  Stalls are nonnegative and only ever push later
   execution (and through the window gates, later preloads) further out,
   so every [exe_end] here is <= its stalled counterpart and the result
   is a true lower bound of [evaluate ctx s).total] — which makes it a
   sound branch-and-bound pruning bound for the order search. *)
let lower_bound ctx (s : Schedule.t) =
  (match Schedule.validate s with
  | Ok () -> ()
  | Error m -> invalid_arg ("Timeline.lower_bound: " ^ m));
  ignore (P.ctx_chip ctx);
  let n = Schedule.num_ops s in
  let step = Schedule.preload_step s in
  let pre_end = Array.make n 0. in
  let exe_end = Array.make n 0. in
  let cursor = ref 0 in
  let pre_channel_free = ref 0. in
  let issue_up_to max_step =
    while !cursor < n && step.(!cursor) <= max_step do
      let op = s.Schedule.order.(!cursor) in
      let w = step.(!cursor) in
      let gate = if w <= 1 then 0. else exe_end.(w - 2) in
      let st = Float.max !pre_channel_free gate in
      pre_end.(op) <- st +. s.Schedule.entries.(op).Schedule.preload_len;
      pre_channel_free := pre_end.(op);
      incr cursor
    done
  in
  for i = 0 to n - 1 do
    issue_up_to (i + 1);
    let entry = s.Schedule.entries.(i) in
    let prev_end = if i = 0 then 0. else exe_end.(i - 1) in
    let start = Float.max prev_end pre_end.(i) in
    exe_end.(i) <- start +. entry.Schedule.dist_time +. entry.Schedule.plan.P.exec_time
  done;
  exe_end.(n - 1)

let pp_breakdown fmt b =
  Format.fprintf fmt "preload=%a exec=%a overlap=%a interconnect=%a" Elk_util.Units.pp_time
    b.preload_only Elk_util.Units.pp_time b.execute_only Elk_util.Units.pp_time b.overlapped
    Elk_util.Units.pp_time b.interconnect
