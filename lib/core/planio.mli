(** Serialization of compiled schedules — the compiler's cacheable
    artifact.

    The paper's Elk compiles a model once (minutes of host time) and the
    resulting plan drives every serving step; a deployment therefore wants
    plans on disk.  This module serializes a {!Schedule.t} to a
    self-contained text document: the operator graph (via
    {!Elk_model.Gtext}) followed by the scheduling decisions — preload
    order, per-window preload counts, and per-operator partition factors
    and broadcast fraction.  Loading re-derives every computed quantity
    (tile shapes, spaces, times) from the partition context, so a plan
    file stays valid across cost-model retrains with the same chip, and
    the loaded schedule revalidates before use. *)

val export : ?layout:Alloc.allocation list -> Schedule.t -> string
(** Serialize a schedule (including its graph).  When [layout] is given,
    the document also records the SRAM address layout — one
    [layout <op> <kind> base=<hex float> size=<hex float>] line per
    placed buffer, bit-exact round-trip — so downstream tools (the
    [Elk_verify] race analysis, [elk lint]) check the {e recorded}
    addresses instead of recomputing a self-consistent layout. *)

val import :
  Elk_partition.Partition.ctx -> string -> (Schedule.t, string) result
(** Parse, rebuild plans/options from the context, and validate.  Any
    recorded layout section is accepted and dropped; use {!import_ext}
    to receive it. *)

val import_ext :
  Elk_partition.Partition.ctx ->
  string ->
  (Schedule.t * Alloc.allocation list option, string) result
(** Like {!import}, but also returns the recorded address layout when the
    document carries one. *)

val save : ?layout:Alloc.allocation list -> path:string -> Schedule.t -> unit
val load : Elk_partition.Partition.ctx -> path:string -> (Schedule.t, string) result

val load_ext :
  Elk_partition.Partition.ctx ->
  path:string ->
  (Schedule.t * Alloc.allocation list option, string) result
