(** The abstracted device programming model (paper §4.5, Fig 15).

    A compiled plan maps to a linear program of two calls:
    [preload_async(op)] — all cores request the operator's data from HBM
    following its preload-state plan — and [execute(op)] — wait for the
    operator's preload tag, run [distribute_data] (preload→execute state)
    and [local_execute].  The hardware rules:

    + an [execute] blocks all later calls until it finishes,
    + [preload_async]s run sequentially in program order,
    + [preload_async(i)] blocks only [execute(i)].

    The program is what the event-driven simulator interprets. *)

type instr = Preload_async of int | Execute of int

type t = { instrs : instr array }

val of_schedule : Schedule.t -> t
(** Lay out the schedule's windows: the initial preload batch, then for
    each operator its window's [preload_async]s followed by its
    [execute]. *)

val validate : t -> n:int -> (unit, string) result
(** Check: every op in [0, n) is preloaded exactly once and executed
    exactly once, executes appear in ascending op order, and each op's
    [preload_async] precedes its [execute].  In-stream violations are
    reported as ["instr <k>: ..."] with the 0-based index of the
    offending instruction; [Elk_verify] surfaces these verbatim as
    [dep.program-stream] diagnostics. *)

val preload_order : t -> int list
(** Ids in [preload_async] program order. *)

val pp : Format.formatter -> t -> unit
(** One instruction per line, as in Fig 15. *)
