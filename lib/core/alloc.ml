open Elk_util
open Elk_arch
module P = Elk_partition.Partition

type result = {
  exec_plan : P.plan;
  window : (int * P.preload_opt) list;
  exec_time : float;
  objective : float;
  total_space : float;
  contention : float;
}

(* One participant in the greedy descent: a frontier of (space, time)
   choices, currently sitting at [idx] (starting at the largest-space /
   fastest end) and able to step down to [idx - 1]. *)
type participant = {
  spaces : float array;  (** ascending. *)
  times : float array;  (** descending. *)
  mutable idx : int;
}

let of_points pts =
  let spaces = Array.of_list (List.map (fun p -> p.Pareto.x) pts) in
  let times = Array.of_list (List.map (fun p -> p.Pareto.y) pts) in
  { spaces; times; idx = Array.length spaces - 1 }

let current_space p = p.spaces.(p.idx)

let step_delta p =
  if p.idx = 0 then None
  else
    let freed = p.spaces.(p.idx) -. p.spaces.(p.idx - 1) in
    let slower = Float.max 1e-12 (p.times.(p.idx - 1) -. p.times.(p.idx)) in
    Some (freed /. slower)

let allocate_or_error ctx ~capacity ~exec_op ~window =
  let open Elk_model in
  let op_label =
    Printf.sprintf "op %d (%s)" exec_op.Graph.id
      exec_op.Graph.op.Elk_tensor.Opspec.name
  in
  let exec_frontier = P.exec_frontier ctx exec_op.Graph.op in
  if exec_frontier = [] then
    Error
      (Printf.sprintf
         "allocation infeasible for %s: no execute-state plan fits %.0f \
          B/core SRAM"
         op_label capacity)
  else begin
    let exec_part = of_points exec_frontier in
    let window_opts =
      List.map
        (fun ((node : Graph.node), plan) ->
          let opts = P.preload_options ctx node.Graph.op plan in
          let pts =
            List.map
              (fun o ->
                { Pareto.x = o.P.preload_space; y = P.preload_overhead o; payload = o })
              opts
          in
          (node.Graph.id, Array.of_list (List.map (fun p -> p.Pareto.payload) pts), of_points pts))
        window
    in
    let participants = exec_part :: List.map (fun (_, _, p) -> p) window_opts in
    let total () = List.fold_left (fun a p -> a +. current_space p) 0. participants in
    let rec descend () =
      if total () <= capacity then true
      else begin
        let best =
          List.fold_left
            (fun acc p ->
              match step_delta p with
              | None -> acc
              | Some d -> (
                  match acc with Some (bd, _) when bd >= d -> acc | _ -> Some (d, p)))
            None participants
        in
        match best with
        | None -> false
        | Some (_, p) ->
            p.idx <- p.idx - 1;
            descend ()
      end
    in
    if not (descend ()) then
      (* Every participant is at its smallest Pareto point, so [total ()]
         is the irreducible demand of this window combination. *)
      Error
        (Printf.sprintf
           "allocation infeasible for %s: minimal demand %.0f B/core \
            (execute state + %d overlapping preloads) exceeds %.0f B/core \
            SRAM by %.0f B"
           op_label (total ())
           (List.length window_opts)
           capacity
           (total () -. capacity))
    else begin
      let exec_plan =
        (List.nth exec_frontier exec_part.idx).Pareto.payload
      in
      let chosen_window =
        List.map (fun (id, opts, part) -> (id, opts.(part.idx))) window_opts
      in
      let chip = P.ctx_chip ctx in
      let link_bw = chip.Arch.intercore_link.Arch.bandwidth in
      let cores = float_of_int chip.Arch.cores in
      let inject_total =
        List.fold_left (fun a (_, o) -> a +. o.P.noc_inject_bytes) 0. chosen_window
      in
      (* Interconnect contention is a per-core PORT phenomenon: during this
         operator's execution each core's ports serve its own exchange
         (already inside [exec_time] as serialized transfer time) plus its
         share of the preload injection overlapping the execution.  The
         injection rate is bounded by what the HBM can feed. *)
      let inject_overlap_pc =
        Float.min (inject_total /. cores)
          (chip.Arch.hbm_bandwidth /. cores *. exec_plan.P.exec_time)
      in
      let exchange_pc = exec_plan.P.exchange_bytes_per_core in
      let port_service = (inject_overlap_pc +. exchange_pc) /. link_bw in
      let contention = Float.max 0. (port_service -. exec_plan.P.exec_time) in
      let dist_total =
        List.fold_left (fun a (_, o) -> a +. P.preload_overhead o) 0. chosen_window
      in
      Ok
        {
          exec_plan;
          window = chosen_window;
          exec_time = exec_plan.P.exec_time +. contention;
          objective = exec_plan.P.exec_time +. contention +. dist_total;
          total_space = total ();
          contention;
        }
    end
  end

let allocate ctx ~capacity ~exec_op ~window =
  match allocate_or_error ctx ~capacity ~exec_op ~window with
  | Ok r -> Some r
  | Error msg ->
      (* Infeasibility is routine during the window search (the caller
         retries with fewer preloads), so this is debug-level — but the
         message now names the capacity, the demanded bytes, and the
         offending operator instead of a bare [None]. *)
      Elk_obs.Logger.debug ~src:"alloc" msg;
      None

let min_preload_space ctx (node : Elk_model.Graph.node) =
  match P.exec_frontier ctx node.Elk_model.Graph.op with
  | [] -> infinity
  | frontier ->
      (* The smallest preload footprint over all execute-state plans. *)
      List.fold_left
        (fun acc pt ->
          let opts = P.preload_options ctx node.Elk_model.Graph.op pt.Pareto.payload in
          List.fold_left (fun a o -> Float.min a o.P.preload_space) acc opts)
        infinity frontier
