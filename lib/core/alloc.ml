open Elk_util
open Elk_arch
module P = Elk_partition.Partition

type result = {
  exec_plan : P.plan;
  window : (int * P.preload_opt) list;
  exec_time : float;
  objective : float;
  total_space : float;
  contention : float;
}

(* ---- address intervals -------------------------------------------------

   A placed buffer: a half-open per-core SRAM byte interval
   [a_base, a_base + a_size) assigned to one operator's preload- or
   execute-state footprint.  Bytes stay floats end to end so the interval
   arithmetic is bit-compatible with the Pareto spaces the allocator
   trades off (rounding here would make the packed extent disagree with
   the capacity check by up to one byte per participant). *)

type allocation = {
  a_op : int;
  a_kind : Residency.kind;
  a_base : float;
  a_size : float;
}

let overlaps a b =
  (* Half-open intersection: touching intervals ([0,4) and [4,8)) do not
     overlap.  Zero-byte buffers overlap nothing, not even themselves. *)
  a.a_size > 0. && b.a_size > 0.
  && a.a_base < b.a_base +. b.a_size
  && b.a_base < a.a_base +. a.a_size

(* Bump-pack a window combination: every participant is live at once
   during the execute step, so addresses are consecutive.  The packed
   extent is the exact float sum the greedy descent historically
   compared against the capacity (same operands, same association
   order), now expressed through the interval layer. *)
let pack sized =
  let _, placed =
    List.fold_left
      (fun (base, acc) (a_op, a_kind, a_size) ->
        (base +. a_size, { a_op; a_kind; a_base = base; a_size } :: acc))
      (0., []) sized
  in
  List.rev placed

let extent placed =
  List.fold_left (fun e a -> Float.max e (a.a_base +. a.a_size)) 0. placed

let well_packed placed =
  let rec go = function
    | [] -> true
    | a :: tl -> (not (List.exists (overlaps a) tl)) && go tl
  in
  go placed

(* First-fit address layout over the whole schedule's buffer lifetimes.

   Liveness is measured in program-instruction indices, the coordinate in
   which the race analysis reasons: a preload buffer is live from its
   [preload_async] to its consuming [execute] (inclusive — during the
   distribution phase the preload bytes and the execute state coexist),
   an execute buffer only during its own [execute] (the exchange tail is
   part of that step).  Two buffers may share addresses only when those
   intervals are disjoint.  Deterministic: buffers are placed in
   ascending allocation-time order with the operator id as tie-break, and
   each goes to the lowest base that fits. *)
let layout_of_schedule (s : Schedule.t) =
  let n = Schedule.num_ops s in
  let prog = Program.of_schedule s in
  let issue_at = Array.make n 0 and exec_at = Array.make n 0 in
  Array.iteri
    (fun k instr ->
      match instr with
      | Program.Preload_async op -> if op >= 0 && op < n then issue_at.(op) <- k
      | Program.Execute op -> if op >= 0 && op < n then exec_at.(op) <- k)
    prog.Program.instrs;
  (* (live_lo, live_hi, op, kind, bytes) per nonempty buffer. *)
  let buffers = ref [] in
  for op = n - 1 downto 0 do
    let e = s.Schedule.entries.(op) in
    if e.Schedule.plan.P.exec_space > 0. then
      buffers :=
        (exec_at.(op), exec_at.(op), op, Residency.Exec, e.Schedule.plan.P.exec_space)
        :: !buffers;
    if e.Schedule.popt.P.preload_space > 0. then
      buffers :=
        (issue_at.(op), exec_at.(op), op, Residency.Preload, e.Schedule.popt.P.preload_space)
        :: !buffers
  done;
  let buffers =
    List.sort
      (fun (lo1, _, op1, k1, _) (lo2, _, op2, k2, _) ->
        compare (lo1, op1, k1) (lo2, op2, k2))
      !buffers
  in
  let placed = ref [] in
  let place (lo, hi, a_op, a_kind, a_size) =
    let conflicts =
      List.filter (fun (plo, phi, _) -> plo <= hi && lo <= phi) !placed
    in
    (* Candidate bases: 0 and the end of every conflicting interval;
       lowest admissible wins (classic first-fit). *)
    let fits base =
      let cand = { a_op; a_kind; a_base = base; a_size } in
      not (List.exists (fun (_, _, a) -> overlaps cand a) conflicts)
    in
    let base =
      List.fold_left
        (fun best (_, _, a) ->
          let c = a.a_base +. a.a_size in
          if c < best && fits c then c else best)
        (if fits 0. then 0. else infinity)
        conflicts
    in
    let base =
      if Float.is_finite base then base
      else
        (* Every candidate collides (possible only through float
           pathologies); fall back to stacking past the furthest end. *)
        List.fold_left (fun e (_, _, a) -> Float.max e (a.a_base +. a.a_size)) 0. conflicts
    in
    placed := (lo, hi, { a_op; a_kind; a_base = base; a_size }) :: !placed
  in
  List.iter place buffers;
  List.rev_map (fun (_, _, a) -> a) !placed
  |> List.sort (fun a b -> compare (a.a_op, a.a_kind) (b.a_op, b.a_kind))

(* One participant in the greedy descent: a frontier of (space, time)
   choices, currently sitting at [idx] (starting at the largest-space /
   fastest end) and able to step down to [idx - 1]. *)
type participant = {
  spaces : float array;  (** ascending. *)
  times : float array;  (** descending. *)
  mutable idx : int;
}

let of_points pts =
  let spaces = Array.of_list (List.map (fun p -> p.Pareto.x) pts) in
  let times = Array.of_list (List.map (fun p -> p.Pareto.y) pts) in
  { spaces; times; idx = Array.length spaces - 1 }

let current_space p = p.spaces.(p.idx)

let step_delta p =
  if p.idx = 0 then None
  else
    let freed = p.spaces.(p.idx) -. p.spaces.(p.idx - 1) in
    let slower = Float.max 1e-12 (p.times.(p.idx - 1) -. p.times.(p.idx)) in
    Some (freed /. slower)

let allocate_or_error ctx ~capacity ~exec_op ~window =
  let open Elk_model in
  let op_label =
    Printf.sprintf "op %d (%s)" exec_op.Graph.id
      exec_op.Graph.op.Elk_tensor.Opspec.name
  in
  let exec_frontier = P.exec_frontier ctx exec_op.Graph.op in
  if exec_frontier = [] then
    Error
      (Printf.sprintf
         "allocation infeasible for %s: no execute-state plan fits %.0f \
          B/core SRAM"
         op_label capacity)
  else begin
    let exec_part = of_points exec_frontier in
    let window_opts =
      List.map
        (fun ((node : Graph.node), plan) ->
          let opts = P.preload_options ctx node.Graph.op plan in
          let pts =
            List.map
              (fun o ->
                { Pareto.x = o.P.preload_space; y = P.preload_overhead o; payload = o })
              opts
          in
          (node.Graph.id, Array.of_list (List.map (fun p -> p.Pareto.payload) pts), of_points pts))
        window
    in
    let participants = exec_part :: List.map (fun (_, _, p) -> p) window_opts in
    (* The combination's footprint, expressed as packed address
       intervals: the execute state followed by every overlapping
       preload.  [extent] of the bump packing is the exact same float
       sum the previous ad-hoc accumulation produced, and [well_packed]
       asserts the intervals the schedule would hand the race analysis
       are disjoint by construction. *)
    let pack_current () =
      pack
        ((exec_op.Graph.id, Residency.Exec, current_space exec_part)
        :: List.map
             (fun (id, _, p) -> (id, Residency.Preload, current_space p))
             window_opts)
    in
    let total () = extent (pack_current ()) in
    let rec descend () =
      if total () <= capacity then true
      else begin
        let best =
          List.fold_left
            (fun acc p ->
              match step_delta p with
              | None -> acc
              | Some d -> (
                  match acc with Some (bd, _) when bd >= d -> acc | _ -> Some (d, p)))
            None participants
        in
        match best with
        | None -> false
        | Some (_, p) ->
            p.idx <- p.idx - 1;
            descend ()
      end
    in
    if not (descend ()) then
      (* Every participant is at its smallest Pareto point, so [total ()]
         is the irreducible demand of this window combination. *)
      Error
        (Printf.sprintf
           "allocation infeasible for %s: minimal demand %.0f B/core \
            (execute state + %d overlapping preloads) exceeds %.0f B/core \
            SRAM by %.0f B"
           op_label (total ())
           (List.length window_opts)
           capacity
           (total () -. capacity))
    else begin
      let exec_plan =
        (List.nth exec_frontier exec_part.idx).Pareto.payload
      in
      let chosen_window =
        List.map (fun (id, opts, part) -> (id, opts.(part.idx))) window_opts
      in
      assert (well_packed (pack_current ()));
      let chip = P.ctx_chip ctx in
      let link_bw = chip.Arch.intercore_link.Arch.bandwidth in
      let cores = float_of_int chip.Arch.cores in
      let inject_total =
        List.fold_left (fun a (_, o) -> a +. o.P.noc_inject_bytes) 0. chosen_window
      in
      (* Interconnect contention is a per-core PORT phenomenon: during this
         operator's execution each core's ports serve its own exchange
         (already inside [exec_time] as serialized transfer time) plus its
         share of the preload injection overlapping the execution.  The
         injection rate is bounded by what the HBM can feed. *)
      let inject_overlap_pc =
        Float.min (inject_total /. cores)
          (chip.Arch.hbm_bandwidth /. cores *. exec_plan.P.exec_time)
      in
      let exchange_pc = exec_plan.P.exchange_bytes_per_core in
      let port_service = (inject_overlap_pc +. exchange_pc) /. link_bw in
      let contention = Float.max 0. (port_service -. exec_plan.P.exec_time) in
      let dist_total =
        List.fold_left (fun a (_, o) -> a +. P.preload_overhead o) 0. chosen_window
      in
      Ok
        {
          exec_plan;
          window = chosen_window;
          exec_time = exec_plan.P.exec_time +. contention;
          objective = exec_plan.P.exec_time +. contention +. dist_total;
          total_space = total ();
          contention;
        }
    end
  end

let allocate ctx ~capacity ~exec_op ~window =
  match allocate_or_error ctx ~capacity ~exec_op ~window with
  | Ok r -> Some r
  | Error msg ->
      (* Infeasibility is routine during the window search (the caller
         retries with fewer preloads), so this is debug-level — but the
         message now names the capacity, the demanded bytes, and the
         offending operator instead of a bare [None]. *)
      Elk_obs.Logger.debug ~src:"alloc" msg;
      None

let min_preload_space ctx (node : Elk_model.Graph.node) =
  match P.exec_frontier ctx node.Elk_model.Graph.op with
  | [] -> infinity
  | frontier ->
      (* The smallest preload footprint over all execute-state plans. *)
      List.fold_left
        (fun acc pt ->
          let opts = P.preload_options ctx node.Elk_model.Graph.op pt.Pareto.payload in
          List.fold_left (fun a o -> Float.min a o.P.preload_space) acc opts)
        infinity frontier
