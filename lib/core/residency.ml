(* Static SRAM-residency replay over a schedule.

   The same liveness model the verifier's mem.capacity rule replays — at
   execute step [i] the executing operator holds its execute-state space
   while every issued-but-not-yet-executed operator holds its
   preload-state space — factored out of Elk_verify so that analysis
   tooling (Elk_analyze.Memprof) can consume it without linking the
   verifier library (whose -linkall module initializer would arm the
   compile-time verification hook in any executable that depends on it).

   Beyond the per-step usage the verifier needs, this module derives a
   buffer-lifetime ledger (alloc step, first/last use, free step, bytes,
   core count per buffer) and an HBM traffic ledger (bytes moved, move
   count, reuse distance in steps per tensor) — all statically, without
   running the simulator. *)

module P = Elk_partition.Partition
module G = Elk_model.Graph

type kind = Preload | Exec

let kind_name = function Preload -> "preload" | Exec -> "exec"

type buffer = {
  op : int;
  name : string;
  kind : kind;
  bytes : float;  (* per-core *)
  cores : int;
  alloc_step : int;
  first_use : int;
  last_use : int;
  free_step : int;
}

type hbm_row = {
  h_op : int;
  h_name : string;
  h_bytes : float;
  h_moves : int;
  h_reuse_distance : int;
}

type t = {
  capacity : float;
  cores : int;
  buffers : buffer list;
  hbm : hbm_row list;
  step_usage : float array;
  high_water : float;
  high_water_step : int;
}

(* issued.(i) = number of preload positions issued once step i's window
   has been laid out: the initial batch plus every window up to and
   including window i+1 (program order interleaves [emit_window (i+1);
   execute i]). *)
let issued_counts (s : Schedule.t) =
  let n = Schedule.num_ops s in
  let issued = Array.make n 0 in
  let running = ref s.Schedule.windows.(0) in
  for i = 0 to n - 1 do
    running := !running + s.Schedule.windows.(i + 1);
    issued.(i) <- !running
  done;
  issued

(* Per-core live bytes during execute step i: the executing operator's
   execute space plus the preload space of every operator already issued
   but not yet executed.  Identical to the verifier's mem.capacity
   replay. *)
let step_usage (s : Schedule.t) =
  let n = Schedule.num_ops s in
  let issued = issued_counts s in
  Array.init n (fun i ->
      let usage = ref s.Schedule.entries.(i).Schedule.plan.P.exec_space in
      for k = 0 to issued.(i) - 1 do
        let w = s.Schedule.order.(k) in
        if w > i then
          usage := !usage +. s.Schedule.entries.(w).Schedule.popt.P.preload_space
      done;
      !usage)

let of_schedule ~capacity ~cores (s : Schedule.t) =
  let n = Schedule.num_ops s in
  let graph = s.Schedule.graph in
  let name_of op = (G.get graph op).G.op.Elk_tensor.Opspec.name in
  let pos = Schedule.position_of s in
  let step = Schedule.preload_step s in
  let usage = step_usage s in
  let high_water = ref 0. and high_water_step = ref 0 in
  Array.iteri
    (fun i u ->
      if u > !high_water then begin
        high_water := u;
        high_water_step := i
      end)
    usage;
  let buffers = ref [] in
  let hbm = ref [] in
  for op = n - 1 downto 0 do
    let e = s.Schedule.entries.(op) in
    let alloc = step.(pos.(op)) in
    (* Execute footprint: allocated when the operator starts executing,
       its last use is the execute step itself, freed as it completes. *)
    if e.Schedule.plan.P.exec_space > 0. then
      buffers :=
        {
          op;
          name = name_of op;
          kind = Exec;
          bytes = e.Schedule.plan.P.exec_space;
          cores = e.Schedule.plan.P.cores_used;
          alloc_step = op;
          first_use = op;
          last_use = op;
          free_step = op;
        }
        :: !buffers;
    (* Preload buffer: allocated when its window is issued, consumed
       (converted to execute state) at the operator's own step. *)
    if e.Schedule.popt.P.preload_space > 0. then
      buffers :=
        {
          op;
          name = name_of op;
          kind = Preload;
          bytes = e.Schedule.popt.P.preload_space;
          cores;
          alloc_step = alloc;
          first_use = op;
          last_use = op;
          free_step = op;
        }
        :: !buffers;
    let dev = e.Schedule.popt.P.hbm_device_bytes in
    hbm :=
      {
        h_op = op;
        h_name = name_of op;
        h_bytes = dev;
        h_moves = (if dev > 0. then 1 else 0);
        h_reuse_distance = op - alloc;
      }
      :: !hbm
  done;
  {
    capacity;
    cores;
    buffers = !buffers;
    hbm = !hbm;
    step_usage = usage;
    high_water = !high_water;
    high_water_step = !high_water_step;
  }

let high_water (s : Schedule.t) =
  Array.fold_left Float.max 0. (step_usage s)
