open Elk_model

let kendall_tau a b =
  if List.sort compare a <> List.sort compare b then
    invalid_arg "Reorder.kendall_tau: not permutations of the same set";
  let posb = Hashtbl.create 16 in
  List.iteri (fun i x -> Hashtbl.replace posb x i) b;
  let arr = Array.of_list (List.map (Hashtbl.find posb) a) in
  let n = Array.length arr in
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if arr.(i) > arr.(j) then incr count
    done
  done;
  !count

let valid_suffix_orders ~capacity ~items ?(max_orders = 5000) () =
  let results = ref [] and count = ref 0 in
  (* [chosen] accumulates operators from last-preloaded to first; [remaining]
     are operators whose preload position is still open. *)
  let rec go remaining chosen =
    if !count >= max_orders then ()
    else
      match remaining with
      | [] ->
          results := chosen :: !results;
          incr count
      | _ ->
          List.iter
            (fun (x, _) ->
              let coresident =
                List.filter (fun (y, _) -> y = x || y > x) remaining
              in
              let space = List.fold_left (fun a (_, s) -> a +. s) 0. coresident in
              if space <= capacity then
                go (List.filter (fun (y, _) -> y <> x) remaining) (x :: chosen))
            remaining
  in
  go items [];
  !results

let template_layer_heavy graph =
  let heavy = Graph.hbm_heavy_ids graph in
  let by_layer = Hashtbl.create 8 in
  List.iter
    (fun id ->
      match (Graph.get graph id).Graph.layer with
      | Some l ->
          let cur = try Hashtbl.find by_layer l with Not_found -> [] in
          Hashtbl.replace by_layer l (id :: cur)
      | None -> ())
    heavy;
  let best =
    Hashtbl.fold
      (fun l ids acc ->
        let n = List.length ids in
        match acc with
        | Some (_, bn) when bn > n -> acc
        | Some (bl, bn) when bn = n && bl <= l -> acc
        | _ -> Some (l, n))
      by_layer None
  in
  match best with
  | None -> []
  | Some (l, _) -> List.sort compare (Hashtbl.find by_layer l)

(* Candidate-order memo: the order set is a pure function of the graph
   content, the partition context (capacity and min-preload-space
   estimates) and the two bounds, so identical layers recompiled across
   serving steps reuse one enumeration.  Arrays are copied out on hit —
   callers may not alias cached state. *)
let memo : (string, int array list) Compilecache.Lru.t =
  Compilecache.Lru.create ~cap:256 ()

let () = Compilecache.on_reset (fun () -> Compilecache.Lru.clear memo)

let candidate_orders_uncached ~max_orders ~max_edit_distance ctx graph =
  let n = Graph.length graph in
  let identity = Array.init n (fun i -> i) in
  let template = template_layer_heavy graph in
  if List.length template < 2 then [ identity ]
  else begin
    let chip = Elk_partition.Partition.ctx_chip ctx in
    let capacity = Elk_arch.Arch.usable_sram_per_core chip in
    let items =
      List.map (fun id -> (id, Alloc.min_preload_space ctx (Graph.get graph id))) template
    in
    let per_layer_orders =
      valid_suffix_orders ~capacity ~items ~max_orders:2000 ()
      |> List.filter (fun order ->
             order <> template && kendall_tau order template <= max_edit_distance)
    in
    (* Permutations expressed as index mappings relative to the template so
       they can be replicated onto every layer with matching roles. *)
    let template_arr = Array.of_list template in
    let template_roles =
      Array.map (fun id -> (Graph.get graph id).Graph.role) template_arr
    in
    let as_indices order =
      List.map
        (fun id ->
          let rec find i = if template_arr.(i) = id then i else find (i + 1) in
          find 0)
        order
    in
    let heavy = Graph.hbm_heavy_ids graph in
    let heavy_by_layer = Hashtbl.create 8 in
    List.iter
      (fun id ->
        match (Graph.get graph id).Graph.layer with
        | Some l ->
            let cur = try Hashtbl.find heavy_by_layer l with Not_found -> [] in
            Hashtbl.replace heavy_by_layer l (id :: cur)
        | None -> ())
      heavy;
    let layers =
      Hashtbl.fold (fun l ids acc -> (l, List.sort compare ids) :: acc) heavy_by_layer []
      |> List.sort compare
    in
    let apply perm_indices =
      let order = Array.copy identity in
      List.iter
        (fun (_, ids) ->
          let ids_arr = Array.of_list ids in
          let roles = Array.map (fun id -> (Graph.get graph id).Graph.role) ids_arr in
          if roles = template_roles then begin
            (* The slots (preload positions) stay those of the execution
               order; the heavy ops fill them in permuted order. *)
            let slots = ids_arr in
            List.iteri (fun slot_i src_i -> order.(slots.(slot_i)) <- ids_arr.(src_i))
              perm_indices
          end)
        layers;
      order
    in
    let permuted =
      List.filteri (fun i _ -> i < max_orders - 1) per_layer_orders
      |> List.map (fun o -> apply (as_indices o))
    in
    identity :: permuted
  end

let candidate_orders ?(max_orders = 64) ?(max_edit_distance = 6) ctx graph =
  if Compilecache.enabled () then
    let key =
      Compilecache.digest_strings
        [
          Elk_partition.Partition.fingerprint ctx;
          string_of_int max_orders;
          string_of_int max_edit_distance;
          Compilecache.graph_digest graph;
        ]
    in
    match Compilecache.Lru.find memo key with
    | Some orders ->
        Compilecache.note_reorder_hit ();
        List.map Array.copy orders
    | None ->
        let orders = candidate_orders_uncached ~max_orders ~max_edit_distance ctx graph in
        Compilecache.Lru.put memo key (List.map Array.copy orders);
        orders
  else candidate_orders_uncached ~max_orders ~max_edit_distance ctx graph
