(** Static SRAM-residency replay over a schedule (the buffer-lifetime
    ledger behind [elk mem]).

    Replays the same liveness model as the verifier's [mem.capacity]
    rule — during execute step [i] the executing operator holds its
    execute-state space while every issued-but-not-yet-executed operator
    holds its preload-state space — and derives from it, without running
    the simulator:

    - per-step per-core SRAM usage and its high-water mark;
    - a buffer-lifetime ledger: per buffer, its allocation step
      (window issue for preloads, the execute step for execute
      footprints), first/last use, free step, per-core bytes, and the
      core set holding it;
    - an HBM traffic ledger per tensor: bytes moved from the devices,
      move count, and reuse distance in steps between the preload issue
      and the consuming execute.

    Lives in the core library (not [Elk_verify]) so analysis tooling can
    link it without arming the verifier's compile-time hook; the
    verifier delegates its usage computation here, so the two can never
    drift. *)

type kind = Preload  (** preload-state buffer, held on every core. *)
          | Exec  (** execute-state footprint on the cores used. *)

val kind_name : kind -> string

type buffer = {
  op : int;  (** operator id the buffer belongs to. *)
  name : string;  (** operator name. *)
  kind : kind;
  bytes : float;  (** per-core bytes. *)
  cores : int;  (** cores holding the buffer. *)
  alloc_step : int;
      (** execute step whose window issued it (0 = initial batch) for
          preloads; the operator's own step for execute footprints. *)
  first_use : int;  (** execute step of the first (= only) use. *)
  last_use : int;
  free_step : int;  (** execute step after which the bytes are free. *)
}

type hbm_row = {
  h_op : int;
  h_name : string;
  h_bytes : float;  (** bytes read from HBM devices for this tensor. *)
  h_moves : int;  (** HBM transfers issued (0 for zero-byte preloads). *)
  h_reuse_distance : int;
      (** steps between the preload issue and the consuming execute. *)
}

type t = {
  capacity : float;  (** per-core SRAM capacity the ledger was built for. *)
  cores : int;  (** cores per chip. *)
  buffers : buffer list;  (** in (op, Exec-before-Preload) order. *)
  hbm : hbm_row list;  (** one row per operator, in op order. *)
  step_usage : float array;  (** per-core live bytes during each step. *)
  high_water : float;  (** max of [step_usage]. *)
  high_water_step : int;
}

val issued_counts : Schedule.t -> int array
(** [issued.(i)] = preload positions issued once step [i]'s window is
    out: the initial batch plus windows [1..i+1] (program order
    interleaves [emit_window (i+1); execute i]). *)

val step_usage : Schedule.t -> float array
(** Per-core live bytes during each execute step — the verifier's
    [mem.capacity] usage replay. *)

val of_schedule : capacity:float -> cores:int -> Schedule.t -> t
(** Build the full ledger.  [capacity] and [cores] come from the chip
    ({!Elk_arch.Arch.usable_sram_per_core}); they only annotate the
    result, the replay itself needs neither. *)

val high_water : Schedule.t -> float
(** [Array.fold_left max 0. (step_usage s)] without building a ledger —
    the cheap form serving uses per compiled plan. *)
