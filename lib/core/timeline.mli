(** Analytic forward timeline evaluation of a schedule.

    Replays a {!Schedule.t} under the device rules of §4.5 — executes are
    sequential; preloads are sequential in preload order; a preload gated
    to window [i] cannot start before the previous operator's execution
    ends; an operator's execution waits for its own preload — and returns
    the quantities the paper's evaluation reports: makespan, the
    four-way time breakdown of Fig 18(a), HBM / interconnect utilization
    (Fig 18(b,c)) and achieved FLOP/s (Fig 18(d)).

    Interconnect contention is modeled first-order: when the injection
    traffic of in-flight preloads plus the executing operator's inter-core
    exchange exceeds what the fabric can serve within the execution span,
    the excess service time stretches the span and is accounted to the
    [interconnect] bucket.  The event-driven simulator ({!Elk_sim.Sim})
    refines this with per-link queues. *)

type op_times = {
  pre_start : float;
  pre_end : float;
  exe_start : float;
  exe_end : float;  (** includes the data-distribution phase and stalls. *)
}

type breakdown = {
  preload_only : float;  (** HBM loading with idle cores. *)
  execute_only : float;  (** cores busy, HBM idle. *)
  overlapped : float;  (** both active. *)
  interconnect : float;  (** stalls from interconnect contention. *)
}

type result = {
  total : float;
  bd : breakdown;
  hbm_util : float;  (** mean HBM bandwidth utilization. *)
  noc_util : float;  (** mean interconnect utilization (all traffic). *)
  intercore_volume : float;  (** bytes exchanged core-to-core. *)
  inject_volume : float;  (** bytes injected by HBM controllers. *)
  hbm_device_volume : float;  (** bytes read from HBM devices. *)
  achieved_flops : float;  (** model FLOPs / total time. *)
  per_op : op_times array;
}

val evaluate : Elk_partition.Partition.ctx -> Schedule.t -> result
(** Raises [Invalid_argument] if the schedule fails {!Schedule.validate}. *)

val lower_bound : Elk_partition.Partition.ctx -> Schedule.t -> float
(** A stall-free makespan: {!evaluate}'s forward pass with the
    interconnect-contention term dropped.  Because stalls are nonnegative
    and gating is monotone in them, this is a {e true lower bound} of
    [(evaluate ctx s).total] — the branch-and-bound order search in
    {!Compile.compile} may skip the full quadratic evaluation of any
    candidate whose bound already exceeds the incumbent without ever
    changing the argmin.  O(n) after the validate.  Raises
    [Invalid_argument] on an invalid schedule. *)

val pp_breakdown : Format.formatter -> breakdown -> unit
