(** End-to-end compilation driver: the public entry point of Elk.

    [compile] shards the model across the pod's chips, generates candidate
    preload orders (§4.4), schedules each with the inductive scheduler
    (§4.2) + cost-aware allocator (§4.3), evaluates candidates with the
    analytic timeline, and returns the best plan together with its device
    program (§4.5). *)

type options = {
  reorder : bool;  (** enable preload-order permutation (Elk-Full). *)
  max_orders : int;  (** candidate preload orders to evaluate. *)
  max_edit_distance : int;  (** Kendall-tau bound on per-layer reorders. *)
  max_preload : int;  (** cap on per-operator preload numbers. *)
  fuse : bool;  (** run the §8 pointwise-fusion pass before scheduling. *)
  prune_margin : float;
      (** slack of the branch-and-bound scheduler cutoff: candidate
          orders whose stall-free lower bound exceeds the execution
          order's by more than this fraction are abandoned mid-induction.
          Negative disables the cutoff (the sound incumbent skip inside
          the search still applies).  The cutoff is derived solely from
          the always-evaluated baseline order, so pruning — and the
          chosen plan — is identical whatever the jobs count. *)
}

val default_options : options
(** Elk-Full: reordering on, 24 orders, edit distance 6, fusion off (the
    paper's Elk treats fusion as an optional compatibility pass, §8),
    prune margin 0.25. *)

val dyn_options : options
(** Elk-Dyn: scheduling and allocation only, no reordering (§6.1). *)

type t = {
  pod : Elk_arch.Arch.pod;
  graph : Elk_model.Graph.t;  (** original model graph. *)
  chip_graph : Elk_model.Graph.t;  (** per-chip sharded graph. *)
  schedule : Schedule.t;
  timeline : Timeline.result;
  program : Program.t;
  allreduce : float;  (** inter-chip all-reduce time per forward pass. *)
  orders_tried : int;
  compile_seconds : float;  (** wall-clock compilation time. *)
}

exception Rejected of string
(** Raised by {!compile} when the installed static verifier flags the
    compiled plan with an [Error]-severity diagnostic: the compiler
    refuses to emit a plan that static analysis rejects. *)

type verifier =
  Elk_partition.Partition.ctx -> Schedule.t -> Program.t -> (unit, string) result
(** A static plan verifier: [Error msg] means the plan must not be
    emitted.  Warnings are the verifier's own business (it is expected to
    log them). *)

val set_verifier : verifier option -> unit
(** Install (or clear) the verifier {!compile} runs on every plan before
    returning it.  [Elk_verify] installs its standard rule suite here at
    link time; the indirection exists because the verifier library sits
    above this one in the build graph. *)

val verifier : unit -> verifier option

val compile :
  ?options:options ->
  Elk_partition.Partition.ctx ->
  pod:Elk_arch.Arch.pod ->
  Elk_model.Graph.t ->
  t
(** Raises {!Scheduler.Infeasible} if the model cannot be scheduled even
    in execution order (some operator exceeds per-core SRAM), and
    {!Rejected} if the installed verifier flags the winning plan.

    Candidate orders beyond the first are scheduled and evaluated on the
    shared {!Elk_util.Pool} (size it with [Elk_util.Pool.set_jobs] or
    [ELK_JOBS]); the returned plan is byte-identical whatever the jobs
    count — ties between equal-makespan orders always resolve to the
    lowest candidate index, and pruning uses bounds that cannot exclude
    a winner.

    While {!Compilecache.enabled}, compiles are served from a whole-plan
    cache keyed by a digest of (context fingerprint, options, pod, full
    graph content): a warm compile of identical inputs returns the
    previously computed plan — byte-identical by construction — in
    [O(digest)] time, and an on-disk store ([ELK_COMPILE_CACHE_DIR])
    extends this across processes.  Cache misses additionally benefit
    from the {!Reorder} memo and the {!Scheduler} suffix-resume memo.
    Disable with [--no-compile-cache], [ELK_COMPILE_CACHE=0], or
    {!Compilecache.set_enabled}[ false] to recover the exact uncached
    pipeline. *)

val latency : t -> float
(** End-to-end forward latency: on-chip makespan + inter-chip
    all-reduces.  For a decode graph this is the per-token latency. *)

val pp_summary : Format.formatter -> t -> unit
