(* Cross-compile incremental cache (see compilecache.mli). *)

module P = Elk_partition.Partition
module Metrics = Elk_obs.Metrics

(* ------------------------------------------------------------------ *)
(* Enablement.                                                         *)

let enabled_flag =
  ref (match Sys.getenv_opt "ELK_COMPILE_CACHE" with Some "0" -> false | _ -> true)

let enabled () = !enabled_flag

let set_enabled v =
  enabled_flag := v;
  P.set_memo_sharing v

(* ------------------------------------------------------------------ *)
(* Stats: plain process-global counters, always recorded (unlike
   Metrics, which only record while Elk_obs.Control is enabled), so
   tests and the SLO report can assert on them unconditionally. *)

type stats = {
  plan_hits : int;
  plan_misses : int;
  plan_evictions : int;
  disk_hits : int;
  sched_resumes : int;
  reorder_hits : int;
}

let c_plan_hits = Atomic.make 0
let c_plan_misses = Atomic.make 0
let c_plan_evictions = Atomic.make 0
let c_disk_hits = Atomic.make 0
let c_sched_resumes = Atomic.make 0
let c_reorder_hits = Atomic.make 0

let stats () =
  {
    plan_hits = Atomic.get c_plan_hits;
    plan_misses = Atomic.get c_plan_misses;
    plan_evictions = Atomic.get c_plan_evictions;
    disk_hits = Atomic.get c_disk_hits;
    sched_resumes = Atomic.get c_sched_resumes;
    reorder_hits = Atomic.get c_reorder_hits;
  }

let bump counter metric help =
  Atomic.incr counter;
  Metrics.incr metric ~help

let note_plan_hit () =
  bump c_plan_hits "elk_compile_cache_hits_total" "Whole-plan compile cache hits"

let note_plan_miss () =
  bump c_plan_misses "elk_compile_cache_misses_total" "Whole-plan compile cache misses"

let note_disk_hit () =
  bump c_disk_hits "elk_compile_cache_disk_hits_total"
    "Whole-plan compile cache hits served from the on-disk store"

let note_sched_resume () =
  bump c_sched_resumes "elk_compile_cache_sched_resumes_total"
    "Backward inductions resumed from a memoized clean suffix"

let note_reorder_hit () =
  bump c_reorder_hits "elk_compile_cache_reorder_hits_total"
    "Candidate-order sets served from the reorder memo"

(* ------------------------------------------------------------------ *)
(* Mutex-guarded LRU used by every in-memory store.  Eviction scans for
   the minimum stamp — O(n), fine at the cap sizes used here (<= 1k). *)

module Lru = struct
  type ('k, 'v) t = {
    lock : Mutex.t;
    tbl : ('k, 'v * int ref) Hashtbl.t;
    mutable cap : int;
    mutable tick : int;
  }

  let create ~cap () =
    { lock = Mutex.create (); tbl = Hashtbl.create 64; cap = max 1 cap; tick = 0 }

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let find t k =
    locked t (fun () ->
        match Hashtbl.find_opt t.tbl k with
        | None -> None
        | Some (v, stamp) ->
            t.tick <- t.tick + 1;
            stamp := t.tick;
            Some v)

  let evict_one t =
    let victim =
      Hashtbl.fold
        (fun k (_, stamp) acc ->
          match acc with
          | Some (_, s) when s <= !stamp -> acc
          | _ -> Some (k, !stamp))
        t.tbl None
    in
    match victim with
    | Some (k, _) ->
        Hashtbl.remove t.tbl k;
        Atomic.incr c_plan_evictions;
        Metrics.incr "elk_compile_cache_evictions_total"
          ~help:"Entries evicted from in-memory compile cache stores"
    | None -> ()

  let put t k v =
    locked t (fun () ->
        t.tick <- t.tick + 1;
        if not (Hashtbl.mem t.tbl k) && Hashtbl.length t.tbl >= t.cap then evict_one t;
        Hashtbl.replace t.tbl k (v, ref t.tick))

  let length t = locked t (fun () -> Hashtbl.length t.tbl)
  let clear t = locked t (fun () -> Hashtbl.reset t.tbl)

  let set_cap t cap =
    locked t (fun () ->
        t.cap <- max 1 cap;
        while Hashtbl.length t.tbl > t.cap do
          evict_one t
        done)
end

(* ------------------------------------------------------------------ *)
(* Canonical digests.  Every encoder is length-prefixed so distinct
   inputs cannot collide by separator injection; floats render bit-exact
   ("%h").                                                             *)

let add_str b s =
  Buffer.add_string b (string_of_int (String.length s));
  Buffer.add_char b ':';
  Buffer.add_string b s

let add_int b v =
  Buffer.add_string b (string_of_int v);
  Buffer.add_char b ';'

let node_digest (n : Elk_model.Graph.node) =
  let b = Buffer.create 96 in
  add_int b n.Elk_model.Graph.id;
  add_str b (P.plan_signature n.Elk_model.Graph.op);
  add_str b n.Elk_model.Graph.op.Elk_tensor.Opspec.name;
  (match n.Elk_model.Graph.layer with
  | None -> Buffer.add_char b 'n'
  | Some l ->
      Buffer.add_char b 'l';
      add_int b l);
  add_str b n.Elk_model.Graph.role;
  List.iter (add_int b) n.Elk_model.Graph.deps;
  Digest.string (Buffer.contents b)

let graph_digest g =
  let b = Buffer.create 1024 in
  add_str b (Elk_model.Graph.name g);
  let nodes = Elk_model.Graph.nodes g in
  add_int b (Array.length nodes);
  Array.iter (fun n -> Buffer.add_string b (node_digest n)) nodes;
  Digest.to_hex (Digest.string (Buffer.contents b))

let digest_strings parts =
  let b = Buffer.create 256 in
  List.iter (add_str b) parts;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ------------------------------------------------------------------ *)
(* On-disk store: one file per whole-plan key under
   ELK_COMPILE_CACHE_DIR.  Entries are Marshal blobs prefixed by a
   format version and an echo of the key; any mismatch or exception
   reads as a miss.  Writes go through a temp file + rename so a
   concurrent reader never sees a torn entry.                          *)

let disk_version = "elk-compile-cache-1"

let disk_dir () =
  match Sys.getenv_opt "ELK_COMPILE_CACHE_DIR" with
  | Some "" | None -> None
  | some -> some

let disk_path dir key = Filename.concat dir ("elk-plan-" ^ key ^ ".cache")

let disk_find ~key =
  match disk_dir () with
  | None -> None
  | Some dir -> (
      let path = disk_path dir key in
      try
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let ver : string = Marshal.from_channel ic in
            let k : string = Marshal.from_channel ic in
            if ver <> disk_version || k <> key then None
            else Some (Marshal.from_channel ic))
      with _ -> None)

let disk_store ~key v =
  match disk_dir () with
  | None -> ()
  | Some dir -> (
      try
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let path = disk_path dir key in
        let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            Marshal.to_channel oc disk_version [];
            Marshal.to_channel oc key [];
            Marshal.to_channel oc v []);
        Sys.rename tmp path
      with _ -> ())

(* ------------------------------------------------------------------ *)
(* Reset: in-memory stores register a clear hook at module init; tests
   and cold-start benchmarks call [reset] to return the process to a
   pristine (cold) cache state.  The on-disk store is left alone.      *)

let reset_hooks : (unit -> unit) list ref = ref []
let on_reset f = reset_hooks := f :: !reset_hooks

let reset () =
  List.iter (fun f -> f ()) !reset_hooks;
  P.reset_shared_memos ();
  Atomic.set c_plan_hits 0;
  Atomic.set c_plan_misses 0;
  Atomic.set c_plan_evictions 0;
  Atomic.set c_disk_hits 0;
  Atomic.set c_sched_resumes 0;
  Atomic.set c_reorder_hits 0
