type options = {
  reorder : bool;
  max_orders : int;
  max_edit_distance : int;
  max_preload : int;
  fuse : bool;
  prune_margin : float;
}

let default_options =
  {
    reorder = true;
    max_orders = 24;
    max_edit_distance = 6;
    max_preload = 32;
    fuse = false;
    prune_margin = 0.25;
  }

let dyn_options = { default_options with reorder = false }

type t = {
  pod : Elk_arch.Arch.pod;
  graph : Elk_model.Graph.t;
  chip_graph : Elk_model.Graph.t;
  schedule : Schedule.t;
  timeline : Timeline.result;
  program : Program.t;
  allreduce : float;
  orders_tried : int;
  compile_seconds : float;
}

module Span = Elk_obs.Span
module Metrics = Elk_obs.Metrics

exception Rejected of string

type verifier =
  Elk_partition.Partition.ctx -> Schedule.t -> Program.t -> (unit, string) result

let the_verifier : verifier option ref = ref None
let set_verifier v = the_verifier := v
let verifier () = !the_verifier

(* Whole-plan cache.  The key digests everything a compile depends on —
   the partition-context fingerprint (chip + cost-model behavior), every
   option field, the pod, and the full input graph content (names
   included, since they flow into the exported plan).  A warm hit
   therefore returns a value from an earlier compile of the {e same}
   inputs: byte-identical by construction.  Disk entries (when
   ELK_COMPILE_CACHE_DIR is set) persist the schedule across processes;
   cheap derived pieces (timeline, program, all-reduce) are recomputed on
   load and the plan re-passes the verifier gate before being trusted. *)
let plan_store : (string, t) Compilecache.Lru.t = Compilecache.Lru.create ~cap:512 ()
let () = Compilecache.on_reset (fun () -> Compilecache.Lru.clear plan_store)

let options_sig o =
  String.concat ","
    [
      string_of_bool o.reorder;
      string_of_int o.max_orders;
      string_of_int o.max_edit_distance;
      string_of_int o.max_preload;
      string_of_bool o.fuse;
      Printf.sprintf "%h" o.prune_margin;
    ]

let pod_sig (pod : Elk_arch.Arch.pod) =
  String.concat ","
    [
      string_of_int pod.Elk_arch.Arch.chips;
      Printf.sprintf "%h" pod.Elk_arch.Arch.interchip_bandwidth;
      Elk_arch.Arch.fingerprint pod.Elk_arch.Arch.chip;
    ]

(* What a disk entry holds: the (possibly fused) source graph, the
   schedule (which embeds the chip graph), and the search effort spent
   producing it. *)
type disk_entry = Elk_model.Graph.t * Schedule.t * int

let probe_cache ~key ~pod ~t0 ctx graph =
  Span.with_span "compile.cache" (fun () ->
      match Compilecache.Lru.find plan_store key with
      | Some t ->
          (* Re-run the verifier gate: a cold compile of these inputs
             would produce this exact plan and gate it, and the installed
             verifier may have changed since the entry was written. *)
          (match !the_verifier with
          | None -> ()
          | Some verify -> (
              match verify ctx t.schedule t.program with
              | Ok () -> ()
              | Error msg ->
                  Elk_obs.Logger.error ~src:"compile"
                    ~kvs:[ ("model", Elk_model.Graph.name graph) ]
                    ("plan rejected by verifier: " ^ msg);
                  raise (Rejected msg)));
          Compilecache.note_plan_hit ();
          Some { t with pod; compile_seconds = Unix.gettimeofday () -. t0 }
      | None -> (
          match (Compilecache.disk_find ~key : disk_entry option) with
          | None -> None
          | Some (g, schedule, orders_tried) -> (
              let chip_graph = schedule.Schedule.graph in
              let t =
                {
                  pod;
                  graph = g;
                  chip_graph;
                  schedule;
                  timeline = Timeline.evaluate ctx schedule;
                  program = Program.of_schedule schedule;
                  allreduce = Sharding.allreduce_time pod chip_graph;
                  orders_tried;
                  compile_seconds = Unix.gettimeofday () -. t0;
                }
              in
              (* A disk entry that no longer satisfies the verifier (e.g.
                 written by a different build) degrades to a miss — the
                 cold path recompiles from scratch. *)
              let ok =
                match !the_verifier with
                | None -> true
                | Some verify -> (
                    match verify ctx t.schedule t.program with
                    | Ok () -> true
                    | Error msg ->
                        Elk_obs.Logger.warn ~src:"compile"
                          ~kvs:[ ("model", Elk_model.Graph.name graph) ]
                          ("discarding on-disk cached plan: " ^ msg);
                        false)
              in
              if not ok then None
              else begin
                Compilecache.note_plan_hit ();
                Compilecache.note_disk_hit ();
                Compilecache.Lru.put plan_store key t;
                Some t
              end)))

let compile ?(options = default_options) ctx ~pod graph =
  Span.with_span "compile"
    ~attrs:[ ("model", Elk_model.Graph.name graph) ]
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let key =
        if Compilecache.enabled () then
          Some
            (Compilecache.digest_strings
               [
                 Elk_partition.Partition.fingerprint ctx;
                 options_sig options;
                 pod_sig pod;
                 Compilecache.graph_digest graph;
               ])
        else None
      in
      match Option.bind key (fun key -> probe_cache ~key ~pod ~t0 ctx graph) with
      | Some t ->
          Elk_obs.Logger.debug ~src:"compile"
            ~kvs:[ ("model", Elk_model.Graph.name graph) ]
            "compile cache hit";
          t
      | None ->
      Option.iter (fun _ -> Compilecache.note_plan_miss ()) key;
      let graph =
        if options.fuse then Span.with_span "fuse" (fun () -> Fusion.fuse graph)
        else graph
      in
      let chip_graph =
        Span.with_span "shard" (fun () ->
            Opsplit.split_graph ctx
              (Sharding.shard_graph ~chips:pod.Elk_arch.Arch.chips graph))
      in
      let orders =
        Span.with_span "order-gen" (fun () ->
            if options.reorder then
              Reorder.candidate_orders ~max_orders:options.max_orders
                ~max_edit_distance:options.max_edit_distance ctx chip_graph
            else [ Array.init (Elk_model.Graph.length chip_graph) (fun i -> i) ])
      in
      (* Branch-and-bound order search.  The head candidate (always the
         execution order) is scheduled and evaluated sequentially: it
         seeds the incumbent deterministically and warms the partition
         memo caches before the fan-out.  The remaining candidates run on
         the shared domain pool; each is bounded twice:

         - a {e static} scheduler cutoff — the baseline's stall-free
           lower bound stretched by [prune_margin] — aborts hopeless
           backward inductions early ({!Scheduler.Pruned}).  The cutoff
           depends only on the baseline, so the set of orders it prunes
           is identical whatever the jobs count;
         - a shared incumbent (best full timeline total so far) lets a
           worker skip the quadratic {!Timeline.evaluate} whenever the
           candidate's O(n) {!Timeline.lower_bound} already exceeds it.
           Skipping is sound and cannot perturb the winner: the skipped
           total would be [>= lb > incumbent >= final best], strictly
           worse, so ties still resolve to the lowest candidate index.

         The final fold runs in candidate-list order, making the chosen
         plan byte-identical across jobs counts. *)
      let schedule_order ?cutoff order =
        Metrics.incr "elk_compile_orders_tried_total"
          ~help:"Candidate preload orders attempted by the scheduler";
        try
          Some
            (Span.with_span "schedule" (fun () ->
                 Scheduler.run ~order ~max_preload:options.max_preload ?cutoff ctx
                   chip_graph))
        with
        | Scheduler.Infeasible _ ->
            Metrics.incr "elk_compile_orders_infeasible_total"
              ~help:"Candidate preload orders rejected as infeasible";
            None
        | Scheduler.Pruned ->
            Metrics.incr "elk_compile_orders_pruned_total"
              ~help:"Candidate preload orders pruned by the branch-and-bound lower bound";
            None
      in
      let timeline_of s =
        Span.with_span "timeline-eval" (fun () -> Timeline.evaluate ctx s)
      in
      let base =
        match orders with
        | [] -> None
        | first :: _ -> (
            match schedule_order first with
            | None -> None
            | Some s -> Some (s, timeline_of s))
      in
      let cutoff =
        match base with
        | Some (s, _) when options.prune_margin >= 0. ->
            Timeline.lower_bound ctx s *. (1. +. options.prune_margin)
        | _ -> infinity
      in
      let incumbent =
        Atomic.make
          (match base with Some (_, tl) -> tl.Timeline.total | None -> infinity)
      in
      let rest = match orders with [] -> [] | _ :: tl -> tl in
      let candidates =
        Elk_util.Pool.map (Elk_util.Pool.get ())
          (fun order ->
            match schedule_order ~cutoff order with
            | None -> None
            | Some s ->
                (* Two evaluation skips: against the static cutoff (fires
                   deterministically — the scheduler's intermediate bound
                   is weaker and misses candidates whose final stall-free
                   makespan exceeds it) and against the shared incumbent
                   (timing-dependent but sound, see above). *)
                if
                  Timeline.lower_bound ctx s > Float.min cutoff (Atomic.get incumbent)
                then begin
                  Metrics.incr "elk_compile_orders_pruned_total"
                    ~help:
                      "Candidate preload orders pruned by the branch-and-bound lower bound";
                  (* Scheduled but not fully evaluated: still counts as
                     tried, keeping [orders_tried] jobs-independent. *)
                  Some (s, None)
                end
                else begin
                  let tl = timeline_of s in
                  let rec relax () =
                    let cur = Atomic.get incumbent in
                    if
                      tl.Timeline.total < cur
                      && not (Atomic.compare_and_set incumbent cur tl.Timeline.total)
                    then relax ()
                  in
                  relax ();
                  Some (s, Some tl)
                end)
          rest
      in
      let tried =
        (match base with Some _ -> 1 | None -> 0)
        + List.length (List.filter Option.is_some candidates)
      in
      let best =
        List.fold_left
          (fun acc c ->
            match c with
            | Some (s, Some tl) -> (
                match acc with
                | Some (_, btl) when btl.Timeline.total <= tl.Timeline.total -> acc
                | _ -> Some (s, tl))
            | Some (_, None) | None -> acc)
          base candidates
      in
      let s, tl, tried =
        match best with
        | Some (s, tl) -> (s, tl, tried)
        | None ->
            (* Re-run in execution order to surface the underlying error. *)
            let s = Span.with_span "schedule" (fun () -> Scheduler.run ctx chip_graph) in
            let tl = Span.with_span "timeline-eval" (fun () -> Timeline.evaluate ctx s) in
            (s, tl, 1)
      in
      let t =
        {
          pod;
          graph;
          chip_graph;
          schedule = s;
          timeline = tl;
          program = Program.of_schedule s;
          allreduce = Sharding.allreduce_time pod chip_graph;
          orders_tried = tried;
          compile_seconds = Unix.gettimeofday () -. t0;
        }
      in
      (* Static verification gate: never emit a plan the verifier flags
         with an error.  The hook is installed by Elk_verify when that
         library is linked; warnings are logged by the hook itself. *)
      (match !the_verifier with
      | None -> ()
      | Some verify -> (
          match verify ctx t.schedule t.program with
          | Ok () -> ()
          | Error msg ->
              Elk_obs.Logger.error ~src:"compile"
                ~kvs:[ ("model", Elk_model.Graph.name graph) ]
                ("plan rejected by verifier: " ^ msg);
              raise (Rejected msg)));
      (match key with
      | Some key ->
          Compilecache.Lru.put plan_store key t;
          Compilecache.disk_store ~key ((t.graph, t.schedule, t.orders_tried) : disk_entry)
      | None -> ());
      Elk_obs.Logger.info ~src:"compile"
        ~kvs:
          [
            ("model", Elk_model.Graph.name graph);
            ("orders_tried", string_of_int tried);
            ("latency_s", Printf.sprintf "%.6g" (tl.Timeline.total +. t.allreduce));
            ("compile_s", Printf.sprintf "%.3f" t.compile_seconds);
          ]
        "compiled plan";
      t)

let latency t = t.timeline.Timeline.total +. t.allreduce

let pp_summary fmt t =
  Format.fprintf fmt
    "@[<v>model: %s on %a@,latency: %a (on-chip %a + all-reduce %a)@,%a@,hbm util: %.1f%%  noc util: %.1f%%  tflops: %.2f@,orders tried: %d, compile time: %.2fs@]"
    (Elk_model.Graph.name t.graph)
    Elk_arch.Arch.pp_pod t.pod Elk_util.Units.pp_time (latency t) Elk_util.Units.pp_time
    t.timeline.Timeline.total Elk_util.Units.pp_time t.allreduce Timeline.pp_breakdown
    t.timeline.Timeline.bd
    (100. *. t.timeline.Timeline.hbm_util)
    (100. *. t.timeline.Timeline.noc_util)
    (t.timeline.Timeline.achieved_flops /. 1e12)
    t.orders_tried t.compile_seconds
