

type op_entry = {
  node_id : int;
  plan : Elk_partition.Partition.plan;
  popt : Elk_partition.Partition.preload_opt;
  preload_len : float;
  dist_time : float;
}

type t = {
  graph : Elk_model.Graph.t;
  order : int array;
  windows : int array;
  entries : op_entry array;
  est_total : float;
}

let num_ops t = Array.length t.entries

let position_of t =
  let n = num_ops t in
  let pos = Array.make n (-1) in
  Array.iteri (fun k id -> pos.(id) <- k) t.order;
  pos

let preload_step t =
  let n = num_ops t in
  let step = Array.make n 0 in
  let k = ref 0 in
  Array.iteri
    (fun i w ->
      for _ = 1 to w do
        if !k < n then begin
          step.(!k) <- i;
          incr k
        end
      done)
    t.windows;
  step

(* A duration or estimate is admissible when it is a finite, non-negative
   float: NaN, infinities, and negative times all denote a broken
   schedule that would silently corrupt the timeline evaluation. *)
let bad_time v = not (Float.is_finite v) || v < 0.

let numeric_check t =
  if bad_time t.est_total then Error "non-finite or negative est_total"
  else
    Array.fold_left
      (fun acc e ->
        match acc with
        | Error _ -> acc
        | Ok () ->
            if bad_time e.preload_len then
              Error (Printf.sprintf "op %d: non-finite or negative preload_len" e.node_id)
            else if bad_time e.dist_time then
              Error (Printf.sprintf "op %d: non-finite or negative dist_time" e.node_id)
            else Ok ())
      (Ok ()) t.entries

let validate t =
  let n = num_ops t in
  if Elk_model.Graph.length t.graph <> n then Error "entry count mismatch with graph"
  else if Array.length t.order <> n then Error "order length mismatch"
  else if Array.length t.windows <> n + 1 then Error "windows length must be N+1"
  else if Array.exists (fun w -> w < 0) t.windows then Error "negative window"
  else if Array.fold_left ( + ) 0 t.windows <> n then Error "windows do not sum to N"
  else
    match numeric_check t with
    | Error _ as e -> e
    | Ok () ->
    let pos = position_of t in
    if Array.exists (fun p -> p < 0) pos then Error "order is not a permutation"
    else begin
      let bad = ref None in
      Array.iteri
        (fun id e -> if e.node_id <> id then bad := Some "entry id mismatch")
        t.entries;
      match !bad with
      | Some m -> Error m
      | None ->
          (* Every operator must be fully issued before its execution step:
             the step that contains its preload position must be at most its
             own execution step (step i issues before executing op i). *)
          (* Op [id] executes at 1-based step [id+1]; a preload issued in
             window [w] starts during the execution of step [w], so the
             latest window that can still complete before op [id] executes
             is window [id] (overlapping the previous op's execution). *)
          let step = preload_step t in
          let ok = ref (Ok ()) in
          Array.iteri
            (fun id p ->
              if step.(p) > id then
                ok :=
                  Error
                    (Printf.sprintf "op %d preloaded in window %d, too late for its execution"
                       id step.(p)))
            pos;
          !ok
    end

let preload_time ctx op (popt : Elk_partition.Partition.preload_opt) =
  ignore ctx;
  ignore op;
  popt.Elk_partition.Partition.preload_len
