(** Two-level inductive operator scheduling (paper §4.2).

    Operators execute in graph order; the scheduler decides, by backward
    induction from the last operator, how many preloads overlap each
    operator's execution (its {e preload number}), invoking the
    cost-aware allocator (§4.3) for every candidate so that each preload
    number is evaluated with its best memory split.  Times are anchored
    at the end of the model ([T_end = 0]) and preloads are placed as late
    as possible, exactly as in Lemma 4.1 / Theorem 4.2: for operator [i],

    [T_e_exe(i) = min (T_s_exe(i+1), T_s_pre(first preload of the next
    window))], and the preload number maximizing [T_s_exe(i)] wins.

    The preload order may differ from the execution order (§4.4); it is
    supplied as a permutation and the induction consumes its positions
    from the back. *)

exception Infeasible of string
(** Raised when some operator cannot fit on the chip at all (no partition
    plan within per-core SRAM), or when a supplied preload order leaves an
    operator unpreloadable. *)

exception Pruned
(** Raised by [run ~cutoff] when, partway through the backward induction,
    the stall-free makespan of any completion already exceeds [cutoff]:
    the anchored start times [s_exe] only move left as the induction
    walks back, so [-s_exe.(i)] is a monotone lower bound of the final
    estimate.  The branch-and-bound order search in {!Compile.compile}
    uses this to abandon candidate orders that provably cannot beat its
    deterministic incumbent without paying for the remaining allocator
    sweeps.  Never raised when [cutoff] is omitted. *)

val run :
  ?order:int array ->
  ?max_preload:int ->
  ?cutoff:float ->
  Elk_partition.Partition.ctx ->
  Elk_model.Graph.t ->
  Schedule.t
(** [run ctx graph] schedules every operator and returns a complete
    {!Schedule.t} (validated).  [order] defaults to the execution order;
    [max_preload] caps the enumerated preload numbers (default 64);
    [cutoff] (default [infinity]) makes the induction raise {!Pruned} as
    soon as the schedule under construction provably cannot finish within
    it.

    A final capacity-repair pass replays the {e effective} (monotonized)
    residency windows and demotes preload options wherever the combined
    per-core footprint would overflow the SRAM — the per-step allocations
    only account for the horizon each step chose, so without repair a
    window opened by an earlier operator could keep more bytes live than
    a later step budgeted for.  Overflows that persist even with minimal
    options (an operator bigger than the chip) are tolerated, as before,
    and charged as contention downstream; [Elk_verify] reports them as
    [mem.overcommit] warnings.

    While {!Compilecache.enabled}, completed inductions record a
    suffix-resume memo keyed by (context fingerprint, graph name, order,
    [max_preload]): a later run whose trailing operators are unchanged
    (same per-node digests) restores their decisions and re-enters the
    induction at the last dirty operator, skipping the allocator sweeps
    of the clean suffix.  Resumed runs return schedules — and [Pruned]
    outcomes — identical to a cold induction. *)

val preload_numbers : Schedule.t -> int array
(** Per-operator preload numbers ([windows] shifted to operator ids):
    entry [i] is the number of preloads overlapping op [i]'s execution. *)
