(** Cross-compile incremental cache.

    Steady-state serving recompiles the same model family over and over
    as context buckets drift; almost all of that work is identical from
    one compile to the next.  This module is the shared machinery behind
    the caches that exploit it:

    - the {e whole-plan} cache in {!Compile.compile} (memory LRU plus an
      optional on-disk store), keyed by a digest of the input graph, the
      compile options, the pod, and the {!Elk_partition.Partition}
      context fingerprint — a warm hit returns the previously compiled
      plan, byte-identical by construction;
    - the {e candidate-order} memo in {!Reorder.candidate_orders};
    - the {e suffix-resume} memo in {!Scheduler.run}, which lets the
      backward induction skip re-deriving decisions for trailing
      operators whose shapes and dependencies are unchanged;
    - cross-context memo sharing inside {!Elk_partition.Partition}
      itself (enumeration and preload frontiers).

    Every key digests complete canonical encodings (length-prefixed
    strings, bit-exact floats), so hits cannot conflate distinct inputs.
    Disable everything with {!set_enabled}[ false], the CLI's
    [--no-compile-cache], or [ELK_COMPILE_CACHE=0] in the environment —
    compilation then behaves exactly as if this module did not exist. *)

val enabled : unit -> bool
(** Whether the compile caches are active (default: yes, unless
    [ELK_COMPILE_CACHE=0] was set at startup). *)

val set_enabled : bool -> unit
(** Toggle all compile caches, including
    {!Elk_partition.Partition.set_memo_sharing}.  Existing entries are
    kept (re-enabling resumes warm); call {!reset} for a cold start. *)

(** {1 Counters} *)

type stats = {
  plan_hits : int;  (** whole-plan cache hits (memory or disk). *)
  plan_misses : int;  (** whole-plan cache misses (full compiles). *)
  plan_evictions : int;  (** LRU evictions across in-memory stores. *)
  disk_hits : int;  (** subset of [plan_hits] served from disk. *)
  sched_resumes : int;  (** backward inductions resumed from a suffix memo. *)
  reorder_hits : int;  (** candidate-order memo hits. *)
}

val stats : unit -> stats
(** Process-global counters since start (or the last {!reset}).  Always
    recorded, independent of {!Elk_obs.Control}; the same events also
    increment [elk_compile_cache_*_total] metrics when observability is
    enabled. *)

val note_plan_hit : unit -> unit
val note_plan_miss : unit -> unit
val note_disk_hit : unit -> unit
val note_sched_resume : unit -> unit
val note_reorder_hit : unit -> unit

(** {1 In-memory LRU}

    The store type shared by the whole-plan, reorder, and scheduler
    memos.  All operations are serialized by a per-store mutex; [find]
    refreshes recency; [put] evicts the least-recently-used entry once
    at capacity (counted in [plan_evictions]). *)
module Lru : sig
  type ('k, 'v) t

  val create : cap:int -> unit -> ('k, 'v) t
  val find : ('k, 'v) t -> 'k -> 'v option
  val put : ('k, 'v) t -> 'k -> 'v -> unit
  val length : ('k, 'v) t -> int
  val clear : ('k, 'v) t -> unit

  val set_cap : ('k, 'v) t -> int -> unit
  (** Shrink/grow capacity, evicting immediately if over the new cap. *)
end

(** {1 Canonical digests} *)

val node_digest : Elk_model.Graph.node -> string
(** 16-byte digest of one node: id, full operator signature
    ({!Elk_partition.Partition.plan_signature}), operator name, layer,
    role, and dependency ids.  The unit of dirtiness tracking for the
    scheduler's suffix resume. *)

val graph_digest : Elk_model.Graph.t -> string
(** Hex digest of a whole graph (name plus every {!node_digest}). *)

val digest_strings : string list -> string
(** Hex digest of a length-prefixed concatenation — the generic key
    combinator ([digest_strings [ctx_fp; options_sig; ...]]). *)

(** {1 On-disk store}

    Active only when [ELK_COMPILE_CACHE_DIR] is set.  One file per
    whole-plan key; entries carry a format version and a key echo, and
    any mismatch, short read, or exception degrades to a miss.  Writes
    are atomic (temp file + rename).  Values round-trip through
    [Marshal]; callers must store only plain data and re-derive anything
    cheap (timelines, programs) after a hit. *)

val disk_dir : unit -> string option
val disk_find : key:string -> 'a option
val disk_store : key:string -> 'a -> unit

(** {1 Reset} *)

val on_reset : (unit -> unit) -> unit
(** Register a clear hook (module-init time in cache owners). *)

val reset : unit -> unit
(** Clear every in-memory store (registered hooks plus the shared
    partition memos) and zero {!stats} — a cold-cache state for tests
    and benchmarks.  Does not touch the on-disk store. *)
