(** Cost-aware on-chip memory allocation (paper §4.3).

    Given the currently executing operator and the set of operators whose
    preloads overlap its execution, jointly pick:
    - the executing operator's execute-state plan (memory vs time,
      Tradeoff 1 of Fig 11), and
    - each preloaded operator's preload-state option (preload space vs
      data-distribution time, Tradeoffs 2-3),

    so the combined per-core footprint fits the SRAM capacity.  The search
    starts from every operator's fastest (largest) choice and greedily
    steps the most cost-effective operator — the one whose next
    Pareto point frees the most bytes per added second
    ([delta = reduced_space / increased_time]) — down its frontier until
    the combination fits. *)

type result = {
  exec_plan : Elk_partition.Partition.plan;  (** chosen execute-state plan. *)
  window : (int * Elk_partition.Partition.preload_opt) list;
      (** chosen preload option per window operator id, in input order. *)
  exec_time : float;
      (** execution time of the chosen plan including the estimated
          interconnect-contention stretch from overlapped preloads. *)
  objective : float;
      (** total cost minimized: exec time + window distribution times +
          contention penalty. *)
  total_space : float;  (** per-core bytes of the chosen combination. *)
  contention : float;  (** interconnect contention penalty included. *)
}

(** {1 Address intervals}

    The allocator's capacity reasoning, made explicit: each buffer is a
    half-open per-core SRAM byte interval.  {!allocate_or_error} packs
    every candidate combination through this layer (the packed extent is
    the capacity check), and {!layout_of_schedule} assigns a concrete
    deterministic address map to a whole schedule — the address component
    the race analysis ({!Elk_verify}) joins with {!Residency} lifetimes
    and the happens-before DAG. *)

type allocation = {
  a_op : int;  (** operator id owning the buffer. *)
  a_kind : Residency.kind;  (** preload- or execute-state footprint. *)
  a_base : float;  (** first byte of the interval. *)
  a_size : float;  (** bytes; the interval is [a_base, a_base + a_size). *)
}

val overlaps : allocation -> allocation -> bool
(** Half-open address-interval intersection: touching intervals
    ([[0,4)] and [[4,8)]) do {e not} overlap, and zero-byte buffers
    overlap nothing. *)

val layout_of_schedule : Schedule.t -> allocation list
(** Deterministic first-fit address layout over the schedule's buffer
    lifetimes (liveness in program-instruction coordinates: a preload
    buffer from its [preload_async] to its consuming [execute], an
    execute buffer during its own [execute]).  Buffers whose lifetimes
    intersect never share addresses; zero-byte footprints are omitted.
    Result sorted by (operator, kind). *)

val allocate :
  Elk_partition.Partition.ctx ->
  capacity:float ->
  exec_op:Elk_model.Graph.node ->
  window:(Elk_model.Graph.node * Elk_partition.Partition.plan) list ->
  result option
(** [allocate ctx ~capacity ~exec_op ~window] returns [None] when even the
    smallest plans/options overflow [capacity] (the caller then tries a
    smaller preload number), or when the executing operator has no feasible
    plan at all.  The infeasibility diagnostic — capacity, demanded bytes,
    offending operator — is logged at debug level under the [alloc]
    source; use {!allocate_or_error} to receive it directly. *)

val allocate_or_error :
  Elk_partition.Partition.ctx ->
  capacity:float ->
  exec_op:Elk_model.Graph.node ->
  window:(Elk_model.Graph.node * Elk_partition.Partition.plan) list ->
  (result, string) Stdlib.result
(** Like {!allocate}, but an infeasible combination returns
    [Error msg] where [msg] names the offending operator, the SRAM
    capacity, and the minimal demanded bytes that overflowed it —
    the same search, diagnostics instead of a bare [None]. *)

val min_preload_space :
  Elk_partition.Partition.ctx -> Elk_model.Graph.node -> float
(** Smallest possible per-core preload space of an operator (its fastest
    plan's minimal-fraction option) — used by capacity feasibility checks
    in the preload-order search (§4.4). *)
