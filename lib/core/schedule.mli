(** End-to-end execution schedules: the common data structure produced by
    Elk's scheduler (and by the baseline planners) and consumed by the
    analytic timeline evaluator, the device-program generator and the
    event-driven simulator.

    A schedule fixes, for one chip:
    - the preload order [order] (a permutation of operator ids, §4.4);
    - how many preloads start during each operator's execution
      ([windows], the per-operator preload numbers of §4.2 — index 0 is
      the initial batch issued before the first execution);
    - per operator, the execute-state partition plan, the preload-state
      option and derived durations (§4.3). *)

type op_entry = {
  node_id : int;
  plan : Elk_partition.Partition.plan;  (** execute-state plan. *)
  popt : Elk_partition.Partition.preload_opt;  (** preload-state choice. *)
  preload_len : float;  (** estimated preload duration (HBM vs inject max). *)
  dist_time : float;  (** data-distribution phase duration. *)
}

type t = {
  graph : Elk_model.Graph.t;
  order : int array;  (** [order.(k)] = id of the k-th preloaded operator. *)
  windows : int array;
      (** length [N+1]; [windows.(0)] preloads are issued before the first
          execute, [windows.(i)] during the execution of the i-th operator
          (1-based); the entries sum to [N]. *)
  entries : op_entry array;  (** indexed by operator id. *)
  est_total : float;  (** scheduler's analytic estimate of the makespan. *)
}

val num_ops : t -> int

val validate : t -> (unit, string) result
(** Check structural invariants — [order] is a permutation, windows sum to
    the op count, every operator's preload position precedes its execution
    step, entries are indexed consistently — and numeric hygiene: every
    [preload_len], [dist_time], and [est_total] must be a finite,
    non-negative float (NaN, infinities, and negative durations are
    rejected before they can corrupt a timeline evaluation). *)

val preload_step : t -> int array
(** [preload_step s] maps each preload {e position} [k] to the execution
    step (0 = initial batch) whose window contains it. *)

val position_of : t -> int array
(** Map each operator id to its position in [order]. *)

val preload_time :
  Elk_partition.Partition.ctx -> Elk_tensor.Opspec.t ->
  Elk_partition.Partition.preload_opt -> float
(** Estimated duration of one operator's preload: the max of the HBM
    device roofline time and the interconnect injection time (controller
    ports, per-core inbound links, mesh entry strips) — the estimate of
    §4.2's preload scheduling. *)
