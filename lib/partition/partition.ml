open Elk_util
open Elk_tensor
open Elk_arch

type plan = {
  factors : int array;
  tile : int array;
  cores_used : int;
  exec_space : float;
  exec_time : float;
  compute_time : float;
  exchange_bytes_per_core : float;
  hbm_needed_per_core : float;
  max_share_group : int;
}

type preload_opt = {
  frac : float;
  preload_space : float;
  dist_bytes_per_core : float;
  dist_time : float;
  hbm_device_bytes : float;
  noc_inject_bytes : float;
  preload_len : float;
  hbm_floor : float;
}

let preload_overhead o = o.dist_time +. Float.max 0. (o.preload_len -. o.hbm_floor)

type memo_entry = { plans : plan list; frontier : plan Pareto.point list }

type ctx = {
  chip : Arch.chip;
  cost : Elk_cost.Costmodel.t;
  max_plans : int;
  fp : string;  (* digest of (chip, cost model, max_plans). *)
  lock : Mutex.t;  (* guards [memo] and [popt_memo]; see [memo_find]. *)
  memo : (string, memo_entry) Hashtbl.t;
  popt_memo : (string, preload_opt list) Hashtbl.t;
}

(* Cross-compile memo sharing: contexts built from behaviorally identical
   cost models (same chip, same training) index the same memo tables, so
   a serving loop that rebuilds a context per recompile — or a bench that
   builds a fresh env per run — still reuses every enumeration and
   preload frontier already computed.  Sharing is sound because memo
   values are pure functions of (key, fingerprint) and keys are canonical
   digests.  Disable with [ELK_COMPILE_CACHE=0] or {!set_memo_sharing}
   (fresh private tables per context, the pre-cache behavior). *)
let sharing =
  ref (match Sys.getenv_opt "ELK_COMPILE_CACHE" with Some "0" -> false | _ -> true)

let set_memo_sharing v = sharing := v
let memo_sharing () = !sharing

type shared_store = {
  s_lock : Mutex.t;
  s_memo : (string, memo_entry) Hashtbl.t;
  s_popt : (string, preload_opt list) Hashtbl.t;
  mutable s_stamp : int;
}

let registry_lock = Mutex.create ()
let registry : (string, shared_store) Hashtbl.t = Hashtbl.create 8
let registry_tick = ref 0
let registry_cap = 8

let reset_shared_memos () =
  Mutex.lock registry_lock;
  (* Clear tables in place, not just the registry: live contexts keep
     references to their shared store and must also go cold. *)
  Hashtbl.iter
    (fun _ s ->
      Mutex.lock s.s_lock;
      Hashtbl.reset s.s_memo;
      Hashtbl.reset s.s_popt;
      Mutex.unlock s.s_lock)
    registry;
  Hashtbl.reset registry;
  Mutex.unlock registry_lock

let shared_store_count () =
  Mutex.lock registry_lock;
  let n = Hashtbl.length registry in
  Mutex.unlock registry_lock;
  n

let make_ctx ?(max_plans_per_op = 512) cost =
  let chip = Elk_cost.Costmodel.chip cost in
  let fp =
    Digest.to_hex
      (Digest.string
         (Arch.fingerprint chip ^ "|"
         ^ Elk_cost.Costmodel.fingerprint cost
         ^ "|" ^ string_of_int max_plans_per_op))
  in
  let fresh () =
    { s_lock = Mutex.create (); s_memo = Hashtbl.create 64;
      s_popt = Hashtbl.create 256; s_stamp = 0 }
  in
  let store =
    if not (memo_sharing ()) then fresh ()
    else begin
      Mutex.lock registry_lock;
      incr registry_tick;
      let s =
        match Hashtbl.find_opt registry fp with
        | Some s -> s
        | None ->
            (* Keep the registry small: evict the least-recently-used
               fingerprint (an abandoned chip/cost configuration) once
               over capacity. *)
            if Hashtbl.length registry >= registry_cap then begin
              let victim =
                Hashtbl.fold
                  (fun k s acc ->
                    match acc with
                    | Some (_, st) when st <= s.s_stamp -> acc
                    | _ -> Some (k, s.s_stamp))
                  registry None
              in
              match victim with
              | Some (k, _) -> Hashtbl.remove registry k
              | None -> ()
            end;
            let s = fresh () in
            Hashtbl.add registry fp s;
            s
      in
      s.s_stamp <- !registry_tick;
      Mutex.unlock registry_lock;
      s
    end
  in
  {
    chip;
    cost;
    max_plans = max_plans_per_op;
    fp;
    lock = store.s_lock;
    memo = store.s_memo;
    popt_memo = store.s_popt;
  }

let fingerprint ctx = ctx.fp

let memo_sizes ctx =
  Mutex.lock ctx.lock;
  let sizes = (Hashtbl.length ctx.memo, Hashtbl.length ctx.popt_memo) in
  Mutex.unlock ctx.lock;
  sizes

(* Memo tables are shared across the scheduler domains of the parallel
   order search, so every access is serialized under [ctx.lock].  The
   compute itself runs {e outside} the lock: it is a pure function of the
   key, and [lookup]/[preload_options] are mutually recursive, so holding
   the (non-reentrant) mutex across it would self-deadlock.  If two
   domains miss the same key concurrently both compute it; the first
   insert wins and the duplicate — structurally identical — is dropped. *)
let memo_find ctx tbl key compute =
  Mutex.lock ctx.lock;
  match Hashtbl.find_opt tbl key with
  | Some v ->
      Mutex.unlock ctx.lock;
      v
  | None ->
      Mutex.unlock ctx.lock;
      let v = compute () in
      Mutex.lock ctx.lock;
      let v =
        match Hashtbl.find_opt tbl key with
        | Some winner -> winner
        | None ->
            Hashtbl.add tbl key v;
            v
      in
      Mutex.unlock ctx.lock;
      v

let ctx_chip ctx = ctx.chip
let ctx_cost ctx = ctx.cost

(* Collision-safe memo key: a digest over a length-prefixed canonical
   encoding of every field partitioning depends on.  Length prefixes make
   separator injection impossible (the old "|"/";"-joined concatenation
   could in principle conflate crafted shapes), and [flops_per_point] is
   included because it changes execution-time estimates even when the
   shape is identical. *)
let plan_signature (op : Opspec.t) =
  let b = Buffer.create 128 in
  let str s =
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_char b ':';
    Buffer.add_string b s
  in
  let ints l =
    Buffer.add_string b (string_of_int (List.length l));
    Buffer.add_char b '#';
    List.iter
      (fun v ->
        Buffer.add_string b (string_of_int v);
        Buffer.add_char b ',')
      l
  in
  let tensor (t : Opspec.tensor) =
    ints t.Opspec.dims;
    Buffer.add_char b
      (match t.Opspec.source with
      | Opspec.Weights -> 'w'
      | Opspec.Kv_cache -> 'k'
      | Opspec.Activation -> 'a')
  in
  str op.Opspec.kind;
  ints (Array.to_list op.Opspec.iter);
  Buffer.add_string b (string_of_int (List.length op.Opspec.inputs));
  Buffer.add_char b '!';
  List.iter tensor op.Opspec.inputs;
  tensor op.Opspec.output;
  Buffer.add_string b (Printf.sprintf "%h" op.Opspec.flops_per_point);
  str (Dtype.to_string op.Opspec.dtype);
  Digest.to_hex (Digest.string (Buffer.contents b))

let ceil_div a b = (a + b - 1) / b

(* Candidate part counts for one dimension: its divisors plus powers of
   two, bounded by the extent and the core count. *)
let dim_candidates ~extent ~cores =
  let bound = min extent cores in
  let acc = ref [] in
  let add v = if v >= 1 && v <= bound && not (List.mem v !acc) then acc := v :: !acc in
  add 1;
  let d = ref 1 in
  while !d * !d <= extent do
    if extent mod !d = 0 then begin
      add !d;
      add (extent / !d)
    end;
    incr d
  done;
  let p = ref 1 in
  while !p <= bound do
    add !p;
    p := !p * 2
  done;
  List.sort compare !acc

(* Enumerate factor vectors whose product stays within the core budget,
   optionally restricted to [max_split_dims] partitioned dimensions. *)
let factor_vectors ~iter ~cores ~max_split_dims ~cap =
  let ndims = Array.length iter in
  let results = ref [] and count = ref 0 in
  let current = Array.make ndims 1 in
  let rec go dim prod split_dims =
    if !count >= cap then ()
    else if dim = ndims then begin
      results := Array.copy current :: !results;
      incr count
    end
    else
      List.iter
        (fun f ->
          if prod * f <= cores && (f = 1 || split_dims < max_split_dims) then begin
            current.(dim) <- f;
            go (dim + 1) (prod * f) (if f = 1 then split_dims else split_dims + 1);
            current.(dim) <- 1
          end)
        (dim_candidates ~extent:iter.(dim) ~cores)
  in
  go 0 1 0;
  !results

let elem_size op = float_of_int (Dtype.size_bytes op.Opspec.dtype)

let tensor_needed op tile (t : Opspec.tensor) =
  List.fold_left (fun a d -> a *. float_of_int tile.(d)) 1. t.Opspec.dims *. elem_size op

let share_group factors (t : Opspec.tensor) =
  let g = ref 1 in
  Array.iteri (fun d f -> if not (List.mem d t.Opspec.dims) then g := !g * f) factors;
  !g

let comm_hops chip =
  match chip.Arch.topology with
  | Arch.All_to_all -> 2
  | Arch.Clustered _ -> 3
  | Arch.Mesh2d _ -> 1

(* Rate at which HBM controllers can inject preload traffic into the
   interconnect: the controllers' aggregate bandwidth, or on a mesh the
   boundary entry strips (two rows of [cols] links). *)
let inject_rate chip =
  let link_bw = chip.Arch.intercore_link.Arch.bandwidth in
  match chip.Arch.topology with
  | Arch.All_to_all -> chip.Arch.hbm_bandwidth
  | Arch.Clustered { l2_bandwidth; _ } -> Float.min chip.Arch.hbm_bandwidth l2_bandwidth
  | Arch.Mesh2d { cols; _ } ->
      (* Deliveries fan out of ~2 cols entry cores, each spreading over
         roughly two useful mesh directions. *)
      Float.min chip.Arch.hbm_bandwidth (4. *. float_of_int cols *. link_bw)

let plan_of_factors ctx (op : Opspec.t) factors =
  let tile = Array.mapi (fun i f -> ceil_div op.Opspec.iter.(i) f) factors in
  let tiles = Array.fold_left ( * ) 1 factors in
  let cores = ctx.chip.Arch.cores in
  (* Operators whose tiles outnumber the cores execute in [rounds]
     sequential rounds, one tile per core per round — how real compilers
     handle operators too large for one spatial pass.  Per-round working
     sets bound the execution space; HBM-resident inputs for all rounds
     must be preloaded, so they scale with [rounds]. *)
  let rounds = ceil_div tiles cores in
  let cores_used = min tiles cores in
  let froll = float_of_int rounds in
  let out_slice = tensor_needed op tile op.Opspec.output in
  let reduce_group = share_group factors op.Opspec.output in
  let input_needs =
    List.map (fun t -> (t, tensor_needed op tile t, share_group factors t)) op.Opspec.inputs
  in
  let act_slice =
    List.fold_left
      (fun a ((t : Opspec.tensor), need, _) ->
        match t.Opspec.source with Opspec.Activation -> a +. need | _ -> a)
      0. input_needs
  in
  let hbm_needed_round, max_g =
    List.fold_left
      (fun (acc, mg) ((t : Opspec.tensor), need, g) ->
        match t.Opspec.source with
        | Opspec.Weights | Opspec.Kv_cache -> (acc +. need, max mg g)
        | Opspec.Activation -> (acc, mg))
      (0., 1) input_needs
  in
  (* Execution space per core and round: the activation working set, the
     preloaded HBM slices of every round, and the output of the current
     round (plus a partial-result buffer when a reduction dimension is
     split; completed round outputs stream onward). *)
  let exec_space =
    act_slice
    +. (hbm_needed_round *. froll)
    +. (out_slice *. if reduce_group > 1 then 2. else 1.)
  in
  let act_fetch =
    List.fold_left
      (fun a ((t : Opspec.tensor), need, g) ->
        match t.Opspec.source with
        | Opspec.Activation when g > 1 -> a +. (need *. float_of_int (g - 1) /. float_of_int g)
        | _ -> a)
      0. input_needs
  in
  let red_bytes =
    if reduce_group > 1 then
      out_slice *. float_of_int (reduce_group - 1) /. float_of_int reduce_group
    else 0.
  in
  let exchange = (act_fetch +. red_bytes) *. froll in
  let hops = comm_hops ctx.chip in
  let t_comm =
    if exchange > 0. then Elk_cost.Costmodel.predict_transfer ctx.cost ~hops ~bytes:exchange
    else 0.
  in
  let t_compute =
    froll
    *. Elk_cost.Costmodel.predict_exec ctx.cost ~kind:op.Opspec.kind ~iter:tile
  in
  {
    factors;
    tile;
    cores_used;
    exec_space;
    exec_time = t_compute +. t_comm;
    compute_time = t_compute;
    exchange_bytes_per_core = exchange;
    hbm_needed_per_core = hbm_needed_round *. froll;
    max_share_group = max_g;
  }

let compute_plans ctx (op : Opspec.t) =
  let cores = ctx.chip.Arch.cores in
  let max_split_dims =
    match ctx.chip.Arch.topology with
    | Arch.All_to_all | Arch.Clustered _ -> Array.length op.Opspec.iter
    | Arch.Mesh2d _ -> 2
  in
  let vectors =
    (* Allow up to 16 sequential rounds so operators bigger than one
       spatial pass still get plans. *)
    factor_vectors ~iter:op.Opspec.iter ~cores:(cores * 16) ~max_split_dims
      ~cap:(ctx.max_plans * 64)
  in
  let points =
    Array.fold_left (fun a e -> if a > cores then a else a * e) 1 op.Opspec.iter
  in
  let min_cores = min (max 1 (cores / 4)) points in
  let sram = Arch.usable_sram_per_core ctx.chip in
  let plans =
    List.filter_map
      (fun factors ->
        let cores_used = Array.fold_left ( * ) 1 factors in
        if cores_used < min_cores then None
        else
          let p = plan_of_factors ctx op factors in
          if p.exec_space > sram then None else Some p)
      vectors
  in
  (* Deduplicate by tile shape (distinct factorizations can yield the same
     ceil-divided tile) and keep the fastest representative. *)
  let table = Hashtbl.create 64 in
  List.iter
    (fun p ->
      let key = Array.to_list p.tile in
      match Hashtbl.find_opt table key with
      | Some q when q.exec_time <= p.exec_time -> ()
      | _ -> Hashtbl.replace table key p)
    plans;
  let deduped = Hashtbl.fold (fun _ p acc -> p :: acc) table [] in
  let sorted = List.sort (fun a b -> compare a.exec_time b.exec_time) deduped in
  let truncated = List.filteri (fun i _ -> i < ctx.max_plans) sorted in
  truncated

let compute_preload_options ctx (op : Opspec.t) plan =
  let hbm_inputs =
    List.filter
      (fun (t : Opspec.tensor) ->
        match t.Opspec.source with Opspec.Weights | Opspec.Kv_cache -> true | _ -> false)
      op.Opspec.inputs
  in
  if hbm_inputs = [] then
    [
      {
        frac = 1.;
        preload_space = 0.;
        dist_bytes_per_core = 0.;
        dist_time = 0.;
        hbm_device_bytes = 0.;
        noc_inject_bytes = 0.;
        preload_len = 0.;
        hbm_floor = 0.;
      };
    ]
  else begin
    let rounds =
      ceil_div (Array.fold_left ( * ) 1 plan.factors) ctx.chip.Arch.cores
    in
    let needs =
      (* All rounds' HBM-resident slices must be delivered to the core. *)
      List.map
        (fun t ->
          ( tensor_needed op plan.tile t *. float_of_int rounds,
            share_group plan.factors t ))
        hbm_inputs
    in
    let device_bytes = List.fold_left (fun a (t : Opspec.tensor) -> a +. Opspec.tensor_bytes op t) 0. hbm_inputs in
    let max_g = List.fold_left (fun a (_, g) -> max a g) 1 needs in
    let rec fracs acc f =
      if f *. float_of_int max_g <= 1.000001 then (1. /. float_of_int max_g) :: acc
      else fracs (f :: acc) (f /. 2.)
    in
    let candidates = List.sort_uniq compare (fracs [] 1.) in
    let hops = comm_hops ctx.chip in
    let hbm_floor = Elk_cost.Costmodel.hbm_time ctx.cost ~bytes:device_bytes in
    let link_bw = ctx.chip.Arch.intercore_link.Arch.bandwidth in
    let opts =
      List.map
        (fun frac ->
          let preload_space, dist_bytes, inject =
            List.fold_left
              (fun (ps, db, inj) (need, g) ->
                let f = Float.max frac (1. /. float_of_int g) in
                ( ps +. (need *. f),
                  db +. (need *. (1. -. f)),
                  inj +. (need *. f *. float_of_int plan.cores_used) ))
              (0., 0., 0.) needs
          in
          let dist_time =
            if dist_bytes > 0. then
              Elk_cost.Costmodel.predict_transfer ctx.cost ~hops ~bytes:dist_bytes
            else 0.
          in
          let preload_len =
            Float.max hbm_floor
              (Float.max (inject /. inject_rate ctx.chip) (preload_space /. link_bw))
          in
          {
            frac;
            preload_space;
            dist_bytes_per_core = dist_bytes;
            dist_time;
            hbm_device_bytes = device_bytes;
            noc_inject_bytes = inject;
            preload_len;
            hbm_floor;
          })
        candidates
    in
    let frontier =
      Pareto.frontier
        (List.map
           (fun o -> { Pareto.x = o.preload_space; y = preload_overhead o; payload = o })
           opts)
    in
    match frontier with
    | [] -> [ List.hd opts ]
    | pts -> List.map (fun p -> p.Pareto.payload) pts
  end


let rec lookup ctx op =
  let key = plan_signature op in
  memo_find ctx ctx.memo key (fun () ->
      let plans = compute_plans ctx op in
      let frontier =
        Pareto.frontier
          (List.map
             (fun p ->
               let overhead =
                 List.fold_left
                   (fun a o -> Float.min a (preload_overhead o))
                   infinity
                   (preload_options ctx op p)
               in
               let overhead = if overhead = infinity then 0. else overhead in
               { Pareto.x = p.exec_space; y = p.exec_time +. overhead; payload = p })
             plans)
      in
      { plans; frontier })

and preload_options ctx op plan =
  let key =
    plan_signature op ^ "#"
    ^ String.concat "," (Array.to_list plan.factors |> List.map string_of_int)
  in
  memo_find ctx ctx.popt_memo key (fun () -> compute_preload_options ctx op plan)

let enumerate ctx op = (lookup ctx op).plans
let exec_frontier ctx op = (lookup ctx op).frontier

let fastest_plan ctx op =
  match Pareto.min_y (exec_frontier ctx op) with
  | Some p -> p.Pareto.payload
  | None ->
      invalid_arg
        (Printf.sprintf "Partition.fastest_plan: no plan fits on chip for %s" op.Opspec.name)

let fastest_plan_within ctx op ~space =
  match Pareto.best_y_under_x (exec_frontier ctx op) space with
  | Some p -> Some p.Pareto.payload
  | None -> None

let plan_with_factors ctx (op : Opspec.t) factors =
  let rank = Array.length op.Opspec.iter in
  if Array.length factors <> rank then
    Error (Printf.sprintf "%s: factor rank %d, expected %d" op.Opspec.name
             (Array.length factors) rank)
  else if Array.exists (fun f -> f < 1) factors then
    Error (op.Opspec.name ^ ": nonpositive factor")
  else if
    Array.exists2 (fun f e -> f > e) factors op.Opspec.iter
  then Error (op.Opspec.name ^ ": factor exceeds extent")
  else Ok (plan_of_factors ctx op factors)

let preload_option_near ctx op plan ~frac =
  match preload_options ctx op plan with
  | [] -> invalid_arg "Partition.preload_option_near: no options"
  | first :: rest ->
      List.fold_left
        (fun best o ->
          if Float.abs (o.frac -. frac) < Float.abs (best.frac -. frac) then o else best)
        first rest

let pp_plan fmt p =
  Format.fprintf fmt "<%s> tile=%s cores=%d space=%a time=%a"
    (String.concat "," (Array.to_list p.factors |> List.map string_of_int))
    (String.concat "x" (Array.to_list p.tile |> List.map string_of_int))
    p.cores_used Units.pp_bytes p.exec_space Units.pp_time p.exec_time
