(** Operator partition plans and their execute/preload-state tradeoffs
    (paper §4.3 and Figure 3).

    A {e partition plan} slices an operator's iteration space into tiles,
    one per core, written as the paper writes them — a vector of per-dim
    part counts (["<90,9>"]).  From a plan and the operator's tensor
    access structure this module derives everything Elk's allocator and
    scheduler consume:

    - {b execution space}: per-core SRAM bytes during execution (input
      slices, output slice, reduction buffer);
    - {b execution time}: per-core tile compute time from the trained cost
      model, plus inter-core exchange serialized BSP-style (activation
      sharing and partial-result reduction);
    - {b preload-state options}: for each HBM-resident input shared by a
      group of [g] cores, the fraction [f ∈ {1, 1/2, ..., 1/g}] broadcast
      at preload time; the rest moves in the data-distribution phase when
      the operator is promoted to execute state (Fig 3 (b)/(c));
    - {b HBM volumes}: bytes read from HBM devices (once per element) vs
      bytes injected into the interconnect by controllers (scaled by
      broadcast replication).

    Plan enumeration is memoized per operator signature, so the identical
    layers of an LLM cost one enumeration. *)

type ctx
(** Enumeration context: chip, trained cost model, memo tables. *)

val make_ctx : ?max_plans_per_op:int -> Elk_cost.Costmodel.t -> ctx
(** Build a context from a trained cost model (the chip is taken from the
    model).  [max_plans_per_op] caps enumeration (default 512). *)

val ctx_chip : ctx -> Elk_arch.Arch.chip
val ctx_cost : ctx -> Elk_cost.Costmodel.t

val fingerprint : ctx -> string
(** Digest of (chip, cost-model behavior, [max_plans_per_op]) — the
    context component of every cross-compile cache key.  Two contexts
    with equal fingerprints produce identical enumeration, frontier and
    preload-option results for every operator. *)

val set_memo_sharing : bool -> unit
(** Enable/disable cross-context memo sharing (default on unless
    [ELK_COMPILE_CACHE=0]).  When on, {!make_ctx} calls with equal
    fingerprints return contexts backed by the same memo tables, so
    enumeration work persists across compiles.  When off, every context
    gets fresh private tables. *)

val memo_sharing : unit -> bool

val reset_shared_memos : unit -> unit
(** Drop every shared memo table (tests and cold-start benchmarks). *)

val shared_store_count : unit -> int
(** Number of distinct fingerprints currently holding shared tables. *)

val memo_sizes : ctx -> int * int
(** [(enumeration entries, preload-option entries)] currently memoized in
    this context's tables — observability for cache-hit accounting. *)

type plan = {
  factors : int array;  (** parts per iteration dimension. *)
  tile : int array;  (** per-core tile extents, ceil-divided. *)
  cores_used : int;  (** product of [factors]. *)
  exec_space : float;  (** per-core execution-space bytes. *)
  exec_time : float;  (** on-chip execution time of the whole operator. *)
  compute_time : float;  (** compute component of [exec_time]. *)
  exchange_bytes_per_core : float;
      (** per-core inter-core traffic during execution (activation sharing
          + reduction), excluding weight distribution. *)
  hbm_needed_per_core : float;
      (** execute-state resident HBM bytes per core (full broadcast). *)
  max_share_group : int;
      (** largest sharing group among HBM-resident inputs; 1 when nothing
          is shared. *)
}

val enumerate : ctx -> Elk_tensor.Opspec.t -> plan list
(** All candidate plans for an operator on this chip: per-dim part counts
    drawn from divisors and powers of two, product within the core count,
    mesh chips restricted to at most 2 partitioned dimensions (§5).
    Result is sorted by [exec_time] and deduplicated by tile shape. *)

val exec_frontier : ctx -> Elk_tensor.Opspec.t -> plan Elk_util.Pareto.point list
(** Pareto frontier over {!enumerate} — Tradeoff 1 of Fig 11 — with
    [x = exec_space] and [y = exec_time] plus the plan's best achievable
    {!preload_overhead}, so that a plan that executes marginally faster
    but forces an expensive preload state (e.g. a huge replicated weight
    slice per core) does not dominate.  Memoized. *)

val fastest_plan : ctx -> Elk_tensor.Opspec.t -> plan
(** The frontier plan minimizing execution time plus best preload
    overhead.  Raises [Invalid_argument] if no plan fits (an operator too
    large for the chip). *)

val fastest_plan_within : ctx -> Elk_tensor.Opspec.t -> space:float -> plan option
(** Fastest plan whose execution space fits the budget — the primitive the
    [Static] baseline uses (§6.1). *)

type preload_opt = {
  frac : float;  (** broadcast fraction in (0, 1]. *)
  preload_space : float;  (** per-core preload-space bytes. *)
  dist_bytes_per_core : float;  (** data-distribution fetch per core. *)
  dist_time : float;  (** data-distribution phase time. *)
  hbm_device_bytes : float;  (** bytes read from HBM devices. *)
  noc_inject_bytes : float;  (** bytes injected by controllers on preload. *)
  preload_len : float;
      (** preload duration: max of the HBM device roofline time, the
          controller injection time and the per-core inbound link time
          (§4.2's preload-time estimate). *)
  hbm_floor : float;
      (** HBM device roofline time alone — the irreducible part of
          [preload_len]; the excess is interconnect-imposed. *)
}

val preload_overhead : preload_opt -> float
(** [dist_time + max 0 (preload_len - hbm_floor)]: the total time cost a
    preload-state option adds beyond the unavoidable HBM transfer — the
    quantity the allocator trades against preload space. *)

val preload_options : ctx -> Elk_tensor.Opspec.t -> plan -> preload_opt list
(** Pareto-optimal preload-state options of an execute-state plan
    (Tradeoffs 2-3 of Fig 11), from minimal residency ([frac = 1/g]) to
    full broadcast ([frac = 1]), sorted by increasing [preload_space].
    Operators with no HBM-resident inputs get a single zero option. *)

val plan_with_factors :
  ctx -> Elk_tensor.Opspec.t -> int array -> (plan, string) result
(** Rebuild the plan a given factor vector denotes (used when loading a
    serialized schedule).  Errors on malformed vectors (wrong rank,
    nonpositive or out-of-range factors). *)

val preload_option_near :
  ctx -> Elk_tensor.Opspec.t -> plan -> frac:float -> preload_opt
(** The preload-state option whose broadcast fraction is closest to
    [frac] — the inverse of serializing an option by its fraction. *)

val inject_rate : Elk_arch.Arch.chip -> float
(** Rate at which the HBM controllers can inject preload traffic into the
    interconnect: the controllers' aggregate bandwidth on all-to-all, the
    L2 fabric on clustered chips, the boundary entry strips on a mesh —
    the denominator of the injection component of {!preload_opt}'s
    [preload_len], exposed for bandwidth-feasibility lints. *)

val plan_signature : Elk_tensor.Opspec.t -> string
(** Memoization key: a collision-safe digest of kind, iteration extents,
    input sharing structure, per-point FLOPs and dtype — every field
    partitioning depends on, length-prefixed so distinct operators cannot
    collide by separator injection.  Operators from identical layers
    share a signature. *)

val pp_plan : Format.formatter -> plan -> unit
