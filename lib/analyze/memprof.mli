(** Memory observability: SRAM residency timelines and the
    buffer-lifetime ledger behind [elk mem].

    Two synchronized views of a plan's SRAM behaviour.  The {e dynamic}
    view replays the simulator's {!Elk_sim.Memtrace} record into
    {!Elk_obs.Timeseries} gauges — per-core occupancy over simulated
    time, the chip aggregate, high-water marks against
    {!Elk_arch.Arch.usable_sram_per_core} — and integrates {e wasted
    residency}: byte-seconds a preload buffer sits delivered but unused,
    and byte-seconds an execute footprint lingers through the
    exchange/reduction tail after its last tile-compute use.  The
    {e static} view is the {!Elk.Residency} ledger (the verifier's
    liveness replay), derived from the schedule alone.  {!check} gates
    the two against each other and against capacity. *)

type waste_row = {
  w_name : string;  (** operator name rows are aggregated under. *)
  w_ops : int;
  w_bytes : float;  (** largest per-core preload footprint in the group. *)
  w_resident_s : float;  (** summed delivery-to-first-use residency. *)
  w_pre : float;  (** byte-seconds of pre-use waste. *)
  w_post : float;  (** byte-seconds of post-use (exchange-tail) waste. *)
}

type report = {
  model : string;
  total : float;  (** simulated makespan. *)
  capacity : float;  (** usable SRAM bytes per core. *)
  cores : int;
  dyn_high_water : float;  (** peak per-core bytes, dynamic. *)
  static_high_water : float;  (** peak per-core bytes, static ledger. *)
  static_high_water_step : int;
  chip_peak : float;  (** peak aggregate bytes across all cores. *)
  pre_waste : float;
  post_waste : float;
  waste_rows : waste_row list;  (** by descending total waste. *)
  ledger : Elk.Residency.t;
  mem : Elk_sim.Memtrace.t;
  series : Elk_obs.Timeseries.t;
}

val series_names : string list
(** The occupancy gauge names the report records, in emission order. *)

val analyze :
  ?window:float ->
  Elk_partition.Partition.ctx ->
  Elk.Schedule.t ->
  Elk_sim.Sim.result ->
  report
(** Build the report from a simulator run recorded with [~mem:true].
    [window] is the Timeseries window width (default: makespan / 48).
    Raises [Invalid_argument] if the run carries no memory record. *)

val overcommit_bytes : report -> float
(** Bytes by which the dynamic per-core peak exceeds usable SRAM, 0 when
    it fits.  Mirrors the verifier's [mem.overcommit] rule: exceeding
    capacity is a warning (some plans deliberately overcommit and charge
    the contention downstream), not a cross-view violation. *)

val check : report -> (unit, string) result
(** The invariants [elk mem] enforces on every run: the static ledger's
    high water bounds the dynamic one (verifier tolerance), the chip
    aggregate is consistent with the per-core peak, waste is
    non-negative, and the series tile [[0, total]] without gaps.
    Capacity exceedance is a warning, not an error — see
    {!overcommit_bytes}. *)

val tables : ?top:int -> report -> Elk_util.Table.t list
(** Summary, top-[top] wasted-residency rows, and the HBM traffic
    ledger (default [top] 10). *)

val print : ?top:int -> report -> unit
(** {!tables} plus an occupancy sparkline, to stdout. *)

val to_json : ?top:int -> report -> string
(** JSON snapshot.  The top-level [total] / [dominant] /
    [resource_seconds] / [segments] fields follow the
    {!Elk_analyze.Tracediff} shape (waste segments in capacity-seconds)
    so [elk trace diff] can gate [BENCH_mem.json]; the rest is the full
    memory payload (high waters, buffers, HBM ledger, series).  Floats
    are rounded to 6 significant digits for snapshot stability. *)

val mem_pid : int
(** Perfetto process id of the memory counter tracks (8). *)

val chrome_counter_events : report -> string list
(** Occupancy gauges plus a flat capacity line as Perfetto counter
    tracks under {!mem_pid}, for embedding beside the device timeline. *)
