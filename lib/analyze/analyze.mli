(** Bottleneck analysis over a simulation's resource attribution.

    Consumes a {!Elk_sim.Sim.result} (whose [perf] field carries the
    {!Elk_sim.Perfcore} data the event loop collected) and answers the
    question the paper's whole evaluation is built around: {e which core,
    which operator, and which contended resource bounds this plan} — the
    Fig 18(a) breakdown made actionable.  Produces:

    - top-k critical cores by busy time, with their five-bucket split;
    - a dominant-resource classification per operator (HBM-bound /
      interconnect-bound / compute-bound / port-bound);
    - load imbalance (max/mean core busy time);
    - what-if headroom: the latency with each resource made infinite,
      computed analytically by deleting that resource's critical-path
      attribution;
    - HBM / NoC bandwidth-over-time summaries (peak and mean rates).

    Reports export as text tables ({!tables}), JSON ({!to_json}), and
    per-core counter tracks mergeable into the Chrome/Perfetto timeline
    ({!chrome_counter_events}). *)

type resource = Hbm | Interconnect | Compute | Port

val resource_name : resource -> string
(** ["hbm"], ["interconnect"], ["compute"], ["port"]. *)

val all_resources : resource list

val classify : Elk_sim.Perfcore.op_attrib -> resource
(** Dominant resource of one operator: the largest attribution bucket.
    An operator with no attributed time at all is compute-bound (it ran
    for free; nothing else bound it). *)

type op_class = {
  op_id : int;
  op_name : string;
  dominant : resource;
  span : float;  (** the operator's critical-path seconds. *)
  shares : (resource * float) list;  (** absolute seconds per resource. *)
}

type core_row = { core : int; buckets : Elk_sim.Perfcore.buckets }

type report = {
  total : float;  (** simulated makespan. *)
  imbalance : float;  (** max/mean core busy time. *)
  top_cores : core_row list;  (** top-k cores by busy time, descending. *)
  resource_totals : (resource * float) list;
      (** critical-path seconds per resource, summed over operators —
          the four entries sum to [total]. *)
  headroom : (resource * float) list;
      (** estimated latency with each resource made infinite. *)
  mix : (resource * int) list;  (** operator count per dominant resource. *)
  ops : op_class array;  (** every operator, id order. *)
  hbm_peak : float;  (** peak binned HBM bandwidth, B/s. *)
  hbm_mean : float;
  noc_peak : float;  (** peak binned interconnect bandwidth, B/s. *)
  noc_mean : float;
}

val analyze : ?top:int -> Elk_model.Graph.t -> Elk_sim.Sim.result -> report
(** Build a report; [top] (default 8) bounds [top_cores].  Every field is
    finite even on degenerate inputs (single-operator models, zero-length
    buckets): divisions are guarded, so no [nan] reaches {!to_json}. *)

val slack_headroom :
  report -> Elk_sim.Critpath.summary -> (resource * float * float) list
(** [(res, attribution headroom, slack-aware headroom)] per resource.
    The attribution estimate deletes all of [res]'s attributed seconds;
    the slack-aware estimate deletes only the seconds the causal
    critical path spends on [res] — zero-slack time, the only time whose
    removal is guaranteed to move the makespan.  For compute and port
    the chain seconds are a subset of the attributed seconds, so the
    slack-aware estimate is the more conservative of the two. *)

val headroom_check :
  report -> Elk_sim.Critpath.summary -> (unit, string) result
(** Cross-check the what-if headroom against the causal critical path of
    the same run: totals agree to 1e-6, chain compute/port seconds never
    exceed their attributed totals (both layers share the Perfcore
    classification convention), and every headroom estimate is finite
    and within [0, total]. *)

val tables : ?top_ops:int -> report -> Elk_util.Table.t list
(** Render as text tables: bottleneck summary (per-resource time, share,
    what-if headroom), top cores with their bucket split, operator mix,
    and the [top_ops] (default 10) largest operators with their dominant
    resource. *)

val print : ?top_ops:int -> report -> unit
(** {!tables} to stdout. *)

val to_json : report -> string
(** The whole report as one JSON document ({!Elk_obs.Jsonx} escaping). *)

val chrome_counter_events :
  ?bins:int -> ?top:int -> Elk_sim.Sim.result -> string list
(** Perfetto counter tracks from the run's time series: HBM bandwidth
    (GB/s), interconnect bandwidth (GB/s), and per-core busy fraction
    for the [top] (default 8) busiest cores, sampled at [bins] (default
    60) points.  Merge with {!Elk_sim.Trace.chrome_events} and
    {!Elk_obs.Span.chrome_events} into one trace file. *)
