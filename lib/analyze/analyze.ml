module Pc = Elk_sim.Perfcore

type resource = Hbm | Interconnect | Compute | Port

let resource_name = function
  | Hbm -> "hbm"
  | Interconnect -> "interconnect"
  | Compute -> "compute"
  | Port -> "port"

let all_resources = [ Hbm; Interconnect; Compute; Port ]

let attrib_of (a : Pc.op_attrib) = function
  | Hbm -> a.Pc.a_hbm
  | Interconnect -> a.Pc.a_interconnect
  | Compute -> a.Pc.a_compute
  | Port -> a.Pc.a_port

let classify (a : Pc.op_attrib) =
  (* Compute first so an operator with no attributed time (or an exact
     tie with compute) reads as compute-bound. *)
  let best, _ =
    List.fold_left
      (fun (br, bv) r ->
        let v = attrib_of a r in
        if v > bv then (r, v) else (br, bv))
      (Compute, attrib_of a Compute)
      [ Hbm; Interconnect; Port ]
  in
  best

type op_class = {
  op_id : int;
  op_name : string;
  dominant : resource;
  span : float;
  shares : (resource * float) list;
}

type core_row = { core : int; buckets : Pc.buckets }

type report = {
  total : float;
  imbalance : float;
  top_cores : core_row list;
  resource_totals : (resource * float) list;
  headroom : (resource * float) list;
  mix : (resource * int) list;
  ops : op_class array;
  hbm_peak : float;
  hbm_mean : float;
  noc_peak : float;
  noc_mean : float;
}

let series_bins = 60

let analyze ?(top = 8) graph (r : Elk_sim.Sim.result) =
  let perf = r.Elk_sim.Sim.perf in
  let ops =
    Array.mapi
      (fun i a ->
        {
          op_id = i;
          op_name = (Elk_model.Graph.get graph i).Elk_model.Graph.op.Elk_tensor.Opspec.name;
          dominant = classify a;
          span = Pc.attrib_sum a;
          shares = List.map (fun res -> (res, attrib_of a res)) all_resources;
        })
      perf.Pc.per_op
  in
  let resource_totals =
    List.map
      (fun res ->
        ( res,
          Array.fold_left (fun acc a -> acc +. attrib_of a res) 0. perf.Pc.per_op ))
      all_resources
  in
  let headroom =
    List.map (fun (res, t) -> (res, Float.max 0. (r.Elk_sim.Sim.total -. t))) resource_totals
  in
  let mix =
    List.map
      (fun res ->
        (res, Array.fold_left (fun n o -> if o.dominant = res then n + 1 else n) 0 ops))
      all_resources
  in
  let rows =
    Array.to_list (Array.mapi (fun core buckets -> { core; buckets }) perf.Pc.per_core)
  in
  let top_cores =
    List.stable_sort
      (fun a b -> compare (Pc.busy b.buckets) (Pc.busy a.buckets))
      rows
    |> List.filteri (fun i _ -> i < top)
  in
  {
    total = r.Elk_sim.Sim.total;
    imbalance = Pc.imbalance perf;
    top_cores;
    resource_totals;
    headroom;
    mix;
    ops;
    hbm_peak = Elk_util.Series.peak_rate perf.Pc.hbm_series ~n:series_bins;
    hbm_mean = Elk_util.Series.mean_rate perf.Pc.hbm_series;
    noc_peak = Elk_util.Series.peak_rate perf.Pc.noc_series ~n:series_bins;
    noc_mean = Elk_util.Series.mean_rate perf.Pc.noc_series;
  }

(* ---- slack-aware what-if cross-check ------------------------------- *)

module Cp = Elk_sim.Critpath

let critpath_res = function
  | Hbm -> Cp.Hbm
  | Interconnect -> Cp.Interconnect
  | Compute -> Cp.Compute
  | Port -> Cp.Port

let chain_seconds (s : Cp.summary) res =
  try List.assoc (critpath_res res) s.Cp.resource_seconds with Not_found -> 0.

let slack_headroom rep (s : Cp.summary) =
  List.map
    (fun (res, h) ->
      let saving = Float.min rep.total (Float.max 0. (chain_seconds s res)) in
      (res, h, Float.max 0. (rep.total -. saving)))
    rep.headroom

let headroom_check rep (s : Cp.summary) =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let tol = 1e-6 *. Float.max 1e-12 rep.total in
  let rel_err a b =
    let scale = Float.max (Float.abs a) (Float.abs b) in
    if scale <= 0. then 0. else Float.abs (a -. b) /. scale
  in
  if rel_err rep.total s.Cp.total > 1e-6 then
    err "attribution total %.9g and critical-path total %.9g differ" rep.total
      s.Cp.total
  else begin
    let attributed res = List.assoc res rep.resource_totals in
    (* Chain compute/port time is a subset of what attribution books for
       those resources (every critical compute segment is some operator's
       compute_len, which attribution also counts), so the attribution
       what-if can never sit above the slack-aware estimate there.  A
       violation means one layer's classification drifted from the shared
       Perfcore convention. *)
    let subset_violation =
      List.find_opt
        (fun res -> chain_seconds s res > attributed res +. tol)
        [ Compute; Port ]
    in
    match subset_violation with
    | Some res ->
        err "chain %s %.9g exceeds attributed %s %.9g" (resource_name res)
          (chain_seconds s res) (resource_name res) (attributed res)
    | None -> (
        let bad =
          List.find_opt
            (fun (_, attrib_h, slack_h) ->
              (not (Float.is_finite attrib_h))
              || (not (Float.is_finite slack_h))
              || attrib_h < 0. || slack_h < 0.
              || slack_h > rep.total +. tol)
            (slack_headroom rep s)
        in
        match bad with
        | Some (res, attrib_h, slack_h) ->
            err "%s headroom out of range (attribution %.9g, slack-aware %.9g)"
              (resource_name res) attrib_h slack_h
        | None -> Ok ())
  end

let us x = Printf.sprintf "%.1f" (x *. 1e6)
let pct_of x total = Printf.sprintf "%.1f%%" (100. *. x /. Float.max 1e-12 total)
let gbps x = Printf.sprintf "%.2f" (x /. 1e9)

let tables ?(top_ops = 10) rep =
  let summary =
    Elk_util.Table.create
      ~title:
        (Printf.sprintf
           "bottleneck summary: makespan %s us, load imbalance %.2fx (max/mean busy)"
           (us rep.total) rep.imbalance)
      ~columns:[ "resource"; "critical-path us"; "share"; "if infinite (us)"; "saved" ]
  in
  List.iter
    (fun res ->
      let t = List.assoc res rep.resource_totals in
      let h = List.assoc res rep.headroom in
      Elk_util.Table.add_row summary
        [
          resource_name res; us t; pct_of t rep.total; us h;
          pct_of (rep.total -. h) rep.total;
        ])
    all_resources;
  let bw =
    Elk_util.Table.create ~title:"bandwidth over time (binned)"
      ~columns:[ "series"; "mean GB/s"; "peak GB/s" ]
  in
  Elk_util.Table.add_row bw [ "HBM"; gbps rep.hbm_mean; gbps rep.hbm_peak ];
  Elk_util.Table.add_row bw [ "interconnect"; gbps rep.noc_mean; gbps rep.noc_peak ];
  let cores =
    Elk_util.Table.create
      ~title:(Printf.sprintf "top %d cores by busy time (us)" (List.length rep.top_cores))
      ~columns:[ "core"; "busy"; "compute"; "exchange"; "port"; "preload wait"; "idle"; "sum" ]
  in
  List.iter
    (fun { core; buckets = b } ->
      Elk_util.Table.add_row cores
        [
          string_of_int core; us (Pc.busy b); us b.Pc.compute; us b.Pc.exchange;
          us b.Pc.port; us b.Pc.preload_wait; us b.Pc.idle; us (Pc.bucket_sum b);
        ])
    rep.top_cores;
  let mix =
    Elk_util.Table.create ~title:"operator mix by dominant resource"
      ~columns:[ "dominant"; "ops"; "critical-path us"; "share" ]
  in
  List.iter
    (fun res ->
      let n = List.assoc res rep.mix in
      let t = List.assoc res rep.resource_totals in
      Elk_util.Table.add_row mix
        [ resource_name res; string_of_int n; us t; pct_of t rep.total ])
    all_resources;
  let hot =
    Elk_util.Table.create
      ~title:(Printf.sprintf "top %d operators by critical-path span" top_ops)
      ~columns:[ "op"; "name"; "dominant"; "span us"; "hbm"; "interconnect"; "compute"; "port" ]
  in
  let by_span =
    List.stable_sort (fun a b -> compare b.span a.span) (Array.to_list rep.ops)
    |> List.filteri (fun i _ -> i < top_ops)
  in
  List.iter
    (fun o ->
      let share res = pct_of (List.assoc res o.shares) (Float.max 1e-12 o.span) in
      Elk_util.Table.add_row hot
        [
          string_of_int o.op_id; o.op_name; resource_name o.dominant; us o.span;
          share Hbm; share Interconnect; share Compute; share Port;
        ])
    by_span;
  [ summary; bw; cores; mix; hot ]

let print ?top_ops rep = List.iter Elk_util.Table.print (tables ?top_ops rep)

let to_json rep =
  let open Elk_obs in
  let obj fields = "{" ^ String.concat "," fields ^ "}" in
  let arr items = "[" ^ String.concat "," items ^ "]" in
  let field k v = Jsonx.quote k ^ ":" ^ v in
  let res_obj f =
    obj (List.map (fun res -> field (resource_name res) (f res)) all_resources)
  in
  let buckets_fields (b : Pc.buckets) =
    [
      field "compute" (Jsonx.number b.Pc.compute);
      field "exchange" (Jsonx.number b.Pc.exchange);
      field "preload_wait" (Jsonx.number b.Pc.preload_wait);
      field "port" (Jsonx.number b.Pc.port);
      field "idle" (Jsonx.number b.Pc.idle);
      field "busy" (Jsonx.number (Pc.busy b));
    ]
  in
  obj
    [
      field "total" (Jsonx.number rep.total);
      field "imbalance" (Jsonx.number rep.imbalance);
      field "resource_seconds"
        (res_obj (fun res -> Jsonx.number (List.assoc res rep.resource_totals)));
      field "headroom_latency"
        (res_obj (fun res -> Jsonx.number (List.assoc res rep.headroom)));
      field "mix" (res_obj (fun res -> string_of_int (List.assoc res rep.mix)));
      field "top_cores"
        (arr
           (List.map
              (fun { core; buckets } ->
                obj (field "core" (string_of_int core) :: buckets_fields buckets))
              rep.top_cores));
      field "ops"
        (arr
           (Array.to_list rep.ops
           |> List.map (fun o ->
                  obj
                    ([
                       field "id" (string_of_int o.op_id);
                       field "name" (Jsonx.quote o.op_name);
                       field "dominant" (Jsonx.quote (resource_name o.dominant));
                       field "span" (Jsonx.number o.span);
                     ]
                    @ List.map
                        (fun (res, v) -> field (resource_name res) (Jsonx.number v))
                        o.shares))));
      field "bandwidth"
        (obj
           [
             field "hbm_mean" (Jsonx.number rep.hbm_mean);
             field "hbm_peak" (Jsonx.number rep.hbm_peak);
             field "noc_mean" (Jsonx.number rep.noc_mean);
             field "noc_peak" (Jsonx.number rep.noc_peak);
           ]);
    ]
  ^ "\n"

let chrome_counter_events ?(bins = series_bins) ?(top = 8) (r : Elk_sim.Sim.result) =
  let perf = r.Elk_sim.Sim.perf in
  let scale_rate s =
    (* GB/s reads better than B/s in the Perfetto counter axis. *)
    Array.to_list (Elk_util.Series.bins s ~n:bins)
    |> List.map (fun (t, rate) -> (t, rate /. 1e9))
  in
  let track name pts =
    List.map (fun (t, v) -> Elk_obs.Chrome.counter_event ~name ~ts:t ~value:v ()) pts
  in
  let busiest =
    Array.mapi (fun c b -> (c, Pc.busy b)) perf.Pc.per_core
    |> Array.to_list
    |> List.stable_sort (fun (_, a) (_, b) -> compare b a)
    |> List.filteri (fun i _ -> i < top)
  in
  track "HBM bandwidth (GB/s)" (scale_rate perf.Pc.hbm_series)
  @ track "NoC bandwidth (GB/s)" (scale_rate perf.Pc.noc_series)
  @ List.concat_map
      (fun (c, _) ->
        track
          (Printf.sprintf "core %d busy" c)
          (Array.to_list (Elk_util.Series.bins perf.Pc.core_busy.(c) ~n:bins)))
      busiest
