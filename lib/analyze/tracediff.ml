module J = Elk_obs.Jsonx

type entry = { key : string; v_old : float; v_new : float }

let delta e = e.v_new -. e.v_old

type t = {
  total_old : float;
  total_new : float;
  dominant_old : string;
  dominant_new : string;
  resources : entry list;
  segments : entry list;
}

(* ---- snapshot loading ------------------------------------------------ *)

let num ?(default = Float.nan) v k =
  match Option.bind (J.member k v) J.to_float with Some f -> f | None -> default

let str v k = Option.value ~default:"" (Option.bind (J.member k v) J.to_str)

(* A snapshot reduced to comparable keys.  Segments aggregate by
   (operator name, kind, resource): individual critical segments are not
   stable run to run (a path may enter an operator twice), but the time
   one operator's kind spends on one resource is. *)
type snapshot = {
  sn_total : float;
  sn_dominant : string;
  sn_resources : (string * float) list;
  sn_segments : (string * float) list;
}

let snapshot_of_value v =
  let total = num v "total" in
  if Float.is_nan total then Error "snapshot has no numeric \"total\" field"
  else
    let resources =
      match J.member "resource_seconds" v with
      | Some (J.Obj kvs) ->
          List.filter_map
            (fun (k, x) -> Option.map (fun f -> (k, f)) (J.to_float x))
            kvs
      | _ -> []
    in
    let tbl = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun seg ->
        let key =
          Printf.sprintf "%s/%s/%s" (str seg "name") (str seg "kind")
            (str seg "resource")
        in
        let d = num ~default:0. seg "dur" in
        match Hashtbl.find_opt tbl key with
        | Some cur -> Hashtbl.replace tbl key (cur +. d)
        | None ->
            Hashtbl.add tbl key d;
            order := key :: !order)
      (match J.member "segments" v with Some s -> J.to_list s | None -> []);
    let segments =
      List.rev_map (fun k -> (k, Hashtbl.find tbl k)) !order
    in
    Ok
      {
        sn_total = total;
        sn_dominant = str v "dominant";
        sn_resources = resources;
        sn_segments = segments;
      }

let snapshot_of_string s =
  match J.parse s with
  | Error m -> Error (Printf.sprintf "invalid JSON: %s" m)
  | Ok v -> snapshot_of_value v

(* Outer join of two key->seconds maps, old-snapshot key order first,
   new-only keys appended in their own order. *)
let join old_kvs new_kvs =
  let find k kvs = Option.value ~default:0. (List.assoc_opt k kvs) in
  let olds =
    List.map (fun (k, v) -> { key = k; v_old = v; v_new = find k new_kvs }) old_kvs
  in
  let news =
    List.filter_map
      (fun (k, v) ->
        if List.mem_assoc k old_kvs then None
        else Some { key = k; v_old = 0.; v_new = v })
      new_kvs
  in
  olds @ news

let diff ~old_json ~new_json =
  match (snapshot_of_string old_json, snapshot_of_string new_json) with
  | Error m, _ -> Error (Printf.sprintf "old snapshot: %s" m)
  | _, Error m -> Error (Printf.sprintf "new snapshot: %s" m)
  | Ok o, Ok n ->
      Ok
        {
          total_old = o.sn_total;
          total_new = n.sn_total;
          dominant_old = o.sn_dominant;
          dominant_new = n.sn_dominant;
          resources = join o.sn_resources n.sn_resources;
          segments = join o.sn_segments n.sn_segments;
        }

(* ---- gating ---------------------------------------------------------- *)

(* An entry regresses when it grows by more than [threshold] of the old
   makespan — an absolute yardstick, so many small segment regressions
   are individually forgiven but still caught by the total. *)
let scale d = Float.max (Float.abs d.total_old) 1e-12

let regressed_entries ~threshold d =
  let lim = threshold *. scale d in
  List.filter (fun e -> delta e > lim) d.resources
  @ List.filter (fun e -> delta e > lim) d.segments

let regressed ~threshold d =
  d.total_new -. d.total_old > threshold *. scale d
  || regressed_entries ~threshold d <> []

(* ---- rendering ------------------------------------------------------- *)

let us x = Printf.sprintf "%.1f" (x *. 1e6)

let pct d e =
  Printf.sprintf "%+.2f%%" (100. *. delta e /. scale d)

let sort_by_magnitude entries =
  List.stable_sort
    (fun a b -> compare (Float.abs (delta b), a.key) (Float.abs (delta a), b.key))
    entries

let tables ?(top = 12) d =
  let head =
    Elk_util.Table.create
      ~title:
        (Printf.sprintf "trace diff: makespan %s -> %s us (%+.2f%%), dominant %s -> %s"
           (us d.total_old) (us d.total_new)
           (100. *. (d.total_new -. d.total_old) /. scale d)
           d.dominant_old d.dominant_new)
      ~columns:[ "resource"; "old us"; "new us"; "delta us"; "of makespan" ]
  in
  List.iter
    (fun e ->
      Elk_util.Table.add_row head
        [ e.key; us e.v_old; us e.v_new; us (delta e); pct d e ])
    d.resources;
  let segs =
    Elk_util.Table.create
      ~title:(Printf.sprintf "top %d segment deltas (op/kind/resource)" top)
      ~columns:[ "segment"; "old us"; "new us"; "delta us"; "of makespan" ]
  in
  sort_by_magnitude d.segments
  |> List.filteri (fun i _ -> i < top)
  |> List.iter (fun e ->
         Elk_util.Table.add_row segs
           [ e.key; us e.v_old; us e.v_new; us (delta e); pct d e ]);
  [ head; segs ]

let print ?top d = List.iter Elk_util.Table.print (tables ?top d)

let to_json ~threshold d =
  let obj fields = "{" ^ String.concat "," fields ^ "}" in
  let arr items = "[" ^ String.concat "," items ^ "]" in
  let field k v = J.quote k ^ ":" ^ v in
  let entry e =
    obj
      [
        field "key" (J.quote e.key);
        field "old" (J.number e.v_old);
        field "new" (J.number e.v_new);
        field "delta" (J.number (delta e));
      ]
  in
  obj
    [
      field "total_old" (J.number d.total_old);
      field "total_new" (J.number d.total_new);
      field "total_delta" (J.number (d.total_new -. d.total_old));
      field "dominant_old" (J.quote d.dominant_old);
      field "dominant_new" (J.quote d.dominant_new);
      field "threshold" (J.number threshold);
      field "regressed" (if regressed ~threshold d then "true" else "false");
      field "regressions"
        (arr (List.map entry (sort_by_magnitude (regressed_entries ~threshold d))));
      field "resources" (arr (List.map entry d.resources));
      field "segments" (arr (List.map entry (sort_by_magnitude d.segments)));
    ]
  ^ "\n"
