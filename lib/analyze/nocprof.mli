(** Interconnect observability: per-link congestion profiles behind
    [elk noc].

    Two synchronized views of a plan's interconnect behaviour.  The
    {e dynamic} view replays the simulator's {!Elk_sim.Noctrace}
    record — every link reservation the two fluid fabrics made — into
    per-link rows (volume, preload/distribute/exchange breakdown, busy
    time, utilization), {!Elk_obs.Timeseries} utilization gauges over
    simulated time, hop-count histograms and, on 2D meshes, an ASCII
    heatmap.  The {e static} view is a {!Elk_noc.Noc.Load} mirror of
    the schedule's communication phases, booked exactly the way the
    simulator executes them.  {!check} gates the two against each
    other link by link, against {!Elk_sim.Perfcore}'s per-op port
    attribution, and — when causal events were recorded — against the
    [port_wait] {!Elk_sim.Critpath} carries on its interconnect
    segments. *)

type link_row = {
  l_link : Elk_noc.Noc.link;
  l_name : string;
  l_bandwidth : float;  (** raw capacity, B/s. *)
  l_volume : float;  (** dynamic booked bytes. *)
  l_static : float;  (** the static Load mirror's bytes. *)
  l_preload : float;
  l_distribute : float;
  l_exchange : float;
  l_busy : float;  (** summed reservation seconds, both classes. *)
  l_util : float;  (** busy / makespan. *)
  l_bookings : int;
}

type report = {
  model : string;
  total : float;  (** simulated makespan. *)
  topology : string;
  noc : Elk_noc.Noc.t;
  rows : link_row list;  (** canonical link order. *)
  hot : link_row list;  (** by descending busy time. *)
  busiest_dyn : (Elk_noc.Noc.link * float) option;
  busiest_static : (Elk_noc.Noc.link * float) option;
  pre_bytes : float;  (** recorded class bytes, once per transfer. *)
  dist_bytes : float;
  ex_bytes : float;
  expect_pre : float;  (** schedule-side expectations of the same sums. *)
  expect_dist : float;
  expect_ex : float;
  hops : (int * int * float) list;  (** (hops, transfers, bytes) rows. *)
  mean_hops : float;  (** byte-weighted mean route length. *)
  trace : Elk_sim.Noctrace.t;
  series : Elk_obs.Timeseries.t;
  series_names : string list;
  port_attrib : (float * float) array;
      (** per op: (port wait recomputed from the trace, Perfcore's
          [a_port]). *)
  events : Elk_sim.Critpath.event array option;
}

val static_load : Elk_noc.Noc.t -> Elk.Schedule.t -> Elk_noc.Noc.Load.loads
(** The schedule's communication booked into a {!Elk_noc.Noc.Load}
    exactly the way the simulator executes it: preload fan-out from
    each core's controller, the distribution ring, the exchange ring. *)

val analyze :
  ?window:float ->
  ?top_series:int ->
  Elk.Schedule.t ->
  Elk_sim.Sim.result ->
  report
(** Build the report from a simulator run recorded with [~noc:true].
    [window] is the Timeseries window width (default: makespan / 48);
    [top_series] how many of the hottest links get a utilization gauge
    (default 5).  Raises [Invalid_argument] if the run carries no
    interconnect record. *)

val check : report -> (unit, string) result
(** The invariants [elk noc] enforces on every run: dynamic per-link
    volumes agree with the static mirror (and the busiest links
    coincide), recorded class totals match the schedule's, recomputed
    queueing waits match Perfcore's per-op port attribution, per-class
    busy intervals never overlap on a link, the series tile
    [[0, total]] without gaps, and — when events were recorded — the
    [port_wait] on Critpath's Distribute/Exchange segments equals the
    trace's. *)

val tables : ?top:int -> report -> Elk_util.Table.t list
(** Summary, top-[top] hottest links with class breakdown, and the
    route-length histogram (default [top] 10). *)

val heatmap : report -> string list option
(** ASCII per-core heatmap of outgoing-link utilization on 2D meshes;
    [None] on other topologies. *)

val print : ?top:int -> report -> unit
(** {!tables}, the mesh heatmap when there is one, and a busiest-link
    utilization sparkline, to stdout. *)

val to_json : ?top:int -> report -> string
(** JSON snapshot.  The top-level [total] / [dominant] /
    [resource_seconds] / [segments] fields follow the
    {!Elk_analyze.Tracediff} shape (hottest links as busy-second
    segments) so [elk trace diff] can gate [BENCH_noc.json]; the rest
    is the full interconnect payload (links, class totals, hop
    histogram, series).  Floats are rounded to 6 significant digits
    for snapshot stability. *)

val noc_pid : int
(** Perfetto process id of the interconnect counter tracks (10). *)

val chrome_counter_events : report -> string list
(** Per-link utilization gauges and the busy-link count as Perfetto
    counter tracks under {!noc_pid}, for embedding beside the device
    timeline. *)
