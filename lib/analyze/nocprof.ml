(* Interconnect observability: per-link congestion profiles, the view
   behind `elk noc`.

   The dynamic view replays the simulator's Noctrace record — every
   link reservation the two fluid fabrics made — into per-link rows
   (volume, class breakdown, busy time, utilization), Timeseries
   utilization gauges over simulated time, hop-count histograms and,
   on 2D meshes, an ASCII heatmap.  The static view is a Noc.Load
   mirror of the schedule's communication: the same preload fan-out,
   distribution ring and exchange ring the simulator executes, booked
   with Load.add.  [check] gates the two against each other link by
   link (and busiest against Load.busiest), reconciles recorded
   queueing waits with Perfcore's per-op port attribution, and — when
   causal events were also recorded — with the port_wait Critpath
   carries on its Distribute/Exchange segments.  A violation means one
   of the layers drifted.

   The JSON snapshot carries a Tracediff-comparable core (total =
   makespan, hottest links as interconnect segments in busy-seconds),
   so CI gates BENCH_noc.json with the machinery that already gates
   critical paths, SLOs and memory. *)

module Nt = Elk_sim.Noctrace
module N = Elk_noc.Noc
module Ts = Elk_obs.Timeseries
module A = Elk_arch.Arch
module P = Elk_partition.Partition
module J = Elk_obs.Jsonx

(* Same relative tolerance as Perfcore's tiling invariant. *)
let drift_eps = 1e-6

type link_row = {
  l_link : N.link;
  l_name : string;
  l_bandwidth : float;  (* raw capacity, B/s *)
  l_volume : float;  (* dynamic booked bytes *)
  l_static : float;  (* static Load mirror's bytes *)
  l_preload : float;
  l_distribute : float;
  l_exchange : float;
  l_busy : float;  (* summed reservation seconds, both classes *)
  l_util : float;  (* busy / makespan *)
  l_bookings : int;
}

type report = {
  model : string;
  total : float;  (* simulated makespan *)
  topology : string;
  noc : N.t;
  rows : link_row list;  (* canonical link order *)
  hot : link_row list;  (* by descending busy time, ties canonical *)
  busiest_dyn : (N.link * float) option;  (* link, volume/bandwidth *)
  busiest_static : (N.link * float) option;
  pre_bytes : float;  (* recorded class bytes, once per transfer *)
  dist_bytes : float;
  ex_bytes : float;
  expect_pre : float;  (* schedule-side expectations for the same sums *)
  expect_dist : float;
  expect_ex : float;
  hops : (int * int * float) list;  (* hop histogram *)
  mean_hops : float;  (* byte-weighted mean route length *)
  trace : Nt.t;
  series : Ts.t;
  series_names : string list;
  port_attrib : (float * float) array;  (* per op: recomputed vs Perfcore a_port *)
  events : Elk_sim.Critpath.event array option;
}

(* ---- static mirror ---------------------------------------------------- *)

(* Book the schedule's communication into a Noc.Load exactly the way
   the simulator executes it: preload fan-out from each core's
   controller, the distribution ring from sharing-group successors,
   the exchange ring from predecessors.  Guards mirror the simulator's
   (no transfer for zero bytes, none when src = dst), so the per-link
   volumes must agree with the dynamic record to float noise. *)
let static_load noc (s : Elk.Schedule.t) =
  let chip = N.chip noc in
  let cores = chip.A.cores in
  let load = N.Load.create noc in
  Array.iter
    (fun e ->
      let popt = e.Elk.Schedule.popt and plan = e.Elk.Schedule.plan in
      if popt.P.hbm_device_bytes > 0. then begin
        let per_core = popt.P.noc_inject_bytes /. float_of_int cores in
        if per_core > 0. then
          for c = 0 to cores - 1 do
            N.Load.add load ~src:(N.hbm_ctrl_for_core noc c) ~dst:(N.Core c)
              ~bytes:per_core
          done
      end;
      let ncores = plan.P.cores_used in
      let ring bytes shift =
        if bytes > 0. then
          for c = 0 to ncores - 1 do
            let src = (c + shift) mod ncores in
            if src <> c then
              N.Load.add load ~src:(N.Core src) ~dst:(N.Core c) ~bytes
          done
      in
      ring popt.P.dist_bytes_per_core 1;
      ring plan.P.exchange_bytes_per_core (ncores - 1))
    s.Elk.Schedule.entries;
  load

(* ---- analysis --------------------------------------------------------- *)

let series_of_link name = "noc_link_util:" ^ name

(* Merge intervals into their union (inputs sorted by start). *)
let union_intervals ivs =
  let rec go acc = function
    | [] -> List.rev acc
    | (a, b) :: rest -> (
        match acc with
        | (ca, cb) :: tl when a <= cb -> go ((ca, Float.max cb b) :: tl) rest
        | _ -> go ((a, b) :: acc) rest)
  in
  go [] (List.sort (fun (a, _) (b, _) -> Float.compare a b) ivs)

let analyze ?window ?(top_series = 5) (s : Elk.Schedule.t)
    (r : Elk_sim.Sim.result) =
  let trace =
    match r.Elk_sim.Sim.noc with
    | Some t -> t
    | None ->
        invalid_arg
          "Nocprof.analyze: simulator run has no interconnect record (run \
           with ~noc:true or ELK_SIM_NOC=1)"
  in
  let noc = Nt.noc trace in
  let chip = N.chip noc in
  let total = r.Elk_sim.Sim.total in
  let topology =
    match chip.A.topology with
    | A.All_to_all -> "all-to-all"
    | A.Mesh2d { rows; cols } -> Printf.sprintf "mesh %dx%d" rows cols
    | A.Clustered { cluster_size; _ } ->
        Printf.sprintf "clustered/%d" cluster_size
  in
  let load = static_load noc s in
  let stats = Nt.link_stats trace in
  let rows =
    List.map
      (fun (st : Nt.link_stat) ->
        {
          l_link = st.Nt.ls_link;
          l_name = N.link_name st.Nt.ls_link;
          l_bandwidth = st.Nt.ls_bandwidth;
          l_volume = st.Nt.ls_volume;
          l_static = N.Load.volume_on load st.Nt.ls_link;
          l_preload = st.Nt.ls_preload;
          l_distribute = st.Nt.ls_distribute;
          l_exchange = st.Nt.ls_exchange;
          l_busy = st.Nt.ls_busy;
          l_util = (if total > 0. then st.Nt.ls_busy /. total else 0.);
          l_bookings = st.Nt.ls_bookings;
        })
      stats
  in
  let hot =
    List.stable_sort (fun a b -> Float.compare b.l_busy a.l_busy) rows
  in
  let busiest_dyn =
    List.fold_left
      (fun acc row ->
        let time = row.l_volume /. row.l_bandwidth in
        match acc with
        | Some (_, best) when best >= time -> acc
        | _ -> Some (row.l_link, time))
      None rows
  in
  (* Schedule-side expectations for the recorded class totals, with the
     simulator's own guards (nothing moves for zero bytes or src=dst). *)
  let expect_pre = ref 0. and expect_dist = ref 0. and expect_ex = ref 0. in
  Array.iter
    (fun e ->
      let popt = e.Elk.Schedule.popt and plan = e.Elk.Schedule.plan in
      let ncores = plan.P.cores_used in
      if popt.P.hbm_device_bytes > 0. && popt.P.noc_inject_bytes > 0. then
        expect_pre := !expect_pre +. popt.P.noc_inject_bytes;
      if ncores > 1 then begin
        expect_dist :=
          !expect_dist +. (popt.P.dist_bytes_per_core *. float_of_int ncores);
        expect_ex :=
          !expect_ex +. (plan.P.exchange_bytes_per_core *. float_of_int ncores)
      end)
    s.Elk.Schedule.entries;
  (* Per-op port attribution recomputed from the trace's queueing waits,
     against Perfcore's books. *)
  let per_op = r.Elk_sim.Sim.per_op in
  let port_attrib =
    Array.mapi
      (fun op (o : Elk_sim.Sim.op_trace) ->
        let dist_len = o.Elk_sim.Sim.dist_end -. o.Elk_sim.Sim.exe_start in
        let ex_len = o.Elk_sim.Sim.exe_end -. o.Elk_sim.Sim.compute_end in
        let port_d =
          Float.min dist_len (Nt.max_wait trace ~op ~cls:Nt.Distribute)
        in
        let port_e =
          Float.min ex_len (Nt.max_wait trace ~op ~cls:Nt.Exchange)
        in
        ( port_d +. port_e,
          r.Elk_sim.Sim.perf.Elk_sim.Perfcore.per_op.(op)
            .Elk_sim.Perfcore.a_port ))
      per_op
  in
  (* Utilization gauges: 1 while the link holds a reservation (either
     class), 0 while idle — the windowed mean is the link's utilization
     over each window.  One gauge per hottest link, plus a busy-link
     count across the whole fabric. *)
  let window =
    match window with Some w -> w | None -> Float.max 1e-9 (total /. 48.)
  in
  let series = Ts.create ~window () in
  let top_links = List.filteri (fun i _ -> i < top_series) hot in
  let link_union row =
    let pre, exch = Nt.busy_intervals trace ~link:row.l_link in
    union_intervals (pre @ exch)
  in
  List.iter
    (fun row ->
      let name = series_of_link row.l_name in
      Ts.set series name ~time:0. 0.
        ~help:("Busy fraction of " ^ row.l_name ^ " over time");
      List.iter
        (fun (a, b) ->
          Ts.set series name ~time:a 1.;
          Ts.set series name ~time:b 0.)
        (link_union row))
    top_links;
  let busy_events =
    List.concat_map
      (fun row -> List.concat_map (fun (a, b) -> [ (a, 1.); (b, -1.) ]) (link_union row))
      rows
    |> List.sort (fun (ta, da) (tb, db) -> compare (ta, da) (tb, db))
  in
  Ts.set series "noc_busy_links" ~time:0. 0.
    ~help:"Links holding at least one reservation";
  ignore
    (List.fold_left
       (fun level (t, d) ->
         let level = level +. d in
         Ts.set series "noc_busy_links" ~time:t level;
         level)
       0. busy_events);
  let series_names =
    List.map (fun row -> series_of_link row.l_name) top_links
    @ [ "noc_busy_links" ]
  in
  let hops = Nt.hop_histogram trace in
  let mean_hops =
    let b = List.fold_left (fun a (_, _, bytes) -> a +. bytes) 0. hops in
    if b <= 0. then 0.
    else
      List.fold_left
        (fun a (h, _, bytes) -> a +. (float_of_int h *. bytes))
        0. hops
      /. b
  in
  {
    model = Elk_model.Graph.name s.Elk.Schedule.graph;
    total;
    topology;
    noc;
    rows;
    hot;
    busiest_dyn;
    busiest_static = N.Load.busiest load;
    pre_bytes = Nt.class_bytes trace ~cls:Nt.Preload;
    dist_bytes = Nt.class_bytes trace ~cls:Nt.Distribute;
    ex_bytes = Nt.class_bytes trace ~cls:Nt.Exchange;
    expect_pre = !expect_pre;
    expect_dist = !expect_dist;
    expect_ex = !expect_ex;
    hops;
    mean_hops;
    trace;
    series;
    series_names;
    port_attrib;
    events = r.Elk_sim.Sim.events;
  }

(* ---- cross-checks ----------------------------------------------------- *)

let rel_err a b =
  let scale = Float.max (Float.abs a) (Float.abs b) in
  if scale <= 0. then 0. else Float.abs (a -. b) /. scale

(* The invariants `elk noc` enforces on every run (and CI on every zoo
   model): the dynamic per-link volumes agree with the static Load
   mirror (and the busiest links coincide), recorded class totals match
   the schedule's, recomputed queueing waits match Perfcore's per-op
   port attribution, per-class busy intervals never overlap on a link,
   and the utilization series tile without gaps.  When causal events
   were recorded too, the Distribute/Exchange port_wait Critpath
   carries must equal the trace's. *)
let check rep =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let link_drift =
    List.find_opt (fun row -> rel_err row.l_volume row.l_static > drift_eps) rep.rows
  in
  match link_drift with
  | Some row ->
      err
        "link %s: recorded volume %.6g B drifts from the static Load \
         mirror's %.6g B — the simulator and Noc.Load disagree"
        row.l_name row.l_volume row.l_static
  | None -> (
      match (rep.busiest_dyn, rep.busiest_static) with
      | Some (dl, dt), Some (sl, st)
        when dl <> sl && rel_err dt st > drift_eps ->
          err "busiest link diverged: recorded %s (%.3g s) vs static %s (%.3g s)"
            (N.link_name dl) dt (N.link_name sl) st
      | Some (_, dt), Some (_, st) when rel_err dt st > drift_eps ->
          err "busiest-link volume drifted: recorded %.6g s vs static %.6g s"
            dt st
      | Some _, None | None, Some _ ->
          err "busiest link exists in only one of the dynamic/static views"
      | _ ->
          let class_drift =
            List.find_opt
              (fun (_, got, want) -> rel_err got want > drift_eps)
              [
                ("preload", rep.pre_bytes, rep.expect_pre);
                ("distribute", rep.dist_bytes, rep.expect_dist);
                ("exchange", rep.ex_bytes, rep.expect_ex);
              ]
          in
          (match class_drift with
          | Some (cls, got, want) ->
              err "%s class bytes %.6g drift from the schedule's %.6g" cls got
                want
          | None ->
              let bad_port = ref None in
              Array.iteri
                (fun op (got, want) ->
                  if !bad_port = None && rel_err got want > drift_eps then
                    bad_port := Some (op, got, want))
                rep.port_attrib;
              (match !bad_port with
              | Some (op, got, want) ->
                  err
                    "op %d: port wait recomputed from the trace (%.6g s) \
                     drifts from Perfcore's attribution (%.6g s)"
                    op got want
              | None ->
                  let overlap =
                    List.find_map
                      (fun row ->
                        let check_cls label ivs =
                          let rec go = function
                            | (_, b) :: (((a2, _) :: _) as rest) ->
                                if a2 < b -. (drift_eps *. Float.max 1. rep.total)
                                then Some (row.l_name, label)
                                else go rest
                            | _ -> None
                          in
                          go ivs
                        in
                        let pre, exch =
                          Nt.busy_intervals rep.trace ~link:row.l_link
                        in
                        match check_cls "preload" pre with
                        | Some x -> Some x
                        | None -> check_cls "exchange" exch)
                      rep.rows
                  in
                  (match overlap with
                  | Some (name, cls) ->
                      err
                        "link %s: overlapping %s-class reservations — the \
                         fabric's serialization was not recorded faithfully"
                        name cls
                  | None ->
                      let ev_drift =
                        match rep.events with
                        | None -> None
                        | Some events ->
                            Array.fold_left
                              (fun acc (e : Elk_sim.Critpath.event) ->
                                if acc <> None then acc
                                else
                                  let against cls =
                                    let len =
                                      e.Elk_sim.Critpath.t_end
                                      -. e.Elk_sim.Critpath.t_start
                                    in
                                    let want =
                                      Float.min len
                                        (Nt.max_wait rep.trace
                                           ~op:e.Elk_sim.Critpath.op ~cls)
                                    in
                                    if
                                      rel_err e.Elk_sim.Critpath.port_wait want
                                      > drift_eps
                                    then
                                      Some
                                        ( e.Elk_sim.Critpath.op,
                                          e.Elk_sim.Critpath.port_wait,
                                          want )
                                    else None
                                  in
                                  match e.Elk_sim.Critpath.kind with
                                  | Elk_sim.Critpath.Distribute ->
                                      against Nt.Distribute
                                  | Elk_sim.Critpath.Exchange ->
                                      against Nt.Exchange
                                  | _ -> None)
                              None events
                      in
                      (match ev_drift with
                      | Some (op, got, want) ->
                          err
                            "op %d: Critpath port_wait %.6g s disagrees with \
                             the trace's max queueing wait %.6g s"
                            op got want
                      | None ->
                          let bad =
                            List.find_map
                              (fun name ->
                                match
                                  Ts.check_tiling rep.series ~horizon:rep.total
                                    name
                                with
                                | Ok () -> None
                                | Error m -> Some m)
                              rep.series_names
                          in
                          (match bad with
                          | Some m -> Error m
                          | None -> Ok ()))))))

(* ---- tables ----------------------------------------------------------- *)

let mb v = Printf.sprintf "%.2f" (v /. 1048576.)
let us v = Printf.sprintf "%.1f" (v *. 1e6)
let gbs v = Printf.sprintf "%.1f" (v /. 1e9)
let pct v = Printf.sprintf "%.1f%%" (100. *. v)

let tables ?(top = 10) rep =
  let summary =
    Elk_util.Table.create
      ~title:
        (Printf.sprintf
           "interconnect: %s on %s, makespan %s us, %d links touched, %d \
            transfers"
           rep.model rep.topology (us rep.total) (List.length rep.rows)
           (Nt.num_transfers rep.trace))
      ~columns:[ "metric"; "value" ]
  in
  List.iter
    (fun (k, v) -> Elk_util.Table.add_row summary [ k; v ])
    [
      ("preload bytes (MB)", mb rep.pre_bytes);
      ("distribute bytes (MB)", mb rep.dist_bytes);
      ("exchange bytes (MB)", mb rep.ex_bytes);
      ("mean route length (links)", Printf.sprintf "%.2f" rep.mean_hops);
      ( "busiest link (dynamic)",
        match rep.busiest_dyn with
        | Some (l, t) -> Printf.sprintf "%s (%s us)" (N.link_name l) (us t)
        | None -> "-" );
      ( "busiest link (static Load)",
        match rep.busiest_static with
        | Some (l, t) -> Printf.sprintf "%s (%s us)" (N.link_name l) (us t)
        | None -> "-" );
    ];
  let links =
    Elk_util.Table.create
      ~title:(Printf.sprintf "hottest links (top %d by busy time)" top)
      ~columns:
        [ "link"; "GB/s"; "MB"; "preload"; "distribute"; "exchange"; "busy us";
          "util" ]
  in
  List.iteri
    (fun i row ->
      if i < top then
        let share v =
          if row.l_volume <= 0. then "-" else pct (v /. row.l_volume)
        in
        Elk_util.Table.add_row links
          [
            row.l_name; gbs row.l_bandwidth; mb row.l_volume;
            share row.l_preload; share row.l_distribute; share row.l_exchange;
            us row.l_busy; pct row.l_util;
          ])
    rep.hot;
  let hist =
    Elk_util.Table.create
      ~title:"route length histogram"
      ~columns:[ "hops"; "transfers"; "MB" ]
  in
  List.iter
    (fun (h, n, bytes) ->
      Elk_util.Table.add_row hist [ string_of_int h; string_of_int n; mb bytes ])
    rep.hops;
  [ summary; links; hist ]

let glyphs = [| " "; "_"; "."; ":"; "-"; "="; "+"; "*"; "#" |]

let glyph_of hi v =
  if hi <= 0. then glyphs.(0)
  else
    let i = int_of_float (Float.round (v /. hi *. 8.)) in
    glyphs.(max 0 (min 8 i))

let sparkline values =
  let hi = List.fold_left Float.max 0. values in
  String.concat "" (List.map (glyph_of hi) values)

(* ASCII mesh heatmap: one cell per core, intensity = the hottest
   utilization among the links leaving that core (outgoing mesh edges,
   plus the controller entry edge where one lands).  None on
   non-mesh topologies. *)
let heatmap rep =
  if not (N.is_mesh rep.noc) then None
  else begin
    let chip = N.chip rep.noc in
    match chip.A.topology with
    | A.Mesh2d { rows; cols } ->
        let cell = Array.make (rows * cols) 0. in
        List.iter
          (fun row ->
            let bump c v = if c >= 0 && c < rows * cols then cell.(c) <- Float.max cell.(c) v in
            match row.l_link with
            | N.Edge { from_core; _ } -> bump from_core row.l_util
            | N.Hbm_edge { entry; _ } -> bump entry row.l_util
            | _ -> ())
          rep.rows;
        let hi = Array.fold_left Float.max 0. cell in
        let lines =
          List.init rows (fun r ->
              String.concat ""
                (List.init cols (fun c -> glyph_of hi cell.((r * cols) + c))))
        in
        Some
          (Printf.sprintf
             "link utilization heatmap (%dx%d cores, peak %s outgoing-link \
              busy)"
             rows cols (pct hi)
          :: List.map (fun l -> "  |" ^ l ^ "|") lines)
    | _ -> None
  end

let print ?top rep =
  List.iter Elk_util.Table.print (tables ?top rep);
  (match heatmap rep with
  | Some lines ->
      List.iter print_endline lines;
      print_newline ()
  | None -> ());
  match rep.hot with
  | [] -> ()
  | hottest :: _ ->
      let points =
        Ts.points rep.series ~horizon:rep.total
          (series_of_link hottest.l_name)
      in
      if points <> [] then begin
        let vals = List.map (fun p -> p.Ts.mean) points in
        Printf.printf "%s utilization over time (%d windows, %s busy):\n  %s\n"
          hottest.l_name (List.length points) (pct hottest.l_util)
          (sparkline vals)
      end

(* ---- JSON snapshot ---------------------------------------------------- *)

(* Round like the SLO snapshot so the committed file is stable under
   float noise. *)
let g v = J.number (float_of_string (Printf.sprintf "%.6g" v))

let to_json ?(top = 10) rep =
  let seg name kind dur =
    Printf.sprintf
      "{\"name\":%s,\"kind\":%s,\"resource\":\"interconnect\",\"dur\":%s}"
      (J.quote name) (J.quote kind) (g dur)
  in
  let segments =
    List.filteri (fun i _ -> i < top) rep.hot
    |> List.map (fun row -> seg row.l_name "link-busy" row.l_busy)
  in
  let busy_total = List.fold_left (fun a row -> a +. row.l_busy) 0. rep.rows in
  let links =
    List.filteri (fun i _ -> i < top) rep.hot
    |> List.map (fun row ->
           Printf.sprintf
             "{\"link\":%s,\"bandwidth\":%s,\"bytes\":%s,\"static_bytes\":%s,\"preload\":%s,\"distribute\":%s,\"exchange\":%s,\"busy\":%s,\"util\":%s,\"bookings\":%d}"
             (J.quote row.l_name) (g row.l_bandwidth) (g row.l_volume)
             (g row.l_static) (g row.l_preload) (g row.l_distribute)
             (g row.l_exchange) (g row.l_busy) (g row.l_util) row.l_bookings)
  in
  let hist =
    List.map
      (fun (h, n, bytes) ->
        Printf.sprintf "{\"hops\":%d,\"transfers\":%d,\"bytes\":%s}" h n
          (g bytes))
      rep.hops
  in
  let busiest = function
    | Some (l, t) ->
        Printf.sprintf "{\"link\":%s,\"seconds\":%s}" (J.quote (N.link_name l))
          (g t)
    | None -> "null"
  in
  String.concat ""
    [
      "{";
      Printf.sprintf "\"model\":%s," (J.quote rep.model);
      (* Tracediff-comparable core: total + segments *)
      Printf.sprintf "\"total\":%s,\"dominant\":\"interconnect\"," (g rep.total);
      Printf.sprintf "\"resource_seconds\":{\"interconnect\":%s},"
        (g busy_total);
      Printf.sprintf "\"segments\":[%s]," (String.concat "," segments);
      (* Full interconnect payload *)
      Printf.sprintf "\"topology\":%s,\"links_touched\":%d,\"transfers\":%d,"
        (J.quote rep.topology) (List.length rep.rows)
        (Nt.num_transfers rep.trace);
      Printf.sprintf
        "\"preload_bytes\":%s,\"distribute_bytes\":%s,\"exchange_bytes\":%s,"
        (g rep.pre_bytes) (g rep.dist_bytes) (g rep.ex_bytes);
      Printf.sprintf "\"mean_hops\":%s," (g rep.mean_hops);
      Printf.sprintf "\"busiest\":%s,\"busiest_static\":%s,"
        (busiest rep.busiest_dyn)
        (busiest rep.busiest_static);
      Printf.sprintf "\"links\":[%s]," (String.concat "," links);
      Printf.sprintf "\"hops\":[%s]," (String.concat "," hist);
      Printf.sprintf "\"series\":%s"
        (Ts.to_json rep.series ~horizon:rep.total ());
      "}";
    ]

(* ---- Perfetto counter tracks ------------------------------------------ *)

(* Distinct from the device timeline (pid 1), serving lanes (pid 7),
   memory counters (pid 8) and generic Timeseries counters (pid 9). *)
let noc_pid = 10

let chrome_counter_events rep =
  List.concat_map
    (fun name ->
      Ts.chrome_counter_events rep.series ~horizon:rep.total ~pid:noc_pid name)
    rep.series_names
