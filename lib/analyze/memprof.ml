(* Memory observability: SRAM residency timelines + buffer-lifetime
   ledger, the two views behind `elk mem`.

   The dynamic view replays the simulator's Memtrace record into
   Timeseries gauges (per-core occupancy over simulated time, chip
   aggregate, high-water marks vs the SRAM capacity) and integrates
   wasted residency — byte-seconds a preload buffer sits delivered but
   unused, and byte-seconds an execute footprint lingers after its last
   tile-compute use.  The static view is the Elk.Residency ledger,
   derived from the schedule alone.  [check] gates the two against each
   other: occupancy must never exceed the per-core capacity, and the
   static high-water mark must bound the dynamic one (to the verifier's
   tolerance) — the preload-reservation order in the device program is
   exactly the one the static replay assumes, so a violation means one
   of the layers drifted.

   The JSON snapshot carries a Tracediff-comparable core (total =
   makespan, wasted residency as segments in capacity-seconds), so CI
   gates BENCH_mem.json with the machinery that already gates critical
   paths and SLOs. *)

module Mt = Elk_sim.Memtrace
module Rd = Elk.Residency
module Ts = Elk_obs.Timeseries
module A = Elk_arch.Arch
module P = Elk_partition.Partition
module J = Elk_obs.Jsonx

(* Same absolute slack as the verifier's capacity rule. *)
let capacity_eps = 1e-6

type waste_row = {
  w_name : string;
  w_ops : int;  (* operators aggregated under the name *)
  w_bytes : float;  (* largest per-core preload footprint among them *)
  w_resident_s : float;  (* summed delivery-to-first-use residency *)
  w_pre : float;  (* byte-seconds of pre-use waste *)
  w_post : float;  (* byte-seconds of post-use (exchange-tail) waste *)
}

type report = {
  model : string;
  total : float;  (* simulated makespan *)
  capacity : float;  (* usable SRAM bytes per core *)
  cores : int;
  dyn_high_water : float;  (* peak per-core bytes, dynamic *)
  static_high_water : float;  (* peak per-core bytes, static ledger *)
  static_high_water_step : int;
  chip_peak : float;  (* peak aggregate bytes across all cores *)
  pre_waste : float;  (* total pre-use wasted byte-seconds *)
  post_waste : float;  (* total post-use wasted byte-seconds *)
  waste_rows : waste_row list;  (* by descending total waste *)
  ledger : Rd.t;
  mem : Mt.t;
  series : Ts.t;
}

let series_names =
  [ "sram_occupancy_max_core_bytes"; "sram_occupancy_min_core_bytes";
    "sram_occupancy_chip_bytes" ]

let analyze ?window ctx (s : Elk.Schedule.t) (r : Elk_sim.Sim.result) =
  let mem =
    match r.Elk_sim.Sim.mem with
    | Some m -> m
    | None ->
        invalid_arg
          "Memprof.analyze: simulator run has no memory record (run with \
           ~mem:true or ELK_SIM_MEM=1)"
  in
  let chip = P.ctx_chip ctx in
  let capacity = A.usable_sram_per_core chip in
  let cores = chip.A.cores in
  let total = r.Elk_sim.Sim.total in
  let ledger = Rd.of_schedule ~capacity ~cores s in
  let window =
    match window with Some w -> w | None -> Float.max 1e-9 (total /. 48.)
  in
  let series = Ts.create ~window () in
  let gauge name help pts =
    Ts.set series name ~time:0. 0. ~help;
    List.iter (fun (t, v) -> Ts.set series name ~time:t v) pts
  in
  gauge "sram_occupancy_max_core_bytes"
    "Per-core SRAM occupancy of the fullest core (core 0 holds every buffer)"
    (Mt.occupancy mem ~core:0);
  gauge "sram_occupancy_min_core_bytes"
    "Per-core SRAM occupancy of the emptiest core (preload buffers only)"
    (Mt.occupancy mem ~core:(max 0 (cores - 1)));
  gauge "sram_occupancy_chip_bytes"
    "Aggregate SRAM bytes resident across all cores"
    (Mt.chip_occupancy mem);
  (* Wasted residency, aggregated per operator name so layers of the
     same block fold into one row (the shape Tracediff diffs well). *)
  let tbl : (string, waste_row ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  for op = 0 to Mt.num_ops mem - 1 do
    let m = Mt.op_mem mem op in
    let name = (List.nth ledger.Rd.hbm op).Rd.h_name in
    let resident = Float.max 0. (m.Mt.m_first_use -. m.Mt.m_deliver) in
    let pre = Mt.pre_use_waste mem op and post = Mt.post_use_waste mem op in
    match Hashtbl.find_opt tbl name with
    | Some row ->
        row :=
          {
            !row with
            w_ops = !row.w_ops + 1;
            w_bytes = Float.max !row.w_bytes m.Mt.m_preload_bytes;
            w_resident_s = !row.w_resident_s +. resident;
            w_pre = !row.w_pre +. pre;
            w_post = !row.w_post +. post;
          }
    | None ->
        order := name :: !order;
        Hashtbl.add tbl name
          (ref
             {
               w_name = name;
               w_ops = 1;
               w_bytes = m.Mt.m_preload_bytes;
               w_resident_s = resident;
               w_pre = pre;
               w_post = post;
             })
  done;
  let waste_rows =
    List.rev_map (fun name -> !(Hashtbl.find tbl name)) !order
    |> List.stable_sort (fun a b ->
           compare (b.w_pre +. b.w_post) (a.w_pre +. a.w_post))
  in
  {
    model = Elk_model.Graph.name s.Elk.Schedule.graph;
    total;
    capacity;
    cores;
    dyn_high_water = Mt.high_water mem;
    static_high_water = ledger.Rd.high_water;
    static_high_water_step = ledger.Rd.high_water_step;
    chip_peak = Mt.chip_high_water mem;
    pre_waste = Mt.total_pre_use_waste mem;
    post_waste = Mt.total_post_use_waste mem;
    waste_rows;
    ledger;
    mem;
    series;
  }

(* ---- cross-checks ----------------------------------------------------- *)

(* Bytes by which the dynamic peak exceeds usable SRAM per core.  Like
   the verifier's [mem.overcommit] rule this is a warning, not an error:
   some plans deliberately overcommit when even minimal preload options
   overflow, and the contention is charged downstream — the schedule
   still simulates.  0 when the peak fits. *)
let overcommit_bytes rep =
  Float.max 0. (rep.dyn_high_water -. rep.capacity)

(* The invariants `elk mem` enforces on every run (and CI on every zoo
   model): the static ledger bounds the dynamic high water (the two
   views agree), the chip aggregate is consistent with the per-core
   peak, waste is non-negative, and the series tile without gaps.
   Capacity exceedance is deliberately NOT an error here — see
   {!overcommit_bytes}. *)
let check rep =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if rep.dyn_high_water > rep.static_high_water +. capacity_eps then
    err
      "dynamic high water %.0f B/core exceeds the static ledger's %.0f \
       B/core (step %d) — the liveness replay and the simulator drifted"
      rep.dyn_high_water rep.static_high_water rep.static_high_water_step
  else if
    rep.chip_peak
    > (rep.dyn_high_water *. float_of_int rep.cores)
      +. (capacity_eps *. float_of_int rep.cores)
  then
    err "chip-aggregate peak %.0f B exceeds cores x per-core peak %.0f B"
      rep.chip_peak
      (rep.dyn_high_water *. float_of_int rep.cores)
  else if rep.pre_waste < 0. || rep.post_waste < 0. then
    err "negative wasted residency (%.3g pre, %.3g post)" rep.pre_waste
      rep.post_waste
  else
    let bad =
      List.find_map
        (fun name ->
          match Ts.check_tiling rep.series ~horizon:rep.total name with
          | Ok () -> None
          | Error m -> Some m)
        series_names
    in
    match bad with Some m -> Error m | None -> Ok ()

(* ---- tables ----------------------------------------------------------- *)

let kb v = Printf.sprintf "%.1f" (v /. 1024.)
let us v = Printf.sprintf "%.1f" (v *. 1e6)
let pct v total = Printf.sprintf "%.1f%%" (100. *. v /. Float.max 1e-12 total)

(* Waste reads naturally in KB·us: per-core kilobytes held for
   microseconds, summed over cores. *)
let kbus v = Printf.sprintf "%.1f" (v /. 1024. *. 1e6)

let tables ?(top = 10) rep =
  let cap_s = rep.capacity *. float_of_int rep.cores *. rep.total in
  let summary =
    Elk_util.Table.create
      ~title:
        (Printf.sprintf
           "SRAM residency: %s, makespan %s us, %d cores x %s KB usable"
           rep.model (us rep.total) rep.cores (kb rep.capacity))
      ~columns:[ "metric"; "KB"; "vs capacity" ]
  in
  List.iter
    (fun (name, bytes, denom) ->
      Elk_util.Table.add_row summary [ name; kb bytes; pct bytes denom ])
    [
      ("dynamic high water / core", rep.dyn_high_water, rep.capacity);
      ("static ledger high water / core", rep.static_high_water, rep.capacity);
      ("chip peak (all cores)", rep.chip_peak,
       rep.capacity *. float_of_int rep.cores);
    ];
  let waste =
    Elk_util.Table.create
      ~title:
        (Printf.sprintf
           "wasted residency: %s KB*us pre-use + %s KB*us exchange-tail \
            (%s of capacity-time)"
           (kbus rep.pre_waste) (kbus rep.post_waste)
           (pct (rep.pre_waste +. rep.post_waste) cap_s))
      ~columns:
        [ "operator"; "ops"; "KB/core"; "resident us"; "pre-use KB*us";
          "tail KB*us" ]
  in
  List.iteri
    (fun i row ->
      if i < top then
        Elk_util.Table.add_row waste
          [
            row.w_name; string_of_int row.w_ops; kb row.w_bytes;
            us row.w_resident_s; kbus row.w_pre; kbus row.w_post;
          ])
    rep.waste_rows;
  let total_hbm =
    List.fold_left (fun a h -> a +. h.Rd.h_bytes) 0. rep.ledger.Rd.hbm
  in
  let hbm =
    Elk_util.Table.create
      ~title:
        (Printf.sprintf "HBM traffic ledger: %.1f MB moved in %d transfers"
           (total_hbm /. 1048576.)
           (List.fold_left (fun a h -> a + h.Rd.h_moves) 0 rep.ledger.Rd.hbm))
      ~columns:[ "op"; "name"; "MB moved"; "moves"; "reuse dist (steps)" ]
  in
  let by_bytes =
    List.stable_sort
      (fun a b -> compare b.Rd.h_bytes a.Rd.h_bytes)
      rep.ledger.Rd.hbm
  in
  List.iteri
    (fun i h ->
      if i < top then
        Elk_util.Table.add_row hbm
          [
            string_of_int h.Rd.h_op; h.Rd.h_name;
            Printf.sprintf "%.2f" (h.Rd.h_bytes /. 1048576.);
            string_of_int h.Rd.h_moves;
            string_of_int h.Rd.h_reuse_distance;
          ])
    by_bytes;
  [ summary; waste; hbm ]

let sparkline values =
  let glyphs = [| " "; "_"; "."; ":"; "-"; "="; "+"; "*"; "#" |] in
  let hi = List.fold_left Float.max 0. values in
  if hi <= 0. then String.concat "" (List.map (fun _ -> glyphs.(0)) values)
  else
    String.concat ""
      (List.map
         (fun v ->
           let i = int_of_float (Float.round (v /. hi *. 8.)) in
           glyphs.(max 0 (min 8 i)))
         values)

let print ?top rep =
  List.iter Elk_util.Table.print (tables ?top rep);
  let points =
    Ts.points rep.series ~horizon:rep.total "sram_occupancy_max_core_bytes"
  in
  if points <> [] then begin
    let vals = List.map (fun p -> p.Ts.mean) points in
    Printf.printf "SRAM occupancy over time (%d windows, peak %s KB/core):\n  %s\n"
      (List.length points) (kb rep.dyn_high_water) (sparkline vals)
  end

(* ---- JSON snapshot ---------------------------------------------------- *)

(* Round like the SLO snapshot so the committed file is stable under
   float noise. *)
let g v = J.number (float_of_string (Printf.sprintf "%.6g" v))

let to_json ?(top = 10) rep =
  let cap_cores = rep.capacity *. float_of_int rep.cores in
  let seg name kind dur =
    Printf.sprintf "{\"name\":%s,\"kind\":%s,\"resource\":\"sram\",\"dur\":%s}"
      (J.quote name) (J.quote kind) (g dur)
  in
  (* Waste in capacity-seconds: byte-seconds normalized by the chip's
     total SRAM, so segment durations live on the makespan's scale and
     Tracediff's threshold (a fraction of the old total) is meaningful. *)
  let segments =
    List.filteri (fun i _ -> i < top) rep.waste_rows
    |> List.map (fun row ->
           seg row.w_name "wasted-residency" ((row.w_pre +. row.w_post) /. cap_cores))
  in
  let segments =
    segments
    @ [
        seg "high_water" "occupancy"
          (rep.dyn_high_water /. Float.max 1e-12 rep.capacity *. rep.total);
      ]
  in
  let buffers =
    List.stable_sort
      (fun (a : Rd.buffer) b -> compare (b.Rd.bytes, a.Rd.op) (a.Rd.bytes, b.Rd.op))
      rep.ledger.Rd.buffers
    |> List.filteri (fun i _ -> i < top)
    |> List.map (fun (b : Rd.buffer) ->
           Printf.sprintf
             "{\"op\":%d,\"name\":%s,\"kind\":%s,\"bytes\":%s,\"cores\":%d,\"alloc_step\":%d,\"first_use\":%d,\"last_use\":%d,\"free_step\":%d}"
             b.Rd.op (J.quote b.Rd.name)
             (J.quote (Rd.kind_name b.Rd.kind))
             (g b.Rd.bytes) b.Rd.cores b.Rd.alloc_step b.Rd.first_use
             b.Rd.last_use b.Rd.free_step)
  in
  let hbm =
    List.stable_sort
      (fun a b -> compare (b.Rd.h_bytes, a.Rd.h_op) (a.Rd.h_bytes, b.Rd.h_op))
      rep.ledger.Rd.hbm
    |> List.filteri (fun i _ -> i < top)
    |> List.map (fun h ->
           Printf.sprintf
             "{\"op\":%d,\"name\":%s,\"bytes\":%s,\"moves\":%d,\"reuse_distance\":%d}"
             h.Rd.h_op (J.quote h.Rd.h_name) (g h.Rd.h_bytes) h.Rd.h_moves
             h.Rd.h_reuse_distance)
  in
  String.concat ""
    [
      "{";
      Printf.sprintf "\"model\":%s," (J.quote rep.model);
      (* Tracediff-comparable core: total + segments *)
      Printf.sprintf "\"total\":%s,\"dominant\":\"sram\"," (g rep.total);
      Printf.sprintf "\"resource_seconds\":{\"sram\":%s},"
        (g ((rep.pre_waste +. rep.post_waste) /. cap_cores));
      Printf.sprintf "\"segments\":[%s]," (String.concat "," segments);
      (* Full memory payload *)
      Printf.sprintf "\"capacity_bytes\":%s,\"cores\":%d," (g rep.capacity)
        rep.cores;
      Printf.sprintf
        "\"dyn_high_water_bytes\":%s,\"static_high_water_bytes\":%s,\"static_high_water_step\":%d,"
        (g rep.dyn_high_water) (g rep.static_high_water)
        rep.static_high_water_step;
      Printf.sprintf "\"chip_peak_bytes\":%s,\"utilization\":%s,"
        (g rep.chip_peak)
        (g (rep.dyn_high_water /. Float.max 1e-12 rep.capacity));
      Printf.sprintf
        "\"pre_use_waste_byte_seconds\":%s,\"post_use_waste_byte_seconds\":%s,"
        (g rep.pre_waste) (g rep.post_waste);
      Printf.sprintf "\"buffers\":[%s]," (String.concat "," buffers);
      Printf.sprintf "\"hbm\":[%s]," (String.concat "," hbm);
      Printf.sprintf "\"series\":%s"
        (Ts.to_json rep.series ~horizon:rep.total ());
      "}";
    ]

(* ---- Perfetto counter tracks ------------------------------------------ *)

(* Distinct from the device timeline (pid 1), serving lanes (pid 7) and
   generic Timeseries counters (pid 9). *)
let mem_pid = 8

let chrome_counter_events rep =
  let capacity_track =
    (* A flat capacity line so the occupancy tracks read against it. *)
    List.map
      (fun ts ->
        Elk_obs.Chrome.counter_event ~pid:mem_pid ~name:"sram_capacity_bytes"
          ~ts ~value:rep.capacity ())
      [ 0.; rep.total ]
  in
  capacity_track
  @ List.concat_map
      (fun name ->
        Ts.chrome_counter_events rep.series ~horizon:rep.total ~pid:mem_pid
          name)
      series_names
