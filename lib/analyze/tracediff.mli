(** Run-to-run comparison of critical-path snapshots.

    Consumes two [elk critpath --json-out] documents
    ({!Elk_sim.Critpath.to_json}) and answers "what got slower, and on
    which resource": makespan delta, per-resource critical-seconds
    deltas, and per-segment deltas keyed by (operator name, kind,
    resource) — individual critical segments are not stable run to run,
    so segments aggregate by that key before diffing.  Keys present in
    only one snapshot diff against zero.

    Regressions are gated on one absolute yardstick: an entry (or the
    makespan itself) regresses when it grows by more than
    [threshold × old makespan].  [elk trace diff] maps {!regressed} to
    its exit code, so CI can compare a fresh snapshot against the
    committed [BENCH_critpath.json] baseline. *)

type entry = { key : string; v_old : float; v_new : float }

val delta : entry -> float
(** [v_new - v_old]; positive = slower. *)

type t = {
  total_old : float;
  total_new : float;
  dominant_old : string;
  dominant_new : string;
  resources : entry list;  (** per-resource critical seconds, old order. *)
  segments : entry list;
      (** per (op name, kind, resource) critical seconds; old-snapshot
          order with new-only keys appended. *)
}

val diff : old_json:string -> new_json:string -> (t, string) result
(** Parse and join two snapshot documents; the error says which side is
    unreadable and why. *)

val regressed_entries : threshold:float -> t -> entry list
(** Resource and segment entries that grew past [threshold × old total]. *)

val regressed : threshold:float -> t -> bool
(** True when the makespan or any entry regressed past the threshold.
    Identical snapshots never regress (all deltas are zero). *)

val tables : ?top:int -> t -> Elk_util.Table.t list
(** Text rendering: makespan/dominant header with per-resource deltas,
    and the [top] (default 12) largest segment deltas by magnitude. *)

val print : ?top:int -> t -> unit

val to_json : threshold:float -> t -> string
(** The diff as one JSON document: totals, dominants, the threshold, the
    regression verdict, the named regressed entries, and the full
    per-resource / per-segment delta lists. *)
