(* JSON escaping is shared with the Elk_obs exporters (Elk_obs.Jsonx): the
   old local escaper missed control characters, so an operator name with a
   tab or carriage return produced invalid JSON. *)

let event ~name ~tid ~start ~dur ~args =
  Elk_obs.Chrome.complete_event ~tid ~name ~cat:"elk" ~start ~dur ~args ()

let phases (o : Sim.op_trace) =
  [
    ("distribute", o.Sim.exe_start, o.Sim.dist_end -. o.Sim.exe_start);
    ("compute", o.Sim.dist_end, o.Sim.compute_end -. o.Sim.dist_end);
    ("exchange", o.Sim.compute_end, o.Sim.exe_end -. o.Sim.compute_end);
  ]
  |> List.filter (fun (_, _, d) -> d > 0.)

let chrome_events graph (r : Sim.result) =
  let name i =
    (Elk_model.Graph.get graph i).Elk_model.Graph.op.Elk_tensor.Opspec.name
  in
  let acc = ref [] in
  Array.iteri
    (fun i (o : Sim.op_trace) ->
      if o.Sim.pre_end > o.Sim.pre_start then
        acc :=
          event
            ~name:(Printf.sprintf "preload %s" (name i))
            ~tid:1 ~start:o.Sim.pre_start
            ~dur:(o.Sim.pre_end -. o.Sim.pre_start)
            ~args:[ ("hbm_bytes", Printf.sprintf "%.0f" o.Sim.device_bytes) ]
          :: !acc;
      List.iter
        (fun (phase, start, dur) ->
          acc :=
            event
              ~name:(Printf.sprintf "%s %s" phase (name i))
              ~tid:2 ~start ~dur ~args:[]
            :: !acc)
        (phases o))
    r.Sim.per_op;
  List.rev !acc

let chrome_meta =
  [
    Elk_obs.Chrome.thread_name ~pid:1 ~tid:1 "HBM preload";
    Elk_obs.Chrome.thread_name ~pid:1 ~tid:2 "on-chip execute";
  ]

let to_chrome_json graph r =
  Elk_obs.Chrome.wrap (chrome_meta @ chrome_events graph r)

let write_chrome_json ~path graph r =
  Elk_obs.Chrome.write ~path (chrome_meta @ chrome_events graph r)

let event_count (r : Sim.result) =
  Array.fold_left
    (fun a (o : Sim.op_trace) ->
      a + (if o.Sim.pre_end > o.Sim.pre_start then 1 else 0) + List.length (phases o))
    0 r.Sim.per_op
