(* JSON escaping is shared with the Elk_obs exporters (Elk_obs.Jsonx): the
   old local escaper missed control characters, so an operator name with a
   tab or carriage return produced invalid JSON. *)

let event ~name ~tid ~start ~dur ~args =
  Elk_obs.Chrome.complete_event ~tid ~name ~cat:"elk" ~start ~dur ~args ()

let phases (o : Sim.op_trace) =
  [
    ("distribute", o.Sim.exe_start, o.Sim.dist_end -. o.Sim.exe_start);
    ("compute", o.Sim.dist_end, o.Sim.compute_end -. o.Sim.dist_end);
    ("exchange", o.Sim.compute_end, o.Sim.exe_end -. o.Sim.compute_end);
  ]
  |> List.filter (fun (_, _, d) -> d > 0.)

let chrome_events graph (r : Sim.result) =
  let name i =
    (Elk_model.Graph.get graph i).Elk_model.Graph.op.Elk_tensor.Opspec.name
  in
  let acc = ref [] in
  Array.iteri
    (fun i (o : Sim.op_trace) ->
      if o.Sim.pre_end > o.Sim.pre_start then
        acc :=
          event
            ~name:(Printf.sprintf "preload %s" (name i))
            ~tid:1 ~start:o.Sim.pre_start
            ~dur:(o.Sim.pre_end -. o.Sim.pre_start)
            ~args:[ ("hbm_bytes", Printf.sprintf "%.0f" o.Sim.device_bytes) ]
          :: !acc;
      List.iter
        (fun (phase, start, dur) ->
          acc :=
            event
              ~name:(Printf.sprintf "%s %s" phase (name i))
              ~tid:2 ~start ~dur ~args:[]
            :: !acc)
        (phases o))
    r.Sim.per_op;
  List.rev !acc

(* Flow arrows along the causal critical path.  Each event maps into the
   slice that [chrome_events] renders it inside: preload-side kinds live
   in the tid-1 "preload" slice, execute phases in their tid-2 phase
   slice.  Consecutive chain events in the same slice (HBM read and
   delivery of one preload) need no arrow. *)
let track_of = function
  | Critpath.Preload_issue | Critpath.Hbm_read | Critpath.Preload_deliver -> 1
  | Critpath.Distribute | Critpath.Tile_compute | Critpath.Exchange -> 2
  | Critpath.Sched_gap -> 2

let same_slice (a : Critpath.event) (b : Critpath.event) =
  a.Critpath.op = b.Critpath.op && track_of a.Critpath.kind = 1
  && track_of b.Critpath.kind = 1

let flow_events (s : Critpath.summary) =
  let ev i = s.Critpath.events.(i) in
  let rec go acc id = function
    | a :: (b :: _ as rest) ->
        let pa = ev a and pb = ev b in
        let acc =
          if same_slice pa pb then acc
          else
            Elk_obs.Chrome.flow_end ~tid:(track_of pb.Critpath.kind)
              ~name:"critical-path" ~id ~ts:pb.Critpath.t_start ()
            :: Elk_obs.Chrome.flow_start
                 ~tid:(track_of pa.Critpath.kind)
                 ~name:"critical-path" ~id ~ts:pa.Critpath.t_end ()
            :: acc
        in
        go acc (id + 1) rest
    | _ -> List.rev acc
  in
  go [] 1 s.Critpath.crit_ids

let chrome_meta =
  [
    Elk_obs.Chrome.thread_name ~pid:1 ~tid:1 "HBM preload";
    Elk_obs.Chrome.thread_name ~pid:1 ~tid:2 "on-chip execute";
  ]

let to_chrome_json graph r =
  Elk_obs.Chrome.wrap (chrome_meta @ chrome_events graph r)

let write_chrome_json ~path graph r =
  Elk_obs.Chrome.write ~path (chrome_meta @ chrome_events graph r)

let event_count (r : Sim.result) =
  Array.fold_left
    (fun a (o : Sim.op_trace) ->
      a + (if o.Sim.pre_end > o.Sim.pre_start then 1 else 0) + List.length (phases o))
    0 r.Sim.per_op
