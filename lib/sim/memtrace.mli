(** Dynamic SRAM-residency recording for the simulator event loop.

    One record per operator captures the four timestamps bounding its
    buffers' residency — preload reserve (issue gate), delivery, first
    use (execute start) and release (execute end) — plus the byte sizes
    the schedule fixed.  Per-core occupancy timelines, high-water marks
    and wasted-residency integrals are all derived on demand, so
    recording is a handful of float stores per operator; like
    {!Critpath} event recording it is pure bookkeeping, never read back
    into any timing computation (the cram suite checks simulated output
    is byte-identical with recording on and off).

    Core layout mirrors the device model: preload buffers land on every
    core, execute footprints occupy cores [0 .. cores_used-1] — so core
    0's occupancy is the pointwise per-core maximum. *)

type op_mem = {
  mutable m_reserve : float;  (** preload issue gate. *)
  mutable m_deliver : float;  (** preload delivery completes. *)
  mutable m_first_use : float;  (** execute start. *)
  mutable m_release : float;  (** execute end (after exchange). *)
  mutable m_tail_start : float;  (** compute end: last tile-compute use. *)
  mutable m_preload_bytes : float;  (** per-core, on every core. *)
  mutable m_exec_bytes : float;  (** per-core, on the cores used. *)
  mutable m_exec_cores : int;
}

type t

val create : cores:int -> ops:int -> t
val cores : t -> int
val num_ops : t -> int
val op_mem : t -> int -> op_mem

val record_preload :
  t -> op:int -> reserve:float -> deliver:float -> bytes:float -> unit

val record_execute :
  t ->
  op:int ->
  first_use:float ->
  tail_start:float ->
  release:float ->
  bytes:float ->
  cores:int ->
  unit

type change =
  | Reserve  (** preload bytes reserved at the issue gate. *)
  | Convert  (** preload buffer consumed as the execute starts. *)
  | Hold  (** execute footprint lands on the cores used. *)
  | Release  (** execute footprint freed at execute end. *)

type sample = {
  s_t : float;
  s_op : int;
  s_change : change;
  s_delta : float;  (** per-core byte delta on each affected core. *)
  s_cores : int;  (** cores [0 .. s_cores-1] are affected. *)
}

val samples : t -> sample array
(** All occupancy change points, chronologically sorted; ties keep
    per-op emission order, so derived series are deterministic. *)

val occupancy : t -> core:int -> (float * float) list
(** One core's occupancy change points [(time, per-core bytes)],
    duplicate times collapsed.  Raises [Invalid_argument] on a bad core
    index. *)

val chip_occupancy : t -> (float * float) list
(** Aggregate occupancy across all cores, in total bytes. *)

val core_high_water : t -> int -> float
val high_water : t -> float
(** Max per-core occupancy over time = core 0's high water. *)

val chip_high_water : t -> float

val pre_use_waste : t -> int -> float
(** Byte-seconds the operator's preload buffer sits delivered but
    unused (delivery to first use), summed over all cores. *)

val post_use_waste : t -> int -> float
(** Byte-seconds the execute footprint stays resident after its last
    tile-compute use (the exchange/reduction tail). *)

val total_pre_use_waste : t -> float
val total_post_use_waste : t -> float
