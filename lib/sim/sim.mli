(** Event-driven ICCA chip simulator (paper §5, "Simulation framework").

    Interprets a compiled {!Elk.Program} under the device rules of §4.5 on
    a flow-level model of one chip: per-core compute pipelines with
    deterministic per-core skew, per-link reservations (injection/ejection
    ports on the all-to-all fabric; directed edges and boundary HBM entry
    strips on the mesh), and a channel/bank-state HBM device
    ({!Elk_hbm.Hbm}) with tensors placed sequentially, exactly as the
    paper's emulator places them.

    Each preload reads the operator's HBM bytes (advancing the HBM device
    state) and delivers every core's preload-space bytes from its
    controller over the interconnect; each execute runs the
    data-distribution phase (ring transfers from sharing-group peers),
    the per-core tile computation, and the exchange/reduction phase.
    Preloads queue behind earlier preloads and behind every earlier
    [execute] in program order; an [execute] waits for the previous
    execute and for its own preload — rules (1)-(3) of §4.5.

    Interconnect contention is emergent: preload deliveries reserve the
    same links that distribution and exchange transfers use, so overlap
    shows up as queuing delay, which the simulator accounts into the
    [interconnect] breakdown bucket (Fig 18a, Fig 20). *)

type op_trace = {
  pre_start : float;
  pre_end : float;
  exe_start : float;
  dist_end : float;  (** end of the data-distribution phase. *)
  compute_end : float;
  exe_end : float;  (** after the exchange/reduction phase. *)
  device_bytes : float;
  inject_bytes : float;
  dist_bytes : float;  (** total distribution bytes (all cores). *)
  exchange_bytes : float;  (** total exchange bytes (all cores). *)
}

type result = {
  total : float;
  bd : Elk.Timeline.breakdown;
  hbm_util : float;
  noc_util : float;
  noc_util_split : float * float;
      (** (inter-core, preload) components of [noc_util] — the stacked
          bars of Fig 18(c). *)
  intercore_volume : float;
  inject_volume : float;
  hbm_device_volume : float;
  achieved_flops : float;
  per_op : op_trace array;
  hbm_requests : int;  (** HBM device requests issued. *)
  perf : Perfcore.t;
      (** per-core bucket attribution, per-operator per-resource
          attribution, and HBM/NoC bandwidth-over-time series collected
          by the event loop.  [hbm_util]/[noc_util] are the time-averaged
          scalars derivable from the series. *)
  events : Critpath.event array option;
      (** causal event DAG, recorded only when {!run} is called with
          [~events:true] (or [ELK_SIM_EVENTS=1]); [None] otherwise.
          Feed to {!Critpath.extract} for the critical path. *)
  mem : Memtrace.t option;
      (** SRAM-residency record, only when {!run} is called with
          [~mem:true] (or [ELK_SIM_MEM=1]); [None] otherwise.  Feed to
          {!Elk_analyze.Memprof} for occupancy timelines and wasted
          residency. *)
  noc : Noctrace.t option;
      (** per-link interconnect record, only when {!run} is called with
          [~noc:true] (or [ELK_SIM_NOC=1]); [None] otherwise.  Feed to
          {!Elk_analyze.Nocprof} for per-link utilization timelines and
          congestion profiles. *)
}

val run :
  ?skew:float ->
  ?events:bool ->
  ?mem:bool ->
  ?noc:bool ->
  Elk_partition.Partition.ctx ->
  Elk.Schedule.t ->
  result
(** Simulate one chip executing a schedule.  [skew] (default 0.02) is the
    relative deterministic per-core compute-time perturbation.  [events]
    (default: the [ELK_SIM_EVENTS] env var, off otherwise) turns on
    causal event recording, [mem] (default: [ELK_SIM_MEM]) turns on
    SRAM-residency recording, and [noc] (default: [ELK_SIM_NOC]) turns
    on per-link interconnect recording; all three are pure bookkeeping —
    recorded times are never read back, so the simulated timeline is
    identical either way.  Raises [Invalid_argument] if the schedule
    fails validation. *)

val compare_with_timeline :
  Elk_partition.Partition.ctx -> Elk.Schedule.t -> float
(** Relative difference between the simulated and the analytic makespan,
    [|sim - analytic| / sim] — the validation the paper performs between
    its simulator and emulator. *)
