type buckets = {
  mutable compute : float;
  mutable exchange : float;
  mutable preload_wait : float;
  mutable port : float;
  mutable idle : float;
}

type op_attrib = {
  mutable a_hbm : float;
  mutable a_interconnect : float;
  mutable a_compute : float;
  mutable a_port : float;
}

type t = {
  cores : int;
  per_core : buckets array;
  per_op : op_attrib array;
  hbm_series : Elk_util.Series.t;
  noc_series : Elk_util.Series.t;
  core_busy : Elk_util.Series.t array;
}

let zero_buckets () =
  { compute = 0.; exchange = 0.; preload_wait = 0.; port = 0.; idle = 0. }

let zero_attrib () = { a_hbm = 0.; a_interconnect = 0.; a_compute = 0.; a_port = 0. }

let create ~cores ~ops =
  {
    cores;
    per_core = Array.init cores (fun _ -> zero_buckets ());
    per_op = Array.init ops (fun _ -> zero_attrib ());
    hbm_series = Elk_util.Series.create ();
    noc_series = Elk_util.Series.create ();
    core_busy = Array.init cores (fun _ -> Elk_util.Series.create ());
  }

let bucket_sum b = b.compute +. b.exchange +. b.preload_wait +. b.port +. b.idle
let busy b = b.compute +. b.exchange +. b.port
let attrib_sum a = a.a_hbm +. a.a_interconnect +. a.a_compute +. a.a_port

let imbalance t =
  let n = Array.length t.per_core in
  if n = 0 then 0.
  else begin
    let mx = ref 0. and sum = ref 0. in
    Array.iter
      (fun b ->
        let v = busy b in
        if v > !mx then mx := v;
        sum := !sum +. v)
      t.per_core;
    let mean = !sum /. float_of_int n in
    if mean <= 0. then 0. else !mx /. mean
  end

let rel_err a b =
  let scale = Float.max (Float.abs a) (Float.abs b) in
  if scale <= 0. then 0. else Float.abs (a -. b) /. scale

let check t ~total =
  let bad_core = ref None in
  Array.iteri
    (fun c b ->
      if !bad_core = None && rel_err (bucket_sum b) total > 1e-6 then
        bad_core := Some (c, bucket_sum b))
    t.per_core;
  match !bad_core with
  | Some (c, s) ->
      Error
        (Printf.sprintf "core %d: bucket sum %.9g != makespan %.9g (rel %.3g)" c s
           total (rel_err s total))
  | None ->
      let op_sum = Array.fold_left (fun a o -> a +. attrib_sum o) 0. t.per_op in
      if rel_err op_sum total > 1e-6 then
        Error
          (Printf.sprintf "per-op attribution sum %.9g != makespan %.9g (rel %.3g)"
             op_sum total (rel_err op_sum total))
      else Ok ()
