(** Causal event tracing and critical-path extraction for simulation runs.

    The simulator's device rules (§4.5) make every event's start time a
    [max] over the completion times of the events that gate it: a preload
    waits for every earlier execute and for the previous preload, an
    execute waits for the previous execute and for its own preload, and
    the three execution phases chain back to back.  When event recording
    is on ({!Sim.run} [~events:true]), the event loop emits one {!event}
    per simulated activity and records its {e causal parent} — the event
    whose completion actually enabled it (the argmax of the gate) — plus
    the full dependency list, forming a DAG over the run.

    This module consumes that DAG:

    - {!extract} walks backward from the terminal event to the root,
      producing the {e critical path}: a chain of events whose durations
      tile [0, makespan] exactly (any gap — which the gating rules make
      impossible in practice — is kept as an explicit scheduler-wait
      segment so the identity holds by construction);
    - each critical event is split into classified {!segment}s:
      HBM device time, interconnect transfer time, tile compute, port /
      link queuing, or scheduler-induced wait;
    - a forward/backward pass over {e all} dependency edges (not just
      causal parents) computes per-event and per-operator {e slack}: how
      long an event can be delayed without moving the makespan.  Events
      with zero slack are exactly the ones a perf PR must shorten.

    The classification follows the same convention as
    [Elk_sim.Perfcore] / [Elk_analyze]: HBM is the device-occupancy
    floor of a preload, delivery beyond that floor and all distribution /
    exchange communication is interconnect, and only queuing behind a
    busy link or SRAM port counts as port time — so the dominant
    critical resource is directly comparable with the dominant resource
    of the per-operator attribution. *)

type kind =
  | Preload_issue  (** zero-byte preload: a pure sequencing point. *)
  | Hbm_read  (** HBM device occupancy of a preload read. *)
  | Preload_deliver  (** controller-to-core delivery of preloaded bytes. *)
  | Distribute  (** preload-state to execute-state data distribution. *)
  | Tile_compute  (** per-core tile computation (slowest core binds). *)
  | Exchange  (** exchange / reduction of shared activations. *)
  | Sched_gap
      (** not emitted by the simulator: synthesized by {!extract} when a
          critical event starts after its parent ends, so the path still
          tiles the makespan. *)

val kind_name : kind -> string

type event = {
  id : int;  (** dense, in emission order; deps always have smaller ids. *)
  op : int;  (** operator the event belongs to. *)
  kind : kind;
  t_start : float;
  t_end : float;
  parent : int option;
      (** causal parent: the event whose completion enabled this one
          (the binding argument of the start-time [max]).  [None] only
          for the root event. *)
  deps : int list;  (** every gating event, parent included. *)
  port_wait : float;
      (** queuing delay inside this event (transfer waited on a busy
          link/port before moving bytes). *)
}

val reaches : event array -> src:int -> dst:int -> bool
(** Is there a chain of gating ([deps]) edges from event [src] to event
    [dst]?  Used by the lint cross-check: a statically flagged race pair
    must be unordered (neither reaches the other) in the recorded causal
    DAG too. *)

val find_event : event array -> op:int -> kind:kind -> int option
(** First (lowest-id) event of [op] with the given [kind], if any. *)

type resource = Hbm | Interconnect | Compute | Port | Wait

val resource_name : resource -> string
(** ["hbm"], ["interconnect"], ["compute"], ["port"], ["wait"]. *)

val all_resources : resource list

type segment = {
  s_op : int;  (** -1 for synthesized scheduler-wait gaps. *)
  s_kind : kind;
  s_res : resource;
  s_start : float;
  s_dur : float;
}

type summary = {
  total : float;  (** makespan = the terminal event's end time. *)
  events : event array;
  crit_ids : int list;  (** causal chain, root first. *)
  segments : segment list;
      (** classified critical segments in time order; durations sum to
          [total] within float error. *)
  slack : float array;  (** per event id; 0 on the critical path. *)
  op_slack : float array;
      (** per operator: min slack over its events — how far the whole
          operator can slip without moving the makespan. *)
  op_crit : float array;  (** per operator: critical seconds. *)
  resource_seconds : (resource * float) list;
      (** critical seconds per resource; sums to [total]. *)
}

val extract : event array -> summary
(** Build the critical path, classified segments, and slack from a
    recorded event DAG.  Raises [Invalid_argument] on an empty array. *)

val check : event array -> total:float -> (unit, string) result
(** Verify the causal-DAG invariants the test suite relies on: exactly
    one root (the first event); every other event has a parent; parents
    complete no later than their children start (1e-9 tolerance);
    the critical-path length equals [total] within 1e-6 relative; and
    every event's slack is non-negative. *)

val dominant : summary -> resource
(** Largest of the four real resources (ties read compute-first, the
    same convention as [Elk_analyze.Analyze.classify]); [Wait] never
    dominates. *)

val blame : ?top:int -> summary -> (int * float * (resource * float) list) list
(** Top-[top] (default 10) operators by critical seconds:
    [(op, crit_seconds, per-resource split)]. *)

val tables :
  ?top:int -> ?top_segments:int -> Elk_model.Graph.t -> summary -> Elk_util.Table.t list
(** Text rendering: per-resource summary, the [top_segments] (default
    12) longest critical segments, and the [top] (default 10) operator
    blame/slack report. *)

val print : ?top:int -> ?top_segments:int -> Elk_model.Graph.t -> summary -> unit

val to_json : Elk_model.Graph.t -> summary -> string
(** One JSON document: makespan, per-resource critical seconds, the
    dominant resource, every critical segment (operator name, kind,
    resource, start, duration), and the per-operator slack/critical
    table.  This is the snapshot format [elk trace diff] consumes. *)
