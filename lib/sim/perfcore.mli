(** Per-core and per-operator resource attribution collected during a
    simulation run (the diagnostic substrate behind Fig 18(a)'s four-way
    breakdown, the per-link utilization of Fig 18(c)/21, and the HBM
    bandwidth traces of Figs 6-8).

    The simulator event loop feeds one {!t} per run as it books transfers
    and compute: every core's share of the makespan is decomposed into
    five buckets (compute, inter-core exchange, preload stall, port
    contention, idle), every operator's critical-path span is attributed
    to the resource that bound it, and HBM / interconnect traffic is
    recorded as time series so bandwidth {e over time} replaces the
    chip-wide scalar means (which remain derivable from the series).

    The per-core buckets tile the makespan exactly: for every core the
    bucket sum equals the simulated total.  {!check} verifies this, and
    the test suite runs it on every topology so that attribution leaks
    surface whenever the event loop changes. *)

type buckets = {
  mutable compute : float;  (** running the operator's tile. *)
  mutable exchange : float;
      (** moving data core-to-core (distribution + exchange phases),
          excluding queuing. *)
  mutable preload_wait : float;
      (** execution gated on the operator's own preload (§4.5 rule 3). *)
  mutable port : float;  (** queued behind a busy link or SRAM port. *)
  mutable idle : float;
      (** unused by the operator's plan, or waiting on a slower peer. *)
}

type op_attrib = {
  mutable a_hbm : float;
      (** preload-stall share caused by the HBM device roofline. *)
  mutable a_interconnect : float;
      (** preload delivery beyond the HBM floor, plus distribution and
          exchange communication on the critical path. *)
  mutable a_compute : float;  (** tile-compute span (slowest core). *)
  mutable a_port : float;  (** critical-path queuing delay. *)
}

type t = {
  cores : int;
  per_core : buckets array;  (** indexed by core id. *)
  per_op : op_attrib array;  (** indexed by operator id. *)
  hbm_series : Elk_util.Series.t;
      (** HBM device bytes over the read intervals — bandwidth over time. *)
  noc_series : Elk_util.Series.t;
      (** interconnect bytes (preload injection + distribution +
          exchange) over their transfer intervals. *)
  core_busy : Elk_util.Series.t array;
      (** per-core busy (compute + communication) time over time; feeds
          the per-core Perfetto counter tracks. *)
}

val create : cores:int -> ops:int -> t
(** Fresh zeroed accumulators for a run over [ops] operators. *)

val zero_buckets : unit -> buckets
val zero_attrib : unit -> op_attrib

val bucket_sum : buckets -> float
(** Sum of all five buckets — the core's span of the makespan. *)

val busy : buckets -> float
(** Time the core did useful or unavoidable work: compute + exchange +
    port (queuing holds the port busy; only [idle] and [preload_wait]
    are slack). *)

val attrib_sum : op_attrib -> float
(** The operator's critical-path span (preload stall + all three
    execution phases). *)

val imbalance : t -> float
(** Load imbalance: max over cores of {!busy} divided by the mean
    (1.0 = perfectly balanced; 0 when nothing ran). *)

val check : t -> total:float -> (unit, string) result
(** Verify that every core's {!bucket_sum} equals [total] within 1e-6
    relative tolerance and that the per-operator attributions sum to
    [total] as well.  [Error] names the first offending core. *)
