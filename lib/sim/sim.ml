open Elk_arch
module P = Elk_partition.Partition
module N = Elk_noc.Noc

type op_trace = {
  pre_start : float;
  pre_end : float;
  exe_start : float;
  dist_end : float;
  compute_end : float;
  exe_end : float;
  device_bytes : float;
  inject_bytes : float;
  dist_bytes : float;
  exchange_bytes : float;
}

type result = {
  total : float;
  bd : Elk.Timeline.breakdown;
  hbm_util : float;
  noc_util : float;
  noc_util_split : float * float;
  intercore_volume : float;
  inject_volume : float;
  hbm_device_volume : float;
  achieved_flops : float;
  per_op : op_trace array;
  hbm_requests : int;
  perf : Perfcore.t;
  events : Critpath.event array option;
  mem : Memtrace.t option;
  noc : Noctrace.t option;
}

(* Per-link reservation state, split into two traffic classes sharing each
   link as a fluid (the hardware interleaves HBM-preload packets with
   inter-core packets; an eager exclusive booking would let the preload
   chain starve execution transfers issued later in simulation order but
   earlier in time).  The preload class receives at most the share the HBM
   can sustain per core (capped at [max_preload_share]); execution-phase
   transfers run in the remaining capacity.  Controller ports belong to
   the preload class alone.  Each class books links exclusively within its
   own share (cut-through flow model): fan-out from one controller
   pipelines, a single receiver port serializes. *)
type fabric = {
  noc : N.t;
  share : float;  (** fraction of core-link capacity for this class. *)
  free : (N.link, float ref) Hashtbl.t;
  mutable link_volume : float;
      (** bytes x links traversed on core-side links (hop-weighted), for
          the per-link interconnect-utilization metric of Fig 18c/21. *)
}

let max_preload_share = 0.7

(* The preload class's fluid share of each link: bounded by what the HBM
   can feed, by a fairness cap, and by the schedule's actual average
   preload demand (with 2x headroom for burstiness) — a fat HBM that the
   model barely uses must not starve execution transfers. *)
let preload_share chip (s : Elk.Schedule.t) =
  let link_bw = chip.Arch.intercore_link.Arch.bandwidth in
  let cores = float_of_int chip.Arch.cores in
  let inject_total =
    Array.fold_left
      (fun a e -> a +. e.Elk.Schedule.popt.P.noc_inject_bytes)
      0. s.Elk.Schedule.entries
  in
  let exec_lb =
    Array.fold_left
      (fun a e -> a +. e.Elk.Schedule.dist_time +. e.Elk.Schedule.plan.P.exec_time)
      0. s.Elk.Schedule.entries
  in
  let device_total =
    Array.fold_left
      (fun a e -> a +. e.Elk.Schedule.popt.P.hbm_device_bytes)
      0. s.Elk.Schedule.entries
  in
  let t_lb = Float.max 1e-9 (Float.max exec_lb (device_total /. chip.Arch.hbm_bandwidth)) in
  match chip.Arch.topology with
  | Arch.Mesh2d { rows; cols } ->
      (* Mesh edges carry aggregated flows; demand per edge is
         hop-weighted. *)
      let edges = float_of_int (2 * ((rows * (cols - 1)) + (cols * (rows - 1)))) in
      let avg_hops = float_of_int (rows + cols) /. 3. in
      let demand = inject_total *. avg_hops /. (edges *. link_bw) /. t_lb in
      Float.max 0.05 (Float.min 0.5 (2. *. demand))
  | Arch.All_to_all | Arch.Clustered _ ->
      (* A core's inbound port sees at most its share of the HBM feed as
         preload traffic; on a clustered chip the shared L2 additionally
         serializes both classes via its own bookings. *)
      let r_pre = chip.Arch.hbm_bandwidth /. cores in
      let demand = inject_total /. cores /. link_bw /. t_lb in
      Float.max 0.05
        (Float.min (Float.min max_preload_share (r_pre /. link_bw)) (2. *. demand))

let fabric_of ~share noc = { noc; share; free = Hashtbl.create 1024; link_volume = 0. }

let link_free f l =
  match Hashtbl.find_opt f.free l with
  | Some r -> r
  | None ->
      let r = ref 0. in
      Hashtbl.add f.free l r;
      r

let effective_bw f l =
  let bw = N.link_bandwidth f.noc l in
  match l with
  | N.Port_out (N.Hbm _) -> bw (* controller ports carry only preload traffic *)
  | _ -> bw *. f.share

(* Returns (completion_time, queuing_delay).  [tr] mirrors the exact
   per-link reservations (and the transfer envelope) into a Noctrace
   record — pure bookkeeping, never read back into timing. *)
let transfer ?tr f ~src ~dst ~bytes ~not_before =
  if src = dst || bytes <= 0. then (not_before, 0.)
  else begin
    let route = N.route f.noc ~src ~dst in
    let start =
      List.fold_left (fun t l -> Float.max t !(link_free f l)) not_before route
    in
    let bottleneck =
      List.fold_left (fun bw l -> Float.min bw (effective_bw f l)) infinity route
    in
    List.iter
      (fun l ->
        (match l with
        | N.Port_out (N.Hbm _) -> ()
        | _ -> f.link_volume <- f.link_volume +. bytes);
        let r = link_free f l in
        r := start +. (bytes /. effective_bw f l))
      route;
    let latency = N.route_latency f.noc ~src ~dst in
    let finish = start +. latency +. (bytes /. bottleneck) in
    (match tr with
    | None -> ()
    | Some (nt, cls, op) ->
        List.iter
          (fun l ->
            Noctrace.record_booking nt ~cls ~op ~link:l ~bytes ~t_start:start
              ~t_end:(start +. (bytes /. effective_bw f l)))
          route;
        Noctrace.record_transfer nt ~cls ~op ~src ~dst ~bytes
          ~hops:(List.length route) ~wait:(start -. not_before) ~t_start:start
          ~t_end:finish);
    (finish, start -. not_before)
  end

(* Aggregate capacity of the core-side interconnect links: ports for the
   all-to-all fabric, directed edges plus boundary entry links for the
   mesh.  The utilization metric divides hop-weighted traffic by this. *)
let fabric_capacity chip =
  let link = chip.Arch.intercore_link.Arch.bandwidth in
  match chip.Arch.topology with
  | Arch.All_to_all -> 2. *. float_of_int chip.Arch.cores *. link
  | Arch.Clustered { l2_bandwidth; _ } ->
      (2. *. float_of_int chip.Arch.cores *. link) +. l2_bandwidth
  | Arch.Mesh2d { rows; cols } ->
      let edges = 2 * ((rows * (cols - 1)) + (cols * (rows - 1))) in
      let entries = 2 * cols in
      float_of_int (edges + entries) *. link

(* Deterministic per-(core, op) compute skew in [1-skew, 1+skew]. *)
let core_skew ~skew core op_id =
  let h = Hashtbl.hash (core, op_id, "skew") land 0xFFFF in
  1. -. skew +. (2. *. skew *. (float_of_int h /. 65535.))

(* Causal event recording (Critpath).  Pure bookkeeping appended beside
   the flow model: recording never reads back into any timing
   computation, so timelines are identical whether it is on or off (the
   cram suite checks this byte-for-byte).  Off by default; [ELK_SIM_EVENTS]
   forces it on for a whole process. *)
let default_events =
  match Sys.getenv_opt "ELK_SIM_EVENTS" with
  | Some ("1" | "true" | "on" | "yes") -> true
  | _ -> false

(* SRAM-residency recording (Memtrace) follows the same contract:
   off by default, zero work when off, never read back into timing. *)
let default_mem =
  match Sys.getenv_opt "ELK_SIM_MEM" with
  | Some ("1" | "true" | "on" | "yes") -> true
  | _ -> false

(* Per-link interconnect recording (Noctrace): same contract again. *)
let default_noc =
  match Sys.getenv_opt "ELK_SIM_NOC" with
  | Some ("1" | "true" | "on" | "yes") -> true
  | _ -> false

type recorder = {
  mutable log : Critpath.event list;  (* reverse emission order *)
  mutable n_events : int;
  mutable last_exec : int;  (* last execute-chain event id, -1 if none *)
  mutable last_pre : int;  (* last preload-chain event id, -1 if none *)
  pre_done : int array;  (* per-op id of the preload's final event *)
}

let emit rc ~op ~kind ~t_start ~t_end ~parent ~deps ~port_wait =
  let id = rc.n_events in
  rc.n_events <- id + 1;
  rc.log <-
    {
      Critpath.id; op; kind; t_start; t_end;
      parent = (if parent < 0 then None else Some parent);
      deps = List.sort_uniq compare (List.filter (fun d -> d >= 0) deps);
      port_wait;
    }
    :: rc.log;
  id

(* The causal parent of a gate [max a b]: the argument that bound it.
   Ties go to [on_b] (callers pass the data-dependency side there). *)
let binding ~a ~on_a ~b ~on_b = if on_b < 0 || (a > b && on_a >= 0) then on_a else on_b

let run_impl ~skew ~record ~record_mem ~record_noc ctx (s : Elk.Schedule.t) =
  (match Elk.Schedule.validate s with
  | Ok () -> ()
  | Error m -> invalid_arg ("Sim.run: invalid schedule: " ^ m));
  let chip = P.ctx_chip ctx in
  let noc = N.create chip in
  let pre_share = preload_share chip s in
  let fg_fabric = fabric_of ~share:(1. -. pre_share) noc in
  let pre_fabric = fabric_of ~share:pre_share noc in
  let hbm_dev = Elk_hbm.Hbm.create (Elk_hbm.Hbm.config_for_bandwidth chip.Arch.hbm_bandwidth) in
  let n = Elk.Schedule.num_ops s in
  let graph = s.Elk.Schedule.graph in
  (* Sequential tensor placement in HBM (paper §5). *)
  let offsets = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    offsets.(i) <- !acc;
    acc := !acc +. s.Elk.Schedule.entries.(i).Elk.Schedule.popt.P.hbm_device_bytes
  done;
  let program = Elk.Program.of_schedule s in
  let pre_start = Array.make n 0. and pre_end = Array.make n 0. in
  let exe_start = Array.make n 0. and exe_end = Array.make n 0. in
  let dist_end_arr = Array.make n 0. and compute_end_arr = Array.make n 0. in
  let perf = Perfcore.create ~cores:chip.Arch.cores ~ops:n in
  (* HBM device time of each operator's preload, for splitting the
     execute's preload stall between the HBM floor and delivery. *)
  let pre_hbm = Array.make n 0. in
  let exec_ready = ref 0. in
  let preload_free = ref 0. in
  let stall_interconnect = ref 0. in
  let stall_pre = ref 0. and stall_dist = ref 0. and stall_ex = ref 0. in
  (* Observability accumulators: issued-but-not-yet-executed preload queue
     depth, HBM device occupancy, and execute time lost waiting on its own
     preload.  Plain int/float updates — negligible next to the flow
     model — recorded into the metrics registry only when enabled. *)
  let pending = ref 0 and max_pending = ref 0 in
  let hbm_busy = ref 0. and preload_wait = ref 0. in
  let rc =
    if record then
      Some { log = []; n_events = 0; last_exec = -1; last_pre = -1;
             pre_done = Array.make n (-1) }
    else None
  in
  let mrec =
    if record_mem then Some (Memtrace.create ~cores:chip.Arch.cores ~ops:n)
    else None
  in
  let nrec = if record_noc then Some (Noctrace.create noc) else None in
  (* Tag for [transfer]'s recording hook: (recorder, class, op). *)
  let ntag cls op =
    match nrec with Some nt -> Some (nt, cls, op) | None -> None
  in
  let cores_of plan = plan.P.cores_used in
  Array.iter
    (fun instr ->
      match instr with
      | Elk.Program.Preload_async op ->
          let e = s.Elk.Schedule.entries.(op) in
          let popt = e.Elk.Schedule.popt in
          incr pending;
          if !pending > !max_pending then max_pending := !pending;
          (* Rule (1): every execute issued earlier blocks this preload;
             rule (2): preloads are sequential. *)
          let gate = Float.max !exec_ready !preload_free in
          (* Causal parent of the gate, resolved before any state below
             mutates: ties go to the preload chain (rule 2 is the tighter
             sequencing constraint at equal times). *)
          let pre_parent =
            match rc with
            | Some rc ->
                binding ~a:!exec_ready ~on_a:rc.last_exec ~b:!preload_free
                  ~on_b:rc.last_pre
            | None -> -1
          in
          if popt.P.hbm_device_bytes <= 0. then begin
            pre_start.(op) <- gate;
            pre_end.(op) <- gate;
            preload_free := gate;
            Option.iter
              (fun m ->
                Memtrace.record_preload m ~op ~reserve:gate ~deliver:gate
                  ~bytes:popt.P.preload_space)
              mrec;
            Option.iter
              (fun rc ->
                let id =
                  emit rc ~op ~kind:Critpath.Preload_issue ~t_start:gate ~t_end:gate
                    ~parent:pre_parent ~deps:[ rc.last_exec; rc.last_pre ]
                    ~port_wait:0.
                in
                rc.pre_done.(op) <- id;
                rc.last_pre <- id)
              rc
          end
          else begin
            let hbm_done =
              Elk_hbm.Hbm.read hbm_dev ~now:gate ~offset:offsets.(op)
                ~bytes:popt.P.hbm_device_bytes
            in
            hbm_busy := !hbm_busy +. (hbm_done -. gate);
            pre_hbm.(op) <- hbm_done -. gate;
            if hbm_done > gate then
              Elk_util.Series.add perf.Perfcore.hbm_series ~t_start:gate
                ~t_end:hbm_done ~volume:popt.P.hbm_device_bytes;
            (* Controllers stream to every core in parallel; each core
               receives its preload-space bytes through its own port.  On
               the all-to-all fabric the delivery is a fluid broadcast:
               each controller pushes its cores' chunks simultaneously, so
               the phase takes the max of the controller service time and
               the per-core inbound time.  On the mesh each core's chunk
               is routed hop by hop and aggregation on shared edges is
               captured by per-transfer bookings. *)
            let per_core = popt.P.noc_inject_bytes /. float_of_int chip.Arch.cores in
            let finish = ref hbm_done in
            let ideal = ref 0. in
            (match chip.Arch.topology with
            | Arch.All_to_all ->
                let nctrl = chip.Arch.hbm_controllers in
                for h = 0 to nctrl - 1 do
                  let ctrl_cores = (chip.Arch.cores + nctrl - 1 - h) / nctrl in
                  let ctrl_volume = per_core *. float_of_int ctrl_cores in
                  let out = link_free pre_fabric (N.Port_out (N.Hbm h)) in
                  let start = Float.max gate !out in
                  let ctrl_service =
                    ctrl_volume /. effective_bw pre_fabric (N.Port_out (N.Hbm h))
                  in
                  let inbound =
                    per_core /. effective_bw pre_fabric (N.Port_in (N.Core h))
                  in
                  out := start +. ctrl_service;
                  if per_core > 0. then
                    Option.iter
                      (fun nt ->
                        Noctrace.record_booking nt ~cls:Noctrace.Preload ~op
                          ~link:(N.Port_out (N.Hbm h)) ~bytes:ctrl_volume
                          ~t_start:start ~t_end:(start +. ctrl_service))
                      nrec;
                  for c = 0 to chip.Arch.cores - 1 do
                    if c mod nctrl = h then begin
                      let inp = link_free pre_fabric (N.Port_in (N.Core c)) in
                      let s = Float.max start !inp in
                      inp := s +. inbound;
                      pre_fabric.link_volume <- pre_fabric.link_volume +. per_core;
                      if per_core > 0. then
                        Option.iter
                          (fun nt ->
                            Noctrace.record_booking nt ~cls:Noctrace.Preload
                              ~op ~link:(N.Port_in (N.Core c)) ~bytes:per_core
                              ~t_start:s ~t_end:(s +. inbound);
                            Noctrace.record_transfer nt ~cls:Noctrace.Preload
                              ~op ~src:(N.Hbm h) ~dst:(N.Core c)
                              ~bytes:per_core ~hops:2 ~wait:(s -. gate)
                              ~t_start:s
                              ~t_end:
                                (s +. Float.max inbound ctrl_service
                                +. chip.Arch.intercore_link.Arch.latency))
                          nrec;
                      finish :=
                        Float.max !finish
                          (s +. Float.max inbound ctrl_service
                          +. chip.Arch.intercore_link.Arch.latency)
                    end
                  done;
                  ideal :=
                    Float.max !ideal (gate +. Float.max ctrl_service inbound)
                done
            | Arch.Mesh2d _ | Arch.Clustered _ ->
                for c = 0 to chip.Arch.cores - 1 do
                  let src = N.hbm_ctrl_for_core noc c in
                  let done_c, _wait =
                    transfer ?tr:(ntag Noctrace.Preload op) pre_fabric ~src
                      ~dst:(N.Core c) ~bytes:per_core ~not_before:gate
                  in
                  ideal :=
                    Float.max !ideal
                      (gate
                      +. (N.transfer_time noc ~src ~dst:(N.Core c) ~bytes:per_core
                         /. Float.max 1e-9 pre_share));
                  finish := Float.max !finish done_c
                done);
            let d = Float.max 0. (!finish -. Float.max !ideal hbm_done) in
            stall_pre := !stall_pre +. d;
            stall_interconnect := !stall_interconnect +. d;
            pre_start.(op) <- gate;
            pre_end.(op) <- !finish;
            if popt.P.noc_inject_bytes > 0. && !finish > gate then
              Elk_util.Series.add perf.Perfcore.noc_series ~t_start:gate
                ~t_end:!finish ~volume:popt.P.noc_inject_bytes;
            preload_free := !finish;
            Option.iter
              (fun m ->
                Memtrace.record_preload m ~op ~reserve:gate ~deliver:!finish
                  ~bytes:popt.P.preload_space)
              mrec;
            Option.iter
              (fun rc ->
                let read =
                  emit rc ~op ~kind:Critpath.Hbm_read ~t_start:gate ~t_end:hbm_done
                    ~parent:pre_parent ~deps:[ rc.last_exec; rc.last_pre ]
                    ~port_wait:0.
                in
                let deliver =
                  emit rc ~op ~kind:Critpath.Preload_deliver ~t_start:hbm_done
                    ~t_end:(Float.max hbm_done !finish) ~parent:read ~deps:[ read ]
                    ~port_wait:d
                in
                rc.pre_done.(op) <- deliver;
                rc.last_pre <- deliver)
              rc
          end
      | Elk.Program.Execute op ->
          let e = s.Elk.Schedule.entries.(op) in
          let plan = e.Elk.Schedule.plan in
          let node = Elk_model.Graph.get graph op in
          let prev_ready = !exec_ready in
          let start = Float.max !exec_ready pre_end.(op) in
          if !pending > 0 then decr pending;
          preload_wait := !preload_wait +. Float.max 0. (pre_end.(op) -. !exec_ready);
          let ncores = cores_of plan in
          (* Phase 1: data distribution (preload-state to execute-state),
             ring transfers from sharing-group peers. *)
          let dist_per_core = e.Elk.Schedule.popt.P.dist_bytes_per_core in
          let dist_end = ref start in
          let dist_done = Array.make (max 1 ncores) start in
          let dist_wait = Array.make (max 1 ncores) 0. in
          let dist_ideal =
            if dist_per_core > 0. then
              N.transfer_time noc ~src:(N.Core 0) ~dst:(N.Core (min 1 (chip.Arch.cores - 1)))
                ~bytes:dist_per_core
              /. (1. -. pre_share)
            else 0.
          in
          if dist_per_core > 0. then
            for c = 0 to ncores - 1 do
              let src = N.Core ((c + 1) mod ncores) in
              let done_c, wait_c =
                transfer ?tr:(ntag Noctrace.Distribute op) fg_fabric ~src
                  ~dst:(N.Core c) ~bytes:dist_per_core ~not_before:start
              in
              dist_done.(c) <- done_c;
              dist_wait.(c) <- wait_c;
              dist_end := Float.max !dist_end done_c
            done;
          let sd = Float.max 0. (!dist_end -. start -. dist_ideal) in
          stall_dist := !stall_dist +. sd;
          stall_interconnect := !stall_interconnect +. sd;
          (* Phase 2: per-core tile computation (slowest core binds). *)
          let t_tile =
            Elk_cost.Device.exec_time chip ~kind:node.Elk_model.Graph.op.Elk_tensor.Opspec.kind
              ~iter:plan.P.tile
          in
          let compute_end = ref !dist_end in
          for c = 0 to ncores - 1 do
            compute_end :=
              Float.max !compute_end (!dist_end +. (t_tile *. core_skew ~skew c op))
          done;
          (* Phase 3: exchange/reduction of shared activations and partial
             results. *)
          let ex_per_core = plan.P.exchange_bytes_per_core in
          let ex_end = ref !compute_end in
          let ex_done = Array.make (max 1 ncores) !compute_end in
          let ex_wait = Array.make (max 1 ncores) 0. in
          let ex_ideal =
            if ex_per_core > 0. then
              N.transfer_time noc ~src:(N.Core 0) ~dst:(N.Core (min 1 (chip.Arch.cores - 1)))
                ~bytes:ex_per_core
              /. (1. -. pre_share)
            else 0.
          in
          if ex_per_core > 0. then
            for c = 0 to ncores - 1 do
              let src = N.Core ((c + ncores - 1) mod ncores) in
              let done_c, wait_c =
                transfer ?tr:(ntag Noctrace.Exchange op) fg_fabric ~src
                  ~dst:(N.Core c) ~bytes:ex_per_core ~not_before:!compute_end
              in
              ex_done.(c) <- done_c;
              ex_wait.(c) <- wait_c;
              ex_end := Float.max !ex_end done_c
            done;
          let se = Float.max 0. (!ex_end -. !compute_end -. ex_ideal) in
          stall_ex := !stall_ex +. se;
          stall_interconnect := !stall_interconnect +. se;
          (* Resource attribution: decompose every core's share of
             [prev_ready, ex_end] into the five Perfcore buckets, and the
             operator's critical-path span into per-resource time.  The
             pieces are accumulated independently (not as remainders of
             the makespan), so Perfcore.check genuinely verifies that no
             time leaks when this loop changes. *)
          let gap = start -. prev_ready in
          let pre_len = pre_end.(op) -. pre_start.(op) in
          let hbm_frac = if pre_len > 0. then pre_hbm.(op) /. pre_len else 0. in
          let dist_len = !dist_end -. start in
          let compute_len = !compute_end -. !dist_end in
          let ex_len = !ex_end -. !compute_end in
          let max_wait w = Array.fold_left Float.max 0. w in
          let port_d = Float.min dist_len (if dist_per_core > 0. then max_wait dist_wait else 0.) in
          let port_e = Float.min ex_len (if ex_per_core > 0. then max_wait ex_wait else 0.) in
          let at = perf.Perfcore.per_op.(op) in
          at.Perfcore.a_hbm <- gap *. hbm_frac;
          at.Perfcore.a_interconnect <-
            (gap *. (1. -. hbm_frac)) +. (dist_len -. port_d) +. (ex_len -. port_e);
          at.Perfcore.a_compute <- compute_len;
          at.Perfcore.a_port <- port_d +. port_e;
          if dist_per_core > 0. && !dist_end > start then
            Elk_util.Series.add perf.Perfcore.noc_series ~t_start:start
              ~t_end:!dist_end
              ~volume:(dist_per_core *. float_of_int ncores);
          if ex_per_core > 0. && !ex_end > !compute_end then
            Elk_util.Series.add perf.Perfcore.noc_series ~t_start:!compute_end
              ~t_end:!ex_end
              ~volume:(ex_per_core *. float_of_int ncores);
          for c = 0 to chip.Arch.cores - 1 do
            let b = perf.Perfcore.per_core.(c) in
            b.Perfcore.preload_wait <- b.Perfcore.preload_wait +. gap;
            if c < ncores then begin
              if dist_per_core > 0. then begin
                let comm = Float.max 0. (dist_done.(c) -. start -. dist_wait.(c)) in
                b.Perfcore.exchange <- b.Perfcore.exchange +. comm;
                b.Perfcore.port <- b.Perfcore.port +. dist_wait.(c);
                b.Perfcore.idle <- b.Perfcore.idle +. (!dist_end -. dist_done.(c));
                if comm > 0. then
                  Elk_util.Series.add perf.Perfcore.core_busy.(c)
                    ~t_start:(dist_done.(c) -. comm) ~t_end:dist_done.(c) ~volume:comm
              end;
              let t_c = t_tile *. core_skew ~skew c op in
              b.Perfcore.compute <- b.Perfcore.compute +. t_c;
              b.Perfcore.idle <- b.Perfcore.idle +. (compute_len -. t_c);
              if t_c > 0. then
                Elk_util.Series.add perf.Perfcore.core_busy.(c) ~t_start:!dist_end
                  ~t_end:(!dist_end +. t_c) ~volume:t_c;
              if ex_per_core > 0. then begin
                let comm = Float.max 0. (ex_done.(c) -. !compute_end -. ex_wait.(c)) in
                b.Perfcore.exchange <- b.Perfcore.exchange +. comm;
                b.Perfcore.port <- b.Perfcore.port +. ex_wait.(c);
                b.Perfcore.idle <- b.Perfcore.idle +. (!ex_end -. ex_done.(c));
                if comm > 0. then
                  Elk_util.Series.add perf.Perfcore.core_busy.(c)
                    ~t_start:(ex_done.(c) -. comm) ~t_end:ex_done.(c) ~volume:comm
              end
            end
            else b.Perfcore.idle <- b.Perfcore.idle +. (!ex_end -. start)
          done;
          exe_start.(op) <- start;
          dist_end_arr.(op) <- !dist_end;
          compute_end_arr.(op) <- !compute_end;
          exe_end.(op) <- !ex_end;
          Option.iter
            (fun m ->
              Memtrace.record_execute m ~op ~first_use:start
                ~tail_start:!compute_end ~release:!ex_end
                ~bytes:plan.P.exec_space ~cores:ncores)
            mrec;
          Option.iter
            (fun rc ->
              (* Ties go to the preload side: at equal times the data
                 dependency (§4.5 rule 3) is the enabling completion. *)
              let parent =
                binding ~a:prev_ready ~on_a:rc.last_exec ~b:pre_end.(op)
                  ~on_b:rc.pre_done.(op)
              in
              let dist =
                emit rc ~op ~kind:Critpath.Distribute ~t_start:start ~t_end:!dist_end
                  ~parent ~deps:[ rc.last_exec; rc.pre_done.(op) ] ~port_wait:port_d
              in
              let comp =
                emit rc ~op ~kind:Critpath.Tile_compute ~t_start:!dist_end
                  ~t_end:!compute_end ~parent:dist ~deps:[ dist ] ~port_wait:0.
              in
              let ex =
                emit rc ~op ~kind:Critpath.Exchange ~t_start:!compute_end
                  ~t_end:!ex_end ~parent:comp ~deps:[ comp ] ~port_wait:port_e
              in
              rc.last_exec <- ex)
            rc;
          exec_ready := !ex_end)
    program.Elk.Program.instrs;
  let total = exe_end.(n - 1) in
  (let module M = Elk_obs.Metrics in
   M.incr "elk_sim_runs_total" ~help:"Simulator invocations";
   M.incr "elk_sim_events_total"
     ~by:(float_of_int (Array.length program.Elk.Program.instrs))
     ~help:"Device program instructions interpreted (preloads + executes)";
   M.incr "elk_sim_interconnect_stall_seconds_total" ~by:!stall_interconnect
     ~help:"Simulated time lost to interconnect contention";
   M.incr "elk_sim_preload_contention_seconds_total" ~by:!stall_pre
     ~help:"Interconnect stall during preload delivery";
   M.incr "elk_sim_distribute_contention_seconds_total" ~by:!stall_dist
     ~help:"Interconnect stall during data distribution";
   M.incr "elk_sim_exchange_contention_seconds_total" ~by:!stall_ex
     ~help:"Interconnect stall during exchange/reduction";
   M.incr "elk_sim_hbm_busy_seconds_total" ~by:!hbm_busy
     ~help:"Simulated HBM device occupancy across preload reads";
   M.incr "elk_sim_hbm_stall_seconds_total" ~by:!preload_wait
     ~help:"Execute time spent waiting on the operator's own preload";
   M.observe "elk_sim_preload_queue_depth" (float_of_int !max_pending)
     ~help:"Peak issued-but-unexecuted preload queue depth per run");
  (* Breakdown: union measures of preload and execute interval sets. *)
  let union intervals =
    let sorted = List.sort compare (List.filter (fun (a, b) -> b > a) intervals) in
    let rec go acc cur = function
      | [] -> ( match cur with None -> acc | Some (a, b) -> acc +. (b -. a))
      | (a, b) :: rest -> (
          match cur with
          | None -> go acc (Some (a, b)) rest
          | Some (ca, cb) ->
              if a <= cb then go acc (Some (ca, Float.max cb b)) rest
              else go (acc +. (cb -. ca)) (Some (a, b)) rest)
    in
    go 0. None sorted
  in
  let pre_iv = List.init n (fun o -> (pre_start.(o), pre_end.(o))) in
  let exe_iv = List.init n (fun o -> (exe_start.(o), exe_end.(o))) in
  let clip (a, b) (c, d) =
    let lo = Float.max a c and hi = Float.min b d in
    if hi > lo then Some (lo, hi) else None
  in
  let both = union (List.concat_map (fun x -> List.filter_map (clip x) exe_iv) pre_iv) in
  let pre_m = union pre_iv and exe_m = union exe_iv in
  let sum f = Array.fold_left (fun a e -> a +. f e) 0. s.Elk.Schedule.entries in
  let hbm_device_volume = sum (fun e -> e.Elk.Schedule.popt.P.hbm_device_bytes) in
  let inject_volume = sum (fun e -> e.Elk.Schedule.popt.P.noc_inject_bytes) in
  let intercore_volume =
    sum (fun e ->
        (e.Elk.Schedule.plan.P.exchange_bytes_per_core
        +. e.Elk.Schedule.popt.P.dist_bytes_per_core)
        *. float_of_int e.Elk.Schedule.plan.P.cores_used)
  in
  let flops = Elk_model.Graph.total_flops graph in
  let stats = Elk_hbm.Hbm.stats hbm_dev in
  Elk_obs.Metrics.incr "elk_sim_hbm_requests_total"
    ~by:(float_of_int stats.Elk_hbm.Hbm.requests)
    ~help:"HBM device requests issued";
  {
    total;
    bd =
      {
        Elk.Timeline.preload_only = Float.max 0. (pre_m -. both);
        execute_only = Float.max 0. (exe_m -. both -. !stall_interconnect);
        overlapped = both;
        interconnect = !stall_interconnect;
      };
    hbm_util = (if total > 0. then hbm_device_volume /. (chip.Arch.hbm_bandwidth *. total) else 0.);
    noc_util =
      (if total > 0. then
         (fg_fabric.link_volume +. pre_fabric.link_volume)
         /. (fabric_capacity chip *. total)
       else 0.);
    noc_util_split =
      (if total > 0. then
         let d = fabric_capacity chip *. total in
         (fg_fabric.link_volume /. d, pre_fabric.link_volume /. d)
       else (0., 0.));
    intercore_volume;
    inject_volume;
    hbm_device_volume;
    achieved_flops = (if total > 0. then flops /. total else 0.);
    per_op =
      Array.init n (fun o ->
          let e = s.Elk.Schedule.entries.(o) in
          {
            pre_start = pre_start.(o);
            pre_end = pre_end.(o);
            exe_start = exe_start.(o);
            dist_end = dist_end_arr.(o);
            compute_end = compute_end_arr.(o);
            exe_end = exe_end.(o);
            device_bytes = e.Elk.Schedule.popt.P.hbm_device_bytes;
            inject_bytes = e.Elk.Schedule.popt.P.noc_inject_bytes;
            dist_bytes =
              e.Elk.Schedule.popt.P.dist_bytes_per_core
              *. float_of_int e.Elk.Schedule.plan.P.cores_used;
            exchange_bytes =
              e.Elk.Schedule.plan.P.exchange_bytes_per_core
              *. float_of_int e.Elk.Schedule.plan.P.cores_used;
          });
    hbm_requests = stats.Elk_hbm.Hbm.requests;
    perf;
    events = Option.map (fun rc -> Array.of_list (List.rev rc.log)) rc;
    mem = mrec;
    noc = nrec;
  }

let run ?(skew = 0.02) ?(events = default_events) ?(mem = default_mem)
    ?(noc = default_noc) ctx (s : Elk.Schedule.t) =
  Elk_obs.Span.with_span "sim-run"
    ~attrs:[ ("ops", string_of_int (Elk.Schedule.num_ops s)) ]
    (fun () -> run_impl ~skew ~record:events ~record_mem:mem ~record_noc:noc ctx s)

let compare_with_timeline ctx s =
  let sim = run ctx s in
  let tl = Elk.Timeline.evaluate ctx s in
  if sim.total <= 0. then 0.
  else Float.abs (sim.total -. tl.Elk.Timeline.total) /. sim.total
