(* Dynamic per-link interconnect recording for the simulator event loop.

   The flow model books every transfer onto the links of its route (the
   two fluid fabrics serialize bookings per link within each traffic
   class).  When recording is on, each booking is mirrored here twice:
   once per link touched — (class, op, link, bytes, busy interval), the
   exact reservation the fabric made — and once per transfer — (class,
   op, src, dst, bytes, hops, queueing wait, envelope).  Everything else
   (per-link volumes and busy time, class breakdowns, hop histograms,
   utilization timelines) is derived on demand from those records, so
   recording itself is a list cons per booking and, like Critpath and
   Memtrace recording, is pure bookkeeping: nothing here is ever read
   back into a timing computation (the cram suite checks simulated
   output is byte-identical with recording on and off). *)

module N = Elk_noc.Noc

(* The three communication phases of the device program.  Preload is
   the pre_fabric class; Distribute and Exchange share the fg_fabric
   class (the execution share of each link). *)
type cls = Preload | Distribute | Exchange

let cls_name = function
  | Preload -> "preload"
  | Distribute -> "distribute"
  | Exchange -> "exchange"

type booking = {
  b_cls : cls;
  b_op : int;
  b_link : N.link;
  b_bytes : float;
  b_start : float;  (* when the reservation begins occupying the link *)
  b_end : float;  (* when the link frees (bytes / effective bandwidth) *)
}

type transfer = {
  t_cls : cls;
  t_op : int;
  t_src : N.node;
  t_dst : N.node;
  t_bytes : float;
  t_hops : int;  (* links traversed = List.length route *)
  t_wait : float;  (* queueing delay: booked start - requested start *)
  t_start : float;  (* when the bytes begin moving *)
  t_end : float;  (* completion (latency + bottleneck service) *)
}

type t = {
  noc : N.t;
  mutable bookings : booking list;  (* reverse emission order *)
  mutable transfers : transfer list;  (* reverse emission order *)
  mutable n_bookings : int;
  mutable n_transfers : int;
}

let create noc = { noc; bookings = []; transfers = []; n_bookings = 0; n_transfers = 0 }
let noc t = t.noc
let num_bookings t = t.n_bookings
let num_transfers t = t.n_transfers

let record_booking t ~cls ~op ~link ~bytes ~t_start ~t_end =
  t.bookings <-
    { b_cls = cls; b_op = op; b_link = link; b_bytes = bytes;
      b_start = t_start; b_end = t_end }
    :: t.bookings;
  t.n_bookings <- t.n_bookings + 1

let record_transfer t ~cls ~op ~src ~dst ~bytes ~hops ~wait ~t_start ~t_end =
  t.transfers <-
    { t_cls = cls; t_op = op; t_src = src; t_dst = dst; t_bytes = bytes;
      t_hops = hops; t_wait = wait; t_start = t_start; t_end = t_end }
    :: t.transfers;
  t.n_transfers <- t.n_transfers + 1

(* ---- derived views ---------------------------------------------------- *)

let bookings t = Array.of_list (List.rev t.bookings)
let transfers t = Array.of_list (List.rev t.transfers)

(* Per-link aggregate, derived on demand. *)
type link_stat = {
  ls_link : N.link;
  ls_bandwidth : float;  (* raw link capacity, B/s *)
  ls_volume : float;  (* total booked bytes *)
  ls_preload : float;  (* booked bytes, preload class *)
  ls_distribute : float;  (* booked bytes, distribute phase *)
  ls_exchange : float;  (* booked bytes, exchange phase *)
  ls_busy : float;  (* summed reservation time across both classes *)
  ls_bookings : int;
}

(* All touched links in canonical order, with volumes and busy time.
   Bookings within one class never overlap on a link (the fabric's
   free-time serialization), so summed reservation time is exact per
   class; across the two classes the link is a shared fluid and the sum
   can exceed the horizon only if the recording drifted from the model
   (Nocprof.check enforces the bound per class). *)
let link_stats t =
  let tbl : (N.link, link_stat ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun b ->
      let st =
        match Hashtbl.find_opt tbl b.b_link with
        | Some st -> st
        | None ->
            let st =
              ref
                { ls_link = b.b_link;
                  ls_bandwidth = N.link_bandwidth t.noc b.b_link;
                  ls_volume = 0.; ls_preload = 0.; ls_distribute = 0.;
                  ls_exchange = 0.; ls_busy = 0.; ls_bookings = 0 }
            in
            Hashtbl.add tbl b.b_link st;
            st
      in
      let s = !st in
      st :=
        { s with
          ls_volume = s.ls_volume +. b.b_bytes;
          ls_preload =
            (s.ls_preload +. if b.b_cls = Preload then b.b_bytes else 0.);
          ls_distribute =
            (s.ls_distribute +. if b.b_cls = Distribute then b.b_bytes else 0.);
          ls_exchange =
            (s.ls_exchange +. if b.b_cls = Exchange then b.b_bytes else 0.);
          ls_busy = s.ls_busy +. Float.max 0. (b.b_end -. b.b_start);
          ls_bookings = s.ls_bookings + 1;
        })
    (List.rev t.bookings);
  Hashtbl.fold (fun _ st acc -> !st :: acc) tbl []
  |> List.sort (fun a b -> N.compare_link a.ls_link b.ls_link)

(* Busy intervals of one link, chronological, one list per class. *)
let busy_intervals t ~link =
  let pre = ref [] and exch = ref [] in
  List.iter
    (fun b ->
      if b.b_link = link then
        let iv = (b.b_start, b.b_end) in
        match b.b_cls with
        | Preload -> pre := iv :: !pre
        | Distribute | Exchange -> exch := iv :: !exch)
    t.bookings;
  let by_start l = List.sort (fun (a, _) (b, _) -> Float.compare a b) l in
  (by_start !pre, by_start !exch)

let class_bytes t ~cls =
  List.fold_left
    (fun a tr -> if tr.t_cls = cls then a +. tr.t_bytes else a)
    0. t.transfers

let total_transfer_bytes t =
  List.fold_left (fun a tr -> a +. tr.t_bytes) 0. t.transfers

(* Hop-count histogram: [(hops, transfers, bytes)] sorted by hops. *)
let hop_histogram t =
  let tbl : (int, (int * float) ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun tr ->
      match Hashtbl.find_opt tbl tr.t_hops with
      | Some r ->
          let n, b = !r in
          r := (n + 1, b +. tr.t_bytes)
      | None -> Hashtbl.add tbl tr.t_hops (ref (1, tr.t_bytes)))
    t.transfers;
  Hashtbl.fold (fun h r acc -> (h, fst !r, snd !r) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

(* Max queueing wait per (op, class) — the quantity Critpath caps into
   an event's [port_wait]. *)
let max_wait t ~op ~cls =
  List.fold_left
    (fun a tr -> if tr.t_op = op && tr.t_cls = cls then Float.max a tr.t_wait else a)
    0. t.transfers
