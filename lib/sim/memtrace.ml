(* Dynamic SRAM-residency recording for the simulator event loop.

   The loop fills one [op_mem] per operator with the four timestamps
   that bound its buffers' residency — preload reserve (issue gate),
   preload delivery, first use (execute start) and release (execute
   end) — plus the byte sizes the schedule fixed.  Everything else
   (per-core occupancy change points, high-water marks, chip
   aggregates, wasted residency) is derived on demand from those
   records, so recording itself is a handful of float stores per
   operator and, like Critpath event recording, is pure bookkeeping:
   nothing here is ever read back into a timing computation.

   Core layout mirrors the device model: preload buffers land on every
   core (the controllers broadcast each core's preload-space bytes);
   an execute footprint occupies cores [0 .. cores_used-1].  Core 0
   therefore sees every buffer, making its occupancy the pointwise
   per-core maximum — the high-water mark reduces to a fold over one
   core's change points. *)

type op_mem = {
  mutable m_reserve : float;  (* preload issue gate *)
  mutable m_deliver : float;  (* preload delivery completes *)
  mutable m_first_use : float;  (* execute start *)
  mutable m_release : float;  (* execute end *)
  mutable m_tail_start : float;  (* compute end: last tile-compute use *)
  mutable m_preload_bytes : float;  (* per-core, on every core *)
  mutable m_exec_bytes : float;  (* per-core, on cores 0..m_exec_cores-1 *)
  mutable m_exec_cores : int;
}

type t = { cores : int; ops : op_mem array }

let create ~cores ~ops =
  {
    cores;
    ops =
      Array.init ops (fun _ ->
          {
            m_reserve = 0.;
            m_deliver = 0.;
            m_first_use = 0.;
            m_release = 0.;
            m_tail_start = 0.;
            m_preload_bytes = 0.;
            m_exec_bytes = 0.;
            m_exec_cores = 0;
          });
  }

let cores t = t.cores
let num_ops t = Array.length t.ops
let op_mem t op = t.ops.(op)

let record_preload t ~op ~reserve ~deliver ~bytes =
  let m = t.ops.(op) in
  m.m_reserve <- reserve;
  m.m_deliver <- deliver;
  m.m_preload_bytes <- bytes

let record_execute t ~op ~first_use ~tail_start ~release ~bytes ~cores =
  let m = t.ops.(op) in
  m.m_first_use <- first_use;
  m.m_tail_start <- tail_start;
  m.m_release <- release;
  m.m_exec_bytes <- bytes;
  m.m_exec_cores <- cores

(* ---- derived samples -------------------------------------------------- *)

type change = Reserve | Convert | Hold | Release

type sample = {
  s_t : float;
  s_op : int;
  s_change : change;
  s_delta : float;  (* per-core byte delta on each affected core *)
  s_cores : int;  (* cores 0 .. s_cores-1 are affected *)
}

(* All occupancy change points, chronological; ties resolve in op order
   then emission order (stable sort), so derived series are
   deterministic. *)
let samples t =
  let out = ref [] in
  Array.iteri
    (fun op m ->
      if m.m_preload_bytes > 0. then begin
        out :=
          { s_t = m.m_reserve; s_op = op; s_change = Reserve;
            s_delta = m.m_preload_bytes; s_cores = t.cores }
          :: !out;
        (* The preload buffer converts to execute state when the
           operator starts: its bytes leave every core... *)
        out :=
          { s_t = m.m_first_use; s_op = op; s_change = Convert;
            s_delta = -.m.m_preload_bytes; s_cores = t.cores }
          :: !out
      end;
      if m.m_exec_bytes > 0. && m.m_exec_cores > 0 then begin
        (* ...and the execute footprint lands on the cores used. *)
        out :=
          { s_t = m.m_first_use; s_op = op; s_change = Hold;
            s_delta = m.m_exec_bytes; s_cores = m.m_exec_cores }
          :: !out;
        out :=
          { s_t = m.m_release; s_op = op; s_change = Release;
            s_delta = -.m.m_exec_bytes; s_cores = m.m_exec_cores }
          :: !out
      end)
    t.ops;
  let arr = Array.of_list (List.rev !out) in
  (* Stable on ties: per-op emission order (Reserve before Convert,
     Convert before Hold at equal times) is preserved. *)
  let keyed = Array.mapi (fun i s -> (s.s_t, i, s)) arr in
  Array.sort (fun (a, i, _) (b, j, _) -> compare (a, i) (b, j)) keyed;
  Array.map (fun (_, _, s) -> s) keyed

(* Occupancy change points of one core: (time, per-core bytes) after
   each change that touches it, duplicate times collapsed to the last
   value. *)
let occupancy t ~core =
  if core < 0 || core >= t.cores then invalid_arg "Memtrace.occupancy: bad core";
  let pts = ref [] in
  let level = ref 0. in
  Array.iter
    (fun s ->
      if core < s.s_cores then begin
        level := !level +. s.s_delta;
        match !pts with
        | (tp, _) :: rest when tp = s.s_t -> pts := (s.s_t, !level) :: rest
        | _ -> pts := (s.s_t, !level) :: !pts
      end)
    (samples t);
  List.rev !pts

(* Chip-aggregate occupancy: total bytes across all cores. *)
let chip_occupancy t =
  let pts = ref [] in
  let level = ref 0. in
  Array.iter
    (fun s ->
      level := !level +. (s.s_delta *. float_of_int s.s_cores);
      match !pts with
      | (tp, _) :: rest when tp = s.s_t -> pts := (s.s_t, !level) :: rest
      | _ -> pts := (s.s_t, !level) :: !pts)
    (samples t);
  List.rev !pts

let core_high_water t core =
  List.fold_left (fun a (_, v) -> Float.max a v) 0. (occupancy t ~core)

(* Core 0 holds every preload buffer and every execute footprint, so its
   occupancy bounds every other core's pointwise. *)
let high_water t = if t.cores = 0 then 0. else core_high_water t 0

let chip_high_water t =
  List.fold_left (fun a (_, v) -> Float.max a v) 0. (chip_occupancy t)

(* ---- wasted residency ------------------------------------------------- *)

(* Byte-seconds a preload buffer sits delivered but unused, summed over
   the cores holding it. *)
let pre_use_waste t op =
  let m = t.ops.(op) in
  if m.m_preload_bytes <= 0. then 0.
  else
    m.m_preload_bytes *. float_of_int t.cores
    *. Float.max 0. (m.m_first_use -. m.m_deliver)

(* Byte-seconds the execute footprint stays resident after its last
   tile-compute use, over the exchange/reduction tail. *)
let post_use_waste t op =
  let m = t.ops.(op) in
  if m.m_exec_bytes <= 0. then 0.
  else
    m.m_exec_bytes *. float_of_int m.m_exec_cores
    *. Float.max 0. (m.m_release -. m.m_tail_start)

let total_pre_use_waste t =
  let acc = ref 0. in
  for op = 0 to num_ops t - 1 do
    acc := !acc +. pre_use_waste t op
  done;
  !acc

let total_post_use_waste t =
  let acc = ref 0. in
  for op = 0 to num_ops t - 1 do
    acc := !acc +. post_use_waste t op
  done;
  !acc
