(** Dynamic per-link interconnect recording for the simulator.

    When enabled ([Sim.run ~noc:true] or [ELK_SIM_NOC=1]), every link
    reservation the two fluid fabrics make is mirrored here as a
    booking — (traffic class, operator, link, bytes, busy interval) —
    and every transfer as a route record — (class, operator, src, dst,
    bytes, hops, queueing wait, envelope).  Per-link volumes, class
    breakdowns, busy intervals, hop histograms and utilization
    timelines are all derived on demand, so recording is a list cons
    per booking; like {!Critpath} and {!Memtrace} recording it is pure
    bookkeeping, never read back into any timing computation (the cram
    suite checks simulated output is byte-identical with recording on
    and off). *)

(** The communication phase a booking belongs to.  [Preload] is the
    preload fabric's fluid share; [Distribute] and [Exchange] run in
    the execution share. *)
type cls = Preload | Distribute | Exchange

val cls_name : cls -> string

type booking = {
  b_cls : cls;
  b_op : int;
  b_link : Elk_noc.Noc.link;
  b_bytes : float;
  b_start : float;  (** reservation begins occupying the link. *)
  b_end : float;  (** link frees: bytes over the class's fluid share. *)
}

type transfer = {
  t_cls : cls;
  t_op : int;
  t_src : Elk_noc.Noc.node;
  t_dst : Elk_noc.Noc.node;
  t_bytes : float;
  t_hops : int;  (** links traversed = route length. *)
  t_wait : float;  (** queueing delay: booked start - requested start. *)
  t_start : float;
  t_end : float;  (** completion: latency + bottleneck service. *)
}

type t

val create : Elk_noc.Noc.t -> t
val noc : t -> Elk_noc.Noc.t
val num_bookings : t -> int
val num_transfers : t -> int

val record_booking :
  t ->
  cls:cls ->
  op:int ->
  link:Elk_noc.Noc.link ->
  bytes:float ->
  t_start:float ->
  t_end:float ->
  unit

val record_transfer :
  t ->
  cls:cls ->
  op:int ->
  src:Elk_noc.Noc.node ->
  dst:Elk_noc.Noc.node ->
  bytes:float ->
  hops:int ->
  wait:float ->
  t_start:float ->
  t_end:float ->
  unit

val bookings : t -> booking array
(** Emission order (simulation order). *)

val transfers : t -> transfer array
(** Emission order (simulation order). *)

(** Per-link aggregate over all bookings. *)
type link_stat = {
  ls_link : Elk_noc.Noc.link;
  ls_bandwidth : float;  (** raw link capacity, B/s. *)
  ls_volume : float;  (** total booked bytes. *)
  ls_preload : float;
  ls_distribute : float;
  ls_exchange : float;
  ls_busy : float;  (** summed reservation time across both classes. *)
  ls_bookings : int;
}

val link_stats : t -> link_stat list
(** Every touched link in the canonical {!Elk_noc.Noc.compare_link}
    order. *)

val busy_intervals :
  t -> link:Elk_noc.Noc.link -> (float * float) list * (float * float) list
(** One link's busy intervals, chronological: (preload class,
    distribute+exchange class).  Within a class, intervals never
    overlap — the fabric serializes bookings per link. *)

val class_bytes : t -> cls:cls -> float
(** Transfer bytes of one class, counted once per transfer. *)

val total_transfer_bytes : t -> float

val hop_histogram : t -> (int * int * float) list
(** [(hops, transfers, bytes)] rows sorted by hop count. *)

val max_wait : t -> op:int -> cls:cls -> float
(** Largest queueing wait among one operator's transfers of one class —
    the quantity {!Critpath} caps into an event's [port_wait]. *)
