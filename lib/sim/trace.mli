(** Chrome-trace export of simulation results.

    Serializes an {!Sim.result} into the Chrome/Perfetto trace-event JSON
    format (catapult "X" complete events), with one track for the HBM
    preload channel and one for on-chip execution (split into the
    distribute / compute / exchange phases).  Load the file at
    [chrome://tracing] or [ui.perfetto.dev] to see exactly how a schedule
    overlapped preload and execution — the visual equivalent of the
    paper's Fig 18(a) breakdown. *)

val chrome_events : Elk_model.Graph.t -> Sim.result -> string list
(** The rendered trace-event objects alone (no enclosing document) — for
    merging with other producers, e.g. {!Elk_obs.Span.chrome_events}, into
    one timeline via {!Elk_obs.Chrome.write}. *)

val flow_events : Critpath.summary -> string list
(** Perfetto flow ("s"/"f") event pairs — one arrow per causal edge of
    the critical path, connecting the slice where the binding event ends
    to the slice where the enabled event starts.  Merge with
    {!chrome_events} (the arrows bind to those slices); edges between
    two sub-events of the same preload slice are elided. *)

val chrome_meta : string list
(** thread_name metadata events labelling tracks 1 (HBM preload) and 2
    (on-chip execute). *)

val to_chrome_json : Elk_model.Graph.t -> Sim.result -> string
(** Serialize; timestamps in microseconds as the format requires. *)

val write_chrome_json : path:string -> Elk_model.Graph.t -> Sim.result -> unit
(** {!to_chrome_json} to a file. *)

val event_count : Sim.result -> int
(** Number of trace events that will be emitted (preloads with nonzero
    duration + three phases per executed operator). *)
