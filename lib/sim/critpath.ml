type kind =
  | Preload_issue
  | Hbm_read
  | Preload_deliver
  | Distribute
  | Tile_compute
  | Exchange
  | Sched_gap

let kind_name = function
  | Preload_issue -> "preload-issue"
  | Hbm_read -> "hbm-read"
  | Preload_deliver -> "preload-deliver"
  | Distribute -> "distribute"
  | Tile_compute -> "compute"
  | Exchange -> "exchange"
  | Sched_gap -> "sched-gap"

type event = {
  id : int;
  op : int;
  kind : kind;
  t_start : float;
  t_end : float;
  parent : int option;
  deps : int list;
  port_wait : float;
}

type resource = Hbm | Interconnect | Compute | Port | Wait

let resource_name = function
  | Hbm -> "hbm"
  | Interconnect -> "interconnect"
  | Compute -> "compute"
  | Port -> "port"
  | Wait -> "wait"

let all_resources = [ Hbm; Interconnect; Compute; Port; Wait ]

type segment = {
  s_op : int;
  s_kind : kind;
  s_res : resource;
  s_start : float;
  s_dur : float;
}

type summary = {
  total : float;
  events : event array;
  crit_ids : int list;
  segments : segment list;
  slack : float array;
  op_slack : float array;
  op_crit : float array;
  resource_seconds : (resource * float) list;
}

let dur e = e.t_end -. e.t_start

(* The terminal event: latest completion, ties broken toward the event
   issued last (the final exchange of the program). *)
let terminal events =
  let best = ref 0 in
  Array.iter
    (fun e -> if e.t_end >= events.(!best).t_end then best := e.id)
    events;
  !best

(* Classified sub-segments of one event, in time order.  Queuing is
   booked at the head of a transfer (it waits, then the bytes move), so
   the port share leads the interconnect share.  The split follows the
   Perfcore/Analyze convention: only distribution/exchange queuing is
   port time; preload delivery beyond the HBM floor is interconnect even
   when part of it queued behind an earlier delivery. *)
let classify e =
  let d = dur e in
  if d <= 0. then []
  else
    match e.kind with
    | Hbm_read -> [ (Hbm, e.t_start, d) ]
    | Preload_deliver -> [ (Interconnect, e.t_start, d) ]
    | Preload_issue | Sched_gap -> [ (Wait, e.t_start, d) ]
    | Tile_compute -> [ (Compute, e.t_start, d) ]
    | Distribute | Exchange ->
        let p = Float.min d (Float.max 0. e.port_wait) in
        List.filter
          (fun (_, _, d) -> d > 0.)
          [ (Port, e.t_start, p); (Interconnect, e.t_start +. p, d -. p) ]

(* Dependency-path reachability: is there a chain of gating edges from
   [src] to [dst]?  Deps carry smaller ids than the events they gate, so
   one forward sweep over [src..dst] settles it — the static verifier's
   cross-check uses this to confirm that every flagged race is a pair
   the simulated run also leaves unordered. *)
let reaches events ~src ~dst =
  let n = Array.length events in
  if src < 0 || dst < 0 || src >= n || dst >= n then false
  else if src = dst then true
  else if src > dst then false
  else begin
    let reached = Array.make (dst - src + 1) false in
    reached.(0) <- true;
    for i = src + 1 to dst do
      if
        List.exists
          (fun d -> d >= src && d < i && reached.(d - src))
          events.(i).deps
      then reached.(i - src) <- true
    done;
    reached.(dst - src)
  end

let find_event events ~op ~kind =
  let found = ref None in
  Array.iter
    (fun e -> if !found = None && e.op = op && e.kind = kind then found := Some e.id)
    events;
  !found

(* Latest-finish times over the full dependency DAG (classic CPM
   backward pass).  Deps always carry smaller ids than the events they
   gate, so reverse id order is a reverse topological order. *)
let slack_of events total =
  let n = Array.length events in
  let lf = Array.make n total in
  for i = n - 1 downto 0 do
    let e = events.(i) in
    let latest_start = lf.(i) -. dur e in
    List.iter (fun d -> if latest_start < lf.(d) then lf.(d) <- latest_start) e.deps
  done;
  Array.init n (fun i -> lf.(i) -. events.(i).t_end)

let extract events =
  if Array.length events = 0 then invalid_arg "Critpath.extract: no events";
  let last = terminal events in
  let total = events.(last).t_end in
  (* Backward causal walk.  By construction a child starts exactly when
     its binding parent ends; a positive gap (defensive) becomes an
     explicit scheduler-wait segment so the path still tiles [0, total]. *)
  let crit = ref [] and segs = ref [] in
  let gap ~t_start ~t_end =
    if t_end -. t_start > 0. then
      segs :=
        { s_op = -1; s_kind = Sched_gap; s_res = Wait; s_start = t_start;
          s_dur = t_end -. t_start }
        :: !segs
  in
  let rec walk id =
    let e = events.(id) in
    crit := id :: !crit;
    segs :=
      List.map
        (fun (res, s_start, s_dur) ->
          { s_op = e.op; s_kind = e.kind; s_res = res; s_start; s_dur })
        (classify e)
      @ !segs;
    match e.parent with
    | None -> gap ~t_start:0. ~t_end:e.t_start
    | Some p ->
        gap ~t_start:events.(p).t_end ~t_end:e.t_start;
        walk p
  in
  walk last;
  let segments = List.sort (fun a b -> compare a.s_start b.s_start) !segs in
  let slack = slack_of events total in
  let ops = 1 + Array.fold_left (fun a e -> max a e.op) 0 events in
  let op_slack = Array.make ops infinity in
  Array.iter
    (fun e -> if slack.(e.id) < op_slack.(e.op) then op_slack.(e.op) <- slack.(e.id))
    events;
  let op_crit = Array.make ops 0. in
  List.iter
    (fun s -> if s.s_op >= 0 then op_crit.(s.s_op) <- op_crit.(s.s_op) +. s.s_dur)
    segments;
  let resource_seconds =
    List.map
      (fun res ->
        ( res,
          List.fold_left
            (fun a s -> if s.s_res = res then a +. s.s_dur else a)
            0. segments ))
      all_resources
  in
  { total; events; crit_ids = !crit; segments; slack; op_slack; op_crit;
    resource_seconds }

let rel_err a b =
  let scale = Float.max (Float.abs a) (Float.abs b) in
  if scale <= 0. then 0. else Float.abs (a -. b) /. scale

let check events ~total =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let n = Array.length events in
  if n = 0 then err "no events recorded"
  else begin
    let bad = ref None in
    Array.iteri
      (fun i e ->
        if !bad = None then
          if e.id <> i then bad := Some (err "event %d carries id %d" i e.id)
          else if e.t_end < e.t_start -. 1e-9 then
            bad := Some (err "event %d (%s) ends before it starts" i (kind_name e.kind))
          else
            match e.parent with
            | None ->
                if i <> 0 then
                  bad := Some (err "event %d (%s) has no causal parent" i (kind_name e.kind))
            | Some p ->
                if p < 0 || p >= i then
                  bad := Some (err "event %d: parent %d is not an earlier event" i p)
                else if not (List.mem p e.deps) then
                  bad := Some (err "event %d: parent %d missing from deps" i p)
                else if events.(p).t_end > e.t_start +. 1e-9 then
                  bad :=
                    Some
                      (err "event %d starts at %.9g before parent %d ends at %.9g" i
                         e.t_start p events.(p).t_end)
                else if
                  List.exists (fun d -> d < 0 || d >= i) e.deps
                then bad := Some (err "event %d: dep out of range" i))
      events;
    match !bad with
    | Some e -> e
    | None ->
        let s = extract events in
        let path_len = List.fold_left (fun a seg -> a +. seg.s_dur) 0. s.segments in
        if rel_err path_len total > 1e-6 then
          err "critical-path length %.9g != makespan %.9g (rel %.3g)" path_len total
            (rel_err path_len total)
        else if rel_err s.total total > 1e-6 then
          err "terminal event ends at %.9g, makespan is %.9g" s.total total
        else begin
          let neg = Array.exists (fun v -> v < -1e-9) s.slack in
          if neg then err "negative slack"
          else if Array.exists (fun v -> v < -1e-9) s.op_slack then
            err "negative operator slack"
          else Ok ()
        end
  end

let real_seconds s res = List.assoc res s.resource_seconds

let dominant s =
  (* Compute first so an all-zero path (or an exact tie) reads as
     compute-bound, matching Elk_analyze.Analyze.classify. *)
  let best, _ =
    List.fold_left
      (fun (br, bv) r ->
        let v = real_seconds s r in
        if v > bv then (r, v) else (br, bv))
      (Compute, real_seconds s Compute)
      [ Hbm; Interconnect; Port ]
  in
  best

let blame ?(top = 10) s =
  let per_op = Hashtbl.create 64 in
  List.iter
    (fun seg ->
      if seg.s_op >= 0 then begin
        let shares =
          match Hashtbl.find_opt per_op seg.s_op with
          | Some sh -> sh
          | None ->
              let sh = Hashtbl.create 4 in
              Hashtbl.add per_op seg.s_op sh;
              sh
        in
        let cur = Option.value ~default:0. (Hashtbl.find_opt shares seg.s_res) in
        Hashtbl.replace shares seg.s_res (cur +. seg.s_dur)
      end)
    s.segments;
  Hashtbl.fold
    (fun op shares acc ->
      let split =
        List.filter_map
          (fun res ->
            Option.map (fun v -> (res, v)) (Hashtbl.find_opt shares res))
          all_resources
      in
      (op, List.fold_left (fun a (_, v) -> a +. v) 0. split, split) :: acc)
    per_op []
  |> List.stable_sort (fun (oa, a, _) (ob, b, _) -> compare (b, oa) (a, ob))
  |> List.filteri (fun i _ -> i < top)

let us x = Printf.sprintf "%.1f" (x *. 1e6)
let pct_of x total = Printf.sprintf "%.1f%%" (100. *. x /. Float.max 1e-12 total)

let op_name graph i =
  if i < 0 then "-"
  else (Elk_model.Graph.get graph i).Elk_model.Graph.op.Elk_tensor.Opspec.name

let tables ?(top = 10) ?(top_segments = 12) graph s =
  let summary =
    Elk_util.Table.create
      ~title:
        (Printf.sprintf
           "critical path: makespan %s us over %d segments (%d events recorded)"
           (us s.total) (List.length s.segments) (Array.length s.events))
      ~columns:[ "resource"; "critical us"; "share" ]
  in
  List.iter
    (fun res ->
      let t = real_seconds s res in
      Elk_util.Table.add_row summary [ resource_name res; us t; pct_of t s.total ])
    all_resources;
  let segs =
    Elk_util.Table.create
      ~title:(Printf.sprintf "top %d critical segments by duration" top_segments)
      ~columns:[ "op"; "name"; "kind"; "resource"; "start us"; "dur us"; "share" ]
  in
  List.stable_sort (fun a b -> compare (b.s_dur, a.s_start) (a.s_dur, b.s_start)) s.segments
  |> List.filteri (fun i _ -> i < top_segments)
  |> List.iter (fun seg ->
         Elk_util.Table.add_row segs
           [
             (if seg.s_op < 0 then "-" else string_of_int seg.s_op);
             op_name graph seg.s_op; kind_name seg.s_kind; resource_name seg.s_res;
             us seg.s_start; us seg.s_dur; pct_of seg.s_dur s.total;
           ])
  ;
  let bl =
    Elk_util.Table.create
      ~title:
        (Printf.sprintf "top %d operators by critical-path time (blame), with slack" top)
      ~columns:
        [ "op"; "name"; "critical us"; "share"; "slack us"; "hbm"; "interconnect";
          "compute"; "port" ]
  in
  List.iter
    (fun (op, crit, split) ->
      let share res =
        us (Option.value ~default:0. (List.assoc_opt res split))
      in
      Elk_util.Table.add_row bl
        [
          string_of_int op; op_name graph op; us crit; pct_of crit s.total;
          us (if op < Array.length s.op_slack then s.op_slack.(op) else 0.);
          share Hbm; share Interconnect; share Compute; share Port;
        ])
    (blame ~top s);
  [ summary; segs; bl ]

let print ?top ?top_segments graph s =
  List.iter Elk_util.Table.print (tables ?top ?top_segments graph s)

let to_json graph s =
  let open Elk_obs in
  let obj fields = "{" ^ String.concat "," fields ^ "}" in
  let arr items = "[" ^ String.concat "," items ^ "]" in
  let field k v = Jsonx.quote k ^ ":" ^ v in
  obj
    [
      field "total" (Jsonx.number s.total);
      field "events" (string_of_int (Array.length s.events));
      field "dominant" (Jsonx.quote (resource_name (dominant s)));
      field "resource_seconds"
        (obj
           (List.map
              (fun (res, v) -> field (resource_name res) (Jsonx.number v))
              s.resource_seconds));
      field "segments"
        (arr
           (List.map
              (fun seg ->
                obj
                  [
                    field "op" (string_of_int seg.s_op);
                    field "name" (Jsonx.quote (op_name graph seg.s_op));
                    field "kind" (Jsonx.quote (kind_name seg.s_kind));
                    field "resource" (Jsonx.quote (resource_name seg.s_res));
                    field "start" (Jsonx.number seg.s_start);
                    field "dur" (Jsonx.number seg.s_dur);
                  ])
              s.segments));
      field "ops"
        (arr
           (List.init (Array.length s.op_crit) (fun i ->
                obj
                  [
                    field "id" (string_of_int i);
                    field "name" (Jsonx.quote (op_name graph i));
                    field "critical" (Jsonx.number s.op_crit.(i));
                    field "slack"
                      (Jsonx.number
                         (if Float.is_finite s.op_slack.(i) then s.op_slack.(i) else 0.));
                  ])));
    ]
  ^ "\n"
