let max_jobs = 64
let clamp n = if n < 1 then 1 else if n > max_jobs then max_jobs else n

type t = {
  jobs : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable live : bool;
  mutable workers : unit Domain.t list;
}

(* Workers run arbitrary queued thunks; a map issued from one must not
   block on the same pool (the sub-tasks could sit behind the very task
   that is waiting for them), so workers mark themselves and nested maps
   run inline. *)
let in_worker : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && t.live do
    Condition.wait t.nonempty t.mutex
  done;
  match Queue.take_opt t.queue with
  | None ->
      (* Queue drained and the pool is shutting down. *)
      Mutex.unlock t.mutex
  | Some task ->
      Mutex.unlock t.mutex;
      task ();
      worker_loop t

let create ~jobs =
  let jobs = clamp jobs in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      live = true;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <-
      List.init (jobs - 1) (fun _ ->
          Domain.spawn (fun () ->
              Domain.DLS.get in_worker := true;
              worker_loop t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  t.live <- false;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

type ('b, 'e) cell = Ok_r of 'b | Err_r of 'e

let map t f xs =
  if t.jobs <= 1 || (not t.live) || !(Domain.DLS.get in_worker) then List.map f xs
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    if n <= 1 then List.map f xs
    else begin
      let results = Array.make n None in
      let remaining = Atomic.make n in
      let done_m = Mutex.create () and done_c = Condition.create () in
      let step i =
        let r =
          try Ok_r (f arr.(i))
          with e -> Err_r (e, Printexc.get_raw_backtrace ())
        in
        results.(i) <- Some r;
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          (* Last task: wake the caller if it is already waiting. *)
          Mutex.lock done_m;
          Condition.broadcast done_c;
          Mutex.unlock done_m
        end
      in
      Mutex.lock t.mutex;
      for i = 0 to n - 1 do
        Queue.add (fun () -> step i) t.queue
      done;
      Condition.broadcast t.nonempty;
      Mutex.unlock t.mutex;
      (* The caller is a worker too: drain tasks (possibly from a
         concurrent call — any progress is progress) until the queue is
         empty, then wait for stragglers still running on workers. *)
      let rec help () =
        Mutex.lock t.mutex;
        let task = Queue.take_opt t.queue in
        Mutex.unlock t.mutex;
        match task with
        | Some task ->
            task ();
            if Atomic.get remaining > 0 then help ()
        | None -> ()
      in
      help ();
      Mutex.lock done_m;
      while Atomic.get remaining > 0 do
        Condition.wait done_c done_m
      done;
      Mutex.unlock done_m;
      (* Deterministic propagation: the first (lowest-index) failure wins,
         no matter which domain finished when. *)
      Array.iter
        (function
          | Some (Err_r (e, bt)) -> Printexc.raise_with_backtrace e bt
          | _ -> ())
        results;
      Array.to_list
        (Array.map
           (function Some (Ok_r v) -> v | Some (Err_r _) | None -> assert false)
           results)
    end
  end

let filter_map t f xs = List.filter_map Fun.id (map t f xs)

(* ------------------------------------------------------------------ *)
(* Shared default pool                                                *)
(* ------------------------------------------------------------------ *)

let env_jobs () =
  match Sys.getenv_opt "ELK_JOBS" with
  | None -> None
  | Some s -> Option.map clamp (int_of_string_opt (String.trim s))

let default_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> clamp (Domain.recommended_domain_count ())

let shared_mutex = Mutex.create ()
let shared : t option ref = ref None
let requested_jobs : int option ref = ref None
let exit_hook_installed = ref false

let locked f =
  Mutex.lock shared_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock shared_mutex) f

let current_jobs () =
  locked (fun () ->
      match !shared with
      | Some p -> p.jobs
      | None -> (
          match !requested_jobs with Some n -> n | None -> default_jobs ()))

let get () =
  locked (fun () ->
      match !shared with
      | Some p -> p
      | None ->
          let jobs =
            match !requested_jobs with Some n -> n | None -> default_jobs ()
          in
          let p = create ~jobs in
          shared := Some p;
          if not !exit_hook_installed then begin
            exit_hook_installed := true;
            (* Workers blocked in [Condition.wait] at process exit are
               joined here so the runtime shuts down cleanly. *)
            at_exit (fun () ->
                match locked (fun () -> !shared) with
                | Some p -> shutdown p
                | None -> ())
          end;
          p)

let set_jobs n =
  let n = clamp n in
  let stale =
    locked (fun () ->
        requested_jobs := Some n;
        match !shared with
        | Some p when p.jobs <> n ->
            shared := None;
            Some p
        | _ -> None)
  in
  match stale with None -> () | Some p -> shutdown p
