(** Fixed-size OCaml 5 domain pool for the compiler's embarrassingly
    parallel fan-outs (candidate preload orders, design points, sweep
    configurations).

    The pool owns [jobs - 1] worker domains (the calling domain is the
    last worker: it drains the task queue too, so [jobs] domains compute).
    Domains are spawned once and reused across calls — spawning is the
    expensive part of [Domain.spawn], and the compile loop maps over the
    pool thousands of times per process.

    Semantics of {!map} / {!filter_map}:

    - {b order-preserving}: results come back positionally, exactly as
      [List.map] / [List.filter_map] would return them;
    - {b exception-propagating}: if callbacks raise, the exception of the
      {e lowest-indexed} failing element is re-raised in the caller (with
      its backtrace) after every task of the call has finished — never a
      silent drop, and deterministic under any interleaving;
    - {b nested-map safe}: a map issued from inside a pool worker runs
      sequentially inline (a blocked worker waiting on sub-tasks executed
      by the same fixed-size pool would deadlock it);
    - {b jobs = 1 fallback}: no domains, no queue — plain [List.map], so
      single-core behavior is byte-for-byte the sequential compiler.

    The shared default pool is sized by {!set_jobs} (the CLI [--jobs]
    flag) or the [ELK_JOBS] environment variable, defaulting to
    [Domain.recommended_domain_count ()]; all sizes are clamped to
    [1..max_jobs]. *)

type t

val max_jobs : int
(** Upper clamp on pool sizes (64). *)

val create : jobs:int -> t
(** A fresh pool with [jobs] (clamped) computing domains: [jobs - 1]
    spawned workers plus the caller during {!map}. *)

val jobs : t -> int
(** The (clamped) size the pool was created with. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map] with the guarantees documented above. *)

val filter_map : t -> ('a -> 'b option) -> 'a list -> 'b list
(** Parallel [List.filter_map]: every [f] runs in parallel, [None]s are
    dropped positionally afterwards. *)

val shutdown : t -> unit
(** Join the pool's workers.  Maps on a shut-down pool run sequentially.
    Idempotent. *)

(** {1 The process-wide shared pool} *)

val default_jobs : unit -> int
(** [ELK_JOBS] when set to a valid integer, otherwise
    [Domain.recommended_domain_count ()]; clamped. *)

val set_jobs : int -> unit
(** Resize the shared pool (shutting down the previous one, joining its
    workers).  A no-op when the size is unchanged. *)

val get : unit -> t
(** The shared pool, created on first use with {!default_jobs} and
    registered for [at_exit] shutdown. *)

val current_jobs : unit -> int
(** Size the shared pool has (or would be created with). *)
