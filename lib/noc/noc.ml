open Elk_arch

type node = Core of int | Hbm of int

type link =
  | Port_in of node
  | Port_out of node
  | Edge of { from_core : int; to_core : int }
  | Hbm_edge of { ctrl : int; entry : int }
  | L2_fabric

type t = { chip : Arch.chip; rows : int; cols : int }

let create chip =
  (match Arch.validate_chip chip with
  | Ok () -> ()
  | Error m -> invalid_arg ("Noc.create: " ^ m));
  match chip.Arch.topology with
  | Arch.All_to_all | Arch.Clustered _ -> { chip; rows = 1; cols = chip.Arch.cores }
  | Arch.Mesh2d { rows; cols } -> { chip; rows; cols }

let chip t = t.chip
let cores t = t.chip.Arch.cores
let is_mesh t = match t.chip.Arch.topology with Arch.Mesh2d _ -> true | _ -> false

let cluster_of t c =
  match t.chip.Arch.topology with
  | Arch.Clustered { cluster_size; _ } -> Some (c / cluster_size)
  | _ -> None

let validate_node t = function
  | Core c -> c >= 0 && c < cores t
  | Hbm h -> h >= 0 && h < t.chip.Arch.hbm_controllers

let check_node t n fn =
  if not (validate_node t n) then invalid_arg ("Noc." ^ fn ^ ": unknown node")

let per_ctrl_bw t =
  t.chip.Arch.hbm_bandwidth /. float_of_int t.chip.Arch.hbm_controllers

(* Mesh geometry: core i sits at (i / cols, i mod cols).  Controller h
   enters the mesh at an evenly spaced boundary core of row 0 or the last
   row, alternating sides. *)
let coord t c = (c / t.cols, c mod t.cols)
let core_at t r c = (r * t.cols) + c

(* Controller [h] owns a strip of boundary cores: even controllers on the
   top row, odd on the bottom, strips tiling the columns.  A preload to a
   destination core enters the mesh at the strip core closest to the
   destination's column, so injection spreads over the whole strip. *)
let ctrl_strip t h =
  let nc = t.chip.Arch.hbm_controllers in
  let per_side = (nc + 1) / 2 in
  let idx = h / 2 in
  let lo = idx * t.cols / per_side in
  let hi = min (t.cols - 1) (((idx + 1) * t.cols / per_side) - 1) in
  let row = if h mod 2 = 0 then 0 else t.rows - 1 in
  (row, lo, max lo hi)

let entry_core_for t h dst =
  let row, lo, hi = ctrl_strip t h in
  let _, dst_col = coord t dst in
  core_at t row (max lo (min hi dst_col))

let mesh_route t src dst =
  (* Dimension-order: walk columns first, then rows. *)
  let r0, c0 = coord t src and r1, c1 = coord t dst in
  let edges = ref [] in
  let cur_r = ref r0 and cur_c = ref c0 in
  while !cur_c <> c1 do
    let next = if c1 > !cur_c then !cur_c + 1 else !cur_c - 1 in
    edges := Edge { from_core = core_at t !cur_r !cur_c; to_core = core_at t !cur_r next } :: !edges;
    cur_c := next
  done;
  while !cur_r <> r1 do
    let next = if r1 > !cur_r then !cur_r + 1 else !cur_r - 1 in
    edges := Edge { from_core = core_at t !cur_r !cur_c; to_core = core_at t next !cur_c } :: !edges;
    cur_r := next
  done;
  List.rev !edges

let route t ~src ~dst =
  check_node t src "route";
  check_node t dst "route";
  if src = dst then []
  else
    match (src, dst) with
    | _, Hbm _ -> invalid_arg "Noc.route: HBM controllers only send"
    | Core s, Core d -> (
        if is_mesh t then mesh_route t s d
        else
          match (cluster_of t s, cluster_of t d) with
          | Some cs, Some cd when cs <> cd ->
              (* Inter-cluster traffic crosses the shared L2 fabric. *)
              [ Port_out (Core s); L2_fabric; Port_in (Core d) ]
          | _ -> [ Port_out (Core s); Port_in (Core d) ])
    | Hbm h, Core d ->
        if is_mesh t then
          let entry = entry_core_for t h d in
          Port_out (Hbm h) :: Hbm_edge { ctrl = h; entry } :: mesh_route t entry d
        else if cluster_of t d <> None then
          (* GPU-style: HBM sits behind the L2. *)
          [ Port_out (Hbm h); L2_fabric; Port_in (Core d) ]
        else [ Port_out (Hbm h); Port_in (Core d) ]

let hops t ~src ~dst = List.length (route t ~src ~dst)

let link_bandwidth t = function
  | Port_in (Core _) | Port_out (Core _) -> t.chip.Arch.intercore_link.Arch.bandwidth
  | Port_in (Hbm _) | Port_out (Hbm _) -> per_ctrl_bw t
  | Edge _ -> t.chip.Arch.intercore_link.Arch.bandwidth
  | Hbm_edge _ ->
      (* The controller's pipe into its boundary strip runs at the
         controller's rate; the mesh-internal hops behind the entry are
         where the delivery contends. *)
      per_ctrl_bw t
  | L2_fabric -> (
      match t.chip.Arch.topology with
      | Arch.Clustered { l2_bandwidth; _ } -> l2_bandwidth
      | _ -> invalid_arg "Noc.link_bandwidth: L2 on a non-clustered chip")

let route_latency t ~src ~dst =
  float_of_int (max 1 (hops t ~src ~dst)) *. t.chip.Arch.intercore_link.Arch.latency

let transfer_time t ~src ~dst ~bytes =
  if bytes < 0. then invalid_arg "Noc.transfer_time: negative size";
  if src = dst then 0.
  else
    let r = route t ~src ~dst in
    let bottleneck =
      List.fold_left (fun bw l -> Float.min bw (link_bandwidth t l)) infinity r
    in
    route_latency t ~src ~dst +. (bytes /. bottleneck)

let hbm_ctrl_for_core t c =
  check_node t (Core c) "hbm_ctrl_for_core";
  Hbm (c mod t.chip.Arch.hbm_controllers)

(* Structural compare is a total order on this variant (constructor
   declaration order, then field order) — deterministic, independent of
   hash-table layout, and stable across runs and worker counts. *)
let compare_link (a : link) (b : link) = Stdlib.compare a b

let link_name (l : link) =
  match l with
  | Port_in (Core c) -> Printf.sprintf "port_in(core %d)" c
  | Port_in (Hbm h) -> Printf.sprintf "port_in(hbm %d)" h
  | Port_out (Core c) -> Printf.sprintf "port_out(core %d)" c
  | Port_out (Hbm h) -> Printf.sprintf "port_out(hbm %d)" h
  | Edge { from_core; to_core } -> Printf.sprintf "edge(%d->%d)" from_core to_core
  | Hbm_edge { ctrl; entry } -> Printf.sprintf "hbm_edge(%d->%d)" ctrl entry
  | L2_fabric -> "l2_fabric"

module Load = struct
  type loads = {
    noc : t;
    volumes : (link, float ref) Hashtbl.t;
    mutable total : float;
    mutable worst_latency : float;
  }

  let create noc = { noc; volumes = Hashtbl.create 64; total = 0.; worst_latency = 0. }

  let add l ~src ~dst ~bytes =
    if bytes < 0. then invalid_arg "Noc.Load.add: negative size";
    let r = route l.noc ~src ~dst in
    List.iter
      (fun link ->
        match Hashtbl.find_opt l.volumes link with
        | Some v -> v := !v +. bytes
        | None -> Hashtbl.add l.volumes link (ref bytes))
      r;
    l.total <- l.total +. bytes;
    if r <> [] then
      l.worst_latency <- Float.max l.worst_latency (route_latency l.noc ~src ~dst)

  let volume_on l link =
    match Hashtbl.find_opt l.volumes link with Some v -> !v | None -> 0.

  (* Canonical iteration over per-link volumes: sorted by {!compare_link}
     so every consumer (busiest link, profiles, reports) sees links in
     one deterministic order, whatever the hash-table layout. *)
  let fold l f init =
    Hashtbl.fold (fun link v acc -> (link, !v) :: acc) l.volumes []
    |> List.sort (fun (a, _) (b, _) -> compare_link a b)
    |> List.fold_left (fun acc (link, vol) -> f acc link vol) init

  let total_volume l = l.total

  let makespan l =
    let worst =
      fold l
        (fun acc link vol -> Float.max acc (vol /. link_bandwidth l.noc link))
        0.
    in
    if worst = 0. then 0. else worst +. l.worst_latency

  let busiest l =
    fold l
      (fun acc link vol ->
        let time = vol /. link_bandwidth l.noc link in
        match acc with
        | Some (_, best) when best >= time -> acc
        | _ -> Some (link, time))
      None

  let mean_utilization l ~horizon =
    if horizon <= 0. then 0.
    else
      let n = cores l.noc in
      let sum = ref 0. in
      for c = 0 to n - 1 do
        let vol =
          if is_mesh l.noc then
            (* On a mesh the port view does not exist; approximate each
               core's port load by the traffic on its outgoing edges. *)
            List.fold_left ( +. ) 0.
              (List.filter_map
                 (fun link ->
                   match link with
                   | Edge { from_core; _ } when from_core = c -> Some (volume_on l link)
                   | _ -> None)
                 (Hashtbl.fold (fun k _ acc -> k :: acc) l.volumes []))
          else volume_on l (Port_in (Core c)) +. volume_on l (Port_out (Core c))
        in
        let bw = l.noc.chip.Arch.intercore_link.Arch.bandwidth in
        let denominator = if is_mesh l.noc then bw *. 4. else bw *. 2. in
        sum := !sum +. Float.min 1. (vol /. denominator /. horizon)
      done;
      !sum /. float_of_int n
end

let broadcast_time t ~src ~dsts ~bytes_per_dst =
  check_node t src "broadcast_time";
  let loads = Load.create t in
  List.iter (fun d -> Load.add loads ~src ~dst:(Core d) ~bytes:bytes_per_dst) dsts;
  Load.makespan loads
