(** On-chip interconnect: topology, routing and link-load accounting.

    Elk targets two interconnect families (paper §5): the IPU-style
    all-to-all exchange, where any core reads any other core's SRAM at the
    link rate and concurrent transfers to/from one core serialize on that
    core's port; and the 2D mesh, where transfers traverse per-hop links
    under dimension-order (XY) routing and HBM controllers sit on the mesh
    edges.  This module gives both a common vocabulary: nodes, routes as
    link lists, per-link bandwidth, and a {!Load} accumulator that turns a
    set of transfers into per-link volumes and a makespan estimate — the
    quantity Elk's cost model uses for interconnect contention ("divide
    total traffic by link bandwidth", §4.3). *)

type node = Core of int | Hbm of int
(** Interconnect endpoints: cores and HBM controllers of one chip. *)

(** A unit of interconnect capacity that transfers serialize on.
    [Port_in]/[Port_out] are the per-node injection/ejection ports (the
    contended resource on the all-to-all fabric); [Edge] is a directed
    mesh link between adjacent cores; [Hbm_edge] attaches controller [h]
    to its boundary entry core. *)
type link =
  | Port_in of node
  | Port_out of node
  | Edge of { from_core : int; to_core : int }
  | Hbm_edge of { ctrl : int; entry : int }
  | L2_fabric
      (** the shared global fabric of a GPU-style clustered chip; carries
          all inter-cluster and HBM traffic. *)

type t
(** Routing tables and capacities for one chip. *)

val create : Elk_arch.Arch.chip -> t
(** Build the interconnect for a chip.  Raises [Invalid_argument] if the
    chip fails {!Elk_arch.Arch.validate_chip}. *)

val chip : t -> Elk_arch.Arch.chip
val cores : t -> int
val is_mesh : t -> bool

val validate_node : t -> node -> bool
(** Node exists on this chip. *)

val route : t -> src:node -> dst:node -> link list
(** Links traversed from [src] to [dst], in order.  The empty list when
    [src = dst].  Raises [Invalid_argument] on unknown nodes or on a
    core→HBM-controller route (controllers only send). *)

val hops : t -> src:node -> dst:node -> int
(** Length of {!route}. *)

val link_bandwidth : t -> link -> float
(** Capacity of one link in B/s.  Core ports run at the inter-core link
    rate; HBM controller ports and entry edges at the per-controller HBM
    rate. *)

val route_latency : t -> src:node -> dst:node -> float
(** Sum of per-hop latencies along the route. *)

val transfer_time : t -> src:node -> dst:node -> bytes:float -> float
(** Uncontended time to move [bytes]: route latency plus bytes over the
    bottleneck link bandwidth. *)

val hbm_ctrl_for_core : t -> int -> node
(** The controller that serves a core's preload requests (cores are
    striped over controllers). *)

val compare_link : link -> link -> int
(** A total order on links — the canonical ordering used by
    {!Load.fold}, deterministic across runs and worker counts. *)

val link_name : link -> string
(** Stable human-readable name, e.g. ["port_in(core 3)"],
    ["edge(3->4)"], ["hbm_edge(0->12)"]. *)

(** Accumulate a set of transfers into per-link volumes. *)
module Load : sig
  type loads

  val create : t -> loads
  val add : loads -> src:node -> dst:node -> bytes:float -> unit
  (** Attribute [bytes] to every link on the route. *)

  val volume_on : loads -> link -> float

  val fold : loads -> ('a -> link -> float -> 'a) -> 'a -> 'a
  (** [fold l f init] folds [f] over every (link, volume) pair in the
      canonical {!compare_link} order — deterministic whatever the
      insertion order, so consumers never re-enumerate links by hand.
      {!busiest} and {!makespan} are folds over this. *)

  val total_volume : loads -> float
  (** Sum over transfers of [bytes] (counted once per transfer, not per
      hop). *)

  val makespan : loads -> float
  (** Lower bound on completion time with perfect scheduling: the maximum
      over links of [volume / bandwidth], plus the worst route latency
      seen. *)

  val busiest : loads -> (link * float) option
  (** Most loaded link by transfer time [volume / bandwidth]; ties
      resolve to the link earliest in the canonical {!compare_link}
      order. *)

  val mean_utilization : loads -> horizon:float -> float
  (** Average over {e core} ports of [volume / bandwidth / horizon] —
    the "interconnect bandwidth utilization" metric of Fig 18(c). *)
end

val broadcast_time : t -> src:node -> dsts:int list -> bytes_per_dst:float -> float
(** Time for [src] to deliver [bytes_per_dst] to every destination core:
    the {!Load.makespan} of the per-destination transfers. *)
