(** The static schedule/plan verifier: Elk's compiled artifacts proved
    safe before they are emitted.

    {!run} executes six families of static analyses over a compiled
    {!Elk.Schedule.t} (and optionally its device {!Elk.Program.t}):

    - {b memory safety} — replays the preload windows step by step and
      proves, at byte granularity, that every step's execute space plus
      the preload space of every live (issued, not yet executed) operator
      fits the per-core SRAM; checks preload-order sanity (no double or
      late preloads) and per-operator byte conservation (preload bytes +
      distribution bytes must cover the execute-state HBM footprint);
    - {b dependency and order soundness} — graph edges vs the execute
      stream, and mutual consistency of [order], [windows], and the
      device program;
    - {b numeric hygiene} — every duration, space, and estimate must be
      a finite non-negative float, and [est_total] must agree with a
      fresh stall-free timeline re-evaluation within tolerance;
    - {b bandwidth feasibility} — the claimed makespan must be above the
      HBM-device and controller-injection rooflines of the plan's total
      traffic; per-window pressure ratios are reported as info-level
      lints;
    - {b reuse races} (opt-in) — joins the allocator's address layout
      with buffer lifetimes and the happens-before DAG ({!Hb}, {!Races})
      to flag address-overlapping buffers whose accesses are unordered;
    - {b interconnect deadlock} (opt-in) — channel-dependency-graph
      cycle analysis of the distribution/exchange transfers over the
      {!Elk_noc} routes ({!Deadlock}).

    The opt-in families run under {!Rules.lint_selection} (the [elk
    lint] subcommand), when named explicitly in a rule spec, or at
    compile time when the [ELK_LINT] environment variable is set.

    Diagnostics cite rules from {!Rules.all}; severities follow the
    registry.  Every diagnostic increments [elk_verify_diags_total] and a
    per-rule counter in the {!Elk_obs.Metrics} registry.

    At link time this module installs {!check} as {!Elk.Compile}'s plan
    verifier, so every [compile] refuses to emit an [Error]-flagged plan
    (warnings are logged through {!Elk_obs.Logger}). *)

type report = {
  model : string;
  n_ops : int;
  rules_checked : string list;  (** enabled rule ids, registry order. *)
  diags : Diag.t list;  (** sorted by {!Diag.order}. *)
}

val errors : report -> int
val warnings : report -> int
val infos : report -> int

val run :
  ?rules:Rules.selection ->
  ?promote:Rules.promotion ->
  ?layout:Elk.Alloc.allocation list ->
  ?program:Elk.Program.t ->
  Elk_partition.Partition.ctx ->
  Elk.Schedule.t ->
  report
(** Run every enabled analysis.  Analyses that replay the windows are
    skipped (not crashed) when the schedule fails structural validation —
    the structural failure itself is reported as
    [dep.schedule-structure].  [program] defaults to regenerating one
    from the schedule; pass the artifact's own program to also check
    mutual consistency ([dep.program-consistency]).  [promote] raises
    the named rules/families to error severity at emission time.
    [layout] is the plan's recorded address layout for the race
    analysis; it defaults to recomputing one from the schedule (which is
    self-consistent by construction — real race findings come from
    serialized plans whose recorded layout went stale against an edited
    ordering). *)

val check :
  Elk_partition.Partition.ctx ->
  Elk.Schedule.t ->
  Elk.Program.t ->
  (unit, string) result
(** The {!Elk.Compile.verifier}: runs {!run} with every non-opt-in rule
    enabled ({!Rules.lint_selection} instead when the [ELK_LINT]
    environment variable is set), logs warnings via {!Elk_obs.Logger},
    and returns [Error] summarizing the error-severity diagnostics (if
    any). *)

val install : unit -> unit
(** [Elk.Compile.set_verifier (Some check)] — performed automatically at
    module initialization (the library is linked with [-linkall]). *)

val pp_report : Format.formatter -> report -> unit
(** One diagnostic per line ({!Diag.pp}), then a one-line summary. *)

val report_to_json : report -> string
(** Self-contained JSON object with counts and all diagnostics. *)
