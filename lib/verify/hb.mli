(** Static happens-before DAG over a compiled plan (§4.5 device rules).

    Four nodes per operator — [Issue] (the [preload_async] is admitted),
    [Write] (the asynchronous SRAM delivery), [Exec] (distribution + tile
    compute), [Tail] (the exchange/reduction phase; the per-core exchange
    send/recv pairings are contracted into this node) — connected by
    exactly the orderings the device guarantees: per-core step order
    (which collapses to the total execute chain because every operator's
    core set is the prefix [0..cores_used-1]), sequential preload issue,
    preloads queuing behind every earlier execute, delivery after issue,
    tag-wait before the consuming execute, and graph dependencies.

    What the device does {e not} order is absent: a delivery [Write op]
    is concurrent with every execute between its issue point and its
    consuming execute — the window the race analysis probes.

    Reachability is answered by layered labels built in near-linear time:
    topological rank (ids are a topological order, refuting backward
    queries in O(1)), DFS pre/post intervals over a spanning forest
    (confirming forest paths in O(1)), and a packed ancestor closure for
    the residue.  All queries are O(1) after the build. *)

type node = Issue of int | Write of int | Exec of int | Tail of int

val node_op : node -> int
val pp_node : Format.formatter -> node -> unit
val node_name : node -> string

type t

val of_schedule : Elk.Schedule.t -> t
(** Build the DAG from the program the schedule lays out.  The schedule
    must pass the verifier's basic structural gate (consistent lengths,
    [order] a permutation); nodes referenced by an out-of-order program
    are simply absent rather than wrongly ordered. *)

val mem : t -> node -> bool
val reaches : t -> node -> node -> bool
(** [reaches t a b] — strict happens-before: an ordering chain of device
    guarantees forces [a] to complete before [b] starts. *)

val ordered : t -> node -> node -> bool
(** Either direction of {!reaches}. *)

val witness : t -> node -> node list
(** Shortest enabling chain root -> ... -> node (BFS over in-edges).
    Every element is an ancestor of [node], so the chain avoids anything
    [node] does not happen-after — a minimal interleaving witness that
    [node] can fire without waiting on any unordered event. *)

val pp_path : Format.formatter -> node list -> unit
(** ["issue(3) -> write(3)"]. *)

val path_name : node list -> string

val node_count : t -> int
val edge_count : t -> int

val query_stats : t -> int * int
(** (total queries, queries that fell through to the bitset closure) —
    observability for the labeling's effectiveness. *)
