type family = Memory | Dependency | Numeric | Bandwidth | Race | Deadlock

let family_name = function
  | Memory -> "mem"
  | Dependency -> "dep"
  | Numeric -> "num"
  | Bandwidth -> "bw"
  | Race -> "race"
  | Deadlock -> "deadlock"

type rule = {
  id : string;
  family : family;
  default_severity : Diag.severity;
  opt_in : bool;
  summary : string;
}

let all =
  [
    {
      id = "mem.capacity";
      family = Memory;
      default_severity = Diag.Error;
      opt_in = false;
      summary =
        "execute space + live preload space exceeds per-core SRAM at some step \
         although a fitting preload-option assignment exists";
    };
    {
      id = "mem.overcommit";
      family = Memory;
      default_severity = Diag.Warning;
      opt_in = false;
      summary =
        "SRAM overflows at some step even with minimal preload options (tolerated \
         fallback: the simulator charges the contention)";
    };
    {
      id = "mem.double-preload";
      family = Memory;
      default_severity = Diag.Error;
      opt_in = false;
      summary = "an operator appears twice (or out of range) in the preload order";
    };
    {
      id = "mem.use-before-preload";
      family = Memory;
      default_severity = Diag.Error;
      opt_in = false;
      summary = "an operator's preload window falls after its execution step";
    };
    {
      id = "mem.underfetch";
      family = Memory;
      default_severity = Diag.Error;
      opt_in = false;
      summary =
        "preload bytes + distribution bytes do not cover the operator's \
         execute-state HBM footprint (bytes would be used before they arrive)";
    };
    {
      id = "mem.overfetch";
      family = Memory;
      default_severity = Diag.Warning;
      opt_in = false;
      summary =
        "preload bytes + distribution bytes exceed the operator's execute-state \
         HBM footprint (wasted transfer)";
    };
    {
      id = "dep.edge-order";
      family = Dependency;
      default_severity = Diag.Error;
      opt_in = false;
      summary = "a graph dependency edge is violated by the execution order";
    };
    {
      id = "dep.schedule-structure";
      family = Dependency;
      default_severity = Diag.Error;
      opt_in = false;
      summary = "Schedule.validate rejects the schedule (structural invariant)";
    };
    {
      id = "dep.program-stream";
      family = Dependency;
      default_severity = Diag.Error;
      opt_in = false;
      summary = "Program.validate rejects the instruction stream";
    };
    {
      id = "dep.program-consistency";
      family = Dependency;
      default_severity = Diag.Error;
      opt_in = false;
      summary =
        "the device program disagrees with the program regenerated from the \
         schedule's order and windows";
    };
    {
      id = "num.finite";
      family = Numeric;
      default_severity = Diag.Error;
      opt_in = false;
      summary =
        "a duration, space, or estimate is NaN, infinite, or negative \
         (preload_len, dist_time, exec_time, spaces, est_total)";
    };
    {
      id = "num.est-drift";
      family = Numeric;
      default_severity = Diag.Warning;
      opt_in = false;
      summary =
        "est_total drifts from a fresh stall-free Timeline re-evaluation by more \
         than the tolerance";
    };
    {
      id = "bw.hbm-roofline";
      family = Bandwidth;
      default_severity = Diag.Warning;
      opt_in = false;
      summary =
        "total preload bytes exceed the HBM roofline of the claimed makespan \
         (est_total promises more than the devices can stream)";
    };
    {
      id = "bw.inject-roofline";
      family = Bandwidth;
      default_severity = Diag.Warning;
      opt_in = false;
      summary =
        "total injected preload bytes exceed the controllers' injection capacity \
         over the claimed makespan";
    };
    {
      id = "bw.window-roofline";
      family = Bandwidth;
      default_severity = Diag.Info;
      opt_in = false;
      summary =
        "a window's aggregate preload bytes far exceed the HBM or injection \
         roofline of its covering execution span (pressure absorbed by \
         contention stretch)";
    };
    (* The race/deadlock families are the lint layer: whole-plan
       soundness analyses over the happens-before DAG, the address
       layout, and the NoC routes.  Opt-in (excluded from the default
       verify selection and from the compile-time hook unless ELK_LINT
       is set): on compiler output they prove the absence of hazards
       rather than find them — the findings come from mutated,
       hand-written, or future fused plans. *)
    {
      id = "race.war";
      family = Race;
      default_severity = Diag.Error;
      opt_in = true;
      summary =
        "address-overlapping buffers where a write can land inside the other \
         buffer's live range: no happens-before path orders the reusing write \
         after the prior buffer's last read";
    };
    {
      id = "race.waw";
      family = Race;
      default_severity = Diag.Error;
      opt_in = true;
      summary =
        "address-overlapping buffers whose writes are mutually unordered in \
         the happens-before DAG (final contents depend on delivery timing)";
    };
    {
      id = "deadlock.cycle";
      family = Deadlock;
      default_severity = Diag.Error;
      opt_in = true;
      summary =
        "the channel-dependency graph of a distribution/exchange phase has a \
         cycle: each link on it can be held by a transfer waiting for the next";
    };
    {
      id = "deadlock.self-loop";
      family = Deadlock;
      default_severity = Diag.Error;
      opt_in = true;
      summary = "a transfer's route acquires the same interconnect link twice";
    };
  ]

let find id = List.find_opt (fun r -> r.id = id) all

type selection = {
  include_ : string list option;
  exclude : string list;
  with_opt_in : bool;
      (* whether an empty include list also enables opt-in rules — false
         for `elk verify` and the compile-time hook, true for `elk lint` *)
}

let default_selection = { include_ = None; exclude = []; with_opt_in = false }
let lint_selection = { include_ = None; exclude = []; with_opt_in = true }
let with_opt_in sel = { sel with with_opt_in = true }

let matches token id =
  token = id
  ||
  match String.index_opt id '.' with
  | Some dot -> String.sub id 0 dot = token
  | None -> false

let known_token token =
  List.exists (fun r -> matches token r.id) all

let selection_of_string spec =
  let tokens =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let bad =
    List.filter
      (fun t ->
        let t = if String.length t > 0 && t.[0] = '-' then String.sub t 1 (String.length t - 1) else t in
        not (known_token t))
      tokens
  in
  if bad <> [] then
    Error
      (Printf.sprintf
         "unknown rule(s) %s (valid: %s, or a family prefix \
          mem/dep/num/bw/race/deadlock)"
         (String.concat ", " bad)
         (String.concat ", " (List.map (fun r -> r.id) all)))
  else
    let inc, exc =
      List.partition_map
        (fun t ->
          if String.length t > 0 && t.[0] = '-' then
            Right (String.sub t 1 (String.length t - 1))
          else Left t)
        tokens
    in
    Ok
      {
        include_ = (if inc = [] then None else Some inc);
        exclude = exc;
        with_opt_in = false;
      }

let enabled sel id =
  (match sel.include_ with
  | None ->
      sel.with_opt_in
      || not (match find id with Some r -> r.opt_in | None -> false)
  | Some toks -> List.exists (fun t -> matches t id) toks)
  && not (List.exists (fun t -> matches t id) sel.exclude)

let enabled_ids sel =
  List.filter_map (fun r -> if enabled sel r.id then Some r.id else None) all

(* ---- severity promotion (--error=<family|rule>,...) ---- *)

type promotion = string list

let no_promotion = []

let promotion_of_string spec =
  let tokens =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  match List.filter (fun t -> not (known_token t)) tokens with
  | [] -> Ok tokens
  | bad ->
      Error
        (Printf.sprintf
           "unknown rule(s) %s in --error (valid: rule ids or a family prefix \
            mem/dep/num/bw/race/deadlock)"
           (String.concat ", " bad))

let promoted promo id = List.exists (fun t -> matches t id) promo
