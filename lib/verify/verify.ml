module P = Elk_partition.Partition
module A = Elk_arch.Arch
module S = Elk.Schedule
module G = Elk_model.Graph

type report = {
  model : string;
  n_ops : int;
  rules_checked : string list;
  diags : Diag.t list;
}

let count sev r =
  List.length (List.filter (fun d -> d.Diag.severity = sev) r.diags)

let errors = count Diag.Error
let warnings = count Diag.Warning
let infos = count Diag.Info

(* Tolerances.  Byte conservation is exact by construction, so one byte of
   absolute slack absorbs float noise; the estimate-drift and roofline
   tolerances were calibrated against the checked-in example models
   (measured worst drift 1.9%, rooflines comfortably met). *)
let capacity_eps = 1e-6
let bytes_eps = 1.0
let drift_tol = 0.10
let roofline_tol = 0.05
let window_slack = 8.0
let max_window_diags = 12

let severity_of id =
  match Rules.find id with
  | Some r -> r.Rules.default_severity
  | None -> invalid_arg ("Verify: unregistered rule " ^ id)

let metric_of_rule id =
  "elk_verify_diag_"
  ^ String.map (fun c -> if c = '.' || c = '-' then '_' else c) id
  ^ "_total"

(* One analysis = one closure per rule family; [emit] appends a diagnostic
   under the rule's registered severity (raised to Error when the rule is
   promoted, so error counting and exit codes follow). *)
let run ?(rules = Rules.default_selection) ?(promote = Rules.no_promotion)
    ?layout ?program ctx (s : S.t) =
  let n = S.num_ops s in
  let graph = s.S.graph in
  let chip = P.ctx_chip ctx in
  let capacity = A.usable_sram_per_core chip in
  let acc = ref [] in
  let on id = Rules.enabled rules id in
  let emit id ?loc ?payload msg =
    let severity =
      if Rules.promoted promote id then Diag.Error else severity_of id
    in
    acc := Diag.make ~rule:id ~severity ?loc ?payload msg :: !acc
  in

  (* --- Structural gate: replay-based analyses need a well-formed
     schedule; a malformed one is itself the finding. --- *)
  let struct_ok =
    match S.validate s with
    | Ok () -> true
    | Error msg ->
        if on "dep.schedule-structure" then
          emit "dep.schedule-structure" ("schedule rejected: " ^ msg);
        false
  in
  (* [Schedule.validate] also rejects late preloads and bad numerics, which
     this verifier wants to replay and report precisely itself — so the
     window-replay analyses run under a weaker gate: consistent lengths,
     well-formed windows, and [order] a permutation. *)
  let basic_ok =
    G.length graph = n
    && Array.length s.S.order = n
    && Array.length s.S.entries = n
    && Array.length s.S.windows = n + 1
    && Array.for_all (fun w -> w >= 0) s.S.windows
    && Array.fold_left ( + ) 0 s.S.windows = n
    &&
    let seen = Array.make (max n 1) false in
    Array.for_all
      (fun id ->
        id >= 0 && id < n
        &&
        if seen.(id) then false
        else begin
          seen.(id) <- true;
          true
        end)
      s.S.order
  in

  (* --- dep.edge-order: graph edges vs the execute stream. --- *)
  if on "dep.edge-order" then begin
    Array.iter
      (fun node ->
        List.iter
          (fun d ->
            if d >= node.G.id then
              emit "dep.edge-order" ~loc:(Diag.at_op node.G.id)
                ~payload:[ ("dep", Diag.Int d) ]
                (Printf.sprintf "depends on op %d, which does not precede it" d))
          node.G.deps)
      (G.nodes graph);
    match program with
    | None -> ()
    | Some (p : Elk.Program.t) ->
        let executed = Array.make (max n 1) false in
        Array.iter
          (function
            | Elk.Program.Preload_async _ -> ()
            | Elk.Program.Execute op ->
                if op >= 0 && op < n then begin
                  List.iter
                    (fun d ->
                      if d >= 0 && d < n && not executed.(d) then
                        emit "dep.edge-order" ~loc:(Diag.at_op op)
                          ~payload:[ ("dep", Diag.Int d) ]
                          (Printf.sprintf "executed before its dependency op %d" d))
                    (G.get graph op).G.deps;
                  executed.(op) <- true
                end)
          p.Elk.Program.instrs
  end;

  (* --- mem.double-preload: the order must mention each op exactly once. --- *)
  if on "mem.double-preload" then begin
    let seen = Array.make (max n 1) false in
    Array.iteri
      (fun k id ->
        if id < 0 || id >= n then
          emit "mem.double-preload"
            ~payload:[ ("position", Diag.Int k) ]
            (Printf.sprintf "preload position %d names unknown op %d" k id)
        else if seen.(id) then
          emit "mem.double-preload" ~loc:(Diag.at_op id)
            ~payload:[ ("position", Diag.Int k) ]
            (Printf.sprintf "preloaded more than once (again at position %d)" k)
        else seen.(id) <- true)
      s.S.order
  end;

  (* --- num.finite: every duration, space, and volume of the artifact. --- *)
  if on "num.finite" then begin
    let bad v = not (Float.is_finite v) || v < 0. in
    let check_op id fields =
      match List.find_opt (fun (_, v) -> bad v) fields with
      | None -> ()
      | Some (name, v) ->
          emit "num.finite" ~loc:(Diag.at_op id)
            ~payload:[ ("field", Diag.Str name); ("value", Diag.Num v) ]
            (Printf.sprintf "%s is %h (must be finite and >= 0)" name v)
    in
    Array.iter
      (fun (e : S.op_entry) ->
        check_op e.S.node_id
          [
            ("preload_len", e.S.preload_len);
            ("dist_time", e.S.dist_time);
            ("plan.exec_space", e.S.plan.P.exec_space);
            ("plan.exec_time", e.S.plan.P.exec_time);
            ("plan.hbm_needed_per_core", e.S.plan.P.hbm_needed_per_core);
            ("popt.preload_space", e.S.popt.P.preload_space);
            ("popt.dist_bytes_per_core", e.S.popt.P.dist_bytes_per_core);
            ("popt.dist_time", e.S.popt.P.dist_time);
            ("popt.hbm_device_bytes", e.S.popt.P.hbm_device_bytes);
            ("popt.noc_inject_bytes", e.S.popt.P.noc_inject_bytes);
          ])
      s.S.entries;
    if (not (Float.is_finite s.S.est_total)) || s.S.est_total < 0. then
      emit "num.finite"
        ~payload:[ ("field", Diag.Str "est_total"); ("value", Diag.Num s.S.est_total) ]
        (Printf.sprintf "est_total is %h (must be finite and >= 0)" s.S.est_total)
  end;

  (* --- mem.underfetch / mem.overfetch: byte conservation per operator.
     Preload-state bytes plus distribution-phase bytes must cover the
     execute-state HBM footprint exactly. --- *)
  if on "mem.underfetch" || on "mem.overfetch" then
    Array.iter
      (fun (e : S.op_entry) ->
        let supplied = e.S.popt.P.preload_space +. e.S.popt.P.dist_bytes_per_core in
        let needed = e.S.plan.P.hbm_needed_per_core in
        let payload =
          [ ("supplied_bytes", Diag.Num supplied); ("needed_bytes", Diag.Num needed) ]
        in
        if supplied < needed -. bytes_eps && on "mem.underfetch" then
          emit "mem.underfetch" ~loc:(Diag.at_op e.S.node_id) ~payload
            (Printf.sprintf
               "preload + distribution supply %.0f B/core but execution needs \
                %.0f B/core"
               supplied needed)
        else if supplied > needed +. bytes_eps && on "mem.overfetch" then
          emit "mem.overfetch" ~loc:(Diag.at_op e.S.node_id) ~payload
            (Printf.sprintf
               "preload + distribution move %.0f B/core for a %.0f B/core \
                footprint (wasted transfer)"
               supplied needed))
      s.S.entries;

  (* --- bandwidth rooflines: the claimed makespan must be achievable by
     the HBM devices and the injection fabric for the plan's total
     traffic.  Skipped on the [est_total = 0] sentinel. --- *)
  if s.S.est_total > 0. then begin
    let total_hbm =
      Array.fold_left (fun a (e : S.op_entry) -> a +. e.S.popt.P.hbm_device_bytes) 0.
        s.S.entries
    and total_inj =
      Array.fold_left (fun a (e : S.op_entry) -> a +. e.S.popt.P.noc_inject_bytes) 0.
        s.S.entries
    in
    let hbm_floor = total_hbm /. chip.A.hbm_bandwidth in
    let inj_floor = total_inj /. P.inject_rate chip in
    if on "bw.hbm-roofline" && hbm_floor > s.S.est_total *. (1. +. roofline_tol) then
      emit "bw.hbm-roofline"
        ~payload:
          [
            ("hbm_bytes", Diag.Num total_hbm);
            ("hbm_floor_s", Diag.Num hbm_floor);
            ("est_total_s", Diag.Num s.S.est_total);
          ]
        (Printf.sprintf
           "claimed makespan %.3e s is below the HBM streaming floor %.3e s \
            for %.0f total bytes"
           s.S.est_total hbm_floor total_hbm);
    if on "bw.inject-roofline" && inj_floor > s.S.est_total *. (1. +. roofline_tol) then
      emit "bw.inject-roofline"
        ~payload:
          [
            ("inject_bytes", Diag.Num total_inj);
            ("inject_floor_s", Diag.Num inj_floor);
            ("est_total_s", Diag.Num s.S.est_total);
          ]
        (Printf.sprintf
           "claimed makespan %.3e s is below the injection floor %.3e s for \
            %.0f injected bytes"
           s.S.est_total inj_floor total_inj)
  end;

  (* --- dep.program-stream: the instruction stream on its own. --- *)
  (match program with
  | None -> ()
  | Some p ->
      if on "dep.program-stream" then begin
        match Elk.Program.validate p ~n with
        | Ok () -> ()
        | Error msg -> emit "dep.program-stream" ("program rejected: " ^ msg)
      end);

  (* Replay-based analyses below require the weaker structural gate. *)
  if basic_ok && n > 0 then begin
    let pos = S.position_of s in
    let step = S.preload_step s in

    (* --- mem.use-before-preload: an operator's window must close before
       its execution step (window [id] at the latest). --- *)
    if on "mem.use-before-preload" then
      Array.iteri
        (fun id p ->
          if step.(p) > id then
            emit "mem.use-before-preload" ~loc:(Diag.at_op_step ~op:id ~step:step.(p))
              ~payload:[ ("window", Diag.Int step.(p)); ("position", Diag.Int p) ]
              (Printf.sprintf "preloaded in window %d, after its execution" step.(p)))
        pos;

    (* --- mem.capacity / mem.overcommit: per-step SRAM liveness replay.
       At step i the executing operator holds its execute space while
       every issued-but-not-yet-executed operator holds its preload
       space.  The replay itself lives in [Elk.Residency] (shared with
       the memory-observability ledger, so the two views cannot drift);
       this rule keeps the severity split: an overflow is an [Error]
       when some preload-option assignment would have fitted (the
       artifact is wrong), and a [Warning] when even minimal options
       overflow (the documented smallest-plan fallback, charged as
       contention downstream). --- *)
    if on "mem.capacity" || on "mem.overcommit" then begin
      let issued = Elk.Residency.issued_counts s in
      let usage_at = Elk.Residency.step_usage s in
      let min_space = Hashtbl.create 16 in
      let minimal_space id =
        match Hashtbl.find_opt min_space id with
        | Some v -> v
        | None ->
            let e = s.S.entries.(id) in
            let v =
              match P.preload_options ctx (G.get graph id).G.op e.S.plan with
              | [] -> e.S.popt.P.preload_space
              | o :: _ -> o.P.preload_space (* sorted by increasing space *)
            in
            Hashtbl.add min_space id v;
            v
      in
      for i = 0 to n - 1 do
        let usage = ref usage_at.(i) in
        let floor = ref s.S.entries.(i).S.plan.P.exec_space in
        for k = 0 to issued.(i) - 1 do
          let w = s.S.order.(k) in
          if w > i then floor := !floor +. minimal_space w
        done;
        if !usage > capacity +. capacity_eps then begin
          let payload =
            [
              ("usage_bytes", Diag.Num !usage);
              ("capacity_bytes", Diag.Num capacity);
              ("overflow_bytes", Diag.Num (!usage -. capacity));
            ]
          in
          if !floor <= capacity +. capacity_eps then begin
            if on "mem.capacity" then
              emit "mem.capacity" ~loc:(Diag.at_op_step ~op:i ~step:i) ~payload
                (Printf.sprintf
                   "%.0f B/core live (%.0f B over per-core SRAM) although a \
                    fitting preload-option assignment exists"
                   !usage (!usage -. capacity))
          end
          else if on "mem.overcommit" then
            emit "mem.overcommit" ~loc:(Diag.at_op_step ~op:i ~step:i) ~payload
              (Printf.sprintf
                 "%.0f B/core live (%.0f B over per-core SRAM) even with minimal \
                  preload options; contention is charged downstream"
                 !usage (!usage -. capacity))
        end
      done
    end;

    (* --- dep.program-consistency: the artifact's program vs the one the
       schedule lays out. --- *)
    (match program with
    | None -> ()
    | Some p ->
        if on "dep.program-consistency" then begin
          let expected = Elk.Program.of_schedule s in
          let ei = expected.Elk.Program.instrs and pi = p.Elk.Program.instrs in
          if Array.length ei <> Array.length pi then
            emit "dep.program-consistency"
              ~payload:
                [
                  ("expected_len", Diag.Int (Array.length ei));
                  ("got_len", Diag.Int (Array.length pi));
                ]
              (Printf.sprintf
                 "program has %d instructions but the schedule lays out %d"
                 (Array.length pi) (Array.length ei))
          else
            let mismatch = ref None in
            Array.iteri
              (fun k instr -> if !mismatch = None && pi.(k) <> instr then mismatch := Some k)
              ei;
            match !mismatch with
            | None -> ()
            | Some k ->
                let show = function
                  | Elk.Program.Preload_async op -> Printf.sprintf "preload_async(%d)" op
                  | Elk.Program.Execute op -> Printf.sprintf "execute(%d)" op
                in
                emit "dep.program-consistency"
                  ~payload:
                    [
                      ("instr", Diag.Int k);
                      ("expected", Diag.Str (show ei.(k)));
                      ("got", Diag.Str (show pi.(k)));
                    ]
                  (Printf.sprintf
                     "instr %d: program says %s but the schedule lays out %s" k
                     (show pi.(k)) (show ei.(k)))
        end);

    (* --- num.est-drift: the claimed makespan vs a fresh stall-free
       timeline re-evaluation (interconnect contention excluded: the
       scheduler's estimate predates the contention model).  Schedules
       carrying the [est_total = 0] sentinel (baselines, deserialized
       plans) are exempt; the timeline replays only fully valid
       schedules. --- *)
    if on "num.est-drift" && struct_ok && s.S.est_total > 0. then begin
      let tl = Elk.Timeline.evaluate ctx s in
      let stall_free = tl.Elk.Timeline.total -. tl.Elk.Timeline.bd.Elk.Timeline.interconnect in
      let drift =
        Float.abs (s.S.est_total -. stall_free) /. Float.max 1e-12 stall_free
      in
      if drift > drift_tol then
        emit "num.est-drift"
          ~payload:
            [
              ("est_total", Diag.Num s.S.est_total);
              ("reevaluated", Diag.Num stall_free);
              ("drift", Diag.Num drift);
            ]
          (Printf.sprintf
             "est_total %.3e s drifts %.1f%% from the re-evaluated stall-free \
              makespan %.3e s"
             s.S.est_total (100. *. drift) stall_free)
    end;

    (* --- bw.window-roofline (info): windows whose aggregate preload
       traffic far exceeds what the covering execution span can stream —
       pressure the timeline absorbs as contention stretch.  HBM-bound
       decode graphs exceed 1x routinely, hence the wide slack and info
       severity. --- *)
    if on "bw.window-roofline" then begin
      let offenders = ref [] in
      let k = ref s.S.windows.(0) in
      for i = 0 to n - 1 do
        let hbm = ref 0. and inj = ref 0. in
        for _ = 1 to s.S.windows.(i + 1) do
          let w = s.S.order.(!k) in
          hbm := !hbm +. s.S.entries.(w).S.popt.P.hbm_device_bytes;
          inj := !inj +. s.S.entries.(w).S.popt.P.noc_inject_bytes;
          incr k
        done;
        let span = s.S.entries.(i).S.plan.P.exec_time in
        if span > 0. && s.S.windows.(i + 1) > 0 then begin
          let ratio =
            Float.max
              (!hbm /. chip.A.hbm_bandwidth /. span)
              (!inj /. P.inject_rate chip /. span)
          in
          if ratio > window_slack then offenders := (ratio, i, !hbm) :: !offenders
        end
      done;
      let offenders =
        List.sort (fun (a, _, _) (b, _, _) -> compare b a) !offenders
      in
      List.iteri
        (fun rank (ratio, i, hbm) ->
          if rank < max_window_diags then
            emit "bw.window-roofline" ~loc:(Diag.at_step i)
              ~payload:[ ("ratio", Diag.Num ratio); ("window_hbm_bytes", Diag.Num hbm) ]
              (Printf.sprintf
                 "window %d preloads %.1fx more than its covering execution span \
                  can stream"
                 (i + 1) ratio))
        offenders;
      let extra = List.length offenders - max_window_diags in
      if extra > 0 then
        emit "bw.window-roofline"
          ~payload:[ ("suppressed", Diag.Int extra) ]
          (Printf.sprintf "%d more windows exceed the %.0fx roofline slack" extra
             window_slack)
    end;

    (* --- race.* / deadlock.*: the opt-in lint layer.  Both analyses
       interpret the device program, so they require a stream that the
       device would accept — invalid streams are already the
       dep.program-stream finding. --- *)
    let lint_wanted =
      on "race.war" || on "race.waw" || on "deadlock.cycle"
      || on "deadlock.self-loop"
    in
    if lint_wanted && Elk.Program.validate (Elk.Program.of_schedule s) ~n = Ok ()
    then begin
      let emit_lint id loc payload msg = emit id ~loc ~payload msg in
      if on "race.war" || on "race.waw" then begin
        let hb = Hb.of_schedule s in
        (* A recomputed layout is self-consistent with the schedule it
           came from; race findings need the plan's *recorded* layout
           (e.g. from a serialized plan whose ordering was edited). *)
        let layout =
          match layout with
          | Some l -> l
          | None -> Elk.Alloc.layout_of_schedule s
        in
        Races.check ~emit:emit_lint ~on ~hb ~layout s
      end;
      if on "deadlock.cycle" || on "deadlock.self-loop" then
        Deadlock.check ~emit:emit_lint ~on (Elk_noc.Noc.create chip) s
    end
  end;

  let diags = List.sort Diag.order !acc in
  List.iter
    (fun d ->
      Elk_obs.Metrics.incr "elk_verify_diags_total"
        ~help:"Diagnostics produced by the static plan verifier";
      Elk_obs.Metrics.incr (metric_of_rule d.Diag.rule)
        ~help:"Diagnostics produced by one verifier rule")
    diags;
  { model = G.name graph; n_ops = n; rules_checked = Rules.enabled_ids rules; diags }

let check ctx sched prog =
  let rules =
    (* ELK_LINT arms the opt-in race/deadlock families at compile time. *)
    if Sys.getenv_opt "ELK_LINT" <> None then Rules.lint_selection
    else Rules.default_selection
  in
  let r = run ~rules ~program:prog ctx sched in
  List.iter
    (fun d ->
      if d.Diag.severity = Diag.Warning then
        Elk_obs.Logger.warn ~src:"verify"
          ~kvs:[ ("rule", d.Diag.rule); ("model", r.model) ]
          d.Diag.message)
    r.diags;
  if errors r = 0 then Ok ()
  else
    let firsts =
      List.filter (fun d -> d.Diag.severity = Diag.Error) r.diags
      |> List.filteri (fun i _ -> i < 3)
      |> List.map (fun d -> Format.asprintf "%a" Diag.pp d)
    in
    Error
      (Printf.sprintf "%d error diagnostic(s): %s" (errors r)
         (String.concat "; " firsts))

let install () = Elk.Compile.set_verifier (Some check)
let () = install ()

let pp_report fmt r =
  List.iter (fun d -> Format.fprintf fmt "%a@." Diag.pp d) r.diags;
  Format.fprintf fmt "%s: %d error(s), %d warning(s), %d info(s) — %d rules over %d ops@."
    r.model (errors r) (warnings r) (infos r)
    (List.length r.rules_checked)
    r.n_ops

module J = Elk_obs.Jsonx

let report_to_json r =
  Printf.sprintf
    "{\"model\":%s,\"ops\":%d,\"rules\":[%s],\"errors\":%d,\"warnings\":%d,\"infos\":%d,\"diagnostics\":[%s]}"
    (J.quote r.model) r.n_ops
    (String.concat "," (List.map J.quote r.rules_checked))
    (errors r) (warnings r) (infos r)
    (String.concat "," (List.map Diag.to_json r.diags))
