(* Buffer-reuse race detection: join the allocator's address intervals
   with Residency-style lifetimes and demand a happens-before ordering
   for every pair of address-overlapping buffers.

   Access model per buffer:

     preload buffer of op  - first access (the write): Hb.Write op, the
                             asynchronous delivery, in flight anywhere
                             between issue and the consuming execute;
                             last access (the read): Hb.Exec op, the
                             distribution phase consuming the bytes.
     execute buffer of op  - first access (the write): Hb.Exec op, the
                             distribution/compute writing the execute
                             state; last access (the read): Hb.Tail op,
                             the exchange tail reading partial results.

   Two address-overlapping buffers A and B are safe iff one's last
   access happens-before the other's first access (their occupations are
   serialized by device guarantees).  Otherwise:

     race.war - the writes are ordered, so the hazard is the later write
                landing while the earlier buffer may still be read;
     race.waw - even the two writes are mutually unordered.

   An operator's own preload and execute buffers are exempt: the
   distribute phase converts one into the other in place, which the
   step-granularity model cannot order (and the allocator never overlaps
   them anyway).

   The witness in each diagnostic is the clobbering write's shortest
   enabling chain (Hb.witness): every element is an ancestor of the
   write, so none of it waits on the victim's unordered last access —
   a minimal interleaving in which the write lands inside the victim's
   live range. *)

module S = Elk.Schedule
module A = Elk.Alloc

let acquire (a : A.allocation) =
  match a.A.a_kind with
  | Elk.Residency.Preload -> Hb.Write a.A.a_op
  | Elk.Residency.Exec -> Hb.Exec a.A.a_op

let release (a : A.allocation) =
  match a.A.a_kind with
  | Elk.Residency.Preload -> Hb.Exec a.A.a_op
  | Elk.Residency.Exec -> Hb.Tail a.A.a_op

let buffer_label (a : A.allocation) =
  Printf.sprintf "%s buffer of op %d [%.0f, %.0f)"
    (Elk.Residency.kind_name a.A.a_kind)
    a.A.a_op a.A.a_base (a.A.a_base +. a.A.a_size)

let check ~emit ~on ~(hb : Hb.t) ~(layout : A.allocation list) (_s : S.t) =
  (* Only buffers whose four events all exist can be judged; a plan whose
     program never issues or executes an operator is flagged by the dep
     family instead. *)
  let judgeable a = Hb.mem hb (acquire a) && Hb.mem hb (release a) in
  let allocs =
    layout
    |> List.filter (fun a -> a.A.a_size > 0. && judgeable a)
    |> List.sort (fun a b ->
           compare (a.A.a_base, a.A.a_op, a.A.a_kind) (b.A.a_base, b.A.a_op, b.A.a_kind))
    |> Array.of_list
  in
  let m = Array.length allocs in
  for i = 0 to m - 1 do
    let a = allocs.(i) in
    let j = ref (i + 1) in
    (* Sorted by base: every candidate overlapping a starts before a's
       end, so the inner scan stops at the first non-overlapping base. *)
    while !j < m && allocs.(!j).A.a_base < a.A.a_base +. a.A.a_size do
      let b = allocs.(!j) in
      incr j;
      if b.A.a_op <> a.A.a_op && A.overlaps a b then begin
        let safe =
          Hb.reaches hb (release a) (acquire b)
          || Hb.reaches hb (release b) (acquire a)
        in
        if not safe then begin
          let writes_ordered = Hb.ordered hb (acquire a) (acquire b) in
          let rule = if writes_ordered then "race.war" else "race.waw" in
          if on rule then begin
            (* Present the pair as victim (whose live range is entered)
               and clobberer (whose write is unordered with the victim's
               last access); when even the writes are unordered the
               choice is conventional — lower op id is the victim. *)
            let victim, clobber =
              if writes_ordered then
                if Hb.reaches hb (acquire a) (acquire b) then (a, b) else (b, a)
              else if a.A.a_op < b.A.a_op then (a, b)
              else (b, a)
            in
            let path = Hb.witness hb (acquire clobber) in
            emit rule
              (Diag.at_op clobber.A.a_op)
              [
                ("victim_op", Diag.Int victim.A.a_op);
                ("victim_kind", Diag.Str (Elk.Residency.kind_name victim.A.a_kind));
                ("clobber_op", Diag.Int clobber.A.a_op);
                ("clobber_kind", Diag.Str (Elk.Residency.kind_name clobber.A.a_kind));
                ("base", Diag.Num (Float.max a.A.a_base b.A.a_base));
                ( "overlap_bytes",
                  Diag.Num
                    (Float.min (a.A.a_base +. a.A.a_size) (b.A.a_base +. b.A.a_size)
                    -. Float.max a.A.a_base b.A.a_base) );
              ]
              (Printf.sprintf
                 "%s overlaps %s but %s and %s are unordered in the \
                  happens-before DAG; witness: %s can fire while %s is live"
                 (buffer_label clobber) (buffer_label victim)
                 (Hb.node_name (acquire clobber))
                 (Hb.node_name (release victim))
                 (Hb.path_name path)
                 (buffer_label victim))
          end
        end
      end
    done
  done
