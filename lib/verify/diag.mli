(** Diagnostics: the unit of output of every static analysis in
    [Elk_verify].

    A diagnostic carries the id of the rule that produced it, a severity,
    an optional location (operator id, execution step, core), a
    human-readable message, and a machine-readable payload of named
    values, so that downstream tooling (CI gates, dashboards) can act on
    the numbers without parsing prose. *)

type severity = Error | Warning | Info

val severity_name : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val severity_rank : severity -> int
(** Error = 0, Warning = 1, Info = 2 — ascending means less severe. *)

type value = Num of float | Int of int | Str of string

type location = {
  op : int option;  (** operator id in the chip graph. *)
  step : int option;  (** execution step (0-based; -1 = initial batch). *)
  core : int option;  (** core id, when an analysis is per-core. *)
}

val no_loc : location
val at_op : int -> location
val at_step : int -> location
val at_op_step : op:int -> step:int -> location

type t = {
  rule : string;  (** id of the rule that fired, e.g. ["mem.capacity"]. *)
  severity : severity;
  loc : location;
  message : string;
  payload : (string * value) list;
}

val make :
  rule:string ->
  severity:severity ->
  ?loc:location ->
  ?payload:(string * value) list ->
  string ->
  t

val order : t -> t -> int
(** Deterministic sort key for reports: rule id first, then core, then
    step, with (op, severity, message) as a total tiebreak — independent
    of emission order, so reports are byte-identical across runs and
    [--jobs] settings. *)

val pp : Format.formatter -> t -> unit
(** One line: [error[mem.capacity] op 3 step 2: message]. *)

val to_json : t -> string
(** One self-contained JSON object. *)
