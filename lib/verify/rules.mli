(** The registry of verification rules and rule selection.

    Every diagnostic produced by {!Verify.run} cites a rule id from this
    registry.  Ids are [family.name] ([mem.capacity], [dep.edge-order],
    ...); the six families mirror the analysis families of the verifier:

    - [mem] — memory safety: per-step SRAM liveness, byte conservation;
    - [dep] — dependency and order soundness: graph edges vs execute
      order, schedule/program mutual consistency;
    - [num] — numeric hygiene: finiteness, estimate drift;
    - [bw]  — bandwidth feasibility: HBM and injection rooflines;
    - [race] — SRAM buffer-reuse races: address-overlapping buffers not
      ordered by the happens-before DAG ({!Hb}, {!Races});
    - [deadlock] — channel-dependency cycles in the distribution and
      exchange transfers over the NoC routes ({!Deadlock}).

    The [race]/[deadlock] families are {e opt-in}: excluded from the
    default selection (so [elk verify] and the compile-time hook keep
    their historical rule set) and enabled by {!lint_selection}, by
    naming them in a selection spec, or by the [ELK_LINT] environment
    variable for the compile-time hook. *)

type family = Memory | Dependency | Numeric | Bandwidth | Race | Deadlock

val family_name : family -> string
(** ["mem"], ["dep"], ["num"], ["bw"], ["race"], ["deadlock"] — also the
    id prefix. *)

type rule = {
  id : string;
  family : family;
  default_severity : Diag.severity;
  opt_in : bool;
      (** excluded from {!default_selection}; selected by
          {!lint_selection} or by naming the rule/family explicitly. *)
  summary : string;  (** one line, shown by [elk verify --rules help]. *)
}

val all : rule list
(** Every rule, in family order — the row order of the documentation
    table. *)

val find : string -> rule option

(** {1 Selection}

    A selection is parsed from a comma-separated spec.  Each token is a
    rule id or a family prefix; a leading ['-'] suppresses instead of
    selecting.  If any non-suppressing token is present, only the named
    rules run (minus suppressions); otherwise all rules run minus
    suppressions.  Examples: ["mem,dep"], ["-bw.window-roofline"],
    ["mem,-mem.overfetch"], ["race,deadlock"]. *)

type selection

val default_selection : selection
(** Every non-opt-in rule enabled. *)

val lint_selection : selection
(** Every rule enabled, opt-in families included — what [elk lint]
    runs. *)

val with_opt_in : selection -> selection
(** Make a parsed selection's implicit "everything" also cover opt-in
    rules (explicitly named rules are always covered). *)

val selection_of_string : string -> (selection, string) result
(** Parse a spec; unknown tokens are reported as an error listing the
    valid ids. *)

val enabled : selection -> string -> bool
(** Whether a rule id is enabled under the selection. *)

val enabled_ids : selection -> string list
(** The enabled rule ids, in {!all} order. *)

(** {1 Severity promotion}

    [--error=race,deadlock] promotes whole families (or single rules) to
    error severity, turning "reported" into "build-failing".  Promotion
    applies at emission time, so error counting and exit codes follow. *)

type promotion

val no_promotion : promotion

val promotion_of_string : string -> (promotion, string) result
(** Comma-separated rule ids or family prefixes; unknown tokens are an
    error. *)

val promoted : promotion -> string -> bool
(** Whether diagnostics of a rule id are promoted to {!Diag.Error}. *)
