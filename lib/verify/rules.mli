(** The registry of verification rules and rule selection.

    Every diagnostic produced by {!Verify.run} cites a rule id from this
    registry.  Ids are [family.name] ([mem.capacity], [dep.edge-order],
    ...); the four families mirror the analysis families of the verifier:

    - [mem] — memory safety: per-step SRAM liveness, byte conservation;
    - [dep] — dependency and order soundness: graph edges vs execute
      order, schedule/program mutual consistency;
    - [num] — numeric hygiene: finiteness, estimate drift;
    - [bw]  — bandwidth feasibility: HBM and injection rooflines. *)

type family = Memory | Dependency | Numeric | Bandwidth

val family_name : family -> string
(** ["mem"], ["dep"], ["num"], ["bw"] — also the id prefix. *)

type rule = {
  id : string;
  family : family;
  default_severity : Diag.severity;
  summary : string;  (** one line, shown by [elk verify --rules help]. *)
}

val all : rule list
(** Every rule, in family order — the row order of the documentation
    table. *)

val find : string -> rule option

(** {1 Selection}

    A selection is parsed from a comma-separated spec.  Each token is a
    rule id or a family prefix; a leading ['-'] suppresses instead of
    selecting.  If any non-suppressing token is present, only the named
    rules run (minus suppressions); otherwise all rules run minus
    suppressions.  Examples: ["mem,dep"], ["-bw.window-roofline"],
    ["mem,-mem.overfetch"]. *)

type selection

val default_selection : selection
(** Every rule enabled. *)

val selection_of_string : string -> (selection, string) result
(** Parse a spec; unknown tokens are reported as an error listing the
    valid ids. *)

val enabled : selection -> string -> bool
(** Whether a rule id is enabled under the selection. *)

val enabled_ids : selection -> string list
(** The enabled rule ids, in {!all} order. *)
