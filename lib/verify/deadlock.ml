(* Channel-dependency-graph deadlock analysis over the exchange schedule.

   Classic CDG construction (Dally & Seitz): nodes are interconnect
   links; a transfer whose route acquires link L1 immediately before L2
   contributes the edge L1 -> L2 (holding L1 while waiting for L2).
   A cycle in the CDG is a potential circular wait — every link on the
   cycle held by a transfer that waits for the next.

   The transfers are the plan's communication phases, re-expanded from
   the per-op contraction the Hb DAG uses to per-transfer granularity:

     - distribution ring of op (preload-state -> execute-state):
       Core((c+1) mod m) -> Core(c) for each of the m = cores_used
       cores, when the op distributes bytes;
     - exchange/reduction ring of op:
       Core((c+m-1) mod m) -> Core(c), when the op exchanges bytes —

   exactly the send/recv pairings the simulator replays.  Phases are
   barrier-separated (an execute's distribution completes before its
   compute, which completes before its exchange, and executes are
   serialized), so only same-phase transfers can hold links
   concurrently: the CDG is built per phase and an edge records the
   (op, phase) that contributed it for the diagnostic.

   On the deployed topologies the analysis proves the absence of
   deadlock: XY dimension-order routing on the mesh orders link
   acquisitions lexicographically (X-edges before Y-edges, monotone
   coordinates) and the all-to-all fabric is bipartite
   (Port_out -> Port_in only), both acyclic by construction.  The rule
   exists for what the machine model cannot promise: hand-written
   route tables and future adaptive-routing or fused multi-op phases. *)

module S = Elk.Schedule
module P = Elk_partition.Partition
module N = Elk_noc.Noc

type phase = Dist | Exch

let phase_name = function Dist -> "distribute" | Exch -> "exchange"

type transfer = { t_op : int; t_phase : phase; t_route : N.link list }

let link_name (l : N.link) =
  match l with
  | N.Port_in (N.Core c) -> Printf.sprintf "port_in(core %d)" c
  | N.Port_in (N.Hbm h) -> Printf.sprintf "port_in(hbm %d)" h
  | N.Port_out (N.Core c) -> Printf.sprintf "port_out(core %d)" c
  | N.Port_out (N.Hbm h) -> Printf.sprintf "port_out(hbm %d)" h
  | N.Edge { from_core; to_core } -> Printf.sprintf "edge(%d->%d)" from_core to_core
  | N.Hbm_edge { ctrl; entry } -> Printf.sprintf "hbm_edge(%d->%d)" ctrl entry
  | N.L2_fabric -> "l2_fabric"

(* The plan's communication transfers, mirroring the simulator's ring
   construction core for core. *)
let transfers_of_schedule (noc : N.t) (s : S.t) =
  let n = S.num_ops s in
  let acc = ref [] in
  for op = n - 1 downto 0 do
    let e = s.S.entries.(op) in
    let m = min e.S.plan.P.cores_used (N.cores noc) in
    let ring t_phase =
      let peer c =
        match t_phase with
        | Dist -> (c + 1) mod m
        | Exch -> (c + m - 1) mod m
      in
      for c = m - 1 downto 0 do
        let src = peer c in
        if src <> c then
          acc :=
            {
              t_op = op;
              t_phase;
              t_route = N.route noc ~src:(N.Core src) ~dst:(N.Core c);
            }
            :: !acc
      done
    in
    if e.S.plan.P.exchange_bytes_per_core > 0. && m > 1 then ring Exch;
    if e.S.popt.P.dist_bytes_per_core > 0. && m > 1 then ring Dist
  done;
  !acc

type cycle = {
  cy_links : N.link list;  (* the circular wait, in acquisition order *)
  cy_ops : (int * phase) list;  (* one (op, phase) per CDG edge on the cycle *)
}

(* Build the CDG of one phase's transfers and search for a cycle with an
   iterative 3-color DFS; deterministic: links are indexed in first-seen
   order over the (deterministic) transfer list, and successors are
   scanned in insertion order. *)
let find_cycle transfers =
  let link_ix = Hashtbl.create 64 in
  let links = ref [] and n_links = ref 0 in
  let ix l =
    match Hashtbl.find_opt link_ix l with
    | Some i -> i
    | None ->
        let i = !n_links in
        Hashtbl.replace link_ix l i;
        links := l :: !links;
        incr n_links;
        i
  in
  (* adjacency with the contributing (op, phase) per edge; dedup edges *)
  let adj = Hashtbl.create 64 in
  let seen_edge = Hashtbl.create 64 in
  List.iter
    (fun t ->
      (* a route that acquires the same link twice is reported by
         deadlock.self-loop; still index every link *)
      let rec pairs = function
        | l1 :: (l2 :: _ as tl) ->
            let u = ix l1 and v = ix l2 in
            if not (Hashtbl.mem seen_edge (u, v)) then begin
              Hashtbl.replace seen_edge (u, v) ();
              Hashtbl.replace adj u
                ((v, (t.t_op, t.t_phase))
                :: (Hashtbl.find_opt adj u |> Option.value ~default:[]))
            end;
            pairs tl
        | [ l ] -> ignore (ix l)
        | [] -> ()
      in
      pairs t.t_route)
    transfers;
  let links = Array.of_list (List.rev !links) in
  let v = Array.length links in
  let color = Array.make v 0 in
  (* 0 white, 1 grey, 2 black *)
  let result = ref None in
  let rec dfs stack u =
    if !result = None then begin
      color.(u) <- 1;
      List.iter
        (fun (w, tag) ->
          if !result = None then
            if color.(w) = 1 then begin
              (* found: unwind [stack] back to w for the cycle *)
              let rec cut acc = function
                | (x, t) :: tl ->
                    let acc = (x, t) :: acc in
                    if x = w then acc else cut acc tl
                | [] -> acc
              in
              let cyc = cut [] ((u, tag) :: stack) in
              result :=
                Some
                  {
                    cy_links = List.map (fun (x, _) -> links.(x)) cyc;
                    cy_ops = List.map snd cyc;
                  }
            end
            else if color.(w) = 0 then dfs ((u, tag) :: stack) w)
        (List.rev (Hashtbl.find_opt adj u |> Option.value ~default:[]));
      if color.(u) = 1 then color.(u) <- 2
    end
  in
  for u = 0 to v - 1 do
    if color.(u) = 0 && !result = None then dfs [] u
  done;
  !result

let route_self_loop t =
  let rec dup seen = function
    | [] -> None
    | l :: tl -> if List.mem l seen then Some l else dup (l :: seen) tl
  in
  dup [] t.t_route

let check ~emit ~on (noc : N.t) (s : S.t) =
  let transfers = transfers_of_schedule noc s in
  if on "deadlock.self-loop" then
    List.iter
      (fun t ->
        match route_self_loop t with
        | None -> ()
        | Some l ->
            emit "deadlock.self-loop" (Diag.at_op t.t_op)
              [ ("link", Diag.Str (link_name l)) ]
              (Printf.sprintf
                 "%s transfer of op %d acquires %s twice along its route"
                 (phase_name t.t_phase) t.t_op (link_name l)))
      transfers;
  if on "deadlock.cycle" then
    (* Only transfers of the same operator and phase ever hold links
       concurrently (phases are barrier-separated and executes are
       serialized), so each (op, phase) group gets its own CDG. *)
    let groups =
      List.sort_uniq compare (List.map (fun t -> (t.t_op, t.t_phase)) transfers)
    in
    List.iter
      (fun (gop, ph) ->
        let phase_transfers =
          List.filter (fun t -> t.t_phase = ph && t.t_op = gop) transfers
        in
        match find_cycle phase_transfers with
        | None -> ()
        | Some cyc ->
            let ops =
              List.sort_uniq compare (List.map fst cyc.cy_ops)
            in
            emit "deadlock.cycle"
              (match ops with o :: _ -> Diag.at_op o | [] -> Diag.no_loc)
              [
                ("phase", Diag.Str (phase_name ph));
                ("cycle_len", Diag.Int (List.length cyc.cy_links));
                ( "ops",
                  Diag.Str (String.concat "," (List.map string_of_int ops)) );
              ]
              (Printf.sprintf
                 "channel-dependency cycle in the %s phase: %s (ops %s can \
                  each hold a link the next waits for)"
                 (phase_name ph)
                 (String.concat " -> " (List.map link_name cyc.cy_links))
                 (String.concat ", " (List.map string_of_int ops))))
      groups
