(** Channel-dependency-graph deadlock analysis over {!Elk_noc} routes.

    Nodes are interconnect links; a transfer acquiring link L1 then L2
    along its route contributes the edge L1 -> L2 (holding L1 while
    waiting for L2).  A cycle is a potential circular wait: every link
    held by a transfer that waits for the next ([deadlock.cycle]); a
    route that acquires the same link twice deadlocks against itself
    ([deadlock.self-loop]).  Transfers are the plan's distribution and
    exchange rings — the per-core send/recv pairings the {!Hb} DAG
    contracts into each operator's tail node — grouped per (operator,
    phase) since only those hold links concurrently.  XY mesh routing
    and the bipartite all-to-all fabric are acyclic by construction, so
    compiled plans prove clean; the rules guard hand-written plans and
    future adaptive or fused communication phases. *)

type phase = Dist | Exch

val phase_name : phase -> string

type transfer = { t_op : int; t_phase : phase; t_route : Elk_noc.Noc.link list }

val link_name : Elk_noc.Noc.link -> string

val transfers_of_schedule :
  Elk_noc.Noc.t -> Elk.Schedule.t -> transfer list
(** The plan's ring transfers, mirroring the simulator core for core. *)

type cycle = {
  cy_links : Elk_noc.Noc.link list;  (** the circular wait, in order. *)
  cy_ops : (int * phase) list;  (** contributor of each CDG edge. *)
}

val find_cycle : transfer list -> cycle option
(** Build the CDG of a set of concurrent transfers and return a cycle if
    one exists (deterministic first-found).  Exposed for synthetic-route
    unit tests: the deployed topologies never produce one. *)

val route_self_loop : transfer -> Elk_noc.Noc.link option
(** The first link a route acquires twice, if any. *)

val check :
  emit:
    (string ->
    Diag.location ->
    (string * Diag.value) list ->
    string ->
    unit) ->
  on:(string -> bool) ->
  Elk_noc.Noc.t ->
  Elk.Schedule.t ->
  unit
