(* SARIF 2.1.0 serialization of a verification report.

   Deliberately minimal and deterministic: the rules array lists the
   rules that were checked (registry order), results follow the report's
   Diag.order, and all text comes from the diagnostics themselves — no
   timestamps, hostnames, or absolute paths, so the output of two runs
   over the same plan is byte-identical and snapshot-friendly. *)

module J = Elk_obs.Jsonx

let level_of = function
  | Diag.Error -> "error"
  | Diag.Warning -> "warning"
  | Diag.Info -> "note"

let rule_json id =
  match Rules.find id with
  | None ->
      Printf.sprintf "{\"id\":%s}" (J.quote id)
  | Some r ->
      Printf.sprintf
        "{\"id\":%s,\"shortDescription\":{\"text\":%s},\"defaultConfiguration\":{\"level\":%s}}"
        (J.quote r.Rules.id)
        (J.quote r.Rules.summary)
        (J.quote (level_of r.Rules.default_severity))

let logical_location (loc : Diag.location) =
  let parts =
    List.filter_map
      (fun (name, v) ->
        Option.map (fun v -> Printf.sprintf "%s %d" name v) v)
      [ ("op", loc.Diag.op); ("step", loc.Diag.step); ("core", loc.Diag.core) ]
  in
  match parts with
  | [] -> None
  | parts ->
      Some
        (Printf.sprintf
           "{\"logicalLocations\":[{\"name\":%s,\"kind\":\"element\"}]}"
           (J.quote (String.concat " " parts)))

let value_json = function
  | Diag.Num f -> J.number f
  | Diag.Int i -> string_of_int i
  | Diag.Str s -> J.quote s

let result_json (d : Diag.t) =
  let locations =
    match logical_location d.Diag.loc with
    | None -> ""
    | Some l -> Printf.sprintf ",\"locations\":[%s]" l
  in
  let properties =
    match d.Diag.payload with
    | [] -> ""
    | payload ->
        Printf.sprintf ",\"properties\":{%s}"
          (String.concat ","
             (List.map
                (fun (k, v) -> Printf.sprintf "%s:%s" (J.quote k) (value_json v))
                payload))
  in
  Printf.sprintf
    "{\"ruleId\":%s,\"level\":%s,\"message\":{\"text\":%s}%s%s}"
    (J.quote d.Diag.rule)
    (J.quote (level_of d.Diag.severity))
    (J.quote d.Diag.message) locations properties

let of_report (r : Verify.report) =
  Printf.sprintf
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"elk-lint\",\"rules\":[%s]}},\"properties\":{\"model\":%s,\"ops\":%d},\"results\":[%s]}]}"
    (String.concat "," (List.map rule_json r.Verify.rules_checked))
    (J.quote r.Verify.model) r.Verify.n_ops
    (String.concat "," (List.map result_json r.Verify.diags))
