type severity = Error | Warning | Info

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"
let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type value = Num of float | Int of int | Str of string

type location = { op : int option; step : int option; core : int option }

let no_loc = { op = None; step = None; core = None }
let at_op op = { no_loc with op = Some op }
let at_step step = { no_loc with step = Some step }
let at_op_step ~op ~step = { no_loc with op = Some op; step = Some step }

type t = {
  rule : string;
  severity : severity;
  loc : location;
  message : string;
  payload : (string * value) list;
}

let make ~rule ~severity ?(loc = no_loc) ?(payload = []) message =
  { rule; severity; loc; message; payload }

(* Deterministic report order, independent of emission order (and hence
   of --jobs / domain scheduling): primary key (rule, core, step), then
   (op, severity, message) as a total tiebreak so equal-location
   diagnostics cannot flip between runs. *)
let order a b =
  let key d =
    (d.rule, d.loc.core, d.loc.step, d.loc.op, severity_rank d.severity, d.message)
  in
  compare (key a) (key b)

let pp_loc fmt loc =
  let part name = function
    | None -> ()
    | Some v -> Format.fprintf fmt " %s %d" name v
  in
  part "op" loc.op;
  part "step" loc.step;
  part "core" loc.core

let pp fmt t =
  Format.fprintf fmt "%s[%s]%a: %s" (severity_name t.severity) t.rule pp_loc t.loc
    t.message

module J = Elk_obs.Jsonx

let value_to_json = function
  | Num f -> J.number f
  | Int i -> string_of_int i
  | Str s -> J.quote s

let opt_int = function None -> "null" | Some i -> string_of_int i

let to_json t =
  let payload =
    t.payload
    |> List.map (fun (k, v) -> Printf.sprintf "%s:%s" (J.quote k) (value_to_json v))
    |> String.concat ","
  in
  Printf.sprintf
    "{\"rule\":%s,\"severity\":%s,\"op\":%s,\"step\":%s,\"core\":%s,\"message\":%s,\"payload\":{%s}}"
    (J.quote t.rule)
    (J.quote (severity_name t.severity))
    (opt_int t.loc.op) (opt_int t.loc.step) (opt_int t.loc.core) (J.quote t.message)
    payload
