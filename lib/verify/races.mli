(** Buffer-reuse race detection over address intervals × happens-before.

    Joins the allocator's address layout ({!Elk.Alloc.allocation}) with
    buffer lifetimes and the {!Hb} DAG: every pair of address-overlapping
    buffers of distinct operators must have one buffer's last access
    happen-before the other's first access.  Unordered pairs are reported
    as [race.war] (writes ordered, the later write can land inside the
    earlier buffer's live range) or [race.waw] (even the writes are
    mutually unordered), each with a minimal witness path — the
    clobbering write's shortest enabling chain, none of which waits on
    the victim. *)

val check :
  emit:
    (string ->
    Diag.location ->
    (string * Diag.value) list ->
    string ->
    unit) ->
  on:(string -> bool) ->
  hb:Hb.t ->
  layout:Elk.Alloc.allocation list ->
  Elk.Schedule.t ->
  unit
(** [check ~emit ~on ~hb ~layout s] emits one diagnostic per racing pair
    via [emit rule loc payload message]; [on] gates each rule id. *)
