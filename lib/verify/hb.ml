(* Static happens-before DAG over a compiled plan.

   Nodes are the device events the §4.5 ordering rules speak about, four
   per operator:

     Issue op  - the [preload_async(op)] call is admitted by the queue;
     Write op  - the asynchronous SRAM delivery of op's preload bytes
                 (in flight anywhere between Issue and Exec);
     Exec op   - the [execute(op)] body: data distribution + tile compute;
     Tail op   - op's exchange/reduction tail (the per-core send/recv
                 pairings of the BSP exchange phase are contracted into
                 this node: every core's recv waits on its ring peer's
                 send, which waits on that peer's compute, so the whole
                 pairing set collapses to one synchronization point at
                 operator granularity; the deadlock analysis re-expands
                 it to per-transfer granularity over the NoC routes).

   Edges are exactly the orderings the device guarantees:

     - per-core step order: every operator's core set is the prefix
       0..cores_used-1, so each core executes its steps in execute order
       and the per-core chains collapse to the total chain
       Tail(i-1) -> Exec(i) (device rule 1: an execute blocks all later
       calls);
     - preload-order issue edges: Issue(prev) -> Issue(next) in program
       order (rule 2: preloads run sequentially), and
       Tail(last execute preceding the preload_async in program order)
       -> Issue (preloads queue behind every earlier execute);
     - Issue(op) -> Write(op): delivery cannot begin before admission;
     - Write(op) -> Exec(op): execute(op) waits only for its own
       preload's tag (rule 3);
     - program dependencies: Tail(d) -> Exec(i) for every graph edge
       d -> i.

   Everything the device does NOT order is absent — in particular a
   preload delivery Write(op) is concurrent with every execute between
   its issue point and its consuming execute, which is precisely the
   window the race analysis probes.

   Reachability combines three labelings, cheapest first: topological
   rank (node ids are assigned in a topological order, so rank(u) >=
   rank(v) refutes u -> v in O(1)); DFS pre/post intervals over the
   spanning forest of first-discovery edges (interval containment proves
   forest paths in O(1)); and a word-packed ancestor closure built in one
   reverse-topological sweep (O(E * V / 64)) for the residue.  Queries
   are O(1) after the near-linear build. *)

module S = Elk.Schedule
module G = Elk_model.Graph

type node = Issue of int | Write of int | Exec of int | Tail of int

let node_op = function Issue op | Write op | Exec op | Tail op -> op

let pp_node fmt = function
  | Issue op -> Format.fprintf fmt "issue(%d)" op
  | Write op -> Format.fprintf fmt "write(%d)" op
  | Exec op -> Format.fprintf fmt "exec(%d)" op
  | Tail op -> Format.fprintf fmt "tail(%d)" op

let node_name n = Format.asprintf "%a" pp_node n

type t = {
  n_ops : int;
  nodes : node array;  (* indexed by dense node id, in topological order *)
  id_of : (node, int) Hashtbl.t;
  succ : int list array;  (* out-edges, larger ids *)
  pred : int list array;  (* in-edges, smaller ids *)
  pre : int array;  (* DFS preorder stamp over the spanning forest *)
  post : int array;  (* DFS postorder stamp (interval close) *)
  closure : Bytes.t array;  (* ancestor bitset fallback, per node *)
  mutable queries : int;
  mutable bitset_queries : int;
}

let node_count t = Array.length t.nodes
let edge_count t = Array.fold_left (fun a l -> a + List.length l) 0 t.succ

let of_schedule (s : S.t) =
  let n = S.num_ops s in
  let prog = Elk.Program.of_schedule s in
  let nodes = ref [] and count = ref 0 in
  let id_of = Hashtbl.create (4 * n) in
  let edges = ref [] in
  let add_node nd =
    Hashtbl.replace id_of nd !count;
    nodes := nd :: !nodes;
    incr count;
    !count - 1
  in
  let add_edge u v = if u <> v then edges := (u, v) :: !edges in
  let last_tail = ref None and last_issue = ref None in
  Array.iter
    (fun instr ->
      match instr with
      | Elk.Program.Preload_async op ->
          let i = add_node (Issue op) in
          let w = add_node (Write op) in
          Option.iter (fun p -> add_edge p i) !last_issue;
          Option.iter (fun t -> add_edge t i) !last_tail;
          add_edge i w;
          last_issue := Some i
      | Elk.Program.Execute op ->
          let e = add_node (Exec op) in
          let t = add_node (Tail op) in
          Option.iter (fun p -> add_edge p e) !last_tail;
          (match Hashtbl.find_opt id_of (Write op) with
          | Some w -> add_edge w e
          | None -> () (* executed before issue: Program.validate flags it *));
          List.iter
            (fun d ->
              match Hashtbl.find_opt id_of (Tail d) with
              | Some td -> add_edge td e
              | None -> () (* dep not yet executed: dep.edge-order flags it *))
            (G.get s.S.graph op).G.deps;
          add_edge e t;
          last_tail := Some t)
    prog.Elk.Program.instrs;
  let v = !count in
  let nodes = Array.of_list (List.rev !nodes) in
  let succ = Array.make v [] and pred = Array.make v [] in
  List.iter
    (fun (u, w) ->
      succ.(u) <- w :: succ.(u);
      pred.(w) <- u :: pred.(w))
    !edges;
  Array.iteri (fun i l -> succ.(i) <- List.sort_uniq compare l) succ;
  Array.iteri (fun i l -> pred.(i) <- List.sort_uniq compare l) pred;
  (* Spanning-forest DFS intervals: roots in id order, children by id. *)
  let pre = Array.make v (-1) and post = Array.make v (-1) in
  let stamp = ref 0 in
  let rec dfs u =
    pre.(u) <- !stamp;
    incr stamp;
    List.iter (fun w -> if pre.(w) < 0 then dfs w) succ.(u);
    post.(u) <- !stamp;
    incr stamp
  in
  for u = 0 to v - 1 do
    if pre.(u) < 0 then dfs u
  done;
  (* Ancestor closure, one reverse-topological sweep: node ids are a
     topological order (every edge goes small -> large), so by the time
     node u is processed all its successors' sets are final. *)
  let words = (v + 7) / 8 in
  let closure = Array.init v (fun _ -> Bytes.make words '\000') in
  let set_bit b i =
    Bytes.unsafe_set b (i lsr 3)
      (Char.chr (Char.code (Bytes.unsafe_get b (i lsr 3)) lor (1 lsl (i land 7))))
  in
  let union dst src =
    for k = 0 to words - 1 do
      Bytes.unsafe_set dst k
        (Char.chr
           (Char.code (Bytes.unsafe_get dst k)
           lor Char.code (Bytes.unsafe_get src k)))
    done
  in
  for u = v - 1 downto 0 do
    List.iter
      (fun w ->
        set_bit closure.(u) w;
        union closure.(u) closure.(w))
      succ.(u)
  done;
  {
    n_ops = n;
    nodes;
    id_of;
    succ;
    pred;
    pre;
    post;
    closure;
    queries = 0;
    bitset_queries = 0;
  }

let id t nd =
  match Hashtbl.find_opt t.id_of nd with
  | Some i -> i
  | None ->
      invalid_arg
        (Printf.sprintf "Hb: no node %s (op out of range or never issued)"
           (node_name nd))

let mem t nd = Hashtbl.mem t.id_of nd

let reaches_id t u v =
  t.queries <- t.queries + 1;
  if u >= v then false (* topological refutation: ids are a topo order *)
  else if t.pre.(u) <= t.pre.(v) && t.post.(v) <= t.post.(u) then true
    (* forest-interval confirmation *)
  else begin
    t.bitset_queries <- t.bitset_queries + 1;
    Char.code (Bytes.get t.closure.(u) (v lsr 3)) land (1 lsl (v land 7)) <> 0
  end

let reaches t a b = reaches_id t (id t a) (id t b)
let ordered t a b = reaches t a b || reaches t b a
let query_stats t = (t.queries, t.bitset_queries)

(* Shortest enabling chain ending at [nd]: BFS backward over in-edges to
   a root (a node with no predecessors), returned root-first.  Any
   ancestor chain of an event e automatically avoids every event that
   does not happen-before e, so this is a valid interleaving witness for
   "e can fire without waiting on x" whenever x does not reach e. *)
let witness t nd =
  let target = id t nd in
  let parent = Hashtbl.create 16 in
  let q = Queue.create () in
  Queue.add target q;
  Hashtbl.replace parent target (-1);
  let root = ref None in
  while !root = None && not (Queue.is_empty q) do
    let u = Queue.pop q in
    if t.pred.(u) = [] then root := Some u
    else
      List.iter
        (fun p ->
          if not (Hashtbl.mem parent p) then begin
            Hashtbl.replace parent p u;
            Queue.add p q
          end)
        t.pred.(u)
  done;
  match !root with
  | None -> [ t.nodes.(target) ]
  | Some r ->
      (* [parent] points from each discovered node toward the target, so
         following it from the root yields the path root -> ... -> target. *)
      let rec walk u acc =
        let acc = t.nodes.(u) :: acc in
        match Hashtbl.find_opt parent u with
        | Some nxt when nxt >= 0 -> walk nxt acc
        | _ -> List.rev acc
      in
      walk r []

let pp_path fmt path =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.fprintf fmt " -> ")
    pp_node fmt path

let path_name path = Format.asprintf "%a" pp_path path
