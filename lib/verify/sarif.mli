(** SARIF 2.1.0 serialization of a {!Verify.report} ([elk lint --sarif]).

    One run, one driver ([elk-lint]); the [rules] array carries the
    checked rules in registry order with their summaries and default
    levels, each diagnostic becomes a [result] with a logical location
    (["op 3 step 2"]) and the machine payload under [properties].
    Deterministic by construction — no timestamps or absolute paths —
    so equal reports serialize byte-identically (snapshots can be
    compared with [cmp]). *)

val of_report : Verify.report -> string
