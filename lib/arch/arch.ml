open Elk_util

type topology =
  | All_to_all
  | Mesh2d of { rows : int; cols : int }
  | Clustered of { clusters : int; cluster_size : int; l2_bandwidth : float }
type link = { latency : float; bandwidth : float }

type chip = {
  cores : int;
  sram_per_core : float;
  net_buffer_per_core : float;
  freq_hz : float;
  matmul_flops_per_core : float;
  vector_flops_per_core : float;
  sram_bw_per_core : float;
  topology : topology;
  intercore_link : link;
  hbm_controllers : int;
  hbm_bandwidth : float;
  hbm_latency : float;
}

type pod = { chips : int; chip : chip; interchip_bandwidth : float }

let validate_chip c =
  if c.cores <= 0 then Error "cores must be positive"
  else if c.sram_per_core <= 0. then Error "sram_per_core must be positive"
  else if c.net_buffer_per_core < 0. || c.net_buffer_per_core >= c.sram_per_core then
    Error "net buffer must be within SRAM"
  else if c.matmul_flops_per_core <= 0. || c.vector_flops_per_core <= 0. then
    Error "compute rates must be positive"
  else if c.intercore_link.bandwidth <= 0. || c.hbm_bandwidth <= 0. then
    Error "bandwidths must be positive"
  else if c.hbm_controllers <= 0 then Error "need at least one HBM controller"
  else
    match c.topology with
    | All_to_all -> Ok ()
    | Mesh2d { rows; cols } ->
        if rows * cols = c.cores then Ok ()
        else Error (Printf.sprintf "mesh %dx%d does not cover %d cores" rows cols c.cores)
    | Clustered { clusters; cluster_size; l2_bandwidth } ->
        if clusters * cluster_size <> c.cores then
          Error
            (Printf.sprintf "clusters %dx%d do not cover %d cores" clusters cluster_size
               c.cores)
        else if l2_bandwidth <= 0. then Error "l2 bandwidth must be positive"
        else Ok ()

let usable_sram_per_core c = c.sram_per_core -. c.net_buffer_per_core
let chip_sram c = usable_sram_per_core c *. float_of_int c.cores
let pod_sram p = chip_sram p.chip *. float_of_int p.chips
let aggregate_intercore_bw c = c.intercore_link.bandwidth *. float_of_int c.cores
let pod_hbm_bandwidth p = p.chip.hbm_bandwidth *. float_of_int p.chips
let pod_matmul_flops p = p.chip.matmul_flops_per_core *. float_of_int (p.chip.cores * p.chips)
let pod_vector_flops p = p.chip.vector_flops_per_core *. float_of_int (p.chip.cores * p.chips)

let mesh_dims ~cores =
  if cores <= 0 then invalid_arg "Arch.mesh_dims: nonpositive core count";
  let rec search r = if cores mod r = 0 then (r, cores / r) else search (r - 1) in
  let r = search (int_of_float (sqrt (float_of_int cores))) in
  r

let with_topology c topology =
  let c = { c with topology } in
  match validate_chip c with
  | Ok () -> c
  | Error m -> invalid_arg ("Arch.with_topology: " ^ m)

let with_cores c ~cores ~hbm_bw_per_core =
  let topology =
    match c.topology with
    | All_to_all -> All_to_all
    | Mesh2d _ ->
        let rows, cols = mesh_dims ~cores in
        Mesh2d { rows; cols }
    | Clustered { l2_bandwidth; _ } ->
        let clusters, cluster_size = mesh_dims ~cores in
        Clustered { clusters; cluster_size; l2_bandwidth }
  in
  { c with cores; topology; hbm_bandwidth = hbm_bw_per_core *. float_of_int cores }

(* Canonical digest of every field.  Floats are rendered as hex ("%h"),
   so two chips fingerprint equal iff they are bit-for-bit the same
   configuration — the property the cross-compile caches key on. *)
let fingerprint c =
  let b = Buffer.create 160 in
  let f v = Buffer.add_string b (Printf.sprintf "%h;" v) in
  let i v =
    Buffer.add_string b (string_of_int v);
    Buffer.add_char b ';'
  in
  i c.cores;
  f c.sram_per_core;
  f c.net_buffer_per_core;
  f c.freq_hz;
  f c.matmul_flops_per_core;
  f c.vector_flops_per_core;
  f c.sram_bw_per_core;
  (match c.topology with
  | All_to_all -> Buffer.add_string b "a2a;"
  | Mesh2d { rows; cols } ->
      Buffer.add_string b "mesh;";
      i rows;
      i cols
  | Clustered { clusters; cluster_size; l2_bandwidth } ->
      Buffer.add_string b "clu;";
      i clusters;
      i cluster_size;
      f l2_bandwidth);
  f c.intercore_link.latency;
  f c.intercore_link.bandwidth;
  i c.hbm_controllers;
  f c.hbm_bandwidth;
  f c.hbm_latency;
  Digest.to_hex (Digest.string (Buffer.contents b))

let pp_topology fmt = function
  | All_to_all -> Format.pp_print_string fmt "all-to-all"
  | Mesh2d { rows; cols } -> Format.fprintf fmt "mesh %dx%d" rows cols
  | Clustered { clusters; cluster_size; l2_bandwidth } ->
      Format.fprintf fmt "%d clusters x %d cores, L2 %a" clusters cluster_size
        Units.pp_bandwidth l2_bandwidth

let pp_chip fmt c =
  Format.fprintf fmt "chip{%d cores, %a SRAM/core, %a, link %a, HBM %a}" c.cores
    Units.pp_bytes c.sram_per_core pp_topology c.topology Units.pp_bandwidth
    c.intercore_link.bandwidth Units.pp_bandwidth c.hbm_bandwidth

let pp_pod fmt p =
  Format.fprintf fmt "pod{%d x %a, inter-chip %a}" p.chips pp_chip p.chip Units.pp_bandwidth
    p.interchip_bandwidth

module Presets = struct
  let ipu_mk2_core_count = 1472

  (* Per-core rates from the paper: 1000 TFLOPS (matmul) and 31.2 TFLOPS
     (vector) for a 5888-core pod; 128 bit/cycle local SRAM at 1.325 GHz;
     5.5 GB/s inter-core links. *)
  let matmul_flops_per_core = 1000e12 /. 5888.
  let vector_flops_per_core = 31.2e12 /. 5888.
  let sram_bw_per_core = 128. /. 8. *. 1.325e9

  let ipu_mk2_full =
    {
      cores = ipu_mk2_core_count;
      sram_per_core = Units.kib 624.;
      net_buffer_per_core = Units.kib 8.;
      freq_hz = 1.325e9;
      matmul_flops_per_core;
      vector_flops_per_core;
      sram_bw_per_core;
      topology = All_to_all;
      intercore_link = { latency = Units.ns 150.; bandwidth = Units.gbps 5.5 };
      hbm_controllers = 4;
      hbm_bandwidth = Units.tbps 4.;
      hbm_latency = Units.ns 120.;
    }

  let ipu_pod4_full =
    { chips = 4; chip = ipu_mk2_full; interchip_bandwidth = Units.gbps 640. }

  (* Fig 23 scales HBM as 2.7 GB/s per core: 16 TB/s over 5888 cores. *)
  let hbm_bw_per_core = Units.tbps 16. /. 5888.

  (* Default experiment scale.  Width-scaled models (factor 8) shrink
     quadratically while core count only shrinks linearly, so keeping
     624 KB/core would give the scaled pod ~8x the paper's SRAM : model
     ratio and erase the on-chip memory contention every tradeoff depends
     on.  96 KB/core (with a proportional 2 KB transfer buffer) restores
     the paper's ratio: chip SRAM / resident model bytes ~~ 0.12, per-op
     execution spaces reach 10-50% of a core's SRAM, and only a few
     HBM-heavy operators co-reside — as at full scale. *)
  let scaled_chip ?(cores = 64) ?(topology_kind = `All_to_all)
      ?(sram_per_core = Units.kib 96.) () =
    let base = with_cores ipu_mk2_full ~cores ~hbm_bw_per_core in
    let base =
      { base with sram_per_core; net_buffer_per_core = Units.kib 2. }
    in
    match topology_kind with
    | `All_to_all -> base
    | `Mesh ->
        (* Mesh-based ICCA chips (Tenstorrent, SambaNova) use much wider
           per-hop links than the IPU's per-pair exchange: 4x here makes
           the mesh's aggregate HBM-delivery capacity comparable to its
           HBM bandwidth, the regime the paper's mesh results imply
           (similar latency to all-to-all, higher link utilization). *)
        let rows, cols = mesh_dims ~cores in
        let base =
          {
            base with
            intercore_link =
              {
                base.intercore_link with
                bandwidth = base.intercore_link.bandwidth *. 4.;
              };
          }
        in
        with_topology base (Mesh2d { rows; cols })

  let gpu_like_chip ?(cores = 64) ?(clusters = 8) () =
    let base = with_cores ipu_mk2_full ~cores ~hbm_bw_per_core in
    let base = { base with sram_per_core = Units.kib 96.; net_buffer_per_core = Units.kib 2. } in
    if cores mod clusters <> 0 then invalid_arg "Presets.gpu_like_chip: clusters must divide cores";
    with_topology base
      (Clustered
         {
           clusters;
           cluster_size = cores / clusters;
           (* Paper 7: on H100-class GPUs the aggregate inter-SM bandwidth
              is close to the HBM bandwidth. *)
           l2_bandwidth = base.hbm_bandwidth;
         })

  let scaled_pod ?(chips = 4) ?cores ?topology_kind () =
    let chip = scaled_chip ?cores ?topology_kind () in
    (* Keep the paper's inter-chip : intra-chip bandwidth ratio. *)
    let ratio = Units.gbps 640. /. aggregate_intercore_bw ipu_mk2_full in
    { chips; chip; interchip_bandwidth = ratio *. aggregate_intercore_bw chip }
end
