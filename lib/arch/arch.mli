(** Descriptions of inter-core connected AI (ICCA) chips with off-chip HBM
    (paper §2.1, Figure 1).

    A chip is a set of cores, each with a private scratchpad SRAM and a
    compute pipeline, joined by an interconnect (all-to-all as in Graphcore
    IPU, or a 2D mesh as in Tenstorrent/SambaNova) that also carries
    HBM-controller→core preload traffic.  A pod is several chips bridged
    by inter-chip links, run with model parallelism (paper §5).

    All bandwidths are bytes/second, capacities bytes, latencies seconds,
    compute rates FLOP/second.  Quantities are kept {e per-core} so that
    scaled-down configurations preserve every contention ratio the paper's
    tradeoffs depend on. *)

(** Interconnect topology.  [All_to_all] gives every ordered core pair a
    direct path at the link bandwidth (IPU exchange); [Mesh2d] arranges
    cores in a [rows x cols] grid with per-hop links and dimension-order
    routing; [Clustered] is the GPU-style fabric of paper §7 — cores
    grouped into clusters with direct intra-cluster links, while
    inter-cluster traffic and all HBM traffic cross a shared global
    fabric ("L2") of total bandwidth [l2_bandwidth]. *)
type topology =
  | All_to_all
  | Mesh2d of { rows : int; cols : int }
  | Clustered of { clusters : int; cluster_size : int; l2_bandwidth : float }

type link = { latency : float; bandwidth : float }

type chip = {
  cores : int;
  sram_per_core : float;  (** scratchpad capacity per core. *)
  net_buffer_per_core : float;  (** SRAM reserved for transfer staging (§5). *)
  freq_hz : float;  (** core clock. *)
  matmul_flops_per_core : float;  (** peak FLOP/s for matmul-class kernels. *)
  vector_flops_per_core : float;  (** peak FLOP/s for everything else. *)
  sram_bw_per_core : float;  (** local SRAM read bandwidth (128 b/cycle on IPU). *)
  topology : topology;
  intercore_link : link;  (** core→core link (per path or per mesh hop). *)
  hbm_controllers : int;  (** controllers attached to the interconnect. *)
  hbm_bandwidth : float;  (** aggregate off-chip bandwidth of this chip. *)
  hbm_latency : float;  (** base HBM access latency. *)
}

type pod = {
  chips : int;
  chip : chip;
  interchip_bandwidth : float;  (** total bandwidth cap across chips. *)
}

val validate_chip : chip -> (unit, string) result
(** Structural checks: positive counts/rates, mesh dims consistent with the
    core count, net buffer smaller than the SRAM. *)

val usable_sram_per_core : chip -> float
(** [sram_per_core - net_buffer_per_core]: what the compiler may allocate
    between execution and preload spaces. *)

val chip_sram : chip -> float
(** Total allocatable SRAM of one chip. *)

val pod_sram : pod -> float
(** Total allocatable SRAM of the pod. *)

val aggregate_intercore_bw : chip -> float
(** Sum of per-core injection bandwidth — the paper's "8 TB/s all-to-all"
    aggregate for the IPU. *)

val pod_hbm_bandwidth : pod -> float
(** Total off-chip bandwidth of the pod. *)

val pod_matmul_flops : pod -> float
(** Peak matmul FLOP/s of the pod. *)

val pod_vector_flops : pod -> float
(** Peak vector FLOP/s of the pod. *)

val mesh_dims : cores:int -> int * int
(** Near-square factorization [rows x cols = cores] used when converting a
    chip to a mesh topology; rows <= cols. *)

val with_topology : chip -> topology -> chip
(** Replace the topology (checking core-count consistency). *)

val with_cores : chip -> cores:int -> hbm_bw_per_core:float -> chip
(** Resize a chip, keeping per-core rates and re-deriving mesh dimensions
    and HBM bandwidth ([cores * hbm_bw_per_core], Fig 23's scaling rule). *)

val fingerprint : chip -> string
(** Collision-safe digest of every chip field (floats rendered bit-exact).
    Two chips fingerprint equal iff they describe the same hardware — the
    architecture component of the cross-compile cache keys. *)

val pp_chip : Format.formatter -> chip -> unit
val pp_pod : Format.formatter -> pod -> unit

(** Named configurations used across tests, examples and benches. *)
module Presets : sig
  val ipu_mk2_full : chip
  (** Full-scale Graphcore IPU MK2: 1472 cores x 624 KB, 5.5 GB/s
      all-to-all links, 4 HBM3E controllers at 4 TB/s (emulator setup,
      paper §6.1). *)

  val ipu_pod4_full : pod
  (** 4 x {!ipu_mk2_full}, 640 GB/s inter-chip, 16 TB/s total HBM. *)

  val gpu_like_chip : ?cores:int -> ?clusters:int -> unit -> chip
  (** §7's GPU-style configuration at experiment scale: clusters of cores
      with direct intra-cluster links, and a shared L2 fabric whose total
      bandwidth is set equal to the chip's HBM bandwidth — the regime the
      paper predicts "will suffer from significant interconnect
      contention". *)

  val scaled_chip :
    ?cores:int -> ?topology_kind:[ `All_to_all | `Mesh ] -> ?sram_per_core:float ->
    unit -> chip
  (** Default experiment scale (64 cores unless overridden): per-core
      rates identical to the full chip, HBM at 2.7 GB/s/core, and
      [sram_per_core] defaulting to 96 KB so the chip-SRAM : model-size
      ratio of width-factor-8 scaled models matches the paper's
      full-scale setup (624 KB/core would leave no memory contention to
      arbitrate). *)

  val scaled_pod : ?chips:int -> ?cores:int -> ?topology_kind:[ `All_to_all | `Mesh ] ->
    unit -> pod
  (** [chips] defaults to 4, mirroring IPU-POD4. *)
end
