open Elk_util
open Elk_arch

let default_kinds =
  [
    "matmul"; "batch_matmul"; "softmax"; "rmsnorm"; "layernorm"; "rope"; "silu"; "gelu";
    "relu"; "copy"; "scale"; "add"; "mul"; "embedding";
  ]

type t = {
  cm_chip : Arch.chip;
  exec_trees : (string * Linear_tree.t) list;
  transfer_tree : Linear_tree.t;
  hbm_dev : Elk_hbm.Hbm.t;
  mutable hbm_bw_cache : (int * float) list;
}

let chip t = t.cm_chip
let kinds t = List.map fst t.exec_trees

let features ~kind ~iter =
  let d i = if i < Array.length iter then float_of_int iter.(i) else 1. in
  (* Vector-unit alignment of the inner matmul dimensions is a discrete
     effect a threshold tree cannot discover from raw extents; expose it as
     indicator features, as a profiling pipeline would. *)
  let aligned i =
    let idx = min i (Array.length iter - 1) in
    if iter.(idx) mod 16 = 0 then 1. else 0.
  in
  [|
    d 0; d 1; d 2; d 3;
    Array.fold_left (fun a x -> a *. float_of_int x) 1. iter;
    Device.tile_flops ~kind ~iter;
    Device.tile_bytes ~kind ~iter;
    aligned 1;
    aligned (Array.length iter - 1);
  |]

(* Log-uniform integer in [lo, hi]. *)
let log_uniform rng lo hi =
  let l = log (float_of_int lo) and h = log (float_of_int hi) in
  let v = exp (l +. Xrng.float rng (h -. l)) in
  max lo (min hi (int_of_float (Float.round v)))

let random_tile rng ~chip ~kind =
  let sram = Arch.usable_sram_per_core chip in
  let fits iter = Device.tile_bytes ~kind ~iter <= sram in
  let rec draw tries =
    let iter =
      match kind with
      | "matmul" ->
          [| log_uniform rng 1 512; log_uniform rng 8 512; log_uniform rng 8 512 |]
      | "batch_matmul" ->
          [|
            log_uniform rng 1 64; log_uniform rng 1 128; log_uniform rng 4 256;
            log_uniform rng 4 256;
          |]
      | _ -> [| log_uniform rng 1 4096; log_uniform rng 8 4096 |]
    in
    if fits iter || tries > 50 then iter else draw (tries + 1)
  in
  draw 0

let train ?(seed = 42) ?(samples_per_kind = 600) ?(kinds = default_kinds) chip =
  let rng = Xrng.create seed in
  let exec_trees =
    List.map
      (fun kind ->
        let krng = Xrng.split rng in
        let samples =
          List.init samples_per_kind (fun _ ->
              let iter = random_tile krng ~chip ~kind in
              (features ~kind ~iter, Device.measured_exec_time chip ~kind ~iter))
        in
        (kind, Linear_tree.fit samples))
      kinds
  in
  let noc = Elk_noc.Noc.create chip in
  let trng = Xrng.split rng in
  let max_hops =
    match chip.Arch.topology with
    | Arch.All_to_all -> 2
    | Arch.Clustered _ -> 3
    | Arch.Mesh2d { rows; cols } -> rows + cols
  in
  let transfer_samples =
    List.init (max 200 samples_per_kind) (fun _ ->
        let bytes = float_of_int (log_uniform trng 64 (1 lsl 20)) in
        let hops = 1 + Xrng.int trng max_hops in
        let time =
          (* Synthesize the measured time for a route of this length from
             the per-link model plus noise. *)
          let base =
            (float_of_int hops *. chip.Arch.intercore_link.Arch.latency)
            +. (bytes /. chip.Arch.intercore_link.Arch.bandwidth)
          in
          let u = float_of_int (Hashtbl.hash (hops, int_of_float bytes) land 0xFFFF) /. 65535. in
          base *. (0.94 +. (0.12 *. u))
        in
        ([| bytes; float_of_int hops |], time))
  in
  ignore noc;
  {
    cm_chip = chip;
    exec_trees;
    transfer_tree = Linear_tree.fit transfer_samples;
    hbm_dev = Elk_hbm.Hbm.create (Elk_hbm.Hbm.config_for_bandwidth chip.Arch.hbm_bandwidth);
    hbm_bw_cache = [];
  }

let predict_exec t ~kind ~iter =
  match List.assoc_opt kind t.exec_trees with
  | Some tree -> Float.max 1e-9 (Linear_tree.predict tree (features ~kind ~iter))
  | None -> Device.exec_time t.cm_chip ~kind ~iter

let predict_transfer t ~hops ~bytes =
  if bytes <= 0. then 0.
  else
    Float.max 1e-9 (Linear_tree.predict t.transfer_tree [| bytes; float_of_int (max 1 hops) |])

let hbm_time t ~bytes =
  if bytes <= 0. then 0.
  else
    let bucket = int_of_float (Float.round (log (Float.max 1. bytes) /. log 2.)) in
    let bw =
      match List.assoc_opt bucket t.hbm_bw_cache with
      | Some bw -> bw
      | None ->
          let bw = Elk_hbm.Hbm.effective_bandwidth t.hbm_dev ~bytes:(2. ** float_of_int bucket) in
          t.hbm_bw_cache <- (bucket, bw) :: t.hbm_bw_cache;
          bw
    in
    bytes /. bw

(* Behavioral fingerprint of a trained model: the chip digest plus
   bit-exact ("%h") predictions on a fixed probe set per kind, fixed
   transfer routes, and fixed HBM read sizes.  Two models fingerprint
   equal iff they answer every probe identically — retraining with a
   different seed or sample count changes the fitted trees and therefore
   the digest, which is what invalidates cross-compile cache entries. *)
let exec_probes =
  [
    [| 2; 16 |]; [| 7; 96 |]; [| 48; 640 |]; [| 5; 33; 130 |]; [| 3; 17; 65; 257 |];
  ]

let fingerprint t =
  let b = Buffer.create 512 in
  Buffer.add_string b (Arch.fingerprint t.cm_chip);
  List.iter
    (fun (kind, _) ->
      Buffer.add_char b '|';
      Buffer.add_string b kind;
      List.iter
        (fun iter ->
          Buffer.add_string b (Printf.sprintf ":%h" (predict_exec t ~kind ~iter)))
        exec_probes)
    t.exec_trees;
  List.iter
    (fun (hops, bytes) ->
      Buffer.add_string b (Printf.sprintf "|t:%h" (predict_transfer t ~hops ~bytes)))
    [ (1, 4096.); (2, 65536.); (3, 1048576.) ];
  List.iter
    (fun bytes -> Buffer.add_string b (Printf.sprintf "|h:%h" (hbm_time t ~bytes)))
    [ 4096.; 1048576.; 268435456. ];
  Digest.to_hex (Digest.string (Buffer.contents b))

let exec_accuracy ?(seed = 7) t ~kind ~n =
  let rng = Xrng.create seed in
  List.init n (fun _ ->
      let iter = random_tile rng ~chip:t.cm_chip ~kind in
      ( Device.measured_exec_time t.cm_chip ~kind ~iter,
        predict_exec t ~kind ~iter ))

let transfer_accuracy ?(seed = 7) t ~n =
  let rng = Xrng.create seed in
  let noc = Elk_noc.Noc.create t.cm_chip in
  let ncores = t.cm_chip.Arch.cores in
  List.init n (fun _ ->
      let bytes = float_of_int (log_uniform rng 64 (1 lsl 20)) in
      let src = Xrng.int rng ncores in
      let dst = (src + 1 + Xrng.int rng (ncores - 1)) mod ncores in
      let measured =
        Device.measured_transfer_time noc ~src:(Elk_noc.Noc.Core src)
          ~dst:(Elk_noc.Noc.Core dst) ~bytes
      in
      let hops = Elk_noc.Noc.hops noc ~src:(Elk_noc.Noc.Core src) ~dst:(Elk_noc.Noc.Core dst) in
      (measured, predict_transfer t ~hops ~bytes))

let ideal_exec_time chip op ~cores =
  let open Elk_tensor in
  let flops = Opspec.flops op in
  let peak =
    if Device.is_matmul_kind op.Opspec.kind then chip.Arch.matmul_flops_per_core
    else chip.Arch.vector_flops_per_core
  in
  let n = float_of_int cores in
  let compute = flops /. (peak *. n) in
  let memory = Opspec.footprint_bytes op /. (chip.Arch.sram_bw_per_core *. n) in
  Float.max compute memory
