(** Elk's trained cost model (paper §4.3).

    For each operator kind, random tiles are "profiled" on the synthetic
    device ({!Device.measured_exec_time}) and a {!Linear_tree} is fit on
    tile-shape features; inter-core transfers get a model over (bytes,
    hops).  The compiler then only ever consults the trained predictors —
    prediction error (Fig 12) flows into every scheduling decision, as it
    would with a real profiled device.  HBM preload times come from a
    roofline over the {!Elk_hbm.Hbm} channel model. *)

type t

val train :
  ?seed:int -> ?samples_per_kind:int -> ?kinds:string list -> Elk_arch.Arch.chip -> t
(** Profile-and-fit for one chip.  [samples_per_kind] defaults to 600;
    [kinds] defaults to every kind the model zoo emits. *)

val chip : t -> Elk_arch.Arch.chip
val kinds : t -> string list

val fingerprint : t -> string
(** Behavioral digest of the trained model: the chip's
    {!Elk_arch.Arch.fingerprint} plus bit-exact predictions on a fixed
    probe set (per-kind execution times, transfer routes, HBM reads).
    Retraining with different data changes the digest — the cost-model
    component of the cross-compile cache keys. *)

val features : kind:string -> iter:int array -> float array
(** Feature vector used by the per-kind trees: up to 4 leading tile
    extents, total points, FLOPs and SRAM bytes. *)

val predict_exec : t -> kind:string -> iter:int array -> float
(** Predicted per-core execution time of one tile.  Falls back to the
    analytic device model for kinds without a trained tree; never
    negative. *)

val predict_transfer : t -> hops:int -> bytes:float -> float
(** Predicted uncontended transfer time for a route of [hops] links. *)

val hbm_time : t -> bytes:float -> float
(** Roofline preload time for [bytes] read sequentially at tensor
    granularity from this chip's HBM (effective bandwidth from the channel
    model, which derates small reads). *)

val exec_accuracy :
  ?seed:int -> t -> kind:string -> n:int -> (float * float) list
(** [(measured, predicted)] pairs on [n] fresh random tile shapes of a
    kind — the data behind Fig 12. *)

val transfer_accuracy : ?seed:int -> t -> n:int -> (float * float) list
(** Same for inter-core transfers. *)

val ideal_exec_time : Elk_arch.Arch.chip -> Elk_tensor.Opspec.t -> cores:int -> float
(** Lower-bound on-chip execution time of a whole operator split perfectly
    over [cores] cores with zero communication — the per-operator term of
    the [Ideal] roofline baseline (§6.1). *)

val random_tile : Elk_util.Xrng.t -> chip:Elk_arch.Arch.chip -> kind:string -> int array
(** A random tile shape of the given kind that fits in one core's SRAM —
    the shape distribution used for training and accuracy evaluation. *)
