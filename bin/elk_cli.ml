(* Command-line interface to the Elk compiler framework.

   Subcommands:
     info     - show a model's operator graph summary
     compile  - compile one model with one design, print the plan summary
     compare  - run all designs on one model, print a comparison table
     program  - print the generated preload_async/execute program

   Example:
     elk_cli compare -m llama2-13b -b 32 --scale 8 *)

open Cmdliner
module B = Elk_baselines.Baselines
module D = Elk_dse.Dse

let model_conv =
  let parse s =
    match Elk_model.Zoo.by_name s with
    | Some cfg -> Ok cfg
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown model %S (try %s)" s
               (String.concat ", "
                  (List.map (fun c -> c.Elk_model.Zoo.cfg_name) Elk_model.Zoo.all))))
  in
  Arg.conv (parse, fun fmt c -> Format.pp_print_string fmt c.Elk_model.Zoo.cfg_name)

let model_t =
  Arg.(value & opt model_conv Elk_model.Zoo.llama2_13b & info [ "m"; "model" ] ~doc:"Model name.")

let batch_t = Arg.(value & opt int 32 & info [ "b"; "batch" ] ~doc:"Batch size.")
let ctx_t = Arg.(value & opt int 0 & info [ "ctx" ] ~doc:"KV context length (0 = 2048/scale).")

let scale_t =
  Arg.(value & opt int 8 & info [ "scale" ] ~doc:"Width scale divisor (1 = full size).")

let layer_factor_t =
  Arg.(value & opt int 10 & info [ "layer-factor" ] ~doc:"Layer count divisor.")

let chips_t = Arg.(value & opt int 4 & info [ "chips" ] ~doc:"Chips in the pod.")
let cores_t = Arg.(value & opt int 64 & info [ "cores" ] ~doc:"Cores per chip.")

let topo_t =
  Arg.(
    value
    & opt (enum [ ("a2a", `All_to_all); ("mesh", `Mesh) ]) `All_to_all
    & info [ "topology" ] ~doc:"Interconnect topology: a2a or mesh.")

let design_t =
  Arg.(
    value
    & opt
        (enum
           [ ("basic", B.Basic); ("static", B.Static); ("elk-dyn", B.Elk_dyn);
             ("elk-full", B.Elk_full); ("ideal", B.Ideal) ])
        B.Elk_full
    & info [ "d"; "design" ] ~doc:"Design: basic, static, elk-dyn, elk-full or ideal.")

let prefill_t =
  Arg.(value & flag & info [ "prefill" ] ~doc:"Use the prefill phase instead of decode.")

let build_graph cfg ~scale ~layer_factor ~batch ~ctx ~prefill =
  let cfg =
    if scale <= 1 then cfg else Elk_model.Zoo.scale cfg ~factor:scale ~layer_factor
  in
  let ctx = if ctx > 0 then ctx else max 32 (2048 / max 1 scale) in
  let phase =
    if prefill then Elk_model.Zoo.Prefill { batch; seq = ctx }
    else Elk_model.Zoo.Decode { batch; ctx }
  in
  Elk_model.Zoo.build cfg phase

let make_env ~chips ~cores ~topology = D.env ~chips ~cores ~topology ()

let jobs_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ]
        ~doc:
          "Worker domains for the parallel candidate-order search (default: \
           $(b,ELK_JOBS), else the machine's recommended domain count).  The \
           compiled plan is byte-identical whatever the value.")

let set_jobs jobs = Option.iter Elk_util.Pool.set_jobs jobs

let no_cache_t =
  Arg.(
    value & flag
    & info [ "no-compile-cache" ]
        ~doc:
          "Disable the cross-compile incremental cache (whole-plan, \
           candidate-order, scheduler-suffix and partition memos).  \
           Equivalent to setting $(b,ELK_COMPILE_CACHE=0) in the \
           environment; compiled plans are byte-identical either way.")

let set_cache no_cache = if no_cache then Elk.Compilecache.set_enabled false

(* ---- observability export flags (shared by compile/compare/report/profile) *)

let metrics_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ]
        ~doc:
          "Write collected metrics to $(docv): Prometheus text format, or JSON \
           if the file name ends in .json.")

let trace_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ]
        ~doc:
          "Write a Chrome/Perfetto trace to $(docv) containing the compiler \
           spans (and, where a simulation ran, the simulated device events) \
           on one timeline.")

(* Enable collection before any work runs if an export was requested. *)
let obs_setup ~metrics_out ~trace_out =
  if metrics_out <> None || trace_out <> None then Elk_obs.Control.enable ()

(* A bad export path should fail with a clean message, not cmdliner's
   uncaught-exception banner. *)
let failing_write ~what f =
  try f () with Sys_error msg ->
    Format.eprintf "elk_cli: cannot write %s: %s@." what msg;
    exit 1

let write_metrics = function
  | None -> ()
  | Some path ->
      let data =
        if Filename.check_suffix path ".json" then Elk_obs.Metrics.to_json ()
        else Elk_obs.Metrics.to_prometheus ()
      in
      failing_write ~what:"metrics" (fun () ->
          let oc = open_out path in
          output_string oc data;
          close_out oc);
      Format.printf "wrote metrics to %s@." path

(* Merge simulator events (tracks 1-2) with compiler spans (track 3) and
   any extra producer output (e.g. analyzer counter tracks). *)
let write_trace ?sim ?(extra = []) trace_out =
  match trace_out with
  | None -> ()
  | Some path ->
      let sim_events =
        match sim with
        | Some (graph, r) ->
            Elk_sim.Trace.chrome_meta @ Elk_sim.Trace.chrome_events graph r
        | None -> []
      in
      let events = sim_events @ extra @ Elk_obs.Span.chrome_events () in
      failing_write ~what:"trace" (fun () -> Elk_obs.Chrome.write ~path events);
      Format.printf "wrote trace (%d events) to %s@." (List.length events) path

let info_cmd =
  let run cfg scale layer_factor batch ctx prefill =
    let g = build_graph cfg ~scale ~layer_factor ~batch ~ctx ~prefill in
    Format.printf "%a@." Elk_model.Graph.pp_summary g;
    Format.printf "HBM-heavy operators: %d (threshold %a)@."
      (List.length (Elk_model.Graph.hbm_heavy_ids g))
      Elk_util.Units.pp_bytes
      (Elk_model.Graph.mean_hbm_bytes g)
  in
  Cmd.v (Cmd.info "info" ~doc:"Show a model's operator-graph summary.")
    Term.(const run $ model_t $ scale_t $ layer_factor_t $ batch_t $ ctx_t $ prefill_t)

let compile_cmd =
  let run cfg scale layer_factor batch ctx prefill chips cores topology jobs no_cache
      trace codegen_dir save_plan metrics_out trace_out =
    obs_setup ~metrics_out ~trace_out;
    set_jobs jobs;
    set_cache no_cache;
    let g = build_graph cfg ~scale ~layer_factor ~batch ~ctx ~prefill in
    let env = make_env ~chips ~cores ~topology in
    let c = Elk.Compile.compile env.D.ctx ~pod:env.D.pod g in
    Format.printf "%a@." Elk.Compile.pp_summary c;
    (match trace with
    | None -> ()
    | Some path ->
        let r = Elk_sim.Sim.run env.D.ctx c.Elk.Compile.schedule in
        Elk_sim.Trace.write_chrome_json ~path c.Elk.Compile.chip_graph r;
        Format.printf "wrote Chrome trace (%d events) to %s@."
          (Elk_sim.Trace.event_count r) path);
    (match codegen_dir with
    | None -> ()
    | Some dir ->
        let gen = Elk.Codegen.generate env.D.ctx c.Elk.Compile.schedule in
        Elk.Codegen.write_to ~dir gen;
        Format.printf "wrote %d kernels (%d LoC) to %s@."
          (List.length gen.Elk.Codegen.kernels)
          (Elk.Codegen.total_loc gen) dir);
    (match save_plan with
    | None -> ()
    | Some path ->
        (* Record the SRAM address layout so [elk lint --plan] checks the
           addresses this compile actually assigned. *)
        let layout = Elk.Alloc.layout_of_schedule c.Elk.Compile.schedule in
        Elk.Planio.save ~layout ~path c.Elk.Compile.schedule;
        Format.printf "saved plan to %s@." path);
    (match trace_out with
    | None -> ()
    | Some _ ->
        let r = Elk_sim.Sim.run env.D.ctx c.Elk.Compile.schedule in
        write_trace ~sim:(c.Elk.Compile.chip_graph, r) trace_out);
    write_metrics metrics_out
  in
  let trace_t =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~doc:"Write a Chrome trace of the simulated run to $(docv).")
  in
  let codegen_t =
    Arg.(value & opt (some string) None
         & info [ "emit-kernels" ] ~doc:"Write generated kernel sources under $(docv).")
  in
  let save_plan_t =
    Arg.(value & opt (some string) None
         & info [ "save-plan" ] ~doc:"Serialize the compiled plan to $(docv).")
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a model with Elk and print the plan summary.")
    Term.(
      const run $ model_t $ scale_t $ layer_factor_t $ batch_t $ ctx_t $ prefill_t
      $ chips_t $ cores_t $ topo_t $ jobs_t $ no_cache_t $ trace_t $ codegen_t
      $ save_plan_t $ metrics_out_t $ trace_out_t)

let compare_cmd =
  let run cfg scale layer_factor batch ctx prefill chips cores topology jobs no_cache
      metrics_out trace_out =
    obs_setup ~metrics_out ~trace_out;
    set_jobs jobs;
    set_cache no_cache;
    let g = build_graph cfg ~scale ~layer_factor ~batch ~ctx ~prefill in
    let env = make_env ~chips ~cores ~topology in
    let t =
      Elk_util.Table.create
        ~title:(Printf.sprintf "designs on %s (simulated)" (Elk_model.Graph.name g))
        ~columns:[ "design"; "latency"; "HBM util"; "NoC util"; "TFLOPS" ]
    in
    List.iter
      (fun d ->
        let e = D.evaluate env g d in
        Elk_util.Table.add_row t
          [ B.name d;
            Format.asprintf "%a" Elk_util.Units.pp_time e.D.latency;
            Printf.sprintf "%.1f%%" (100. *. e.D.hbm_util);
            Printf.sprintf "%.1f%%" (100. *. e.D.noc_util);
            Printf.sprintf "%.2f" e.D.tflops ])
      B.all;
    Elk_util.Table.print t;
    write_trace trace_out;
    write_metrics metrics_out
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Evaluate all designs on one model with the simulator.")
    Term.(
      const run $ model_t $ scale_t $ layer_factor_t $ batch_t $ ctx_t $ prefill_t
      $ chips_t $ cores_t $ topo_t $ jobs_t $ no_cache_t $ metrics_out_t $ trace_out_t)

let program_cmd =
  let run cfg scale layer_factor batch ctx prefill chips cores topology design limit =
    let g = build_graph cfg ~scale ~layer_factor ~batch ~ctx ~prefill in
    let env = make_env ~chips ~cores ~topology in
    match B.plan env.D.ctx ~pod:env.D.pod g design with
    | None -> print_endline "Ideal is a roofline; it has no device program."
    | Some s ->
        let p = Elk.Program.of_schedule s in
        Array.iteri
          (fun i instr ->
            if i < limit then
              match instr with
              | Elk.Program.Preload_async op -> Printf.printf "preload_async(op=%d)\n" op
              | Elk.Program.Execute op -> Printf.printf "execute(op=%d)\n" op)
          p.Elk.Program.instrs;
        if Array.length p.Elk.Program.instrs > limit then
          Printf.printf "... (%d more instructions)\n"
            (Array.length p.Elk.Program.instrs - limit)
  in
  let limit_t =
    Arg.(value & opt int 40 & info [ "limit" ] ~doc:"Max instructions to print.")
  in
  Cmd.v
    (Cmd.info "program" ~doc:"Print the generated preload_async/execute device program.")
    Term.(
      const run $ model_t $ scale_t $ layer_factor_t $ batch_t $ ctx_t $ prefill_t
      $ chips_t $ cores_t $ topo_t $ design_t $ limit_t)

let report_cmd =
  let run cfg scale layer_factor batch ctx prefill chips cores topology jobs metrics_out
      trace_out =
    obs_setup ~metrics_out ~trace_out;
    set_jobs jobs;
    let g = build_graph cfg ~scale ~layer_factor ~batch ~ctx ~prefill in
    let env = make_env ~chips ~cores ~topology in
    let c = Elk.Compile.compile env.D.ctx ~pod:env.D.pod g in
    let r = Elk_sim.Sim.run env.D.ctx c.Elk.Compile.schedule in
    Elk_dse.Report.print env c r;
    write_trace ~sim:(c.Elk.Compile.chip_graph, r) trace_out;
    write_metrics metrics_out
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Compile, simulate and print a Markdown diagnostics report.")
    Term.(
      const run $ model_t $ scale_t $ layer_factor_t $ batch_t $ ctx_t $ prefill_t
      $ chips_t $ cores_t $ topo_t $ jobs_t $ metrics_out_t $ trace_out_t)

let analyze_cmd =
  let run cfg scale layer_factor batch ctx prefill chips cores topology design top
      json_out metrics_out trace_out =
    obs_setup ~metrics_out ~trace_out;
    let g = build_graph cfg ~scale ~layer_factor ~batch ~ctx ~prefill in
    let env = make_env ~chips ~cores ~topology in
    match B.plan env.D.ctx ~pod:env.D.pod g design with
    | None ->
        Format.eprintf "elk_cli: the Ideal roofline has no schedule to analyze@.";
        exit 1
    | Some s ->
        let r = Elk_sim.Sim.run env.D.ctx s in
        (match Elk_sim.Perfcore.check r.Elk_sim.Sim.perf ~total:r.Elk_sim.Sim.total with
        | Ok () -> ()
        | Error m -> Format.eprintf "elk_cli: attribution leak: %s@." m);
        let rep = Elk_analyze.Analyze.analyze ~top s.Elk.Schedule.graph r in
        Elk_analyze.Analyze.print rep;
        (match json_out with
        | None -> ()
        | Some path ->
            failing_write ~what:"analysis" (fun () ->
                let oc = open_out path in
                output_string oc (Elk_analyze.Analyze.to_json rep);
                close_out oc);
            Format.printf "wrote analysis to %s@." path);
        write_trace
          ~sim:(s.Elk.Schedule.graph, r)
          ~extra:(Elk_analyze.Analyze.chrome_counter_events ~top r)
          trace_out;
        write_metrics metrics_out
  in
  let top_t =
    Arg.(value & opt int 8 & info [ "top" ] ~doc:"Cores/tracks to show in detail.")
  in
  let json_out_t =
    Arg.(value & opt (some string) None
         & info [ "json-out" ] ~doc:"Write the full bottleneck report as JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Simulate a design and print a bottleneck report: per-core \
          attribution, dominant resource per operator, load imbalance, and \
          what-if headroom.")
    Term.(
      const run $ model_t $ scale_t $ layer_factor_t $ batch_t $ ctx_t $ prefill_t
      $ chips_t $ cores_t $ topo_t $ design_t $ top_t $ json_out_t $ metrics_out_t
      $ trace_out_t)

let critpath_cmd =
  let run cfg scale layer_factor batch ctx prefill chips cores topology design top
      top_segments json_out metrics_out trace_out =
    obs_setup ~metrics_out ~trace_out;
    let g = build_graph cfg ~scale ~layer_factor ~batch ~ctx ~prefill in
    let env = make_env ~chips ~cores ~topology in
    match B.plan env.D.ctx ~pod:env.D.pod g design with
    | None ->
        Format.eprintf "elk_cli: the Ideal roofline has no schedule to trace@.";
        exit 1
    | Some s -> (
        let r = Elk_sim.Sim.run ~events:true env.D.ctx s in
        match r.Elk_sim.Sim.events with
        | None ->
            Format.eprintf "elk_cli: simulator recorded no events@.";
            exit 1
        | Some events ->
            (match Elk_sim.Critpath.check events ~total:r.Elk_sim.Sim.total with
            | Ok () -> ()
            | Error m -> Format.eprintf "elk_cli: causal-DAG violation: %s@." m);
            let sum = Elk_sim.Critpath.extract events in
            let graph = s.Elk.Schedule.graph in
            (match
               Elk_analyze.Analyze.headroom_check
                 (Elk_analyze.Analyze.analyze graph r)
                 sum
             with
            | Ok () -> ()
            | Error m ->
                Format.eprintf "elk_cli: critpath/attribution cross-check: %s@." m);
            Elk_sim.Critpath.print ~top ~top_segments graph sum;
            (match json_out with
            | None -> ()
            | Some path ->
                failing_write ~what:"critical path" (fun () ->
                    let oc = open_out path in
                    output_string oc (Elk_sim.Critpath.to_json graph sum);
                    close_out oc);
                Format.printf "wrote critical path to %s@." path);
            write_trace ~sim:(graph, r)
              ~extra:(Elk_sim.Trace.flow_events sum)
              trace_out;
            write_metrics metrics_out)
  in
  let top_t =
    Arg.(value & opt int 10 & info [ "top" ] ~doc:"Operators in the blame report.")
  in
  let top_segments_t =
    Arg.(value & opt int 12
         & info [ "top-segments" ] ~doc:"Critical segments to show in detail.")
  in
  let json_out_t =
    Arg.(value & opt (some string) None
         & info [ "json-out" ]
             ~doc:
               "Write the critical-path snapshot as JSON to $(docv) — the \
                format $(b,elk trace diff) consumes.")
  in
  Cmd.v
    (Cmd.info "critpath"
       ~doc:
         "Simulate a design with causal event tracing and print the critical \
          path: classified segments, per-operator slack, and a top-k blame \
          report.  With --trace-out, the causal chain is drawn as Perfetto \
          flow arrows over the device timeline.")
    Term.(
      const run $ model_t $ scale_t $ layer_factor_t $ batch_t $ ctx_t $ prefill_t
      $ chips_t $ cores_t $ topo_t $ design_t $ top_t $ top_segments_t $ json_out_t
      $ metrics_out_t $ trace_out_t)

let mem_cmd =
  let run cfg scale layer_factor batch ctx prefill chips cores topology design top
      window json_out metrics_out trace_out =
    obs_setup ~metrics_out ~trace_out;
    let g = build_graph cfg ~scale ~layer_factor ~batch ~ctx ~prefill in
    let env = make_env ~chips ~cores ~topology in
    match B.plan env.D.ctx ~pod:env.D.pod g design with
    | None ->
        Format.eprintf "elk_cli: the Ideal roofline has no schedule to profile@.";
        exit 1
    | Some s ->
        let r = Elk_sim.Sim.run ~mem:true env.D.ctx s in
        let rep = Elk_analyze.Memprof.analyze ?window env.D.ctx s r in
        (match Elk_analyze.Memprof.check rep with
        | Ok () -> ()
        | Error m ->
            Format.eprintf "elk_cli: memory invariant violated: %s@." m;
            exit 1);
        let over = Elk_analyze.Memprof.overcommit_bytes rep in
        if over > 0. then
          Format.eprintf
            "warning[mem.overcommit] peak occupancy %.0f B/core (%.0f B over \
             per-core SRAM); contention is charged downstream@."
            rep.Elk_analyze.Memprof.dyn_high_water over;
        Elk_analyze.Memprof.print ~top rep;
        (match json_out with
        | None -> ()
        | Some path ->
            failing_write ~what:"memory report" (fun () ->
                let oc = open_out path in
                output_string oc (Elk_analyze.Memprof.to_json ~top rep);
                close_out oc);
            Format.printf "wrote memory report to %s@." path);
        Elk_obs.Metrics.set "elk_mem_dyn_high_water_bytes"
          ~help:"Peak per-core SRAM occupancy (dynamic)"
          rep.Elk_analyze.Memprof.dyn_high_water;
        Elk_obs.Metrics.set "elk_mem_static_high_water_bytes"
          ~help:"Peak per-core SRAM demand (static ledger)"
          rep.Elk_analyze.Memprof.static_high_water;
        Elk_obs.Metrics.set "elk_mem_wasted_byte_seconds"
          ~help:"Pre-use + exchange-tail wasted residency"
          (rep.Elk_analyze.Memprof.pre_waste
          +. rep.Elk_analyze.Memprof.post_waste);
        write_trace
          ~sim:(s.Elk.Schedule.graph, r)
          ~extra:(Elk_analyze.Memprof.chrome_counter_events rep)
          trace_out;
        write_metrics metrics_out
  in
  let top_t =
    Arg.(value & opt int 10
         & info [ "top" ] ~doc:"Buffers/operators to show in detail.")
  in
  let window_t =
    Arg.(value & opt (some float) None
         & info [ "window" ] ~docv:"SECONDS"
             ~doc:"Occupancy time-series window width (default: makespan/48).")
  in
  let json_out_t =
    Arg.(value & opt (some string) None
         & info [ "json-out" ]
             ~doc:
               "Write the memory report as JSON to $(docv) — the top-level \
                total/segments follow the format $(b,elk trace diff) consumes.")
  in
  Cmd.v
    (Cmd.info "mem"
       ~doc:
         "Simulate a design with SRAM-residency recording and print the \
          memory report: per-core occupancy timeline, high-water marks vs \
          usable SRAM, wasted residency, the static buffer-lifetime ledger \
          and the HBM traffic ledger.  With --trace-out, occupancy gauges \
          are exported as Perfetto counter tracks beside the device \
          timeline.")
    Term.(
      const run $ model_t $ scale_t $ layer_factor_t $ batch_t $ ctx_t $ prefill_t
      $ chips_t $ cores_t $ topo_t $ design_t $ top_t $ window_t $ json_out_t
      $ metrics_out_t $ trace_out_t)

let noc_cmd =
  let run cfg scale layer_factor batch ctx prefill chips cores topology design top
      window json_out metrics_out trace_out =
    obs_setup ~metrics_out ~trace_out;
    let g = build_graph cfg ~scale ~layer_factor ~batch ~ctx ~prefill in
    let env = make_env ~chips ~cores ~topology in
    match B.plan env.D.ctx ~pod:env.D.pod g design with
    | None ->
        Format.eprintf "elk_cli: the Ideal roofline has no schedule to profile@.";
        exit 1
    | Some s ->
        let r = Elk_sim.Sim.run ~events:true ~noc:true env.D.ctx s in
        let rep = Elk_analyze.Nocprof.analyze ?window s r in
        (match Elk_analyze.Nocprof.check rep with
        | Ok () -> ()
        | Error m ->
            Format.eprintf "elk_cli: interconnect invariant violated: %s@." m;
            exit 1);
        Elk_analyze.Nocprof.print ~top rep;
        (match json_out with
        | None -> ()
        | Some path ->
            failing_write ~what:"interconnect report" (fun () ->
                let oc = open_out path in
                output_string oc (Elk_analyze.Nocprof.to_json ~top rep);
                close_out oc);
            Format.printf "wrote interconnect report to %s@." path);
        (match rep.Elk_analyze.Nocprof.busiest_dyn with
        | None -> ()
        | Some (_, busy) ->
            Elk_obs.Metrics.set "elk_noc_busiest_link_busy_seconds"
              ~help:"Reservation time on the hottest interconnect link" busy);
        Elk_obs.Metrics.set "elk_noc_transfer_bytes"
          ~help:"Bytes moved over the interconnect, once per transfer"
          (rep.Elk_analyze.Nocprof.pre_bytes
          +. rep.Elk_analyze.Nocprof.dist_bytes
          +. rep.Elk_analyze.Nocprof.ex_bytes);
        Elk_obs.Metrics.set "elk_noc_mean_hops"
          ~help:"Byte-weighted mean route length"
          rep.Elk_analyze.Nocprof.mean_hops;
        write_trace
          ~sim:(s.Elk.Schedule.graph, r)
          ~extra:(Elk_analyze.Nocprof.chrome_counter_events rep)
          trace_out;
        write_metrics metrics_out
  in
  let top_t =
    Arg.(value & opt int 10
         & info [ "top" ] ~doc:"Hottest links to show in detail.")
  in
  let window_t =
    Arg.(value & opt (some float) None
         & info [ "window" ] ~docv:"SECONDS"
             ~doc:"Utilization time-series window width (default: makespan/48).")
  in
  let json_out_t =
    Arg.(value & opt (some string) None
         & info [ "json-out" ]
             ~doc:
               "Write the interconnect report as JSON to $(docv) — the \
                top-level total/segments follow the format $(b,elk trace \
                diff) consumes.")
  in
  Cmd.v
    (Cmd.info "noc"
       ~doc:
         "Simulate a design with per-link interconnect recording and print \
          the congestion report: hottest links with traffic-class breakdown, \
          route-length histogram, a mesh heatmap on 2D topologies, and the \
          dynamic-vs-static cross-check against the schedule's \
          communication.  With --trace-out, per-link utilization gauges are \
          exported as Perfetto counter tracks beside the device timeline.")
    Term.(
      const run $ model_t $ scale_t $ layer_factor_t $ batch_t $ ctx_t $ prefill_t
      $ chips_t $ cores_t $ topo_t $ design_t $ top_t $ window_t $ json_out_t
      $ metrics_out_t $ trace_out_t)

let trace_cmd =
  let diff_cmd =
    let run old_path new_path threshold top json_out =
      let read what path =
        try
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with Sys_error msg ->
          Format.eprintf "elk_cli: cannot read %s snapshot: %s@." what msg;
          exit 2
      in
      let old_json = read "old" old_path and new_json = read "new" new_path in
      match Elk_analyze.Tracediff.diff ~old_json ~new_json with
      | Error m ->
          Format.eprintf "elk_cli: %s@." m;
          exit 2
      | Ok d ->
          Elk_analyze.Tracediff.print ~top d;
          (match json_out with
          | None -> ()
          | Some path ->
              failing_write ~what:"trace diff" (fun () ->
                  let oc = open_out path in
                  output_string oc (Elk_analyze.Tracediff.to_json ~threshold d);
                  close_out oc);
              Format.printf "wrote diff to %s@." path);
          if Elk_analyze.Tracediff.regressed ~threshold d then begin
            List.iter
              (fun e ->
                Format.printf "REGRESSED %s: %+.3g us@." e.Elk_analyze.Tracediff.key
                  (1e6 *. Elk_analyze.Tracediff.delta e))
              (Elk_analyze.Tracediff.regressed_entries ~threshold d);
            if d.Elk_analyze.Tracediff.total_new -. d.Elk_analyze.Tracediff.total_old
               > threshold *. Float.abs d.Elk_analyze.Tracediff.total_old
            then Format.printf "REGRESSED makespan: %+.3g us@."
                (1e6
                *. (d.Elk_analyze.Tracediff.total_new
                   -. d.Elk_analyze.Tracediff.total_old));
            exit 1
          end
    in
    let old_t =
      Arg.(required & pos 0 (some file) None
           & info [] ~docv:"OLD" ~doc:"Baseline critpath JSON snapshot.")
    in
    let new_t =
      Arg.(required & pos 1 (some file) None
           & info [] ~docv:"NEW" ~doc:"Fresh critpath JSON snapshot.")
    in
    let threshold_t =
      Arg.(value & opt float 0.02
           & info [ "threshold" ]
               ~doc:
                 "Regression gate: exit 1 when the makespan or any \
                  resource/segment grows by more than this fraction of the \
                  old makespan.")
    in
    let top_t =
      Arg.(value & opt int 12 & info [ "top" ] ~doc:"Segment deltas to print.")
    in
    let json_out_t =
      Arg.(value & opt (some string) None
           & info [ "json-out" ] ~doc:"Write the diff (with verdict) as JSON to $(docv).")
    in
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Compare two critpath snapshots: makespan, per-resource, and \
            per-segment deltas.  Exit 0 when within threshold, 1 on \
            regression, 2 on unreadable input.")
      Term.(const run $ old_t $ new_t $ threshold_t $ top_t $ json_out_t)
  in
  Cmd.group
    (Cmd.info "trace" ~doc:"Operate on recorded trace/critpath snapshots.")
    [ diff_cmd ]

let profile_cmd =
  let run cfg scale layer_factor batch ctx prefill chips cores topology jobs per_core
      metrics_out trace_out =
    Elk_obs.Control.enable ();
    set_jobs jobs;
    let g = build_graph cfg ~scale ~layer_factor ~batch ~ctx ~prefill in
    let env = make_env ~chips ~cores ~topology in
    let c = Elk.Compile.compile env.D.ctx ~pod:env.D.pod g in
    let totals = Elk_obs.Span.totals () in
    let overall =
      match List.find_opt (fun (name, _, _) -> name = "compile") totals with
      | Some (_, _, tot) -> tot
      | None -> List.fold_left (fun a (_, _, tot) -> a +. tot) 0. totals
    in
    let fmt_t v = Format.asprintf "%a" Elk_util.Units.pp_time v in
    let t =
      Elk_util.Table.create
        ~title:
          (Printf.sprintf "compile phases for %s (%d orders tried)"
             (Elk_model.Graph.name g) c.Elk.Compile.orders_tried)
        ~columns:[ "phase"; "calls"; "total"; "mean"; "share" ]
    in
    List.iter
      (fun (name, calls, tot) ->
        Elk_util.Table.add_row t
          [
            name;
            string_of_int calls;
            fmt_t tot;
            fmt_t (tot /. float_of_int (max 1 calls));
            Printf.sprintf "%.1f%%" (100. *. tot /. Float.max 1e-12 overall);
          ])
      totals;
    Elk_util.Table.print t;
    let ct =
      Elk_util.Table.create ~title:"compile counters" ~columns:[ "counter"; "value" ]
    in
    List.iter
      (fun (name, v) -> Elk_util.Table.add_row ct [ name; Printf.sprintf "%.0f" v ])
      (Elk_obs.Metrics.counters ());
    Elk_util.Table.print ct;
    if per_core then begin
      let r = Elk_sim.Sim.run env.D.ctx c.Elk.Compile.schedule in
      Elk_analyze.Analyze.print
        (Elk_analyze.Analyze.analyze c.Elk.Compile.chip_graph r)
    end;
    write_trace trace_out;
    write_metrics metrics_out
  in
  let per_core_t =
    Arg.(
      value & flag
      & info [ "per-core" ]
          ~doc:
            "Also simulate the compiled plan and print the per-core resource \
             attribution (as $(b,analyze) does for a single design).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Compile a model with span collection on and print a per-phase \
          compile-time table.")
    Term.(
      const run $ model_t $ scale_t $ layer_factor_t $ batch_t $ ctx_t $ prefill_t
      $ chips_t $ cores_t $ topo_t $ jobs_t $ per_core_t $ metrics_out_t $ trace_out_t)

(* The rule-registry table behind `verify --rules help` and
   `lint --rules help`. *)
let print_rules () =
  let module R = Elk_verify.Rules in
  let t =
    Elk_util.Table.create ~title:"verifier rules"
      ~columns:[ "rule"; "severity"; "mode"; "summary" ]
  in
  List.iter
    (fun r ->
      Elk_util.Table.add_row t
        [
          r.R.id;
          Elk_verify.Diag.severity_name r.R.default_severity;
          (if r.R.opt_in then "opt-in" else "default");
          r.R.summary;
        ])
    R.all;
  Elk_util.Table.print t

let verify_cmd =
  let module V = Elk_verify.Verify in
  let module R = Elk_verify.Rules in
  let run cfg scale layer_factor batch ctx prefill chips cores topology jobs design
      plan_file strict rules error_spec json_out metrics_out trace_out =
    obs_setup ~metrics_out ~trace_out;
    set_jobs jobs;
    if rules = Some "help" then print_rules ()
    else begin
      let sel =
        match rules with
        | None -> R.default_selection
        | Some spec -> (
            match R.selection_of_string spec with
            | Ok sel -> sel
            | Error msg ->
                Format.eprintf "elk_cli: %s@." msg;
                exit 2)
      in
      let promote =
        match error_spec with
        | None -> R.no_promotion
        | Some spec -> (
            match R.promotion_of_string spec with
            | Ok p -> p
            | Error msg ->
                Format.eprintf "elk_cli: %s@." msg;
                exit 2)
      in
      let env = make_env ~chips ~cores ~topology in
      let sched =
        match plan_file with
        | Some path -> (
            match Elk.Planio.load env.D.ctx ~path with
            | Ok s -> s
            | Error msg ->
                Format.eprintf "elk_cli: cannot load plan %s: %s@." path msg;
                exit 2)
        | None -> (
            let g = build_graph cfg ~scale ~layer_factor ~batch ~ctx ~prefill in
            (* Plan with the compile-time verifier uninstalled: a flagged
               plan must be reported by this command, not thrown by the
               compiler before we can show the diagnostics. *)
            let saved = Elk.Compile.verifier () in
            Elk.Compile.set_verifier None;
            Fun.protect
              ~finally:(fun () -> Elk.Compile.set_verifier saved)
              (fun () ->
                match B.plan env.D.ctx ~pod:env.D.pod g design with
                | Some s -> s
                | None ->
                    Format.eprintf
                      "elk_cli: the Ideal roofline has no schedule to verify@.";
                    exit 2))
      in
      let program = Elk.Program.of_schedule sched in
      let r = V.run ~rules:sel ~promote ~program env.D.ctx sched in
      Format.printf "%a" V.pp_report r;
      (match json_out with
      | None -> ()
      | Some path ->
          failing_write ~what:"verification report" (fun () ->
              let oc = open_out path in
              output_string oc (V.report_to_json r);
              close_out oc);
          Format.printf "wrote report to %s@." path);
      write_trace trace_out;
      write_metrics metrics_out;
      if V.errors r > 0 then exit 1;
      if strict && V.warnings r > 0 then exit 3
    end
  in
  let plan_t =
    Arg.(value & opt (some string) None
         & info [ "plan" ] ~doc:"Verify a serialized plan file instead of compiling.")
  in
  let strict_t =
    Arg.(value & flag
         & info [ "strict" ] ~doc:"Exit nonzero (3) on warnings, not only errors (1).")
  in
  let rules_t =
    Arg.(value & opt (some string) None
         & info [ "rules" ]
             ~doc:
               "Comma-separated rule ids or family prefixes (mem, dep, num, bw, \
                race, deadlock); prefix a token with - to suppress it.  \
                $(b,help) lists every rule.")
  in
  let error_t =
    Arg.(value & opt (some string) None
         & info [ "error" ]
             ~doc:
               "Promote the named rules or families to error severity, so their \
                diagnostics fail the command (exit 1).")
  in
  let json_out_t =
    Arg.(value & opt (some string) None
         & info [ "json-out" ] ~doc:"Write the full diagnostic report as JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Statically verify a compiled plan: memory safety, dependency and \
          order soundness, numeric hygiene, and bandwidth feasibility.")
    Term.(
      const run $ model_t $ scale_t $ layer_factor_t $ batch_t $ ctx_t $ prefill_t
      $ chips_t $ cores_t $ topo_t $ jobs_t $ design_t $ plan_t $ strict_t $ rules_t
      $ error_t $ json_out_t $ metrics_out_t $ trace_out_t)

let lint_cmd =
  let module V = Elk_verify.Verify in
  let module R = Elk_verify.Rules in
  let module Dg = Elk_verify.Diag in
  let module C = Elk_sim.Critpath in
  (* Cross-validate every race diagnostic against the simulator's causal
     event DAG: the flagged pair must be unordered there too — the
     victim's releasing event must not reach the clobbering write.  A
     path would mean the static happens-before DAG is weaker than the
     device semantics the simulator implements, i.e. a false positive. *)
  let crosscheck_races env sched (r : V.report) =
    let is_race d = R.(match find d.Dg.rule with
      | Some ru -> ru.family = Race
      | None -> false)
    in
    let race_diags = List.filter is_race r.V.diags in
    if race_diags = [] then begin
      Format.printf "crosscheck: no race diagnostics to validate@.";
      true
    end
    else begin
      let res = Elk_sim.Sim.run ~events:true env.D.ctx sched in
      match res.Elk_sim.Sim.events with
      | None ->
          Format.eprintf "elk_cli: simulator recorded no events@.";
          false
      | Some events ->
          let find_any op kinds =
            List.find_map (fun kind -> C.find_event events ~op ~kind) kinds
          in
          (* The event realizing a buffer's first write: a preload buffer
             is written by its delivery (pure-sequencing fallbacks for
             zero-byte preloads), an execute buffer by its distribution
             or compute. *)
          let writer op = function
            | "preload" -> find_any op [ C.Preload_deliver; C.Hbm_read; C.Preload_issue ]
            | _ -> find_any op [ C.Distribute; C.Tile_compute ]
          in
          (* The event realizing a buffer's last read: a preload buffer is
             consumed by its op's distribution, an execute buffer by the
             exchange tail. *)
          let release op = function
            | "preload" -> find_any op [ C.Distribute; C.Tile_compute ]
            | _ -> find_any op [ C.Exchange; C.Tile_compute ]
          in
          let ok = ref true in
          List.iter
            (fun d ->
              let p k = List.assoc_opt k d.Dg.payload in
              match (p "victim_op", p "victim_kind", p "clobber_op", p "clobber_kind") with
              | ( Some (Dg.Int vo),
                  Some (Dg.Str vk),
                  Some (Dg.Int co),
                  Some (Dg.Str ck) ) -> (
                  match (release vo vk, writer co ck) with
                  | Some rel, Some acq ->
                      if C.reaches events ~src:rel ~dst:acq then begin
                        ok := false;
                        Format.eprintf
                          "crosscheck FAILED: %s — the simulated causal DAG \
                           orders op %d's release before op %d's write@."
                          d.Dg.rule vo co
                      end
                  | _ ->
                      ok := false;
                      Format.eprintf
                        "crosscheck FAILED: no simulated events for the %s \
                         pair (ops %d, %d)@."
                        d.Dg.rule vo co)
              | _ ->
                  ok := false;
                  Format.eprintf "crosscheck FAILED: %s carries no race payload@."
                    d.Dg.rule)
            race_diags;
          if !ok then
            Format.printf
              "crosscheck: %d race diagnostic(s) confirmed unordered in the \
               simulated causal DAG@."
              (List.length race_diags);
          !ok
    end
  in
  let run cfg scale layer_factor batch ctx prefill chips cores topology jobs design
      plan_file strict rules error_spec crosscheck json_out sarif_out metrics_out
      trace_out =
    obs_setup ~metrics_out ~trace_out;
    set_jobs jobs;
    if rules = Some "help" then print_rules ()
    else begin
    let sel =
      match rules with
      | None -> R.lint_selection
      | Some spec -> (
          (* An explicit spec keeps lint semantics: its implicit
             "everything" covers the opt-in families too. *)
          match R.selection_of_string spec with
          | Ok sel -> R.with_opt_in sel
          | Error msg ->
              Format.eprintf "elk_cli: %s@." msg;
              exit 2)
    in
    let promote =
      match error_spec with
      | None -> R.no_promotion
      | Some spec -> (
          match R.promotion_of_string spec with
          | Ok p -> p
          | Error msg ->
              Format.eprintf "elk_cli: %s@." msg;
              exit 2)
    in
    let env = make_env ~chips ~cores ~topology in
    let sched, layout =
      match plan_file with
      | Some path -> (
          match Elk.Planio.load_ext env.D.ctx ~path with
          | Ok (s, layout) -> (s, layout)
          | Error msg ->
              Format.eprintf "elk_cli: cannot load plan %s: %s@." path msg;
              exit 2)
      | None -> (
          let g = build_graph cfg ~scale ~layer_factor ~batch ~ctx ~prefill in
          let saved = Elk.Compile.verifier () in
          Elk.Compile.set_verifier None;
          Fun.protect
            ~finally:(fun () -> Elk.Compile.set_verifier saved)
            (fun () ->
              match B.plan env.D.ctx ~pod:env.D.pod g design with
              | Some s -> (s, None)
              | None ->
                  Format.eprintf "elk_cli: the Ideal roofline has no schedule to lint@.";
                  exit 2))
    in
    let program = Elk.Program.of_schedule sched in
    let r = V.run ~rules:sel ~promote ?layout ~program env.D.ctx sched in
    Format.printf "%a" V.pp_report r;
    (match json_out with
    | None -> ()
    | Some path ->
        failing_write ~what:"lint report" (fun () ->
            let oc = open_out path in
            output_string oc (V.report_to_json r);
            close_out oc);
        Format.printf "wrote report to %s@." path);
    (match sarif_out with
    | None -> ()
    | Some path ->
        failing_write ~what:"SARIF report" (fun () ->
            let oc = open_out path in
            output_string oc (Elk_verify.Sarif.of_report r);
            close_out oc);
        Format.printf "wrote SARIF to %s@." path);
    let cross_ok = if crosscheck then crosscheck_races env sched r else true in
    write_trace trace_out;
    write_metrics metrics_out;
    if not cross_ok then exit 4;
    if V.errors r > 0 then exit 1;
    if strict && V.warnings r > 0 then exit 3
    end
  in
  let plan_t =
    Arg.(value & opt (some string) None
         & info [ "plan" ]
             ~doc:
               "Lint a serialized plan file instead of compiling; a recorded \
                layout section supplies the addresses for the race analysis.")
  in
  let strict_t =
    Arg.(value & flag
         & info [ "strict" ] ~doc:"Exit nonzero (3) on warnings, not only errors (1).")
  in
  let rules_t =
    Arg.(value & opt (some string) None
         & info [ "rules" ]
             ~doc:
               "Comma-separated rule ids or family prefixes (mem, dep, num, bw, \
                race, deadlock); prefix a token with - to suppress it.  \
                $(b,help) lists every rule.")
  in
  let error_t =
    Arg.(value & opt (some string) None
         & info [ "error" ]
             ~doc:
               "Promote the named rules or families to error severity, so their \
                diagnostics fail the command (exit 1).")
  in
  let crosscheck_t =
    Arg.(value & flag
         & info [ "crosscheck" ]
             ~doc:
               "Replay the plan in the simulator with event recording and \
                confirm every race diagnostic is unordered in the causal event \
                DAG too (exit 4 on disagreement).")
  in
  let json_out_t =
    Arg.(value & opt (some string) None
         & info [ "json-out" ] ~doc:"Write the full diagnostic report as JSON to $(docv).")
  in
  let sarif_t =
    Arg.(value & opt (some string) None
         & info [ "sarif" ] ~doc:"Write the report as SARIF 2.1.0 to $(docv).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Whole-plan soundness lint: every verify rule plus the opt-in \
          happens-before race analysis and the interconnect \
          channel-dependency deadlock analysis.")
    Term.(
      const run $ model_t $ scale_t $ layer_factor_t $ batch_t $ ctx_t $ prefill_t
      $ chips_t $ cores_t $ topo_t $ jobs_t $ design_t $ plan_t $ strict_t $ rules_t
      $ error_t $ crosscheck_t $ json_out_t $ sarif_t $ metrics_out_t $ trace_out_t)

let serve_cmd =
  let module W = Elk_serve.Workload in
  let module F = Elk_serve.Frontend in
  let run cfg scale layer_factor chips cores topology jobs no_cache design workload
      rate requests seed prompt output max_batch plan_cache_cap slo_ttft slo_itl
      window mem noc json_out metrics_out trace_out =
    set_jobs jobs;
    set_cache no_cache;
    obs_setup ~metrics_out ~trace_out;
    let cfg =
      if scale <= 1 then cfg
      else Elk_model.Zoo.scale cfg ~factor:scale ~layer_factor
    in
    let env = make_env ~chips ~cores ~topology in
    let outcome =
      try
        let spec =
          match
            W.preset workload ~rate ~prompt_mean:prompt ~output_mean:output
          with
          | Some s -> s
          | None -> invalid_arg (Printf.sprintf "unknown workload %S" workload)
        in
        let reqs = W.generate ~seed ~n:requests spec in
        let result =
          F.run ~design ?jobs ~max_batch ~plan_cache_cap ~noc env cfg reqs
        in
        Ok
          ( result,
            Elk_serve.Slo.of_result ?slo_ttft ?slo_itl ?window ~mem ~noc
              ~workload ~seed result )
      with Invalid_argument m -> Error m
    in
    match outcome with
    | Error m ->
        Format.eprintf "elk_cli serve: %s@." m;
        exit 1
    | Ok (result, report) ->
        Elk_serve.Slo.print report;
        (match json_out with
        | None -> ()
        | Some path ->
            failing_write ~what:"SLO report" (fun () ->
                let oc = open_out path in
                output_string oc (Elk_serve.Slo.to_json report);
                output_string oc "\n";
                close_out oc);
            Format.printf "wrote SLO report to %s@." path);
        let counters =
          List.concat_map
            (fun name ->
              Elk_obs.Timeseries.chrome_counter_events report.Elk_serve.Slo.series
                ~horizon:report.Elk_serve.Slo.makespan name)
            (Elk_obs.Timeseries.names report.Elk_serve.Slo.series)
        in
        write_trace ~extra:(F.chrome_events result @ counters) trace_out;
        write_metrics metrics_out
  in
  let workload_t =
    Arg.(
      value
      & opt (enum (List.map (fun n -> (n, n)) Elk_serve.Workload.preset_names))
          "poisson"
      & info [ "workload" ]
          ~doc:"Arrival process: $(b,poisson), $(b,bursty) or $(b,diurnal).")
  in
  let rate_t =
    Arg.(value & opt float 4.0 & info [ "rate" ] ~doc:"Mean arrival rate, requests/second.")
  in
  let requests_t =
    Arg.(value & opt int 16 & info [ "requests" ] ~doc:"Number of requests to generate.")
  in
  let seed_t =
    Arg.(
      value & opt int 42
      & info [ "seed" ]
          ~doc:
            "Workload seed.  The same seed gives a byte-identical request list \
             and SLO report, whatever the $(b,--jobs) count.")
  in
  let prompt_t =
    Arg.(value & opt int 128 & info [ "prompt" ] ~doc:"Mean prompt length, tokens.")
  in
  let output_t =
    Arg.(value & opt int 24 & info [ "output" ] ~doc:"Mean output length, tokens.")
  in
  let max_batch_t =
    Arg.(value & opt int 8 & info [ "max-batch" ] ~doc:"Largest batch the front-end forms.")
  in
  let plan_cache_cap_t =
    Arg.(
      value & opt int 512
      & info [ "plan-cache-cap" ]
          ~doc:
            "Largest number of padded shapes the front-end plan cache keeps \
             (LRU eviction beyond it).")
  in
  let slo_ttft_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "slo-ttft" ] ~doc:"TTFT target in seconds; enables SLO attainment.")
  in
  let slo_itl_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "slo-itl" ]
          ~doc:"Mean inter-token-latency target in seconds; enables SLO attainment.")
  in
  let window_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "window" ]
          ~doc:"Time-series window width in seconds (default: makespan/48).")
  in
  let mem_t =
    Arg.(
      value & flag
      & info [ "mem" ]
          ~doc:
            "Also record a per-core SRAM high-water gauge (the static demand \
             of the plans serving each batch) into the time series.")
  in
  let noc_t =
    Arg.(
      value & flag
      & info [ "noc" ]
          ~doc:
            "Also record a busiest-interconnect-link gauge (reservation \
             seconds on the hottest link of the plans serving each batch) \
             into the time series.")
  in
  let json_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ]
          ~doc:
            "Write the SLO report (with time series) as JSON to $(docv).  The \
             snapshot is $(b,elk trace diff)-comparable.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a synthetic request workload through the batching front-end \
          and report serving SLOs: TTFT/ITL percentiles, throughput, goodput, \
          queue depth over time.")
    Term.(
      const run $ model_t $ scale_t $ layer_factor_t $ chips_t $ cores_t
      $ topo_t $ jobs_t $ no_cache_t $ design_t $ workload_t $ rate_t
      $ requests_t $ seed_t $ prompt_t $ output_t $ max_batch_t
      $ plan_cache_cap_t $ slo_ttft_t $ slo_itl_t $ window_t $ mem_t $ noc_t
      $ json_out_t $ metrics_out_t $ trace_out_t)

let () =
  let doc = "Elk: a DL compiler for inter-core connected AI chips with HBM." in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "elk_cli" ~doc)
          [
            info_cmd; compile_cmd; compare_cmd; program_cmd; report_cmd; analyze_cmd;
            critpath_cmd; mem_cmd; noc_cmd; trace_cmd; profile_cmd; verify_cmd;
            lint_cmd;
            serve_cmd;
          ]))
