(* Design-space exploration CLI: the sweeps of paper §6.4 as one command.

   Example:
     elk_dse_cli --sweep hbm -m llama2-13b
     elk_dse_cli --sweep cores --topology mesh *)

open Cmdliner
module B = Elk_baselines.Baselines
module D = Elk_dse.Dse

let model_conv =
  let parse s =
    match Elk_model.Zoo.by_name s with
    | Some cfg -> Ok cfg
    | None -> Error (`Msg (Printf.sprintf "unknown model %S" s))
  in
  Arg.conv (parse, fun fmt c -> Format.pp_print_string fmt c.Elk_model.Zoo.cfg_name)

let model_t =
  Arg.(value & opt model_conv Elk_model.Zoo.llama2_13b & info [ "m"; "model" ] ~doc:"Model.")

let sweep_t =
  Arg.(
    required
    & opt (some (enum [ ("hbm", `Hbm); ("noc", `Noc); ("cores", `Cores); ("flops", `Flops) ])) None
    & info [ "sweep" ] ~doc:"Swept parameter: hbm, noc, cores or flops.")

let topo_t =
  Arg.(
    value
    & opt (enum [ ("a2a", `All_to_all); ("mesh", `Mesh); ("gpu", `Gpu) ]) `All_to_all
    & info [ "topology" ] ~doc:"Interconnect topology: a2a, mesh or gpu (clustered).")

let batch_t = Arg.(value & opt int 32 & info [ "b"; "batch" ] ~doc:"Batch size.")

let jobs_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ]
        ~doc:
          "Worker domains for design-point evaluation and order search \
           (default: $(b,ELK_JOBS), else the recommended domain count).")

let run cfg sweep topology batch jobs =
  Option.iter Elk_util.Pool.set_jobs jobs;
  let scaled = Elk_model.Zoo.scale cfg ~factor:8 ~layer_factor:10 in
  let g = Elk_model.Zoo.build scaled (Elk_model.Zoo.Decode { batch; ctx = 256 }) in
  let base_hbm =
    (D.env ~topology ()).D.pod.Elk_arch.Arch.chip.Elk_arch.Arch.hbm_bandwidth
  in
  let points =
    match sweep with
    | `Hbm ->
        List.map
          (fun m -> (Printf.sprintf "HBM %.2fx" m, D.env ~topology ~hbm_bw_per_chip:(m *. base_hbm) ()))
          [ 0.25; 0.5; 1.; 2.; 4. ]
    | `Noc ->
        List.map
          (fun m -> (Printf.sprintf "NoC %.2fx" m, D.env ~topology ~link_bw:(m *. 5.5e9) ()))
          [ 0.5; 1.; 2.; 4. ]
    | `Cores ->
        List.map
          (fun c -> (Printf.sprintf "%d cores" c, D.env ~topology ~cores:c ()))
          [ 16; 32; 64; 128 ]
    | `Flops ->
        List.map
          (fun m -> (Printf.sprintf "FLOPS %.2fx" m, D.env ~topology ~flops_scale:m ()))
          [ 0.5; 1.; 2.; 4. ]
  in
  let t =
    Elk_util.Table.create
      ~title:(Printf.sprintf "sweep on %s" (Elk_model.Graph.name g))
      ~columns:("point" :: List.map B.name B.all)
  in
  List.iter
    (fun (label, env) ->
      let cells =
        List.map
          (fun d ->
            let e = D.evaluate env g d in
            Format.asprintf "%a" Elk_util.Units.pp_time e.D.latency)
          B.all
      in
      Elk_util.Table.add_row t (label :: cells))
    points;
  Elk_util.Table.print t

let () =
  let doc = "Design-space exploration sweeps for ICCA chips (paper Figs 19-24)." in
  exit
    (Cmd.eval
       (Cmd.v (Cmd.info "elk_dse_cli" ~doc)
          Term.(const run $ model_t $ sweep_t $ topo_t $ batch_t $ jobs_t)))
