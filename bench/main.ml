(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md §4 for the experiment index).

   Usage:
     dune exec bench/main.exe                  # everything
     dune exec bench/main.exe -- fig17 table2  # a subset
     dune exec bench/main.exe -- micro         # Bechamel micro-benchmarks only

   All experiments run at the scaled default configuration (DESIGN.md §5):
   4 chips x 64 cores, per-core rates identical to IPU MK2, models scaled
   by 8 in width and ~10x in depth, context 2048/8 = 256, so that every
   operator-size : SRAM ratio matches the paper's full-scale setup. *)

open Elk_model
open Elk_util
module B = Elk_baselines.Baselines
module D = Elk_dse.Dse
module P = Elk_partition.Partition

let bench_elk_options =
  { Elk.Compile.reorder = true; max_orders = 8; max_edit_distance = 4; max_preload = 32;
    fuse = false; prune_margin = 0.25 }

let width_factor = 8
let ctx_len = 2048 / width_factor

(* The five evaluation models (Table 2), scaled. *)
let llama13b = Zoo.scale Zoo.llama2_13b ~factor:width_factor ~layer_factor:10
let gemma27b = Zoo.scale Zoo.gemma2_27b ~factor:width_factor ~layer_factor:11
let opt30b = Zoo.scale Zoo.opt_30b ~factor:width_factor ~layer_factor:12
let llama70b = Zoo.scale Zoo.llama2_70b ~factor:width_factor ~layer_factor:20
let ditxl = Zoo.scale Zoo.dit_xl ~factor:width_factor ~layer_factor:7

let llm_cfgs = [ llama13b; gemma27b; opt30b; llama70b ]

let decode cfg ~batch = Zoo.build cfg (Zoo.Decode { batch; ctx = ctx_len })

let default_env = lazy (D.env ())

let pct x = Printf.sprintf "%.1f%%" (100. *. x)
let us x = Printf.sprintf "%.1f" (x *. 1e6)

(* Design evaluations are reused across figures (17/18 share, 19/20/21
   share); memoize on a caller-provided key. *)
let eval_memo : (string, D.eval list) Hashtbl.t = Hashtbl.create 32

let evaluate_all ~key env graph =
  match Hashtbl.find_opt eval_memo key with
  | Some e -> e
  | None ->
      let e = D.evaluate_all ~elk_options:bench_elk_options env graph in
      Hashtbl.add eval_memo key e;
      e


(* ------------------------------------------------------------------ *)
(* Table 2: model complexity factors                                  *)
(* ------------------------------------------------------------------ *)

let table2 () =
  let env = Lazy.force default_env in
  let capacity = Elk_arch.Arch.usable_sram_per_core env.D.pod.Elk_arch.Arch.chip in
  let t =
    Table.create ~title:"Table 2: model complexity factors (scaled models)"
      ~columns:[ "Model"; "C"; "H"; "P"; "K"; "N" ]
  in
  List.iter
    (fun cfg ->
      let g =
        if cfg.Zoo.family = Zoo.Dit then Zoo.build cfg (Zoo.Decode { batch = 2; ctx = 1 })
        else decode cfg ~batch:32
      in
      let cg = Elk.Sharding.shard_graph ~chips:env.D.pod.Elk_arch.Arch.chips g in
      let n = Graph.length cg in
      let template = Elk.Reorder.template_layer_heavy cg in
      let h = List.length template in
      (* C: how many of the layer's heavy operators co-reside on chip. *)
      let heavy_spaces =
        List.map (fun id -> Elk.Alloc.min_preload_space env.D.ctx (Graph.get cg id)) template
        |> List.sort compare
      in
      let c =
        let rec count acc = function
          | s :: rest when acc +. s <= capacity -> 1 + count (acc +. s) rest
          | _ -> 0
        in
        count 0. heavy_spaces
      in
      (* P: max partition plans per operator; K: ops fitting on chip at
         minimal preload footprint. *)
      let p =
        Array.fold_left
          (fun a (node : Graph.node) ->
            max a (List.length (P.enumerate env.D.ctx node.Graph.op)))
          0 (Graph.nodes cg)
      in
      (* K: how many operators (greedily, smallest first) co-reside at
         minimal preload footprint. *)
      let all_spaces =
        Array.to_list (Graph.nodes cg)
        |> List.map (fun node -> Elk.Alloc.min_preload_space env.D.ctx node)
        |> List.sort compare
      in
      let k =
        let rec count acc = function
          | s :: rest when acc +. s <= capacity -> 1 + count (acc +. s) rest
          | _ -> 0
        in
        min n (count 0. all_spaces)
      in
      Table.add_row t
        [ cfg.Zoo.cfg_name; string_of_int c; string_of_int h; string_of_int p;
          string_of_int k; string_of_int n ])
    (llm_cfgs @ [ ditxl ]);
  Table.print t

(* ------------------------------------------------------------------ *)
(* Fig 5: execution time vs execution space (Pareto plans)            *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  let env = Lazy.force default_env in
  let t =
    Table.create
      ~title:"Fig 5: per-op execution time vs per-core execution space (frontier points)"
      ~columns:[ "Model"; "Operator"; "space KB -> time us (frontier)" ]
  in
  List.iter
    (fun (cfg, roles) ->
      let g = Elk.Sharding.shard_graph ~chips:4 (decode cfg ~batch:32) in
      List.iter
        (fun role ->
          match
            Array.find_opt (fun (n : Graph.node) -> n.Graph.role = role) (Graph.nodes g)
          with
          | None -> ()
          | Some node ->
              let f = P.exec_frontier env.D.ctx node.Graph.op in
              let cells =
                List.map
                  (fun pt ->
                    Printf.sprintf "%.0f->%.1f" (pt.Pareto.x /. 1e3)
                      (pt.Pareto.payload.P.exec_time *. 1e6))
                  f
              in
              let cells = List.filteri (fun i _ -> i < 8) cells in
              Table.add_row t [ cfg.Zoo.cfg_name; role; String.concat " " cells ])
        roles)
    [
      (llama13b, [ "q_proj"; "ffn_gate"; "attn_score" ]);
      (gemma27b, [ "q_proj"; "ffn_up" ]);
      (opt30b, [ "q_proj"; "ffn_up" ]);
    ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Figs 6-8: traffic demand over time                                 *)
(* ------------------------------------------------------------------ *)

let static_sim ~budget_frac ~use_max_popt =
  let env = Lazy.force default_env in
  let g = Elk.Sharding.shard_graph ~chips:4 (decode llama13b ~batch:32) in
  let capacity = Elk_arch.Arch.usable_sram_per_core env.D.pod.Elk_arch.Arch.chip in
  match
    B.static_schedule env.D.ctx g ~preload_budget:(budget_frac *. capacity) ~use_max_popt
  with
  | Some s -> Some (Elk_sim.Sim.run env.D.ctx s)
  | None -> None

let sparkline values =
  let glyphs = [| " "; "_"; "."; "-"; "="; "*"; "#"; "@" |] in
  let hi = Array.fold_left Float.max 1e-12 values in
  String.concat ""
    (Array.to_list values
    |> List.map (fun v ->
           glyphs.(min 7 (int_of_float (Float.round (v /. hi *. 7.))))))

let series_row label (series : Series.t) ~scale =
  let bins = Series.bins series ~n:12 in
  (label
  :: (Array.to_list bins |> List.map (fun (_, r) -> Printf.sprintf "%.1f" (r /. scale))))
  @ [ sparkline (Array.map snd bins) ]

let bin_headers () = ("setting" :: List.init 12 (fun i -> Printf.sprintf "t%d" i)) @ [ "shape" ]

let fig6 () =
  let t =
    Table.create
      ~title:
        "Fig 6: HBM bandwidth demand over time (GB/s per chip), by per-core preload space"
      ~columns:(bin_headers ())
  in
  List.iter
    (fun frac ->
      match static_sim ~budget_frac:frac ~use_max_popt:true with
      | None -> ()
      | Some r ->
          (* The paper plots the minimum bandwidth needed to avoid stalls:
             each operator's HBM bytes must arrive inside the window its
             preload space allows, i.e. between when its preload could
             start and when its execution starts.  Small preload budgets
             narrow the windows and spike the demand. *)
          let s = Series.create () in
          Array.iter
            (fun (o : Elk_sim.Sim.op_trace) ->
              if o.Elk_sim.Sim.device_bytes > 0. then
                Series.add s ~t_start:o.Elk_sim.Sim.pre_start
                  ~t_end:(Float.max o.Elk_sim.Sim.exe_start (o.Elk_sim.Sim.pre_start +. 1e-9))
                  ~volume:o.Elk_sim.Sim.device_bytes)
            r.Elk_sim.Sim.per_op;
          let label =
            Printf.sprintf "%.0fKB/core"
              (frac
              *. Elk_arch.Arch.usable_sram_per_core
                   (Lazy.force default_env).D.pod.Elk_arch.Arch.chip
              /. 1e3)
          in
          Table.add_row t (series_row label s ~scale:1e9))
    [ 0.1; 0.25; 0.45 ];
  Table.print t

let intercore_series (r : Elk_sim.Sim.result) ~cores =
  let s = Series.create () in
  Array.iter
    (fun (o : Elk_sim.Sim.op_trace) ->
      if o.Elk_sim.Sim.dist_bytes > 0. then
        Series.add s ~t_start:o.Elk_sim.Sim.exe_start ~t_end:o.Elk_sim.Sim.dist_end
          ~volume:(o.Elk_sim.Sim.dist_bytes /. cores);
      if o.Elk_sim.Sim.exchange_bytes > 0. then
        Series.add s ~t_start:o.Elk_sim.Sim.compute_end ~t_end:o.Elk_sim.Sim.exe_end
          ~volume:(o.Elk_sim.Sim.exchange_bytes /. cores))
    r.Elk_sim.Sim.per_op;
  s

let fig7 () =
  let cores = float_of_int (Lazy.force default_env).D.pod.Elk_arch.Arch.chip.Elk_arch.Arch.cores in
  let t =
    Table.create
      ~title:"Fig 7: per-core inter-core bandwidth demand over time (GB/s)"
      ~columns:(bin_headers ())
  in
  List.iter
    (fun (label, use_max_popt) ->
      match static_sim ~budget_frac:0.4 ~use_max_popt with
      | None -> ()
      | Some r -> Table.add_row t (series_row label (intercore_series r ~cores) ~scale:1e9))
    [ ("MinPreload", false); ("MaxPreload", true) ];
  Table.print t

let fig8 () =
  let cores = float_of_int (Lazy.force default_env).D.pod.Elk_arch.Arch.chip.Elk_arch.Arch.cores in
  let t =
    Table.create
      ~title:"Fig 8: total per-core interconnect bandwidth demand over time (GB/s)"
      ~columns:(bin_headers ())
  in
  List.iter
    (fun (label, use_max_popt) ->
      match static_sim ~budget_frac:0.4 ~use_max_popt with
      | None -> ()
      | Some r ->
          let s = intercore_series r ~cores in
          Array.iter
            (fun (o : Elk_sim.Sim.op_trace) ->
              if o.Elk_sim.Sim.inject_bytes > 0. then
                Series.add s ~t_start:o.Elk_sim.Sim.pre_start ~t_end:o.Elk_sim.Sim.pre_end
                  ~volume:(o.Elk_sim.Sim.inject_bytes /. cores))
            r.Elk_sim.Sim.per_op;
          Table.add_row t (series_row label s ~scale:1e9))
    [ ("MinPreload", false); ("MaxPreload", true) ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Fig 12: cost-model accuracy                                        *)
(* ------------------------------------------------------------------ *)

let fig12 () =
  let env = Lazy.force default_env in
  let cost = P.ctx_cost env.D.ctx in
  let t =
    Table.create ~title:"Fig 12: cost model accuracy (measured vs predicted)"
      ~columns:[ "Kind"; "samples"; "MAPE"; "r2" ]
  in
  List.iter
    (fun kind ->
      let pairs = Elk_cost.Costmodel.exec_accuracy cost ~kind ~n:200 in
      Table.add_row t
        [ kind; "200"; pct (Stats.mape pairs); Printf.sprintf "%.3f" (Stats.r2 pairs) ])
    [ "matmul"; "batch_matmul"; "softmax"; "rmsnorm"; "rope" ];
  let pairs = Elk_cost.Costmodel.transfer_accuracy cost ~n:200 in
  Table.add_row t
    [ "inter-core transfer"; "200"; pct (Stats.mape pairs);
      Printf.sprintf "%.3f" (Stats.r2 pairs) ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Fig 16: compile time                                               *)
(* ------------------------------------------------------------------ *)

let fig16 () =
  let env = Lazy.force default_env in
  let t =
    Table.create ~title:"Fig 16: Elk compile time (s) for varied model/batch sizes"
      ~columns:[ "Model"; "batch 8"; "batch 16"; "batch 32"; "batch 64" ]
  in
  List.iter
    (fun cfg ->
      let cells =
        List.map
          (fun batch ->
            let c =
              Elk.Compile.compile ~options:bench_elk_options env.D.ctx ~pod:env.D.pod
                (decode cfg ~batch)
            in
            Printf.sprintf "%.2f" c.Elk.Compile.compile_seconds)
          [ 8; 16; 32; 64 ]
      in
      Table.add_row t (cfg.Zoo.cfg_name :: cells))
    llm_cfgs;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Fig 17 + 18: end-to-end comparison on the default pod              *)
(* ------------------------------------------------------------------ *)

let fig17_evals cfg batch =
  let env = Lazy.force default_env in
  let key = Printf.sprintf "fig17/%s/%d" cfg.Zoo.cfg_name batch in
  evaluate_all ~key env (decode cfg ~batch)

let fig17 () =
  let t =
    Table.create ~title:"Fig 17: per-token serving latency (us), 4 chips"
      ~columns:("Model" :: "batch" :: List.map B.name B.all)
  in
  List.iter
    (fun cfg ->
      List.iter
        (fun batch ->
          let evals = fig17_evals cfg batch in
          Table.add_row t
            (cfg.Zoo.cfg_name :: string_of_int batch
            :: List.map (fun (e : D.eval) -> us e.D.latency) evals))
        [ 8; 32; 64 ])
    llm_cfgs;
  Table.print t

let fig18 () =
  let ta =
    Table.create ~title:"Fig 18a: execution time breakdown (batch 32), fraction of total"
      ~columns:[ "Model"; "Design"; "preload"; "execute"; "overlapped"; "interconnect" ]
  in
  let tb =
    Table.create ~title:"Fig 18b-d: resource utilization (batch 32)"
      ~columns:
        [ "Model"; "Design"; "HBM util"; "NoC util"; "(inter-core"; "+ preload)"; "TFLOPS" ]
  in
  List.iter
    (fun cfg ->
      List.iter
        (fun (e : D.eval) ->
          let total = Float.max 1e-12 e.D.latency in
          let b = e.D.bd in
          Table.add_row ta
            [ cfg.Zoo.cfg_name; B.name e.D.design;
              pct (b.Elk.Timeline.preload_only /. total);
              pct (b.Elk.Timeline.execute_only /. total);
              pct (b.Elk.Timeline.overlapped /. total);
              pct (b.Elk.Timeline.interconnect /. total) ];
          let ic, pre =
            match e.D.sim with
            | Some r -> r.Elk_sim.Sim.noc_util_split
            | None -> (e.D.noc_util, 0.)
          in
          Table.add_row tb
            [ cfg.Zoo.cfg_name; B.name e.D.design; pct e.D.hbm_util; pct e.D.noc_util;
              pct ic; pct pre; Printf.sprintf "%.2f" e.D.tflops ])
        (fig17_evals cfg 32))
    llm_cfgs;
  Table.print ta;
  Table.print tb

(* ------------------------------------------------------------------ *)
(* Figs 19-21: HBM bandwidth sweep on both topologies                 *)
(* ------------------------------------------------------------------ *)

let hbm_sweep_mults = [ 0.25; 0.5; 1.; 2. ]
let base_hbm_per_chip = (Lazy.force default_env).D.pod.Elk_arch.Arch.chip.Elk_arch.Arch.hbm_bandwidth

let fig19_evals topo mult cfg =
  let topology = match topo with `A2a -> `All_to_all | `Mesh -> `Mesh in
  let env = D.env ~topology ~hbm_bw_per_chip:(mult *. base_hbm_per_chip) () in
  let key =
    Printf.sprintf "fig19/%s/%.2f/%s"
      (match topo with `A2a -> "a2a" | `Mesh -> "mesh")
      mult cfg.Zoo.cfg_name
  in
  evaluate_all ~key env (decode cfg ~batch:32)

let fig19 () =
  let t =
    Table.create ~title:"Fig 19: per-token latency (us) at varied HBM bandwidths"
      ~columns:("Topology" :: "Model" :: "HBM x" :: List.map B.name B.all)
  in
  List.iter
    (fun topo ->
      List.iter
        (fun cfg ->
          List.iter
            (fun mult ->
              let evals = fig19_evals topo mult cfg in
              Table.add_row t
                ((match topo with `A2a -> "all-to-all" | `Mesh -> "mesh")
                :: cfg.Zoo.cfg_name
                :: Printf.sprintf "%.2fx" mult
                :: List.map (fun (e : D.eval) -> us e.D.latency) evals))
            hbm_sweep_mults)
        [ llama13b; llama70b; opt30b ])
    [ `A2a; `Mesh ];
  Table.print t

let fig20 () =
  let t =
    Table.create
      ~title:"Fig 20: Llama2-13B latency breakdown (us) vs HBM bandwidth, all-to-all"
      ~columns:[ "HBM x"; "Design"; "preload"; "execute"; "overlapped"; "interconnect" ]
  in
  List.iter
    (fun mult ->
      List.iter
        (fun (e : D.eval) ->
          let b = e.D.bd in
          Table.add_row t
            [ Printf.sprintf "%.2fx" mult; B.name e.D.design;
              us b.Elk.Timeline.preload_only; us b.Elk.Timeline.execute_only;
              us b.Elk.Timeline.overlapped; us b.Elk.Timeline.interconnect ])
        (fig19_evals `A2a mult llama13b))
    hbm_sweep_mults;
  Table.print t

let fig21 () =
  let t =
    Table.create ~title:"Fig 21: interconnect utilization at varied HBM bandwidths"
      ~columns:("Topology" :: "HBM x" :: List.map B.name B.all)
  in
  List.iter
    (fun topo ->
      List.iter
        (fun mult ->
          let evals = fig19_evals topo mult llama13b in
          Table.add_row t
            ((match topo with `A2a -> "all-to-all" | `Mesh -> "mesh")
            :: Printf.sprintf "%.2fx" mult
            :: List.map (fun (e : D.eval) -> pct e.D.noc_util) evals))
        hbm_sweep_mults)
    [ `A2a; `Mesh ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Fig 22: NoC bandwidth sweep                                        *)
(* ------------------------------------------------------------------ *)

let fig22 () =
  let base_link = 5.5e9 in
  let designs = [ B.Static; B.Elk_full; B.Ideal ] in
  let t =
    Table.create ~title:"Fig 22: Llama2-70B latency (us) at varied NoC bandwidths"
      ~columns:("Topology" :: "HBM x" :: "NoC x" :: List.map B.name designs)
  in
  List.iter
    (fun topo ->
      List.iter
        (fun hbm_mult ->
          List.iter
            (fun link_mult ->
              let topology = match topo with `A2a -> `All_to_all | `Mesh -> `Mesh in
              let env =
                D.env ~topology
                  ~hbm_bw_per_chip:(hbm_mult *. base_hbm_per_chip)
                  ~link_bw:(link_mult *. base_link) ()
              in
              let g = decode llama70b ~batch:32 in
              let cells =
                List.map
                  (fun d ->
                    us (D.evaluate ~elk_options:bench_elk_options env g d).D.latency)
                  designs
              in
              Table.add_row t
                ((match topo with `A2a -> "all-to-all" | `Mesh -> "mesh")
                :: Printf.sprintf "%.1fx" hbm_mult
                :: Printf.sprintf "%.1fx" link_mult
                :: cells))
            [ 0.5; 1.; 2.; 4. ])
        [ 0.5; 2. ])
    [ `A2a; `Mesh ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Fig 23: core-count sweep                                           *)
(* ------------------------------------------------------------------ *)

let fig23 () =
  let t =
    Table.create
      ~title:"Fig 23: per-token latency (us) at varied core counts (HBM 2.7 GB/s/core)"
      ~columns:("Model" :: "cores/chip" :: List.map B.name B.all)
  in
  List.iter
    (fun cores ->
      let env = D.env ~cores () in
      let evals =
        evaluate_all ~key:(Printf.sprintf "fig23/llama/%d" cores) env
          (decode llama13b ~batch:32)
      in
      Table.add_row t
        ("llama2-13b" :: string_of_int cores
        :: List.map (fun (e : D.eval) -> us e.D.latency) evals))
    [ 16; 32; 64; 128 ];
  (* DiT-XL on a single chip, as in the paper. *)
  List.iter
    (fun cores ->
      let env = D.env ~chips:1 ~cores () in
      let g = Zoo.build ditxl (Zoo.Decode { batch = 2; ctx = 1 }) in
      let evals = evaluate_all ~key:(Printf.sprintf "fig23/dit/%d" cores) env g in
      Table.add_row t
        ("dit-xl" :: string_of_int cores
        :: List.map (fun (e : D.eval) -> us e.D.latency) evals))
    [ 32; 64; 128 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Fig 24: training (forward pass) compute sweep                      *)
(* ------------------------------------------------------------------ *)

let fig24 () =
  let t =
    Table.create
      ~title:"Fig 24: Llama2-13B training forward pass, achieved TFLOPS (Elk-Full)"
      ~columns:[ "FLOPS x"; "bw 0.25x"; "bw 1x"; "bw 4x" ]
  in
  let g = Zoo.build llama13b (Zoo.Prefill { batch = 2; seq = 256 }) in
  List.iter
    (fun flops_scale ->
      let cells =
        List.map
          (fun bw_mult ->
            let env =
              D.env ~flops_scale
                ~hbm_bw_per_chip:(bw_mult *. base_hbm_per_chip)
                ~link_bw:(bw_mult *. 5.5e9) ()
            in
            let e = D.evaluate ~elk_options:bench_elk_options env g B.Elk_full in
            Printf.sprintf "%.2f" e.D.tflops)
          [ 0.25; 1.; 4. ]
      in
      Table.add_row t (Printf.sprintf "%.2fx" flops_scale :: cells))
    [ 0.5; 1.; 2.; 4. ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Ablations of Elk's design choices (DESIGN.md)                      *)
(* ------------------------------------------------------------------ *)

let ablation () =
  let g = decode llama13b ~batch:32 in
  (* (a) SRAM per core: where on-chip memory contention bites. *)
  let t =
    Table.create
      ~title:"Ablation A: per-core SRAM (us) - memory contention regime"
      ~columns:[ "SRAM/core"; "Basic"; "Elk-Full"; "Ideal"; "Elk vs Basic" ]
  in
  List.iter
    (fun kb ->
      let env = D.env ~sram_per_core:(kb *. 1024.) () in
      let l d = (D.evaluate ~elk_options:bench_elk_options env g d).D.latency in
      let basic = l B.Basic and full = l B.Elk_full and ideal = l B.Ideal in
      Table.add_row t
        [ Printf.sprintf "%.0fKB" kb; us basic; us full; us ideal;
          Printf.sprintf "%.2fx" (basic /. full) ])
    [ 64.; 96.; 160.; 320.; 624. ];
  Table.print t;
  (* (b) Preload-number cap: the value of deep lookahead (paper 4.2). *)
  let t =
    Table.create ~title:"Ablation B: preload-number cap (Elk-Dyn latency, us)"
      ~columns:[ "max preload"; "latency" ]
  in
  List.iter
    (fun cap ->
      let env = Lazy.force default_env in
      let e =
        D.evaluate
          ~elk_options:{ bench_elk_options with Elk.Compile.max_preload = cap }
          env g B.Elk_dyn
      in
      Table.add_row t [ string_of_int cap; us e.D.latency ])
    [ 1; 2; 4; 8; 32 ];
  Table.print t;
  (* (c) Reorder search width at 2x HBM, where reordering pays (Fig 20). *)
  let t =
    Table.create
      ~title:"Ablation C: reorder search width at 2x HBM (Elk-Full latency, us)"
      ~columns:[ "max orders"; "latency" ]
  in
  let env2 = D.env ~hbm_bw_per_chip:(2. *. base_hbm_per_chip) () in
  List.iter
    (fun orders ->
      let e =
        D.evaluate
          ~elk_options:
            { bench_elk_options with Elk.Compile.max_orders = orders;
              reorder = orders > 1 }
          env2 g B.Elk_full
      in
      Table.add_row t [ string_of_int orders; us e.D.latency ])
    [ 1; 4; 8; 24 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Extensions: spatial pipeline (paper 7) and energy objective        *)
(* ------------------------------------------------------------------ *)

let pipeline () =
  let env = Lazy.force default_env in
  let t =
    Table.create
      ~title:
        "Pipeline execution model (paper 7): throughput/latency vs stage count (Llama2-13B decode)"
      ~columns:[ "stages"; "cycle (us)"; "latency (us)"; "req/s"; "resident stages" ]
  in
  let cg =
    Elk.Opsplit.split_graph env.D.ctx
      (Elk.Sharding.shard_graph ~chips:4 (decode llama13b ~batch:32))
  in
  List.iter
    (fun stages ->
      let p = Elk_pipeline.Pipeline.plan env.D.ctx cg ~stages in
      let resident =
        List.length
          (List.filter (fun s -> s.Elk_pipeline.Pipeline.resident) p.Elk_pipeline.Pipeline.stages)
      in
      Table.add_row t
        [ string_of_int stages; us p.Elk_pipeline.Pipeline.bottleneck;
          us p.Elk_pipeline.Pipeline.latency;
          Printf.sprintf "%.0f" p.Elk_pipeline.Pipeline.throughput;
          Printf.sprintf "%d/%d" resident stages ])
    [ 1; 2; 4; 8 ];
  let k, best = Elk_pipeline.Pipeline.best_stage_count env.D.ctx cg in
  Table.add_row t
    [ Printf.sprintf "best=%d" k; us best.Elk_pipeline.Pipeline.bottleneck;
      us best.Elk_pipeline.Pipeline.latency;
      Printf.sprintf "%.0f" best.Elk_pipeline.Pipeline.throughput; "-" ];
  Table.print t;
  (* Reference: Elk time-multiplexed latency on the same graph. *)
  let e = D.evaluate ~elk_options:bench_elk_options env (decode llama13b ~batch:32) B.Elk_full in
  Printf.printf "Elk time-multiplexed reference: %.1f us/request (%.0f req/s)\n\n"
    (e.D.latency *. 1e6) (1. /. e.D.latency)

let energy () =
  let env = Lazy.force default_env in
  let g = decode llama13b ~batch:32 in
  let t =
    Table.create ~title:"Energy objective (paper 7): per-token energy by design"
      ~columns:[ "Design"; "total mJ"; "hbm mJ"; "compute mJ"; "static mJ"; "EDP (uJ.s)" ]
  in
  List.iter
    (fun d ->
      match B.plan ~elk_options:bench_elk_options env.D.ctx ~pod:env.D.pod g d with
      | None -> ()
      | Some s ->
          let r = Elk_sim.Sim.run env.D.ctx s in
          let e = Elk_energy.Energy.evaluate env.D.ctx s.Elk.Schedule.graph r in
          let mj x = Printf.sprintf "%.2f" (x *. 1e3) in
          Table.add_row t
            [ B.name d; mj e.Elk_energy.Energy.total_j; mj e.Elk_energy.Energy.hbm_j;
              mj e.Elk_energy.Energy.compute_j; mj e.Elk_energy.Energy.static_j;
              Printf.sprintf "%.2f" (e.Elk_energy.Energy.edp *. 1e9) ])
    [ B.Basic; B.Static; B.Elk_dyn; B.Elk_full ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Compatibility passes (paper 8): fusion and quantization            *)
(* ------------------------------------------------------------------ *)

let compat () =
  let env = Lazy.force default_env in
  let g = decode llama13b ~batch:32 in
  let t =
    Table.create
      ~title:"Paper 8 compatibility: pointwise fusion and weight quantization (Elk-Full)"
      ~columns:[ "variant"; "ops"; "HBM MB"; "latency (us)" ]
  in
  let eval label graph =
    let e = D.evaluate ~elk_options:bench_elk_options env graph B.Elk_full in
    Table.add_row t
      [ label; string_of_int (Graph.length graph);
        Printf.sprintf "%.1f" (Graph.total_hbm_bytes graph /. 1e6);
        us e.D.latency ]
  in
  eval "fp16" g;
  eval "fp16 + fusion" (Elk.Fusion.fuse g);
  eval "int8 weights" (Zoo.cast_dtype Elk_tensor.Dtype.Int8 g);
  eval "int8 + fusion" (Elk.Fusion.fuse (Zoo.cast_dtype Elk_tensor.Dtype.Int8 g));
  Table.print t

(* ------------------------------------------------------------------ *)
(* GPU-style clustered fabric (paper 7, "Apply Elk to GPUs")          *)
(* ------------------------------------------------------------------ *)

let gpu () =
  let g = decode llama13b ~batch:32 in
  let t =
    Table.create
      ~title:
        "Paper 7 GPU-style chip: clusters + shared L2 (inter-SM bw ~ HBM bw) vs all-to-all"
      ~columns:("Topology" :: "L2 x" :: List.map B.name [ B.Basic; B.Static; B.Elk_full; B.Ideal ])
  in
  let row label env =
    Table.add_row t
      (label
      @ List.map
          (fun d -> us (D.evaluate ~elk_options:bench_elk_options env g d).D.latency)
          [ B.Basic; B.Static; B.Elk_full; B.Ideal ])
  in
  row [ "all-to-all"; "-" ] (Lazy.force default_env);
  List.iter
    (fun l2_mult ->
      let base = Elk_arch.Arch.Presets.gpu_like_chip () in
      let l2 =
        match base.Elk_arch.Arch.topology with
        | Elk_arch.Arch.Clustered { clusters; cluster_size; l2_bandwidth } ->
            Elk_arch.Arch.Clustered
              { clusters; cluster_size; l2_bandwidth = l2_mult *. l2_bandwidth }
        | t -> t
      in
      let chip = Elk_arch.Arch.with_topology base l2 in
      let pod = { Elk_arch.Arch.chips = 4; chip; interchip_bandwidth = 27.8e9 } in
      let cost = Elk_cost.Costmodel.train chip in
      let env = { D.pod; ctx = P.make_ctx cost } in
      row [ "clustered"; Printf.sprintf "%.1fx" l2_mult ] env)
    [ 1.; 2.; 4. ];
  Table.print t;
  print_endline
    "With L2 bandwidth ~ HBM bandwidth, inter-cluster exchange and preload traffic\n\
     contend on the shared fabric (paper 7's prediction for H100-class GPUs);\n\
     widening the L2 recovers most of the all-to-all latency.\n"

(* ------------------------------------------------------------------ *)
(* End-to-end serving loop (autoregressive decode, growing KV)        *)
(* ------------------------------------------------------------------ *)

let serve () =
  let env = Lazy.force default_env in
  let t =
    Table.create
      ~title:"Serving loop: 64 generated tokens, batch 32, prompt 192 (KV grows per step)"
      ~columns:[ "Design"; "tok/s"; "first (us)"; "last (us)"; "plans"; "compile (s)" ]
  in
  List.iter
    (fun d ->
      let r =
        Elk_serve.Serve.serve ~design:d ~elk_options:bench_elk_options env llama13b
          ~batch:32 ~prompt_ctx:192 ~tokens:64
      in
      let first =
        match r.Elk_serve.Serve.steps with s :: _ -> s.Elk_serve.Serve.latency | [] -> 0.
      in
      Table.add_row t
        [ B.name d;
          Printf.sprintf "%.0f" r.Elk_serve.Serve.tokens_per_second;
          us first; us (Elk_serve.Serve.last_latency r);
          string_of_int r.Elk_serve.Serve.recompilations;
          Printf.sprintf "%.2f" r.Elk_serve.Serve.compile_time ])
    [ B.Basic; B.Static; B.Elk_dyn; B.Elk_full ];
  Table.print t;
  (* End-to-end workload: a seeded Poisson arrival stream through the
     batching front-end, snapshotted as BENCH_serve.json.  The snapshot
     is Tracediff-comparable (latency percentiles as segments), so CI
     gates serving-SLO regressions with `elk trace diff`.  Every value
     is simulated -> byte-stable across machines and jobs counts. *)
  let seed = 7 in
  let spec =
    Option.get
      (Elk_serve.Workload.preset "poisson" ~rate:500. ~prompt_mean:128
         ~output_mean:16)
  in
  let reqs = Elk_serve.Workload.generate ~seed ~n:24 spec in
  let result =
    Elk_serve.Frontend.run ~elk_options:bench_elk_options ~max_batch:8 env
      llama13b reqs
  in
  let report =
    Elk_serve.Slo.of_result ~slo_ttft:0.05 ~slo_itl:0.005 ~workload:"poisson"
      ~seed result
  in
  Elk_serve.Slo.print report;
  let oc = open_out "BENCH_serve.json" in
  output_string oc (Elk_serve.Slo.to_json report);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote BENCH_serve.json\n\n"

(* ------------------------------------------------------------------ *)
(* Simulator validation (paper 5: emulator-vs-simulator agreement)    *)
(* ------------------------------------------------------------------ *)

let validate () =
  let env = Lazy.force default_env in
  let t =
    Table.create
      ~title:
        "Simulator vs analytic-timeline agreement (paper validates its simulator against the emulator)"
      ~columns:[ "Model"; "Design"; "analytic (us)"; "simulated (us)"; "diff" ]
  in
  let diffs = ref [] in
  List.iter
    (fun cfg ->
      let g = decode cfg ~batch:32 in
      List.iter
        (fun d ->
          match B.plan ~elk_options:bench_elk_options env.D.ctx ~pod:env.D.pod g d with
          | None -> ()
          | Some s ->
              let tl = Elk.Timeline.evaluate env.D.ctx s in
              let r = Elk_sim.Sim.run env.D.ctx s in
              let diff =
                Float.abs (r.Elk_sim.Sim.total -. tl.Elk.Timeline.total)
                /. r.Elk_sim.Sim.total
              in
              diffs := diff :: !diffs;
              Table.add_row t
                [ cfg.Zoo.cfg_name; B.name d; us tl.Elk.Timeline.total;
                  us r.Elk_sim.Sim.total; pct diff ])
        [ B.Basic; B.Static; B.Elk_dyn ])
    llm_cfgs;
  Table.print t;
  Printf.printf "mean |sim - analytic| / sim = %s (max %s)\n\n"
    (pct (Stats.mean !diffs))
    (pct (List.fold_left Float.max 0. !diffs))

(* ------------------------------------------------------------------ *)
(* Full-scale (unscaled) IPU-POD4 headline run                        *)
(* ------------------------------------------------------------------ *)

let full () =
  let chip = Elk_arch.Arch.Presets.ipu_mk2_full in
  let pod = Elk_arch.Arch.Presets.ipu_pod4_full in
  let cost = Elk_cost.Costmodel.train chip in
  let env = { D.pod; ctx = P.make_ctx cost } in
  let t =
    Table.create
      ~title:
        "Full-scale IPU-POD4 (4 x 1472 cores, 624 KB/core, 16 TB/s HBM), unscaled models, batch 32, ctx 2048"
      ~columns:("Model" :: "metric" :: List.map B.name B.all)
  in
  List.iter
    (fun cfg ->
      let g = Zoo.build cfg (Zoo.Decode { batch = 32; ctx = 2048 }) in
      let evals =
        List.map (fun d -> D.evaluate ~elk_options:bench_elk_options env g d) B.all
      in
      Table.add_row t
        (cfg.Zoo.cfg_name :: "latency (us)"
        :: List.map (fun (e : D.eval) -> us e.D.latency) evals);
      Table.add_row t
        (cfg.Zoo.cfg_name :: "HBM util"
        :: List.map (fun (e : D.eval) -> pct e.D.hbm_util) evals);
      Table.add_row t
        (cfg.Zoo.cfg_name :: "TFLOPS"
        :: List.map (fun (e : D.eval) -> Printf.sprintf "%.0f" e.D.tflops) evals))
    [ Zoo.llama2_13b; Zoo.llama2_70b ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Resource-attribution snapshot (BENCH_attrib.json)                  *)
(* ------------------------------------------------------------------ *)

(* Emit the bottleneck report for the headline configuration and write a
   compact JSON snapshot next to the repo's committed copy, so CI can
   diff it and flag silent simulator-timing drift across PRs.  Values
   are rounded to 4 significant digits: enough to catch real timing
   changes, coarse enough to survive benign float-noise differences. *)
let attrib () =
  let env = Lazy.force default_env in
  let g = decode llama13b ~batch:32 in
  match B.plan ~elk_options:bench_elk_options env.D.ctx ~pod:env.D.pod g B.Elk_full with
  | None -> ()
  | Some s ->
      let r = Elk_sim.Sim.run env.D.ctx s in
      (match Elk_sim.Perfcore.check r.Elk_sim.Sim.perf ~total:r.Elk_sim.Sim.total with
      | Ok () -> ()
      | Error m -> Printf.printf "ATTRIBUTION LEAK: %s\n" m);
      let rep = Elk_analyze.Analyze.analyze ~top:4 s.Elk.Schedule.graph r in
      Elk_analyze.Analyze.print ~top_ops:5 rep;
      let module A = Elk_analyze.Analyze in
      let num v = Printf.sprintf "%.4g" v in
      let res_obj f =
        "{"
        ^ String.concat ","
            (List.map
               (fun res -> Printf.sprintf "\"%s\":%s" (A.resource_name res) (f res))
               A.all_resources)
        ^ "}"
      in
      let json =
        Printf.sprintf
          "{\"model\":%S,\"design\":%S,\"total_us\":%s,\"imbalance\":%s,\n\
           \"resource_us\":%s,\n\"headroom_us\":%s,\n\"mix\":%s,\n\
           \"hbm_mean_gbps\":%s,\"noc_mean_gbps\":%s}\n"
          (Graph.name g) (B.name B.Elk_full)
          (num (rep.A.total *. 1e6))
          (num rep.A.imbalance)
          (res_obj (fun res -> num (List.assoc res rep.A.resource_totals *. 1e6)))
          (res_obj (fun res -> num (List.assoc res rep.A.headroom *. 1e6)))
          (res_obj (fun res -> string_of_int (List.assoc res rep.A.mix)))
          (num (rep.A.hbm_mean /. 1e9))
          (num (rep.A.noc_mean /. 1e9))
      in
      let oc = open_out "BENCH_attrib.json" in
      output_string oc json;
      close_out oc;
      Printf.printf "wrote BENCH_attrib.json\n\n"

(* ------------------------------------------------------------------ *)
(* Compile-time baseline (BENCH_compile.json)                         *)
(* ------------------------------------------------------------------ *)

(* Time the full [Compile.compile] order search sequentially and on the
   parallel pool, per model x topology, and snapshot the numbers next to
   the repo's committed copy.  Wall-clock compile times are inherently
   machine-dependent, so CI diffs this file non-blocking (unlike
   BENCH_attrib.json); the [plan_identical] flags, however, must stay
   true — they re-check the determinism contract of the parallel search
   on the benchmark workloads themselves.

   A second section measures the steady-state serving recompile: the
   ctx-bucket ladder a batching front-end walks as contexts grow,
   compiled cold (empty cache) and then warm (compile cache on).  Warm
   compiles are whole-plan hits and must be byte-identical to cold. *)
let compile_bench () =
  let max_orders = 24 in
  (* Counters (orders pruned/tried) only record while obs is on. *)
  let was_enabled = Elk_obs.Control.is_enabled () in
  Elk_obs.Control.enable ();
  (* The jobs comparison times full searches; a cache hit on the second
     jobs level would make it vacuous. *)
  let was_cache = Elk.Compilecache.enabled () in
  Elk.Compilecache.set_enabled false;
  (* A 10% margin is enough to show the branch-and-bound bounds firing on
     these workloads (the conservative 25% default prunes nothing here)
     while keeping every near-winner in the race. *)
  let opts = { bench_elk_options with Elk.Compile.max_orders; prune_margin = 0.1 } in
  let counter name =
    match List.assoc_opt name (Elk_obs.Metrics.counters ()) with
    | Some v -> v
    | None -> 0.
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "Compile time: sequential vs parallel order search (max_orders=%d)"
           max_orders)
      ~columns:[ "Model"; "Topology"; "jobs"; "compile (s)"; "orders"; "pruned"; "speedup" ]
  in
  let rows = ref [] in
  let speedups = ref [] in
  List.iter
    (fun cfg ->
      List.iter
        (fun (tname, topology) ->
          let g = decode cfg ~batch:32 in
          let runs =
            List.map
              (fun jobs ->
                (* A fresh env per run: memo caches warmed by the previous
                   jobs level would flatter the second measurement. *)
                let env = D.env ~topology () in
                Elk_util.Pool.set_jobs jobs;
                let pruned0 = counter "elk_compile_orders_pruned_total" in
                let c = Elk.Compile.compile ~options:opts env.D.ctx ~pod:env.D.pod g in
                let pruned =
                  int_of_float (counter "elk_compile_orders_pruned_total" -. pruned0)
                in
                (jobs, c, pruned))
              [ 1; 4 ]
          in
          let seq_time =
            match runs with (_, c, _) :: _ -> c.Elk.Compile.compile_seconds | [] -> 0.
          in
          let seq_plan =
            match runs with (_, c, _) :: _ -> Elk.Planio.export c.Elk.Compile.schedule | [] -> ""
          in
          List.iter
            (fun (jobs, c, pruned) ->
              let speedup = seq_time /. Float.max 1e-9 c.Elk.Compile.compile_seconds in
              let identical = Elk.Planio.export c.Elk.Compile.schedule = seq_plan in
              Table.add_row t
                [ cfg.Zoo.cfg_name; tname; string_of_int jobs;
                  Printf.sprintf "%.2f" c.Elk.Compile.compile_seconds;
                  string_of_int c.Elk.Compile.orders_tried; string_of_int pruned;
                  (if jobs = 1 then "-" else Printf.sprintf "%.2fx" speedup) ];
              rows :=
                Printf.sprintf
                  "{\"model\":%S,\"topology\":%S,\"jobs\":%d,\"compile_s\":%.3f,\
                   \"orders_tried\":%d,\"pruned\":%d,\"latency_us\":%.4g}"
                  cfg.Zoo.cfg_name tname jobs c.Elk.Compile.compile_seconds
                  c.Elk.Compile.orders_tried pruned
                  (Elk.Compile.latency c *. 1e6)
                :: !rows;
              if jobs <> 1 then
                speedups :=
                  Printf.sprintf
                    "{\"model\":%S,\"topology\":%S,\"jobs\":%d,\"speedup\":%.2f,\
                     \"plan_identical\":%b}"
                    cfg.Zoo.cfg_name tname jobs speedup identical
                  :: !speedups)
            runs)
        [ ("a2a", `All_to_all); ("mesh", `Mesh) ])
    [ llama13b; gemma27b ];
  Elk_util.Pool.set_jobs 1;
  Table.print t;
  (* ---- steady-state serving recompiles: cold vs warm ------------- *)
  Elk.Compilecache.set_enabled true;
  let lt =
    Table.create
      ~title:
        "Steady-state recompile: serving ctx-bucket ladder, cold vs warm (compile cache)"
      ~columns:[ "Model"; "Topology"; "ctx"; "cold (s)"; "warm (s)"; "speedup"; "identical" ]
  in
  let ladder = ref [] in
  let buckets = [ 64; 128; 192; 256 ] in
  List.iter
    (fun (tname, topology) ->
      let env = D.env ~topology () in
      let compile g = Elk.Compile.compile ~options:opts env.D.ctx ~pod:env.D.pod g in
      Elk.Compilecache.reset ();
      let pass () =
        List.map
          (fun ctx -> (ctx, compile (Zoo.build llama13b (Zoo.Decode { batch = 8; ctx }))))
          buckets
      in
      (* Cold pass: empty cache.  Later buckets still reuse the earlier
         buckets' partition memos and clean scheduler suffixes — exactly
         what a serving session sees as contexts grow. *)
      let cold = pass () in
      let resumes = (Elk.Compilecache.stats ()).Elk.Compilecache.sched_resumes in
      (* Warm pass: every bucket is a whole-plan hit. *)
      let warm = pass () in
      List.iter2
        (fun (ctx, (co : Elk.Compile.t)) (_, (wa : Elk.Compile.t)) ->
          let identical =
            Elk.Planio.export co.Elk.Compile.schedule
            = Elk.Planio.export wa.Elk.Compile.schedule
          in
          let speedup =
            co.Elk.Compile.compile_seconds
            /. Float.max 1e-9 wa.Elk.Compile.compile_seconds
          in
          Table.add_row lt
            [ llama13b.Zoo.cfg_name; tname; string_of_int ctx;
              Printf.sprintf "%.3f" co.Elk.Compile.compile_seconds;
              Printf.sprintf "%.6f" wa.Elk.Compile.compile_seconds;
              Printf.sprintf "%.0fx" speedup;
              (if identical then "yes" else "NO") ];
          ladder :=
            Printf.sprintf
              "{\"model\":%S,\"topology\":%S,\"ctx\":%d,\"cold_s\":%.4f,\
               \"warm_s\":%.6f,\"speedup\":%.1f,\"sched_resumes\":%d,\
               \"plan_identical\":%b}"
              llama13b.Zoo.cfg_name tname ctx co.Elk.Compile.compile_seconds
              wa.Elk.Compile.compile_seconds speedup resumes identical
            :: !ladder)
        cold warm)
    [ ("a2a", `All_to_all); ("mesh", `Mesh) ];
  Elk.Compilecache.reset ();
  Elk.Compilecache.set_enabled was_cache;
  if not was_enabled then Elk_obs.Control.disable ();
  Table.print lt;
  let json =
    Printf.sprintf
      "{\"max_orders\":%d,\"jobs_levels\":[1,4],\n\"runs\":[\n%s\n],\n\
       \"speedups\":[\n%s\n],\n\"serving_ladder\":[\n%s\n]}\n"
      max_orders
      (String.concat ",\n" (List.rev !rows))
      (String.concat ",\n" (List.rev !speedups))
      (String.concat ",\n" (List.rev !ladder))
  in
  let oc = open_out "BENCH_compile.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_compile.json\n\n"

(* ------------------------------------------------------------------ *)
(* Critical-path snapshot (BENCH_critpath.json)                       *)
(* ------------------------------------------------------------------ *)

(* Extract the causal critical path of the headline run and snapshot it
   in the [elk critpath --json-out] shape (plus an [overhead] record),
   so CI can [elk trace diff] a fresh snapshot against the committed
   copy.  Segments pre-aggregate by (name, kind, resource) — the same
   key Tracediff folds on — and values round to 4 significant digits,
   like BENCH_attrib.json.  The overhead record re-checks the zero-cost
   contract: recording the event DAG must not perturb the timeline, and
   its wall-clock cost over the plain run is recorded so a regression in
   the recording path shows up here. *)
let critpath_bench () =
  let env = Lazy.force default_env in
  let g = decode llama13b ~batch:32 in
  match B.plan ~elk_options:bench_elk_options env.D.ctx ~pod:env.D.pod g B.Elk_full with
  | None -> ()
  | Some s ->
      let module Cp = Elk_sim.Critpath in
      let time reps f =
        let t0 = Unix.gettimeofday () in
        for _ = 1 to reps do
          ignore (f ())
        done;
        (Unix.gettimeofday () -. t0) /. float_of_int reps
      in
      let reps = 5 in
      ignore (Elk_sim.Sim.run ~events:false env.D.ctx s);
      let t_off = time reps (fun () -> Elk_sim.Sim.run ~events:false env.D.ctx s) in
      let t_on = time reps (fun () -> Elk_sim.Sim.run ~events:true env.D.ctx s) in
      let r = Elk_sim.Sim.run ~events:true env.D.ctx s in
      let r_off = Elk_sim.Sim.run ~events:false env.D.ctx s in
      if r.Elk_sim.Sim.total <> r_off.Elk_sim.Sim.total then
        Printf.printf "RECORDING PERTURBED THE TIMELINE: %.9g vs %.9g\n"
          r.Elk_sim.Sim.total r_off.Elk_sim.Sim.total;
      (match r.Elk_sim.Sim.events with
      | None -> ()
      | Some ev ->
          (match Cp.check ev ~total:r.Elk_sim.Sim.total with
          | Ok () -> ()
          | Error m -> Printf.printf "CRITPATH LEAK: %s\n" m);
          let sum = Cp.extract ev in
          Cp.print ~top:5 ~top_segments:8 s.Elk.Schedule.graph sum;
          let num v = Printf.sprintf "%.4g" v in
          let tbl = Hashtbl.create 64 and order = ref [] in
          List.iter
            (fun seg ->
              let name =
                if seg.Cp.s_op < 0 then "-"
                else
                  (Graph.get s.Elk.Schedule.graph seg.Cp.s_op).Graph.op
                    .Elk_tensor.Opspec.name
              in
              let key =
                (name, Cp.kind_name seg.Cp.s_kind, Cp.resource_name seg.Cp.s_res)
              in
              match Hashtbl.find_opt tbl key with
              | Some cur -> Hashtbl.replace tbl key (cur +. seg.Cp.s_dur)
              | None ->
                  Hashtbl.add tbl key seg.Cp.s_dur;
                  order := key :: !order)
            sum.Cp.segments;
          let seg_rows =
            List.rev_map
              (fun ((name, kind, res) as key) ->
                Printf.sprintf "{\"name\":%S,\"kind\":%S,\"resource\":%S,\"dur\":%s}"
                  name kind res
                  (num (Hashtbl.find tbl key)))
              !order
          in
          let res_obj =
            "{"
            ^ String.concat ","
                (List.map
                   (fun (res, v) ->
                     Printf.sprintf "\"%s\":%s" (Cp.resource_name res) (num v))
                   sum.Cp.resource_seconds)
            ^ "}"
          in
          let json =
            Printf.sprintf
              "{\"model\":%S,\"design\":%S,\"total\":%s,\"dominant\":%S,\n\
               \"resource_seconds\":%s,\n\
               \"overhead\":{\"sim_disabled_s\":%s,\"sim_enabled_s\":%s,\
               \"ratio\":%s,\"events\":%d},\n\"segments\":[\n%s\n]}\n"
              (Graph.name g) (B.name B.Elk_full) (num sum.Cp.total)
              (Cp.resource_name (Cp.dominant sum))
              res_obj (num t_off) (num t_on)
              (num (t_on /. Float.max 1e-12 t_off))
              (Array.length ev)
              (String.concat ",\n" seg_rows)
          in
          let oc = open_out "BENCH_critpath.json" in
          output_string oc json;
          close_out oc;
          Printf.printf "wrote BENCH_critpath.json (recording overhead %.2fx)\n\n"
            (t_on /. Float.max 1e-12 t_off))

(* ------------------------------------------------------------------ *)
(* Memory-observability snapshot (BENCH_mem.json)                     *)
(* ------------------------------------------------------------------ *)

(* Snapshot the headline run's SRAM residency report in the
   [elk mem --json-out] shape so CI can [elk trace diff] a fresh copy
   against the committed one.  Like the critpath bench, this re-checks
   the zero-cost contract for the recording path it gates: residency
   recording must not perturb the simulated timeline, and its wall-clock
   overhead over the plain run is measured so a regression in the
   recording path shows up in the snapshot's [overhead] ratio. *)
let mem_bench () =
  let env = Lazy.force default_env in
  let g = decode llama13b ~batch:32 in
  match B.plan ~elk_options:bench_elk_options env.D.ctx ~pod:env.D.pod g B.Elk_full with
  | None -> ()
  | Some s ->
      let time reps f =
        let t0 = Unix.gettimeofday () in
        for _ = 1 to reps do
          ignore (f ())
        done;
        (Unix.gettimeofday () -. t0) /. float_of_int reps
      in
      let reps = 5 in
      ignore (Elk_sim.Sim.run ~mem:false env.D.ctx s);
      let t_off = time reps (fun () -> Elk_sim.Sim.run ~mem:false env.D.ctx s) in
      let t_on = time reps (fun () -> Elk_sim.Sim.run ~mem:true env.D.ctx s) in
      let r = Elk_sim.Sim.run ~mem:true env.D.ctx s in
      let r_off = Elk_sim.Sim.run ~mem:false env.D.ctx s in
      if r.Elk_sim.Sim.total <> r_off.Elk_sim.Sim.total then
        Printf.printf "RECORDING PERTURBED THE TIMELINE: %.9g vs %.9g\n"
          r.Elk_sim.Sim.total r_off.Elk_sim.Sim.total;
      let module Mp = Elk_analyze.Memprof in
      let rep = Mp.analyze env.D.ctx s r in
      (match Mp.check rep with
      | Ok () -> ()
      | Error m -> Printf.printf "MEMORY INVARIANT VIOLATED: %s\n" m);
      Mp.print ~top:5 rep;
      let num v = Printf.sprintf "%.4g" v in
      (* The elk-mem snapshot plus the overhead record, spliced after the
         opening brace so the Tracediff core keeps its shape. *)
      let body = Mp.to_json ~top:8 rep in
      let body = String.sub body 1 (String.length body - 1) in
      let json =
        Printf.sprintf
          "{\"design\":%S,\"overhead\":{\"sim_disabled_s\":%s,\"sim_enabled_s\":%s,\"ratio\":%s},%s\n"
          (B.name B.Elk_full) (num t_off) (num t_on)
          (num (t_on /. Float.max 1e-12 t_off))
          body
      in
      let oc = open_out "BENCH_mem.json" in
      output_string oc json;
      close_out oc;
      Printf.printf "wrote BENCH_mem.json (recording overhead %.2fx)\n\n"
        (t_on /. Float.max 1e-12 t_off)

(* ------------------------------------------------------------------ *)
(* Interconnect-observability snapshot (BENCH_noc.json)               *)
(* ------------------------------------------------------------------ *)

(* Snapshot the headline run's interconnect congestion report in the
   [elk noc --json-out] shape so CI can [elk trace diff] a fresh copy
   against the committed one.  Like the critpath and mem benches, this
   re-checks the zero-cost contract for the recording path it gates:
   per-link recording must not perturb the simulated timeline, and its
   wall-clock overhead over the plain run is measured so a regression
   in the recording path shows up in the snapshot's [overhead] ratio. *)
let noc_bench () =
  let env = Lazy.force default_env in
  let g = decode llama13b ~batch:32 in
  match B.plan ~elk_options:bench_elk_options env.D.ctx ~pod:env.D.pod g B.Elk_full with
  | None -> ()
  | Some s ->
      let time reps f =
        let t0 = Unix.gettimeofday () in
        for _ = 1 to reps do
          ignore (f ())
        done;
        (Unix.gettimeofday () -. t0) /. float_of_int reps
      in
      let reps = 5 in
      ignore (Elk_sim.Sim.run ~noc:false env.D.ctx s);
      let t_off = time reps (fun () -> Elk_sim.Sim.run ~noc:false env.D.ctx s) in
      let t_on = time reps (fun () -> Elk_sim.Sim.run ~noc:true env.D.ctx s) in
      (* The analyzed run also records events so check can reconcile the
         trace against Critpath's interconnect segments; the overhead
         ratio above isolates the per-link recording path alone. *)
      let r = Elk_sim.Sim.run ~events:true ~noc:true env.D.ctx s in
      let r_off = Elk_sim.Sim.run ~noc:false env.D.ctx s in
      if r.Elk_sim.Sim.total <> r_off.Elk_sim.Sim.total then
        Printf.printf "RECORDING PERTURBED THE TIMELINE: %.9g vs %.9g\n"
          r.Elk_sim.Sim.total r_off.Elk_sim.Sim.total;
      let module Np = Elk_analyze.Nocprof in
      let rep = Np.analyze s r in
      (match Np.check rep with
      | Ok () -> ()
      | Error m -> Printf.printf "INTERCONNECT INVARIANT VIOLATED: %s\n" m);
      Np.print ~top:5 rep;
      let num v = Printf.sprintf "%.4g" v in
      (* The elk-noc snapshot plus the overhead record, spliced after the
         opening brace so the Tracediff core keeps its shape. *)
      let body = Np.to_json ~top:8 rep in
      let body = String.sub body 1 (String.length body - 1) in
      let json =
        Printf.sprintf
          "{\"design\":%S,\"overhead\":{\"sim_disabled_s\":%s,\"sim_enabled_s\":%s,\"ratio\":%s},%s\n"
          (B.name B.Elk_full) (num t_off) (num t_on)
          (num (t_on /. Float.max 1e-12 t_off))
          body
      in
      let oc = open_out "BENCH_noc.json" in
      output_string oc json;
      close_out oc;
      Printf.printf "wrote BENCH_noc.json (recording overhead %.2fx)\n\n"
        (t_on /. Float.max 1e-12 t_off)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per table/figure                    *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let env = Lazy.force default_env in
  let g = Elk.Sharding.shard_graph ~chips:4 (decode llama13b ~batch:32) in
  let node = Graph.get g 2 in
  let capacity = Elk_arch.Arch.usable_sram_per_core env.D.pod.Elk_arch.Arch.chip in
  let cost = P.ctx_cost env.D.ctx in
  let sched = lazy (Elk.Scheduler.run env.D.ctx g) in
  (* Fresh contexts here measure cold enumeration; shared memo tables
     would hand them the warm results and time a hash lookup instead. *)
  let was_sharing = P.memo_sharing () in
  P.set_memo_sharing false;
  let fresh_ctx () = P.make_ctx cost in
  let tests =
    [
      Test.make ~name:"table2:plan-enumeration"
        (Staged.stage (fun () -> P.enumerate (fresh_ctx ()) node.Graph.op));
      Test.make ~name:"fig5:exec-frontier"
        (Staged.stage (fun () -> P.exec_frontier (fresh_ctx ()) node.Graph.op));
      Test.make ~name:"fig6-8:static-plan"
        (Staged.stage (fun () ->
             B.static_schedule env.D.ctx g ~preload_budget:(0.4 *. capacity)
               ~use_max_popt:true));
      Test.make ~name:"fig12:predict-exec"
        (Staged.stage (fun () ->
             Elk_cost.Costmodel.predict_exec cost ~kind:"matmul" ~iter:[| 32; 64; 64 |]));
      Test.make ~name:"fig16:alloc-step"
        (Staged.stage (fun () ->
             Elk.Alloc.allocate env.D.ctx ~capacity ~exec_op:node ~window:[]));
      Test.make ~name:"fig17:timeline-eval"
        (Staged.stage (fun () -> Elk.Timeline.evaluate env.D.ctx (Lazy.force sched)));
      Test.make ~name:"fig18:sim-run"
        (Staged.stage (fun () -> Elk_sim.Sim.run env.D.ctx (Lazy.force sched)));
      Test.make ~name:"fig19-24:hbm-read"
        (Staged.stage
           (let dev = Elk_hbm.Hbm.create Elk_hbm.Hbm.hbm3e_module in
            fun () -> Elk_hbm.Hbm.read dev ~now:0. ~offset:0. ~bytes:1e6));
      Test.make ~name:"ablation:alloc-window"
        (Staged.stage
           (let window =
              List.init 4 (fun i ->
                  let n = Graph.get g ((i * 5) + 2) in
                  (n, P.fastest_plan env.D.ctx n.Graph.op))
            in
            fun () -> Elk.Alloc.allocate env.D.ctx ~capacity ~exec_op:node ~window));
      Test.make ~name:"pipeline:stage-partition"
        (Staged.stage (fun () -> Elk_pipeline.Pipeline.plan env.D.ctx g ~stages:4));
      Test.make ~name:"gpu:clustered-route"
        (Staged.stage
           (let cnoc =
              Elk_noc.Noc.create (Elk_arch.Arch.Presets.gpu_like_chip ())
            in
            fun () ->
              Elk_noc.Noc.route cnoc ~src:(Elk_noc.Noc.Core 0) ~dst:(Elk_noc.Noc.Core 33)));
      Test.make ~name:"compat:fusion-pass"
        (Staged.stage (fun () -> Elk.Fusion.fuse (decode llama13b ~batch:32)));
      Test.make ~name:"serve:plan-export"
        (Staged.stage (fun () -> Elk.Planio.export (Lazy.force sched)));
      Test.make ~name:"cache:graph-digest"
        (Staged.stage (fun () -> Elk.Compilecache.graph_digest g));
    ]
  in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.25) () in
  let raw =
    Benchmark.all cfg
      [ Toolkit.Instance.monotonic_clock ]
      (Test.make_grouped ~name:"elk" tests)
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let t =
    Table.create ~title:"Bechamel micro-benchmarks (per-call cost of each experiment's kernel)"
      ~columns:[ "benchmark"; "time/run" ]
  in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some (est :: _) ->
          Table.add_row t [ name; Format.asprintf "%a" Units.pp_time (est *. 1e-9) ]
      | _ -> Table.add_row t [ name; "n/a" ])
    (List.sort compare rows);
  Table.print t;
  P.set_memo_sharing was_sharing

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table2", table2);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig12", fig12);
    ("fig16", fig16);
    ("fig17", fig17);
    ("fig18", fig18);
    ("fig19", fig19);
    ("fig20", fig20);
    ("fig21", fig21);
    ("fig22", fig22);
    ("fig23", fig23);
    ("fig24", fig24);
    ("ablation", ablation);
    ("pipeline", pipeline);
    ("compat", compat);
    ("gpu", gpu);
    ("serve", serve);
    ("validate", validate);
    ("full", full);
    ("energy", energy);
    ("attrib", attrib);
    ("compile", compile_bench);
    ("critpath", critpath_bench);
    ("mem", mem_bench);
    ("noc", noc_bench);
    ("micro", micro);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
          let t0 = Unix.gettimeofday () in
          f ();
          Printf.printf "[%s done in %.1fs]\n\n%!" name (Unix.gettimeofday () -. t0)
      | None ->
          Printf.printf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst experiments)))
    requested
