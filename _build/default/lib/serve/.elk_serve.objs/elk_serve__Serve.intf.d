lib/serve/serve.mli: Elk Elk_baselines Elk_dse Elk_model Format
