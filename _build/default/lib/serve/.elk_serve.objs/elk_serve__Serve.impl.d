lib/serve/serve.ml: Elk Elk_arch Elk_baselines Elk_dse Elk_model Elk_sim Elk_util Format Hashtbl List Unix
