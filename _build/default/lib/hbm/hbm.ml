type config = {
  channels : int;
  banks_per_channel : int;
  channel_bandwidth : float;
  interleave_bytes : float;
  row_bytes : float;
  t_rcd : float;
  t_cl : float;
  t_rp : float;
  t_ras : float;
  base_latency : float;
}

let hbm3e_module =
  {
    channels = 16;
    banks_per_channel = 16;
    channel_bandwidth = 1e12 /. 16.;
    interleave_bytes = 256.;
    row_bytes = 1024.;
    t_rcd = 14e-9;
    t_cl = 14e-9;
    t_rp = 14e-9;
    t_ras = 33e-9;
    base_latency = 60e-9;
  }

let peak_bandwidth c = float_of_int c.channels *. c.channel_bandwidth

let config_for_bandwidth bw =
  if bw <= 0. then invalid_arg "Hbm.config_for_bandwidth: nonpositive bandwidth";
  let per_channel = hbm3e_module.channel_bandwidth in
  let channels = max 1 (int_of_float (Float.round (bw /. per_channel))) in
  { hbm3e_module with channels; channel_bandwidth = bw /. float_of_int channels }

type channel = {
  mutable ready_at : float;  (** when the channel data bus frees up. *)
  open_rows : float array;  (** open row id per bank; -1 = closed. *)
  mutable next_bank : int;  (** round-robin activation pointer. *)
}

type t = {
  cfg : config;
  chans : channel array;
  mutable total_bytes : float;
  mutable busy_time : float;
  mutable requests : int;
}

let create cfg =
  if cfg.channels <= 0 || cfg.banks_per_channel <= 0 then
    invalid_arg "Hbm.create: nonpositive channel/bank count";
  {
    cfg;
    chans =
      Array.init cfg.channels (fun _ ->
          { ready_at = 0.; open_rows = Array.make cfg.banks_per_channel (-1.); next_bank = 0 });
    total_bytes = 0.;
    busy_time = 0.;
    requests = 0;
  }

let config t = t.cfg

let reset t =
  Array.iter
    (fun ch ->
      ch.ready_at <- 0.;
      ch.next_bank <- 0;
      Array.fill ch.open_rows 0 (Array.length ch.open_rows) (-1.))
    t.chans;
  t.total_bytes <- 0.;
  t.busy_time <- 0.;
  t.requests <- 0

(* Serve [share] sequential bytes starting at [row0] on one channel.
   Streaming across [banks] banks overlaps activations with data transfer,
   so the channel is bus-bound unless rows cycle faster than tRC allows. *)
let channel_time cfg ~share ~rows_touched ~row_hit_first =
  let burst = share /. cfg.channel_bandwidth in
  let t_rc = cfg.t_ras +. cfg.t_rp in
  let activation_floor =
    rows_touched *. t_rc /. float_of_int cfg.banks_per_channel
  in
  let first_access =
    if row_hit_first then cfg.t_cl else cfg.t_rp +. cfg.t_rcd +. cfg.t_cl
  in
  first_access +. Float.max burst activation_floor

let read t ~now ~offset ~bytes =
  if offset < 0. then invalid_arg "Hbm.read: negative offset";
  if bytes <= 0. then invalid_arg "Hbm.read: nonpositive size";
  let cfg = t.cfg in
  let n = cfg.channels in
  (* The request is striped over channels at [interleave_bytes]; each
     channel receives a nearly equal share for any request spanning more
     than [n] interleave units. *)
  let units = Float.max 1. (Float.round (bytes /. cfg.interleave_bytes)) in
  let used_channels = min n (int_of_float units) in
  let share = bytes /. float_of_int used_channels in
  let first_unit = int_of_float (offset /. cfg.interleave_bytes) in
  let completion = ref now in
  for i = 0 to used_channels - 1 do
    let ch = t.chans.((first_unit + i) mod n) in
    let start = Float.max now ch.ready_at in
    let rows_per_chan = share /. float_of_int n in
    let row0 = Float.of_int (int_of_float ((offset /. cfg.row_bytes) +. float_of_int i)) in
    let rows_touched = Float.max 1. (Float.round (rows_per_chan /. cfg.row_bytes)) in
    let bank = ch.next_bank in
    let row_hit_first = ch.open_rows.(bank) = row0 in
    let dt = channel_time cfg ~share ~rows_touched ~row_hit_first in
    ch.ready_at <- start +. dt;
    ch.open_rows.(bank) <- row0 +. rows_touched -. 1.;
    ch.next_bank <- (bank + 1) mod cfg.banks_per_channel;
    t.busy_time <- t.busy_time +. dt;
    completion := Float.max !completion ch.ready_at
  done;
  t.total_bytes <- t.total_bytes +. bytes;
  t.requests <- t.requests + 1;
  !completion +. cfg.base_latency

let replay t trace =
  let now = ref 0. in
  List.iter (fun (offset, bytes) -> now := read t ~now:!now ~offset ~bytes) trace;
  !now

let effective_bandwidth t ~bytes =
  let fresh = create t.cfg in
  let dt = read fresh ~now:0. ~offset:0. ~bytes in
  if dt <= 0. then peak_bandwidth t.cfg else bytes /. dt

type stats = { total_bytes : float; busy_time : float; requests : int }

let stats (t : t) =
  { total_bytes = t.total_bytes; busy_time = t.busy_time; requests = t.requests }
