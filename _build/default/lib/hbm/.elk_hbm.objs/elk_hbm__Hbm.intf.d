lib/hbm/hbm.mli:
