lib/hbm/hbm.ml: Array Float List
