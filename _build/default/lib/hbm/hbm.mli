(** Channel/bank-state HBM timing model.

    The paper obtains HBM access latencies from DRAMsim3 by replaying
    tensor-granularity traces (§5, emulation framework).  This module is
    the substitute substrate: a per-channel, per-bank timing model with
    row-buffer state, address interleaving and burst bandwidth, detailed
    enough to reproduce the behaviours Elk depends on —

    - large sequential tensor reads saturate close to peak bandwidth
      (tensors are striped over all channels; row activations overlap
      across banks while streaming);
    - small or scattered reads pay activation + CAS latency and fall far
      short of peak;
    - concurrent requests queue per channel, so bandwidth is shared.

    Addresses and sizes are floats (bytes) like everywhere else in the
    code base; they are snapped to burst granularity internally. *)

type config = {
  channels : int;
  banks_per_channel : int;
  channel_bandwidth : float;  (** sustained B/s per channel. *)
  interleave_bytes : float;  (** channel-striping granularity. *)
  row_bytes : float;  (** row-buffer (page) size per bank. *)
  t_rcd : float;  (** activate-to-read delay. *)
  t_cl : float;  (** CAS latency. *)
  t_rp : float;  (** precharge delay. *)
  t_ras : float;  (** minimum row-open time. *)
  base_latency : float;  (** fixed controller + PHY traversal latency. *)
}

val hbm3e_module : config
(** One HBM3E stack: 16 pseudo-channels, 1 TB/s aggregate — four of these
    match the paper's 4 TB/s per chip (§6.1). *)

val config_for_bandwidth : float -> config
(** [config_for_bandwidth bw] scales the channel count of {!hbm3e_module}
    (and fractional channel bandwidth) so the aggregate peak equals [bw]. *)

val peak_bandwidth : config -> float
(** [channels * channel_bandwidth]. *)

type t
(** Mutable device state: per-channel ready times and per-bank open rows. *)

val create : config -> t
val config : t -> config

val read : t -> now:float -> offset:float -> bytes:float -> float
(** [read t ~now ~offset ~bytes] issues one read request and returns its
    completion time (absolute, >= now).  State advances: subsequent reads
    queue behind this one on the channels it used.  Raises
    [Invalid_argument] on negative offset or nonpositive size. *)

val replay : t -> (float * float) list -> float
(** [replay t trace] issues [(offset, bytes)] requests back to back
    starting at time 0 (each issued when the previous completes — the
    sequential tensor-granularity pattern of the paper) and returns the
    total time. *)

val effective_bandwidth : t -> bytes:float -> float
(** Bandwidth achieved by one fresh sequential read of [bytes] from offset
    0 on a reset copy of the device — used to calibrate roofline preload
    estimates without mutating [t]. *)

type stats = { total_bytes : float; busy_time : float; requests : int }

val stats : t -> stats
val reset : t -> unit
