(** Serialization of compiled schedules — the compiler's cacheable
    artifact.

    The paper's Elk compiles a model once (minutes of host time) and the
    resulting plan drives every serving step; a deployment therefore wants
    plans on disk.  This module serializes a {!Schedule.t} to a
    self-contained text document: the operator graph (via
    {!Elk_model.Gtext}) followed by the scheduling decisions — preload
    order, per-window preload counts, and per-operator partition factors
    and broadcast fraction.  Loading re-derives every computed quantity
    (tile shapes, spaces, times) from the partition context, so a plan
    file stays valid across cost-model retrains with the same chip, and
    the loaded schedule revalidates before use. *)

val export : Schedule.t -> string
(** Serialize a schedule (including its graph). *)

val import :
  Elk_partition.Partition.ctx -> string -> (Schedule.t, string) result
(** Parse, rebuild plans/options from the context, and validate. *)

val save : path:string -> Schedule.t -> unit
val load : Elk_partition.Partition.ctx -> path:string -> (Schedule.t, string) result
