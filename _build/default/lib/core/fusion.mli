(** Operator fusion (paper §8, "ML optimizations with operator fusion").

    The paper argues ICCA chips rarely need fusion (the distributed SRAM
    already buffers whole intermediate tensors) but that Elk "can still
    support fusion by treating each fused operator as one operator".  This
    pass implements exactly that: chains of pointwise operators are folded
    into their producer — the fused operator keeps the producer's
    iteration structure and HBM-resident inputs, accumulates the chain's
    FLOPs per point, and presents one operator to the scheduler.  Fusing
    shrinks the operator count (fewer BSP supersteps, fewer scheduling
    decisions) without changing any tensor traffic Elk accounts for.

    Fusable consumers are single-dependency pointwise operators
    ([silu], [gelu], [relu], [scale], [copy], [add]/[mul] of arity 1)
    whose element count matches the producer's output and on which no
    other operator depends. *)

val fusable_kinds : string list
(** Pointwise kinds a fusion candidate may have. *)

val fuse : Elk_model.Graph.t -> Elk_model.Graph.t
(** Fold pointwise chains into producers.  Node roles/layers come from
    the producer; fused names join with ["+"] (e.g. ["l0.ffn_gate+silu"]).
    Dependencies are rewired so consumers of a fused-away operator depend
    on the fused producer.  Returns the same graph physically when nothing
    fuses. *)

val fused_away : before:Elk_model.Graph.t -> after:Elk_model.Graph.t -> int
(** Convenience: how many operators fusion removed. *)
