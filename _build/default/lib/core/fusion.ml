open Elk_model
open Elk_tensor

let fusable_kinds = [ "silu"; "gelu"; "relu"; "scale"; "copy"; "add"; "mul" ]

(* v may fold into u when v is a single-input pointwise op over exactly
   u's output elements, u's only consumer is v, and v has no other
   dependencies. *)
let fusable consumers (u : Graph.node) (v : Graph.node) =
  List.mem v.Graph.op.Opspec.kind fusable_kinds
  && v.Graph.deps = [ u.Graph.id ]
  && List.length v.Graph.op.Opspec.inputs = 1
  && consumers.(u.Graph.id) = [ v.Graph.id ]
  && Float.abs
       (Opspec.points v.Graph.op -. Opspec.tensor_elems u.Graph.op u.Graph.op.Opspec.output)
     < 0.5

let fuse graph =
  let n = Graph.length graph in
  let consumers = Array.make n [] in
  Array.iter
    (fun (node : Graph.node) ->
      List.iter (fun d -> consumers.(d) <- node.Graph.id :: consumers.(d)) node.Graph.deps)
    (Graph.nodes graph);
  (* fused_into.(v) = Some u when v folds into u. *)
  let fused_into = Array.make n None in
  Array.iter
    (fun (v : Graph.node) ->
      match v.Graph.deps with
      | [ u ] ->
          let u_node = Graph.get graph u in
          if fusable consumers u_node v then fused_into.(v.Graph.id) <- Some u
      | _ -> ())
    (Graph.nodes graph);
  if Array.for_all (fun x -> x = None) fused_into then graph
  else begin
    let b = Graph.builder ~name:(Graph.name graph) in
    (* Map old ids to new ids; members of a chain map to the chain head's
       fused node. *)
    let remap = Array.make n (-1) in
    Array.iter
      (fun (head : Graph.node) ->
        if fused_into.(head.Graph.id) = None then begin
          (* Walk the chain of consumers folded into this head. *)
          let op = ref head.Graph.op in
          let members = ref [ head.Graph.id ] in
          let cursor = ref head.Graph.id in
          let continue = ref true in
          while !continue do
            match consumers.(!cursor) with
            | [ v ] when fused_into.(v) = Some !cursor ->
                let vop = (Graph.get graph v).Graph.op in
                let ratio =
                  Opspec.points vop /. Float.max 1. (Opspec.points !op)
                in
                op :=
                  {
                    !op with
                    Opspec.name = !op.Opspec.name ^ "+" ^ vop.Opspec.kind;
                    flops_per_point =
                      !op.Opspec.flops_per_point
                      +. (vop.Opspec.flops_per_point *. ratio);
                  };
                members := v :: !members;
                cursor := v
            | _ -> continue := false
          done;
          let deps = List.map (fun d -> remap.(d)) head.Graph.deps in
          let id =
            Graph.add b ?layer:head.Graph.layer ~deps ~role:head.Graph.role !op
          in
          List.iter (fun m -> remap.(m) <- id) !members
        end)
      (Graph.nodes graph);
    Graph.finish b
  end

let fused_away ~before ~after = Graph.length before - Graph.length after
