open Elk_tensor

let ceil_div a b = (a + b - 1) / b

let replicated_roles = [ "attn_norm"; "ffn_norm"; "final_norm"; "attn_residual"; "ffn_residual" ]

let shard_dim (op : Opspec.t) dim chips =
  let iter = Array.copy op.Opspec.iter in
  if iter.(dim) >= chips then iter.(dim) <- ceil_div iter.(dim) chips;
  { op with Opspec.iter }

let shard_op ~chips ~role (op : Opspec.t) =
  if chips <= 1 then op
  else if List.mem role replicated_roles then op
  else
    match op.Opspec.kind with
    | "matmul" -> shard_dim op 1 chips
    | "batch_matmul" -> shard_dim op 0 chips
    | "softmax" -> shard_dim op 0 chips
    | "rope" | "copy" -> shard_dim op 1 chips
    | "embedding" -> shard_dim op 1 chips
    | _ ->
        (* Pointwise ops on sharded tensors (FFN activation, gating) follow
           the column shard; ops tagged replicated were filtered above. *)
        if Array.length op.Opspec.iter >= 2 then shard_dim op 1 chips else op

let shard_graph ~chips graph =
  let open Elk_model in
  if chips <= 1 then graph
  else begin
    let b = Graph.builder ~name:(Graph.name graph ^ Printf.sprintf "@%dchips" chips) in
    Array.iter
      (fun (node : Graph.node) ->
        let op = shard_op ~chips ~role:node.Graph.role node.Graph.op in
        ignore
          (Graph.add b ?layer:node.Graph.layer ~deps:node.Graph.deps ~role:node.Graph.role op))
      (Graph.nodes graph);
    Graph.finish b
  end

let allreduce_roles = [ "o_proj"; "ffn_down"; "lm_head" ]

let allreduce_volume graph =
  let open Elk_model in
  Array.fold_left
    (fun acc (node : Graph.node) ->
      if List.mem node.Graph.role allreduce_roles then
        acc +. Opspec.output_bytes node.Graph.op
      else acc)
    0. (Graph.nodes graph)

let allreduce_time (pod : Elk_arch.Arch.pod) graph =
  if pod.Elk_arch.Arch.chips <= 1 then 0.
  else
    let v = allreduce_volume graph in
    let c = float_of_int pod.Elk_arch.Arch.chips in
    2. *. (c -. 1.) /. c *. v *. c /. pod.Elk_arch.Arch.interchip_bandwidth
