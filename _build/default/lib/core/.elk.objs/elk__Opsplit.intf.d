lib/core/opsplit.mli: Elk_model Elk_partition Elk_tensor
