lib/core/compile.ml: Array Elk_arch Elk_model Elk_util Format Fusion List Opsplit Program Reorder Schedule Scheduler Sharding Timeline Unix
