lib/core/reorder.mli: Elk_model Elk_partition
