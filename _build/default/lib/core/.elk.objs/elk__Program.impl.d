lib/core/program.ml: Array Format List Printf Schedule
