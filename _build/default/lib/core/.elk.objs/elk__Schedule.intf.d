lib/core/schedule.mli: Elk_model Elk_partition Elk_tensor
