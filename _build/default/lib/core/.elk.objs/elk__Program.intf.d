lib/core/program.mli: Format Schedule
