lib/core/schedule.ml: Array Elk_model Elk_partition Printf
