lib/core/codegen.mli: Elk_model Elk_partition Schedule
