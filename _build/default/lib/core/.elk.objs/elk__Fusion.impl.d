lib/core/fusion.ml: Array Elk_model Elk_tensor Float Graph List Opspec
