lib/core/timeline.mli: Elk_partition Format Schedule
