lib/core/codegen.ml: Array Buffer Elk_arch Elk_model Elk_partition Elk_tensor Filename List Opspec Printf Program Schedule String Sys
