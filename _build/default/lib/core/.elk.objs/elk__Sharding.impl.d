lib/core/sharding.ml: Array Elk_arch Elk_model Elk_tensor Graph List Opspec Printf
