lib/core/timeline.ml: Arch Array Elk_arch Elk_model Elk_partition Elk_util Float Format List Schedule
