lib/core/compile.mli: Elk_arch Elk_model Elk_partition Format Program Schedule Timeline
