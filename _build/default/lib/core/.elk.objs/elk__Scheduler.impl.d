lib/core/scheduler.ml: Alloc Array Elk_arch Elk_model Elk_partition Elk_tensor Elk_util Float Graph List Printf Schedule
