lib/core/scheduler.mli: Elk_model Elk_partition Schedule
