lib/core/alloc.mli: Elk_model Elk_partition
