lib/core/planio.mli: Elk_partition Schedule
