lib/core/reorder.ml: Alloc Array Elk_arch Elk_model Elk_partition Graph Hashtbl List
