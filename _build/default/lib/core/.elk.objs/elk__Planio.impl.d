lib/core/planio.ml: Array Buffer Elk_model Elk_partition List Printexc Printf Schedule String
