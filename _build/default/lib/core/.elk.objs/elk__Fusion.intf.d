lib/core/fusion.mli: Elk_model
