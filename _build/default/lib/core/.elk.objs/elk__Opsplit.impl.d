lib/core/opsplit.ml: Array Elk_model Elk_partition Elk_tensor Graph List Opspec Option Printf
