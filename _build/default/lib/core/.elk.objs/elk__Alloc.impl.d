lib/core/alloc.ml: Arch Array Elk_arch Elk_model Elk_partition Elk_util Float Graph List Pareto
