lib/core/sharding.mli: Elk_arch Elk_model Elk_tensor
