(** Model parallelism across the chips of a pod (paper §5: "we use model
    parallelism across the four chips, since it incurs little inter-chip
    communication overhead").

    Each operator is sharded Megatron-style along its weight/head
    dimension, producing the per-chip operator graph that Elk actually
    schedules; the small activation all-reduces at attention and FFN
    boundaries are charged against the inter-chip bandwidth. *)

val shard_op : chips:int -> role:string -> Elk_tensor.Opspec.t -> Elk_tensor.Opspec.t
(** Shard one operator: matmuls along the output-feature dimension,
    batched matmuls along the (batch x head) dimension, softmax rows, rope
    and KV-append columns; norms and residual adds are replicated (their
    operand is the full hidden vector on every chip).  [chips = 1] is the
    identity. *)

val shard_graph : chips:int -> Elk_model.Graph.t -> Elk_model.Graph.t
(** Apply {!shard_op} to every node, preserving structure and metadata. *)

val allreduce_volume : Elk_model.Graph.t -> float
(** Total bytes all-reduced across chips per forward pass: the outputs of
    every [o_proj] / [ffn_down] / [fc2] / [lm_head]-role node of the
    {e unsharded} graph. *)

val allreduce_time : Elk_arch.Arch.pod -> Elk_model.Graph.t -> float
(** Ring-all-reduce time for {!allreduce_volume} over the pod's inter-chip
    bandwidth: [2 (c-1) V / B].  Zero for a single-chip pod. *)
