(** Operator splitting for operators too large for any partition plan.

    An operator whose minimal per-core footprint exceeds the scratchpad
    (e.g. a 256k-vocabulary LM head) cannot be scheduled as one unit;
    standard compilers split such operators along an iteration dimension
    into sequential chunks.  This pass rewrites the graph so that every
    operator admits at least one partition plan, leaving already-feasible
    operators untouched. *)

val split_op :
  Elk_partition.Partition.ctx -> Elk_tensor.Opspec.t -> Elk_tensor.Opspec.t list
(** [split_op ctx op] returns [op] unchanged (singleton) when it has a
    feasible plan, otherwise a list of chunk operators covering it —
    split along the dimension that most reduces the footprint, doubling
    the chunk count until feasible.  Raises
    [Invalid_argument] if no split up to 64 chunks helps (the operator is
    fundamentally too large for the chip). *)

val split_graph :
  Elk_partition.Partition.ctx -> Elk_model.Graph.t -> Elk_model.Graph.t
(** Apply {!split_op} to every node, rebuilding the graph with chunk
    operators inserted as consecutive nodes (chained on the original
    dependencies; successors depend on the last chunk).  Returns the
    original graph physically unchanged when nothing was split. *)
