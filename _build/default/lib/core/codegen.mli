(** Code generation: lower a compiled plan to per-core kernel source
    (paper §4.5 and §5, "code generation").

    The paper's code generator emits vendor-library kernel calls for each
    tile plus inter-core transfer operations, and the host program of
    [preload_async]/[execute] calls.  Without a vendor toolchain we emit
    the same structure as portable C-like source: one {e host program}
    driving the §4.5 calls, and per-operator {e device kernels} containing
    the data-distribution copy list, the tile loop nest and the
    exchange/reduction step.  The output is deterministic and
    self-describing — the test suite checks its structural properties, and
    it documents exactly what the simulator executes. *)

type t = {
  host : string;  (** the host program: preload_async/execute sequence. *)
  kernels : (int * string) list;  (** per-operator kernel source, by op id. *)
}

val kernel_of :
  Elk_partition.Partition.ctx -> Elk_model.Graph.node ->
  Elk_partition.Partition.plan -> Elk_partition.Partition.preload_opt -> string
(** Source of one operator's kernel: [distribute_data] copy list (one
    entry per sharing-group peer when the preload state is partial), the
    [local_execute] loop nest over the tile's iteration dimensions (with
    the round loop when the operator runs multiple rounds), and the
    exchange/reduce epilogue. *)

val generate : Elk_partition.Partition.ctx -> Schedule.t -> t
(** Lower a complete schedule. *)

val host_line_count : t -> int
val total_loc : t -> int
(** Size metrics used in reports (the paper quotes its codegen in LoC). *)

val write_to : dir:string -> t -> unit
(** Write [host.c] and [op<id>_<name>.c] files under [dir] (created if
    missing). *)
