open Elk_tensor
module P = Elk_partition.Partition

let feasible ctx op = P.exec_frontier ctx op <> []

let with_extent (op : Opspec.t) dim extent =
  let iter = Array.copy op.Opspec.iter in
  iter.(dim) <- extent;
  { op with Opspec.iter }

let split_op ctx (op : Opspec.t) =
  if feasible ctx op then [ op ]
  else begin
    (* Candidate split dimensions, largest extent first. *)
    let dims =
      List.init (Array.length op.Opspec.iter) (fun i -> i)
      |> List.sort (fun a b -> compare op.Opspec.iter.(b) op.Opspec.iter.(a))
    in
    let try_dim dim =
      let extent = op.Opspec.iter.(dim) in
      let rec grow parts =
        if parts > 64 || parts > extent then None
        else
          let chunk = (extent + parts - 1) / parts in
          if feasible ctx (with_extent op dim chunk) then Some (dim, parts, chunk)
          else grow (parts * 2)
      in
      grow 2
    in
    let rec first = function
      | [] ->
          invalid_arg
            (Printf.sprintf "Opsplit: operator %s does not fit even when split"
               op.Opspec.name)
      | d :: rest -> ( match try_dim d with Some r -> Some r | None -> first rest)
    in
    match first dims with
    | None -> [ op ]
    | Some (dim, parts, chunk) ->
        let extent = op.Opspec.iter.(dim) in
        List.init parts (fun i ->
            let lo = i * chunk in
            let len = min chunk (extent - lo) in
            if len <= 0 then None
            else
              Some
                {
                  (with_extent op dim len) with
                  Opspec.name = Printf.sprintf "%s.chunk%d" op.Opspec.name i;
                })
        |> List.filter_map (fun x -> x)
  end

let split_graph ctx graph =
  let open Elk_model in
  let needs_split =
    Array.exists (fun (n : Graph.node) -> not (feasible ctx n.Graph.op)) (Graph.nodes graph)
  in
  if not needs_split then graph
  else begin
    let b = Graph.builder ~name:(Graph.name graph) in
    (* Map from original node id to the id of its last chunk, for
       dependency rewriting. *)
    let last_chunk = Array.make (Graph.length graph) (-1) in
    Array.iter
      (fun (node : Graph.node) ->
        let chunks = split_op ctx node.Graph.op in
        let orig_deps = List.map (fun d -> last_chunk.(d)) node.Graph.deps in
        (* Chunks run sequentially: the first carries the original
           dependencies, later ones chain on their predecessor. *)
        let prev = ref None in
        List.iter
          (fun op ->
            let deps = match !prev with None -> orig_deps | Some p -> [ p ] in
            let id = Graph.add b ?layer:node.Graph.layer ~deps ~role:node.Graph.role op in
            prev := Some id)
          chunks;
        last_chunk.(node.Graph.id) <- Option.get !prev)
      (Graph.nodes graph);
    Graph.finish b
  end
