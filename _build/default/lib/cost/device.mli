(** Synthetic per-core device: the ground truth that stands in for running
    tiles on real IPU cores.

    The paper profiles randomly shaped tiles on the target device and fits
    a cost model to the measurements (§4.3, "Cost model for execution
    time").  Without hardware we substitute an analytic microarchitectural
    model — pipeline-utilization-derated peak FLOP/s bounded by local SRAM
    bandwidth, plus a fixed kernel overhead — and expose two views of it:

    - {!exec_time}: the deterministic model (what the "hardware" truly
      does in our universe);
    - {!measured_exec_time}: the same with shape-keyed pseudo-measurement
      noise (what profiling would observe).

    Elk's compiler never reads these directly; it uses the learned
    {!Costmodel} fit on noisy measurements, so prediction error propagates
    into scheduling decisions exactly as on real hardware (Fig 12). *)

val tile_bytes : kind:string -> iter:int array -> float
(** Per-core SRAM bytes touched by a tile of the given kind: inputs plus
    outputs at fp16.  Used both here and for execution-space sizing. *)

val tile_flops : kind:string -> iter:int array -> float
(** FLOPs of one tile. *)

val is_matmul_kind : string -> bool
(** Kinds executed on the matmul pipeline (["matmul"],
    ["batch_matmul"]); everything else uses the vector pipeline. *)

val exec_time : Elk_arch.Arch.chip -> kind:string -> iter:int array -> float
(** Deterministic per-core execution time of one tile: fixed launch
    overhead + max(compute time at derated peak, SRAM-bandwidth time).
    Small tiles are penalized by pipeline fill; badly aligned matmul tiles
    by a vector-width factor.  Raises [Invalid_argument] on an empty or
    nonpositive iteration vector. *)

val measured_exec_time :
  ?noise:float -> Elk_arch.Arch.chip -> kind:string -> iter:int array -> float
(** {!exec_time} scaled by deterministic shape-keyed noise, uniform in
    [1-noise, 1+noise] ([noise] defaults to 0.06). *)

val measured_transfer_time :
  ?noise:float -> Elk_noc.Noc.t -> src:Elk_noc.Noc.node -> dst:Elk_noc.Noc.node ->
  bytes:float -> float
(** Uncontended transfer time with the same kind of measurement noise. *)
