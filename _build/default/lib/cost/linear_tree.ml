open Elk_util

type node = Leaf of float array | Split of { feat : int; thresh : float; lo : node; hi : node }
type t = { dim : int; root : node }

let leaf_model samples dim =
  (* OLS needs enough rows to be meaningful; small leaves use the mean,
     encoded as a zero-coefficient model with only an intercept. *)
  if List.length samples <= dim + 2 then begin
    let m = Stats.mean (List.map snd samples) in
    let coeffs = Array.make (dim + 1) 0. in
    coeffs.(dim) <- m;
    coeffs
  end
  else Stats.ols samples

let sse_of_mean samples =
  let ys = List.map snd samples in
  let m = Stats.mean ys in
  List.fold_left (fun a y -> a +. ((y -. m) ** 2.)) 0. ys

let candidate_thresholds values =
  let sorted = List.sort_uniq compare values in
  let n = List.length sorted in
  if n < 2 then []
  else
    List.filteri (fun i _ -> i > 0 && i mod (max 1 (n / 8)) = 0) sorted

let best_split samples dim min_leaf =
  let base = sse_of_mean samples in
  let best = ref None in
  for feat = 0 to dim - 1 do
    let values = List.map (fun (f, _) -> f.(feat)) samples in
    List.iter
      (fun thresh ->
        let lo, hi = List.partition (fun (f, _) -> f.(feat) < thresh) samples in
        if List.length lo >= min_leaf && List.length hi >= min_leaf then begin
          let score = base -. (sse_of_mean lo +. sse_of_mean hi) in
          match !best with
          | Some (s, _, _, _, _) when s >= score -> ()
          | _ -> best := Some (score, feat, thresh, lo, hi)
        end)
      (candidate_thresholds values)
  done;
  match !best with
  | Some (score, feat, thresh, lo, hi) when score > base *. 1e-4 -> Some (feat, thresh, lo, hi)
  | _ -> None

let rec grow samples dim ~depth ~max_depth ~min_leaf =
  if depth >= max_depth || List.length samples < 2 * min_leaf then
    Leaf (leaf_model samples dim)
  else
    match best_split samples dim min_leaf with
    | None -> Leaf (leaf_model samples dim)
    | Some (feat, thresh, lo, hi) ->
        Split
          {
            feat;
            thresh;
            lo = grow lo dim ~depth:(depth + 1) ~max_depth ~min_leaf;
            hi = grow hi dim ~depth:(depth + 1) ~max_depth ~min_leaf;
          }

let fit ?(max_depth = 7) ?(min_leaf = 16) samples =
  (match samples with [] -> invalid_arg "Linear_tree.fit: no samples" | _ -> ());
  let dim = Array.length (fst (List.hd samples)) in
  List.iter
    (fun (f, _) ->
      if Array.length f <> dim then
        invalid_arg "Linear_tree.fit: inconsistent feature dimensions")
    samples;
  { dim; root = grow samples dim ~depth:0 ~max_depth ~min_leaf }

let predict t features =
  if Array.length features <> t.dim then
    invalid_arg "Linear_tree.predict: wrong feature dimension";
  let rec go = function
    | Leaf coeffs -> Stats.predict coeffs features
    | Split { feat; thresh; lo; hi } ->
        if features.(feat) < thresh then go lo else go hi
  in
  go t.root

let depth t =
  let rec go = function
    | Leaf _ -> 0
    | Split { lo; hi; _ } -> 1 + max (go lo) (go hi)
  in
  go t.root

let leaves t =
  let rec go = function Leaf _ -> 1 | Split { lo; hi; _ } -> go lo + go hi in
  go t.root

let mape_on t samples =
  Stats.mape (List.map (fun (f, y) -> (y, predict t f)) samples)
