(** Regression trees with linear-model leaves.

    The paper's execution cost model is a "linear tree" [10]: a decision
    tree over tile-shape features whose leaves are ordinary least-squares
    models.  This is a from-scratch implementation of that estimator:
    greedy variance-reduction splits on feature thresholds, OLS leaves
    (falling back to the leaf mean when a leaf is too small to fit). *)

type t

val fit : ?max_depth:int -> ?min_leaf:int -> (float array * float) list -> t
(** [fit samples] trains a tree on [(features, target)] pairs.
    [max_depth] defaults to 7, [min_leaf] (minimum samples per leaf) to 16.
    Raises [Invalid_argument] on an empty sample list or inconsistent
    feature dimensionality. *)

val predict : t -> float array -> float
(** Evaluate the tree.  Raises [Invalid_argument] on a feature vector of
    the wrong dimension. *)

val depth : t -> int
(** Depth of the fitted tree (a single leaf has depth 0). *)

val leaves : t -> int
(** Number of leaves. *)

val mape_on : t -> (float array * float) list -> float
(** Mean absolute percentage error of the tree on a sample set. *)
