open Elk_arch

let elem_bytes = 2.

let check_iter iter fn =
  if Array.length iter = 0 then invalid_arg ("Device." ^ fn ^ ": empty iteration vector");
  if Array.exists (fun d -> d <= 0) iter then
    invalid_arg ("Device." ^ fn ^ ": nonpositive extent")

let points iter = Array.fold_left (fun a d -> a *. float_of_int d) 1. iter

let is_matmul_kind k = k = "matmul" || k = "batch_matmul"

let tile_bytes ~kind ~iter =
  check_iter iter "tile_bytes";
  let f i = float_of_int iter.(i) in
  match kind with
  | "matmul" when Array.length iter >= 3 ->
      ((f 0 *. f 2) +. (f 2 *. f 1) +. (f 0 *. f 1)) *. elem_bytes
  | "batch_matmul" when Array.length iter >= 4 ->
      f 0 *. ((f 1 *. f 3) +. (f 3 *. f 2) +. (f 1 *. f 2)) *. elem_bytes
  | _ ->
      (* Pointwise / row-wise kinds: one input stream and one output. *)
      2. *. points iter *. elem_bytes

let flops_per_point = function
  | "matmul" | "batch_matmul" -> 2.
  | "softmax" -> 5.
  | "rmsnorm" | "layernorm" -> 4.
  | "rope" -> 6.
  | "gelu" | "silu" -> 4.
  | "copy" | "scale" | "relu" -> 1.
  | "embedding" -> 1.
  | _ -> 2.

let tile_flops ~kind ~iter =
  check_iter iter "tile_flops";
  points iter *. flops_per_point kind

(* Pipeline-fill derating: a tile with few iteration points cannot keep the
   systolic/vector pipelines busy.  The knee constants are chosen so that
   624 KB-scale matmul tiles reach ~95% of peak while KB-scale tiles fall
   well below — matching the qualitative Fig 5 curves. *)
let matmul_fill_knee = 65536.
let vector_fill_knee = 2048.
let launch_overhead = 6e-7

let alignment_factor ~kind ~iter =
  if is_matmul_kind kind then
    let last = iter.(Array.length iter - 1) in
    let n = iter.(min 1 (Array.length iter - 1)) in
    let bad d = d mod 16 <> 0 in
    if bad last && bad n then 0.78 else if bad last || bad n then 0.88 else 1.
  else 1.

let exec_time chip ~kind ~iter =
  check_iter iter "exec_time";
  let fl = tile_flops ~kind ~iter in
  let p = points iter in
  let matmul = is_matmul_kind kind in
  let peak =
    if matmul then chip.Arch.matmul_flops_per_core else chip.Arch.vector_flops_per_core
  in
  let knee = if matmul then matmul_fill_knee else vector_fill_knee in
  let fill = p /. (p +. knee) in
  let rate = peak *. fill *. alignment_factor ~kind ~iter in
  let compute = fl /. rate in
  let memory = tile_bytes ~kind ~iter /. chip.Arch.sram_bw_per_core in
  launch_overhead +. Float.max compute memory

(* Deterministic "measurement" noise: a hash of the shape mapped into
   [1 - noise, 1 + noise].  Stable across runs, uncorrelated across
   shapes. *)
let shape_noise ~noise key =
  let h = Hashtbl.hash key in
  let u = float_of_int (h land 0xFFFF) /. 65535. in
  1. -. noise +. (2. *. noise *. u)

let measured_exec_time ?(noise = 0.06) chip ~kind ~iter =
  exec_time chip ~kind ~iter *. shape_noise ~noise (kind, Array.to_list iter)

let measured_transfer_time ?(noise = 0.06) noc ~src ~dst ~bytes =
  Elk_noc.Noc.transfer_time noc ~src ~dst ~bytes
  *. shape_noise ~noise (src, dst, int_of_float bytes)
