lib/cost/linear_tree.mli:
