lib/cost/linear_tree.ml: Array Elk_util List Stats
