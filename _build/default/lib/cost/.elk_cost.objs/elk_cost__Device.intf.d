lib/cost/device.mli: Elk_arch Elk_noc
