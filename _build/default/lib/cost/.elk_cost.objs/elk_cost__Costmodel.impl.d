lib/cost/costmodel.ml: Arch Array Device Elk_arch Elk_hbm Elk_noc Elk_tensor Elk_util Float Hashtbl Linear_tree List Opspec Xrng
