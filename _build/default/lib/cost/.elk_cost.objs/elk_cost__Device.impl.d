lib/cost/device.ml: Arch Array Elk_arch Elk_noc Float Hashtbl
