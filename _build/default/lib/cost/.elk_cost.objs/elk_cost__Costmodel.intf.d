lib/cost/costmodel.mli: Elk_arch Elk_tensor Elk_util
