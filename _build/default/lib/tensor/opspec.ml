type source = Weights | Kv_cache | Activation

type tensor = { t_name : string; dims : int list; source : source }

type t = {
  name : string;
  kind : string;
  iter : int array;
  inputs : tensor list;
  output : tensor;
  flops_per_point : float;
  dtype : Dtype.t;
}

let validate t =
  let ndims = Array.length t.iter in
  let check_tensor tensor =
    let rec sorted_unique = function
      | a :: (b :: _ as rest) -> a < b && sorted_unique rest
      | [ _ ] | [] -> true
    in
    if not (sorted_unique tensor.dims) then
      Error (Printf.sprintf "%s/%s: dims not strictly ascending" t.name tensor.t_name)
    else if List.exists (fun d -> d < 0 || d >= ndims) tensor.dims then
      Error (Printf.sprintf "%s/%s: dim out of range" t.name tensor.t_name)
    else Ok ()
  in
  let rec first_error = function
    | [] -> Ok ()
    | x :: rest -> ( match check_tensor x with Ok () -> first_error rest | e -> e)
  in
  if ndims = 0 then Error (t.name ^ ": empty iteration space")
  else if Array.exists (fun e -> e < 1) t.iter then
    Error (t.name ^ ": nonpositive extent")
  else if t.flops_per_point < 0. then Error (t.name ^ ": negative flops_per_point")
  else first_error (t.output :: t.inputs)

let points t = Array.fold_left (fun a e -> a *. float_of_int e) 1. t.iter
let flops t = points t *. t.flops_per_point

let tensor_elems t tensor =
  List.fold_left (fun a d -> a *. float_of_int t.iter.(d)) 1. tensor.dims

let tensor_bytes t tensor =
  tensor_elems t tensor *. float_of_int (Dtype.size_bytes t.dtype)

let sum_inputs t pred =
  List.fold_left
    (fun a tensor -> if pred tensor.source then a +. tensor_bytes t tensor else a)
    0. t.inputs

let hbm_bytes t = sum_inputs t (function Weights | Kv_cache -> true | Activation -> false)
let activation_in_bytes t = sum_inputs t (function Activation -> true | _ -> false)
let output_bytes t = tensor_bytes t t.output
let footprint_bytes t = sum_inputs t (fun _ -> true) +. output_bytes t

let arithmetic_intensity t =
  let h = hbm_bytes t in
  if h = 0. then infinity else flops t /. h

let is_hbm_heavy t ~threshold = hbm_bytes t >= threshold

let matmul ?(dtype = Dtype.Fp16) ?(weight_source = Weights) ~name ~m ~n ~k () =
  {
    name;
    kind = "matmul";
    iter = [| m; n; k |];
    inputs =
      [
        { t_name = "act"; dims = [ 0; 2 ]; source = Activation };
        { t_name = "weight"; dims = [ 1; 2 ]; source = weight_source };
      ];
    output = { t_name = "out"; dims = [ 0; 1 ]; source = Activation };
    flops_per_point = 2.;
    dtype;
  }

let batch_matmul ?(dtype = Dtype.Fp16) ?(rhs_source = Kv_cache) ~name ~batch ~m ~n ~k () =
  {
    name;
    kind = "batch_matmul";
    iter = [| batch; m; n; k |];
    inputs =
      [
        { t_name = "lhs"; dims = [ 0; 1; 3 ]; source = Activation };
        { t_name = "rhs"; dims = [ 0; 2; 3 ]; source = rhs_source };
      ];
    output = { t_name = "out"; dims = [ 0; 1; 2 ]; source = Activation };
    flops_per_point = 2.;
    dtype;
  }

let softmax ?(dtype = Dtype.Fp16) ~name ~rows ~cols () =
  {
    name;
    kind = "softmax";
    iter = [| rows; cols |];
    inputs = [ { t_name = "in"; dims = [ 0; 1 ]; source = Activation } ];
    output = { t_name = "out"; dims = [ 0; 1 ]; source = Activation };
    flops_per_point = 5.;
    dtype;
  }

let norm ?(dtype = Dtype.Fp16) ?(kind = "rmsnorm") ~name ~rows ~cols () =
  {
    name;
    kind;
    iter = [| rows; cols |];
    inputs =
      [
        { t_name = "in"; dims = [ 0; 1 ]; source = Activation };
        { t_name = "scale"; dims = [ 1 ]; source = Weights };
      ];
    output = { t_name = "out"; dims = [ 0; 1 ]; source = Activation };
    flops_per_point = 4.;
    dtype;
  }

let rope ?(dtype = Dtype.Fp16) ~name ~rows ~cols () =
  {
    name;
    kind = "rope";
    iter = [| rows; cols |];
    inputs =
      [
        { t_name = "in"; dims = [ 0; 1 ]; source = Activation };
        { t_name = "freqs"; dims = [ 1 ]; source = Weights };
      ];
    output = { t_name = "out"; dims = [ 0; 1 ]; source = Activation };
    flops_per_point = 6.;
    dtype;
  }

let elementwise ?(dtype = Dtype.Fp16) ?(arity = 1) ?(flops_per_point = 2.) ~name ~kind
    ~shape () =
  let iter = Array.of_list shape in
  let all_dims = List.init (Array.length iter) (fun i -> i) in
  let input i = { t_name = Printf.sprintf "in%d" i; dims = all_dims; source = Activation } in
  {
    name;
    kind;
    iter;
    inputs = List.init (max 1 arity) input;
    output = { t_name = "out"; dims = all_dims; source = Activation };
    flops_per_point;
    dtype;
  }

let embedding ?(dtype = Dtype.Fp16) ~name ~rows ~vocab ~hidden () =
  (* Only the gathered rows transit HBM; [vocab] merely documents the table
     the slice is drawn from. *)
  ignore vocab;
  {
    name;
    kind = "embedding";
    iter = [| rows; hidden |];
    inputs =
      [
        { t_name = "table_slice"; dims = [ 0; 1 ]; source = Weights };
      ];
    output = { t_name = "out"; dims = [ 0; 1 ]; source = Activation };
    flops_per_point = 1.;
    dtype;
  }

let conv_patchify ?(dtype = Dtype.Fp16) ~name ~tokens ~in_dim ~out_dim () =
  {
    (matmul ~dtype ~name ~m:tokens ~n:out_dim ~k:in_dim ())
    with kind = "matmul";
  }

let pp fmt t =
  Format.fprintf fmt "%s[%s](%s) flops=%.3g hbm=%a" t.name t.kind
    (String.concat "x" (Array.to_list t.iter |> List.map string_of_int))
    (flops t) Elk_util.Units.pp_bytes (hbm_bytes t)
