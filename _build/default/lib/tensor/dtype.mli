(** Element datatypes of tensors.

    The models in the paper's evaluation run in half precision; we keep the
    datatype explicit so memory footprints and HBM volumes are computed
    rather than assumed. *)

type t = Fp32 | Fp16 | Bf16 | Int8 | Int32

val size_bytes : t -> int
(** Bytes per element. *)

val to_string : t -> string
(** Lower-case name, e.g. ["fp16"]. *)

val of_string : string -> t option
(** Inverse of {!to_string}. *)

val pp : Format.formatter -> t -> unit
(** Formatter for {!to_string}. *)

val all : t list
(** Every datatype, for exhaustive property tests. *)
