(** Tensor-operator specifications over an explicit iteration space.

    Every operator Elk schedules is described the same way a polyhedral or
    einsum-style compiler would see it: an {e iteration space} (a vector of
    dimension extents) plus, for each input/output tensor, the subset of
    iteration dimensions that index it.  This is exactly the information
    partition-plan enumeration (paper §4.3, §5) needs:

    - partitioning an iteration dimension that indexes a tensor {e slices}
      that tensor across cores;
    - partitioning a dimension that does {e not} index a tensor {e shares}
      (replicates) that tensor across the cores of that dimension — the
      data that must either be broadcast at preload time or fetched from
      peer cores at execution time (paper Fig 3);
    - partitioning a dimension not indexing the {e output} means partial
      results that must be reduced across cores.

    Example: a decode-phase [MatMul] with iteration space [m, n, k] has the
    activation indexed by (m, k), the weight by (k, n) and the output by
    (m, n); slicing along [n] shares the activation, slicing along [m]
    shares the weight, slicing along [k] requires a reduction. *)

(** Where a tensor's bytes live before the operator runs.  [Weights] and
    [Kv_cache] are HBM-resident and must be preloaded; [Activation] is
    produced on-chip by an earlier operator. *)
type source = Weights | Kv_cache | Activation

type tensor = {
  t_name : string;  (** role name, e.g. ["W"] or ["lhs"]. *)
  dims : int list;  (** iteration dimensions indexing this tensor, ascending. *)
  source : source;
}

type t = {
  name : string;  (** human-readable operator name, e.g. ["attn_qkv"]. *)
  kind : string;  (** kind label used by the cost model, e.g. ["matmul"]. *)
  iter : int array;  (** extent of each iteration dimension, all >= 1. *)
  inputs : tensor list;
  output : tensor;
  flops_per_point : float;  (** FLOPs per iteration-space point. *)
  dtype : Dtype.t;
}

val validate : t -> (unit, string) result
(** Check structural invariants: positive extents, tensor dims sorted,
    within range and duplicate-free, output dims non-empty unless the
    iteration space is a full reduction. *)

val points : t -> float
(** Product of iteration extents. *)

val flops : t -> float
(** Total floating-point operations: [points * flops_per_point]. *)

val tensor_elems : t -> tensor -> float
(** Number of elements of a tensor: product of its dims' extents (1.0 for
    a scalar with no dims). *)

val tensor_bytes : t -> tensor -> float
(** [tensor_elems] scaled by the operator's element size. *)

val hbm_bytes : t -> float
(** Bytes of HBM-resident inputs ([Weights] and [Kv_cache]) — the volume
    this operator preloads from off-chip memory. *)

val activation_in_bytes : t -> float
(** Bytes of on-chip inputs (produced by predecessors). *)

val output_bytes : t -> float
(** Bytes of the output tensor. *)

val footprint_bytes : t -> float
(** Total bytes touched: all inputs plus output. *)

val arithmetic_intensity : t -> float
(** FLOPs per HBM byte; [infinity] for operators that load nothing. *)

val is_hbm_heavy : t -> threshold:float -> bool
(** True when {!hbm_bytes} is at least [threshold] — the predicate the
    preload-order search (paper §4.4) uses to decide which operators are
    worth reordering. *)

(** {1 Constructors}

    Each constructor builds a well-formed spec for one operator family.
    All take [?dtype] defaulting to [Fp16]. *)

val matmul :
  ?dtype:Dtype.t -> ?weight_source:source -> name:string -> m:int -> n:int -> k:int -> unit -> t
(** Activation [m,k] times resident weight [k,n]. *)

val batch_matmul :
  ?dtype:Dtype.t -> ?rhs_source:source -> name:string -> batch:int -> m:int -> n:int -> k:int ->
  unit -> t
(** Batched [m,k] x [k,n]; the right-hand side defaults to [Kv_cache]
    (attention score/value matmuls in decode read the cache). *)

val softmax : ?dtype:Dtype.t -> name:string -> rows:int -> cols:int -> unit -> t
(** Row-wise softmax; no HBM-resident inputs. *)

val norm :
  ?dtype:Dtype.t -> ?kind:string -> name:string -> rows:int -> cols:int -> unit -> t
(** RMSNorm/LayerNorm: per-row normalization with a [cols]-sized resident
    scale vector ([kind] defaults to ["rmsnorm"]). *)

val rope : ?dtype:Dtype.t -> name:string -> rows:int -> cols:int -> unit -> t
(** Rotary position embedding over [rows x cols] activations with a
    [cols]-sized resident frequency table. *)

val elementwise :
  ?dtype:Dtype.t -> ?arity:int -> ?flops_per_point:float -> name:string -> kind:string ->
  shape:int list -> unit -> t
(** Pointwise operator ([add], [mul], [silu], [gelu]...) of [arity] on-chip
    inputs over [shape]. *)

val embedding :
  ?dtype:Dtype.t -> name:string -> rows:int -> vocab:int -> hidden:int -> unit -> t
(** Embedding-table gather: [rows] lookups into a resident [vocab x hidden]
    table.  Modeled with the gathered slice ([rows x hidden]) as the
    HBM-loaded volume: only touched rows transit HBM. *)

val conv_patchify :
  ?dtype:Dtype.t -> name:string -> tokens:int -> in_dim:int -> out_dim:int -> unit -> t
(** Patch-embedding convolution (DiT) expressed as a token matmul. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: name, kind, iteration space, FLOPs, HBM bytes. *)
