type t = Fp32 | Fp16 | Bf16 | Int8 | Int32

let size_bytes = function Fp32 -> 4 | Fp16 -> 2 | Bf16 -> 2 | Int8 -> 1 | Int32 -> 4

let to_string = function
  | Fp32 -> "fp32"
  | Fp16 -> "fp16"
  | Bf16 -> "bf16"
  | Int8 -> "int8"
  | Int32 -> "int32"

let of_string = function
  | "fp32" -> Some Fp32
  | "fp16" -> Some Fp16
  | "bf16" -> Some Bf16
  | "int8" -> Some Int8
  | "int32" -> Some Int32
  | _ -> None

let pp fmt t = Format.pp_print_string fmt (to_string t)
let all = [ Fp32; Fp16; Bf16; Int8; Int32 ]
