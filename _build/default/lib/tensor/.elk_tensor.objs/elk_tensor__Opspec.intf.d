lib/tensor/opspec.mli: Dtype Format
