lib/tensor/opspec.ml: Array Dtype Elk_util Format List Printf String
