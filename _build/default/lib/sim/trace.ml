let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let us t = t *. 1e6

(* One complete event ("ph":"X"): name, track (tid), start, duration. *)
let event ~name ~tid ~start ~dur ~args =
  let args_s =
    match args with
    | [] -> "{}"
    | kvs ->
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" k v) kvs)
        ^ "}"
  in
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"elk\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":%s}"
    (json_escape name) tid (us start) (us dur) args_s

let phases (o : Sim.op_trace) =
  [
    ("distribute", o.Sim.exe_start, o.Sim.dist_end -. o.Sim.exe_start);
    ("compute", o.Sim.dist_end, o.Sim.compute_end -. o.Sim.dist_end);
    ("exchange", o.Sim.compute_end, o.Sim.exe_end -. o.Sim.compute_end);
  ]
  |> List.filter (fun (_, _, d) -> d > 0.)

let events graph (r : Sim.result) =
  let name i =
    (Elk_model.Graph.get graph i).Elk_model.Graph.op.Elk_tensor.Opspec.name
  in
  let acc = ref [] in
  Array.iteri
    (fun i (o : Sim.op_trace) ->
      if o.Sim.pre_end > o.Sim.pre_start then
        acc :=
          event
            ~name:(Printf.sprintf "preload %s" (name i))
            ~tid:1 ~start:o.Sim.pre_start
            ~dur:(o.Sim.pre_end -. o.Sim.pre_start)
            ~args:[ ("hbm_bytes", Printf.sprintf "%.0f" o.Sim.device_bytes) ]
          :: !acc;
      List.iter
        (fun (phase, start, dur) ->
          acc :=
            event
              ~name:(Printf.sprintf "%s %s" phase (name i))
              ~tid:2 ~start ~dur ~args:[]
            :: !acc)
        (phases o))
    r.Sim.per_op;
  List.rev !acc

let to_chrome_json graph r =
  let meta =
    [
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"HBM preload\"}}";
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,\"args\":{\"name\":\"on-chip execute\"}}";
    ]
  in
  "{\"traceEvents\":[\n"
  ^ String.concat ",\n" (meta @ events graph r)
  ^ "\n]}\n"

let write_chrome_json ~path graph r =
  let oc = open_out path in
  output_string oc (to_chrome_json graph r);
  close_out oc

let event_count (r : Sim.result) =
  Array.fold_left
    (fun a (o : Sim.op_trace) ->
      a + (if o.Sim.pre_end > o.Sim.pre_start then 1 else 0) + List.length (phases o))
    0 r.Sim.per_op
