lib/sim/trace.ml: Array Buffer Elk_model Elk_tensor List Printf Sim String
