lib/sim/sim.mli: Elk Elk_partition
