lib/sim/trace.mli: Elk_model Sim
