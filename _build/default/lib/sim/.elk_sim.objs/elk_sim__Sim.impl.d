lib/sim/sim.ml: Arch Array Elk Elk_arch Elk_cost Elk_hbm Elk_model Elk_noc Elk_partition Elk_tensor Float Hashtbl List
