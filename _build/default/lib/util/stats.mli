(** Small statistics toolbox: summary statistics, error metrics for the
    cost-model accuracy experiment (paper Fig 12), and ordinary
    least-squares fitting used by the linear-tree cost model leaves. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val stdev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val percentile : float -> float list -> float
(** [percentile p xs] is the [p]-th percentile (0..100) using linear
    interpolation between closest ranks.  Raises [Invalid_argument] on the
    empty list or if [p] is outside [0,100]. *)

val geomean : float list -> float
(** Geometric mean of strictly positive values; 0 on the empty list. *)

val mape : (float * float) list -> float
(** Mean absolute percentage error of [(measured, predicted)] pairs,
    as a fraction (0.07 = 7%).  Pairs with measured = 0 are skipped. *)

val r2 : (float * float) list -> float
(** Coefficient of determination of [(measured, predicted)] pairs. *)

val ols : (float array * float) list -> float array
(** [ols samples] fits ordinary least squares [y ~ w . x + b] where each
    sample is a feature vector and a target.  Returns the coefficient
    array of length [dim + 1], the last entry being the intercept.
    Uses normal equations with Gaussian elimination and Tikhonov damping
    for singular systems.  Raises [Invalid_argument] on an empty sample
    list or inconsistent feature dimensions. *)

val predict : float array -> float array -> float
(** [predict coeffs features] applies a coefficient vector from {!ols}. *)
