(** Deterministic splittable pseudo-random numbers (SplitMix64).

    Every stochastic component in this repository — the synthetic cost-model
    profiler, workload generators, property tests' auxiliary data — draws
    from an explicit [Xrng.t] so that experiments are reproducible run to
    run and independent of evaluation order.  The generator is the standard
    SplitMix64 mixer. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  Raises [Invalid_argument] if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val gaussian : t -> float
(** Standard normal deviate (Box-Muller). *)

val pick : t -> 'a list -> 'a
(** Uniformly pick one element.  Raises [Invalid_argument] on []. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher-Yates shuffle. *)
