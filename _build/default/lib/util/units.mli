(** Unit helpers and conversions used across the Elk code base.

    All internal quantities use SI base units: bytes for capacity, seconds
    for time, bytes-per-second for bandwidth and FLOP/s for compute rate.
    The helpers here only exist to make constants readable and output
    printable. *)

val kib : float -> float
(** [kib x] is [x] kibibytes expressed in bytes. *)

val mib : float -> float
(** [mib x] is [x] mebibytes expressed in bytes. *)

val gib : float -> float
(** [gib x] is [x] gibibytes expressed in bytes. *)

val kb : float -> float
(** [kb x] is [x] kilobytes (10^3) in bytes. *)

val mb : float -> float
(** [mb x] is [x] megabytes (10^6) in bytes. *)

val gb : float -> float
(** [gb x] is [x] gigabytes (10^9) in bytes. *)

val tb : float -> float
(** [tb x] is [x] terabytes (10^12) in bytes. *)

val gbps : float -> float
(** [gbps x] is [x] GB/s expressed in bytes per second. *)

val tbps : float -> float
(** [tbps x] is [x] TB/s expressed in bytes per second. *)

val tflops : float -> float
(** [tflops x] is [x] TFLOP/s expressed in FLOP per second. *)

val us : float -> float
(** [us x] is [x] microseconds in seconds. *)

val ms : float -> float
(** [ms x] is [x] milliseconds in seconds. *)

val ns : float -> float
(** [ns x] is [x] nanoseconds in seconds. *)

val pp_bytes : Format.formatter -> float -> unit
(** Pretty-print a byte quantity with a human-readable suffix. *)

val pp_time : Format.formatter -> float -> unit
(** Pretty-print a duration in the most readable unit. *)

val pp_bandwidth : Format.formatter -> float -> unit
(** Pretty-print a bandwidth in B/s with a readable suffix. *)

val pp_flops : Format.formatter -> float -> unit
(** Pretty-print a compute rate in FLOP/s with a readable suffix. *)
