let kib x = x *. 1024.
let mib x = x *. 1024. *. 1024.
let gib x = x *. 1024. *. 1024. *. 1024.
let kb x = x *. 1e3
let mb x = x *. 1e6
let gb x = x *. 1e9
let tb x = x *. 1e12
let gbps x = x *. 1e9
let tbps x = x *. 1e12
let tflops x = x *. 1e12
let us x = x *. 1e-6
let ms x = x *. 1e-3
let ns x = x *. 1e-9

let pp_scaled suffixes step fmt v =
  let rec go v = function
    | [ last ] -> Format.fprintf fmt "%.2f%s" v last
    | s :: rest -> if Float.abs v < step then Format.fprintf fmt "%.2f%s" v s else go (v /. step) rest
    | [] -> assert false
  in
  go v suffixes

let pp_bytes fmt v = pp_scaled [ "B"; "KB"; "MB"; "GB"; "TB" ] 1e3 fmt v
let pp_bandwidth fmt v = pp_scaled [ "B/s"; "KB/s"; "MB/s"; "GB/s"; "TB/s" ] 1e3 fmt v
let pp_flops fmt v = pp_scaled [ "FLOP/s"; "KFLOP/s"; "MFLOP/s"; "GFLOP/s"; "TFLOP/s" ] 1e3 fmt v

let pp_time fmt v =
  if Float.abs v >= 1. then Format.fprintf fmt "%.3fs"  v
  else if Float.abs v >= 1e-3 then Format.fprintf fmt "%.3fms" (v *. 1e3)
  else if Float.abs v >= 1e-6 then Format.fprintf fmt "%.3fus" (v *. 1e6)
  else Format.fprintf fmt "%.1fns" (v *. 1e9)
