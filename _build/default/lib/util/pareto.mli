(** Pareto frontiers over (cost, value) pairs.

    Elk's allocator (paper §4.3) works exclusively on Pareto-optimal
    partition plans: for the executing operator the two objectives are
    (memory footprint, execution time); for a preloaded operator they are
    (preload space, data-distribution time).  This module computes and
    manipulates such two-objective frontiers generically: a point is kept
    iff no other point is at least as good on both axes and strictly better
    on one. *)

type 'a point = { x : float; y : float; payload : 'a }
(** A candidate with two minimized objectives [x] and [y] and an arbitrary
    payload (e.g. a partition plan). *)

val frontier : 'a point list -> 'a point list
(** [frontier pts] returns the Pareto-optimal subset of [pts], sorted by
    increasing [x] (hence decreasing [y]).  Duplicate-dominated points are
    dropped; among points with equal [x] only the smallest [y] survives,
    and ties on both axes keep the first occurrence. *)

val is_frontier : 'a point list -> bool
(** [is_frontier pts] checks that [pts] is sorted by strictly increasing
    [x] and strictly decreasing [y] — the canonical frontier shape. *)

val best_y_under_x : 'a point list -> float -> 'a point option
(** [best_y_under_x frontier budget] returns the point with the smallest
    [y] among those with [x <= budget], if any.  On a canonical frontier
    this is the rightmost point that still fits. *)

val min_x : 'a point list -> 'a point option
(** Point with the smallest [x] (cheapest). [None] on the empty list. *)

val min_y : 'a point list -> 'a point option
(** Point with the smallest [y] (fastest). [None] on the empty list. *)
