type t = { title : string; columns : string list; mutable rows : string list list }

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns (table %S)"
         (List.length cells) (List.length t.columns) t.title);
  t.rows <- t.rows @ [ cells ]

let add_rowf t fmt =
  Format.kasprintf (fun s -> add_row t (String.split_on_char '|' s |> List.map String.trim)) fmt

let render t =
  let all = t.columns :: t.rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row)
    all;
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let emit row =
    List.iteri
      (fun i c ->
        Buffer.add_string buf c;
        Buffer.add_string buf (String.make (widths.(i) - String.length c + 2) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit t.columns;
  Buffer.add_string buf (String.make (Array.fold_left ( + ) 0 widths + (2 * ncols)) '-');
  Buffer.add_char buf '\n';
  List.iter emit t.rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
