lib/util/pareto.mli:
