lib/util/stats.mli:
