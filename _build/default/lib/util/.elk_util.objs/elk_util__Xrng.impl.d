lib/util/xrng.ml: Array Float Int64 List
