lib/util/series.mli:
