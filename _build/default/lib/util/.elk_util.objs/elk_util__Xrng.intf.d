lib/util/xrng.mli:
