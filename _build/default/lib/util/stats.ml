let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stdev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let var = mean (List.map (fun x -> (x -. m) ** 2.) xs) in
      sqrt var

let percentile p xs =
  if xs = [] then invalid_arg "Stats.percentile: empty list";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let arr = Array.of_list xs in
  Array.sort compare arr;
  let n = Array.length arr in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  let frac = rank -. floor rank in
  (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac)

let geomean = function
  | [] -> 0.
  | xs -> exp (mean (List.map log xs))

let mape pairs =
  let errs =
    List.filter_map
      (fun (m, p) -> if m = 0. then None else Some (Float.abs ((m -. p) /. m)))
      pairs
  in
  mean errs

let r2 pairs =
  let ys = List.map fst pairs in
  let ybar = mean ys in
  let ss_res = List.fold_left (fun a (m, p) -> a +. ((m -. p) ** 2.)) 0. pairs in
  let ss_tot = List.fold_left (fun a y -> a +. ((y -. ybar) ** 2.)) 0. ys in
  if ss_tot = 0. then if ss_res = 0. then 1. else 0. else 1. -. (ss_res /. ss_tot)

(* Solve the [n x n] system [a x = b] in place by Gaussian elimination with
   partial pivoting.  Near-zero pivots are damped rather than failed on,
   because cost-model features can be collinear for degenerate tile shapes. *)
let solve a b =
  let n = Array.length b in
  for col = 0 to n - 1 do
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs a.(row).(col) > Float.abs a.(!pivot).(col) then pivot := row
    done;
    let tmp = a.(col) in
    a.(col) <- a.(!pivot);
    a.(!pivot) <- tmp;
    let tb = b.(col) in
    b.(col) <- b.(!pivot);
    b.(!pivot) <- tb;
    if Float.abs a.(col).(col) < 1e-12 then a.(col).(col) <- a.(col).(col) +. 1e-9;
    for row = col + 1 to n - 1 do
      let f = a.(row).(col) /. a.(col).(col) in
      for k = col to n - 1 do
        a.(row).(k) <- a.(row).(k) -. (f *. a.(col).(k))
      done;
      b.(row) <- b.(row) -. (f *. b.(col))
    done
  done;
  let x = Array.make n 0. in
  for row = n - 1 downto 0 do
    let s = ref b.(row) in
    for k = row + 1 to n - 1 do
      s := !s -. (a.(row).(k) *. x.(k))
    done;
    x.(row) <- !s /. a.(row).(row)
  done;
  x

let ols samples =
  (match samples with [] -> invalid_arg "Stats.ols: no samples" | _ -> ());
  let dim = Array.length (fst (List.hd samples)) in
  List.iter
    (fun (f, _) ->
      if Array.length f <> dim then invalid_arg "Stats.ols: inconsistent feature dims")
    samples;
  let n = dim + 1 in
  (* Normal equations: (X^T X) w = X^T y, with the intercept as an implicit
     all-ones feature column. *)
  let xtx = Array.make_matrix n n 0. in
  let xty = Array.make n 0. in
  let feat f i = if i = dim then 1. else f.(i) in
  List.iter
    (fun (f, y) ->
      for i = 0 to n - 1 do
        xty.(i) <- xty.(i) +. (feat f i *. y);
        for j = 0 to n - 1 do
          xtx.(i).(j) <- xtx.(i).(j) +. (feat f i *. feat f j)
        done
      done)
    samples;
  (* Tikhonov damping keeps the system well-posed under collinear or
     wildly scaled features; the term is relative to each diagonal entry
     so it works across magnitudes. *)
  for i = 0 to n - 1 do
    xtx.(i).(i) <- (xtx.(i).(i) *. (1. +. 1e-8)) +. 1e-9
  done;
  solve xtx xty

let predict coeffs features =
  let dim = Array.length features in
  let acc = ref coeffs.(dim) in
  for i = 0 to dim - 1 do
    acc := !acc +. (coeffs.(i) *. features.(i))
  done;
  !acc
