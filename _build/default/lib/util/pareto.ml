type 'a point = { x : float; y : float; payload : 'a }

let frontier pts =
  (* Sort by (x, y); then a single left-to-right scan keeps a point iff its
     y strictly improves on the best y seen so far. *)
  let sorted = List.stable_sort (fun a b -> compare (a.x, a.y) (b.x, b.y)) pts in
  let rec scan best acc = function
    | [] -> List.rev acc
    | p :: rest -> if p.y < best then scan p.y (p :: acc) rest else scan best acc rest
  in
  scan infinity [] sorted

let is_frontier pts =
  let rec go = function
    | a :: (b :: _ as rest) -> a.x < b.x && a.y > b.y && go rest
    | [ _ ] | [] -> true
  in
  go pts

let best_y_under_x pts budget =
  List.fold_left
    (fun best p ->
      if p.x > budget then best
      else
        match best with
        | Some b when b.y <= p.y -> best
        | _ -> Some p)
    None pts

let min_x = function
  | [] -> None
  | p :: rest -> Some (List.fold_left (fun a b -> if b.x < a.x then b else a) p rest)

let min_y = function
  | [] -> None
  | p :: rest -> Some (List.fold_left (fun a b -> if b.y < a.y then b else a) p rest)
