type contrib = { t0 : float; t1 : float; volume : float }
type t = { mutable contribs : contrib list }

let create () = { contribs = [] }

let add t ~t_start ~t_end ~volume =
  if t_end < t_start then invalid_arg "Series.add: negative interval";
  t.contribs <- { t0 = t_start; t1 = t_end; volume } :: t.contribs

let horizon t =
  match t.contribs with
  | [] -> (0., 0.)
  | c :: rest ->
      List.fold_left
        (fun (lo, hi) c -> (Float.min lo c.t0, Float.max hi c.t1))
        (c.t0, c.t1) rest

let total t = List.fold_left (fun a c -> a +. c.volume) 0. t.contribs

let bins t ~n =
  if n <= 0 then invalid_arg "Series.bins: n must be positive";
  let lo, hi = horizon t in
  let span = hi -. lo in
  let width = if span = 0. then 1. else span /. float_of_int n in
  let acc = Array.make n 0. in
  let clamp i = max 0 (min (n - 1) i) in
  List.iter
    (fun c ->
      if c.t1 <= c.t0 then begin
        (* Instantaneous contribution: all volume into one bin. *)
        let i = clamp (int_of_float ((c.t0 -. lo) /. width)) in
        acc.(i) <- acc.(i) +. c.volume
      end
      else
        let first = clamp (int_of_float ((c.t0 -. lo) /. width)) in
        let last = clamp (int_of_float ((c.t1 -. lo) /. width -. 1e-9)) in
        let per_time = c.volume /. (c.t1 -. c.t0) in
        for i = first to last do
          let b0 = lo +. (float_of_int i *. width) and b1 = lo +. (float_of_int (i + 1) *. width) in
          let overlap = Float.min c.t1 b1 -. Float.max c.t0 b0 in
          if overlap > 0. then acc.(i) <- acc.(i) +. (per_time *. overlap)
        done)
    t.contribs;
  Array.init n (fun i ->
      (lo +. ((float_of_int i +. 0.5) *. width), acc.(i) /. width))

let peak_rate t ~n =
  if t.contribs = [] then 0.
  else Array.fold_left (fun a (_, r) -> Float.max a r) 0. (bins t ~n)

let mean_rate t =
  let lo, hi = horizon t in
  if hi <= lo then 0. else total t /. (hi -. lo)
