(** Time-binned series accumulation.

    The paper's Figures 6-8 plot bandwidth *demand over time*: a volume of
    bytes attributed to a time interval, divided by the interval length.
    This module turns a set of [(t_start, t_end, volume)] contributions
    into a fixed number of bins covering the observed horizon, spreading
    each contribution uniformly over its interval. *)

type t
(** An accumulating series. *)

val create : unit -> t
(** Fresh empty series. *)

val add : t -> t_start:float -> t_end:float -> volume:float -> unit
(** Record [volume] units spread uniformly over [t_start, t_end].
    Zero-length intervals attribute the whole volume to the instant
    [t_start].  Raises [Invalid_argument] if [t_end < t_start]. *)

val horizon : t -> float * float
(** [(min_t, max_t)] over all contributions; [(0., 0.)] when empty. *)

val bins : t -> n:int -> (float * float) array
(** [bins t ~n] divides the horizon into [n] equal bins and returns
    [(bin_mid_time, rate)] pairs where [rate] is volume per unit time in
    the bin.  Raises [Invalid_argument] if [n <= 0]. *)

val total : t -> float
(** Sum of all recorded volumes. *)

val peak_rate : t -> n:int -> float
(** Maximum bin rate at resolution [n]; 0 when empty. *)

val mean_rate : t -> float
(** Total volume divided by horizon length; 0 on empty/degenerate. *)
