type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let create seed = { state = mix (Int64.of_int seed) }
let split t = { state = mix (next t) }

let int t bound =
  if bound <= 0 then invalid_arg "Xrng.int: bound must be positive";
  (* Keep 62 bits so the value always fits OCaml's 63-bit native int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992. *. bound (* 2^53 *)

let gaussian t =
  let u1 = max 1e-12 (float t 1.) and u2 = float t 1. in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let pick t = function
  | [] -> invalid_arg "Xrng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
