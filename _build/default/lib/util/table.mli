(** Plain-text table rendering for the benchmark harness.

    Every experiment in [bench/main.ml] prints its rows through this module
    so that the regenerated tables and figure series share one layout. *)

type t
(** A table under construction. *)

val create : title:string -> columns:string list -> t
(** [create ~title ~columns] starts a table with a caption line and a
    header row. *)

val add_row : t -> string list -> unit
(** Append a row.  Raises [Invalid_argument] if the cell count does not
    match the header. *)

val add_rowf : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [add_rowf t fmt ...] formats a single string with [fmt] and splits it
    on ['|'] characters into cells, then behaves as {!add_row}. *)

val render : t -> string
(** Render with aligned columns, a separator under the header and the
    title on top. *)

val print : t -> unit
(** [print t] writes [render t] to stdout followed by a blank line. *)
