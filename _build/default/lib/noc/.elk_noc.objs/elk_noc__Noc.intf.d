lib/noc/noc.mli: Elk_arch
