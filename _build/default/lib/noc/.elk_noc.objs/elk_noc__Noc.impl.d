lib/noc/noc.ml: Arch Elk_arch Float Hashtbl List
