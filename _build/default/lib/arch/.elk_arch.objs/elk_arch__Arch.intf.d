lib/arch/arch.mli: Format
