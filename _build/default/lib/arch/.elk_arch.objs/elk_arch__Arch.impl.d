lib/arch/arch.ml: Elk_util Format Printf Units
