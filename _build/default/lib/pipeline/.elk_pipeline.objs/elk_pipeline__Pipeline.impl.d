lib/pipeline/pipeline.ml: Array Elk_arch Elk_model Elk_partition Elk_tensor Elk_util Float Format Graph List
