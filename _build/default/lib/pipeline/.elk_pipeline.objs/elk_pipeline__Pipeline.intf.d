lib/pipeline/pipeline.mli: Elk_model Elk_partition Format
