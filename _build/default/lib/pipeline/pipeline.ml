open Elk_model
module P = Elk_partition.Partition

type stage = {
  ops : int list;
  cores : int;
  compute_time : float;
  weight_bytes : float;
  resident : bool;
  swap_time : float;
}

type plan = {
  stages : stage list;
  bottleneck : float;
  latency : float;
  throughput : float;
}

(* Whole-chip execution time of one operator (its fastest plan), used as
   the per-op weight for stage balancing; a stage running on a fraction of
   the cores scales inversely. *)
let op_time ctx (node : Graph.node) = (P.fastest_plan ctx node.Graph.op).P.exec_time

(* Per-operator launch/synchronization overhead (BSP supersteps), which
   does NOT scale with the stage's core share — amortizing it over fewer
   operators per stage is one of the genuine wins of deep pipelines.
   Matches [Elk_cost.Device]'s kernel launch overhead. *)
let op_overhead = 6e-7

(* Exact linear-partition DP: split weights w.(0..n-1) into [k] contiguous
   groups minimizing the maximum group sum.  O(k n^2), fine at our op
   counts.  Returns the group boundaries (end-exclusive indices). *)
let linear_partition weights k =
  let n = Array.length weights in
  let prefix = Array.make (n + 1) 0. in
  for i = 0 to n - 1 do
    prefix.(i + 1) <- prefix.(i) +. weights.(i)
  done;
  let seg i j = prefix.(j) -. prefix.(i) in
  (* best.(i).(g) = minimal bottleneck splitting the first i items into g
     groups; cut.(i).(g) = position of the last cut. *)
  let best = Array.make_matrix (n + 1) (k + 1) infinity in
  let cut = Array.make_matrix (n + 1) (k + 1) 0 in
  best.(0).(0) <- 0.;
  for g = 1 to k do
    for i = g to n do
      for j = g - 1 to i - 1 do
        let candidate = Float.max best.(j).(g - 1) (seg j i) in
        if candidate < best.(i).(g) then begin
          best.(i).(g) <- candidate;
          cut.(i).(g) <- j
        end
      done
    done
  done;
  let rec walk i g acc =
    if g = 0 then acc else walk cut.(i).(g) (g - 1) (i :: acc)
  in
  walk n k []

let plan ctx graph ~stages =
  let n = Graph.length graph in
  let chip = P.ctx_chip ctx in
  let total_cores = chip.Elk_arch.Arch.cores in
  if stages < 1 || stages > min n total_cores then
    invalid_arg "Pipeline.plan: stage count out of range";
  let nodes = Graph.nodes graph in
  let weights = Array.map (op_time ctx) nodes in
  let bounds = linear_partition weights stages in
  let groups =
    let rec go start = function
      | [] -> []
      | e :: rest -> (start, e) :: go e rest
    in
    go 0 bounds
  in
  let group_time (s, e) =
    let acc = ref 0. in
    for i = s to e - 1 do
      acc := !acc +. weights.(i)
    done;
    !acc
  in
  let total_time = Array.fold_left ( +. ) 0. weights in
  (* Cores proportional to stage work (at least 1). *)
  let cores_of t =
    max 1 (int_of_float (Float.round (float_of_int total_cores *. t /. Float.max 1e-12 total_time)))
  in
  let sram = Elk_arch.Arch.usable_sram_per_core chip in
  let mk (s, e) =
    let t_chipwide = group_time (s, e) in
    let cores = min total_cores (cores_of t_chipwide) in
    let n_ops = e - s in
    (* The scalable part of the work runs inversely in the stage's core
       share; per-op launch/sync overhead stays fixed. *)
    let work = Float.max 0. (t_chipwide -. (float_of_int n_ops *. op_overhead)) in
    let compute_time =
      (work *. float_of_int total_cores /. float_of_int cores)
      +. (float_of_int n_ops *. op_overhead)
    in
    let weight_bytes = ref 0. in
    let ops = ref [] in
    for i = e - 1 downto s do
      ops := i :: !ops;
      weight_bytes :=
        !weight_bytes +. Elk_tensor.Opspec.hbm_bytes nodes.(i).Graph.op
    done;
    let capacity = sram *. float_of_int cores in
    let resident = !weight_bytes <= capacity in
    let swap_time =
      if resident then 0.
      else
        (* Non-resident weights stream from HBM once per request wave,
           sharing the chip's HBM bandwidth proportionally to cores. *)
        (!weight_bytes -. capacity)
        /. (chip.Elk_arch.Arch.hbm_bandwidth *. float_of_int cores
           /. float_of_int total_cores)
    in
    {
      ops = !ops;
      cores;
      compute_time;
      weight_bytes = !weight_bytes;
      resident;
      swap_time;
    }
  in
  let stage_list = List.map mk groups in
  let cycle =
    List.fold_left (fun a st -> Float.max a (st.compute_time +. st.swap_time)) 0. stage_list
  in
  let latency =
    List.fold_left (fun a st -> a +. st.compute_time +. st.swap_time) 0. stage_list
  in
  {
    stages = stage_list;
    bottleneck = cycle;
    latency;
    throughput = (if cycle > 0. then 1. /. cycle else 0.);
  }

let best_stage_count ?(max_stages = 8) ctx graph =
  let n = Graph.length graph in
  let chip_cores = (P.ctx_chip ctx).Elk_arch.Arch.cores in
  let hi = min max_stages (min n chip_cores) in
  let rec go best k =
    if k > hi then best
    else
      let p = plan ctx graph ~stages:k in
      let best =
        match best with
        | Some (_, bp)
          when bp.throughput > p.throughput
               || (bp.throughput = p.throughput && bp.latency <= p.latency) ->
            best
        | _ -> Some (k, p)
      in
      go best (k + 1)
  in
  match go None 1 with Some r -> r | None -> assert false

let pp_plan fmt p =
  Format.fprintf fmt "@[<v>%d stages, cycle %a, latency %a, throughput %.1f req/s@,"
    (List.length p.stages) Elk_util.Units.pp_time p.bottleneck Elk_util.Units.pp_time
    p.latency p.throughput;
  List.iteri
    (fun i st ->
      Format.fprintf fmt "  stage %d: %d ops on %d cores, %a compute, %a weights%s@," i
        (List.length st.ops) st.cores Elk_util.Units.pp_time st.compute_time
        Elk_util.Units.pp_bytes st.weight_bytes
        (if st.resident then "" else Format.asprintf " (+%a swap)" Elk_util.Units.pp_time st.swap_time))
    p.stages;
  Format.fprintf fmt "@]"
