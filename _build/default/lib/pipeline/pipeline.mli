(** Spatial pipeline execution model (paper §7, "Apply Elk to other
    execution models").

    SambaNova-style chips can run different operators on {e different}
    sets of cores simultaneously: the model is cut into pipeline stages,
    each stage's weights stay stationary on its cores, and activations
    flow stage to stage.  Throughput improves (all stages busy on
    different requests) at the cost of per-request latency, and — exactly
    as the paper argues — the §2.3 resource constraints reappear: a stage
    whose weights exceed its cores' SRAM must swap them from HBM, and the
    interconnect carries both the stage-to-stage activation flow and that
    swap traffic.

    This module implements the §7 scheduling space: contiguous assignment
    of operators to stages (optimal via dynamic programming on the
    bottleneck), proportional core allocation, per-stage residency
    analysis, and steady-state throughput/latency estimates, so the
    tradeoff against Elk's time-multiplexed execution can be quantified
    (see the [pipeline] benchmark). *)

type stage = {
  ops : int list;  (** operator ids, in execution order. *)
  cores : int;  (** cores dedicated to this stage. *)
  compute_time : float;  (** time to process one request through the stage. *)
  weight_bytes : float;  (** HBM-resident bytes the stage must hold. *)
  resident : bool;  (** do the weights fit in the stage's SRAM? *)
  swap_time : float;  (** per-request weight-swap time when not resident. *)
}

type plan = {
  stages : stage list;
  bottleneck : float;  (** slowest stage's time incl. swap — the cycle time. *)
  latency : float;  (** one request's end-to-end time (sum of stages). *)
  throughput : float;  (** requests/second at steady state. *)
}

val plan :
  Elk_partition.Partition.ctx -> Elk_model.Graph.t -> stages:int -> plan
(** Cut the graph into [stages] contiguous stages minimizing the
    bottleneck compute time (exact DP), allocate cores proportionally to
    stage work, and price weight swapping for non-resident stages.
    Raises [Invalid_argument] if [stages] is not in [1, min (ops, cores)]. *)

val best_stage_count :
  ?max_stages:int -> Elk_partition.Partition.ctx -> Elk_model.Graph.t -> int * plan
(** The §7 scheduling question: the stage count maximizing throughput
    (ties broken toward lower latency).  [max_stages] defaults to 8. *)

val pp_plan : Format.formatter -> plan -> unit
