(** Human-readable compilation reports.

    Renders a compiled plan and its simulated execution as a Markdown
    document: headline metrics, the Fig 18-style time breakdown, the
    preload-number distribution the scheduler chose (§4.2), the
    broadcast-fraction mix of the preload states (§4.3), per-layer time
    aggregation and the slowest operators — the diagnostics a compiler
    engineer reads before trusting a plan. *)

val markdown : Dse.env -> Elk.Compile.t -> Elk_sim.Sim.result -> string
(** Render a report for a compile result and its simulation. *)

val print : Dse.env -> Elk.Compile.t -> Elk_sim.Sim.result -> unit
(** [markdown] to stdout. *)
