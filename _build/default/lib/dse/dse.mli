(** Design-space exploration harness (paper §6.4).

    Builds parameterized ICCA-chip environments — core count, topology,
    HBM bandwidth, interconnect bandwidth, compute capability — trains a
    cost model for each, and evaluates the five designs on the event-driven
    simulator.  Every sweep figure of the paper (Figs 19-24) is a loop
    over {!env} parameters calling {!evaluate}. *)

type env = { pod : Elk_arch.Arch.pod; ctx : Elk_partition.Partition.ctx }

val env :
  ?chips:int ->
  ?cores:int ->
  ?topology:[ `All_to_all | `Mesh | `Gpu ] ->
  ?hbm_bw_per_chip:float ->
  ?link_bw:float ->
  ?flops_scale:float ->
  ?sram_per_core:float ->
  ?cost_seed:int ->
  unit ->
  env
(** Build an environment.  Defaults mirror {!Elk_arch.Arch.Presets.scaled_pod}:
    4 chips x 64 cores, all-to-all, 2.7 GB/s/core HBM, 5.5 GB/s links.
    [hbm_bw_per_chip] overrides the per-chip HBM bandwidth; [link_bw] the
    inter-core link bandwidth; [flops_scale] multiplies both per-core
    compute rates (Fig 24's x-axis).  A cost model is trained per
    environment with [cost_seed] (default 42). *)

type eval = {
  design : Elk_baselines.Baselines.design;
  latency : float;  (** simulated on-chip makespan + inter-chip all-reduce. *)
  hbm_util : float;
  noc_util : float;
  tflops : float;  (** achieved pod-level TFLOP/s. *)
  bd : Elk.Timeline.breakdown;
  sim : Elk_sim.Sim.result option;  (** [None] for [Ideal]. *)
}

val evaluate :
  ?elk_options:Elk.Compile.options ->
  env ->
  Elk_model.Graph.t ->
  Elk_baselines.Baselines.design ->
  eval
(** Plan with the design's policy, then measure on the simulator (the
    [Ideal] roofline is analytic — it has no schedule to simulate). *)

val evaluate_all :
  ?elk_options:Elk.Compile.options ->
  env ->
  Elk_model.Graph.t ->
  eval list
(** All five designs, in {!Elk_baselines.Baselines.all} order. *)
