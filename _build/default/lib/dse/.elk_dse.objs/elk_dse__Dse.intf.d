lib/dse/dse.mli: Elk Elk_arch Elk_baselines Elk_model Elk_partition Elk_sim
