lib/dse/report.mli: Dse Elk Elk_sim
