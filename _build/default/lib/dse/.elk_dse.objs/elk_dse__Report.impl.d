lib/dse/report.ml: Array Buffer Dse Elk Elk_arch Elk_model Elk_partition Elk_sim Elk_tensor Elk_util Float Format Hashtbl List Printf
