lib/dse/dse.ml: Arch Array Elk Elk_arch Elk_baselines Elk_cost Elk_model Elk_partition Elk_sim Elk_util List Option
