module P = Elk_partition.Partition

let pct x = Printf.sprintf "%.1f%%" (100. *. x)
let us x = Printf.sprintf "%.1f us" (x *. 1e6)

let markdown (env : Dse.env) (c : Elk.Compile.t) (r : Elk_sim.Sim.result) =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let graph = c.Elk.Compile.chip_graph in
  let s = c.Elk.Compile.schedule in
  let n = Elk.Schedule.num_ops s in
  pf "# Elk compilation report: %s\n\n" (Elk_model.Graph.name c.Elk.Compile.graph);
  pf "- target: %s\n" (Format.asprintf "%a" Elk_arch.Arch.pp_pod env.Dse.pod);
  pf "- operators (per chip): %d; HBM volume: %s; FLOPs: %.3g G\n"
    (Elk_model.Graph.length graph)
    (Format.asprintf "%a" Elk_util.Units.pp_bytes (Elk_model.Graph.total_hbm_bytes graph))
    (Elk_model.Graph.total_flops graph /. 1e9);
  pf "- compile: %.2f s over %d preload order(s)\n" c.Elk.Compile.compile_seconds
    c.Elk.Compile.orders_tried;
  pf "- simulated per-token latency: %s (+ %s inter-chip all-reduce)\n\n"
    (us r.Elk_sim.Sim.total) (us c.Elk.Compile.allreduce);
  (* Breakdown. *)
  let bd = r.Elk_sim.Sim.bd in
  let total = Float.max 1e-12 r.Elk_sim.Sim.total in
  pf "## Time breakdown (simulated)\n\n";
  pf "| bucket | time | share |\n|---|---|---|\n";
  List.iter
    (fun (label, v) -> pf "| %s | %s | %s |\n" label (us v) (pct (v /. total)))
    [
      ("preload only", bd.Elk.Timeline.preload_only);
      ("execute only", bd.Elk.Timeline.execute_only);
      ("overlapped", bd.Elk.Timeline.overlapped);
      ("interconnect stalls", bd.Elk.Timeline.interconnect);
    ];
  pf "\nHBM utilization %s; interconnect utilization %s (inter-core %s + preload %s).\n\n"
    (pct r.Elk_sim.Sim.hbm_util) (pct r.Elk_sim.Sim.noc_util)
    (pct (fst r.Elk_sim.Sim.noc_util_split))
    (pct (snd r.Elk_sim.Sim.noc_util_split));
  (* Preload numbers (§4.2). *)
  let pn = Elk.Scheduler.preload_numbers s in
  let hist = Hashtbl.create 8 in
  Array.iter
    (fun w ->
      let k = if w >= 4 then 4 else w in
      Hashtbl.replace hist k (1 + try Hashtbl.find hist k with Not_found -> 0))
    pn;
  pf "## Preload numbers (operators per window)\n\n";
  pf "| preloads in window | count |\n|---|---|\n";
  List.iter
    (fun k ->
      match Hashtbl.find_opt hist k with
      | Some c -> pf "| %s | %d |\n" (if k = 4 then "4+" else string_of_int k) c
      | None -> ())
    [ 0; 1; 2; 3; 4 ];
  (* Broadcast fractions (§4.3). *)
  let full, partial, none = (ref 0, ref 0, ref 0) in
  Array.iter
    (fun (e : Elk.Schedule.op_entry) ->
      if e.Elk.Schedule.popt.P.hbm_device_bytes <= 0. then incr none
      else if e.Elk.Schedule.popt.P.frac >= 0.999 then incr full
      else incr partial)
    s.Elk.Schedule.entries;
  pf "\n## Preload states (§4.3)\n\n";
  pf "%d ops fully broadcast, %d partially broadcast (+distribution phase), %d load nothing.\n\n"
    !full !partial !none;
  (* Per-layer aggregation. *)
  pf "## Per-layer simulated time\n\n| layer | ops | exec time |\n|---|---|---|\n";
  let layers = Elk_model.Graph.layer_ids graph in
  List.iter
    (fun l ->
      let nodes = Elk_model.Graph.nodes_of_layer graph l in
      let time =
        List.fold_left
          (fun a (node : Elk_model.Graph.node) ->
            let o = r.Elk_sim.Sim.per_op.(node.Elk_model.Graph.id) in
            a +. (o.Elk_sim.Sim.exe_end -. o.Elk_sim.Sim.exe_start))
          0. nodes
      in
      pf "| %d | %d | %s |\n" l (List.length nodes) (us time))
    layers;
  (* Slowest operators. *)
  pf "\n## Slowest operators (simulated span)\n\n| op | kind | span | preload |\n|---|---|---|---|\n";
  let spans =
    List.init n (fun i ->
        let o = r.Elk_sim.Sim.per_op.(i) in
        (i, o.Elk_sim.Sim.exe_end -. o.Elk_sim.Sim.exe_start, o.Elk_sim.Sim.pre_end -. o.Elk_sim.Sim.pre_start))
  in
  let sorted = List.sort (fun (_, a, _) (_, b, _) -> compare b a) spans in
  List.iteri
    (fun rank (i, span, pre) ->
      if rank < 8 then
        let op = (Elk_model.Graph.get graph i).Elk_model.Graph.op in
        pf "| %s | %s | %s | %s |\n" op.Elk_tensor.Opspec.name op.Elk_tensor.Opspec.kind
          (us span) (us pre))
    sorted;
  Buffer.contents b

let print env c r = print_string (markdown env c r)
