open Elk_tensor
module P = Elk_partition.Partition

type params = {
  pj_per_matmul_flop : float;
  pj_per_vector_flop : float;
  pj_per_sram_byte : float;
  pj_per_link_byte_hop : float;
  pj_per_hbm_byte : float;
  static_watts_per_core : float;
}

(* Order-of-magnitude constants for a 7nm-class accelerator:
   - fp16 MAC ~0.5 pJ/FLOP on a systolic path, ~3x that on a vector unit;
   - local scratchpad ~0.08 pJ/byte (~10 fJ/bit);
   - on-chip link traversal ~1.5 pJ/byte per hop (long wires + routing);
   - HBM access ~40 pJ/byte (~5 pJ/bit incl. PHY and DRAM core);
   - ~0.3 W/core static (IPU-class tiles with clock + leakage). *)
let default_params =
  {
    pj_per_matmul_flop = 0.5;
    pj_per_vector_flop = 1.5;
    pj_per_sram_byte = 0.08;
    pj_per_link_byte_hop = 1.5;
    pj_per_hbm_byte = 40.;
    static_watts_per_core = 0.3;
  }

type report = {
  compute_j : float;
  sram_j : float;
  noc_j : float;
  hbm_j : float;
  static_j : float;
  total_j : float;
  energy_per_token : float;
  edp : float;
}

let pj x = x *. 1e-12

let evaluate ?(params = default_params) ctx graph (r : Elk_sim.Sim.result) =
  let chip = P.ctx_chip ctx in
  let compute_j =
    Array.fold_left
      (fun acc (node : Elk_model.Graph.node) ->
        let op = node.Elk_model.Graph.op in
        let rate =
          if Elk_cost.Device.is_matmul_kind op.Opspec.kind then params.pj_per_matmul_flop
          else params.pj_per_vector_flop
        in
        acc +. pj (Opspec.flops op *. rate))
      0. (Elk_model.Graph.nodes graph)
  in
  let sram_j =
    (* Every operand byte is read and every output byte written at least
       once from the local scratchpad; exchanged bytes are read again at
       the receiver. *)
    Array.fold_left
      (fun acc (node : Elk_model.Graph.node) ->
        acc +. pj (Opspec.footprint_bytes node.Elk_model.Graph.op *. params.pj_per_sram_byte))
      0. (Elk_model.Graph.nodes graph)
    +. pj (r.Elk_sim.Sim.intercore_volume *. params.pj_per_sram_byte)
  in
  let hops =
    match chip.Elk_arch.Arch.topology with
    | Elk_arch.Arch.All_to_all -> 1.
    | Elk_arch.Arch.Clustered _ -> 2.
    | Elk_arch.Arch.Mesh2d { rows; cols } -> float_of_int (rows + cols) /. 3.
  in
  let noc_j =
    pj
      ((r.Elk_sim.Sim.intercore_volume +. r.Elk_sim.Sim.inject_volume)
      *. hops *. params.pj_per_link_byte_hop)
  in
  let hbm_j = pj (r.Elk_sim.Sim.hbm_device_volume *. params.pj_per_hbm_byte) in
  let static_j =
    params.static_watts_per_core *. float_of_int chip.Elk_arch.Arch.cores
    *. r.Elk_sim.Sim.total
  in
  let total_j = compute_j +. sram_j +. noc_j +. hbm_j +. static_j in
  {
    compute_j;
    sram_j;
    noc_j;
    hbm_j;
    static_j;
    total_j;
    energy_per_token = total_j;
    edp = total_j *. r.Elk_sim.Sim.total;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "total %.3g J (compute %.3g, sram %.3g, noc %.3g, hbm %.3g, static %.3g); EDP %.3g J.s"
    r.total_j r.compute_j r.sram_j r.noc_j r.hbm_j r.static_j r.edp
