lib/energy/energy.mli: Elk_model Elk_partition Elk_sim Format
