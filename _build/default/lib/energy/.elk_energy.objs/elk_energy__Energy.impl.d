lib/energy/energy.ml: Array Elk_arch Elk_cost Elk_model Elk_partition Elk_sim Elk_tensor Format Opspec
