(** Energy accounting for executed schedules (paper §7, "Apply Elk to
    other optimization objectives").

    The paper notes Elk can optimize other objectives "by replacing the
    performance-based cost model with others (e.g. ... a cost model that
    estimates power usage)".  This module provides that cost model: an
    activity-based energy estimate over a simulated schedule — dynamic
    energy per FLOP, per SRAM byte, per interconnect byte-hop and per HBM
    byte, plus leakage/static power integrated over the makespan — so
    designs can be compared on energy per token and energy-delay product
    as well as latency. *)

type params = {
  pj_per_matmul_flop : float;
  pj_per_vector_flop : float;
  pj_per_sram_byte : float;
  pj_per_link_byte_hop : float;  (** inter-core traffic, per traversed link. *)
  pj_per_hbm_byte : float;  (** off-chip access incl. PHY. *)
  static_watts_per_core : float;
}

val default_params : params
(** Order-of-magnitude 7nm-class technology constants (documented in the
    implementation); replace to model other nodes. *)

type report = {
  compute_j : float;
  sram_j : float;
  noc_j : float;
  hbm_j : float;
  static_j : float;
  total_j : float;
  energy_per_token : float;  (** = [total_j] for a decode graph. *)
  edp : float;  (** energy-delay product, J*s. *)
}

val evaluate :
  ?params:params -> Elk_partition.Partition.ctx -> Elk_model.Graph.t ->
  Elk_sim.Sim.result -> report
(** Account a simulated run of one chip.  FLOPs come from the graph; SRAM
    traffic from operator footprints; interconnect traffic hop-weighted
    from the simulator; HBM traffic from device bytes; static energy from
    the makespan. *)

val pp_report : Format.formatter -> report -> unit
