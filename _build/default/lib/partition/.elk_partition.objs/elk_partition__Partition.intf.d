lib/partition/partition.mli: Elk_arch Elk_cost Elk_tensor Elk_util Format
