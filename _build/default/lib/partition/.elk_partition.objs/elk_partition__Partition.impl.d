lib/partition/partition.ml: Arch Array Dtype Elk_arch Elk_cost Elk_tensor Elk_util Float Format Hashtbl List Opspec Pareto Printf String Units
