open Elk_tensor

(* ------------------------------------------------------------------ *)
(* Export                                                             *)
(* ------------------------------------------------------------------ *)

let source_code = function
  | Opspec.Weights -> "w"
  | Opspec.Kv_cache -> "kv"
  | Opspec.Activation -> "a"

let source_of_code = function
  | "w" -> Some Opspec.Weights
  | "kv" -> Some Opspec.Kv_cache
  | "a" -> Some Opspec.Activation
  | _ -> None

let export_node (node : Graph.node) =
  let op = node.Graph.op in
  let iter = op.Opspec.iter in
  let common =
    Printf.sprintf "name=%s role=%s%s deps=%s%s" op.Opspec.name node.Graph.role
      (match node.Graph.layer with Some l -> Printf.sprintf " layer=%d" l | None -> "")
      (match node.Graph.deps with
      | [] -> "-"
      | ds -> String.concat "," (List.map string_of_int ds))
      (if op.Opspec.dtype = Dtype.Fp16 then ""
       else " dt=" ^ Dtype.to_string op.Opspec.dtype)
  in
  match op.Opspec.kind with
  | "matmul" when Array.length iter = 3 ->
      let ws =
        match op.Opspec.inputs with
        | [ _; w ] when w.Opspec.source <> Opspec.Weights ->
            " ws=" ^ source_code w.Opspec.source
        | _ -> ""
      in
      Printf.sprintf "op matmul %s m=%d n=%d k=%d%s" common iter.(0) iter.(1) iter.(2) ws
  | "batch_matmul" when Array.length iter = 4 ->
      let rhs =
        match op.Opspec.inputs with
        | [ _; r ] -> " rhs=" ^ source_code r.Opspec.source
        | _ -> ""
      in
      Printf.sprintf "op bmm %s batch=%d m=%d n=%d k=%d%s" common iter.(0) iter.(1)
        iter.(2) iter.(3) rhs
  | "softmax" when Array.length iter = 2 ->
      Printf.sprintf "op softmax %s rows=%d cols=%d" common iter.(0) iter.(1)
  | ("rmsnorm" | "layernorm") when Array.length iter = 2 ->
      Printf.sprintf "op norm %s rows=%d cols=%d kind=%s" common iter.(0) iter.(1)
        op.Opspec.kind
  | "rope" when Array.length iter = 2 ->
      Printf.sprintf "op rope %s rows=%d cols=%d" common iter.(0) iter.(1)
  | "embedding" when Array.length iter = 2 ->
      Printf.sprintf "op embedding %s rows=%d vocab=0 hidden=%d" common iter.(0) iter.(1)
  | _ ->
      (* Generic pointwise operator. *)
      Printf.sprintf "op eltwise %s kind=%s shape=%s arity=%d fpp=%g" common
        op.Opspec.kind
        (String.concat "x" (Array.to_list iter |> List.map string_of_int))
        (List.length op.Opspec.inputs)
        op.Opspec.flops_per_point

let export g =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "graph %s\n" (Graph.name g));
  Array.iter
    (fun node ->
      Buffer.add_string b (export_node node);
      Buffer.add_char b '\n')
    (Graph.nodes g);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Import                                                             *)
(* ------------------------------------------------------------------ *)

type attrs = (string * string) list

let parse_attrs tokens : (attrs, string) result =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | tok :: rest -> (
        match String.index_opt tok '=' with
        | None -> Error (Printf.sprintf "expected key=value, got %S" tok)
        | Some i ->
            let k = String.sub tok 0 i in
            let v = String.sub tok (i + 1) (String.length tok - i - 1) in
            go ((k, v) :: acc) rest)
  in
  go [] tokens

let find attrs k = List.assoc_opt k attrs

let req attrs k =
  match find attrs k with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing attribute %S" k)

let int_attr attrs k =
  match req attrs k with
  | Error e -> Error e
  | Ok v -> ( try Ok (int_of_string v) with _ -> Error (Printf.sprintf "bad integer %S for %s" v k))

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let parse_deps attrs ~prev_id =
  match find attrs "deps" with
  | None -> Ok (if prev_id < 0 then [] else [ prev_id ])
  | Some "-" | Some "" -> Ok []
  | Some s -> (
      try
        Ok
          (String.split_on_char ',' s
          |> List.filter (fun x -> x <> "")
          |> List.map int_of_string)
      with _ -> Error (Printf.sprintf "bad deps list %S" s))

let parse_dtype attrs =
  match find attrs "dt" with
  | None -> Ok Dtype.Fp16
  | Some v -> (
      match Dtype.of_string v with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "unknown dtype %S" v))

let parse_shape s =
  try
    Ok (String.split_on_char 'x' s |> List.map int_of_string)
  with _ -> Error (Printf.sprintf "bad shape %S" s)

let parse_op kind attrs =
  let* name = req attrs "name" in
  let* dtype = parse_dtype attrs in
  match kind with
  | "matmul" ->
      let* m = int_attr attrs "m" in
      let* n = int_attr attrs "n" in
      let* k = int_attr attrs "k" in
      let* weight_source =
        match find attrs "ws" with
        | None -> Ok Opspec.Weights
        | Some c -> (
            match source_of_code c with
            | Some s -> Ok s
            | None -> Error (Printf.sprintf "bad source %S" c))
      in
      Ok (Opspec.matmul ~dtype ~weight_source ~name ~m ~n ~k ())
  | "bmm" ->
      let* batch = int_attr attrs "batch" in
      let* m = int_attr attrs "m" in
      let* n = int_attr attrs "n" in
      let* k = int_attr attrs "k" in
      let* rhs_source =
        match find attrs "rhs" with
        | None -> Ok Opspec.Kv_cache
        | Some c -> (
            match source_of_code c with
            | Some s -> Ok s
            | None -> Error (Printf.sprintf "bad source %S" c))
      in
      Ok (Opspec.batch_matmul ~dtype ~rhs_source ~name ~batch ~m ~n ~k ())
  | "softmax" ->
      let* rows = int_attr attrs "rows" in
      let* cols = int_attr attrs "cols" in
      Ok (Opspec.softmax ~dtype ~name ~rows ~cols ())
  | "norm" ->
      let* rows = int_attr attrs "rows" in
      let* cols = int_attr attrs "cols" in
      let kind = Option.value (find attrs "kind") ~default:"rmsnorm" in
      Ok (Opspec.norm ~dtype ~kind ~name ~rows ~cols ())
  | "rope" ->
      let* rows = int_attr attrs "rows" in
      let* cols = int_attr attrs "cols" in
      Ok (Opspec.rope ~dtype ~name ~rows ~cols ())
  | "embedding" ->
      let* rows = int_attr attrs "rows" in
      let* hidden = int_attr attrs "hidden" in
      let vocab = match int_attr attrs "vocab" with Ok v -> max v 1 | Error _ -> 1 in
      Ok (Opspec.embedding ~dtype ~name ~rows ~vocab ~hidden ())
  | "eltwise" ->
      let* kind = req attrs "kind" in
      let* shape_s = req attrs "shape" in
      let* shape = parse_shape shape_s in
      let arity = match int_attr attrs "arity" with Ok a -> a | Error _ -> 1 in
      let fpp =
        match find attrs "fpp" with
        | Some v -> ( try float_of_string v with _ -> 2.)
        | None -> 2.
      in
      Ok (Opspec.elementwise ~dtype ~arity ~flops_per_point:fpp ~name ~kind ~shape ())
  | other -> Error (Printf.sprintf "unknown operator form %S" other)

let import text =
  let lines = String.split_on_char '\n' text in
  let graph_name = ref None in
  let builder = ref None in
  let prev_id = ref (-1) in
  let error = ref None in
  List.iteri
    (fun lineno raw ->
      if !error = None then begin
        let line = String.trim raw in
        if line = "" || line.[0] = '#' then ()
        else
          let tokens =
            String.split_on_char ' ' line |> List.filter (fun t -> t <> "")
          in
          match tokens with
          | "graph" :: name :: [] ->
              graph_name := Some name;
              builder := Some (Graph.builder ~name)
          | "op" :: kind :: rest -> (
              match !builder with
              | None -> error := Some (lineno + 1, "op before graph declaration")
              | Some b -> (
                  match
                    let* attrs = parse_attrs rest in
                    let* op = parse_op kind attrs in
                    let* deps = parse_deps attrs ~prev_id:!prev_id in
                    let layer =
                      match find attrs "layer" with
                      | Some l -> ( try Some (int_of_string l) with _ -> None)
                      | None -> None
                    in
                    let role = Option.value (find attrs "role") ~default:kind in
                    (try Ok (Graph.add b ?layer ~deps ~role op)
                     with Invalid_argument m -> Error m)
                  with
                  | Ok id -> prev_id := id
                  | Error msg -> error := Some (lineno + 1, msg)))
          | _ -> error := Some (lineno + 1, Printf.sprintf "unrecognized line %S" line)
      end)
    lines;
  match (!error, !builder) with
  | Some (line, msg), _ -> Error (Printf.sprintf "line %d: %s" line msg)
  | None, None -> Error "no graph declaration found"
  | None, Some b -> Ok (Graph.finish b)

let import_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  import s

let roundtrip_equal a b =
  Graph.name a = Graph.name b
  && Graph.length a = Graph.length b
  && Array.for_all2
       (fun (x : Graph.node) (y : Graph.node) ->
         x.Graph.op = y.Graph.op && x.Graph.role = y.Graph.role
         && x.Graph.layer = y.Graph.layer && x.Graph.deps = y.Graph.deps)
       (Graph.nodes a) (Graph.nodes b)
