open Elk_tensor

type family = Llama | Gemma | Opt | Dit | Moe of { experts : int; topk : int }

type config = {
  cfg_name : string;
  family : family;
  hidden : int;
  layers : int;
  heads : int;
  kv_heads : int;
  ffn : int;
  vocab : int;
  dit_tokens : int;
}

type phase = Decode of { batch : int; ctx : int } | Prefill of { batch : int; seq : int }

let head_dim cfg =
  if cfg.hidden mod cfg.heads <> 0 then
    invalid_arg (cfg.cfg_name ^ ": hidden not divisible by heads");
  cfg.hidden / cfg.heads

let validate cfg =
  if cfg.hidden <= 0 || cfg.layers <= 0 || cfg.heads <= 0 || cfg.kv_heads <= 0
     || cfg.ffn <= 0 || cfg.vocab <= 0
  then Error (cfg.cfg_name ^ ": nonpositive dimension")
  else if cfg.hidden mod cfg.heads <> 0 then
    Error (cfg.cfg_name ^ ": hidden % heads <> 0")
  else if cfg.heads mod cfg.kv_heads <> 0 then
    Error (cfg.cfg_name ^ ": heads % kv_heads <> 0")
  else Ok ()

(* --- Attention + FFN builders shared by the LLM families ------------- *)

(* [tokens] is the number of token rows flowing through the layer
   (batch for decode, batch*seq for prefill); [kv_len] the attention span;
   [kv_resident] whether K/V come from the HBM-resident cache. *)
type attn_shape = {
  tokens : int;
  kv_len : int;
  batch : int;
  kv_resident : bool;
}

let add_attention b cfg ~layer ~shape ~use_rope ~norm_kind ~after:input_id =
  let d = head_dim cfg in
  let nh = cfg.heads and nkv = cfg.kv_heads in
  let g = cfg.heads / cfg.kv_heads in
  let t = shape.tokens in
  let add = Graph.add b ~layer in
  let norm1 =
    add ~deps:[ input_id ] ~role:"attn_norm"
      (Opspec.norm ~kind:norm_kind ~name:(Printf.sprintf "l%d.attn_norm" layer) ~rows:t
         ~cols:cfg.hidden ())
  in
  let q_proj =
    add ~deps:[ norm1 ] ~role:"q_proj"
      (Opspec.matmul ~name:(Printf.sprintf "l%d.q_proj" layer) ~m:t ~n:(nh * d)
         ~k:cfg.hidden ())
  in
  let k_proj =
    add ~deps:[ norm1 ] ~role:"k_proj"
      (Opspec.matmul ~name:(Printf.sprintf "l%d.k_proj" layer) ~m:t ~n:(nkv * d)
         ~k:cfg.hidden ())
  in
  let v_proj =
    add ~deps:[ norm1 ] ~role:"v_proj"
      (Opspec.matmul ~name:(Printf.sprintf "l%d.v_proj" layer) ~m:t ~n:(nkv * d)
         ~k:cfg.hidden ())
  in
  let q_ready, k_ready =
    if use_rope then
      ( add ~deps:[ q_proj ] ~role:"rope_q"
          (Opspec.rope ~name:(Printf.sprintf "l%d.rope_q" layer) ~rows:t ~cols:(nh * d) ()),
        add ~deps:[ k_proj ] ~role:"rope_k"
          (Opspec.rope ~name:(Printf.sprintf "l%d.rope_k" layer) ~rows:t ~cols:(nkv * d) ())
      )
    else (q_proj, k_proj)
  in
  (* Decode appends this step's K/V to the cache; prefill materializes them
     on chip, so the append degenerates to an on-chip copy either way. *)
  let kv_k =
    add ~deps:[ k_ready ] ~role:"kv_append_k"
      (Opspec.elementwise ~flops_per_point:1.
         ~name:(Printf.sprintf "l%d.kv_append_k" layer)
         ~kind:"copy" ~shape:[ t; nkv * d ] ())
  in
  let kv_v =
    add ~deps:[ v_proj ] ~role:"kv_append_v"
      (Opspec.elementwise ~flops_per_point:1.
         ~name:(Printf.sprintf "l%d.kv_append_v" layer)
         ~kind:"copy" ~shape:[ t; nkv * d ] ())
  in
  let rhs_source = if shape.kv_resident then Opspec.Kv_cache else Opspec.Activation in
  let rows_per_kv_group = g * t / shape.batch in
  let score =
    add ~deps:[ q_ready; kv_k ] ~role:"attn_score"
      (Opspec.batch_matmul ~rhs_source
         ~name:(Printf.sprintf "l%d.attn_score" layer)
         ~batch:(shape.batch * nkv) ~m:rows_per_kv_group ~n:shape.kv_len ~k:d ())
  in
  let scale =
    add ~deps:[ score ] ~role:"attn_scale"
      (Opspec.elementwise ~flops_per_point:1.
         ~name:(Printf.sprintf "l%d.attn_scale" layer)
         ~kind:"scale" ~shape:[ t * nh; shape.kv_len ] ())
  in
  let softmax =
    add ~deps:[ scale ] ~role:"attn_softmax"
      (Opspec.softmax ~name:(Printf.sprintf "l%d.attn_softmax" layer) ~rows:(t * nh)
         ~cols:shape.kv_len ())
  in
  let attn_out =
    add ~deps:[ softmax; kv_v ] ~role:"attn_out"
      (Opspec.batch_matmul ~rhs_source
         ~name:(Printf.sprintf "l%d.attn_out" layer)
         ~batch:(shape.batch * nkv) ~m:rows_per_kv_group ~n:d ~k:shape.kv_len ())
  in
  let o_proj =
    add ~deps:[ attn_out ] ~role:"o_proj"
      (Opspec.matmul ~name:(Printf.sprintf "l%d.o_proj" layer) ~m:t ~n:cfg.hidden
         ~k:(nh * d) ())
  in
  add ~deps:[ o_proj; input_id ] ~role:"attn_residual"
    (Opspec.elementwise ~arity:2 ~flops_per_point:1.
       ~name:(Printf.sprintf "l%d.attn_residual" layer)
       ~kind:"add" ~shape:[ t; cfg.hidden ] ())

let add_gated_ffn b cfg ~layer ~tokens ~norm_kind ~act_kind ~after:input_id =
  let t = tokens in
  let add = Graph.add b ~layer in
  let norm =
    add ~deps:[ input_id ] ~role:"ffn_norm"
      (Opspec.norm ~kind:norm_kind ~name:(Printf.sprintf "l%d.ffn_norm" layer) ~rows:t
         ~cols:cfg.hidden ())
  in
  let gate =
    add ~deps:[ norm ] ~role:"ffn_gate"
      (Opspec.matmul ~name:(Printf.sprintf "l%d.ffn_gate" layer) ~m:t ~n:cfg.ffn
         ~k:cfg.hidden ())
  in
  let up =
    add ~deps:[ norm ] ~role:"ffn_up"
      (Opspec.matmul ~name:(Printf.sprintf "l%d.ffn_up" layer) ~m:t ~n:cfg.ffn
         ~k:cfg.hidden ())
  in
  let act =
    add ~deps:[ gate ] ~role:"ffn_act"
      (Opspec.elementwise ~flops_per_point:4.
         ~name:(Printf.sprintf "l%d.ffn_act" layer)
         ~kind:act_kind ~shape:[ t; cfg.ffn ] ())
  in
  let mul =
    add ~deps:[ act; up ] ~role:"ffn_mul"
      (Opspec.elementwise ~arity:2 ~flops_per_point:1.
         ~name:(Printf.sprintf "l%d.ffn_mul" layer)
         ~kind:"mul" ~shape:[ t; cfg.ffn ] ())
  in
  let down =
    add ~deps:[ mul ] ~role:"ffn_down"
      (Opspec.matmul ~name:(Printf.sprintf "l%d.ffn_down" layer) ~m:t ~n:cfg.hidden
         ~k:cfg.ffn ())
  in
  add ~deps:[ down; input_id ] ~role:"ffn_residual"
    (Opspec.elementwise ~arity:2 ~flops_per_point:1.
       ~name:(Printf.sprintf "l%d.ffn_residual" layer)
       ~kind:"add" ~shape:[ t; cfg.hidden ] ())

(* Mixture-of-experts FFN (paper §7): a router picks [topk] of [experts]
   same-shaped expert FFNs per token; at compile time Elk plans a generic
   expert and only the selected experts' tensors are preloaded, so the
   graph carries [topk] expert instances per layer. *)
let add_moe_ffn b cfg ~layer ~tokens ~experts ~topk ~after:input_id =
  let t = tokens in
  let add = Graph.add b ~layer in
  let norm =
    add ~deps:[ input_id ] ~role:"ffn_norm"
      (Opspec.norm ~kind:"rmsnorm" ~name:(Printf.sprintf "l%d.ffn_norm" layer) ~rows:t
         ~cols:cfg.hidden ())
  in
  let router =
    add ~deps:[ norm ] ~role:"router"
      (Opspec.matmul ~name:(Printf.sprintf "l%d.router" layer) ~m:t ~n:experts
         ~k:cfg.hidden ())
  in
  let outs =
    List.init topk (fun e ->
        let gate =
          add ~deps:[ router ] ~role:"expert_gate"
            (Opspec.matmul ~name:(Printf.sprintf "l%d.e%d.gate" layer e) ~m:t ~n:cfg.ffn
               ~k:cfg.hidden ())
        in
        let up =
          add ~deps:[ router ] ~role:"expert_up"
            (Opspec.matmul ~name:(Printf.sprintf "l%d.e%d.up" layer e) ~m:t ~n:cfg.ffn
               ~k:cfg.hidden ())
        in
        let act =
          add ~deps:[ gate ] ~role:"expert_act"
            (Opspec.elementwise ~flops_per_point:4.
               ~name:(Printf.sprintf "l%d.e%d.silu" layer e)
               ~kind:"silu" ~shape:[ t; cfg.ffn ] ())
        in
        let mul =
          add ~deps:[ act; up ] ~role:"expert_mul"
            (Opspec.elementwise ~arity:2 ~flops_per_point:1.
               ~name:(Printf.sprintf "l%d.e%d.mul" layer e)
               ~kind:"mul" ~shape:[ t; cfg.ffn ] ())
        in
        add ~deps:[ mul ] ~role:"expert_down"
          (Opspec.matmul ~name:(Printf.sprintf "l%d.e%d.down" layer e) ~m:t ~n:cfg.hidden
             ~k:cfg.ffn ()))
  in
  add ~deps:(input_id :: outs) ~role:"ffn_residual"
    (Opspec.elementwise ~arity:2 ~flops_per_point:1.
       ~name:(Printf.sprintf "l%d.moe_residual" layer)
       ~kind:"add" ~shape:[ t; cfg.hidden ] ())

let add_mlp_ffn b cfg ~layer ~tokens ~after:input_id =
  (* OPT-style two-matmul FFN with ReLU and LayerNorm. *)
  let t = tokens in
  let add = Graph.add b ~layer in
  let norm =
    add ~deps:[ input_id ] ~role:"ffn_norm"
      (Opspec.norm ~kind:"layernorm" ~name:(Printf.sprintf "l%d.ffn_norm" layer) ~rows:t
         ~cols:cfg.hidden ())
  in
  let fc1 =
    add ~deps:[ norm ] ~role:"ffn_up"
      (Opspec.matmul ~name:(Printf.sprintf "l%d.fc1" layer) ~m:t ~n:cfg.ffn ~k:cfg.hidden
         ())
  in
  let act =
    add ~deps:[ fc1 ] ~role:"ffn_act"
      (Opspec.elementwise ~flops_per_point:1.
         ~name:(Printf.sprintf "l%d.relu" layer)
         ~kind:"relu" ~shape:[ t; cfg.ffn ] ())
  in
  let fc2 =
    add ~deps:[ act ] ~role:"ffn_down"
      (Opspec.matmul ~name:(Printf.sprintf "l%d.fc2" layer) ~m:t ~n:cfg.hidden ~k:cfg.ffn
         ())
  in
  add ~deps:[ fc2; input_id ] ~role:"ffn_residual"
    (Opspec.elementwise ~arity:2 ~flops_per_point:1.
       ~name:(Printf.sprintf "l%d.ffn_residual" layer)
       ~kind:"add" ~shape:[ t; cfg.hidden ] ())

let build_llm cfg phase =
  let tokens, kv_len, batch, kv_resident =
    match phase with
    | Decode { batch; ctx } -> (batch, ctx, batch, true)
    | Prefill { batch; seq } -> (batch * seq, seq, batch, false)
  in
  let shape = { tokens; kv_len; batch; kv_resident } in
  let use_rope = cfg.family <> Opt in
  let norm_kind = if cfg.family = Opt then "layernorm" else "rmsnorm" in
  let act_kind = if cfg.family = Gemma then "gelu" else "silu" in
  let b = Graph.builder ~name:cfg.cfg_name in
  let embed =
    Graph.add b ~role:"embedding"
      (Opspec.embedding ~name:"embedding" ~rows:tokens ~vocab:cfg.vocab ~hidden:cfg.hidden
         ())
  in
  let last = ref embed in
  for layer = 0 to cfg.layers - 1 do
    let after_attn = add_attention b cfg ~layer ~shape ~use_rope ~norm_kind ~after:!last in
    let after_ffn =
      match cfg.family with
      | Opt -> add_mlp_ffn b cfg ~layer ~tokens ~after:after_attn
      | Moe { experts; topk } ->
          add_moe_ffn b cfg ~layer ~tokens ~experts ~topk ~after:after_attn
      | Llama | Gemma | Dit ->
          add_gated_ffn b cfg ~layer ~tokens ~norm_kind ~act_kind ~after:after_attn
    in
    last := after_ffn
  done;
  let final_norm =
    Graph.add b ~deps:[ !last ] ~role:"final_norm"
      (Opspec.norm ~kind:norm_kind ~name:"final_norm" ~rows:tokens ~cols:cfg.hidden ())
  in
  let _head =
    Graph.add b ~deps:[ final_norm ] ~role:"lm_head"
      (Opspec.matmul ~name:"lm_head" ~m:tokens ~n:cfg.vocab ~k:cfg.hidden ())
  in
  Graph.finish b

let build_dit cfg phase =
  let batch = match phase with Decode { batch; _ } | Prefill { batch; _ } -> batch in
  let tok = cfg.dit_tokens in
  let t = batch * tok in
  let d = head_dim cfg in
  let nh = cfg.heads in
  let b = Graph.builder ~name:cfg.cfg_name in
  let patchify =
    Graph.add b ~role:"patchify"
      (Opspec.conv_patchify ~name:"patchify" ~tokens:t ~in_dim:16 ~out_dim:cfg.hidden ())
  in
  let last = ref patchify in
  for layer = 0 to cfg.layers - 1 do
    let add = Graph.add b ~layer in
    let modulation =
      add ~deps:[ !last ] ~role:"adaln"
        (Opspec.matmul ~name:(Printf.sprintf "l%d.adaln" layer) ~m:batch
           ~n:(6 * cfg.hidden) ~k:cfg.hidden ())
    in
    let norm1 =
      add ~deps:[ !last; modulation ] ~role:"attn_norm"
        (Opspec.norm ~kind:"layernorm" ~name:(Printf.sprintf "l%d.norm1" layer) ~rows:t
           ~cols:cfg.hidden ())
    in
    let qkv =
      add ~deps:[ norm1 ] ~role:"qkv_proj"
        (Opspec.matmul ~name:(Printf.sprintf "l%d.qkv" layer) ~m:t ~n:(3 * cfg.hidden)
           ~k:cfg.hidden ())
    in
    let score =
      add ~deps:[ qkv ] ~role:"attn_score"
        (Opspec.batch_matmul ~rhs_source:Opspec.Activation
           ~name:(Printf.sprintf "l%d.attn_score" layer)
           ~batch:(batch * nh) ~m:tok ~n:tok ~k:d ())
    in
    let softmax =
      add ~deps:[ score ] ~role:"attn_softmax"
        (Opspec.softmax ~name:(Printf.sprintf "l%d.softmax" layer) ~rows:(batch * nh * tok)
           ~cols:tok ())
    in
    let attn_out =
      add ~deps:[ softmax; qkv ] ~role:"attn_out"
        (Opspec.batch_matmul ~rhs_source:Opspec.Activation
           ~name:(Printf.sprintf "l%d.attn_out" layer)
           ~batch:(batch * nh) ~m:tok ~n:d ~k:tok ())
    in
    let proj =
      add ~deps:[ attn_out ] ~role:"o_proj"
        (Opspec.matmul ~name:(Printf.sprintf "l%d.proj" layer) ~m:t ~n:cfg.hidden
           ~k:cfg.hidden ())
    in
    let res1 =
      add ~deps:[ proj; !last ] ~role:"attn_residual"
        (Opspec.elementwise ~arity:2 ~flops_per_point:2.
           ~name:(Printf.sprintf "l%d.gate_res1" layer)
           ~kind:"add" ~shape:[ t; cfg.hidden ] ())
    in
    let norm2 =
      add ~deps:[ res1; modulation ] ~role:"ffn_norm"
        (Opspec.norm ~kind:"layernorm" ~name:(Printf.sprintf "l%d.norm2" layer) ~rows:t
           ~cols:cfg.hidden ())
    in
    let up =
      add ~deps:[ norm2 ] ~role:"ffn_up"
        (Opspec.matmul ~name:(Printf.sprintf "l%d.ffn_up" layer) ~m:t ~n:cfg.ffn
           ~k:cfg.hidden ())
    in
    let act =
      add ~deps:[ up ] ~role:"ffn_act"
        (Opspec.elementwise ~flops_per_point:4.
           ~name:(Printf.sprintf "l%d.gelu" layer)
           ~kind:"gelu" ~shape:[ t; cfg.ffn ] ())
    in
    let down =
      add ~deps:[ act ] ~role:"ffn_down"
        (Opspec.matmul ~name:(Printf.sprintf "l%d.ffn_down" layer) ~m:t ~n:cfg.hidden
           ~k:cfg.ffn ())
    in
    let res2 =
      add ~deps:[ down; res1 ] ~role:"ffn_residual"
        (Opspec.elementwise ~arity:2 ~flops_per_point:2.
           ~name:(Printf.sprintf "l%d.gate_res2" layer)
           ~kind:"add" ~shape:[ t; cfg.hidden ] ())
    in
    last := res2
  done;
  let final_norm =
    Graph.add b ~deps:[ !last ] ~role:"final_norm"
      (Opspec.norm ~kind:"layernorm" ~name:"final_norm" ~rows:t ~cols:cfg.hidden ())
  in
  let _final =
    Graph.add b ~deps:[ final_norm ] ~role:"final_proj"
      (Opspec.matmul ~name:"final_proj" ~m:t ~n:32 ~k:cfg.hidden ())
  in
  Graph.finish b

let build cfg phase =
  (match validate cfg with Ok () -> () | Error m -> invalid_arg ("Zoo.build: " ^ m));
  match cfg.family with
  | Llama | Gemma | Opt | Moe _ -> build_llm cfg phase
  | Dit -> build_dit cfg phase

let param_bytes cfg =
  (* Count weight bytes from a batch-1 decode graph: every [Weights] input. *)
  let g = build cfg (Decode { batch = 1; ctx = 1 }) in
  Graph.nodes g
  |> Array.to_list
  |> List.concat_map (fun n ->
         List.filter_map
           (fun (tensor : Opspec.tensor) ->
             match tensor.Opspec.source with
             | Opspec.Weights -> Some (Opspec.tensor_bytes n.Graph.op tensor)
             | _ -> None)
           n.Graph.op.Opspec.inputs)
  |> List.fold_left ( +. ) 0.

let cast_dtype dtype graph =
  let b = Graph.builder ~name:(Graph.name graph ^ "@" ^ Dtype.to_string dtype) in
  Array.iter
    (fun (node : Graph.node) ->
      ignore
        (Graph.add b ?layer:node.Graph.layer ~deps:node.Graph.deps ~role:node.Graph.role
           { node.Graph.op with Opspec.dtype }))
    (Graph.nodes graph);
  Graph.finish b

let scale cfg ~factor ~layer_factor =
  let div1 x f = max 1 (x / f) in
  {
    cfg with
    cfg_name = Printf.sprintf "%s/%dx%d" cfg.cfg_name factor layer_factor;
    hidden = div1 cfg.hidden factor;
    ffn = div1 cfg.ffn factor;
    vocab = div1 cfg.vocab factor;
    heads = div1 cfg.heads factor;
    kv_heads = div1 cfg.kv_heads factor;
    layers = max 2 (cfg.layers / layer_factor);
  }

let llama2_13b =
  {
    cfg_name = "llama2-13b";
    family = Llama;
    hidden = 5120;
    layers = 40;
    heads = 40;
    kv_heads = 40;
    ffn = 13824;
    vocab = 32000;
    dit_tokens = 0;
  }

let llama2_70b =
  {
    cfg_name = "llama2-70b";
    family = Llama;
    hidden = 8192;
    layers = 80;
    heads = 64;
    kv_heads = 8;
    ffn = 28672;
    vocab = 32000;
    dit_tokens = 0;
  }

let gemma2_27b =
  {
    cfg_name = "gemma2-27b";
    family = Gemma;
    hidden = 4608;
    layers = 46;
    heads = 32;
    kv_heads = 16;
    ffn = 36864;
    vocab = 256000;
    dit_tokens = 0;
  }

let opt_30b =
  {
    cfg_name = "opt-30b";
    family = Opt;
    hidden = 7168;
    layers = 48;
    heads = 56;
    kv_heads = 56;
    ffn = 28672;
    vocab = 50272;
    dit_tokens = 0;
  }

let dit_xl =
  {
    cfg_name = "dit-xl";
    family = Dit;
    hidden = 1152;
    layers = 28;
    heads = 16;
    kv_heads = 16;
    ffn = 4608;
    vocab = 1;
    dit_tokens = 256;
  }

let mixtral_8x7b =
  {
    cfg_name = "mixtral-8x7b";
    family = Moe { experts = 8; topk = 2 };
    hidden = 4096;
    layers = 32;
    heads = 32;
    kv_heads = 8;
    ffn = 14336;
    vocab = 32000;
    dit_tokens = 0;
  }

let all = [ llama2_13b; gemma2_27b; opt_30b; llama2_70b; dit_xl; mixtral_8x7b ]
let by_name n = List.find_opt (fun c -> c.cfg_name = n) all
