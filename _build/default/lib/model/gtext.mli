(** Textual operator-graph format: the import/export path standing in for
    the paper's ONNX frontend (§5).

    The paper's Elk ingests any model expressible as an ONNX graph; this
    module provides the equivalent boundary for this implementation — a
    line-oriented, human-writable description of an operator graph that
    round-trips losslessly through {!export}/{!import}, so models can be
    produced by external tools, checked into test fixtures, or edited by
    hand.

    Format (one declaration per line, [#] comments, blank lines ignored):

    {v
    graph llama-mini
    op matmul    name=l0.q_proj  role=q_proj layer=0 deps=2   m=32 n=640 k=640
    op softmax   name=l0.softmax role=attn_softmax layer=0 deps=4 rows=160 cols=256
    op norm      name=l0.norm    role=attn_norm layer=0 deps=0 rows=32 cols=640 kind=rmsnorm
    op bmm       name=l0.score   role=attn_score layer=0 deps=3,5 batch=40 m=1 n=256 k=128 rhs=kv
    op eltwise   name=l0.add     role=attn_residual deps=1,6 kind=add shape=32x640 arity=2 fpp=1
    op rope      name=l0.rope    role=rope_q layer=0 deps=1 rows=32 cols=640
    op embedding name=emb        role=embedding rows=32 vocab=32000 hidden=640
    v}

    Operator ids are implicit (declaration order); [deps] lists refer to
    earlier declarations and default to the previous operator. *)

val export : Graph.t -> string
(** Serialize a graph.  Raises [Invalid_argument] on operators whose kind
    is not expressible in the format (none of the zoo's are). *)

val import : string -> (Graph.t, string) result
(** Parse a graph.  Errors carry the line number and the reason. *)

val import_file : string -> (Graph.t, string) result
(** {!import} on a file's contents. *)

val roundtrip_equal : Graph.t -> Graph.t -> bool
(** Structural equality used by the round-trip tests: same name, node
    count, and per-node (op, role, layer, deps). *)
