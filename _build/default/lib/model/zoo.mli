(** Model zoo: declarative builders for the paper's evaluation models
    (Table 2) — Llama2-13B/70B, Gemma2-27B, OPT-30B and DiT-XL — expanded
    into {!Graph.t} operator DAGs.

    This replaces the PyTorch→ONNX frontend of the paper (§5): the
    published architecture configurations are expanded operator by operator
    (projections, rope, KV-cache reads, attention matmuls, norms, FFN,
    residuals), with weights and KV cache marked HBM-resident exactly as
    the paper's execution model assumes.  Operator granularity differs
    slightly from the authors' ONNX export (we do not emit reshape/cast
    no-ops), so absolute N in Table 2 differs; all shape-dependent
    quantities match the published model configs. *)

(** [Moe] carries the expert count and the per-token active expert count
    (top-k); the built graph contains a router plus [topk] generic-expert
    FFN instances per layer — the paper's §7 compile-time treatment of
    MoE, where only selected experts' tensors are preloaded at runtime. *)
type family = Llama | Gemma | Opt | Dit | Moe of { experts : int; topk : int }

type config = {
  cfg_name : string;
  family : family;
  hidden : int;
  layers : int;
  heads : int;
  kv_heads : int;  (** = [heads] without GQA. *)
  ffn : int;  (** FFN intermediate size. *)
  vocab : int;
  dit_tokens : int;  (** latent token count; only used by [Dit]. *)
}

(** Workload phase.  [Decode] is one autoregressive step with a KV cache of
    [ctx] tokens (the paper's main workload); [Prefill] processes [seq]
    fresh tokens per request and doubles as the training forward pass
    (Fig 24). *)
type phase = Decode of { batch : int; ctx : int } | Prefill of { batch : int; seq : int }

val head_dim : config -> int
(** [hidden / heads].  Raises [Invalid_argument] if not divisible. *)

val validate : config -> (unit, string) result
(** Sanity-check divisibility and positivity constraints. *)

val build : config -> phase -> Graph.t
(** Expand a configuration into an operator graph for one full forward
    pass of the given phase (embedding, all layers, final norm + head). *)

val param_bytes : config -> float
(** Total weight bytes (fp16) — the model-size ballpark used in scaling
    sanity checks. *)

val cast_dtype : Elk_tensor.Dtype.t -> Graph.t -> Graph.t
(** Re-type every operator's tensors (weight quantization in the coarse,
    whole-graph sense the paper's §8 compatibility claim needs: dtype
    changes shrink HBM/SRAM volumes but "do not change the execution
    pattern").  Structure, roles and dependencies are preserved. *)

val scale : config -> factor:int -> layer_factor:int -> config
(** [scale cfg ~factor ~layer_factor] shrinks a configuration for
    laptop-scale experiments: width-like dimensions (hidden, ffn, vocab,
    heads, kv_heads) divided by [factor], layer count by [layer_factor].
    Head geometry is preserved ([head_dim] unchanged); all divisions are
    clamped to at least 1 (2 for layers). *)

(** {1 Presets (published configurations)} *)

val llama2_13b : config
val llama2_70b : config
val gemma2_27b : config
val opt_30b : config
val dit_xl : config

val mixtral_8x7b : config
(** Mixtral-8x7B (8 experts, top-2): the MoE configuration for the §7
    discussion; not part of the paper's Table 2. *)

val all : config list
(** The five evaluation models in the paper's Table 2 order, plus
    {!mixtral_8x7b}. *)

val by_name : string -> config option
(** Look up a preset by [cfg_name]. *)
