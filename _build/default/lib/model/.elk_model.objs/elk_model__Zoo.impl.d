lib/model/zoo.ml: Array Dtype Elk_tensor Graph List Opspec Printf
