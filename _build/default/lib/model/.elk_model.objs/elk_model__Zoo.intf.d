lib/model/zoo.mli: Elk_tensor Graph
