lib/model/graph.mli: Elk_tensor Format
