lib/model/graph.ml: Array Elk_tensor Elk_util Format List Printf
