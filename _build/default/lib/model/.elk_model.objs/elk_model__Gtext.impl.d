lib/model/gtext.ml: Array Buffer Dtype Elk_tensor Graph List Opspec Option Printf String
