lib/model/gtext.mli: Graph
