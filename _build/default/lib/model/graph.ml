type node = {
  id : int;
  op : Elk_tensor.Opspec.t;
  layer : int option;
  role : string;
  deps : int list;
}

type t = { g_name : string; g_nodes : node array }

let name t = t.g_name
let nodes t = t.g_nodes

type builder = { b_name : string; mutable rev_nodes : node list; mutable count : int }

let builder ~name = { b_name = name; rev_nodes = []; count = 0 }

let add b ?layer ?deps ~role op =
  (match Elk_tensor.Opspec.validate op with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Graph.add: invalid op: " ^ msg));
  let id = b.count in
  let deps =
    match deps with
    | Some ds -> ds
    | None -> if id = 0 then [] else [ id - 1 ]
  in
  List.iter
    (fun d ->
      if d < 0 || d >= id then
        invalid_arg (Printf.sprintf "Graph.add: node %d depends on invalid id %d" id d))
    deps;
  b.rev_nodes <- { id; op; layer; role; deps } :: b.rev_nodes;
  b.count <- id + 1;
  id

let finish b = { g_name = b.b_name; g_nodes = Array.of_list (List.rev b.rev_nodes) }

let length t = Array.length t.g_nodes
let get t i = t.g_nodes.(i)
let ops t = Array.to_list t.g_nodes |> List.map (fun n -> n.op)

let total_flops t =
  Array.fold_left (fun a n -> a +. Elk_tensor.Opspec.flops n.op) 0. t.g_nodes

let total_hbm_bytes t =
  Array.fold_left (fun a n -> a +. Elk_tensor.Opspec.hbm_bytes n.op) 0. t.g_nodes

let mean_hbm_bytes t =
  match length t with 0 -> 0. | n -> total_hbm_bytes t /. float_of_int n

let hbm_heavy_ids t =
  let threshold = mean_hbm_bytes t in
  Array.to_list t.g_nodes
  |> List.filter_map (fun n ->
         if Elk_tensor.Opspec.is_hbm_heavy n.op ~threshold then Some n.id else None)

let layer_ids t =
  Array.to_list t.g_nodes
  |> List.filter_map (fun n -> n.layer)
  |> List.sort_uniq compare

let nodes_of_layer t l =
  Array.to_list t.g_nodes |> List.filter (fun n -> n.layer = Some l)

let is_valid_order t order =
  let n = length t in
  let pos = Array.make n (-1) in
  let ok_perm =
    List.length order = n
    && List.for_all
         (fun id ->
           id >= 0 && id < n
           &&
           if pos.(id) >= 0 then false
           else begin
             pos.(id) <- 0;
             true
           end)
         order
  in
  if not ok_perm then false
  else begin
    List.iteri (fun i id -> pos.(id) <- i) order;
    Array.for_all
      (fun node -> List.for_all (fun d -> pos.(d) < pos.(node.id)) node.deps)
      t.g_nodes
  end

let pp_summary fmt t =
  Format.fprintf fmt "model %s: %d ops, %.3g GFLOPs, %a HBM, %d layers" t.g_name
    (length t)
    (total_flops t /. 1e9)
    Elk_util.Units.pp_bytes (total_hbm_bytes t)
    (List.length (layer_ids t))
