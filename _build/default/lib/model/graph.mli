(** Operator graphs: the DAG the Elk frontend extracts from an ONNX model
    (paper §5, frontend step).

    We substitute the PyTorch→ONNX path with declarative model builders
    ({!module:Zoo}), but keep the same downstream contract: a directed
    acyclic graph of {!Elk_tensor.Opspec.t} nodes with data-dependency
    edges, a stable topological linearization (the execution order all of
    Elk's scheduling operates on), and per-node metadata — the transformer
    layer a node belongs to (for the identical-layer pruning rule of §4.4)
    and a role tag. *)

type node = {
  id : int;  (** dense index, equal to the node's position. *)
  op : Elk_tensor.Opspec.t;
  layer : int option;  (** transformer-layer index; [None] for pre/post ops. *)
  role : string;  (** position-independent tag, e.g. ["ffn_up"]. *)
  deps : int list;  (** ids of producing nodes, all [< id]. *)
}

type t
(** An immutable operator graph. *)

val name : t -> string
val nodes : t -> node array

(** {1 Construction} *)

type builder
(** Append-only builder that assigns dense ids. *)

val builder : name:string -> builder

val add :
  builder -> ?layer:int -> ?deps:int list -> role:string -> Elk_tensor.Opspec.t -> int
(** Append a node and return its id.  [deps] defaults to the previously
    added node (sequential chaining), or [] for the first node.  Raises
    [Invalid_argument] on a forward/ self dependency or an invalid opspec. *)

val finish : builder -> t
(** Freeze the builder.  The node order is the execution order. *)

(** {1 Queries} *)

val length : t -> int
val get : t -> int -> node
val ops : t -> Elk_tensor.Opspec.t list
val total_flops : t -> float
val total_hbm_bytes : t -> float

val mean_hbm_bytes : t -> float
(** Average HBM volume per operator — the paper's threshold for deciding
    which operators are "HBM-heavy" (§4.4: "tensor sizes above average"). *)

val hbm_heavy_ids : t -> int list
(** Ids of operators whose HBM volume is >= {!mean_hbm_bytes}. *)

val layer_ids : t -> int list
(** Distinct layer indices present, ascending. *)

val nodes_of_layer : t -> int -> node list
(** Nodes tagged with a given layer, in execution order. *)

val is_valid_order : t -> int list -> bool
(** [is_valid_order t order] checks [order] is a permutation of all ids
    that respects every dependency edge. *)

val pp_summary : Format.formatter -> t -> unit
(** Multi-line summary: op count, FLOPs, HBM volume, layers. *)
