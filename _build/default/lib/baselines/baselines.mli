(** The designs compared in the paper's evaluation (§6.1).

    - [Basic]: existing-compiler behaviour — maximize execution space and
      preload only the next operator into whatever space is left.
    - [Static]: T10 extended with HBM support — one fixed preload/execution
      space split for the whole model (best split found by grid search),
      operators preloaded in order into the static budget; preload-state
      options all-largest or all-smallest, whichever is faster.
    - [Elk_dyn]: Elk without preload reordering (§4.2 + §4.3 only).
    - [Elk_full]: the complete Elk design (§4.2-§4.4).
    - [Ideal]: the roofline — dedicated interconnects for preload and
      execution, full-size memory for every operator, zero
      data-distribution latency; latency = max(sum of best execution
      times, HBM roofline time). *)

type design = Basic | Static | Elk_dyn | Elk_full | Ideal

val name : design -> string
val all : design list
(** In presentation order: Basic, Static, Elk-Dyn, Elk-Full, Ideal. *)

type outcome = {
  design : design;
  latency : float;  (** end-to-end forward latency incl. all-reduce. *)
  timeline : Elk.Timeline.result option;  (** [None] for [Ideal]. *)
  hbm_util : float;
  noc_util : float;
  achieved_flops : float;
}

val plan :
  ?elk_options:Elk.Compile.options ->
  Elk_partition.Partition.ctx ->
  pod:Elk_arch.Arch.pod ->
  Elk_model.Graph.t ->
  design ->
  Elk.Schedule.t option
(** Produce the per-chip schedule a design generates for a model ([None]
    for [Ideal], which is a roofline rather than a schedule).  The graph
    is sharded across the pod's chips internally. *)

val run :
  ?elk_options:Elk.Compile.options ->
  Elk_partition.Partition.ctx ->
  pod:Elk_arch.Arch.pod ->
  Elk_model.Graph.t ->
  design ->
  outcome
(** Plan and evaluate one design on one model.  All designs share the
    partition-plan enumeration, cost model and timeline evaluator, so
    differences are purely the scheduling policies. *)

val basic_schedule : Elk_partition.Partition.ctx -> Elk_model.Graph.t -> Elk.Schedule.t
(** The [Basic] planner, exposed for tests. *)

val static_schedule :
  Elk_partition.Partition.ctx -> Elk_model.Graph.t ->
  preload_budget:float -> use_max_popt:bool -> Elk.Schedule.t option
(** The [Static] planner at one (budget, variant) grid point; [None] if no
    execution plan fits the remaining space. *)
