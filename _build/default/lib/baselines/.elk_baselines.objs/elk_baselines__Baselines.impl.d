lib/baselines/baselines.ml: Array Elk Elk_arch Elk_cost Elk_model Elk_partition Float Graph List Option
