lib/baselines/baselines.mli: Elk Elk_arch Elk_model Elk_partition
