open Elk_model
module P = Elk_partition.Partition

type design = Basic | Static | Elk_dyn | Elk_full | Ideal

let name = function
  | Basic -> "Basic"
  | Static -> "Static"
  | Elk_dyn -> "Elk-Dyn"
  | Elk_full -> "Elk-Full"
  | Ideal -> "Ideal"

let all = [ Basic; Static; Elk_dyn; Elk_full; Ideal ]

type outcome = {
  design : design;
  latency : float;
  timeline : Elk.Timeline.result option;
  hbm_util : float;
  noc_util : float;
  achieved_flops : float;
}

let popt_within ctx op plan ~space =
  let opts = P.preload_options ctx op plan in
  let fitting = List.filter (fun o -> o.P.preload_space <= space) opts in
  match (fitting, opts) with
  | _ :: _, _ ->
      (* Largest fitting option: most broadcast, least distribution. *)
      List.fold_left
        (fun acc o -> if o.P.preload_space >= acc.P.preload_space then o else acc)
        (List.hd fitting) fitting
  | [], first :: _ -> first
  | [], [] -> assert false

let entry_of ctx graph id plan popt =
  {
    Elk.Schedule.node_id = id;
    plan;
    popt;
    preload_len = Elk.Schedule.preload_time ctx (Graph.get graph id).Graph.op popt;
    dist_time = popt.P.dist_time;
  }

let basic_schedule ctx graph =
  let n = Graph.length graph in
  let chip = P.ctx_chip ctx in
  let capacity = Elk_arch.Arch.usable_sram_per_core chip in
  let plans = Array.init n (fun i -> P.fastest_plan ctx (Graph.get graph i).Graph.op) in
  let popts =
    Array.init n (fun i ->
        (* Op i is preloaded into the space left over by the operator
           executing while it loads (op i-1); the first op has the whole
           memory to itself. *)
        let left =
          if i = 0 then capacity
          else Float.max 0. (capacity -. plans.(i - 1).P.exec_space)
        in
        popt_within ctx (Graph.get graph i).Graph.op plans.(i) ~space:left)
  in
  let windows = Array.make (n + 1) 0 in
  windows.(0) <- 1;
  for i = 1 to n - 1 do
    windows.(i) <- 1
  done;
  {
    Elk.Schedule.graph;
    order = Array.init n (fun i -> i);
    windows;
    entries = Array.init n (fun i -> entry_of ctx graph i plans.(i) popts.(i));
    est_total = 0.;
  }

let static_schedule ctx graph ~preload_budget ~use_max_popt =
  let n = Graph.length graph in
  let chip = P.ctx_chip ctx in
  let capacity = Elk_arch.Arch.usable_sram_per_core chip in
  let exec_space = capacity -. preload_budget in
  let plans =
    Array.init n (fun i ->
        P.fastest_plan_within ctx (Graph.get graph i).Graph.op ~space:exec_space)
  in
  if Array.exists (fun p -> p = None) plans then None
  else begin
    let plans = Array.map Option.get plans in
    let popts =
      Array.init n (fun i ->
          let opts = P.preload_options ctx (Graph.get graph i).Graph.op plans.(i) in
          if use_max_popt then List.nth opts (List.length opts - 1) else List.hd opts)
    in
    let windows = Array.make (n + 1) 0 in
    let resident = ref 0. and cursor = ref 0 in
    for i = 0 to n - 1 do
      (* Window [i] is issued while op [i-1] executes, so ops [0..i-2]
         have freed their preload space; fill the static budget as far as
         possible, but always force the operator about to execute to be
         preloaded. *)
      if i > 1 then resident := Float.max 0. (!resident -. popts.(i - 2).P.preload_space);
      let count = ref 0 in
      let continue = ref true in
      while !continue && !cursor < n do
        let space = popts.(!cursor).P.preload_space in
        if !resident +. space <= preload_budget || !cursor <= i then begin
          resident := !resident +. space;
          incr cursor;
          incr count
        end
        else continue := false
      done;
      windows.(i) <- !count
    done;
    (* Any leftovers trail in the last window. *)
    windows.(n) <- n - Array.fold_left ( + ) 0 windows;
    if windows.(n) < 0 then None
    else
      Some
        {
          Elk.Schedule.graph;
          order = Array.init n (fun i -> i);
          windows;
          entries = Array.init n (fun i -> entry_of ctx graph i plans.(i) popts.(i));
          est_total = 0.;
        }
  end

let outcome_of_timeline design pod tl allreduce =
  {
    design;
    latency = tl.Elk.Timeline.total +. allreduce;
    timeline = Some tl;
    hbm_util = tl.Elk.Timeline.hbm_util;
    noc_util = tl.Elk.Timeline.noc_util;
    achieved_flops =
      tl.Elk.Timeline.achieved_flops *. float_of_int pod.Elk_arch.Arch.chips;
  }

let run_ideal ctx ~pod chip_graph =
  let chip = P.ctx_chip ctx in
  let cost = P.ctx_cost ctx in
  let exec_total =
    Array.fold_left
      (fun acc (node : Graph.node) ->
        acc +. (P.fastest_plan ctx node.Graph.op).P.exec_time)
      0. (Graph.nodes chip_graph)
  in
  let hbm_bytes = Graph.total_hbm_bytes chip_graph in
  let hbm_total = Elk_cost.Costmodel.hbm_time cost ~bytes:hbm_bytes in
  let allreduce = Elk.Sharding.allreduce_time pod chip_graph in
  let total = Float.max exec_total hbm_total in
  let exchange =
    Array.fold_left
      (fun acc (node : Graph.node) ->
        let pl = P.fastest_plan ctx node.Graph.op in
        acc +. (pl.P.exchange_bytes_per_core *. float_of_int pl.P.cores_used))
      0. (Graph.nodes chip_graph)
  in
  {
    design = Ideal;
    latency = total +. allreduce;
    timeline = None;
    hbm_util = (if total > 0. then hbm_bytes /. (chip.Elk_arch.Arch.hbm_bandwidth *. total) else 0.);
    noc_util =
      (if total > 0. then
         exchange /. (Elk_arch.Arch.aggregate_intercore_bw chip *. total)
       else 0.);
    achieved_flops =
      (if total > 0. then
         Graph.total_flops chip_graph /. total *. float_of_int pod.Elk_arch.Arch.chips
       else 0.);
  }

let plan ?elk_options ctx ~pod graph design =
  let chips = pod.Elk_arch.Arch.chips in
  let chip_graph = Elk.Opsplit.split_graph ctx (Elk.Sharding.shard_graph ~chips graph) in
  match design with
  | Basic -> Some (basic_schedule ctx chip_graph)
  | Static ->
      let chip = P.ctx_chip ctx in
      let capacity = Elk_arch.Arch.usable_sram_per_core chip in
      let grid = [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8 ] in
      let best = ref None in
      List.iter
        (fun frac ->
          List.iter
            (fun use_max_popt ->
              match
                static_schedule ctx chip_graph ~preload_budget:(frac *. capacity)
                  ~use_max_popt
              with
              | None -> ()
              | Some s -> (
                  match Elk.Schedule.validate s with
                  | Error _ -> ()
                  | Ok () ->
                      let tl = Elk.Timeline.evaluate ctx s in
                      (match !best with
                      | Some (bt, _) when bt <= tl.Elk.Timeline.total -> ()
                      | _ -> best := Some (tl.Elk.Timeline.total, s))))
            [ false; true ])
        grid;
      (match !best with
      | Some (_, s) -> Some s
      | None -> Some (basic_schedule ctx chip_graph))
  | Elk_dyn ->
      let options =
        match elk_options with
        | Some o -> { o with Elk.Compile.reorder = false }
        | None -> Elk.Compile.dyn_options
      in
      let c = Elk.Compile.compile ~options ctx ~pod graph in
      Some c.Elk.Compile.schedule
  | Elk_full ->
      let options = Option.value elk_options ~default:Elk.Compile.default_options in
      let c = Elk.Compile.compile ~options ctx ~pod graph in
      Some c.Elk.Compile.schedule
  | Ideal -> None

let run ?elk_options ctx ~pod graph design =
  let chips = pod.Elk_arch.Arch.chips in
  let chip_graph = Elk.Opsplit.split_graph ctx (Elk.Sharding.shard_graph ~chips graph) in
  let allreduce = Elk.Sharding.allreduce_time pod chip_graph in
  match plan ?elk_options ctx ~pod graph design with
  | Some s -> outcome_of_timeline design pod (Elk.Timeline.evaluate ctx s) allreduce
  | None -> run_ideal ctx ~pod chip_graph
