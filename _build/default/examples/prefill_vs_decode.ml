(* Prefill/training vs decode: compute-bound vs bandwidth-bound phases.

     dune exec examples/prefill_vs_decode.exe

   The same model stresses an ICCA chip in opposite ways depending on the
   phase: decode reloads all weights and KV cache per generated token
   (bandwidth-bound), while prefill/training-forward reuses each loaded
   weight across every token in the sequence (compute-bound).  Elk's plans
   adapt; the chip guidance differs (paper Fig 24: compute-bound workloads
   should scale FLOPS and can use cheaper memory). *)

module B = Elk_baselines.Baselines
module D = Elk_dse.Dse

let () =
  let cfg = Elk_model.Zoo.scale Elk_model.Zoo.llama2_13b ~factor:8 ~layer_factor:10 in
  let decode = Elk_model.Zoo.build cfg (Elk_model.Zoo.Decode { batch = 32; ctx = 256 }) in
  let prefill = Elk_model.Zoo.build cfg (Elk_model.Zoo.Prefill { batch = 2; seq = 256 }) in
  let intensity g =
    Elk_model.Graph.total_flops g /. Elk_model.Graph.total_hbm_bytes g
  in
  Format.printf "decode : %a  (%.1f FLOPs/HBM byte)@." Elk_model.Graph.pp_summary decode
    (intensity decode);
  Format.printf "prefill: %a  (%.1f FLOPs/HBM byte)@.@." Elk_model.Graph.pp_summary prefill
    (intensity prefill);
  let t =
    Elk_util.Table.create ~title:"Elk-Full on both phases, varying compute capability"
      ~columns:[ "FLOPS"; "decode TFLOPS"; "prefill TFLOPS" ]
  in
  List.iter
    (fun flops_scale ->
      let env = D.env ~flops_scale () in
      let run g = (D.evaluate env g B.Elk_full).D.tflops in
      Elk_util.Table.add_row t
        [ Printf.sprintf "%.1fx" flops_scale; Printf.sprintf "%.2f" (run decode);
          Printf.sprintf "%.2f" (run prefill) ])
    [ 0.5; 1.; 2.; 4. ];
  Elk_util.Table.print t;
  print_endline
    "Decode throughput barely moves with more FLOPS (it is bandwidth-bound);\n\
     prefill keeps scaling — the Fig 24 guidance for training-oriented chips."
