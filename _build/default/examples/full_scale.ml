(* Full-scale planning: Elk's operator-level machinery on the real
   IPU-MK2 geometry (1472 cores x 624 KB), unscaled.

     dune exec examples/full_scale.exe

   End-to-end full-model compilation at this size is possible but slow
   (thousands of operators x thousands of cores); what this example shows
   is that nothing in the library is tied to the scaled configuration:
   the cost model trains on the full chip, and partition-plan enumeration
   handles full-size Llama2-13B operators, reproducing the paper's
   Fig 5 space-time frontiers at their true scale (per-core execution
   spaces of tens-to-hundreds of KB out of 624 KB). *)

module P = Elk_partition.Partition

let () =
  let chip = Elk_arch.Arch.Presets.ipu_mk2_full in
  Format.printf "Chip: %a@." Elk_arch.Arch.pp_chip chip;
  let t0 = Unix.gettimeofday () in
  let cost = Elk_cost.Costmodel.train ~samples_per_kind:300 chip in
  Format.printf "cost model trained in %.2fs@.@." (Unix.gettimeofday () -. t0);
  let ctx = P.make_ctx cost in
  (* Full-size Llama2-13B decode operators, sharded across 4 chips. *)
  let ops =
    [
      ("attn_qkv (q slice)", Elk_tensor.Opspec.matmul ~name:"q_proj" ~m:32 ~n:1280 ~k:5120 ());
      ("ffn_gate", Elk_tensor.Opspec.matmul ~name:"ffn_gate" ~m:32 ~n:3456 ~k:5120 ());
      ( "attn_score (KV ctx 2048)",
        Elk_tensor.Opspec.batch_matmul ~name:"score" ~batch:320 ~m:1 ~n:2048 ~k:128 () );
      ("lm_head slice", Elk_tensor.Opspec.matmul ~name:"lm_head" ~m:32 ~n:8000 ~k:5120 ());
    ]
  in
  List.iter
    (fun (label, op) ->
      let t0 = Unix.gettimeofday () in
      let plans = P.enumerate ctx op in
      let frontier = P.exec_frontier ctx op in
      Format.printf "%-26s %4d plans, frontier:" label (List.length plans);
      List.iteri
        (fun i pt ->
          if i < 6 then
            Format.printf " %.0fKB->%.0fus"
              (pt.Elk_util.Pareto.x /. 1e3)
              (pt.Elk_util.Pareto.payload.P.exec_time *. 1e6))
        frontier;
      Format.printf "  (%.2fs)@." (Unix.gettimeofday () -. t0))
    ops;
  (* The fastest plan's preload-state options at full scale. *)
  let op = Elk_tensor.Opspec.matmul ~name:"ffn_gate" ~m:32 ~n:3456 ~k:5120 () in
  let plan = P.fastest_plan ctx op in
  Format.printf "@.ffn_gate fastest plan: %a@." P.pp_plan plan;
  List.iter
    (fun o ->
      Format.printf "  broadcast %.2f -> preload %a/core, distribute %a/core (%a)@."
        o.P.frac Elk_util.Units.pp_bytes o.P.preload_space Elk_util.Units.pp_bytes
        o.P.dist_bytes_per_core Elk_util.Units.pp_time o.P.dist_time)
    (P.preload_options ctx op plan)
