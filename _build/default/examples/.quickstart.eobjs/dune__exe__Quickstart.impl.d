examples/quickstart.ml: Array Elk Elk_arch Elk_cost Elk_model Elk_partition Elk_sim Elk_util Format
