examples/quickstart.mli:
