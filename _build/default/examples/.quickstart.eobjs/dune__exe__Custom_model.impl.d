examples/custom_model.ml: Elk Elk_dse Elk_model Elk_sim Elk_util Format
