examples/llm_serving.ml: Array Elk_baselines Elk_dse Elk_model Elk_tensor Elk_util List Printf
