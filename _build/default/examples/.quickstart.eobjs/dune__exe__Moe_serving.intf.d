examples/moe_serving.mli:
