examples/moe_serving.ml: Elk_baselines Elk_dse Elk_model Elk_tensor Elk_util Format Graph List Opspec Printf
