examples/prefill_vs_decode.ml: Elk_baselines Elk_dse Elk_model Elk_util Format List Printf
