examples/design_space.ml: Elk_arch Elk_baselines Elk_dse Elk_model Elk_util List Printf
