examples/full_scale.ml: Elk_arch Elk_cost Elk_partition Elk_tensor Elk_util Format List Unix
