examples/full_scale.mli:
