examples/prefill_vs_decode.mli:
