(* Quickstart: compile one LLM decode step for an ICCA pod with Elk and
   inspect the result.

     dune exec examples/quickstart.exe

   The flow below is the whole public API surface a user needs:
   1. pick a chip/pod configuration        (Elk_arch.Arch.Presets)
   2. train a cost model for the chip      (Elk_cost.Costmodel.train)
   3. build an operator graph for a model  (Elk_model.Zoo)
   4. compile                              (Elk.Compile.compile)
   5. measure on the event-driven sim      (Elk_sim.Sim.run) *)

let () =
  (* 1. A 4-chip pod of scaled IPU-like chips (64 cores each; see
        DESIGN.md for how the scaling preserves the paper's ratios). *)
  let pod = Elk_arch.Arch.Presets.scaled_pod () in
  Format.printf "Target: %a@.@." Elk_arch.Arch.pp_pod pod;

  (* 2. Profile-and-fit the cost model (paper Fig 12): random tiles are
        "measured" on the synthetic device and linear trees are fit. *)
  let cost = Elk_cost.Costmodel.train pod.Elk_arch.Arch.chip in
  let ctx = Elk_partition.Partition.make_ctx cost in

  (* 3. One decode step of a 1/8-scale Llama2-13B, batch 32, 256-token
        KV cache. *)
  let cfg = Elk_model.Zoo.scale Elk_model.Zoo.llama2_13b ~factor:8 ~layer_factor:10 in
  let graph = Elk_model.Zoo.build cfg (Elk_model.Zoo.Decode { batch = 32; ctx = 256 }) in
  Format.printf "Workload: %a@.@." Elk_model.Graph.pp_summary graph;

  (* 4. Compile: partition plans, preload/execution space allocation,
        operator scheduling and preload reordering. *)
  let compiled = Elk.Compile.compile ctx ~pod graph in
  Format.printf "%a@.@." Elk.Compile.pp_summary compiled;

  (* 5. Replay the generated program on the event-driven chip simulator. *)
  let sim = Elk_sim.Sim.run ctx compiled.Elk.Compile.schedule in
  Format.printf
    "Simulated: %a per token  (HBM %.1f%%, interconnect %.1f%%, %.2f TFLOPS/chip)@."
    Elk_util.Units.pp_time
    (sim.Elk_sim.Sim.total +. compiled.Elk.Compile.allreduce)
    (100. *. sim.Elk_sim.Sim.hbm_util)
    (100. *. sim.Elk_sim.Sim.noc_util)
    (sim.Elk_sim.Sim.achieved_flops /. 1e12);

  (* Bonus: the first few instructions of the §4.5 device program. *)
  Format.printf "@.Device program (head):@.";
  Array.iteri
    (fun i instr ->
      if i < 10 then
        match instr with
        | Elk.Program.Preload_async op -> Format.printf "  preload_async(op=%d)@." op
        | Elk.Program.Execute op -> Format.printf "  execute(op=%d)@." op)
    compiled.Elk.Compile.program.Elk.Program.instrs
