(* Bringing your own model: the textual graph frontend.

     dune exec examples/custom_model.exe

   Elk consumes any operator DAG, not just the built-in zoo.  This example
   defines a small encoder-style network in the `Gtext` format (the
   repository's analog of the paper's ONNX import path), compiles it, and
   prints the plan summary — the complete path an external tool would use
   to target Elk. *)

let model_text =
  {|# a hand-written 2-block encoder, batch 16, hidden 256
graph tiny-encoder
op embedding name=emb       role=embedding rows=16 vocab=8000 hidden=256
# block 0
op norm      name=b0.norm1  role=attn_norm layer=0 rows=16 cols=256 kind=layernorm
op matmul    name=b0.qkv    role=qkv_proj layer=0 deps=1 m=16 n=768 k=256
op bmm       name=b0.score  role=attn_score layer=0 deps=2 batch=8 m=16 n=16 k=32 rhs=a
op softmax   name=b0.sm     role=attn_softmax layer=0 deps=3 rows=128 cols=16
op bmm       name=b0.av     role=attn_out layer=0 deps=4,2 batch=8 m=16 n=32 k=16 rhs=a
op matmul    name=b0.proj   role=o_proj layer=0 deps=5 m=16 n=256 k=256
op eltwise   name=b0.res1   role=attn_residual deps=0,6 kind=add shape=16x256 arity=2 fpp=1
op norm      name=b0.norm2  role=ffn_norm layer=0 deps=7 rows=16 cols=256 kind=layernorm
op matmul    name=b0.up     role=ffn_up layer=0 deps=8 m=16 n=1024 k=256
op eltwise   name=b0.gelu   role=ffn_act layer=0 deps=9 kind=gelu shape=16x1024 fpp=4
op matmul    name=b0.down   role=ffn_down layer=0 deps=10 m=16 n=256 k=1024
op eltwise   name=b0.res2   role=ffn_residual deps=7,11 kind=add shape=16x256 arity=2 fpp=1
# block 1
op norm      name=b1.norm1  role=attn_norm layer=1 deps=12 rows=16 cols=256 kind=layernorm
op matmul    name=b1.qkv    role=qkv_proj layer=1 deps=13 m=16 n=768 k=256
op bmm       name=b1.score  role=attn_score layer=1 deps=14 batch=8 m=16 n=16 k=32 rhs=a
op softmax   name=b1.sm     role=attn_softmax layer=1 deps=15 rows=128 cols=16
op bmm       name=b1.av     role=attn_out layer=1 deps=16,14 batch=8 m=16 n=32 k=16 rhs=a
op matmul    name=b1.proj   role=o_proj layer=1 deps=17 m=16 n=256 k=256
op eltwise   name=b1.res1   role=attn_residual deps=12,18 kind=add shape=16x256 arity=2 fpp=1
op norm      name=b1.norm2  role=ffn_norm layer=1 deps=19 rows=16 cols=256 kind=layernorm
op matmul    name=b1.up     role=ffn_up layer=1 deps=20 m=16 n=1024 k=256
op eltwise   name=b1.gelu   role=ffn_act layer=1 deps=21 kind=gelu shape=16x1024 fpp=4
op matmul    name=b1.down   role=ffn_down layer=1 deps=22 m=16 n=256 k=1024
op eltwise   name=b1.res2   role=ffn_residual deps=19,23 kind=add shape=16x256 arity=2 fpp=1
# head
op norm      name=final     role=final_norm deps=24 rows=16 cols=256 kind=layernorm
op matmul    name=classify  role=lm_head deps=25 m=16 n=1000 k=256
|}

let () =
  match Elk_model.Gtext.import model_text with
  | Error msg -> failwith ("model parse error: " ^ msg)
  | Ok graph ->
      Format.printf "Imported: %a@.@." Elk_model.Graph.pp_summary graph;
      let env = Elk_dse.Dse.env () in
      let c = Elk.Compile.compile env.Elk_dse.Dse.ctx ~pod:env.Elk_dse.Dse.pod graph in
      Format.printf "%a@.@." Elk.Compile.pp_summary c;
      let r = Elk_sim.Sim.run env.Elk_dse.Dse.ctx c.Elk.Compile.schedule in
      Format.printf "Simulated: %a (HBM %.1f%%)@." Elk_util.Units.pp_time
        r.Elk_sim.Sim.total
        (100. *. r.Elk_sim.Sim.hbm_util);
      (* Round-trip the graph to prove the format is lossless. *)
      let again = Elk_model.Gtext.import (Elk_model.Gtext.export graph) in
      (match again with
      | Ok g' when Elk_model.Gtext.roundtrip_equal graph g' ->
          print_endline "Round-trip through the text format: exact."
      | _ -> print_endline "Round-trip FAILED")
