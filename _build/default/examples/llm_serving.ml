(* LLM serving scenario: the workload the paper's introduction motivates.

     dune exec examples/llm_serving.exe

   Serves decode steps of two LLMs — one with multi-head attention
   (OPT-30B-style) and one with grouped-query attention (Llama2-70B-style)
   — across batch sizes, comparing all five designs on the simulator.
   Reproduces the paper's observation that GQA models achieve latencies
   similar to much smaller MHA models because their KV-cache preload
   volume is 8x smaller. *)

module B = Elk_baselines.Baselines
module D = Elk_dse.Dse

let () =
  let env = D.env () in
  let models =
    [
      ("MHA  opt-30b", Elk_model.Zoo.scale Elk_model.Zoo.opt_30b ~factor:8 ~layer_factor:12);
      ("GQA  llama2-70b", Elk_model.Zoo.scale Elk_model.Zoo.llama2_70b ~factor:8 ~layer_factor:20);
    ]
  in
  let t =
    Elk_util.Table.create ~title:"per-token decode latency (us), 4 scaled chips"
      ~columns:("model" :: "batch" :: "KV MB" :: List.map B.name B.all)
  in
  List.iter
    (fun (label, cfg) ->
      List.iter
        (fun batch ->
          let g = Elk_model.Zoo.build cfg (Elk_model.Zoo.Decode { batch; ctx = 256 }) in
          let kv_mb =
            Array.fold_left
              (fun a (n : Elk_model.Graph.node) ->
                List.fold_left
                  (fun a (tn : Elk_tensor.Opspec.tensor) ->
                    if tn.Elk_tensor.Opspec.source = Elk_tensor.Opspec.Kv_cache then
                      a +. Elk_tensor.Opspec.tensor_bytes n.Elk_model.Graph.op tn
                    else a)
                  a n.Elk_model.Graph.op.Elk_tensor.Opspec.inputs)
              0. (Elk_model.Graph.nodes g)
          in
          let cells =
            List.map
              (fun d ->
                Printf.sprintf "%.0f" ((D.evaluate env g d).D.latency *. 1e6))
              B.all
          in
          Elk_util.Table.add_row t
            (label :: string_of_int batch :: Printf.sprintf "%.1f" (kv_mb /. 1e6) :: cells))
        [ 8; 32 ])
    models;
  Elk_util.Table.print t;
  print_endline
    "Note how the GQA model carries ~8x less KV-cache volume per token, so its\n\
     latency stays close to much smaller models (paper Fig 17, Gemma2/Llama2-70B)."
