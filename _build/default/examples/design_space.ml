(* Architecture design-space exploration (paper §6.4 in miniature).

     dune exec examples/design_space.exe

   Asks the two questions a chip architect would ask with Elk:
   1. If I double HBM bandwidth, does serving get faster — and where does
      the benefit stop? (paper insight 1)
   2. Should interconnect bandwidth scale together with HBM bandwidth?
      (paper insight 2) *)

module B = Elk_baselines.Baselines
module D = Elk_dse.Dse

let () =
  let cfg = Elk_model.Zoo.scale Elk_model.Zoo.llama2_13b ~factor:8 ~layer_factor:10 in
  let g = Elk_model.Zoo.build cfg (Elk_model.Zoo.Decode { batch = 32; ctx = 256 }) in
  let base_hbm = (D.env ()).D.pod.Elk_arch.Arch.chip.Elk_arch.Arch.hbm_bandwidth in

  let t1 =
    Elk_util.Table.create ~title:"Q1: HBM bandwidth scaling (Elk-Full vs Ideal, us)"
      ~columns:[ "HBM BW"; "Elk-Full"; "Ideal"; "of ideal" ]
  in
  List.iter
    (fun mult ->
      let env = D.env ~hbm_bw_per_chip:(mult *. base_hbm) () in
      let full = (D.evaluate env g B.Elk_full).D.latency in
      let ideal = (D.evaluate env g B.Ideal).D.latency in
      Elk_util.Table.add_row t1
        [ Printf.sprintf "%.2fx" mult; Printf.sprintf "%.0f" (full *. 1e6);
          Printf.sprintf "%.0f" (ideal *. 1e6);
          Printf.sprintf "%.0f%%" (100. *. ideal /. full) ])
    [ 0.25; 0.5; 1.; 2.; 4. ];
  Elk_util.Table.print t1;

  let t2 =
    Elk_util.Table.create
      ~title:"Q2: scaling HBM alone vs HBM + interconnect together (Elk-Full, us)"
      ~columns:[ "scale"; "HBM only"; "HBM + NoC" ]
  in
  List.iter
    (fun mult ->
      let hbm_only = D.env ~hbm_bw_per_chip:(mult *. base_hbm) () in
      let both =
        D.env ~hbm_bw_per_chip:(mult *. base_hbm) ~link_bw:(mult *. 5.5e9) ()
      in
      let l e = (D.evaluate e g B.Elk_full).D.latency *. 1e6 in
      Elk_util.Table.add_row t2
        [ Printf.sprintf "%.1fx" mult; Printf.sprintf "%.0f" (l hbm_only);
          Printf.sprintf "%.0f" (l both) ])
    [ 1.; 2.; 4. ];
  Elk_util.Table.print t2;
  print_endline
    "Scaling HBM alone saturates once the interconnect becomes the bottleneck;\n\
     scaling both together keeps improving latency (paper Figs 19 and 22)."
