(* Mixture-of-experts serving (paper §7, "Apply Elk to MoE").

     dune exec examples/moe_serving.exe

   In an MoE layer, each token routes to [k] of [num_experts] FFN experts.
   All experts share one shape, so Elk compiles a single generic-expert
   plan, and at runtime the chip preloads only the selected experts'
   tensors — scheduled after the routing operator has executed, exactly as
   §7 describes.  We build two operator graphs for the same model:

   - [naive]: every expert's weights are preloaded every step (what a
     compiler without runtime-conditional preloads must do);
   - [moe]: only the [k] active experts' weights are preloaded, as
     separate operators sequenced after the router.

   Elk schedules both; the gap is the value of expert-conditional
   preloading, and it grows with the expert count. *)

open Elk_tensor
open Elk_model

let batch = 32
let hidden = 640
let expert_ffn = 512
let layers = 4

let moe_layer b ~layer ~experts_loaded ~after =
  let add = Graph.add b ~layer in
  let norm =
    add ~deps:[ after ] ~role:"ffn_norm"
      (Opspec.norm ~name:(Printf.sprintf "l%d.norm" layer) ~rows:batch ~cols:hidden ())
  in
  let router =
    add ~deps:[ norm ] ~role:"router"
      (Opspec.matmul ~name:(Printf.sprintf "l%d.router" layer) ~m:batch ~n:64 ~k:hidden ())
  in
  (* Each loaded expert is its own operator so its preload is scheduled
     individually (after the router, per §7). *)
  let outs =
    List.init experts_loaded (fun e ->
        let up =
          add ~deps:[ router ] ~role:"expert_up"
            (Opspec.matmul
               ~name:(Printf.sprintf "l%d.e%d.up" layer e)
               ~m:batch ~n:expert_ffn ~k:hidden ())
        in
        let act =
          add ~deps:[ up ] ~role:"expert_act"
            (Opspec.elementwise ~flops_per_point:4.
               ~name:(Printf.sprintf "l%d.e%d.act" layer e)
               ~kind:"silu" ~shape:[ batch; expert_ffn ] ())
        in
        add ~deps:[ act ] ~role:"expert_down"
          (Opspec.matmul
             ~name:(Printf.sprintf "l%d.e%d.down" layer e)
             ~m:batch ~n:hidden ~k:expert_ffn ()))
  in
  add ~deps:(after :: outs) ~role:"ffn_residual"
    (Opspec.elementwise ~arity:2 ~flops_per_point:1.
       ~name:(Printf.sprintf "l%d.res" layer)
       ~kind:"add" ~shape:[ batch; hidden ] ())

let build ~experts_loaded =
  let b = Graph.builder ~name:(Printf.sprintf "moe-%dexperts" experts_loaded) in
  let emb =
    Graph.add b ~role:"embedding"
      (Opspec.embedding ~name:"emb" ~rows:batch ~vocab:32000 ~hidden ())
  in
  let last = ref emb in
  for layer = 0 to layers - 1 do
    last := moe_layer b ~layer ~experts_loaded ~after:!last
  done;
  Graph.finish b

let () =
  let env = Elk_dse.Dse.env () in
  (* The model zoo carries a Mixtral-8x7B configuration (Zoo.mixtral_8x7b);
     a scaled instance compiles like any other model, with the router and
     the top-2 active experts' tensors per layer. *)
  let mixtral = Elk_model.Zoo.scale Elk_model.Zoo.mixtral_8x7b ~factor:8 ~layer_factor:8 in
  let mg = Elk_model.Zoo.build mixtral (Elk_model.Zoo.Decode { batch = 32; ctx = 256 }) in
  let e = Elk_dse.Dse.evaluate env mg Elk_baselines.Baselines.Elk_full in
  Format.printf "Zoo %s: %.0f us/token (top-2 of 8 experts loaded)@.@."
    mixtral.Elk_model.Zoo.cfg_name (e.Elk_dse.Dse.latency *. 1e6);
  let t =
    Elk_util.Table.create
      ~title:"MoE serving: expert-conditional preloads vs loading all experts"
      ~columns:[ "experts total"; "active k"; "naive (us)"; "MoE-aware (us)"; "speedup" ]
  in
  List.iter
    (fun (num_experts, k) ->
      let eval experts_loaded =
        let g = build ~experts_loaded in
        (Elk_dse.Dse.evaluate env g Elk_baselines.Baselines.Elk_full)
          .Elk_dse.Dse.latency
      in
      let naive = eval num_experts in
      let moe = eval k in
      Elk_util.Table.add_row t
        [ string_of_int num_experts; string_of_int k;
          Printf.sprintf "%.0f" (naive *. 1e6); Printf.sprintf "%.0f" (moe *. 1e6);
          Printf.sprintf "%.2fx" (naive /. moe) ])
    [ (4, 2); (8, 2); (16, 2) ];
  Elk_util.Table.print t;
  print_endline
    "Conditional preloads keep HBM traffic proportional to the active experts;\n\
     with 16 experts the naive schedule pays ~8x the preload volume (paper §7)."
