open Elk_model
open Elk_tensor

(* ------------------------------------------------------------------ *)
(* Graph                                                              *)
(* ------------------------------------------------------------------ *)

let mk_chain n =
  let b = Graph.builder ~name:"chain" in
  for i = 0 to n - 1 do
    ignore
      (Graph.add b ~role:(Printf.sprintf "op%d" i)
         (Opspec.matmul ~name:(Printf.sprintf "m%d" i) ~m:2 ~n:2 ~k:2 ()))
  done;
  Graph.finish b

let test_builder_ids_dense () =
  let g = mk_chain 5 in
  Alcotest.(check int) "length" 5 (Graph.length g);
  Array.iteri (fun i n -> Alcotest.(check int) "id" i n.Graph.id) (Graph.nodes g)

let test_default_deps_chain () =
  let g = mk_chain 3 in
  Alcotest.(check (list int)) "first" [] (Graph.get g 0).Graph.deps;
  Alcotest.(check (list int)) "second" [ 0 ] (Graph.get g 1).Graph.deps;
  Alcotest.(check (list int)) "third" [ 1 ] (Graph.get g 2).Graph.deps

let test_add_rejects_forward_dep () =
  let b = Graph.builder ~name:"bad" in
  let _ = Graph.add b ~role:"a" (Opspec.softmax ~name:"s" ~rows:2 ~cols:2 ()) in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Graph.add b ~deps:[ 5 ] ~role:"b" (Opspec.softmax ~name:"t" ~rows:2 ~cols:2 ()));
       false
     with Invalid_argument _ -> true)

let test_add_rejects_invalid_op () =
  let b = Graph.builder ~name:"bad" in
  let bad = { (Opspec.softmax ~name:"s" ~rows:2 ~cols:2 ()) with Opspec.iter = [| 0 |] } in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Graph.add b ~role:"x" bad);
       false
     with Invalid_argument _ -> true)

let test_totals () =
  let g = mk_chain 4 in
  Tu.check_float "flops" (4. *. 2. *. 8.) (Graph.total_flops g);
  Tu.check_float "hbm" (4. *. 8.) (Graph.total_hbm_bytes g);
  Tu.check_float "mean" 8. (Graph.mean_hbm_bytes g)

let test_hbm_heavy_threshold () =
  let b = Graph.builder ~name:"mix" in
  let _ = Graph.add b ~role:"big" (Opspec.matmul ~name:"big" ~m:2 ~n:64 ~k:64 ()) in
  let _ = Graph.add b ~role:"small" (Opspec.softmax ~name:"sm" ~rows:2 ~cols:2 ()) in
  let g = Graph.finish b in
  Alcotest.(check (list int)) "only the matmul" [ 0 ] (Graph.hbm_heavy_ids g)

let test_layers () =
  let b = Graph.builder ~name:"layers" in
  let _ = Graph.add b ~role:"pre" (Opspec.softmax ~name:"s0" ~rows:2 ~cols:2 ()) in
  let _ = Graph.add b ~layer:0 ~role:"x" (Opspec.softmax ~name:"s1" ~rows:2 ~cols:2 ()) in
  let _ = Graph.add b ~layer:1 ~role:"x" (Opspec.softmax ~name:"s2" ~rows:2 ~cols:2 ()) in
  let _ = Graph.add b ~layer:1 ~role:"y" (Opspec.softmax ~name:"s3" ~rows:2 ~cols:2 ()) in
  let g = Graph.finish b in
  Alcotest.(check (list int)) "layers" [ 0; 1 ] (Graph.layer_ids g);
  Alcotest.(check int) "layer 1 nodes" 2 (List.length (Graph.nodes_of_layer g 1))

let test_is_valid_order () =
  let g = mk_chain 3 in
  Alcotest.(check bool) "identity" true (Graph.is_valid_order g [ 0; 1; 2 ]);
  Alcotest.(check bool) "reversed violates deps" false (Graph.is_valid_order g [ 2; 1; 0 ]);
  Alcotest.(check bool) "not a permutation" false (Graph.is_valid_order g [ 0; 0; 1 ]);
  Alcotest.(check bool) "wrong length" false (Graph.is_valid_order g [ 0; 1 ])

let test_is_valid_order_diamond () =
  let b = Graph.builder ~name:"diamond" in
  let a = Graph.add b ~role:"a" (Opspec.softmax ~name:"a" ~rows:2 ~cols:2 ()) in
  let l = Graph.add b ~deps:[ a ] ~role:"l" (Opspec.softmax ~name:"l" ~rows:2 ~cols:2 ()) in
  let r = Graph.add b ~deps:[ a ] ~role:"r" (Opspec.softmax ~name:"r" ~rows:2 ~cols:2 ()) in
  let _ = Graph.add b ~deps:[ l; r ] ~role:"j" (Opspec.softmax ~name:"j" ~rows:2 ~cols:2 ()) in
  let g = Graph.finish b in
  Alcotest.(check bool) "l-r swap ok" true (Graph.is_valid_order g [ 0; 2; 1; 3 ]);
  Alcotest.(check bool) "join early bad" false (Graph.is_valid_order g [ 0; 1; 3; 2 ])

(* ------------------------------------------------------------------ *)
(* Zoo                                                                *)
(* ------------------------------------------------------------------ *)

let test_presets_valid () =
  List.iter
    (fun cfg ->
      match Zoo.validate cfg with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s invalid: %s" cfg.Zoo.cfg_name m)
    Zoo.all

let test_head_dims () =
  Alcotest.(check int) "llama13b" 128 (Zoo.head_dim Zoo.llama2_13b);
  Alcotest.(check int) "llama70b" 128 (Zoo.head_dim Zoo.llama2_70b);
  Alcotest.(check int) "gemma" 144 (Zoo.head_dim Zoo.gemma2_27b);
  Alcotest.(check int) "opt" 128 (Zoo.head_dim Zoo.opt_30b);
  Alcotest.(check int) "dit" 72 (Zoo.head_dim Zoo.dit_xl)

let test_param_counts_ballpark () =
  (* fp16 bytes = 2 x parameter count; allow 15% for our simplified op set. *)
  Tu.check_rel "llama2-13b" ~tolerance:0.15 26e9 (Zoo.param_bytes Zoo.llama2_13b);
  Tu.check_rel "llama2-70b" ~tolerance:0.15 140e9 (Zoo.param_bytes Zoo.llama2_70b);
  Tu.check_rel "opt-30b" ~tolerance:0.15 60e9 (Zoo.param_bytes Zoo.opt_30b)

let test_decode_graph_structure () =
  let g = Zoo.build Zoo.llama2_13b (Zoo.Decode { batch = 4; ctx = 64 }) in
  Alcotest.(check int) "layers" 40 (List.length (Graph.layer_ids g));
  Alcotest.(check bool) "op count" true (Graph.length g > 40 * 15);
  (* Execution order = id order must be dependency-valid. *)
  Alcotest.(check bool) "valid order" true
    (Graph.is_valid_order g (List.init (Graph.length g) (fun i -> i)))

let test_decode_kv_scales_with_ctx () =
  let h1 = Graph.total_hbm_bytes (Zoo.build Zoo.llama2_13b (Zoo.Decode { batch = 4; ctx = 64 })) in
  let h2 = Graph.total_hbm_bytes (Zoo.build Zoo.llama2_13b (Zoo.Decode { batch = 4; ctx = 128 })) in
  Alcotest.(check bool) "kv grows" true (h2 > h1);
  (* Doubling ctx only doubles the KV part, not the weights. *)
  Alcotest.(check bool) "less than 2x" true (h2 < 2. *. h1)

let test_gqa_reduces_kv () =
  (* Llama2-70B has 8 KV heads for 64 query heads; a hypothetical MHA
     version would carry 8x the KV volume. *)
  let gqa = Zoo.llama2_70b in
  let mha = { gqa with Zoo.cfg_name = "llama2-70b-mha"; kv_heads = gqa.Zoo.heads } in
  let kv_bytes cfg =
    let g = Zoo.build cfg (Zoo.Decode { batch = 2; ctx = 256 }) in
    Array.to_list (Graph.nodes g)
    |> List.concat_map (fun n -> n.Graph.op.Opspec.inputs |> List.map (fun t -> (n, t)))
    |> List.filter (fun ((_, t) : Graph.node * Opspec.tensor) -> t.Opspec.source = Opspec.Kv_cache)
    |> List.fold_left (fun a (n, t) -> a +. Opspec.tensor_bytes n.Graph.op t) 0.
  in
  Tu.check_rel "8x kv" ~tolerance:0.01 (8. *. kv_bytes gqa) (kv_bytes mha)

let test_prefill_flops_scale () =
  let d = Zoo.build Zoo.llama2_13b (Zoo.Decode { batch = 4; ctx = 64 }) in
  let p = Zoo.build Zoo.llama2_13b (Zoo.Prefill { batch = 4; seq = 64 }) in
  (* Prefill processes 64x the tokens; matmul FLOPs scale accordingly. *)
  Alcotest.(check bool) "prefill bigger" true
    (Graph.total_flops p > 30. *. Graph.total_flops d)

let test_prefill_no_kv_load () =
  let p = Zoo.build Zoo.llama2_13b (Zoo.Prefill { batch = 2; seq = 32 }) in
  let kv_inputs =
    Array.to_list (Graph.nodes p)
    |> List.concat_map (fun n -> n.Graph.op.Opspec.inputs)
    |> List.filter (fun (t : Opspec.tensor) -> t.Opspec.source = Opspec.Kv_cache)
  in
  Alcotest.(check int) "no kv-cache loads in prefill" 0 (List.length kv_inputs)

let test_opt_no_rope () =
  let g = Zoo.build Zoo.opt_30b (Zoo.Decode { batch = 2; ctx = 32 }) in
  let ropes =
    Array.to_list (Graph.nodes g) |> List.filter (fun n -> n.Graph.op.Opspec.kind = "rope")
  in
  Alcotest.(check int) "no rope in OPT" 0 (List.length ropes)

let test_llama_has_rope_and_silu () =
  let g = Zoo.build Zoo.llama2_13b (Zoo.Decode { batch = 2; ctx = 32 }) in
  let kinds = Array.to_list (Graph.nodes g) |> List.map (fun n -> n.Graph.op.Opspec.kind) in
  Alcotest.(check bool) "rope" true (List.mem "rope" kinds);
  Alcotest.(check bool) "silu" true (List.mem "silu" kinds);
  Alcotest.(check bool) "rmsnorm" true (List.mem "rmsnorm" kinds)

let test_dit_structure () =
  let g = Zoo.build Zoo.dit_xl (Zoo.Decode { batch = 2; ctx = 1 }) in
  Alcotest.(check int) "layers" 28 (List.length (Graph.layer_ids g));
  let kv =
    Array.to_list (Graph.nodes g)
    |> List.concat_map (fun n -> n.Graph.op.Opspec.inputs)
    |> List.filter (fun (t : Opspec.tensor) -> t.Opspec.source = Opspec.Kv_cache)
  in
  Alcotest.(check int) "no kv cache" 0 (List.length kv);
  (* DiT is compute-intensive: much higher arithmetic intensity than
     decode-phase LLMs (paper §6.4 observation 3). *)
  let llm = Zoo.build (Zoo.scale Zoo.llama2_13b ~factor:4 ~layer_factor:1) (Zoo.Decode { batch = 2; ctx = 512 }) in
  let intensity gr = Graph.total_flops gr /. Graph.total_hbm_bytes gr in
  Alcotest.(check bool) "dit intensity higher" true (intensity g > 10. *. intensity llm)

let test_scale_preserves_head_dim () =
  List.iter
    (fun cfg ->
      let s = Zoo.scale cfg ~factor:8 ~layer_factor:10 in
      (match Zoo.validate s with
      | Ok () -> ()
      | Error m -> Alcotest.failf "scaled %s invalid: %s" s.Zoo.cfg_name m);
      Alcotest.(check int)
        (cfg.Zoo.cfg_name ^ " head dim preserved")
        (Zoo.head_dim cfg) (Zoo.head_dim s))
    Zoo.all

let test_scale_shrinks () =
  let s = Zoo.scale Zoo.llama2_13b ~factor:8 ~layer_factor:10 in
  Alcotest.(check int) "layers" 4 s.Zoo.layers;
  Alcotest.(check int) "hidden" 640 s.Zoo.hidden;
  Alcotest.(check bool) "params shrink >100x" true
    (Zoo.param_bytes s < Zoo.param_bytes Zoo.llama2_13b /. 100.)

let test_by_name () =
  Alcotest.(check bool) "found" true (Zoo.by_name "opt-30b" = Some Zoo.opt_30b);
  Alcotest.(check bool) "missing" true (Zoo.by_name "gpt-5" = None)


let test_moe_structure () =
  let cfg = Zoo.scale Zoo.mixtral_8x7b ~factor:8 ~layer_factor:16 in
  let g = Zoo.build cfg (Zoo.Decode { batch = 8; ctx = 128 }) in
  let roles r =
    Array.to_list (Graph.nodes g) |> List.filter (fun n -> n.Graph.role = r)
  in
  let layers = List.length (Graph.layer_ids g) in
  Alcotest.(check int) "one router per layer" layers (List.length (roles "router"));
  (* top-2: two expert instances of each projection per layer. *)
  Alcotest.(check int) "2 expert_down per layer" (2 * layers)
    (List.length (roles "expert_down"));
  Alcotest.(check bool) "valid" true
    (Graph.is_valid_order g (List.init (Graph.length g) (fun i -> i)))

let test_moe_active_weights_scale_with_topk () =
  (* The built graph carries only the active experts' weights: top-2 loads
     ~2x the FFN weights of a top-1 variant. *)
  let base = Zoo.scale Zoo.mixtral_8x7b ~factor:8 ~layer_factor:16 in
  let top1 = { base with Zoo.cfg_name = "top1"; family = Zoo.Moe { experts = 8; topk = 1 } } in
  let hbm cfg =
    Graph.total_hbm_bytes (Zoo.build cfg (Zoo.Decode { batch = 8; ctx = 128 }))
  in
  Alcotest.(check bool) "top2 loads more" true (hbm base > 1.3 *. hbm top1)

let test_moe_compiles () =
  let cfg = Zoo.scale Zoo.mixtral_8x7b ~factor:16 ~layer_factor:16 in
  let g = Zoo.build cfg (Zoo.Decode { batch = 8; ctx = 64 }) in
  let pod = Lazy.force Tu.default_pod and ctx = Lazy.force Tu.default_ctx in
  let c = Elk.Compile.compile ~options:Elk.Compile.dyn_options ctx ~pod g in
  Alcotest.(check bool) "compiles" true (Elk.Compile.latency c > 0.)

let qcheck_decode_valid_graphs =
  Tu.qtest ~count:20 "zoo: random decode shapes build valid graphs"
    QCheck2.Gen.(pair (int_range 1 8) (int_range 16 256))
    (fun (batch, ctx) ->
      let cfg = Zoo.scale Zoo.llama2_13b ~factor:16 ~layer_factor:20 in
      let g = Zoo.build cfg (Zoo.Decode { batch; ctx }) in
      Graph.length g > 0
      && Array.for_all
           (fun (n : Graph.node) -> Opspec.validate n.Graph.op = Ok ())
           (Graph.nodes g))

let suite =
  [
    ("graph: builder dense ids", `Quick, test_builder_ids_dense);
    ("graph: default chain deps", `Quick, test_default_deps_chain);
    ("graph: rejects forward deps", `Quick, test_add_rejects_forward_dep);
    ("graph: rejects invalid ops", `Quick, test_add_rejects_invalid_op);
    ("graph: totals", `Quick, test_totals);
    ("graph: hbm-heavy threshold", `Quick, test_hbm_heavy_threshold);
    ("graph: layer queries", `Quick, test_layers);
    ("graph: order validity", `Quick, test_is_valid_order);
    ("graph: diamond order validity", `Quick, test_is_valid_order_diamond);
    ("zoo: presets valid", `Quick, test_presets_valid);
    ("zoo: head dims", `Quick, test_head_dims);
    ("zoo: parameter counts", `Quick, test_param_counts_ballpark);
    ("zoo: decode graph structure", `Quick, test_decode_graph_structure);
    ("zoo: kv scales with ctx", `Quick, test_decode_kv_scales_with_ctx);
    ("zoo: GQA reduces KV volume", `Quick, test_gqa_reduces_kv);
    ("zoo: prefill flops scale", `Quick, test_prefill_flops_scale);
    ("zoo: prefill has no kv loads", `Quick, test_prefill_no_kv_load);
    ("zoo: OPT has no rope", `Quick, test_opt_no_rope);
    ("zoo: llama kinds", `Quick, test_llama_has_rope_and_silu);
    ("zoo: DiT structure", `Quick, test_dit_structure);
    ("zoo: scale preserves head dim", `Quick, test_scale_preserves_head_dim);
    ("zoo: scale shrinks", `Quick, test_scale_shrinks);
    ("zoo: by_name", `Quick, test_by_name);
    ("zoo: MoE structure", `Quick, test_moe_structure);
    ("zoo: MoE active weights", `Quick, test_moe_active_weights_scale_with_topk);
    ("zoo: MoE compiles", `Slow, test_moe_compiles);
    qcheck_decode_valid_graphs;
  ]
