open Elk_hbm

let test_hbm3e_peak () =
  Tu.check_rel "1 TB/s module" ~tolerance:1e-9 1e12 (Hbm.peak_bandwidth Hbm.hbm3e_module)

let test_config_for_bandwidth () =
  List.iter
    (fun bw ->
      let c = Hbm.config_for_bandwidth bw in
      Tu.check_rel "peak matches request" ~tolerance:1e-6 bw (Hbm.peak_bandwidth c))
    [ 100e9; 1e12; 4e12; 16e12 ];
  Alcotest.(check bool) "rejects nonpositive" true
    (try
       ignore (Hbm.config_for_bandwidth 0.);
       false
     with Invalid_argument _ -> true)

let test_large_sequential_near_peak () =
  (* Tensor-granularity sequential reads saturate close to peak (paper §5:
     "HBM can easily saturate its bandwidth ... at tensor granularity"). *)
  let t = Hbm.create Hbm.hbm3e_module in
  let bytes = 64e6 in
  let bw = Hbm.effective_bandwidth t ~bytes in
  Alcotest.(check bool) "above 85% of peak" true (bw > 0.85 *. Hbm.peak_bandwidth Hbm.hbm3e_module)

let test_small_reads_derated () =
  let t = Hbm.create Hbm.hbm3e_module in
  let bw = Hbm.effective_bandwidth t ~bytes:256. in
  Alcotest.(check bool) "small reads far from peak" true
    (bw < 0.05 *. Hbm.peak_bandwidth Hbm.hbm3e_module)

let test_read_monotone_state () =
  let t = Hbm.create Hbm.hbm3e_module in
  let t1 = Hbm.read t ~now:0. ~offset:0. ~bytes:1e6 in
  let t2 = Hbm.read t ~now:0. ~offset:1e6 ~bytes:1e6 in
  Alcotest.(check bool) "queues behind" true (t2 > t1);
  Alcotest.(check bool) "both positive" true (t1 > 0.)

let test_read_after_idle () =
  let t = Hbm.create Hbm.hbm3e_module in
  let _ = Hbm.read t ~now:0. ~offset:0. ~bytes:1e6 in
  let later = Hbm.read t ~now:1. ~offset:0. ~bytes:1e6 in
  Alcotest.(check bool) "starts fresh after idle" true (later < 1.1)

let test_read_errors () =
  let t = Hbm.create Hbm.hbm3e_module in
  Alcotest.check_raises "offset" (Invalid_argument "Hbm.read: negative offset") (fun () ->
      ignore (Hbm.read t ~now:0. ~offset:(-1.) ~bytes:10.));
  Alcotest.check_raises "bytes" (Invalid_argument "Hbm.read: nonpositive size") (fun () ->
      ignore (Hbm.read t ~now:0. ~offset:0. ~bytes:0.))

let test_replay_sequential () =
  let t = Hbm.create Hbm.hbm3e_module in
  let trace = List.init 16 (fun i -> (float_of_int i *. 4e6, 4e6)) in
  let total = Hbm.replay t trace in
  let bytes = 16. *. 4e6 in
  Tu.check_rel "replay ~ peak" ~tolerance:0.25 (bytes /. 1e12) total

let test_stats_accumulate () =
  let t = Hbm.create Hbm.hbm3e_module in
  let _ = Hbm.read t ~now:0. ~offset:0. ~bytes:1e6 in
  let _ = Hbm.read t ~now:0. ~offset:2e6 ~bytes:3e6 in
  let s = Hbm.stats t in
  Tu.check_float "bytes" 4e6 s.Hbm.total_bytes;
  Alcotest.(check int) "requests" 2 s.Hbm.requests;
  Alcotest.(check bool) "busy > 0" true (s.Hbm.busy_time > 0.)

let test_reset () =
  let t = Hbm.create Hbm.hbm3e_module in
  let _ = Hbm.read t ~now:0. ~offset:0. ~bytes:1e6 in
  Hbm.reset t;
  let s = Hbm.stats t in
  Tu.check_float "bytes cleared" 0. s.Hbm.total_bytes;
  Alcotest.(check int) "requests cleared" 0 s.Hbm.requests;
  let t1 = Hbm.read t ~now:0. ~offset:0. ~bytes:1e6 in
  Alcotest.(check bool) "channels free" true (t1 < 0.01)

let test_bandwidth_scales_with_channels () =
  let slow = Hbm.create (Hbm.config_for_bandwidth 100e9) in
  let fast = Hbm.create (Hbm.config_for_bandwidth 1.6e12) in
  let b = 32e6 in
  let bw_slow = Hbm.effective_bandwidth slow ~bytes:b in
  let bw_fast = Hbm.effective_bandwidth fast ~bytes:b in
  Alcotest.(check bool) "faster config faster" true (bw_fast > 8. *. bw_slow)

let qcheck_read_completion_positive =
  Tu.qtest ~count:60 "hbm: completion after issue and duration sane"
    QCheck2.Gen.(pair (float_bound_inclusive 1e8) (float_range 64. 1e7))
    (fun (offset, bytes) ->
      let t = Hbm.create Hbm.hbm3e_module in
      let now = 0.5 in
      let dt = Hbm.read t ~now ~offset ~bytes -. now in
      dt > 0. && dt < 1. (* 10 MB cannot take a second on HBM3E *))

let suite =
  [
    ("hbm: hbm3e peak", `Quick, test_hbm3e_peak);
    ("hbm: config for bandwidth", `Quick, test_config_for_bandwidth);
    ("hbm: sequential near peak", `Quick, test_large_sequential_near_peak);
    ("hbm: small reads derated", `Quick, test_small_reads_derated);
    ("hbm: state advances", `Quick, test_read_monotone_state);
    ("hbm: idle recovery", `Quick, test_read_after_idle);
    ("hbm: read errors", `Quick, test_read_errors);
    ("hbm: replay", `Quick, test_replay_sequential);
    ("hbm: stats", `Quick, test_stats_accumulate);
    ("hbm: reset", `Quick, test_reset);
    ("hbm: channel scaling", `Quick, test_bandwidth_scales_with_channels);
    qcheck_read_completion_positive;
  ]
