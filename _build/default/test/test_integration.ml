(* End-to-end integration tests: full compilation of structurally complete
   (scaled) models through the public API, plus DSE environment checks. *)

open Elk_model

let pod () = Lazy.force Tu.default_pod
let ctx () = Lazy.force Tu.default_ctx
let model () = Lazy.force Tu.tiny_llama

let compiled = lazy (Elk.Compile.compile (Lazy.force Tu.default_ctx) ~pod:(Lazy.force Tu.default_pod) (Lazy.force Tu.tiny_llama))

let test_compile_end_to_end () =
  let c = Lazy.force compiled in
  Alcotest.(check bool) "positive latency" true (Elk.Compile.latency c > 0.);
  Alcotest.(check bool) "tried orders" true (c.Elk.Compile.orders_tried >= 1);
  Alcotest.(check bool) "compile time recorded" true (c.Elk.Compile.compile_seconds > 0.)

let test_compile_program_valid () =
  let c = Lazy.force compiled in
  match
    Elk.Program.validate c.Elk.Compile.program ~n:(Graph.length c.Elk.Compile.chip_graph)
  with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_compile_latency_includes_allreduce () =
  let c = Lazy.force compiled in
  Tu.check_rel "latency = timeline + allreduce" ~tolerance:1e-9
    (c.Elk.Compile.timeline.Elk.Timeline.total +. c.Elk.Compile.allreduce)
    (Elk.Compile.latency c)

let test_reorder_never_hurts () =
  let dyn =
    Elk.Compile.compile ~options:Elk.Compile.dyn_options (ctx ()) ~pod:(pod ()) (model ())
  in
  let full = Lazy.force compiled in
  Alcotest.(check bool) "full <= dyn" true
    (full.Elk.Compile.timeline.Elk.Timeline.total
    <= dyn.Elk.Compile.timeline.Elk.Timeline.total +. 1e-12)

let test_compile_other_models () =
  (* Gemma (GQA + gelu), OPT (layernorm MLP) and DiT compile end to end. *)
  List.iter
    (fun (cfg, phase) ->
      let g = Elk_model.Zoo.build cfg phase in
      let c =
        Elk.Compile.compile ~options:Elk.Compile.dyn_options (ctx ()) ~pod:(pod ()) g
      in
      Alcotest.(check bool) (cfg.Elk_model.Zoo.cfg_name ^ " compiles") true
        (Elk.Compile.latency c > 0.))
    [
      (Elk_model.Zoo.scale Elk_model.Zoo.gemma2_27b ~factor:16 ~layer_factor:23,
       Elk_model.Zoo.Decode { batch = 8; ctx = 128 });
      (Elk_model.Zoo.scale Elk_model.Zoo.opt_30b ~factor:8 ~layer_factor:24,
       Elk_model.Zoo.Decode { batch = 8; ctx = 128 });
      (Elk_model.Zoo.scale Elk_model.Zoo.dit_xl ~factor:8 ~layer_factor:14,
       Elk_model.Zoo.Decode { batch = 2; ctx = 1 });
    ]

let test_compile_prefill () =
  let cfg = Elk_model.Zoo.scale Elk_model.Zoo.llama2_13b ~factor:16 ~layer_factor:20 in
  let g = Elk_model.Zoo.build cfg (Elk_model.Zoo.Prefill { batch = 2; seq = 64 }) in
  let c = Elk.Compile.compile ~options:Elk.Compile.dyn_options (ctx ()) ~pod:(pod ()) g in
  Alcotest.(check bool) "prefill compiles" true (Elk.Compile.latency c > 0.)

let test_single_chip_pod () =
  let pod1 = Elk_arch.Arch.Presets.scaled_pod ~chips:1 () in
  let c = Elk.Compile.compile ~options:Elk.Compile.dyn_options (ctx ()) ~pod:pod1 (model ()) in
  Tu.check_float "no allreduce" 0. c.Elk.Compile.allreduce

let test_dse_env_defaults () =
  let e = Elk_dse.Dse.env () in
  Alcotest.(check int) "4 chips" 4 e.Elk_dse.Dse.pod.Elk_arch.Arch.chips;
  Alcotest.(check int) "64 cores" 64 e.Elk_dse.Dse.pod.Elk_arch.Arch.chip.Elk_arch.Arch.cores

let test_dse_env_overrides () =
  let e = Elk_dse.Dse.env ~hbm_bw_per_chip:1e12 ~link_bw:11e9 ~flops_scale:2. () in
  let chip = e.Elk_dse.Dse.pod.Elk_arch.Arch.chip in
  Tu.check_float "hbm" 1e12 chip.Elk_arch.Arch.hbm_bandwidth;
  Tu.check_float "link" 11e9 chip.Elk_arch.Arch.intercore_link.Elk_arch.Arch.bandwidth;
  let base = Elk_arch.Arch.Presets.scaled_chip () in
  Tu.check_rel "flops doubled" ~tolerance:1e-9
    (2. *. base.Elk_arch.Arch.matmul_flops_per_core)
    chip.Elk_arch.Arch.matmul_flops_per_core

let test_dse_evaluate_sim_backed () =
  let e = Elk_dse.Dse.env () in
  let ev = Elk_dse.Dse.evaluate e (model ()) Elk_baselines.Baselines.Basic in
  Alcotest.(check bool) "sim backed" true (ev.Elk_dse.Dse.sim <> None);
  Alcotest.(check bool) "latency positive" true (ev.Elk_dse.Dse.latency > 0.);
  let ideal = Elk_dse.Dse.evaluate e (model ()) Elk_baselines.Baselines.Ideal in
  Alcotest.(check bool) "ideal analytic" true (ideal.Elk_dse.Dse.sim = None)

let test_dse_more_hbm_not_slower () =
  (* Fig 19's monotonicity: more HBM bandwidth never hurts Elk. *)
  let m = model () in
  let slow = Elk_dse.Dse.env ~hbm_bw_per_chip:40e9 () in
  let fast = Elk_dse.Dse.env ~hbm_bw_per_chip:400e9 () in
  let l e = (Elk_dse.Dse.evaluate ~elk_options:Elk.Compile.dyn_options e m Elk_baselines.Baselines.Elk_dyn).Elk_dse.Dse.latency in
  Alcotest.(check bool) "faster hbm faster" true (l fast <= l slow *. 1.05)

let test_dse_more_cores_not_slower () =
  (* Fig 23: scaling cores (with per-core HBM share) reduces latency. *)
  let m = model () in
  let small = Elk_dse.Dse.env ~cores:16 () in
  let large = Elk_dse.Dse.env ~cores:64 () in
  let l e = (Elk_dse.Dse.evaluate ~elk_options:Elk.Compile.dyn_options e m Elk_baselines.Baselines.Elk_dyn).Elk_dse.Dse.latency in
  Alcotest.(check bool) "more cores faster" true (l large <= l small *. 1.05)

let suite =
  [
    ("compile: end to end", `Slow, test_compile_end_to_end);
    ("compile: program valid", `Slow, test_compile_program_valid);
    ("compile: latency composition", `Slow, test_compile_latency_includes_allreduce);
    ("compile: reorder never hurts", `Slow, test_reorder_never_hurts);
    ("compile: other model families", `Slow, test_compile_other_models);
    ("compile: prefill phase", `Slow, test_compile_prefill);
    ("compile: single chip", `Slow, test_single_chip_pod);
    ("dse: env defaults", `Quick, test_dse_env_defaults);
    ("dse: env overrides", `Quick, test_dse_env_overrides);
    ("dse: sim-backed evaluate", `Slow, test_dse_evaluate_sim_backed);
    ("dse: hbm monotonicity", `Slow, test_dse_more_hbm_not_slower);
    ("dse: core-count monotonicity", `Slow, test_dse_more_cores_not_slower);
  ]

let test_full_scale_layer () =
  (* The unscaled IPU-MK2 geometry works end to end: a 2-layer full-width
     Llama2-13B compiles and simulates at 1472 cores/chip. *)
  let chip = Elk_arch.Arch.Presets.ipu_mk2_full in
  let pod4 = Elk_arch.Arch.Presets.ipu_pod4_full in
  let cost = Elk_cost.Costmodel.train ~samples_per_kind:150 chip in
  let fctx = Elk_partition.Partition.make_ctx cost in
  let cfg = { Elk_model.Zoo.llama2_13b with Elk_model.Zoo.layers = 2 } in
  let g = Elk_model.Zoo.build cfg (Elk_model.Zoo.Decode { batch = 32; ctx = 2048 }) in
  let c = Elk.Compile.compile ~options:Elk.Compile.dyn_options fctx ~pod:pod4 g in
  let r = Elk_sim.Sim.run fctx c.Elk.Compile.schedule in
  Alcotest.(check bool) "positive" true (r.Elk_sim.Sim.total > 0.);
  (* 2 layers move ~4 GB per chip per token: the simulated latency must be
     in the right physical ballpark for 4 TB/s HBM (0.5-5 ms). *)
  Alcotest.(check bool) "physical ballpark" true
    (r.Elk_sim.Sim.total > 2e-4 && r.Elk_sim.Sim.total < 5e-3);
  Alcotest.(check bool) "good hbm utilization" true (r.Elk_sim.Sim.hbm_util > 0.5)

let suite = suite @ [ ("full-scale: 2-layer llama on MK2", `Slow, test_full_scale_layer) ]
