open Elk_util

(* ------------------------------------------------------------------ *)
(* Units                                                              *)
(* ------------------------------------------------------------------ *)

let test_byte_units () =
  Tu.check_float "kib" 1024. (Units.kib 1.);
  Tu.check_float "mib" (1024. *. 1024.) (Units.mib 1.);
  Tu.check_float "gib" (1024. *. 1024. *. 1024.) (Units.gib 1.);
  Tu.check_float "kb" 1e3 (Units.kb 1.);
  Tu.check_float "mb" 2e6 (Units.mb 2.);
  Tu.check_float "gb" 5e8 (Units.gb 0.5);
  Tu.check_float "tb" 1e12 (Units.tb 1.)

let test_rate_units () =
  Tu.check_float "gbps" 5.5e9 (Units.gbps 5.5);
  Tu.check_float "tbps" 1.6e13 (Units.tbps 16.);
  Tu.check_float "tflops" 1e15 (Units.tflops 1000.)

let test_time_units () =
  Tu.check_float "us" 1e-6 (Units.us 1.);
  Tu.check_float "ms" 2.5e-3 (Units.ms 2.5);
  Tu.check_float "ns" 1.5e-7 (Units.ns 150.)

let test_pp_bytes () =
  let s v = Format.asprintf "%a" Units.pp_bytes v in
  Alcotest.(check string) "bytes" "512.00B" (s 512.);
  Alcotest.(check string) "kb" "1.50KB" (s 1500.);
  Alcotest.(check string) "mb" "2.00MB" (s 2e6);
  Alcotest.(check string) "tb" "3.00TB" (s 3e12)

let test_pp_time () =
  let s v = Format.asprintf "%a" Units.pp_time v in
  Alcotest.(check string) "s" "2.000s" (s 2.);
  Alcotest.(check string) "ms" "1.500ms" (s 1.5e-3);
  Alcotest.(check string) "us" "12.000us" (s 12e-6);
  Alcotest.(check string) "ns" "120.0ns" (s 1.2e-7)

(* ------------------------------------------------------------------ *)
(* Pareto                                                             *)
(* ------------------------------------------------------------------ *)

let pt x y = { Pareto.x; y; payload = () }

let test_pareto_empty () =
  Alcotest.(check int) "empty" 0 (List.length (Pareto.frontier []))

let test_pareto_single () =
  Alcotest.(check int) "single" 1 (List.length (Pareto.frontier [ pt 1. 1. ]))

let test_pareto_dominated_dropped () =
  let f = Pareto.frontier [ pt 1. 1.; pt 2. 2. ] in
  Alcotest.(check int) "size" 1 (List.length f);
  Tu.check_float "x" 1. (List.hd f).Pareto.x

let test_pareto_keeps_tradeoffs () =
  let f = Pareto.frontier [ pt 1. 3.; pt 2. 2.; pt 3. 1. ] in
  Alcotest.(check int) "all kept" 3 (List.length f)

let test_pareto_sorted_and_canonical () =
  let f = Pareto.frontier [ pt 3. 1.; pt 1. 3.; pt 2. 2.; pt 2.5 2.5 ] in
  Alcotest.(check bool) "canonical" true (Pareto.is_frontier f);
  let xs = List.map (fun p -> p.Pareto.x) f in
  Alcotest.(check (list (float 0.))) "sorted" [ 1.; 2.; 3. ] xs

let test_pareto_equal_x_keeps_min_y () =
  let f = Pareto.frontier [ pt 1. 5.; pt 1. 2. ] in
  Alcotest.(check int) "size" 1 (List.length f);
  Tu.check_float "y" 2. (List.hd f).Pareto.y

let test_is_frontier_rejects_unsorted () =
  Alcotest.(check bool) "unsorted" false (Pareto.is_frontier [ pt 2. 1.; pt 1. 2. ]);
  Alcotest.(check bool) "flat y" false (Pareto.is_frontier [ pt 1. 2.; pt 2. 2. ])

let test_best_y_under_x () =
  let f = Pareto.frontier [ pt 1. 3.; pt 2. 2.; pt 3. 1. ] in
  (match Pareto.best_y_under_x f 2.5 with
  | Some p -> Tu.check_float "best y" 2. p.Pareto.y
  | None -> Alcotest.fail "expected a point");
  Alcotest.(check bool) "below all" true (Pareto.best_y_under_x f 0.5 = None)

let test_min_x_min_y () =
  let f = [ pt 1. 3.; pt 2. 2.; pt 3. 1. ] in
  (match (Pareto.min_x f, Pareto.min_y f) with
  | Some a, Some b ->
      Tu.check_float "min x" 1. a.Pareto.x;
      Tu.check_float "min y" 1. b.Pareto.y
  | _ -> Alcotest.fail "nonempty");
  Alcotest.(check bool) "empty" true (Pareto.min_x [] = None)

let qcheck_frontier_canonical =
  Tu.qtest "pareto: frontier is canonical"
    QCheck2.Gen.(list_size (int_bound 40) (pair (float_bound_inclusive 100.) (float_bound_inclusive 100.)))
    (fun pts ->
      let f = Pareto.frontier (List.map (fun (x, y) -> pt x y) pts) in
      Pareto.is_frontier f)

let qcheck_frontier_subset_undominated =
  Tu.qtest "pareto: no frontier point dominated by any input"
    QCheck2.Gen.(list_size (int_bound 30) (pair (float_bound_inclusive 10.) (float_bound_inclusive 10.)))
    (fun pts ->
      let all = List.map (fun (x, y) -> pt x y) pts in
      let f = Pareto.frontier all in
      List.for_all
        (fun p ->
          not
            (List.exists
               (fun q ->
                 q.Pareto.x <= p.Pareto.x && q.Pareto.y < p.Pareto.y)
               all))
        f)

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_mean_stdev () =
  Tu.check_float "mean empty" 0. (Stats.mean []);
  Tu.check_float "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  Tu.check_float "stdev const" 0. (Stats.stdev [ 5.; 5.; 5. ]);
  Tu.check_close ~eps:1e-9 "stdev" (sqrt (2. /. 3.)) (Stats.stdev [ 1.; 2.; 3. ])

let test_percentile () =
  Tu.check_float "p0" 1. (Stats.percentile 0. [ 3.; 1.; 2. ]);
  Tu.check_float "p100" 3. (Stats.percentile 100. [ 3.; 1.; 2. ]);
  Tu.check_float "p50" 2. (Stats.percentile 50. [ 3.; 1.; 2. ]);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty list")
    (fun () -> ignore (Stats.percentile 50. []));
  Alcotest.check_raises "range" (Invalid_argument "Stats.percentile: p out of range")
    (fun () -> ignore (Stats.percentile 101. [ 1. ]))

let test_geomean () =
  Tu.check_close ~eps:1e-9 "geomean" 2. (Stats.geomean [ 1.; 2.; 4. ]);
  Tu.check_float "empty" 0. (Stats.geomean [])

let test_mape_r2 () =
  Tu.check_float "perfect mape" 0. (Stats.mape [ (1., 1.); (2., 2.) ]);
  Tu.check_close ~eps:1e-9 "10%% mape" 0.1 (Stats.mape [ (10., 11.) ]);
  Tu.check_float "zero measured skipped" 0. (Stats.mape [ (0., 5.) ]);
  Tu.check_float "perfect r2" 1. (Stats.r2 [ (1., 1.); (2., 2.); (3., 3.) ])

let test_ols_exact_line () =
  (* y = 3x + 1 must be recovered exactly. *)
  let samples = List.init 10 (fun i -> ([| float_of_int i |], (3. *. float_of_int i) +. 1.)) in
  let c = Stats.ols samples in
  Tu.check_close ~eps:1e-6 "slope" 3. c.(0);
  Tu.check_close ~eps:1e-5 "intercept" 1. c.(1)

let test_ols_two_features () =
  let samples =
    List.init 20 (fun i ->
        let x = float_of_int i and y = float_of_int (i * i mod 7) in
        ([| x; y |], (2. *. x) -. (0.5 *. y) +. 4.))
  in
  let c = Stats.ols samples in
  Tu.check_close ~eps:1e-5 "w0" 2. c.(0);
  Tu.check_close ~eps:1e-5 "w1" (-0.5) c.(1);
  Tu.check_close ~eps:1e-4 "b" 4. c.(2)

let test_ols_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.ols: no samples") (fun () ->
      ignore (Stats.ols []));
  Alcotest.check_raises "dims" (Invalid_argument "Stats.ols: inconsistent feature dims")
    (fun () -> ignore (Stats.ols [ ([| 1. |], 1.); ([| 1.; 2. |], 2.) ]))

let test_predict () =
  Tu.check_float "predict" 11. (Stats.predict [| 2.; 3. |] [| 4. |])

let qcheck_ols_fits_linear =
  Tu.qtest ~count:50 "stats: ols recovers random affine functions"
    QCheck2.Gen.(triple (float_range (-5.) 5.) (float_range (-5.) 5.) (int_range 5 30))
    (fun (w, b, n) ->
      let samples =
        List.init n (fun i -> ([| float_of_int i |], (w *. float_of_int i) +. b))
      in
      let c = Stats.ols samples in
      Float.abs (c.(0) -. w) < 1e-4 && Float.abs (c.(1) -. b) < 1e-3)

(* ------------------------------------------------------------------ *)
(* Series                                                             *)
(* ------------------------------------------------------------------ *)

let test_series_empty () =
  let s = Series.create () in
  Tu.check_float "total" 0. (Series.total s);
  Tu.check_float "mean" 0. (Series.mean_rate s);
  let lo, hi = Series.horizon s in
  Tu.check_float "lo" 0. lo;
  Tu.check_float "hi" 0. hi

let test_series_uniform_rate () =
  let s = Series.create () in
  Series.add s ~t_start:0. ~t_end:10. ~volume:100.;
  let bins = Series.bins s ~n:5 in
  Array.iter (fun (_, r) -> Tu.check_close ~eps:1e-6 "rate" 10. r) bins;
  Tu.check_close ~eps:1e-9 "mean" 10. (Series.mean_rate s)

let test_series_two_phases () =
  let s = Series.create () in
  Series.add s ~t_start:0. ~t_end:1. ~volume:10.;
  Series.add s ~t_start:1. ~t_end:2. ~volume:30.;
  let bins = Series.bins s ~n:2 in
  Tu.check_close ~eps:1e-6 "first" 10. (snd bins.(0));
  Tu.check_close ~eps:1e-6 "second" 30. (snd bins.(1));
  Tu.check_close ~eps:1e-9 "peak" 30. (Series.peak_rate s ~n:2)

let test_series_instant () =
  let s = Series.create () in
  Series.add s ~t_start:5. ~t_end:5. ~volume:7.;
  Series.add s ~t_start:0. ~t_end:10. ~volume:0.;
  Tu.check_float "total" 7. (Series.total s)

let test_series_errors () =
  let s = Series.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Series.add: negative interval")
    (fun () -> Series.add s ~t_start:2. ~t_end:1. ~volume:1.);
  Alcotest.check_raises "bins" (Invalid_argument "Series.bins: n must be positive")
    (fun () -> ignore (Series.bins s ~n:0))

let qcheck_series_conserves_volume =
  Tu.qtest ~count:60 "series: binning conserves volume"
    QCheck2.Gen.(
      list_size (int_range 1 20)
        (triple (float_bound_inclusive 50.) (float_bound_inclusive 10.)
           (float_bound_inclusive 100.)))
    (fun contribs ->
      let s = Series.create () in
      List.iter
        (fun (t0, dt, v) -> Series.add s ~t_start:t0 ~t_end:(t0 +. dt) ~volume:v)
        contribs;
      let total = List.fold_left (fun a (_, _, v) -> a +. v) 0. contribs in
      let lo, hi = Series.horizon s in
      let width = if hi > lo then (hi -. lo) /. 16. else 1. in
      let binned =
        Array.fold_left (fun a (_, r) -> a +. (r *. width)) 0. (Series.bins s ~n:16)
      in
      Float.abs (binned -. total) <= 1e-6 +. (0.02 *. total))

(* ------------------------------------------------------------------ *)
(* Xrng                                                               *)
(* ------------------------------------------------------------------ *)

let test_xrng_deterministic () =
  let a = Xrng.create 1 and b = Xrng.create 1 in
  for _ = 1 to 20 do
    Alcotest.(check int) "same stream" (Xrng.int a 1000) (Xrng.int b 1000)
  done

let test_xrng_seeds_differ () =
  let a = Xrng.create 1 and b = Xrng.create 2 in
  let la = List.init 10 (fun _ -> Xrng.int a 1_000_000) in
  let lb = List.init 10 (fun _ -> Xrng.int b 1_000_000) in
  Alcotest.(check bool) "different" true (la <> lb)

let test_xrng_bounds () =
  let r = Xrng.create 7 in
  for _ = 1 to 500 do
    let v = Xrng.int r 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done;
  Alcotest.check_raises "bound" (Invalid_argument "Xrng.int: bound must be positive")
    (fun () -> ignore (Xrng.int r 0))

let test_xrng_float_range () =
  let r = Xrng.create 3 in
  for _ = 1 to 500 do
    let v = Xrng.float r 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0. && v < 2.5)
  done

let test_xrng_split_independent () =
  let r = Xrng.create 5 in
  let s = Xrng.split r in
  let a = List.init 5 (fun _ -> Xrng.int s 1000) in
  let b = List.init 5 (fun _ -> Xrng.int r 1000) in
  Alcotest.(check bool) "streams differ" true (a <> b)

let test_xrng_gaussian_moments () =
  let r = Xrng.create 11 in
  let xs = List.init 4000 (fun _ -> Xrng.gaussian r) in
  Tu.check_rel "mean ~ 0" ~tolerance:1. 0.05 (Float.abs (Stats.mean xs) +. 0.001);
  Tu.check_rel "stdev ~ 1" ~tolerance:0.1 1. (Stats.stdev xs)

let test_xrng_pick_shuffle () =
  let r = Xrng.create 13 in
  Alcotest.(check int) "singleton" 42 (Xrng.pick r [ 42 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Xrng.pick: empty list") (fun () ->
      ignore (Xrng.pick r []));
  let xs = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let sh = Xrng.shuffle r xs in
  Alcotest.(check (list int)) "permutation" xs (List.sort compare sh)

(* ------------------------------------------------------------------ *)
(* Table                                                              *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_rowf t "%d|%s" 3 "four";
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && String.sub s 0 4 = "== d");
  Alcotest.(check bool) "has row" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "3  four  "))

let test_table_mismatch () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "cells"
    (Invalid_argument "Table.add_row: 1 cells for 2 columns (table \"t\")") (fun () ->
      Table.add_row t [ "x" ])

let suite =
  [
    ("units: byte conversions", `Quick, test_byte_units);
    ("units: rate conversions", `Quick, test_rate_units);
    ("units: time conversions", `Quick, test_time_units);
    ("units: pretty bytes", `Quick, test_pp_bytes);
    ("units: pretty time", `Quick, test_pp_time);
    ("pareto: empty", `Quick, test_pareto_empty);
    ("pareto: single", `Quick, test_pareto_single);
    ("pareto: dominated dropped", `Quick, test_pareto_dominated_dropped);
    ("pareto: tradeoffs kept", `Quick, test_pareto_keeps_tradeoffs);
    ("pareto: sorted canonical", `Quick, test_pareto_sorted_and_canonical);
    ("pareto: equal x keeps min y", `Quick, test_pareto_equal_x_keeps_min_y);
    ("pareto: is_frontier rejects", `Quick, test_is_frontier_rejects_unsorted);
    ("pareto: best under budget", `Quick, test_best_y_under_x);
    ("pareto: min_x/min_y", `Quick, test_min_x_min_y);
    qcheck_frontier_canonical;
    qcheck_frontier_subset_undominated;
    ("stats: mean/stdev", `Quick, test_mean_stdev);
    ("stats: percentile", `Quick, test_percentile);
    ("stats: geomean", `Quick, test_geomean);
    ("stats: mape/r2", `Quick, test_mape_r2);
    ("stats: ols exact line", `Quick, test_ols_exact_line);
    ("stats: ols two features", `Quick, test_ols_two_features);
    ("stats: ols errors", `Quick, test_ols_errors);
    ("stats: predict", `Quick, test_predict);
    qcheck_ols_fits_linear;
    ("series: empty", `Quick, test_series_empty);
    ("series: uniform rate", `Quick, test_series_uniform_rate);
    ("series: two phases", `Quick, test_series_two_phases);
    ("series: instantaneous", `Quick, test_series_instant);
    ("series: errors", `Quick, test_series_errors);
    qcheck_series_conserves_volume;
    ("xrng: deterministic", `Quick, test_xrng_deterministic);
    ("xrng: seeds differ", `Quick, test_xrng_seeds_differ);
    ("xrng: int bounds", `Quick, test_xrng_bounds);
    ("xrng: float range", `Quick, test_xrng_float_range);
    ("xrng: split independence", `Quick, test_xrng_split_independent);
    ("xrng: gaussian moments", `Quick, test_xrng_gaussian_moments);
    ("xrng: pick/shuffle", `Quick, test_xrng_pick_shuffle);
    ("table: render", `Quick, test_table_render);
    ("table: arity mismatch", `Quick, test_table_mismatch);
  ]
