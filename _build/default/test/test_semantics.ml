(* End-to-end semantic fixtures: hand-built schedules with known-by-hand
   timelines (locking the §4.5 device rules), plus randomized
   graph→schedule→program→timeline→simulator pipeline properties. *)

open Elk_model
open Elk_tensor
module P = Elk_partition.Partition

let ctx () = Lazy.force Tu.default_ctx

(* ------------------------------------------------------------------ *)
(* Hand-built schedule with a hand-computed timeline                  *)
(* ------------------------------------------------------------------ *)

let dummy_plan ~exec_time =
  {
    P.factors = [| 1; 1 |];
    tile = [| 4; 4 |];
    cores_used = 1;
    exec_space = 64.;
    exec_time;
    compute_time = exec_time;
    exchange_bytes_per_core = 0.;
    hbm_needed_per_core = 0.;
    max_share_group = 1;
  }

let dummy_popt ~preload_len =
  {
    P.frac = 1.;
    preload_space = 0.;
    dist_bytes_per_core = 0.;
    dist_time = 0.;
    hbm_device_bytes = 0.;
    noc_inject_bytes = 0.;
    preload_len;
    hbm_floor = preload_len;
  }

let two_op_graph () =
  let b = Graph.builder ~name:"manual" in
  let a = Graph.add b ~role:"a" (Opspec.softmax ~name:"a" ~rows:4 ~cols:4 ()) in
  let _ = Graph.add b ~deps:[ a ] ~role:"b" (Opspec.softmax ~name:"b" ~rows:4 ~cols:4 ()) in
  Graph.finish b

let manual_schedule ~windows ~len0 ~len1 ~exec0 ~exec1 =
  let graph = two_op_graph () in
  let entry id len exec =
    {
      Elk.Schedule.node_id = id;
      plan = dummy_plan ~exec_time:exec;
      popt = dummy_popt ~preload_len:len;
      preload_len = len;
      dist_time = 0.;
    }
  in
  {
    Elk.Schedule.graph;
    order = [| 0; 1 |];
    windows;
    entries = [| entry 0 len0 exec0; entry 1 len1 exec1 |];
    est_total = 0.;
  }

let test_manual_timeline_overlap () =
  (* Windows [1;1;0]: op1's preload overlaps op0's execution.
     pre0=[0,5us], exe0=[5,15], pre1=[5,10] (gate-free window 1),
     exe1=[max(15,10)=15, 25].  Total 25us; overlap = pre1 within exe0
     = 5us; preload-only = pre0 = 5us. *)
  let s = manual_schedule ~windows:[| 1; 1; 0 |] ~len0:5e-6 ~len1:5e-6 ~exec0:10e-6 ~exec1:10e-6 in
  (match Elk.Schedule.validate s with Ok () -> () | Error m -> Alcotest.fail m);
  let tl = Elk.Timeline.evaluate (ctx ()) s in
  Tu.check_close ~eps:1e-12 "total" 25e-6 tl.Elk.Timeline.total;
  Tu.check_close ~eps:1e-12 "pre0 end" 5e-6 tl.Elk.Timeline.per_op.(0).Elk.Timeline.pre_end;
  Tu.check_close ~eps:1e-12 "exe0 start" 5e-6 tl.Elk.Timeline.per_op.(0).Elk.Timeline.exe_start;
  Tu.check_close ~eps:1e-12 "pre1 start" 5e-6 tl.Elk.Timeline.per_op.(1).Elk.Timeline.pre_start;
  Tu.check_close ~eps:1e-12 "exe1 start" 15e-6 tl.Elk.Timeline.per_op.(1).Elk.Timeline.exe_start;
  Tu.check_close ~eps:1e-12 "overlap" 5e-6 tl.Elk.Timeline.bd.Elk.Timeline.overlapped;
  Tu.check_close ~eps:1e-12 "preload only" 5e-6 tl.Elk.Timeline.bd.Elk.Timeline.preload_only

let test_manual_timeline_serialized () =
  (* Windows [2;0;0]: both preloads in the initial batch, sequential on the
     preload channel: pre0=[0,5], pre1=[5,10], exe0=[5,15], exe1=[15,25]. *)
  let s = manual_schedule ~windows:[| 2; 0; 0 |] ~len0:5e-6 ~len1:5e-6 ~exec0:10e-6 ~exec1:10e-6 in
  let tl = Elk.Timeline.evaluate (ctx ()) s in
  Tu.check_close ~eps:1e-12 "pre1 right after pre0" 5e-6
    tl.Elk.Timeline.per_op.(1).Elk.Timeline.pre_start;
  Tu.check_close ~eps:1e-12 "total" 25e-6 tl.Elk.Timeline.total

let three_op_schedule ~windows =
  let b = Graph.builder ~name:"manual3" in
  let a = Graph.add b ~role:"a" (Opspec.softmax ~name:"a" ~rows:4 ~cols:4 ()) in
  let c = Graph.add b ~deps:[ a ] ~role:"b" (Opspec.softmax ~name:"b" ~rows:4 ~cols:4 ()) in
  let _ = Graph.add b ~deps:[ c ] ~role:"c" (Opspec.softmax ~name:"c" ~rows:4 ~cols:4 ()) in
  let graph = Graph.finish b in
  let entry id =
    {
      Elk.Schedule.node_id = id;
      plan = dummy_plan ~exec_time:10e-6;
      popt = dummy_popt ~preload_len:5e-6;
      preload_len = 5e-6;
      dist_time = 0.;
    }
  in
  {
    Elk.Schedule.graph;
    order = [| 0; 1; 2 |];
    windows;
    entries = [| entry 0; entry 1; entry 2 |];
    est_total = 0.;
  }

let test_manual_timeline_gated () =
  (* Windows [1;1;1;0]: op2's preload sits in window 2, which may only
     start once op0's execution has finished (rule 1 of §4.5):
     pre0=[0,5], exe0=[5,15], pre1=[5,10], pre2=[max(10, exe_end0=15)=15,20],
     exe1=[15,25], exe2=[25,35]. *)
  let s = three_op_schedule ~windows:[| 1; 1; 1; 0 |] in
  (match Elk.Schedule.validate s with Ok () -> () | Error m -> Alcotest.fail m);
  let tl = Elk.Timeline.evaluate (ctx ()) s in
  Tu.check_close ~eps:1e-12 "pre2 gated by exe0 end" 15e-6
    tl.Elk.Timeline.per_op.(2).Elk.Timeline.pre_start;
  Tu.check_close ~eps:1e-12 "total" 35e-6 tl.Elk.Timeline.total

let test_manual_long_preload_stalls () =
  (* A 30us preload for op1 cannot hide behind a 10us execution: exe1
     starts when its preload lands. *)
  let s = manual_schedule ~windows:[| 1; 1; 0 |] ~len0:5e-6 ~len1:30e-6 ~exec0:10e-6 ~exec1:10e-6 in
  let tl = Elk.Timeline.evaluate (ctx ()) s in
  Tu.check_close ~eps:1e-12 "exe1 waits for preload" 35e-6
    tl.Elk.Timeline.per_op.(1).Elk.Timeline.exe_start;
  Tu.check_close ~eps:1e-12 "total" 45e-6 tl.Elk.Timeline.total

let test_validate_rejects_late_window () =
  (* Op 0 preloaded in window 1 would start during its own execution. *)
  let s = manual_schedule ~windows:[| 0; 2; 0 |] ~len0:1e-6 ~len1:1e-6 ~exec0:1e-6 ~exec1:1e-6 in
  Alcotest.(check bool) "invalid" true (Elk.Schedule.validate s <> Ok ())

let test_program_of_manual () =
  let s = manual_schedule ~windows:[| 1; 1; 0 |] ~len0:1e-6 ~len1:1e-6 ~exec0:1e-6 ~exec1:1e-6 in
  let p = Elk.Program.of_schedule s in
  Alcotest.(check bool) "P0 P1 E0 E1" true
    (p.Elk.Program.instrs
    = [|
        Elk.Program.Preload_async 0; Elk.Program.Preload_async 1; Elk.Program.Execute 0;
        Elk.Program.Execute 1;
      |])

(* ------------------------------------------------------------------ *)
(* Randomized pipeline properties                                     *)
(* ------------------------------------------------------------------ *)

let random_graph rng =
  let b = Graph.builder ~name:"rand" in
  let n = 3 + Elk_util.Xrng.int rng 10 in
  for i = 0 to n - 1 do
    let op =
      match Elk_util.Xrng.int rng 4 with
      | 0 ->
          Opspec.matmul
            ~name:(Printf.sprintf "mm%d" i)
            ~m:(1 + Elk_util.Xrng.int rng 32)
            ~n:(8 + Elk_util.Xrng.int rng 128)
            ~k:(8 + Elk_util.Xrng.int rng 128)
            ()
      | 1 ->
          Opspec.softmax
            ~name:(Printf.sprintf "sm%d" i)
            ~rows:(1 + Elk_util.Xrng.int rng 64)
            ~cols:(8 + Elk_util.Xrng.int rng 128)
            ()
      | 2 ->
          Opspec.norm
            ~name:(Printf.sprintf "nr%d" i)
            ~rows:(1 + Elk_util.Xrng.int rng 64)
            ~cols:(8 + Elk_util.Xrng.int rng 128)
            ()
      | _ ->
          Opspec.batch_matmul
            ~name:(Printf.sprintf "bm%d" i)
            ~batch:(1 + Elk_util.Xrng.int rng 8)
            ~m:(1 + Elk_util.Xrng.int rng 8)
            ~n:(4 + Elk_util.Xrng.int rng 32)
            ~k:(4 + Elk_util.Xrng.int rng 32)
            ()
    in
    ignore (Graph.add b ~role:(Printf.sprintf "op%d" i) op)
  done;
  Graph.finish b

let qcheck_pipeline_roundtrip =
  Tu.qtest ~count:30 "pipeline: schedule -> program -> timeline -> sim all valid"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Elk_util.Xrng.create seed in
      let g = random_graph rng in
      let c = ctx () in
      let s = Elk.Scheduler.run c g in
      let ok_sched = Elk.Schedule.validate s = Ok () in
      let p = Elk.Program.of_schedule s in
      let ok_prog = Elk.Program.validate p ~n:(Graph.length g) = Ok () in
      let tl = Elk.Timeline.evaluate c s in
      let sim = Elk_sim.Sim.run c s in
      ok_sched && ok_prog
      && tl.Elk.Timeline.total > 0.
      && sim.Elk_sim.Sim.total > 0.
      (* The analytic estimate and the simulator agree within 3x both
         ways on arbitrary graphs. *)
      && sim.Elk_sim.Sim.total < 3. *. tl.Elk.Timeline.total +. 1e-5
      && tl.Elk.Timeline.total < 3. *. sim.Elk_sim.Sim.total +. 1e-5)

let qcheck_sim_not_faster_than_chains =
  Tu.qtest ~count:20 "sim: makespan bounded below by both critical chains"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Elk_util.Xrng.create seed in
      let g = random_graph rng in
      let c = ctx () in
      let s = Elk.Scheduler.run c g in
      let sim = Elk_sim.Sim.run c s in
      let chip = P.ctx_chip c in
      let hbm_chain =
        Graph.total_hbm_bytes g /. chip.Elk_arch.Arch.hbm_bandwidth
      in
      let compute_chain =
        Array.fold_left
          (fun a e ->
            a
            +. (e.Elk.Schedule.plan.P.compute_time
               /. (1.03 (* skew upper bound *))))
          0. s.Elk.Schedule.entries
        *. 0.3
        (* entries hold predicted times; the device truth differs, so only
           a loose lower bound is safe *)
      in
      sim.Elk_sim.Sim.total >= hbm_chain *. 0.99
      && sim.Elk_sim.Sim.total >= compute_chain)

let qcheck_reorders_schedulable =
  Tu.qtest ~count:10 "pipeline: candidate orders schedule and validate"
    QCheck2.Gen.(int_bound 1000)
    (fun seed ->
      ignore seed;
      let c = ctx () in
      let g = Lazy.force Tu.tiny_llama_chip_graph in
      let orders = Elk.Reorder.candidate_orders ~max_orders:4 c g in
      List.for_all
        (fun order ->
          try
            let s = Elk.Scheduler.run ~order c g in
            Elk.Schedule.validate s = Ok ()
          with Elk.Scheduler.Infeasible _ -> true)
        orders)

let suite =
  [
    ("manual: overlap timeline", `Quick, test_manual_timeline_overlap);
    ("manual: serialized prebatch", `Quick, test_manual_timeline_serialized);
    ("manual: gated window", `Quick, test_manual_timeline_gated);
    ("manual: long preload stalls", `Quick, test_manual_long_preload_stalls);
    ("manual: late window invalid", `Quick, test_validate_rejects_late_window);
    ("manual: program layout", `Quick, test_program_of_manual);
    qcheck_pipeline_roundtrip;
    qcheck_sim_not_faster_than_chains;
    qcheck_reorders_schedulable;
  ]
