open Elk_dse
module B = Elk_baselines.Baselines

let model () = Lazy.force Tu.tiny_llama

let test_env_topology () =
  let m = Dse.env ~topology:`Mesh ~cores:16 () in
  (match m.Dse.pod.Elk_arch.Arch.chip.Elk_arch.Arch.topology with
  | Elk_arch.Arch.Mesh2d { rows; cols } -> Alcotest.(check int) "4x4" 16 (rows * cols)
  | Elk_arch.Arch.All_to_all | Elk_arch.Arch.Clustered _ -> Alcotest.fail "expected mesh");
  (* Mesh preset widens links 4x. *)
  let a = Dse.env ~cores:16 () in
  Tu.check_rel "mesh links 4x" ~tolerance:1e-9
    (4. *. a.Dse.pod.Elk_arch.Arch.chip.Elk_arch.Arch.intercore_link.Elk_arch.Arch.bandwidth)
    m.Dse.pod.Elk_arch.Arch.chip.Elk_arch.Arch.intercore_link.Elk_arch.Arch.bandwidth

let test_env_sram_override () =
  let e = Dse.env ~sram_per_core:(64. *. 1024.) () in
  Tu.check_float "sram" (64. *. 1024.)
    e.Dse.pod.Elk_arch.Arch.chip.Elk_arch.Arch.sram_per_core

let test_evaluate_all_order () =
  let e = Dse.env () in
  let evals = Dse.evaluate_all e (model ()) in
  Alcotest.(check (list string)) "design order"
    (List.map B.name B.all)
    (List.map (fun (v : Dse.eval) -> B.name v.Dse.design) evals)

let test_designs_ordered_by_quality () =
  let e = Dse.env () in
  let l d = (Dse.evaluate e (model ()) d).Dse.latency in
  let basic = l B.Basic and dyn = l B.Elk_dyn and ideal = l B.Ideal in
  Alcotest.(check bool) "basic >= elk-dyn" true (basic >= dyn *. 0.999);
  Alcotest.(check bool) "elk-dyn >= ideal" true (dyn >= ideal *. 0.98)

let test_slower_link_not_faster () =
  let g = model () in
  let fast = Dse.env () in
  let slow = Dse.env ~link_bw:2.75e9 () in
  let l e = (Dse.evaluate ~elk_options:Elk.Compile.dyn_options e g B.Elk_dyn).Dse.latency in
  Alcotest.(check bool) "half links not faster" true (l slow >= l fast *. 0.98)

let test_noc_split_sums () =
  let e = Dse.env () in
  match (Dse.evaluate e (model ()) B.Elk_dyn).Dse.sim with
  | None -> Alcotest.fail "expected a simulated run"
  | Some r ->
      let ic, pre = r.Elk_sim.Sim.noc_util_split in
      Tu.check_rel "split sums to total" ~tolerance:1e-9 r.Elk_sim.Sim.noc_util (ic +. pre);
      Alcotest.(check bool) "both nonneg" true (ic >= 0. && pre >= 0.)

let test_elk_full_sim_selected () =
  (* Elk-Full in the DSE path is sim-selected; its latency can never be
     worse than Elk-Dyn's (identity order is always among candidates). *)
  let e = Dse.env () in
  let full = (Dse.evaluate e (model ()) B.Elk_full).Dse.latency in
  let dyn = (Dse.evaluate e (model ()) B.Elk_dyn).Dse.latency in
  Alcotest.(check bool) "full <= dyn" true (full <= dyn *. 1.001)

let test_flops_scale_helps_prefill () =
  let cfg = Elk_model.Zoo.scale Elk_model.Zoo.llama2_13b ~factor:16 ~layer_factor:20 in
  let g = Elk_model.Zoo.build cfg (Elk_model.Zoo.Prefill { batch = 2; seq = 64 }) in
  let l fs = (Dse.evaluate ~elk_options:Elk.Compile.dyn_options (Dse.env ~flops_scale:fs ()) g B.Elk_dyn).Dse.latency in
  Alcotest.(check bool) "4x flops helps compute-bound" true (l 4. < l 1. *. 0.9)


let test_gpu_env_contends () =
  (* Paper 7: with L2 bandwidth ~ HBM bandwidth, the clustered chip is
     slower than the all-to-all chip on the same workload. *)
  let g = model () in
  let a2a = Dse.env () and gpu = Dse.env ~topology:`Gpu () in
  let l e = (Dse.evaluate ~elk_options:Elk.Compile.dyn_options e g B.Elk_dyn).Dse.latency in
  Alcotest.(check bool) "gpu slower" true (l gpu > l a2a)

let suite =
  [
    ("dse: mesh env", `Quick, test_env_topology);
    ("dse: sram override", `Quick, test_env_sram_override);
    ("dse: evaluate_all order", `Slow, test_evaluate_all_order);
    ("dse: quality ordering", `Slow, test_designs_ordered_by_quality);
    ("dse: link bandwidth direction", `Slow, test_slower_link_not_faster);
    ("dse: noc split", `Slow, test_noc_split_sums);
    ("dse: elk-full sim-selected", `Slow, test_elk_full_sim_selected);
    ("dse: flops scaling on prefill", `Slow, test_flops_scale_helps_prefill);
    ("dse: gpu fabric contends", `Slow, test_gpu_env_contends);
  ]
