(* Tests for operator splitting and multi-round partition plans. *)

open Elk_tensor
module P = Elk_partition.Partition

let ctx () = Lazy.force Tu.default_ctx

(* A matmul whose weight alone exceeds per-core SRAM at minimal sharing:
   96 KB/core x 64 cores ~ 6 MB; 8000 x 640 fp16 weights are 10.2 MB. *)
let oversized = Opspec.matmul ~name:"big_head" ~m:64 ~n:8000 ~k:640 ()

let test_oversized_has_no_plan () =
  Alcotest.(check int) "no plans" 0 (List.length (P.enumerate (ctx ()) oversized))

let test_split_feasible_unchanged () =
  match Elk.Opsplit.split_op (ctx ()) Tu.matmul_op with
  | [ op ] -> Alcotest.(check bool) "same op" true (op == Tu.matmul_op)
  | other -> Alcotest.failf "expected singleton, got %d chunks" (List.length other)

let test_split_conserves_work () =
  let chunks = Elk.Opsplit.split_op (ctx ()) oversized in
  Alcotest.(check bool) "multiple chunks" true (List.length chunks >= 2);
  let sum f = List.fold_left (fun a c -> a +. f c) 0. chunks in
  Tu.check_rel "flops conserved" ~tolerance:0.02 (Opspec.flops oversized)
    (sum Opspec.flops);
  Tu.check_rel "hbm bytes conserved" ~tolerance:0.02 (Opspec.hbm_bytes oversized)
    (sum Opspec.hbm_bytes)

let test_split_chunks_feasible () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "chunk has plans" true (P.enumerate (ctx ()) c <> []))
    (Elk.Opsplit.split_op (ctx ()) oversized)

let test_split_graph_identity () =
  let g = Lazy.force Tu.tiny_llama_chip_graph in
  Alcotest.(check bool) "unchanged graph is physically equal" true
    (Elk.Opsplit.split_graph (ctx ()) g == g)

let test_split_graph_rewrites () =
  let open Elk_model in
  let b = Graph.builder ~name:"with-big-head" in
  let a = Graph.add b ~role:"attn_norm" (Opspec.norm ~name:"n" ~rows:8 ~cols:64 ()) in
  let _ = Graph.add b ~deps:[ a ] ~role:"lm_head" oversized in
  let g = Graph.finish b in
  let s = Elk.Opsplit.split_graph (ctx ()) g in
  Alcotest.(check bool) "grew" true (Graph.length s > Graph.length g);
  (* Execution order (= id order) must remain dependency-valid and every
     node must now be schedulable. *)
  Alcotest.(check bool) "valid order" true
    (Graph.is_valid_order s (List.init (Graph.length s) (fun i -> i)));
  Array.iter
    (fun (n : Graph.node) ->
      Alcotest.(check bool) "feasible" true (P.enumerate (ctx ()) n.Graph.op <> []);
      Alcotest.(check bool) "role preserved" true
        (n.Graph.role = "attn_norm" || n.Graph.role = "lm_head"))
    (Graph.nodes s)

let test_split_graph_schedulable () =
  let open Elk_model in
  let b = Graph.builder ~name:"schedulable" in
  let a = Graph.add b ~role:"attn_norm" (Opspec.norm ~name:"n" ~rows:8 ~cols:64 ()) in
  let _ = Graph.add b ~deps:[ a ] ~role:"lm_head" oversized in
  let g = Elk.Opsplit.split_graph (ctx ()) (Graph.finish b) in
  let s = Elk.Scheduler.run (ctx ()) g in
  match Elk.Schedule.validate s with Ok () -> () | Error m -> Alcotest.fail m

let test_split_truly_impossible_raises () =
  (* One k-slice of 2^20 elements (2 MB activation slice) exceeds SRAM even
     at the 64-chunk limit. *)
  let impossible = Opspec.matmul ~name:"impossible" ~m:1 ~n:1 ~k:(1 lsl 30) () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Elk.Opsplit.split_op (ctx ()) impossible);
       false
     with Invalid_argument _ -> true)

(* ---- multi-round plans -------------------------------------------- *)

let test_rounds_extend_feasibility () =
  (* 64 x 1000 x 640 fits only via multi-round plans at 96 KB/core. *)
  let op = Opspec.matmul ~name:"rounds" ~m:64 ~n:1000 ~k:640 () in
  let plans = P.enumerate (ctx ()) op in
  Alcotest.(check bool) "has plans" true (plans <> []);
  Alcotest.(check bool) "some plan uses > cores tiles" true
    (List.exists
       (fun p ->
         Array.fold_left ( * ) 1 p.P.factors
         > (P.ctx_chip (ctx ())).Elk_arch.Arch.cores)
       plans)

let test_rounds_scale_time_and_residency () =
  let op = Opspec.matmul ~name:"rt" ~m:64 ~n:512 ~k:512 () in
  let c = ctx () in
  let plans = P.enumerate c op in
  List.iter
    (fun p ->
      let tiles = Array.fold_left ( * ) 1 p.P.factors in
      let cores = (P.ctx_chip c).Elk_arch.Arch.cores in
      let rounds = (tiles + cores - 1) / cores in
      if rounds > 1 then begin
        (* HBM residency must cover all rounds: at least [rounds] x the
           single-tile weight slice. *)
        let wslice =
          float_of_int (512 / p.P.factors.(1) * (512 / p.P.factors.(2)) * 2)
        in
        Alcotest.(check bool) "residency covers rounds" true
          (p.P.hbm_needed_per_core >= 0.9 *. (wslice *. float_of_int rounds))
      end)
    plans

let suite =
  [
    ("opsplit: oversized has no plan", `Quick, test_oversized_has_no_plan);
    ("opsplit: feasible unchanged", `Quick, test_split_feasible_unchanged);
    ("opsplit: conserves work", `Quick, test_split_conserves_work);
    ("opsplit: chunks feasible", `Quick, test_split_chunks_feasible);
    ("opsplit: graph identity", `Quick, test_split_graph_identity);
    ("opsplit: graph rewrite", `Quick, test_split_graph_rewrites);
    ("opsplit: schedulable after split", `Quick, test_split_graph_schedulable);
    ("opsplit: impossible raises", `Quick, test_split_truly_impossible_raises);
    ("rounds: extend feasibility", `Quick, test_rounds_extend_feasibility);
    ("rounds: residency scales", `Quick, test_rounds_scale_time_and_residency);
  ]
