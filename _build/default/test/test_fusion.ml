(* Tests for the §8 compatibility passes: pointwise fusion and dtype
   casting (quantization). *)

open Elk_model

let graph () = Lazy.force Tu.tiny_llama
let fused = lazy (Elk.Fusion.fuse (Lazy.force Tu.tiny_llama))

let test_fusion_removes_ops () =
  let g = graph () and f = Lazy.force fused in
  let removed = Elk.Fusion.fused_away ~before:g ~after:f in
  (* At least silu, scale and two kv-appends per layer fuse. *)
  Alcotest.(check bool) "several per layer" true
    (removed >= 3 * List.length (Graph.layer_ids g))

let test_fusion_preserves_flops () =
  let g = graph () and f = Lazy.force fused in
  Tu.check_rel "flops exact" ~tolerance:1e-9 (Graph.total_flops g) (Graph.total_flops f)

let test_fusion_preserves_hbm () =
  let g = graph () and f = Lazy.force fused in
  Tu.check_rel "hbm exact" ~tolerance:1e-9 (Graph.total_hbm_bytes g)
    (Graph.total_hbm_bytes f)

let test_fusion_valid_graph () =
  let f = Lazy.force fused in
  Alcotest.(check bool) "valid order" true
    (Graph.is_valid_order f (List.init (Graph.length f) (fun i -> i)))

let test_fusion_names_joined () =
  let f = Lazy.force fused in
  Alcotest.(check bool) "a gate+silu exists" true
    (Array.exists
       (fun (n : Graph.node) ->
         n.Graph.role = "ffn_gate"
         && String.length n.Graph.op.Elk_tensor.Opspec.name > 5
         &&
         let name = n.Graph.op.Elk_tensor.Opspec.name in
         String.length name >= 5
         && String.sub name (String.length name - 5) 5 = "+silu")
       (Graph.nodes f))

let test_fusion_fixpoint () =
  let f = Lazy.force fused in
  Alcotest.(check bool) "second pass is identity" true (Elk.Fusion.fuse f == f)

let test_fusion_untouched_graph_identity () =
  (* A graph with no fusable chain comes back physically unchanged. *)
  let b = Graph.builder ~name:"nofuse" in
  let a = Graph.add b ~role:"a" (Elk_tensor.Opspec.matmul ~name:"m" ~m:4 ~n:4 ~k:4 ()) in
  let _ =
    Graph.add b ~deps:[ a ] ~role:"b" (Elk_tensor.Opspec.softmax ~name:"s" ~rows:4 ~cols:4 ())
  in
  let g = Graph.finish b in
  Alcotest.(check bool) "identity" true (Elk.Fusion.fuse g == g)

let test_fusion_respects_multi_consumers () =
  (* A pointwise op whose producer has another consumer must not fuse. *)
  let b = Graph.builder ~name:"shared" in
  let a = Graph.add b ~role:"a" (Elk_tensor.Opspec.matmul ~name:"m" ~m:4 ~n:4 ~k:4 ()) in
  let _ =
    Graph.add b ~deps:[ a ] ~role:"act"
      (Elk_tensor.Opspec.elementwise ~name:"r" ~kind:"relu" ~shape:[ 4; 4 ] ())
  in
  let _ =
    Graph.add b ~deps:[ a ] ~role:"other"
      (Elk_tensor.Opspec.softmax ~name:"s" ~rows:4 ~cols:4 ())
  in
  let g = Graph.finish b in
  Alcotest.(check bool) "no fusion" true (Elk.Fusion.fuse g == g)

let test_fused_graph_compiles () =
  let f = Lazy.force fused in
  let pod = Lazy.force Tu.default_pod and ctx = Lazy.force Tu.default_ctx in
  let c = Elk.Compile.compile ~options:Elk.Compile.dyn_options ctx ~pod f in
  Alcotest.(check bool) "compiles" true (Elk.Compile.latency c > 0.)


let test_compile_fuse_option () =
  (* The §8 fusion pass is exposed as a compile option and shrinks the
     scheduled graph. *)
  let g = graph () in
  let pod = Lazy.force Tu.default_pod and ctx = Lazy.force Tu.default_ctx in
  let opts = { Elk.Compile.dyn_options with Elk.Compile.fuse = true } in
  let c = Elk.Compile.compile ~options:opts ctx ~pod g in
  Alcotest.(check bool) "fewer scheduled ops" true
    (Graph.length c.Elk.Compile.chip_graph < Graph.length g);
  Alcotest.(check bool) "compiles" true (Elk.Compile.latency c > 0.)

(* ---- quantization cast ------------------------------------------- *)

let test_cast_halves_hbm () =
  let g = graph () in
  let q = Zoo.cast_dtype Elk_tensor.Dtype.Int8 g in
  Tu.check_rel "half the bytes" ~tolerance:1e-9 (Graph.total_hbm_bytes g /. 2.)
    (Graph.total_hbm_bytes q)

let test_cast_preserves_structure () =
  let g = graph () in
  let q = Zoo.cast_dtype Elk_tensor.Dtype.Int8 g in
  Alcotest.(check int) "same ops" (Graph.length g) (Graph.length q);
  Array.iter
    (fun (n : Graph.node) ->
      Alcotest.(check bool) "int8" true
        (n.Graph.op.Elk_tensor.Opspec.dtype = Elk_tensor.Dtype.Int8))
    (Graph.nodes q);
  Alcotest.(check bool) "valid" true
    (Graph.is_valid_order q (List.init (Graph.length q) (fun i -> i)))

let test_cast_speeds_up_decode () =
  (* Decode is HBM-bound: int8 weights must help end to end. *)
  let env = Elk_dse.Dse.env () in
  let g = graph () in
  let q = Zoo.cast_dtype Elk_tensor.Dtype.Int8 g in
  let l graph =
    (Elk_dse.Dse.evaluate ~elk_options:Elk.Compile.dyn_options env graph
       Elk_baselines.Baselines.Elk_dyn)
      .Elk_dse.Dse.latency
  in
  Alcotest.(check bool) "int8 faster" true (l q < l g)

let suite =
  [
    ("fusion: removes ops", `Quick, test_fusion_removes_ops);
    ("fusion: flops preserved", `Quick, test_fusion_preserves_flops);
    ("fusion: hbm preserved", `Quick, test_fusion_preserves_hbm);
    ("fusion: valid graph", `Quick, test_fusion_valid_graph);
    ("fusion: names joined", `Quick, test_fusion_names_joined);
    ("fusion: fixpoint", `Quick, test_fusion_fixpoint);
    ("fusion: identity when nothing fuses", `Quick, test_fusion_untouched_graph_identity);
    ("fusion: multi-consumer blocked", `Quick, test_fusion_respects_multi_consumers);
    ("fusion: fused graph compiles", `Slow, test_fused_graph_compiles);
    ("fusion: compile option", `Slow, test_compile_fuse_option);
    ("quant: halves hbm", `Quick, test_cast_halves_hbm);
    ("quant: structure preserved", `Quick, test_cast_preserves_structure);
    ("quant: faster decode", `Slow, test_cast_speeds_up_decode);
  ]
