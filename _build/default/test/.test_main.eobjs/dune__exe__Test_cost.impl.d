test/test_cost.ml: Alcotest Arch Costmodel Device Elk_arch Elk_cost Elk_util Float Lazy Linear_tree List Tu
