test/test_gtext.ml: Alcotest Elk Elk_model Elk_tensor Graph Gtext Lazy List Printf QCheck2 String Tu Zoo
