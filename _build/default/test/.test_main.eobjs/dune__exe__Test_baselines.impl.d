test/test_baselines.ml: Alcotest Array Baselines Elk Elk_arch Elk_baselines Elk_partition Lazy List Tu
