test/test_semantics.ml: Alcotest Array Elk Elk_arch Elk_model Elk_partition Elk_sim Elk_tensor Elk_util Graph Lazy List Opspec Printf QCheck2 Tu
