test/test_dse.ml: Alcotest Dse Elk Elk_arch Elk_baselines Elk_dse Elk_model Elk_sim Lazy List Tu
