test/test_properties.ml: Array Elk Elk_arch Elk_hbm Elk_model Elk_partition Elk_tensor Elk_util Float Graph Gtext Lazy Printf QCheck2 Tu
