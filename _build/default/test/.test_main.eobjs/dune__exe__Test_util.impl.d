test/test_util.ml: Alcotest Array Elk_util Float Format List Pareto QCheck2 Series Stats String Table Tu Units Xrng
