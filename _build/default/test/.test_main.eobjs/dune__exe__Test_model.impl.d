test/test_model.ml: Alcotest Array Elk Elk_model Elk_tensor Graph Lazy List Opspec Printf QCheck2 Tu Zoo
