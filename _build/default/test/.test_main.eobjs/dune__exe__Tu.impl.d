test/tu.ml: Alcotest Elk Elk_arch Elk_cost Elk_model Elk_partition Elk_tensor Float Lazy QCheck2 QCheck_alcotest
