test/test_integration.ml: Alcotest Elk Elk_arch Elk_baselines Elk_cost Elk_dse Elk_model Elk_partition Elk_sim Graph Lazy List Tu
