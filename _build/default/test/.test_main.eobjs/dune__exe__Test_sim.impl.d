test/test_sim.ml: Alcotest Array Elk Elk_model Elk_sim Lazy Sim Tu
