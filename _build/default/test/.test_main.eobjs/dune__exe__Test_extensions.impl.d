test/test_extensions.ml: Alcotest Array Elk Elk_arch Elk_baselines Elk_energy Elk_model Elk_partition Elk_pipeline Elk_sim Filename Graph Lazy List Printf Result String Sys Tu
