test/test_fusion.ml: Alcotest Array Elk Elk_baselines Elk_dse Elk_model Elk_tensor Graph Lazy List String Tu Zoo
