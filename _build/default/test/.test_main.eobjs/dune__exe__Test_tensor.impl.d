test/test_tensor.ml: Alcotest Dtype Elk_tensor List Opspec QCheck2 Tu
