test/test_arch.ml: Alcotest Arch Elk_arch List QCheck2 Tu
