test/test_hbm.ml: Alcotest Elk_hbm Hbm List QCheck2 Tu
