test/test_noc.ml: Alcotest Arch Elk_arch Elk_noc Float List Noc QCheck2 Tu
