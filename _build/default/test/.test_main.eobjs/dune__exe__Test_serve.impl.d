test/test_serve.ml: Alcotest Elk_baselines Elk_dse Elk_model Elk_serve Lazy List Serve Tu
