test/test_partition.ml: Alcotest Array Elk_arch Elk_partition Elk_tensor Elk_util Float Lazy List Opspec Pareto Partition QCheck2 Tu
