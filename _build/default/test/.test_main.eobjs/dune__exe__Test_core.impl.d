test/test_core.ml: Alcotest Array Elk Elk_arch Elk_model Elk_partition Elk_tensor Graph Lazy List Tu
