(* Tests for the extension subsystems: code generation, Chrome-trace
   export, the spatial pipeline execution model (paper §7) and the energy
   objective (paper §7). *)

open Elk_model
module P = Elk_partition.Partition

let ctx () = Lazy.force Tu.default_ctx
let sched () = Lazy.force Tu.tiny_schedule

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Codegen                                                            *)
(* ------------------------------------------------------------------ *)

let generated = lazy (Elk.Codegen.generate (Lazy.force Tu.default_ctx) (Lazy.force Tu.tiny_schedule))

let test_codegen_kernel_per_op () =
  let g = Lazy.force generated in
  Alcotest.(check int) "one kernel per op"
    (Elk.Schedule.num_ops (sched ()))
    (List.length g.Elk.Codegen.kernels)

let test_codegen_host_matches_program () =
  let g = Lazy.force generated in
  let s = sched () in
  let n = Elk.Schedule.num_ops s in
  let count needle =
    List.length
      (List.filter (fun l -> contains l needle) (String.split_on_char '\n' g.Elk.Codegen.host))
  in
  Alcotest.(check int) "N preload_async calls" n (count "preload_async(");
  Alcotest.(check int) "N execute calls" n (count "execute(")

let test_codegen_kernel_structure () =
  let g = Lazy.force generated in
  let s = sched () in
  List.iter
    (fun (id, src) ->
      Alcotest.(check bool) "waits for its preload tag" true
        (contains src (Printf.sprintf "DONE_PRELOAD_OP_%d" id));
      Alcotest.(check bool) "sets its exec tag" true
        (contains src (Printf.sprintf "DONE_EXEC_OP_%d" id));
      Alcotest.(check bool) "has a loop nest" true (contains src "for (int i0");
      let e = s.Elk.Schedule.entries.(id) in
      if e.Elk.Schedule.popt.P.dist_bytes_per_core > 0. then
        Alcotest.(check bool) "partial preload distributes" true
          (contains src "remote_read")
      else
        Alcotest.(check bool) "full broadcast no distribute" true
          (contains src "no-op"))
    g.Elk.Codegen.kernels

let test_codegen_deterministic () =
  let a = Elk.Codegen.generate (ctx ()) (sched ()) in
  let b = Elk.Codegen.generate (ctx ()) (sched ()) in
  Alcotest.(check string) "host stable" a.Elk.Codegen.host b.Elk.Codegen.host;
  Alcotest.(check int) "loc stable" (Elk.Codegen.total_loc a) (Elk.Codegen.total_loc b)

let test_codegen_write_to () =
  let dir = Filename.temp_file "elkgen" "" in
  Sys.remove dir;
  Elk.Codegen.write_to ~dir (Lazy.force generated);
  Alcotest.(check bool) "host.c exists" true (Sys.file_exists (Filename.concat dir "host.c"));
  Alcotest.(check bool) "op kernels exist" true (Sys.file_exists (Filename.concat dir "op0000.c"))

(* ------------------------------------------------------------------ *)
(* Trace                                                              *)
(* ------------------------------------------------------------------ *)

let sim_result = lazy (Elk_sim.Sim.run (Lazy.force Tu.default_ctx) (Lazy.force Tu.tiny_schedule))

let test_trace_structure () =
  let s = sched () in
  let r = Lazy.force sim_result in
  let json = Elk_sim.Trace.to_chrome_json s.Elk.Schedule.graph r in
  Alcotest.(check bool) "has traceEvents" true (contains json "traceEvents");
  Alcotest.(check bool) "has preload track" true (contains json "HBM preload");
  Alcotest.(check bool) "has execute track" true (contains json "on-chip execute");
  Alcotest.(check bool) "balanced braces" true
    (let opens = String.fold_left (fun a c -> if c = '{' then a + 1 else a) 0 json in
     let closes = String.fold_left (fun a c -> if c = '}' then a + 1 else a) 0 json in
     opens = closes)

let test_trace_event_count () =
  let s = sched () in
  let r = Lazy.force sim_result in
  let json = Elk_sim.Trace.to_chrome_json s.Elk.Schedule.graph r in
  let events =
    List.length
      (List.filter (fun l -> contains l "\"ph\":\"X\"") (String.split_on_char '\n' json))
  in
  Alcotest.(check int) "event count matches" (Elk_sim.Trace.event_count r) events;
  Alcotest.(check bool) "at least one event per op" true
    (Elk_sim.Trace.event_count r >= Elk.Schedule.num_ops s)

(* ------------------------------------------------------------------ *)
(* Pipeline                                                           *)
(* ------------------------------------------------------------------ *)

let graph () = Lazy.force Tu.tiny_llama_chip_graph

let test_pipeline_single_stage () =
  let p = Elk_pipeline.Pipeline.plan (ctx ()) (graph ()) ~stages:1 in
  Alcotest.(check int) "one stage" 1 (List.length p.Elk_pipeline.Pipeline.stages);
  Tu.check_rel "latency = bottleneck" ~tolerance:1e-9 p.Elk_pipeline.Pipeline.bottleneck
    p.Elk_pipeline.Pipeline.latency

let test_pipeline_partition_covers_all_ops () =
  let g = graph () in
  List.iter
    (fun stages ->
      let p = Elk_pipeline.Pipeline.plan (ctx ()) g ~stages in
      let all =
        List.concat_map (fun st -> st.Elk_pipeline.Pipeline.ops) p.Elk_pipeline.Pipeline.stages
      in
      Alcotest.(check (list int)) "covers ops exactly once"
        (List.init (Graph.length g) (fun i -> i))
        (List.sort compare all))
    [ 1; 2; 4; 8 ]

let test_pipeline_throughput_improves () =
  let g = graph () in
  let p1 = Elk_pipeline.Pipeline.plan (ctx ()) g ~stages:1 in
  let p4 = Elk_pipeline.Pipeline.plan (ctx ()) g ~stages:4 in
  (* Cutting the model into stages reduces the cycle time. *)
  Alcotest.(check bool) "smaller bottleneck" true
    (p4.Elk_pipeline.Pipeline.bottleneck < p1.Elk_pipeline.Pipeline.bottleneck);
  (* ... but per-request latency does not improve (paper §7: "latency of
     each serving request may increase if there are too many stages"). *)
  Alcotest.(check bool) "latency not better" true
    (p4.Elk_pipeline.Pipeline.latency >= p1.Elk_pipeline.Pipeline.latency *. 0.999)

let test_pipeline_core_conservation () =
  let chip_cores = (P.ctx_chip (ctx ())).Elk_arch.Arch.cores in
  let p = Elk_pipeline.Pipeline.plan (ctx ()) (graph ()) ~stages:4 in
  let used =
    List.fold_left (fun a st -> a + st.Elk_pipeline.Pipeline.cores) 0 p.Elk_pipeline.Pipeline.stages
  in
  (* Proportional rounding may over/under-shoot slightly; within 25%. *)
  Alcotest.(check bool) "about all cores used" true
    (used >= chip_cores * 3 / 4 && used <= chip_cores * 5 / 4)

let test_pipeline_swap_when_not_resident () =
  (* A width-factor-8 model's per-chip weights (~30 MB) cannot be
     stationary in one chip's ~6 MB of SRAM, so swap time must appear
     (§7: pipelined execution still needs HBM swaps), while the tiny
     factor-16 fixture fits and stays resident. *)
  let big =
    Elk.Sharding.shard_graph ~chips:4
      (Elk_model.Zoo.build
         (Elk_model.Zoo.scale Elk_model.Zoo.llama2_13b ~factor:8 ~layer_factor:10)
         (Elk_model.Zoo.Decode { batch = 32; ctx = 256 }))
  in
  let p = Elk_pipeline.Pipeline.plan (ctx ()) big ~stages:1 in
  let st = List.hd p.Elk_pipeline.Pipeline.stages in
  Alcotest.(check bool) "not resident" true (not st.Elk_pipeline.Pipeline.resident);
  Alcotest.(check bool) "pays swap" true (st.Elk_pipeline.Pipeline.swap_time > 0.);
  let small = Elk_pipeline.Pipeline.plan (ctx ()) (graph ()) ~stages:1 in
  Alcotest.(check bool) "small model resident" true
    (List.for_all (fun s -> s.Elk_pipeline.Pipeline.resident) small.Elk_pipeline.Pipeline.stages)

let test_pipeline_best_stage_count () =
  let k, p = Elk_pipeline.Pipeline.best_stage_count (ctx ()) (graph ()) in
  Alcotest.(check bool) "k in range" true (k >= 1 && k <= 8);
  List.iter
    (fun other ->
      let q = Elk_pipeline.Pipeline.plan (ctx ()) (graph ()) ~stages:other in
      Alcotest.(check bool) "best throughput" true
        (p.Elk_pipeline.Pipeline.throughput >= q.Elk_pipeline.Pipeline.throughput -. 1e-9))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_pipeline_rejects_bad_counts () =
  Alcotest.(check bool) "zero raises" true
    (try
       ignore (Elk_pipeline.Pipeline.plan (ctx ()) (graph ()) ~stages:0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Energy                                                             *)
(* ------------------------------------------------------------------ *)

let test_energy_accounting () =
  let s = sched () in
  let r = Lazy.force sim_result in
  let e = Elk_energy.Energy.evaluate (ctx ()) s.Elk.Schedule.graph r in
  let open Elk_energy.Energy in
  Alcotest.(check bool) "all buckets positive" true
    (e.compute_j > 0. && e.sram_j > 0. && e.noc_j > 0. && e.hbm_j > 0. && e.static_j > 0.);
  Tu.check_rel "total = sum" ~tolerance:1e-9
    (e.compute_j +. e.sram_j +. e.noc_j +. e.hbm_j +. e.static_j)
    e.total_j;
  Tu.check_rel "edp" ~tolerance:1e-9 (e.total_j *. r.Elk_sim.Sim.total) e.edp

let test_energy_hbm_dominates_decode () =
  (* Decode moves every weight byte across HBM per token: HBM energy should
     dominate compute energy at these arithmetic intensities. *)
  let s = sched () in
  let r = Lazy.force sim_result in
  let e = Elk_energy.Energy.evaluate (ctx ()) s.Elk.Schedule.graph r in
  Alcotest.(check bool) "hbm > compute" true
    (e.Elk_energy.Energy.hbm_j > e.Elk_energy.Energy.compute_j)

let test_energy_faster_schedule_less_static () =
  let s = sched () in
  let r = Lazy.force sim_result in
  let c = ctx () in
  let basic = Elk_baselines.Baselines.basic_schedule c (graph ()) in
  let rb = Elk_sim.Sim.run c basic in
  let e_elk = Elk_energy.Energy.evaluate c s.Elk.Schedule.graph r in
  let e_basic = Elk_energy.Energy.evaluate c basic.Elk.Schedule.graph rb in
  Alcotest.(check bool) "elk spends less static energy" true
    (e_elk.Elk_energy.Energy.static_j <= e_basic.Elk_energy.Energy.static_j);
  Alcotest.(check bool) "elk has better EDP" true
    (e_elk.Elk_energy.Energy.edp <= e_basic.Elk_energy.Energy.edp)

let test_energy_params_scale () =
  let s = sched () in
  let r = Lazy.force sim_result in
  let p = Elk_energy.Energy.default_params in
  let doubled = { p with Elk_energy.Energy.pj_per_hbm_byte = 2. *. p.Elk_energy.Energy.pj_per_hbm_byte } in
  let e1 = Elk_energy.Energy.evaluate (ctx ()) s.Elk.Schedule.graph r in
  let e2 = Elk_energy.Energy.evaluate ~params:doubled (ctx ()) s.Elk.Schedule.graph r in
  Tu.check_rel "hbm energy doubles" ~tolerance:1e-9 (2. *. e1.Elk_energy.Energy.hbm_j)
    e2.Elk_energy.Energy.hbm_j

let suite =
  [
    ("codegen: kernel per op", `Quick, test_codegen_kernel_per_op);
    ("codegen: host matches program", `Quick, test_codegen_host_matches_program);
    ("codegen: kernel structure", `Quick, test_codegen_kernel_structure);
    ("codegen: deterministic", `Quick, test_codegen_deterministic);
    ("codegen: writes files", `Quick, test_codegen_write_to);
    ("trace: structure", `Quick, test_trace_structure);
    ("trace: event count", `Quick, test_trace_event_count);
    ("pipeline: single stage", `Quick, test_pipeline_single_stage);
    ("pipeline: covers all ops", `Quick, test_pipeline_partition_covers_all_ops);
    ("pipeline: throughput vs latency", `Quick, test_pipeline_throughput_improves);
    ("pipeline: core conservation", `Quick, test_pipeline_core_conservation);
    ("pipeline: swap when oversubscribed", `Quick, test_pipeline_swap_when_not_resident);
    ("pipeline: best stage count", `Quick, test_pipeline_best_stage_count);
    ("pipeline: rejects bad counts", `Quick, test_pipeline_rejects_bad_counts);
    ("energy: accounting", `Quick, test_energy_accounting);
    ("energy: hbm dominates decode", `Quick, test_energy_hbm_dominates_decode);
    ("energy: static tracks latency", `Quick, test_energy_faster_schedule_less_static);
    ("energy: parameter scaling", `Quick, test_energy_params_scale);
  ]

(* ------------------------------------------------------------------ *)
(* Planio                                                             *)
(* ------------------------------------------------------------------ *)

let test_planio_roundtrip () =
  let s = sched () in
  let text = Elk.Planio.export s in
  match Elk.Planio.import (ctx ()) text with
  | Error m -> Alcotest.fail m
  | Ok s' ->
      Alcotest.(check int) "same op count" (Elk.Schedule.num_ops s) (Elk.Schedule.num_ops s');
      Alcotest.(check bool) "same order" true (s.Elk.Schedule.order = s'.Elk.Schedule.order);
      Alcotest.(check bool) "same windows" true
        (s.Elk.Schedule.windows = s'.Elk.Schedule.windows);
      Array.iter2
        (fun (a : Elk.Schedule.op_entry) (b : Elk.Schedule.op_entry) ->
          Alcotest.(check bool) "same factors" true
            (a.Elk.Schedule.plan.P.factors = b.Elk.Schedule.plan.P.factors);
          Tu.check_rel "same frac" ~tolerance:1e-9 a.Elk.Schedule.popt.P.frac
            b.Elk.Schedule.popt.P.frac)
        s.Elk.Schedule.entries s'.Elk.Schedule.entries

let test_planio_same_timeline () =
  let s = sched () in
  match Elk.Planio.import (ctx ()) (Elk.Planio.export s) with
  | Error m -> Alcotest.fail m
  | Ok s' ->
      let t a = (Elk.Timeline.evaluate (ctx ()) a).Elk.Timeline.total in
      Tu.check_rel "identical makespan" ~tolerance:1e-9 (t s) (t s');
      let r a = (Elk_sim.Sim.run (ctx ()) a).Elk_sim.Sim.total in
      Tu.check_rel "identical simulation" ~tolerance:1e-9 (r s) (r s')

let test_planio_save_load () =
  let s = sched () in
  let path = Filename.temp_file "elkplan" ".txt" in
  Elk.Planio.save ~path s;
  (match Elk.Planio.load (ctx ()) ~path with
  | Ok s' -> Alcotest.(check bool) "loads" true (Elk.Schedule.num_ops s' > 0)
  | Error m -> Alcotest.fail m);
  Sys.remove path

let test_planio_rejects_garbage () =
  Alcotest.(check bool) "bad header" true
    (Elk.Planio.import (ctx ()) "nonsense" |> Result.is_error);
  Alcotest.(check bool) "missing schedule" true
    (Elk.Planio.import (ctx ()) "elk-plan v1\ngraph g\nop softmax name=s rows=2 cols=2"
    |> Result.is_error);
  let s = sched () in
  let text = Elk.Planio.export s in
  (* Corrupt the windows line: no longer sums to N. *)
  let corrupted =
    String.split_on_char '\n' text
    |> List.map (fun l ->
           if String.length l > 8 && String.sub l 0 8 = "windows " then "windows 1,1"
           else l)
    |> String.concat "\n"
  in
  Alcotest.(check bool) "invalid schedule rejected" true
    (Elk.Planio.import (ctx ()) corrupted |> Result.is_error)

let planio_suite =
  [
    ("planio: roundtrip", `Quick, test_planio_roundtrip);
    ("planio: identical timeline", `Quick, test_planio_same_timeline);
    ("planio: save/load", `Quick, test_planio_save_load);
    ("planio: rejects garbage", `Quick, test_planio_rejects_garbage);
  ]

let suite = suite @ planio_suite
