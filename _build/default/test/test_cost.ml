open Elk_cost
open Elk_arch

let chip () = Arch.Presets.scaled_chip ()

(* ------------------------------------------------------------------ *)
(* Device                                                             *)
(* ------------------------------------------------------------------ *)

let test_tile_bytes_matmul () =
  Tu.check_float "matmul" (2. *. ((4. *. 16.) +. (16. *. 8.) +. (4. *. 8.)))
    (Device.tile_bytes ~kind:"matmul" ~iter:[| 4; 8; 16 |])

let test_tile_bytes_bmm () =
  Tu.check_float "bmm" (2. *. 2. *. ((3. *. 5.) +. (5. *. 4.) +. (3. *. 4.)))
    (Device.tile_bytes ~kind:"batch_matmul" ~iter:[| 2; 3; 4; 5 |])

let test_tile_bytes_pointwise () =
  Tu.check_float "softmax" (2. *. 2. *. 8. *. 16.)
    (Device.tile_bytes ~kind:"softmax" ~iter:[| 8; 16 |])

let test_tile_flops () =
  Tu.check_float "matmul fpp 2" (2. *. 32.) (Device.tile_flops ~kind:"matmul" ~iter:[| 4; 4; 2 |]);
  Tu.check_float "softmax fpp 5" (5. *. 32.) (Device.tile_flops ~kind:"softmax" ~iter:[| 4; 8 |])

let test_kind_classes () =
  Alcotest.(check bool) "matmul" true (Device.is_matmul_kind "matmul");
  Alcotest.(check bool) "bmm" true (Device.is_matmul_kind "batch_matmul");
  Alcotest.(check bool) "softmax" false (Device.is_matmul_kind "softmax")

let test_exec_time_positive_overhead () =
  let c = chip () in
  let t = Device.exec_time c ~kind:"matmul" ~iter:[| 1; 1; 1 |] in
  Alcotest.(check bool) "at least launch overhead" true (t >= 6e-7)

let test_exec_time_monotone_in_size () =
  let c = chip () in
  let t1 = Device.exec_time c ~kind:"matmul" ~iter:[| 16; 16; 16 |] in
  let t2 = Device.exec_time c ~kind:"matmul" ~iter:[| 64; 64; 64 |] in
  Alcotest.(check bool) "bigger slower" true (t2 > t1)

let test_exec_time_large_tiles_efficient () =
  (* A large aligned matmul tile should achieve most of peak. *)
  let c = chip () in
  let iter = [| 128; 128; 128 |] in
  let t = Device.exec_time c ~kind:"matmul" ~iter in
  let ideal = Device.tile_flops ~kind:"matmul" ~iter /. c.Arch.matmul_flops_per_core in
  Alcotest.(check bool) "above 80% of peak" true (ideal /. t > 0.8)

let test_alignment_penalty () =
  let c = chip () in
  let aligned = Device.exec_time c ~kind:"matmul" ~iter:[| 64; 64; 64 |] in
  let misaligned = Device.exec_time c ~kind:"matmul" ~iter:[| 64; 63; 63 |] in
  (* Fewer points but slower rate: per-flop time must be worse. *)
  let per_flop t iter = t /. Device.tile_flops ~kind:"matmul" ~iter in
  Alcotest.(check bool) "misaligned pays" true
    (per_flop misaligned [| 64; 63; 63 |] > per_flop aligned [| 64; 64; 64 |])

let test_vector_kind_slower () =
  let c = chip () in
  let mm = Device.exec_time c ~kind:"matmul" ~iter:[| 64; 64; 4 |] in
  let sm = Device.exec_time c ~kind:"softmax" ~iter:[| 64; 256 |] in
  (* Same point count; softmax runs on the much slower vector pipeline and
     does more flops/point. *)
  Alcotest.(check bool) "vector slower" true (sm > mm)

let test_measured_noise_bounded_deterministic () =
  let c = chip () in
  let iter = [| 32; 32; 32 |] in
  let base = Device.exec_time c ~kind:"matmul" ~iter in
  let m1 = Device.measured_exec_time c ~kind:"matmul" ~iter in
  let m2 = Device.measured_exec_time c ~kind:"matmul" ~iter in
  Tu.check_float "deterministic" m1 m2;
  Alcotest.(check bool) "within 6%" true (Float.abs (m1 -. base) <= 0.0601 *. base)

let test_exec_time_rejects_bad_iter () =
  let c = chip () in
  Alcotest.(check bool) "empty raises" true
    (try
       ignore (Device.exec_time c ~kind:"matmul" ~iter:[||]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero raises" true
    (try
       ignore (Device.exec_time c ~kind:"matmul" ~iter:[| 0; 1; 1 |]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Linear tree                                                        *)
(* ------------------------------------------------------------------ *)

let test_tree_fits_linear_exactly () =
  let samples = List.init 100 (fun i -> ([| float_of_int i |], (2. *. float_of_int i) +. 5.)) in
  let t = Linear_tree.fit samples in
  Alcotest.(check bool) "small error" true (Linear_tree.mape_on t samples < 0.01);
  Tu.check_close ~eps:1e-3 "interpolates" 25. (Linear_tree.predict t [| 10. |])

let test_tree_splits_piecewise () =
  (* Piecewise function: a single linear model cannot fit; splits must. *)
  let f x = if x < 50. then x else 1000. -. (3. *. x) in
  let samples = List.init 200 (fun i -> ([| float_of_int i |], f (float_of_int i))) in
  let t = Linear_tree.fit samples in
  Alcotest.(check bool) "has splits" true (Linear_tree.depth t >= 1);
  Alcotest.(check bool) "good fit" true (Linear_tree.mape_on t samples < 0.05)

let test_tree_max_depth_respected () =
  let samples =
    List.init 256 (fun i -> ([| float_of_int i |], float_of_int ((i * 37) mod 101)))
  in
  let t = Linear_tree.fit ~max_depth:2 samples in
  Alcotest.(check bool) "depth <= 2" true (Linear_tree.depth t <= 2);
  Alcotest.(check bool) "leaves <= 4" true (Linear_tree.leaves t <= 4)

let test_tree_single_leaf_on_constant () =
  let samples = List.init 50 (fun i -> ([| float_of_int i |], 7.)) in
  let t = Linear_tree.fit samples in
  Alcotest.(check int) "one leaf" 1 (Linear_tree.leaves t);
  Tu.check_close ~eps:1e-6 "constant" 7. (Linear_tree.predict t [| 123. |])

let test_tree_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Linear_tree.fit: no samples") (fun () ->
      ignore (Linear_tree.fit []));
  let t = Linear_tree.fit [ ([| 1.; 2. |], 3.) ] in
  Alcotest.check_raises "dim" (Invalid_argument "Linear_tree.predict: wrong feature dimension")
    (fun () -> ignore (Linear_tree.predict t [| 1. |]))

(* ------------------------------------------------------------------ *)
(* Costmodel                                                          *)
(* ------------------------------------------------------------------ *)

let trained = lazy (Costmodel.train ~samples_per_kind:600 (chip ()))

let test_train_covers_kinds () =
  let t = Lazy.force trained in
  List.iter
    (fun k -> Alcotest.(check bool) k true (List.mem k (Costmodel.kinds t)))
    [ "matmul"; "batch_matmul"; "softmax"; "rmsnorm"; "silu" ]

let test_exec_accuracy_fig12 () =
  (* The paper's Fig 12 shows tight measured-vs-predicted correlation; we
     require MAPE under 20% and r2 above 0.9 on held-out shapes. *)
  let t = Lazy.force trained in
  List.iter
    (fun kind ->
      let pairs = Costmodel.exec_accuracy t ~kind ~n:150 in
      let mape = Elk_util.Stats.mape pairs in
      let r2 = Elk_util.Stats.r2 pairs in
      if mape > 0.2 then Alcotest.failf "%s MAPE %.3f too high" kind mape;
      if r2 < 0.9 then Alcotest.failf "%s r2 %.3f too low" kind r2)
    [ "matmul"; "batch_matmul"; "softmax" ]

let test_transfer_accuracy () =
  let t = Lazy.force trained in
  let pairs = Costmodel.transfer_accuracy t ~n:150 in
  Alcotest.(check bool) "MAPE < 15%" true (Elk_util.Stats.mape pairs < 0.15)

let test_predictions_positive () =
  let t = Lazy.force trained in
  let rng = Elk_util.Xrng.create 3 in
  for _ = 1 to 100 do
    let iter = Costmodel.random_tile rng ~chip:(chip ()) ~kind:"matmul" in
    Alcotest.(check bool) "positive" true (Costmodel.predict_exec t ~kind:"matmul" ~iter > 0.)
  done

let test_unknown_kind_falls_back () =
  let t = Lazy.force trained in
  let p = Costmodel.predict_exec t ~kind:"mystery" ~iter:[| 8; 8 |] in
  Tu.check_float "falls back to device model" (Device.exec_time (chip ()) ~kind:"mystery" ~iter:[| 8; 8 |]) p

let test_transfer_monotone () =
  let t = Lazy.force trained in
  let t1 = Costmodel.predict_transfer t ~hops:2 ~bytes:1e3 in
  let t2 = Costmodel.predict_transfer t ~hops:2 ~bytes:5e5 in
  Alcotest.(check bool) "monotone" true (t2 > t1);
  Tu.check_float "zero bytes" 0. (Costmodel.predict_transfer t ~hops:2 ~bytes:0.)

let test_hbm_time_roofline () =
  let t = Lazy.force trained in
  let c = chip () in
  let bytes = 32e6 in
  let time = Costmodel.hbm_time t ~bytes in
  (* Large sequential reads achieve 85-100% of chip HBM bandwidth. *)
  let floor = bytes /. c.Arch.hbm_bandwidth in
  Alcotest.(check bool) "above physical floor" true (time >= floor *. 0.999);
  Alcotest.(check bool) "within 1.3x of floor" true (time <= 1.3 *. floor);
  Tu.check_float "zero" 0. (Costmodel.hbm_time t ~bytes:0.)

let test_ideal_exec_time_scales () =
  let c = chip () in
  let op = Tu.matmul_op in
  let t64 = Costmodel.ideal_exec_time c op ~cores:64 in
  let t256 = Costmodel.ideal_exec_time c op ~cores:256 in
  Tu.check_rel "4x cores -> 4x faster" ~tolerance:1e-6 (t64 /. 4.) t256

let test_random_tile_fits_sram () =
  let c = chip () in
  let rng = Elk_util.Xrng.create 9 in
  for _ = 1 to 200 do
    List.iter
      (fun kind ->
        let iter = Costmodel.random_tile rng ~chip:c ~kind in
        Alcotest.(check bool) "fits" true
          (Device.tile_bytes ~kind ~iter <= Arch.usable_sram_per_core c))
      [ "matmul"; "batch_matmul"; "softmax" ]
  done

let suite =
  [
    ("device: matmul tile bytes", `Quick, test_tile_bytes_matmul);
    ("device: bmm tile bytes", `Quick, test_tile_bytes_bmm);
    ("device: pointwise tile bytes", `Quick, test_tile_bytes_pointwise);
    ("device: tile flops", `Quick, test_tile_flops);
    ("device: kind classes", `Quick, test_kind_classes);
    ("device: launch overhead", `Quick, test_exec_time_positive_overhead);
    ("device: monotone in size", `Quick, test_exec_time_monotone_in_size);
    ("device: large tiles efficient", `Quick, test_exec_time_large_tiles_efficient);
    ("device: alignment penalty", `Quick, test_alignment_penalty);
    ("device: vector pipeline slower", `Quick, test_vector_kind_slower);
    ("device: measurement noise", `Quick, test_measured_noise_bounded_deterministic);
    ("device: rejects bad iter", `Quick, test_exec_time_rejects_bad_iter);
    ("ltree: exact linear", `Quick, test_tree_fits_linear_exactly);
    ("ltree: piecewise splits", `Quick, test_tree_splits_piecewise);
    ("ltree: max depth", `Quick, test_tree_max_depth_respected);
    ("ltree: constant single leaf", `Quick, test_tree_single_leaf_on_constant);
    ("ltree: errors", `Quick, test_tree_errors);
    ("costmodel: kinds trained", `Quick, test_train_covers_kinds);
    ("costmodel: Fig 12 accuracy", `Slow, test_exec_accuracy_fig12);
    ("costmodel: transfer accuracy", `Quick, test_transfer_accuracy);
    ("costmodel: predictions positive", `Quick, test_predictions_positive);
    ("costmodel: unknown kind fallback", `Quick, test_unknown_kind_falls_back);
    ("costmodel: transfer monotone", `Quick, test_transfer_monotone);
    ("costmodel: hbm roofline", `Quick, test_hbm_time_roofline);
    ("costmodel: ideal exec scales", `Quick, test_ideal_exec_time_scales);
    ("costmodel: random tiles fit", `Quick, test_random_tile_fits_sram);
  ]
