(* Tests for the core Elk library: allocator, scheduler, schedule
   invariants, program generation, reordering, sharding and the analytic
   timeline. *)

open Elk_model
module P = Elk_partition.Partition

let ctx () = Lazy.force Tu.default_ctx
let graph () = Lazy.force Tu.tiny_llama_chip_graph
let sched () = Lazy.force Tu.tiny_schedule
let capacity () = Elk_arch.Arch.usable_sram_per_core (P.ctx_chip (ctx ()))

(* ------------------------------------------------------------------ *)
(* Alloc                                                              *)
(* ------------------------------------------------------------------ *)

let some_nodes k =
  let g = graph () in
  List.init k (fun i -> Graph.get g (i * 3 mod Graph.length g))

let test_alloc_empty_window () =
  let node = Graph.get (graph ()) 2 in
  match Elk.Alloc.allocate (ctx ()) ~capacity:(capacity ()) ~exec_op:node ~window:[] with
  | Some r ->
      Alcotest.(check bool) "fits" true (r.Elk.Alloc.total_space <= capacity ());
      Alcotest.(check bool) "positive time" true (r.Elk.Alloc.exec_time > 0.);
      Alcotest.(check int) "no window" 0 (List.length r.Elk.Alloc.window)
  | None -> Alcotest.fail "single op must fit"

let test_alloc_fits_capacity () =
  let node = Graph.get (graph ()) 2 in
  let window =
    List.map (fun (n : Graph.node) -> (n, P.fastest_plan (ctx ()) n.Graph.op)) (some_nodes 4)
  in
  match Elk.Alloc.allocate (ctx ()) ~capacity:(capacity ()) ~exec_op:node ~window with
  | Some r ->
      Alcotest.(check bool) "fits" true (r.Elk.Alloc.total_space <= capacity ());
      Alcotest.(check int) "window assignments" 4 (List.length r.Elk.Alloc.window)
  | None -> Alcotest.fail "should fit"

let test_alloc_impossible_capacity () =
  let node = Graph.get (graph ()) 2 in
  Alcotest.(check bool) "tiny capacity fails" true
    (Elk.Alloc.allocate (ctx ()) ~capacity:16. ~exec_op:node ~window:[] = None)

let test_alloc_shrinks_under_pressure () =
  (* With a big window, the executing op's chosen plan cannot be larger
     than with no window. *)
  let node = Graph.get (graph ()) 2 in
  let c = ctx () in
  let window =
    List.map (fun (n : Graph.node) -> (n, P.fastest_plan c n.Graph.op)) (some_nodes 8)
  in
  match
    ( Elk.Alloc.allocate c ~capacity:(capacity ()) ~exec_op:node ~window:[],
      Elk.Alloc.allocate c ~capacity:(capacity ()) ~exec_op:node ~window )
  with
  | Some free, Some tight ->
      Alcotest.(check bool) "no faster under pressure" true
        (tight.Elk.Alloc.exec_time >= free.Elk.Alloc.exec_time -. 1e-12)
  | _ -> Alcotest.fail "both should fit"

let test_alloc_objective_consistent () =
  let node = Graph.get (graph ()) 2 in
  match Elk.Alloc.allocate (ctx ()) ~capacity:(capacity ()) ~exec_op:node ~window:[] with
  | Some r ->
      Tu.check_rel "objective = exec + dists" ~tolerance:1e-9 r.Elk.Alloc.exec_time r.Elk.Alloc.objective
  | None -> Alcotest.fail "must fit"

let test_min_preload_space_positive_for_weights () =
  let g = graph () in
  let heavy = Graph.hbm_heavy_ids g in
  List.iter
    (fun id ->
      Alcotest.(check bool) "positive" true
        (Elk.Alloc.min_preload_space (ctx ()) (Graph.get g id) > 0.))
    heavy

(* ------------------------------------------------------------------ *)
(* Scheduler + Schedule                                               *)
(* ------------------------------------------------------------------ *)

let test_schedule_validates () =
  match Elk.Schedule.validate (sched ()) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_schedule_windows_sum () =
  let s = sched () in
  Alcotest.(check int) "sum = N"
    (Elk.Schedule.num_ops s)
    (Array.fold_left ( + ) 0 s.Elk.Schedule.windows)

let test_schedule_entries_indexed () =
  let s = sched () in
  Array.iteri
    (fun i e -> Alcotest.(check int) "node id" i e.Elk.Schedule.node_id)
    s.Elk.Schedule.entries

let test_schedule_positive_estimate () =
  Alcotest.(check bool) "positive" true ((sched ()).Elk.Schedule.est_total > 0.)

let test_scheduler_preloads_ahead () =
  (* The whole point of §4.2: at least one window must cover several
     preloads, otherwise there is no overlap at all. *)
  let pn = Elk.Scheduler.preload_numbers (sched ()) in
  Alcotest.(check bool) "some window > 1" true (Array.exists (fun p -> p > 1) pn)

let test_scheduler_entry_spaces_fit () =
  let s = sched () in
  Array.iter
    (fun e ->
      Alcotest.(check bool) "exec space fits" true
        (e.Elk.Schedule.plan.P.exec_space <= capacity ()))
    s.Elk.Schedule.entries

let test_scheduler_rejects_bad_order () =
  let g = graph () in
  let n = Graph.length g in
  Alcotest.(check bool) "length" true
    (try
       ignore (Elk.Scheduler.run ~order:[| 0 |] (ctx ()) g);
       false
     with Elk.Scheduler.Infeasible _ -> true);
  let dup = Array.init n (fun _ -> 0) in
  Alcotest.(check bool) "not a permutation" true
    (try
       ignore (Elk.Scheduler.run ~order:dup (ctx ()) g);
       false
     with Elk.Scheduler.Infeasible _ -> true)

let test_scheduler_empty_graph () =
  let g = Graph.finish (Graph.builder ~name:"empty") in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Elk.Scheduler.run (ctx ()) g);
       false
     with Elk.Scheduler.Infeasible _ -> true)

let test_preload_step_mapping () =
  let s = sched () in
  let step = Elk.Schedule.preload_step s in
  let pos = Elk.Schedule.position_of s in
  Array.iteri
    (fun id p ->
      Alcotest.(check bool) "preloaded in time" true (step.(p) <= id))
    pos

(* ------------------------------------------------------------------ *)
(* Program                                                            *)
(* ------------------------------------------------------------------ *)

let test_program_valid () =
  let s = sched () in
  let p = Elk.Program.of_schedule s in
  match Elk.Program.validate p ~n:(Elk.Schedule.num_ops s) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_program_length () =
  let s = sched () in
  let p = Elk.Program.of_schedule s in
  Alcotest.(check int) "2N instructions"
    (2 * Elk.Schedule.num_ops s)
    (Array.length p.Elk.Program.instrs)

let test_program_preload_order_matches () =
  let s = sched () in
  let p = Elk.Program.of_schedule s in
  Alcotest.(check (list int)) "order preserved"
    (Array.to_list s.Elk.Schedule.order)
    (Elk.Program.preload_order p)

let test_program_validate_rejects () =
  let bad = { Elk.Program.instrs = [| Elk.Program.Execute 0; Elk.Program.Preload_async 0 |] } in
  Alcotest.(check bool) "exec before preload" true (Elk.Program.validate bad ~n:1 <> Ok ());
  let dup =
    {
      Elk.Program.instrs =
        [| Elk.Program.Preload_async 0; Elk.Program.Preload_async 0; Elk.Program.Execute 0 |];
    }
  in
  Alcotest.(check bool) "double preload" true (Elk.Program.validate dup ~n:1 <> Ok ());
  let missing = { Elk.Program.instrs = [| Elk.Program.Preload_async 0 |] } in
  Alcotest.(check bool) "never executed" true (Elk.Program.validate missing ~n:1 <> Ok ());
  let out_of_order =
    {
      Elk.Program.instrs =
        [|
          Elk.Program.Preload_async 0; Elk.Program.Preload_async 1; Elk.Program.Execute 1;
          Elk.Program.Execute 0;
        |];
    }
  in
  Alcotest.(check bool) "exec order" true (Elk.Program.validate out_of_order ~n:2 <> Ok ())

(* ------------------------------------------------------------------ *)
(* Timeline                                                           *)
(* ------------------------------------------------------------------ *)

let test_timeline_basic_invariants () =
  let s = sched () in
  let tl = Elk.Timeline.evaluate (ctx ()) s in
  Alcotest.(check bool) "positive total" true (tl.Elk.Timeline.total > 0.);
  Array.iteri
    (fun i (ot : Elk.Timeline.op_times) ->
      Alcotest.(check bool) "pre interval" true (ot.Elk.Timeline.pre_end >= ot.Elk.Timeline.pre_start);
      Alcotest.(check bool) "exe interval" true (ot.Elk.Timeline.exe_end >= ot.Elk.Timeline.exe_start);
      Alcotest.(check bool) "preload before exec" true
        (ot.Elk.Timeline.pre_end <= ot.Elk.Timeline.exe_start +. 1e-12);
      if i > 0 then
        Alcotest.(check bool) "execs sequential" true
          (tl.Elk.Timeline.per_op.(i - 1).Elk.Timeline.exe_end <= ot.Elk.Timeline.exe_start +. 1e-12))
    tl.Elk.Timeline.per_op

let test_timeline_breakdown_sums () =
  let s = sched () in
  let tl = Elk.Timeline.evaluate (ctx ()) s in
  let b = tl.Elk.Timeline.bd in
  let covered =
    b.Elk.Timeline.preload_only +. b.Elk.Timeline.execute_only +. b.Elk.Timeline.overlapped
    +. b.Elk.Timeline.interconnect
  in
  Alcotest.(check bool) "covered <= total (idle possible)" true
    (covered <= tl.Elk.Timeline.total *. 1.001);
  Alcotest.(check bool) "all buckets nonneg" true
    (b.Elk.Timeline.preload_only >= 0. && b.Elk.Timeline.execute_only >= 0.
   && b.Elk.Timeline.overlapped >= 0. && b.Elk.Timeline.interconnect >= 0.)

let test_timeline_utilizations_sane () =
  let tl = Elk.Timeline.evaluate (ctx ()) (sched ()) in
  Alcotest.(check bool) "hbm in (0,1]" true
    (tl.Elk.Timeline.hbm_util > 0. && tl.Elk.Timeline.hbm_util <= 1.0001);
  Alcotest.(check bool) "noc in (0,1.2]" true
    (tl.Elk.Timeline.noc_util > 0. && tl.Elk.Timeline.noc_util <= 1.2);
  Alcotest.(check bool) "flops positive" true (tl.Elk.Timeline.achieved_flops > 0.)

let test_timeline_volumes_match_graph () =
  let s = sched () in
  let tl = Elk.Timeline.evaluate (ctx ()) s in
  (* Every byte of every HBM-resident tensor is read exactly once. *)
  Tu.check_rel "hbm volume" ~tolerance:0.02
    (Graph.total_hbm_bytes s.Elk.Schedule.graph)
    tl.Elk.Timeline.hbm_device_volume

(* ------------------------------------------------------------------ *)
(* Reorder                                                            *)
(* ------------------------------------------------------------------ *)

let test_kendall_tau () =
  Alcotest.(check int) "identity" 0 (Elk.Reorder.kendall_tau [ 1; 2; 3 ] [ 1; 2; 3 ]);
  Alcotest.(check int) "swap" 1 (Elk.Reorder.kendall_tau [ 2; 1; 3 ] [ 1; 2; 3 ]);
  Alcotest.(check int) "reverse" 3 (Elk.Reorder.kendall_tau [ 3; 2; 1 ] [ 1; 2; 3 ]);
  Alcotest.(check bool) "not perm raises" true
    (try
       ignore (Elk.Reorder.kendall_tau [ 1; 2 ] [ 1; 3 ]);
       false
     with Invalid_argument _ -> true)

let test_valid_suffix_orders_unconstrained () =
  (* With infinite capacity all H! orders are valid. *)
  let items = [ (0, 1.); (1, 1.); (2, 1.) ] in
  let orders = Elk.Reorder.valid_suffix_orders ~capacity:1e9 ~items () in
  Alcotest.(check int) "3! orders" 6 (List.length orders);
  List.iter
    (fun o -> Alcotest.(check (list int)) "permutation" [ 0; 1; 2 ] (List.sort compare o))
    orders

let test_valid_suffix_orders_capacity_prunes () =
  (* Fig 14's rule: with capacity for only 2 items, delaying the earliest
     op to the last preload slot would co-locate all 3. *)
  let items = [ (0, 1.); (1, 1.); (2, 1.) ] in
  let orders = Elk.Reorder.valid_suffix_orders ~capacity:2. ~items () in
  Alcotest.(check bool) "fewer than 6" true (List.length orders < 6);
  (* The identity order must always survive. *)
  Alcotest.(check bool) "identity valid" true (List.mem [ 0; 1; 2 ] orders);
  (* Placing op0 last means ops 1,2 preload before it: 3 co-resident. *)
  List.iter
    (fun o ->
      Alcotest.(check bool) "op0 not last" true (List.nth o 2 <> 0))
    orders

let test_valid_suffix_orders_tight_capacity () =
  let items = [ (0, 1.); (1, 1.); (2, 1.) ] in
  let orders = Elk.Reorder.valid_suffix_orders ~capacity:1. ~items () in
  Alcotest.(check (list (list int))) "only identity" [ [ 0; 1; 2 ] ] orders

let test_candidate_orders_contain_identity () =
  let g = graph () in
  let orders = Elk.Reorder.candidate_orders (ctx ()) g in
  Alcotest.(check bool) "nonempty" true (orders <> []);
  let identity = Array.init (Graph.length g) (fun i -> i) in
  Alcotest.(check bool) "identity first" true (List.hd orders = identity)

let test_candidate_orders_are_permutations () =
  let g = graph () in
  let n = Graph.length g in
  List.iter
    (fun o ->
      Alcotest.(check (list int)) "permutation"
        (List.init n (fun i -> i))
        (List.sort compare (Array.to_list o)))
    (Elk.Reorder.candidate_orders (ctx ()) g)

let test_candidate_orders_only_reorder_heavy () =
  let g = graph () in
  let heavy = Graph.hbm_heavy_ids g in
  List.iter
    (fun o ->
      Array.iteri
        (fun slot id ->
          if slot <> id then begin
            Alcotest.(check bool) "moved op is heavy" true (List.mem id heavy);
            Alcotest.(check bool) "slot belongs to a heavy op" true (List.mem slot heavy)
          end)
        o)
    (Elk.Reorder.candidate_orders (ctx ()) g)

let test_template_layer_heavy () =
  let g = graph () in
  let tpl = Elk.Reorder.template_layer_heavy g in
  Alcotest.(check bool) "nonempty on llama" true (tpl <> []);
  let layers =
    List.filter_map (fun id -> (Graph.get g id).Graph.layer) tpl |> List.sort_uniq compare
  in
  Alcotest.(check int) "single layer" 1 (List.length layers)

let test_scheduler_accepts_reordered () =
  let g = graph () in
  let c = ctx () in
  let orders = Elk.Reorder.candidate_orders c g in
  let tried = ref 0 in
  List.iteri
    (fun i o ->
      if i < 4 then
        try
          let s = Elk.Scheduler.run ~order:o c g in
          incr tried;
          match Elk.Schedule.validate s with
          | Ok () -> ()
          | Error m -> Alcotest.fail m
        with Elk.Scheduler.Infeasible _ -> ())
    orders;
  Alcotest.(check bool) "at least identity scheduled" true (!tried >= 1)

(* ------------------------------------------------------------------ *)
(* Sharding                                                           *)
(* ------------------------------------------------------------------ *)

let test_shard_identity_for_one_chip () =
  let g = Lazy.force Tu.tiny_llama in
  let s = Elk.Sharding.shard_graph ~chips:1 g in
  Alcotest.(check bool) "same graph" true (s == g)

let test_shard_reduces_hbm () =
  let g = Lazy.force Tu.tiny_llama in
  let s = Elk.Sharding.shard_graph ~chips:4 g in
  Tu.check_rel "~1/4 of the bytes" ~tolerance:0.15
    (Graph.total_hbm_bytes g /. 4.)
    (Graph.total_hbm_bytes s)

let test_shard_preserves_structure () =
  let g = Lazy.force Tu.tiny_llama in
  let s = Elk.Sharding.shard_graph ~chips:4 g in
  Alcotest.(check int) "same op count" (Graph.length g) (Graph.length s);
  Array.iter2
    (fun (a : Graph.node) (b : Graph.node) ->
      Alcotest.(check string) "role" a.Graph.role b.Graph.role;
      Alcotest.(check (list int)) "deps" a.Graph.deps b.Graph.deps)
    (Graph.nodes g) (Graph.nodes s)

let test_shard_replicates_norms () =
  let g = Lazy.force Tu.tiny_llama in
  let s = Elk.Sharding.shard_graph ~chips:4 g in
  Array.iter2
    (fun (a : Graph.node) (b : Graph.node) ->
      if a.Graph.role = "attn_norm" then
        Alcotest.(check bool) "norm unsharded" true
          (a.Graph.op.Elk_tensor.Opspec.iter = b.Graph.op.Elk_tensor.Opspec.iter))
    (Graph.nodes g) (Graph.nodes s)

let test_shard_matmul_n_dim () =
  let op = Elk_tensor.Opspec.matmul ~name:"m" ~m:8 ~n:64 ~k:32 () in
  let s = Elk.Sharding.shard_op ~chips:4 ~role:"q_proj" op in
  Alcotest.(check int) "n quartered" 16 s.Elk_tensor.Opspec.iter.(1);
  Alcotest.(check int) "m kept" 8 s.Elk_tensor.Opspec.iter.(0);
  Alcotest.(check int) "k kept" 32 s.Elk_tensor.Opspec.iter.(2)

let test_shard_small_dim_not_split () =
  let op = Elk_tensor.Opspec.matmul ~name:"m" ~m:8 ~n:2 ~k:32 () in
  let s = Elk.Sharding.shard_op ~chips:4 ~role:"q_proj" op in
  Alcotest.(check int) "n too small to shard" 2 s.Elk_tensor.Opspec.iter.(1)

let test_allreduce_volume () =
  let g = Lazy.force Tu.tiny_llama in
  let v = Elk.Sharding.allreduce_volume g in
  Alcotest.(check bool) "positive" true (v > 0.);
  (* Two reduced projections per layer + lm_head. *)
  let pod = Lazy.force Tu.default_pod in
  Alcotest.(check bool) "time positive" true (Elk.Sharding.allreduce_time pod g > 0.);
  let one = { pod with Elk_arch.Arch.chips = 1 } in
  Tu.check_float "single chip free" 0. (Elk.Sharding.allreduce_time one g)

let suite =
  [
    ("alloc: empty window", `Quick, test_alloc_empty_window);
    ("alloc: fits capacity", `Quick, test_alloc_fits_capacity);
    ("alloc: impossible capacity", `Quick, test_alloc_impossible_capacity);
    ("alloc: pressure slows exec", `Quick, test_alloc_shrinks_under_pressure);
    ("alloc: objective", `Quick, test_alloc_objective_consistent);
    ("alloc: min preload space", `Quick, test_min_preload_space_positive_for_weights);
    ("scheduler: schedule validates", `Quick, test_schedule_validates);
    ("scheduler: windows sum", `Quick, test_schedule_windows_sum);
    ("scheduler: entries indexed", `Quick, test_schedule_entries_indexed);
    ("scheduler: positive estimate", `Quick, test_schedule_positive_estimate);
    ("scheduler: preloads ahead", `Quick, test_scheduler_preloads_ahead);
    ("scheduler: exec spaces fit", `Quick, test_scheduler_entry_spaces_fit);
    ("scheduler: rejects bad orders", `Quick, test_scheduler_rejects_bad_order);
    ("scheduler: empty graph", `Quick, test_scheduler_empty_graph);
    ("schedule: preload-step mapping", `Quick, test_preload_step_mapping);
    ("program: validates", `Quick, test_program_valid);
    ("program: length 2N", `Quick, test_program_length);
    ("program: preload order", `Quick, test_program_preload_order_matches);
    ("program: validate rejects", `Quick, test_program_validate_rejects);
    ("timeline: invariants", `Quick, test_timeline_basic_invariants);
    ("timeline: breakdown", `Quick, test_timeline_breakdown_sums);
    ("timeline: utilizations", `Quick, test_timeline_utilizations_sane);
    ("timeline: hbm volume conserved", `Quick, test_timeline_volumes_match_graph);
    ("reorder: kendall tau", `Quick, test_kendall_tau);
    ("reorder: suffix orders free", `Quick, test_valid_suffix_orders_unconstrained);
    ("reorder: capacity prunes", `Quick, test_valid_suffix_orders_capacity_prunes);
    ("reorder: tight capacity", `Quick, test_valid_suffix_orders_tight_capacity);
    ("reorder: identity first", `Quick, test_candidate_orders_contain_identity);
    ("reorder: permutations", `Quick, test_candidate_orders_are_permutations);
    ("reorder: only heavy move", `Quick, test_candidate_orders_only_reorder_heavy);
    ("reorder: template layer", `Quick, test_template_layer_heavy);
    ("reorder: scheduler accepts", `Quick, test_scheduler_accepts_reordered);
    ("sharding: single chip identity", `Quick, test_shard_identity_for_one_chip);
    ("sharding: reduces hbm", `Quick, test_shard_reduces_hbm);
    ("sharding: preserves structure", `Quick, test_shard_preserves_structure);
    ("sharding: replicates norms", `Quick, test_shard_replicates_norms);
    ("sharding: matmul n dim", `Quick, test_shard_matmul_n_dim);
    ("sharding: small dims kept", `Quick, test_shard_small_dim_not_split);
    ("sharding: allreduce", `Quick, test_allreduce_volume);
  ]
