open Elk_baselines

let ctx () = Lazy.force Tu.default_ctx
let pod () = Lazy.force Tu.default_pod
let model () = Lazy.force Tu.tiny_llama
let chip_graph () = Lazy.force Tu.tiny_llama_chip_graph

let test_names_distinct () =
  let names = List.map Baselines.name Baselines.all in
  Alcotest.(check int) "5 designs" 5 (List.length (List.sort_uniq compare names))

let test_basic_schedule_valid () =
  let s = Baselines.basic_schedule (ctx ()) (chip_graph ()) in
  match Elk.Schedule.validate s with Ok () -> () | Error m -> Alcotest.fail m

let test_basic_preloads_one_ahead () =
  let s = Baselines.basic_schedule (ctx ()) (chip_graph ()) in
  (* Basic's defining property: every window is exactly one preload. *)
  Array.iteri
    (fun i w -> if i < Elk.Schedule.num_ops s then Alcotest.(check int) "window of 1" 1 w)
    (Array.sub s.Elk.Schedule.windows 0 (Elk.Schedule.num_ops s))

let test_static_schedule_valid () =
  let cap = Elk_arch.Arch.usable_sram_per_core (pod ()).Elk_arch.Arch.chip in
  match
    Baselines.static_schedule (ctx ()) (chip_graph ()) ~preload_budget:(0.4 *. cap)
      ~use_max_popt:true
  with
  | Some s -> (
      match Elk.Schedule.validate s with Ok () -> () | Error m -> Alcotest.fail m)
  | None -> Alcotest.fail "static 40% budget must fit"

let test_static_huge_budget_none () =
  let cap = Elk_arch.Arch.usable_sram_per_core (pod ()).Elk_arch.Arch.chip in
  (* With 99.9% of SRAM reserved for preload, no execution plan fits. *)
  Alcotest.(check bool) "none" true
    (Baselines.static_schedule (ctx ()) (chip_graph ()) ~preload_budget:(0.999 *. cap)
       ~use_max_popt:false
    = None)

let test_static_min_popt_variant () =
  let cap = Elk_arch.Arch.usable_sram_per_core (pod ()).Elk_arch.Arch.chip in
  match
    Baselines.static_schedule (ctx ()) (chip_graph ()) ~preload_budget:(0.4 *. cap)
      ~use_max_popt:false
  with
  | Some s ->
      (* Min-popt means nothing is broadcast beyond the minimum share. *)
      Array.iter
        (fun e ->
          let p = e.Elk.Schedule.popt in
          Alcotest.(check bool) "min option" true
            (p.Elk_partition.Partition.frac <= 1.0))
        s.Elk.Schedule.entries
  | None -> Alcotest.fail "should fit"

let run design = Baselines.run (ctx ()) ~pod:(pod ()) (model ()) design

let test_all_designs_run () =
  List.iter
    (fun d ->
      let o = run d in
      Alcotest.(check bool) (Baselines.name d ^ " positive") true (o.Baselines.latency > 0.);
      Alcotest.(check bool) "utils sane" true
        (o.Baselines.hbm_util >= 0. && o.Baselines.hbm_util <= 1.001))
    Baselines.all

let test_ideal_is_fastest () =
  let ideal = (run Baselines.Ideal).Baselines.latency in
  List.iter
    (fun d ->
      if d <> Baselines.Ideal then
        Alcotest.(check bool)
          (Baselines.name d ^ " >= ideal")
          true
          ((run d).Baselines.latency >= ideal *. 0.98))
    Baselines.all

let test_elk_beats_basic () =
  let basic = (run Baselines.Basic).Baselines.latency in
  let elk = (run Baselines.Elk_dyn).Baselines.latency in
  Alcotest.(check bool) "elk-dyn <= basic" true (elk <= basic *. 1.001)

let test_plan_returns_schedules () =
  List.iter
    (fun d ->
      match Baselines.plan (ctx ()) ~pod:(pod ()) (model ()) d with
      | Some s -> (
          match Elk.Schedule.validate s with
          | Ok () -> ()
          | Error m -> Alcotest.failf "%s: %s" (Baselines.name d) m)
      | None -> Alcotest.(check bool) "only ideal is planless" true (d = Baselines.Ideal))
    Baselines.all

let test_ideal_has_no_timeline () =
  Alcotest.(check bool) "ideal analytic" true ((run Baselines.Ideal).Baselines.timeline = None);
  Alcotest.(check bool) "basic has timeline" true
    ((run Baselines.Basic).Baselines.timeline <> None)

let suite =
  [
    ("baselines: names", `Quick, test_names_distinct);
    ("baselines: basic valid", `Quick, test_basic_schedule_valid);
    ("baselines: basic one-ahead", `Quick, test_basic_preloads_one_ahead);
    ("baselines: static valid", `Quick, test_static_schedule_valid);
    ("baselines: static infeasible budget", `Quick, test_static_huge_budget_none);
    ("baselines: static min-popt", `Quick, test_static_min_popt_variant);
    ("baselines: all designs run", `Slow, test_all_designs_run);
    ("baselines: ideal fastest", `Slow, test_ideal_is_fastest);
    ("baselines: elk beats basic", `Slow, test_elk_beats_basic);
    ("baselines: plans validate", `Slow, test_plan_returns_schedules);
    ("baselines: ideal analytic", `Quick, test_ideal_has_no_timeline);
  ]
