  $ ../../bin/elk_cli.exe info -m llama2-13b --scale 8 -b 32
  $ ../../bin/elk_cli.exe info -m dit-xl --scale 8 -b 2
  $ ../../bin/elk_cli.exe program -m llama2-13b --scale 8 -d basic --limit 6
  $ ../../bin/elk_cli.exe info -m gpt-5 2>&1 | head -2
