Model info is deterministic and reflects the published configs.

  $ ../../bin/elk_cli.exe info -m llama2-13b --scale 8 -b 32
  model llama2-13b/8x10: 87 ops, 1.52 GFLOPs, 128.72MB HBM, 4 layers
  HBM-heavy operators: 21 (threshold 1.48MB)

  $ ../../bin/elk_cli.exe info -m dit-xl --scale 8 -b 2
  model dit-xl/8x10: 29 ops, 0.676 GFLOPs, 1.51MB HBM, 2 layers
  HBM-heavy operators: 8 (threshold 52.01KB)

The Basic design's device program interleaves one preload per execute.

  $ ../../bin/elk_cli.exe program -m llama2-13b --scale 8 -d basic --limit 6
  preload_async(op=0)
  preload_async(op=1)
  execute(op=0)
  preload_async(op=2)
  execute(op=1)
  preload_async(op=3)
  ... (168 more instructions)

Unknown models are rejected with the available list.

  $ ../../bin/elk_cli.exe info -m gpt-5 2>&1 | head -2
  elk_cli: option '-m': unknown model "gpt-5" (try llama2-13b, gemma2-27b,
           opt-30b, llama2-70b, dit-xl, mixtral-8x7b)
