(* Cross-cutting property tests over the allocator, scheduler, HBM model
   and graph serialization, on randomized inputs. *)

open Elk_model
module P = Elk_partition.Partition

let ctx () = Lazy.force Tu.default_ctx
let graph () = Lazy.force Tu.tiny_llama_chip_graph
let capacity () = Elk_arch.Arch.usable_sram_per_core (P.ctx_chip (ctx ()))

let qcheck_alloc_fits_any_capacity =
  Tu.qtest ~count:40 "alloc: result always fits the given capacity"
    QCheck2.Gen.(pair (int_bound 1000) (float_range 0.2 1.))
    (fun (nseed, cap_frac) ->
      let g = graph () in
      let c = ctx () in
      let node = Graph.get g (nseed mod Graph.length g) in
      let window =
        [ (Graph.get g ((nseed + 7) mod Graph.length g), P.fastest_plan c (Graph.get g ((nseed + 7) mod Graph.length g)).Graph.op) ]
      in
      match
        Elk.Alloc.allocate c ~capacity:(cap_frac *. capacity ()) ~exec_op:node ~window
      with
      | None -> true (* refusing is allowed; overflowing is not *)
      | Some r -> r.Elk.Alloc.total_space <= (cap_frac *. capacity ()) +. 1e-6)

let qcheck_alloc_monotone_in_capacity =
  Tu.qtest ~count:30 "alloc: more capacity never slows the chosen plan"
    QCheck2.Gen.(int_bound 1000)
    (fun nseed ->
      let g = graph () in
      let c = ctx () in
      let node = Graph.get g (nseed mod Graph.length g) in
      let run cap = Elk.Alloc.allocate c ~capacity:cap ~exec_op:node ~window:[] in
      match (run (0.4 *. capacity ()), run (capacity ())) with
      | Some small, Some big -> big.Elk.Alloc.exec_time <= small.Elk.Alloc.exec_time +. 1e-12
      | None, _ -> true
      | Some _, None -> false)

let qcheck_scheduler_respects_max_preload =
  Tu.qtest ~count:8 "scheduler: windows never exceed max_preload + floor growth"
    QCheck2.Gen.(int_range 1 12)
    (fun cap ->
      let s = Elk.Scheduler.run ~max_preload:cap (ctx ()) (graph ()) in
      (* Each horizon extends at most [cap] beyond its floor; since floors
         advance by at least 1 per op, windows are bounded by cap + 1. *)
      Array.for_all (fun w -> w <= cap + 1) (Elk.Scheduler.preload_numbers s))

let qcheck_hbm_larger_reads_not_faster =
  Tu.qtest ~count:40 "hbm: completion is monotone in request size"
    QCheck2.Gen.(pair (float_range 1e3 1e6) (float_range 1e3 1e6))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      let dev () = Elk_hbm.Hbm.create Elk_hbm.Hbm.hbm3e_module in
      Elk_hbm.Hbm.read (dev ()) ~now:0. ~offset:0. ~bytes:lo
      <= Elk_hbm.Hbm.read (dev ()) ~now:0. ~offset:0. ~bytes:hi +. 1e-12)

let qcheck_gtext_random_roundtrip =
  Tu.qtest ~count:25 "gtext: random mixed graphs roundtrip"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Elk_util.Xrng.create seed in
      let b = Graph.builder ~name:"rr" in
      let n = 2 + Elk_util.Xrng.int rng 12 in
      for i = 0 to n - 1 do
        let op =
          match Elk_util.Xrng.int rng 5 with
          | 0 ->
              Elk_tensor.Opspec.matmul ~name:(Printf.sprintf "m%d" i)
                ~m:(1 + Elk_util.Xrng.int rng 64)
                ~n:(1 + Elk_util.Xrng.int rng 64)
                ~k:(1 + Elk_util.Xrng.int rng 64)
                ()
          | 1 ->
              Elk_tensor.Opspec.batch_matmul ~name:(Printf.sprintf "b%d" i)
                ~batch:(1 + Elk_util.Xrng.int rng 8)
                ~m:(1 + Elk_util.Xrng.int rng 8)
                ~n:(1 + Elk_util.Xrng.int rng 32)
                ~k:(1 + Elk_util.Xrng.int rng 32)
                ()
          | 2 ->
              Elk_tensor.Opspec.norm ~name:(Printf.sprintf "n%d" i)
                ~kind:(if Elk_util.Xrng.int rng 2 = 0 then "rmsnorm" else "layernorm")
                ~rows:(1 + Elk_util.Xrng.int rng 64)
                ~cols:(1 + Elk_util.Xrng.int rng 64)
                ()
          | 3 ->
              Elk_tensor.Opspec.rope ~name:(Printf.sprintf "r%d" i)
                ~rows:(1 + Elk_util.Xrng.int rng 64)
                ~cols:(1 + Elk_util.Xrng.int rng 64)
                ()
          | _ ->
              Elk_tensor.Opspec.elementwise ~name:(Printf.sprintf "e%d" i)
                ~arity:(1 + Elk_util.Xrng.int rng 2)
                ~kind:(Elk_util.Xrng.pick rng [ "add"; "mul"; "silu"; "gelu" ])
                ~shape:[ 1 + Elk_util.Xrng.int rng 32; 1 + Elk_util.Xrng.int rng 32 ]
                ()
        in
        let deps = if i = 0 then [] else [ Elk_util.Xrng.int rng i ] in
        ignore (Graph.add b ~deps ~role:(Printf.sprintf "r%d" i) op)
      done;
      let g = Graph.finish b in
      match Gtext.import (Gtext.export g) with
      | Ok g' -> Gtext.roundtrip_equal g g'
      | Error _ -> false)

let qcheck_planio_random_schedules =
  Tu.qtest ~count:6 "planio: scheduler outputs roundtrip through the plan file"
    QCheck2.Gen.(int_bound 3)
    (fun seed ->
      ignore seed;
      let s = Elk.Scheduler.run (ctx ()) (graph ()) in
      match Elk.Planio.import (ctx ()) (Elk.Planio.export s) with
      | Ok s' ->
          let t a = (Elk.Timeline.evaluate (ctx ()) a).Elk.Timeline.total in
          Float.abs (t s -. t s') < 1e-12
      | Error _ -> false)

let qcheck_sharding_flops_split =
  Tu.qtest ~count:20 "sharding: chips split FLOPs roughly evenly"
    QCheck2.Gen.(int_range 2 8)
    (fun chips ->
      let g = Lazy.force Tu.tiny_llama in
      let s = Elk.Sharding.shard_graph ~chips g in
      let ratio = Graph.total_flops g /. (Graph.total_flops s *. float_of_int chips) in
      (* Norm replication and ceil rounding leave some slack. *)
      ratio > 0.7 && ratio < 1.3)

let suite =
  [
    qcheck_alloc_fits_any_capacity;
    qcheck_alloc_monotone_in_capacity;
    qcheck_scheduler_respects_max_preload;
    qcheck_hbm_larger_reads_not_faster;
    qcheck_gtext_random_roundtrip;
    qcheck_planio_random_schedules;
    qcheck_sharding_flops_split;
  ]
