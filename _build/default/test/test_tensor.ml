open Elk_tensor

(* ------------------------------------------------------------------ *)
(* Dtype                                                              *)
(* ------------------------------------------------------------------ *)

let test_dtype_sizes () =
  Alcotest.(check int) "fp32" 4 (Dtype.size_bytes Dtype.Fp32);
  Alcotest.(check int) "fp16" 2 (Dtype.size_bytes Dtype.Fp16);
  Alcotest.(check int) "bf16" 2 (Dtype.size_bytes Dtype.Bf16);
  Alcotest.(check int) "int8" 1 (Dtype.size_bytes Dtype.Int8);
  Alcotest.(check int) "int32" 4 (Dtype.size_bytes Dtype.Int32)

let test_dtype_roundtrip () =
  List.iter
    (fun d ->
      match Dtype.of_string (Dtype.to_string d) with
      | Some d' -> Alcotest.(check bool) "roundtrip" true (d = d')
      | None -> Alcotest.fail "of_string failed")
    Dtype.all;
  Alcotest.(check bool) "unknown" true (Dtype.of_string "fp64" = None)

(* ------------------------------------------------------------------ *)
(* Opspec: constructors and accounting                                *)
(* ------------------------------------------------------------------ *)

let test_matmul_flops () =
  let op = Opspec.matmul ~name:"mm" ~m:4 ~n:8 ~k:16 () in
  Tu.check_float "flops" (2. *. 4. *. 8. *. 16.) (Opspec.flops op);
  Tu.check_float "points" (4. *. 8. *. 16.) (Opspec.points op)

let test_matmul_bytes () =
  let op = Opspec.matmul ~name:"mm" ~m:4 ~n:8 ~k:16 () in
  (* fp16: act 4x16, weight 16x8, out 4x8 *)
  Tu.check_float "hbm = weight" (16. *. 8. *. 2.) (Opspec.hbm_bytes op);
  Tu.check_float "act in" (4. *. 16. *. 2.) (Opspec.activation_in_bytes op);
  Tu.check_float "out" (4. *. 8. *. 2.) (Opspec.output_bytes op);
  Tu.check_float "footprint"
    ((4. *. 16. *. 2.) +. (16. *. 8. *. 2.) +. (4. *. 8. *. 2.))
    (Opspec.footprint_bytes op)

let test_matmul_dtype_scaling () =
  let op16 = Opspec.matmul ~name:"mm" ~m:4 ~n:8 ~k:16 () in
  let op32 = Opspec.matmul ~dtype:Dtype.Fp32 ~name:"mm" ~m:4 ~n:8 ~k:16 () in
  Tu.check_float "fp32 doubles" (2. *. Opspec.hbm_bytes op16) (Opspec.hbm_bytes op32)

let test_batch_matmul_kv () =
  let op = Opspec.batch_matmul ~name:"score" ~batch:8 ~m:2 ~n:64 ~k:32 () in
  (* rhs defaults to Kv_cache: batch x n x k elements *)
  Tu.check_float "kv bytes" (8. *. 64. *. 32. *. 2.) (Opspec.hbm_bytes op);
  Tu.check_float "flops" (2. *. 8. *. 2. *. 64. *. 32.) (Opspec.flops op)

let test_batch_matmul_activation_rhs () =
  let op =
    Opspec.batch_matmul ~rhs_source:Opspec.Activation ~name:"s" ~batch:2 ~m:4 ~n:4 ~k:4 ()
  in
  Tu.check_float "no hbm" 0. (Opspec.hbm_bytes op);
  Tu.check_float "intensity" infinity (Opspec.arithmetic_intensity op)

let test_softmax_no_hbm () =
  let op = Opspec.softmax ~name:"sm" ~rows:16 ~cols:64 () in
  Tu.check_float "no hbm" 0. (Opspec.hbm_bytes op);
  Tu.check_float "flops" (5. *. 16. *. 64.) (Opspec.flops op)

let test_norm_scale_vector () =
  let op = Opspec.norm ~name:"n" ~rows:16 ~cols:64 () in
  Tu.check_float "scale vector resident" (64. *. 2.) (Opspec.hbm_bytes op);
  Alcotest.(check string) "kind" "rmsnorm" op.Opspec.kind;
  let ln = Opspec.norm ~kind:"layernorm" ~name:"n" ~rows:2 ~cols:4 () in
  Alcotest.(check string) "layernorm" "layernorm" ln.Opspec.kind

let test_rope_freq_table () =
  let op = Opspec.rope ~name:"r" ~rows:8 ~cols:32 () in
  Tu.check_float "freqs" (32. *. 2.) (Opspec.hbm_bytes op)

let test_elementwise_arity () =
  let op1 = Opspec.elementwise ~name:"e" ~kind:"add" ~shape:[ 4; 8 ] () in
  Alcotest.(check int) "one input" 1 (List.length op1.Opspec.inputs);
  let op2 = Opspec.elementwise ~arity:2 ~name:"e" ~kind:"add" ~shape:[ 4; 8 ] () in
  Alcotest.(check int) "two inputs" 2 (List.length op2.Opspec.inputs);
  Tu.check_float "act in doubles" (2. *. Opspec.activation_in_bytes op1)
    (Opspec.activation_in_bytes op2)

let test_embedding_gathered_slice () =
  let op = Opspec.embedding ~name:"emb" ~rows:32 ~vocab:50000 ~hidden:64 () in
  (* Only the gathered rows transit HBM, not the whole table. *)
  Tu.check_float "gathered" (32. *. 64. *. 2.) (Opspec.hbm_bytes op)

let test_arithmetic_intensity () =
  let op = Opspec.matmul ~name:"mm" ~m:4 ~n:8 ~k:16 () in
  Tu.check_close ~eps:1e-9 "ai" (Opspec.flops op /. Opspec.hbm_bytes op)
    (Opspec.arithmetic_intensity op)

let test_is_hbm_heavy () =
  let op = Opspec.matmul ~name:"mm" ~m:4 ~n:8 ~k:16 () in
  Alcotest.(check bool) "heavy at 0" true (Opspec.is_hbm_heavy op ~threshold:0.);
  Alcotest.(check bool) "not heavy" false (Opspec.is_hbm_heavy op ~threshold:1e12)

(* ------------------------------------------------------------------ *)
(* Opspec: validation                                                 *)
(* ------------------------------------------------------------------ *)

let ok op =
  match Opspec.validate op with
  | Ok () -> ()
  | Error m -> Alcotest.failf "expected valid: %s" m

let err op =
  match Opspec.validate op with
  | Ok () -> Alcotest.fail "expected invalid"
  | Error _ -> ()

let test_validate_constructors () =
  ok (Opspec.matmul ~name:"a" ~m:1 ~n:1 ~k:1 ());
  ok (Opspec.batch_matmul ~name:"b" ~batch:2 ~m:3 ~n:4 ~k:5 ());
  ok (Opspec.softmax ~name:"c" ~rows:2 ~cols:2 ());
  ok (Opspec.norm ~name:"d" ~rows:2 ~cols:2 ());
  ok (Opspec.rope ~name:"e" ~rows:2 ~cols:2 ());
  ok (Opspec.elementwise ~name:"f" ~kind:"silu" ~shape:[ 2; 3; 4 ] ());
  ok (Opspec.embedding ~name:"g" ~rows:2 ~vocab:10 ~hidden:4 ());
  ok (Opspec.conv_patchify ~name:"h" ~tokens:4 ~in_dim:16 ~out_dim:8 ())

let test_validate_rejects_bad_extent () =
  err { (Opspec.matmul ~name:"a" ~m:1 ~n:1 ~k:1 ()) with Opspec.iter = [| 0; 1; 1 |] };
  err { (Opspec.matmul ~name:"a" ~m:1 ~n:1 ~k:1 ()) with Opspec.iter = [||] }

let test_validate_rejects_bad_dims () =
  let op = Opspec.matmul ~name:"a" ~m:2 ~n:2 ~k:2 () in
  err
    {
      op with
      Opspec.inputs =
        [ { Opspec.t_name = "x"; dims = [ 2; 1 ]; source = Opspec.Activation } ];
    };
  err
    {
      op with
      Opspec.inputs = [ { Opspec.t_name = "x"; dims = [ 0; 5 ]; source = Opspec.Activation } ];
    };
  err
    {
      op with
      Opspec.inputs = [ { Opspec.t_name = "x"; dims = [ 1; 1 ]; source = Opspec.Activation } ];
    }

let test_validate_rejects_negative_flops () =
  err { (Opspec.softmax ~name:"s" ~rows:2 ~cols:2 ()) with Opspec.flops_per_point = -1. }

let qcheck_matmul_accounting =
  Tu.qtest ~count:80 "opspec: matmul accounting scales correctly"
    QCheck2.Gen.(triple (int_range 1 64) (int_range 1 64) (int_range 1 64))
    (fun (m, n, k) ->
      let op = Opspec.matmul ~name:"q" ~m ~n ~k () in
      Opspec.validate op = Ok ()
      && Opspec.flops op = 2. *. float_of_int (m * n * k)
      && Opspec.hbm_bytes op = 2. *. float_of_int (n * k)
      && Opspec.footprint_bytes op = 2. *. float_of_int ((m * k) + (n * k) + (m * n)))

let suite =
  [
    ("dtype: sizes", `Quick, test_dtype_sizes);
    ("dtype: string roundtrip", `Quick, test_dtype_roundtrip);
    ("opspec: matmul flops", `Quick, test_matmul_flops);
    ("opspec: matmul bytes", `Quick, test_matmul_bytes);
    ("opspec: dtype scaling", `Quick, test_matmul_dtype_scaling);
    ("opspec: batch matmul KV", `Quick, test_batch_matmul_kv);
    ("opspec: bmm activation rhs", `Quick, test_batch_matmul_activation_rhs);
    ("opspec: softmax no hbm", `Quick, test_softmax_no_hbm);
    ("opspec: norm scale vector", `Quick, test_norm_scale_vector);
    ("opspec: rope freq table", `Quick, test_rope_freq_table);
    ("opspec: elementwise arity", `Quick, test_elementwise_arity);
    ("opspec: embedding slice", `Quick, test_embedding_gathered_slice);
    ("opspec: arithmetic intensity", `Quick, test_arithmetic_intensity);
    ("opspec: hbm heavy predicate", `Quick, test_is_hbm_heavy);
    ("opspec: constructors valid", `Quick, test_validate_constructors);
    ("opspec: rejects bad extents", `Quick, test_validate_rejects_bad_extent);
    ("opspec: rejects bad dims", `Quick, test_validate_rejects_bad_dims);
    ("opspec: rejects negative flops", `Quick, test_validate_rejects_negative_flops);
    qcheck_matmul_accounting;
  ]
