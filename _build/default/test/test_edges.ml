(* Edge-coverage tests: printers, small helpers, and less-traveled code
   paths across the libraries. *)

open Elk_model

let ctx () = Lazy.force Tu.default_ctx
let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_units_printers () =
  let s pp v = Format.asprintf "%a" pp v in
  Alcotest.(check string) "bw" "5.50GB/s" (s Elk_util.Units.pp_bandwidth 5.5e9);
  Alcotest.(check string) "flops" "1.00TFLOP/s" (s Elk_util.Units.pp_flops 1e12);
  Alcotest.(check string) "tiny time" "150.0ns" (s Elk_util.Units.pp_time 150e-9)

let test_table_rowf_and_empty () =
  let t = Elk_util.Table.create ~title:"empty" ~columns:[ "a" ] in
  let rendered = Elk_util.Table.render t in
  Alcotest.(check bool) "renders header only" true (contains rendered "== empty ==");
  Elk_util.Table.add_rowf t "%.2f" 3.14159;
  Alcotest.(check bool) "rowf formats" true (contains (Elk_util.Table.render t) "3.14")

let test_arch_printers () =
  let s = Format.asprintf "%a" Elk_arch.Arch.pp_chip (Elk_arch.Arch.Presets.gpu_like_chip ()) in
  Alcotest.(check bool) "clusters named" true (contains s "clusters");
  let s2 =
    Format.asprintf "%a" Elk_arch.Arch.pp_pod (Elk_arch.Arch.Presets.scaled_pod ())
  in
  Alcotest.(check bool) "pod named" true (contains s2 "pod{4 x")

let test_graph_summary () =
  let s = Format.asprintf "%a" Graph.pp_summary (Lazy.force Tu.tiny_llama) in
  Alcotest.(check bool) "mentions model" true (contains s "llama2-13b")

let test_device_alignment_classes () =
  let c = Elk_arch.Arch.Presets.scaled_chip () in
  let t iter = Elk_cost.Device.exec_time c ~kind:"matmul" ~iter in
  let per_flop iter = t iter /. Elk_cost.Device.tile_flops ~kind:"matmul" ~iter in
  (* One misaligned dim sits between fully aligned and fully misaligned. *)
  let full = per_flop [| 64; 64; 64 |] in
  let one = per_flop [| 64; 63; 64 |] in
  let both = per_flop [| 64; 63; 63 |] in
  Alcotest.(check bool) "ordering" true (full < one && one < both)

let test_costmodel_alignment_features () =
  let f = Elk_cost.Costmodel.features ~kind:"matmul" ~iter:[| 8; 16; 17 |] in
  Tu.check_float "n aligned" 1. f.(7);
  Tu.check_float "k misaligned" 0. f.(8)

let test_timeline_pp () =
  let tl = Elk.Timeline.evaluate (ctx ()) (Lazy.force Tu.tiny_schedule) in
  let s = Format.asprintf "%a" Elk.Timeline.pp_breakdown tl.Elk.Timeline.bd in
  Alcotest.(check bool) "has buckets" true (contains s "overlap")

let test_reorder_no_layers () =
  let b = Graph.builder ~name:"flat" in
  let _ = Graph.add b ~role:"a" (Elk_tensor.Opspec.matmul ~name:"m" ~m:4 ~n:64 ~k:64 ()) in
  let _ = Graph.add b ~role:"b" (Elk_tensor.Opspec.matmul ~name:"n" ~m:4 ~n:64 ~k:64 ()) in
  let g = Graph.finish b in
  Alcotest.(check (list int)) "no template without layers" []
    (Elk.Reorder.template_layer_heavy g);
  let orders = Elk.Reorder.candidate_orders (ctx ()) g in
  Alcotest.(check int) "identity only" 1 (List.length orders)

let test_sharding_allreduce_roles () =
  let g = Lazy.force Tu.tiny_llama in
  let expected =
    Array.fold_left
      (fun a (n : Graph.node) ->
        if List.mem n.Graph.role [ "o_proj"; "ffn_down"; "lm_head" ] then
          a +. Elk_tensor.Opspec.output_bytes n.Graph.op
        else a)
      0. (Graph.nodes g)
  in
  Tu.check_rel "allreduce volume" ~tolerance:1e-9 expected (Elk.Sharding.allreduce_volume g)

let test_shard_op_identity_one_chip () =
  let op = Elk_tensor.Opspec.matmul ~name:"x" ~m:4 ~n:64 ~k:64 () in
  Alcotest.(check bool) "chips=1 physical identity" true
    (Elk.Sharding.shard_op ~chips:1 ~role:"q_proj" op == op)

let test_codegen_rounds_loop () =
  (* A plan with more tiles than cores emits the round loop. *)
  let op = Elk_tensor.Opspec.matmul ~name:"big" ~m:64 ~n:1000 ~k:640 () in
  let c = ctx () in
  let plans = Elk_partition.Partition.enumerate c op in
  let multi =
    List.find
      (fun p ->
        Array.fold_left ( * ) 1 p.Elk_partition.Partition.factors
        > (Elk_partition.Partition.ctx_chip c).Elk_arch.Arch.cores)
      plans
  in
  let popt = List.hd (Elk_partition.Partition.preload_options c op multi) in
  let b = Graph.builder ~name:"one" in
  let _ = Graph.add b ~role:"lm_head" op in
  let g = Graph.finish b in
  let src = Elk.Codegen.kernel_of c (Graph.get g 0) multi popt in
  Alcotest.(check bool) "round loop" true (contains src "for (int round")

let test_opsplit_chunk_names () =
  let oversized = Elk_tensor.Opspec.matmul ~name:"head" ~m:64 ~n:8000 ~k:640 () in
  let chunks = Elk.Opsplit.split_op (ctx ()) oversized in
  List.iteri
    (fun i op ->
      Alcotest.(check bool) "chunk name" true
        (contains op.Elk_tensor.Opspec.name (Printf.sprintf "chunk%d" i)))
    chunks

let test_planio_missing_entry () =
  let s = Lazy.force Tu.tiny_schedule in
  let text = Elk.Planio.export s in
  (* Drop the entry for op 0. *)
  let corrupted =
    String.split_on_char '\n' text
    |> List.filter (fun l -> not (String.length l > 8 && String.sub l 0 8 = "entry 0 "))
    |> String.concat "\n"
  in
  Alcotest.(check bool) "missing entry rejected" true
    (Result.is_error (Elk.Planio.import (ctx ()) corrupted))

let test_gtext_import_file () =
  let path = Filename.temp_file "elkgraph" ".gt" in
  let oc = open_out path in
  output_string oc (Gtext.export (Lazy.force Tu.tiny_llama));
  close_out oc;
  (match Gtext.import_file path with
  | Ok g ->
      Alcotest.(check int) "same size" (Graph.length (Lazy.force Tu.tiny_llama))
        (Graph.length g)
  | Error m -> Alcotest.fail m);
  Sys.remove path

let test_pipeline_pp () =
  let p = Elk_pipeline.Pipeline.plan (ctx ()) (Lazy.force Tu.tiny_llama_chip_graph) ~stages:2 in
  let s = Format.asprintf "%a" Elk_pipeline.Pipeline.pp_plan p in
  Alcotest.(check bool) "mentions stages" true (contains s "2 stages")

let test_energy_pp () =
  let sch = Lazy.force Tu.tiny_schedule in
  let r = Elk_sim.Sim.run (ctx ()) sch in
  let e = Elk_energy.Energy.evaluate (ctx ()) sch.Elk.Schedule.graph r in
  let s = Format.asprintf "%a" Elk_energy.Energy.pp_report e in
  Alcotest.(check bool) "mentions EDP" true (contains s "EDP")

let test_report_markdown () =
  let env = Elk_dse.Dse.env () in
  let g = Lazy.force Tu.tiny_llama in
  let c = Elk.Compile.compile ~options:Elk.Compile.dyn_options env.Elk_dse.Dse.ctx
      ~pod:env.Elk_dse.Dse.pod g in
  let r = Elk_sim.Sim.run env.Elk_dse.Dse.ctx c.Elk.Compile.schedule in
  let md = Elk_dse.Report.markdown env c r in
  List.iter
    (fun section -> Alcotest.(check bool) section true (contains md section))
    [ "# Elk compilation report"; "## Time breakdown"; "## Preload numbers";
      "## Per-layer simulated time"; "## Slowest operators" ]

let test_hbm_replay_matches_reads () =
  let cfg = Elk_hbm.Hbm.hbm3e_module in
  let trace = [ (0., 1e6); (1e6, 2e6); (4e6, 1e6) ] in
  let t1 = Elk_hbm.Hbm.replay (Elk_hbm.Hbm.create cfg) trace in
  (* Replay issues sequentially; must cost at least the largest single
     request and at most the sum of isolated requests plus slack. *)
  let isolated =
    List.fold_left
      (fun a (o, b) -> a +. Elk_hbm.Hbm.read (Elk_hbm.Hbm.create cfg) ~now:0. ~offset:o ~bytes:b)
      0. trace
  in
  Alcotest.(check bool) "bounded" true (t1 > 0. && t1 <= isolated *. 1.5)

let suite =
  [
    ("edges: unit printers", `Quick, test_units_printers);
    ("edges: table rowf/empty", `Quick, test_table_rowf_and_empty);
    ("edges: arch printers", `Quick, test_arch_printers);
    ("edges: graph summary", `Quick, test_graph_summary);
    ("edges: device alignment classes", `Quick, test_device_alignment_classes);
    ("edges: alignment features", `Quick, test_costmodel_alignment_features);
    ("edges: timeline printer", `Quick, test_timeline_pp);
    ("edges: reorder without layers", `Quick, test_reorder_no_layers);
    ("edges: allreduce roles", `Quick, test_sharding_allreduce_roles);
    ("edges: shard identity", `Quick, test_shard_op_identity_one_chip);
    ("edges: codegen round loop", `Quick, test_codegen_rounds_loop);
    ("edges: opsplit chunk names", `Quick, test_opsplit_chunk_names);
    ("edges: planio missing entry", `Quick, test_planio_missing_entry);
    ("edges: gtext import_file", `Quick, test_gtext_import_file);
    ("edges: pipeline printer", `Quick, test_pipeline_pp);
    ("edges: energy printer", `Quick, test_energy_pp);
    ("edges: report sections", `Slow, test_report_markdown);
    ("edges: hbm replay bounds", `Quick, test_hbm_replay_matches_reads);
  ]
