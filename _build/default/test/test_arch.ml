open Elk_arch

let chip () = Arch.Presets.scaled_chip ()

let test_presets_valid () =
  List.iter
    (fun c ->
      match Arch.validate_chip c with
      | Ok () -> ()
      | Error m -> Alcotest.failf "invalid preset: %s" m)
    [
      Arch.Presets.ipu_mk2_full;
      Arch.Presets.scaled_chip ();
      Arch.Presets.scaled_chip ~cores:16 ~topology_kind:`Mesh ();
    ]

let test_ipu_mk2_numbers () =
  let c = Arch.Presets.ipu_mk2_full in
  Alcotest.(check int) "cores" 1472 c.Arch.cores;
  Tu.check_rel "sram/core 624KB" ~tolerance:1e-6 (624. *. 1024.) c.Arch.sram_per_core;
  (* The paper's 8 TB/s aggregate all-to-all bandwidth. *)
  Tu.check_rel "aggregate ~8TB/s" ~tolerance:0.02 8.1e12 (Arch.aggregate_intercore_bw c);
  (* 1000 TFLOPS matmul for a 4-chip pod. *)
  Tu.check_rel "pod matmul flops" ~tolerance:1e-6 1000e12
    (Arch.pod_matmul_flops Arch.Presets.ipu_pod4_full);
  Tu.check_rel "pod vector flops" ~tolerance:1e-6 31.2e12
    (Arch.pod_vector_flops Arch.Presets.ipu_pod4_full);
  (* 128 bits per 1.325 GHz cycle. *)
  Tu.check_rel "sram bw" ~tolerance:1e-6 (16. *. 1.325e9) c.Arch.sram_bw_per_core

let test_pod4_hbm () =
  Tu.check_rel "16 TB/s pod HBM" ~tolerance:1e-6 16e12
    (Arch.pod_hbm_bandwidth Arch.Presets.ipu_pod4_full)

let test_usable_sram () =
  let c = chip () in
  Tu.check_float "usable = sram - netbuf"
    (c.Arch.sram_per_core -. c.Arch.net_buffer_per_core)
    (Arch.usable_sram_per_core c);
  Tu.check_float "chip sram"
    (Arch.usable_sram_per_core c *. float_of_int c.Arch.cores)
    (Arch.chip_sram c)

let test_validate_rejects () =
  let c = chip () in
  let bad cfg = match Arch.validate_chip cfg with Ok () -> Alcotest.fail "expected error" | Error _ -> () in
  bad { c with Arch.cores = 0 };
  bad { c with Arch.sram_per_core = 0. };
  bad { c with Arch.net_buffer_per_core = c.Arch.sram_per_core };
  bad { c with Arch.matmul_flops_per_core = 0. };
  bad { c with Arch.hbm_bandwidth = -1. };
  bad { c with Arch.hbm_controllers = 0 };
  bad { c with Arch.topology = Arch.Mesh2d { rows = 3; cols = 3 } }

let test_mesh_dims () =
  Alcotest.(check (pair int int)) "64" (8, 8) (Arch.mesh_dims ~cores:64);
  Alcotest.(check (pair int int)) "12" (3, 4) (Arch.mesh_dims ~cores:12);
  Alcotest.(check (pair int int)) "7 prime" (1, 7) (Arch.mesh_dims ~cores:7);
  Alcotest.(check (pair int int)) "1472" (32, 46) (Arch.mesh_dims ~cores:1472);
  Alcotest.(check bool) "raises" true
    (try
       ignore (Arch.mesh_dims ~cores:0);
       false
     with Invalid_argument _ -> true)

let test_with_topology () =
  let c = chip () in
  let m = Arch.with_topology c (Arch.Mesh2d { rows = 8; cols = 8 }) in
  Alcotest.(check bool) "is mesh" true (m.Arch.topology = Arch.Mesh2d { rows = 8; cols = 8 });
  Alcotest.(check bool) "bad mesh raises" true
    (try
       ignore (Arch.with_topology c (Arch.Mesh2d { rows = 5; cols = 5 }));
       false
     with Invalid_argument _ -> true)

let test_with_cores_scaling () =
  let c = chip () in
  let big = Arch.with_cores c ~cores:256 ~hbm_bw_per_core:2.7e9 in
  Alcotest.(check int) "cores" 256 big.Arch.cores;
  Tu.check_rel "hbm scales per core" ~tolerance:1e-9 (256. *. 2.7e9) big.Arch.hbm_bandwidth;
  Tu.check_float "per-core rates preserved" c.Arch.matmul_flops_per_core
    big.Arch.matmul_flops_per_core;
  (* Mesh chips get re-derived dimensions. *)
  let m = Arch.with_cores (Arch.Presets.scaled_chip ~topology_kind:`Mesh ()) ~cores:144 ~hbm_bw_per_core:2.7e9 in
  Alcotest.(check bool) "mesh rederived" true (m.Arch.topology = Arch.Mesh2d { rows = 12; cols = 12 })

let test_scaled_preserves_ratios () =
  (* The scaled default must preserve the paper's per-core HBM share
     (16 TB/s over 5888 cores = ~2.7 GB/s/core). *)
  let full_per_core = 16e12 /. 5888. in
  let c = chip () in
  Tu.check_rel "hbm per core" ~tolerance:1e-6 full_per_core
    (c.Arch.hbm_bandwidth /. float_of_int c.Arch.cores);
  (* And the inter-chip : intra-chip bandwidth ratio. *)
  let pod = Arch.Presets.scaled_pod () in
  let full_ratio = 640e9 /. Arch.aggregate_intercore_bw Arch.Presets.ipu_mk2_full in
  Tu.check_rel "interchip ratio" ~tolerance:1e-6 full_ratio
    (pod.Arch.interchip_bandwidth /. Arch.aggregate_intercore_bw pod.Arch.chip)

let qcheck_with_cores_valid =
  Tu.qtest ~count:40 "arch: with_cores yields valid chips"
    QCheck2.Gen.(int_range 4 512)
    (fun cores ->
      let c = Arch.with_cores (chip ()) ~cores ~hbm_bw_per_core:2.7e9 in
      Arch.validate_chip c = Ok ())

let suite =
  [
    ("arch: presets valid", `Quick, test_presets_valid);
    ("arch: IPU MK2 numbers", `Quick, test_ipu_mk2_numbers);
    ("arch: POD4 HBM", `Quick, test_pod4_hbm);
    ("arch: usable sram", `Quick, test_usable_sram);
    ("arch: validation rejects", `Quick, test_validate_rejects);
    ("arch: mesh dims", `Quick, test_mesh_dims);
    ("arch: with_topology", `Quick, test_with_topology);
    ("arch: with_cores scaling", `Quick, test_with_cores_scaling);
    ("arch: scaled preset ratios", `Quick, test_scaled_preserves_ratios);
    qcheck_with_cores_valid;
  ]
