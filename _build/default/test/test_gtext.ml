open Elk_model

let test_roundtrip_zoo_models () =
  List.iter
    (fun (cfg, phase) ->
      let g = Zoo.build cfg phase in
      match Gtext.import (Gtext.export g) with
      | Ok g' ->
          Alcotest.(check bool)
            (cfg.Zoo.cfg_name ^ " roundtrips")
            true
            (Gtext.roundtrip_equal g g')
      | Error m -> Alcotest.failf "%s failed to reimport: %s" cfg.Zoo.cfg_name m)
    [
      (Zoo.scale Zoo.llama2_13b ~factor:16 ~layer_factor:20, Zoo.Decode { batch = 4; ctx = 64 });
      (Zoo.scale Zoo.opt_30b ~factor:8 ~layer_factor:24, Zoo.Decode { batch = 4; ctx = 64 });
      (Zoo.scale Zoo.dit_xl ~factor:8 ~layer_factor:14, Zoo.Decode { batch = 2; ctx = 1 });
      (Zoo.scale Zoo.gemma2_27b ~factor:16 ~layer_factor:23, Zoo.Prefill { batch = 2; seq = 32 });
    ]

let test_hand_written_graph () =
  let text =
    {|# a hand-written model
graph mini
op embedding name=emb role=embedding rows=8 vocab=100 hidden=64
op norm      name=n0  role=attn_norm layer=0 rows=8 cols=64 kind=rmsnorm
op matmul    name=q0  role=q_proj layer=0 deps=1 m=8 n=64 k=64
op bmm       name=s0  role=attn_score layer=0 deps=2 batch=2 m=4 n=16 k=16 rhs=kv
op softmax   name=sm0 role=attn_softmax layer=0 deps=3 rows=8 cols=16
op eltwise   name=r0  role=attn_residual deps=0,4 kind=add shape=8x64 arity=2 fpp=1
|}
  in
  match Gtext.import text with
  | Error m -> Alcotest.fail m
  | Ok g ->
      Alcotest.(check string) "name" "mini" (Graph.name g);
      Alcotest.(check int) "ops" 6 (Graph.length g);
      Alcotest.(check (list int)) "explicit deps" [ 0; 4 ] (Graph.get g 5).Graph.deps;
      Alcotest.(check (list int)) "default chain deps" [ 0 ] (Graph.get g 1).Graph.deps;
      let bmm = (Graph.get g 3).Graph.op in
      Tu.check_float "kv bytes" (2. *. 2. *. 16. *. 16.) (Elk_tensor.Opspec.hbm_bytes bmm)

let expect_error text fragment =
  match Gtext.import text with
  | Ok _ -> Alcotest.failf "expected error containing %S" fragment
  | Error m ->
      Alcotest.(check bool)
        (Printf.sprintf "error %S mentions %S" m fragment)
        true
        (let rec contains i =
           i + String.length fragment <= String.length m
           && (String.sub m i (String.length fragment) = fragment || contains (i + 1))
         in
         contains 0)

let test_errors_informative () =
  expect_error "op matmul name=x m=1 n=1 k=1" "before graph";
  expect_error "graph g\nop matmul role=x m=1 n=1 k=1" "name";
  expect_error "graph g\nop matmul name=x n=1 k=1" "missing attribute \"m\"";
  expect_error "graph g\nop warp name=x" "unknown operator form";
  expect_error "graph g\nop matmul name=x m=zap n=1 k=1" "bad integer";
  expect_error "graph g\nop matmul name=x m=1 n=1 k=1 deps=7" "invalid";
  expect_error "nonsense line" "unrecognized";
  expect_error "" "no graph"

let test_comments_and_blanks () =
  let text = "# header\n\ngraph g\n# middle\nop softmax name=s rows=2 cols=2\n\n" in
  match Gtext.import text with
  | Ok g -> Alcotest.(check int) "one op" 1 (Graph.length g)
  | Error m -> Alcotest.fail m

let test_dtype_attr () =
  let text = "graph g\nop matmul name=x m=2 n=2 k=2 dt=fp32" in
  match Gtext.import text with
  | Ok g ->
      Alcotest.(check bool) "fp32" true
        ((Graph.get g 0).Graph.op.Elk_tensor.Opspec.dtype = Elk_tensor.Dtype.Fp32);
      (* And it survives a round trip. *)
      Alcotest.(check bool) "roundtrip" true
        (match Gtext.import (Gtext.export g) with
        | Ok g' -> Gtext.roundtrip_equal g g'
        | Error _ -> false)
  | Error m -> Alcotest.fail m

let test_weight_source_attr () =
  let text = "graph g\nop matmul name=x m=2 n=2 k=2 ws=a" in
  match Gtext.import text with
  | Ok g ->
      Tu.check_float "activation weights load nothing" 0.
        (Elk_tensor.Opspec.hbm_bytes (Graph.get g 0).Graph.op)
  | Error m -> Alcotest.fail m

let test_imported_graph_compiles () =
  let g = Zoo.build (Zoo.scale Zoo.llama2_13b ~factor:16 ~layer_factor:20)
      (Zoo.Decode { batch = 8; ctx = 64 }) in
  match Gtext.import (Gtext.export g) with
  | Error m -> Alcotest.fail m
  | Ok g' ->
      let pod = Lazy.force Tu.default_pod in
      let ctx = Lazy.force Tu.default_ctx in
      let c = Elk.Compile.compile ~options:Elk.Compile.dyn_options ctx ~pod g' in
      Alcotest.(check bool) "compiles" true (Elk.Compile.latency c > 0.)

let qcheck_export_lines =
  Tu.qtest ~count:15 "gtext: export emits one line per op plus header"
    QCheck2.Gen.(int_range 1 16)
    (fun n ->
      let b = Graph.builder ~name:"lines" in
      for i = 0 to n - 1 do
        ignore
          (Graph.add b ~role:"x"
             (Elk_tensor.Opspec.softmax ~name:(Printf.sprintf "s%d" i) ~rows:2 ~cols:2 ()))
      done;
      let text = Gtext.export (Graph.finish b) in
      let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
      List.length lines = n + 1)

let suite =
  [
    ("gtext: zoo models roundtrip", `Quick, test_roundtrip_zoo_models);
    ("gtext: hand-written graph", `Quick, test_hand_written_graph);
    ("gtext: informative errors", `Quick, test_errors_informative);
    ("gtext: comments and blanks", `Quick, test_comments_and_blanks);
    ("gtext: dtype attribute", `Quick, test_dtype_attr);
    ("gtext: weight source attribute", `Quick, test_weight_source_attr);
    ("gtext: imported graph compiles", `Slow, test_imported_graph_compiles);
    qcheck_export_lines;
  ]
